package online

import (
	"fmt"
	"slices"

	"coflow/internal/coflowmodel"
	"coflow/internal/matrix"
)

// State is the live state of the per-slot greedy scheduler: the set of
// registered-but-unfinished coflows on an m×m switch. It is the
// incremental counterpart of Simulate — a resident scheduler (such as
// cmd/coflowd) adds and removes coflows while repeatedly calling Step,
// and the batch Simulate/SimulateOrder entry points drive the exact
// same core, so the two cannot drift apart.
//
// Per-coflow demand lives in a matrix.Sparse, so row/column sums and
// the SEBF bottleneck are maintained incrementally as units drain
// (O(changed entries) per slot, never an O(m²) or O(pairs·m) rescan),
// and every per-slot buffer (busy flags, active list, served and
// completed lists) is owned by the State and reused, so a steady-state
// Step performs zero heap allocations.
//
// A State is NOT safe for concurrent use; callers serialize access
// (coflowd does so with a single-writer event loop).
type State struct {
	ports int
	// live coflows; the slice is kept in the most recent priority
	// order (every policy's order is total — ties break on the unique
	// key — so list order never affects results, only how much work
	// the next sort has to do).
	list  []*cfState
	index map[int]*cfState
	// scratch reused across steps
	rowBusy, colBusy []bool
	active           []*cfState
	served           []Assignment
	completed        []int
	// fifoSorted records that list is in FIFO order and nothing since
	// has disturbed it (FIFO keys are static, so only an Add or a sort
	// under another policy can): steady-state FIFO ticks skip even the
	// O(n) sorted-check.
	fifoSorted bool

	// failed marks ports taken offline by FailPort. A failed port is
	// excluded from every matching (its busy flags are pre-set before
	// the scan), so demand touching it is parked — it stays in the
	// coflow's remaining demand, is never served and never dropped, and
	// resumes draining after RecoverPort. While any port is down the
	// SEBF/WSPT priorities switch to the masked statistics so stranded
	// demand does not distort the order (a fully stranded coflow sorts
	// last).
	failed      []bool
	failedCount int

	// obs is the per-stage instrumentation (see obs.go). The zero
	// value is the disabled mode: every hook is a nil-safe no-op, so
	// an uninstrumented State keeps the zero-allocation, branch-only
	// Step contract.
	obs Obs

	// Warm-start replay state. The greedy matching is a deterministic
	// function of (coflow visit order, zero/non-zero demand pattern),
	// so when neither changed since the previous slot the previous
	// slot's matching IS this slot's matching and Step replays it in
	// O(served) instead of rescanning every pair. Demand shrinks
	// monotonically between arrivals, so steady-state slots replay.
	canReplay    bool
	servedAt     []servedLoc // entry locations of the last full scan
	minServedRem int64       // min remaining among last-served pairs
	nextPending  int64       // earliest not-yet-eligible release, -1 if none
	lastActive   int         // active count of the last full scan
}

// servedLoc pinpoints one served unit for replay: entry e of a
// coflow's sparse demand.
type servedLoc struct {
	d *matrix.Sparse
	e int
}

// Assignment is one unit of service in a slot: coflow Key sends one
// data unit from ingress Src to egress Dst.
type Assignment struct {
	Key int `json:"key"`
	Src int `json:"src"`
	Dst int `json:"dst"`
}

// StepResult reports one slot of scheduling.
type StepResult struct {
	// Slot is the slot that was just served.
	Slot int64
	// Served lists the unit transfers of the slot (a matching: each
	// ingress and each egress appears at most once). The slice aliases
	// a State-owned buffer and is only valid until the next Step;
	// callers that retain it must copy.
	Served []Assignment
	// Completed lists the keys of coflows whose last unit transferred
	// in this slot. They are removed from the State. Like Served, the
	// slice is reused by the next Step.
	Completed []int
	// Active is the number of released, unfinished coflows that were
	// eligible in this slot (0 means the slot was idle).
	Active int
}

// NewState creates an empty scheduler state for an m-port switch.
// It panics if ports is not positive.
func NewState(ports int) *State {
	if ports <= 0 {
		panic(fmt.Sprintf("online: non-positive port count %d", ports))
	}
	return &State{
		ports:   ports,
		index:   make(map[int]*cfState),
		rowBusy: make([]bool, ports),
		colBusy: make([]bool, ports),
		failed:  make([]bool, ports),
	}
}

// Ports returns the switch size m.
func (s *State) Ports() int { return s.ports }

// Len returns the number of live (unfinished, not removed) coflows,
// released or not.
func (s *State) Len() int { return len(s.list) }

// Add registers a coflow under key with the given weight, release slot
// and flows. Flows sharing a port pair accumulate. It returns the
// coflow's total demand; a zero-demand coflow is NOT retained (it is
// complete the moment it is released, and the caller records that).
// Add fails on a duplicate live key, a non-positive weight, an
// out-of-range port, or a negative flow size.
func (s *State) Add(key int, weight float64, release int64, flows []coflowmodel.Flow) (int64, error) {
	if _, ok := s.index[key]; ok {
		return 0, fmt.Errorf("online: duplicate coflow key %d", key)
	}
	if weight <= 0 {
		return 0, fmt.Errorf("online: coflow %d has non-positive weight %g", key, weight)
	}
	if release < 0 {
		return 0, fmt.Errorf("online: coflow %d has negative release %d", key, release)
	}
	entries := make([]matrix.SparseEntry, 0, len(flows))
	for _, f := range flows {
		if f.Src < 0 || f.Src >= s.ports || f.Dst < 0 || f.Dst >= s.ports {
			return 0, fmt.Errorf("online: coflow %d flow (%d→%d) outside %d ports", key, f.Src, f.Dst, s.ports)
		}
		if f.Size < 0 {
			return 0, fmt.Errorf("online: coflow %d has negative flow size %d", key, f.Size)
		}
		if f.Size > 0 {
			entries = append(entries, matrix.SparseEntry{Row: f.Src, Col: f.Dst, Val: f.Size})
		}
	}
	if len(entries) == 0 {
		return 0, nil
	}
	demand, err := matrix.NewSparse(entries)
	if err != nil {
		return 0, err
	}
	st := &cfState{key: key, release: release, weight: weight, demand: demand}
	s.list = append(s.list, st)
	s.index[key] = st
	s.fifoSorted = false
	s.canReplay = false
	return demand.Total(), nil
}

// Remove cancels the live coflow under key, reporting whether it was
// present. Its unserved demand is discarded.
func (s *State) Remove(key int) bool {
	st, ok := s.index[key]
	if !ok {
		return false
	}
	s.drop(st)
	return true
}

// Remaining returns the total unserved demand of the live coflow under
// key, or (0, false) if it is not live.
func (s *State) Remaining(key int) (int64, bool) {
	st, ok := s.index[key]
	if !ok {
		return 0, false
	}
	return st.demand.Total(), true
}

// Keys appends the keys of every live coflow (released or not) to dst
// in ascending order and returns it. For validation and diagnostics
// (internal/check diffs live state against a reference); pass a
// reused buffer to avoid allocation.
func (s *State) Keys(dst []int) []int {
	for _, st := range s.list {
		dst = append(dst, st.key)
	}
	slices.Sort(dst)
	return dst
}

// Demand returns the positive remaining demand entries of the live
// coflow under key in (row, col) order, or nil if it is not live. The
// entries are copies; for validation and diagnostics, not the hot
// path.
func (s *State) Demand(key int) []matrix.SparseEntry {
	st, ok := s.index[key]
	if !ok {
		return nil
	}
	d := st.demand
	out := make([]matrix.SparseEntry, 0, d.Len())
	for e, n := 0, d.Len(); e < n; e++ {
		src, dst, val := d.Entry(e)
		if val > 0 {
			out = append(out, matrix.SparseEntry{Row: src, Col: dst, Val: val})
		}
	}
	return out
}

// FailPort takes port p offline: both its ingress and egress side
// leave the matching until RecoverPort. Demand already routed through
// p is parked, not dropped — it stays in its coflow's remaining demand
// and the coflow cannot complete until the port recovers (demand
// conservation holds across the failure). Idempotent; fails only on an
// out-of-range port.
func (s *State) FailPort(p int) error {
	if p < 0 || p >= s.ports {
		return fmt.Errorf("online: port %d outside %d ports", p, s.ports)
	}
	if !s.failed[p] {
		s.failed[p] = true
		s.failedCount++
		// The previous matching may use p, and priorities change under
		// the mask: force a full (masked) scan next slot.
		s.canReplay = false
	}
	return nil
}

// RecoverPort brings port p back online; parked demand resumes
// draining on the next slot. Idempotent; fails only on an out-of-range
// port.
func (s *State) RecoverPort(p int) error {
	if p < 0 || p >= s.ports {
		return fmt.Errorf("online: port %d outside %d ports", p, s.ports)
	}
	if s.failed[p] {
		s.failed[p] = false
		s.failedCount--
		s.canReplay = false
	}
	return nil
}

// PortFailed reports whether port p is currently offline.
func (s *State) PortFailed(p int) bool {
	return p >= 0 && p < s.ports && s.failed[p]
}

// FailedPortCount returns the number of ports currently offline.
func (s *State) FailedPortCount() int { return s.failedCount }

// FailedPorts appends the offline ports to dst in ascending order and
// returns it; pass a reused buffer to avoid allocation.
func (s *State) FailedPorts(dst []int) []int {
	for p, down := range s.failed {
		if down {
			dst = append(dst, p)
		}
	}
	return dst
}

// NextRelease returns the earliest release strictly after t among live
// coflows, or -1 if there is none. Batch drivers use it to skip idle
// slots; a wall-clock daemon never needs it.
func (s *State) NextRelease(t int64) int64 {
	next := int64(-1)
	for _, st := range s.list {
		if st.release > t && (next < 0 || st.release < next) {
			next = st.release
		}
	}
	return next
}

// Step serves one slot under the given policy: it builds a greedy
// maximal matching over the remaining demand of the coflows released
// before slot (release ≤ slot−1), visiting them in the policy's
// priority order, transfers one unit on every matched pair, and
// removes the coflows that finish.
//
// Approximation caveat: Step commits to a greedy MAXIMAL matching with
// O(1) lookahead, not a maximum one, so in the worst case a demand
// matrix D needs up to 2ρ(D)−1 slots to clear versus the ρ(D) of a
// Birkhoff–von Neumann decomposition — the classical factor-2 slot
// overhead. That is the price of an incremental API whose per-slot
// work is near-linear in the live demand; the paper's offline
// constant-factor guarantees do not transfer to this scheduler.
//
//coflow:allocfree
//coflow:pooled
func (s *State) Step(slot int64, policy Policy) StepResult {
	stepSpan := s.obs.StepSeconds.Start()
	s.obs.Steps.Inc()
	// The whole live list is kept in policy order (a sorted-check
	// short-circuits steady-state slots where no priority moved); the
	// active set then inherits that order when it is filtered out.
	sortSpan := s.obs.SortSeconds.Start()
	alreadySorted := s.prioritizeList(policy)
	sortSpan.End()
	// Replay the previous slot's matching when it provably recurs:
	// same visit order (no re-sort), same zero/non-zero demand pattern
	// (nothing added, removed, or completed), no release crossed into
	// eligibility, and every served pair stays positive even AFTER
	// this serve (>= 2) — at exactly 1 a pair drains this slot, which
	// can complete a coflow, so the full scan must run to detect it.
	if alreadySorted && s.canReplay && s.minServedRem >= 2 &&
		(s.nextPending < 0 || slot <= s.nextPending) {
		res := s.replay(slot)
		stepSpan.End()
		return res
	}
	res := s.step(slot, nil)
	stepSpan.End()
	return res
}

// replay re-serves the previous slot's matching: one decrement per
// served pair, no scan. Preconditions (checked by Step) guarantee the
// full scan would produce exactly this result.
//
//coflow:allocfree
//coflow:pooled
func (s *State) replay(slot int64) StepResult {
	span := s.obs.ReplaySeconds.Start()
	for _, loc := range s.servedAt {
		loc.d.Dec(loc.e, 1)
	}
	s.minServedRem--
	s.obs.Replays.Inc()
	s.obs.UnitsServed.Add(int64(len(s.served)))
	span.EndWithTrace(s.obs.Trace, "replay", slot)
	return StepResult{
		Slot:      slot,
		Served:    s.served,
		Completed: s.completed[:0],
		Active:    s.lastActive,
	}
}

// step is the shared slot core: reorder (when non-nil) fixes the
// priority order of the active set, then the greedy matching is built
// in that order. Every append lands in receiver-owned scratch that
// reaches steady-state capacity after the first few slots.
//
//coflow:allocfree
//coflow:pooled
func (s *State) step(slot int64, reorder func([]*cfState)) StepResult {
	res := StepResult{Slot: slot}
	s.active = s.active[:0]
	s.nextPending = -1
	for _, st := range s.list {
		if st.release < slot {
			if st.demand.Total() > 0 {
				s.active = append(s.active, st)
			}
		} else if s.nextPending < 0 || st.release < s.nextPending {
			s.nextPending = st.release
		}
	}
	res.Active = len(s.active)
	if res.Active == 0 {
		s.canReplay = false
		s.obs.IdleSteps.Inc()
		return res
	}
	if reorder != nil {
		reorder(s.active)
	}

	matchSpan := s.obs.MatchSeconds.Start()
	for i := range s.rowBusy {
		s.rowBusy[i] = false
	}
	for i := range s.colBusy {
		s.colBusy[i] = false
	}
	// A failed port is modeled as permanently busy on both sides: the
	// greedy scan below then parks any demand touching it for free,
	// with no extra branch on the per-entry fast path.
	if s.failedCount > 0 {
		for p, down := range s.failed {
			if down {
				s.rowBusy[p] = true
				s.colBusy[p] = true
			}
		}
	}
	s.served = s.served[:0]
	s.servedAt = s.servedAt[:0]
	s.completed = s.completed[:0]
	s.minServedRem = -1
	// A slot serves at most m units (each unit occupies one ingress
	// and one egress), so once m are matched the scan over
	// lower-priority coflows stops: with many more coflows than ports
	// this saturation exit, not the active count, bounds the per-slot
	// work.
	for _, st := range s.active {
		d := st.demand
		for e, n := 0, d.Len(); e < n; e++ {
			src, dst, rem := d.Entry(e)
			if rem == 0 || s.rowBusy[src] || s.colBusy[dst] {
				continue
			}
			s.rowBusy[src] = true
			s.colBusy[dst] = true
			d.Dec(e, 1)
			if rem-1 < s.minServedRem || s.minServedRem < 0 {
				s.minServedRem = rem - 1
			}
			s.served = append(s.served, Assignment{Key: st.key, Src: src, Dst: dst})
			s.servedAt = append(s.servedAt, servedLoc{d: d, e: e})
		}
		if d.Total() == 0 {
			s.completed = append(s.completed, st.key)
			s.drop(st)
		}
		if len(s.served) == s.ports-s.failedCount {
			s.obs.SaturationExits.Inc()
			break
		}
	}
	matchSpan.EndWithTrace(s.obs.Trace, "scan", slot)
	s.obs.FullScans.Inc()
	s.obs.UnitsServed.Add(int64(len(s.served)))
	s.obs.CoflowsCompleted.Add(int64(len(s.completed)))
	res.Served = s.served
	res.Completed = s.completed
	// A completed coflow changed the active set; an explicit reorder
	// (SimulateOrder) bypasses the sorted-list bookkeeping. Either
	// forbids replaying this matching next slot.
	s.canReplay = reorder == nil && len(s.completed) == 0
	s.lastActive = res.Active
	return res
}

// drop removes st from the live list and index.
//
//coflow:allocfree
func (s *State) drop(st *cfState) {
	s.canReplay = false
	delete(s.index, st.key)
	for i, cur := range s.list {
		if cur == st {
			s.list = append(s.list[:i], s.list[i+1:]...)
			return
		}
	}
}
