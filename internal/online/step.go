package online

import (
	"fmt"
	"sort"

	"coflow/internal/coflowmodel"
)

// State is the live state of the per-slot greedy scheduler: the set of
// registered-but-unfinished coflows on an m×m switch. It is the
// incremental counterpart of Simulate — a resident scheduler (such as
// cmd/coflowd) adds and removes coflows while repeatedly calling Step,
// and the batch Simulate/SimulateOrder entry points drive the exact
// same code path, so the two cannot drift apart.
//
// A State is NOT safe for concurrent use; callers serialize access
// (coflowd does so with a single-writer event loop).
type State struct {
	ports int
	// live coflows in insertion order (the deterministic FIFO
	// tie-break base); completed and removed entries are deleted.
	list  []*cfState
	index map[int]*cfState
	// scratch reused across steps
	rowBusy, colBusy []bool
	active           []*cfState
}

// Assignment is one unit of service in a slot: coflow Key sends one
// data unit from ingress Src to egress Dst.
type Assignment struct {
	Key int `json:"key"`
	Src int `json:"src"`
	Dst int `json:"dst"`
}

// StepResult reports one slot of scheduling.
type StepResult struct {
	// Slot is the slot that was just served.
	Slot int64
	// Served lists the unit transfers of the slot (a matching: each
	// ingress and each egress appears at most once).
	Served []Assignment
	// Completed lists the keys of coflows whose last unit transferred
	// in this slot. They are removed from the State.
	Completed []int
	// Active is the number of released, unfinished coflows that were
	// eligible in this slot (0 means the slot was idle).
	Active int
}

// NewState creates an empty scheduler state for an m-port switch.
// It panics if ports is not positive.
func NewState(ports int) *State {
	if ports <= 0 {
		panic(fmt.Sprintf("online: non-positive port count %d", ports))
	}
	return &State{
		ports:   ports,
		index:   make(map[int]*cfState),
		rowBusy: make([]bool, ports),
		colBusy: make([]bool, ports),
	}
}

// Ports returns the switch size m.
func (s *State) Ports() int { return s.ports }

// Len returns the number of live (unfinished, not removed) coflows,
// released or not.
func (s *State) Len() int { return len(s.list) }

// Add registers a coflow under key with the given weight, release slot
// and flows. Flows sharing a port pair accumulate. It returns the
// coflow's total demand; a zero-demand coflow is NOT retained (it is
// complete the moment it is released, and the caller records that).
// Add fails on a duplicate live key, a non-positive weight, an
// out-of-range port, or a negative flow size.
func (s *State) Add(key int, weight float64, release int64, flows []coflowmodel.Flow) (int64, error) {
	if _, ok := s.index[key]; ok {
		return 0, fmt.Errorf("online: duplicate coflow key %d", key)
	}
	if weight <= 0 {
		return 0, fmt.Errorf("online: coflow %d has non-positive weight %g", key, weight)
	}
	if release < 0 {
		return 0, fmt.Errorf("online: coflow %d has negative release %d", key, release)
	}
	agg := map[[2]int]int64{}
	for _, f := range flows {
		if f.Src < 0 || f.Src >= s.ports || f.Dst < 0 || f.Dst >= s.ports {
			return 0, fmt.Errorf("online: coflow %d flow (%d→%d) outside %d ports", key, f.Src, f.Dst, s.ports)
		}
		if f.Size < 0 {
			return 0, fmt.Errorf("online: coflow %d has negative flow size %d", key, f.Size)
		}
		if f.Size > 0 {
			agg[[2]int{f.Src, f.Dst}] += f.Size
		}
	}
	st := &cfState{key: key, release: release, weight: weight}
	keys := make([][2]int, 0, len(agg))
	for k := range agg {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a][0] != keys[b][0] {
			return keys[a][0] < keys[b][0]
		}
		return keys[a][1] < keys[b][1]
	})
	for _, k := range keys {
		st.pairs = append(st.pairs, pairDemand{src: k[0], dst: k[1], remaining: agg[k]})
		st.remaining += agg[k]
	}
	if st.remaining == 0 {
		return 0, nil
	}
	s.list = append(s.list, st)
	s.index[key] = st
	return st.remaining, nil
}

// Remove cancels the live coflow under key, reporting whether it was
// present. Its unserved demand is discarded.
func (s *State) Remove(key int) bool {
	st, ok := s.index[key]
	if !ok {
		return false
	}
	s.drop(st)
	return true
}

// Remaining returns the total unserved demand of the live coflow under
// key, or (0, false) if it is not live.
func (s *State) Remaining(key int) (int64, bool) {
	st, ok := s.index[key]
	if !ok {
		return 0, false
	}
	return st.remaining, true
}

// NextRelease returns the earliest release strictly after t among live
// coflows, or -1 if there is none. Batch drivers use it to skip idle
// slots; a wall-clock daemon never needs it.
func (s *State) NextRelease(t int64) int64 {
	next := int64(-1)
	for _, st := range s.list {
		if st.release > t && (next < 0 || st.release < next) {
			next = st.release
		}
	}
	return next
}

// Step serves one slot under the given policy: it builds a greedy
// maximal matching over the remaining demand of the coflows released
// before slot (release ≤ slot−1), visiting them in the policy's
// priority order, transfers one unit on every matched pair, and
// removes the coflows that finish.
//
// Approximation caveat: Step commits to a greedy MAXIMAL matching with
// O(1) lookahead, not a maximum one, so in the worst case a demand
// matrix D needs up to 2ρ(D)−1 slots to clear versus the ρ(D) of a
// Birkhoff–von Neumann decomposition — the classical factor-2 slot
// overhead. That is the price of an incremental API whose per-slot
// work is near-linear in the live demand; the paper's offline
// constant-factor guarantees do not transfer to this scheduler.
func (s *State) Step(slot int64, policy Policy) StepResult {
	return s.step(slot, func(active []*cfState) {
		if policy == SEBF {
			for _, st := range active {
				refreshBottleneck(st, s.ports)
			}
		}
		prioritize(active, policy)
	})
}

// step is the shared slot core: reorder fixes the priority order of
// the active set, then the greedy matching is built in that order.
func (s *State) step(slot int64, reorder func([]*cfState)) StepResult {
	res := StepResult{Slot: slot}
	s.active = s.active[:0]
	for _, st := range s.list {
		if st.release < slot && st.remaining > 0 {
			s.active = append(s.active, st)
		}
	}
	res.Active = len(s.active)
	if res.Active == 0 {
		return res
	}
	reorder(s.active)

	for i := range s.rowBusy {
		s.rowBusy[i] = false
		s.colBusy[i] = false
	}
	for _, st := range s.active {
		for pi := range st.pairs {
			p := &st.pairs[pi]
			if p.remaining == 0 || s.rowBusy[p.src] || s.colBusy[p.dst] {
				continue
			}
			s.rowBusy[p.src] = true
			s.colBusy[p.dst] = true
			p.remaining--
			st.remaining--
			res.Served = append(res.Served, Assignment{Key: st.key, Src: p.src, Dst: p.dst})
		}
		if st.remaining == 0 {
			res.Completed = append(res.Completed, st.key)
			s.drop(st)
		}
	}
	return res
}

// drop removes st from the live list and index.
func (s *State) drop(st *cfState) {
	delete(s.index, st.key)
	for i, cur := range s.list {
		if cur == st {
			s.list = append(s.list[:i], s.list[i+1:]...)
			return
		}
	}
}
