package online

import (
	"math/rand"
	"testing"

	"coflow/internal/bvn"
	"coflow/internal/coflowmodel"
	"coflow/internal/matrix"
	"coflow/internal/obs"
)

// TestPlannerDifferential drives the planner with random interleavings
// of Add (growth), Observe (service), Shed (cancellation) and Plan,
// shadowing the aggregate demand independently. Every Plan must be a
// valid BvN decomposition of the shadow (full Lemma 4 contract),
// whether it came from the cold path or the incremental Update path.
func TestPlannerDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const m = 5
	for seq := 0; seq < 200; seq++ {
		p := NewPlanner(m)
		shadow := matrix.NewSquare(m)
		for step := 0; step < 20; step++ {
			switch rng.Intn(4) {
			case 0: // register a coflow
				flows := make([]coflowmodel.Flow, 1+rng.Intn(4))
				for i := range flows {
					flows[i] = coflowmodel.Flow{
						Src: rng.Intn(m), Dst: rng.Intn(m), Size: rng.Int63n(6),
					}
					shadow.Add(flows[i].Src, flows[i].Dst, flows[i].Size)
				}
				if err := p.Add(flows); err != nil {
					t.Fatalf("seq %d step %d: Add: %v", seq, step, err)
				}
			case 1: // serve up to one unit per positive cell
				var served []Assignment
				for i := 0; i < m; i++ {
					for j := 0; j < m; j++ {
						if shadow.At(i, j) > 0 && rng.Intn(2) == 0 {
							served = append(served, Assignment{Src: i, Dst: j})
							shadow.Add(i, j, -1)
						}
					}
				}
				if err := p.Observe(served); err != nil {
					t.Fatalf("seq %d step %d: Observe: %v", seq, step, err)
				}
			case 2: // cancel: shed a random chunk of remaining demand
				var entries []matrix.SparseEntry
				for i := 0; i < m; i++ {
					for j := 0; j < m; j++ {
						if v := shadow.At(i, j); v > 0 && rng.Intn(3) == 0 {
							q := 1 + rng.Int63n(v)
							entries = append(entries, matrix.SparseEntry{Row: i, Col: j, Val: q})
							shadow.Add(i, j, -q)
						}
					}
				}
				if err := p.Shed(entries); err != nil {
					t.Fatalf("seq %d step %d: Shed: %v", seq, step, err)
				}
			case 3:
				dec, err := p.Plan()
				if err != nil {
					t.Fatalf("seq %d step %d: Plan: %v", seq, step, err)
				}
				if err := dec.Verify(shadow); err != nil {
					t.Fatalf("seq %d step %d: plan diverged: %v\nshadow:\n%v", seq, step, err, shadow)
				}
				if p.Load() != shadow.Load() {
					t.Fatalf("seq %d step %d: Load %d, want %d", seq, step, p.Load(), shadow.Load())
				}
			}
		}
	}
}

// TestPlannerIncrementalPath asserts the steady-state contract: with
// no growth between Plans, repairs run through Decomposer.Update (not
// cold decompositions), and an unchanged backlog returns the cached
// plan without touching the Decomposer at all.
func TestPlannerIncrementalPath(t *testing.T) {
	reg := obs.NewRegistry()
	o := bvn.NewObs(reg)
	p := NewPlanner(3)
	p.SetObs(o)
	if err := p.Add([]coflowmodel.Flow{
		{Src: 0, Dst: 1, Size: 4}, {Src: 1, Dst: 0, Size: 3}, {Src: 2, Dst: 2, Size: 2},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Plan(); err != nil {
		t.Fatal(err)
	}
	if got := o.Decomposes.Value(); got != 1 {
		t.Fatalf("first Plan ran %d decompositions, want 1", got)
	}
	// Shrink-only transitions must repair incrementally.
	for i := 0; i < 3; i++ {
		if err := p.Observe([]Assignment{{Src: 0, Dst: 1}}); err != nil {
			t.Fatal(err)
		}
		if _, err := p.Plan(); err != nil {
			t.Fatal(err)
		}
	}
	if got := o.Updates.Value(); got != 3 {
		t.Fatalf("3 shrink Plans ran %d Updates, want 3", got)
	}
	if got := o.Decomposes.Value() - o.UpdateFallbacks.Value(); got != 1 {
		t.Fatalf("shrink Plans ran %d non-fallback cold decompositions, want 1", got)
	}
	// An unchanged backlog is served from the cache.
	updates, decomposes := o.Updates.Value(), o.Decomposes.Value()
	for i := 0; i < 5; i++ {
		if _, err := p.Plan(); err != nil {
			t.Fatal(err)
		}
	}
	if o.Updates.Value() != updates || o.Decomposes.Value() != decomposes {
		t.Fatal("Plan on an unchanged backlog did not use the cache")
	}
}

// TestPlannerMisuse checks the conservation guards.
func TestPlannerMisuse(t *testing.T) {
	p := NewPlanner(3)
	if err := p.Add([]coflowmodel.Flow{{Src: 0, Dst: 5, Size: 1}}); err == nil {
		t.Fatal("Add out of port range succeeded")
	}
	if err := p.Add([]coflowmodel.Flow{{Src: 0, Dst: 1, Size: -1}}); err == nil {
		t.Fatal("Add with negative size succeeded")
	}
	if err := p.Observe([]Assignment{{Src: 0, Dst: 0}}); err == nil {
		t.Fatal("Observe without demand succeeded")
	}
	if err := p.Shed([]matrix.SparseEntry{{Row: 0, Col: 0, Val: 1}}); err == nil {
		t.Fatal("Shed beyond demand succeeded")
	}
}

// TestPlanAfterShedRepairsCache is the hand-audit regression for the
// pooled-plan cache: a Shed between Plans must not serve the stale
// cached decomposition — the next Plan has to repair (via Update, not
// a cold recompute) and its result must decompose the reduced demand.
func TestPlanAfterShedRepairsCache(t *testing.T) {
	reg := obs.NewRegistry()
	o := bvn.NewObs(reg)
	p := NewPlanner(2)
	p.SetObs(o)
	if err := p.Add([]coflowmodel.Flow{
		{Src: 0, Dst: 0, Size: 2}, {Src: 1, Dst: 1, Size: 2},
		{Src: 0, Dst: 1, Size: 1}, {Src: 1, Dst: 0, Size: 1},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Plan(); err != nil {
		t.Fatal(err)
	}
	if got := p.Load(); got != 3 {
		t.Fatalf("initial Load = %d, want 3", got)
	}

	// Cancel the off-diagonal demand entirely.
	if err := p.Shed([]matrix.SparseEntry{
		{Row: 0, Col: 1, Val: 1}, {Row: 1, Col: 0, Val: 1},
	}); err != nil {
		t.Fatal(err)
	}
	decomposes := o.Decomposes.Value()
	dec, err := p.Plan()
	if err != nil {
		t.Fatal(err)
	}
	want := matrix.NewSquare(2)
	want.Add(0, 0, 2)
	want.Add(1, 1, 2)
	if err := dec.Verify(want); err != nil {
		t.Fatalf("Plan after Shed served a stale decomposition: %v", err)
	}
	if got := p.Load(); got != 2 {
		t.Fatalf("Load after Shed = %d, want 2", got)
	}
	if got := o.Updates.Value(); got != 1 {
		t.Fatalf("Plan after Shed ran %d Updates, want 1 (incremental repair)", got)
	}
	if got := o.Decomposes.Value() - o.UpdateFallbacks.Value(); got != decomposes {
		t.Fatal("Plan after Shed ran a cold decomposition instead of the incremental repair")
	}
}
