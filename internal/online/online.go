// Package online implements slot-by-slot online coflow scheduling:
// the paper's concluding discussion asks for algorithms that work "in
// real time in a real system" without solving an LP over the whole
// future. The scheduler here makes no use of release dates beyond
// observing arrivals: in every slot it greedily builds a matching over
// the remaining demand of the currently released coflows, visiting
// coflows in a priority order that is recomputed from the live state.
//
// Three priorities are provided: FIFO (arrival order), weighted SEBF
// (remaining bottleneck over weight, the online analogue of H_ρ), and
// WSPT (total remaining work over weight). Greedy maximal matchings
// give the classical factor-2 slot overhead versus a Birkhoff–von
// Neumann schedule in the worst case, in exchange for O(1) lookahead.
package online

import (
	"fmt"
	"sort"

	"coflow/internal/coflowmodel"
)

// Policy selects the per-slot coflow priority.
type Policy int

const (
	// FIFO serves coflows in arrival (release, then ID) order.
	FIFO Policy = iota
	// SEBF serves the smallest remaining-bottleneck-per-weight first.
	SEBF
	// WSPT serves the smallest remaining-work-per-weight first.
	WSPT
)

func (p Policy) String() string {
	switch p {
	case FIFO:
		return "FIFO"
	case SEBF:
		return "SEBF"
	case WSPT:
		return "WSPT"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// Result reports an online run.
type Result struct {
	// Completion[k] is the completion slot of ins.Coflows[k] (its
	// release if it has no demand).
	Completion []int64
	// TotalWeighted is Σ w_k·Completion[k].
	TotalWeighted float64
	// Makespan is the largest completion time.
	Makespan int64
	// Slots is the number of slots simulated.
	Slots int64
}

type pairDemand struct {
	src, dst  int
	remaining int64
}

type cfState struct {
	key       int // caller's identifier (batch runs use the instance index)
	release   int64
	weight    float64
	pairs     []pairDemand
	remaining int64 // total units left
	maxPort   int64 // remaining bottleneck (recomputed lazily)
}

// SimulateOrder runs the per-slot greedy scheduler with a FIXED coflow
// priority permutation (indices into ins.Coflows): in every slot the
// matching is built by visiting coflows in exactly that order. This is
// the "permutation schedule" notion of the paper's §1.1 — the same
// priority order enforced on all ports at all times — used to
// demonstrate that permutation schedules need not be optimal for
// coflows (they are for concurrent open shop).
func SimulateOrder(ins *coflowmodel.Instance, order []int) (*Result, error) {
	if len(order) != len(ins.Coflows) {
		return nil, fmt.Errorf("online: order has %d entries, instance has %d coflows", len(order), len(ins.Coflows))
	}
	seen := make([]bool, len(ins.Coflows))
	for _, k := range order {
		if k < 0 || k >= len(ins.Coflows) || seen[k] {
			return nil, fmt.Errorf("online: order is not a permutation")
		}
		seen[k] = true
	}
	rank := make([]int, len(ins.Coflows))
	for pos, k := range order {
		rank[k] = pos
	}
	return simulate(ins, func(active []*cfState) {
		sort.SliceStable(active, func(a, b int) bool {
			return rank[active[a].key] < rank[active[b].key]
		})
	})
}

// Simulate runs the online greedy scheduler under the given policy.
func Simulate(ins *coflowmodel.Instance, policy Policy) (*Result, error) {
	m := ins.Ports
	return simulate(ins, func(active []*cfState) {
		if policy == SEBF {
			for _, st := range active {
				refreshBottleneck(st, m)
			}
		}
		prioritize(active, policy)
	})
}

// simulate is the batch driver over the incremental State/step core
// (the same code path a resident scheduler uses): load every coflow,
// then step slot by slot, skipping idle gaps between arrivals.
func simulate(ins *coflowmodel.Instance, reorder func([]*cfState)) (*Result, error) {
	if err := ins.Validate(); err != nil {
		return nil, err
	}
	n := len(ins.Coflows)
	state := NewState(ins.Ports)
	res := &Result{Completion: make([]int64, n)}
	for k := range ins.Coflows {
		c := &ins.Coflows[k]
		remaining, err := state.Add(k, c.Weight, c.Release, c.Flows)
		if err != nil {
			return nil, err
		}
		if remaining == 0 {
			res.Completion[k] = c.Release
		}
	}

	var t int64
	horizon := ins.Horizon() + 1
	for state.Len() > 0 {
		if t > horizon {
			return nil, fmt.Errorf("online: exceeded horizon %d with work remaining (scheduler stalled)", horizon)
		}
		step := state.step(t+1, reorder)
		if step.Active == 0 {
			t = state.NextRelease(t) // idle until the next arrival
			continue
		}
		for _, k := range step.Completed {
			res.Completion[k] = step.Slot
		}
		t = step.Slot
	}
	res.Slots = t
	for k := range ins.Coflows {
		res.TotalWeighted += ins.Coflows[k].Weight * float64(res.Completion[k])
		if res.Completion[k] > res.Makespan {
			res.Makespan = res.Completion[k]
		}
	}
	return res, nil
}

func prioritize(active []*cfState, policy Policy) {
	switch policy {
	case FIFO:
		sort.SliceStable(active, func(a, b int) bool {
			if active[a].release != active[b].release {
				return active[a].release < active[b].release
			}
			return active[a].key < active[b].key
		})
	case SEBF:
		sort.SliceStable(active, func(a, b int) bool {
			ka := float64(active[a].maxPort) / active[a].weight
			kb := float64(active[b].maxPort) / active[b].weight
			if ka != kb {
				return ka < kb
			}
			return active[a].key < active[b].key
		})
	case WSPT:
		sort.SliceStable(active, func(a, b int) bool {
			ka := float64(active[a].remaining) / active[a].weight
			kb := float64(active[b].remaining) / active[b].weight
			if ka != kb {
				return ka < kb
			}
			return active[a].key < active[b].key
		})
	}
}

// refreshBottleneck recomputes the remaining per-port bottleneck of a
// coflow from its live pair demands.
func refreshBottleneck(st *cfState, m int) {
	rows := make([]int64, m)
	cols := make([]int64, m)
	var b int64
	for _, p := range st.pairs {
		rows[p.src] += p.remaining
		cols[p.dst] += p.remaining
		if rows[p.src] > b {
			b = rows[p.src]
		}
		if cols[p.dst] > b {
			b = cols[p.dst]
		}
	}
	st.maxPort = b
}
