// Package online implements slot-by-slot online coflow scheduling:
// the paper's concluding discussion asks for algorithms that work "in
// real time in a real system" without solving an LP over the whole
// future. The scheduler here makes no use of release dates beyond
// observing arrivals: in every slot it greedily builds a matching over
// the remaining demand of the currently released coflows, visiting
// coflows in a priority order that is recomputed from the live state.
//
// Three priorities are provided: FIFO (arrival order), weighted SEBF
// (remaining bottleneck over weight, the online analogue of H_ρ), and
// WSPT (total remaining work over weight). Greedy maximal matchings
// give the classical factor-2 slot overhead versus a Birkhoff–von
// Neumann schedule in the worst case, in exchange for O(1) lookahead.
package online

import (
	"fmt"
	"math"
	"slices"
	"sort"

	"coflow/internal/coflowmodel"
	"coflow/internal/matrix"
)

// Policy selects the per-slot coflow priority.
type Policy int

const (
	// FIFO serves coflows in arrival (release, then ID) order.
	FIFO Policy = iota
	// SEBF serves the smallest remaining-bottleneck-per-weight first.
	SEBF
	// WSPT serves the smallest remaining-work-per-weight first.
	WSPT
)

func (p Policy) String() string {
	switch p {
	case FIFO:
		return "FIFO"
	case SEBF:
		return "SEBF"
	case WSPT:
		return "WSPT"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// Result reports an online run.
type Result struct {
	// Completion[k] is the completion slot of ins.Coflows[k] (its
	// release if it has no demand).
	Completion []int64
	// TotalWeighted is Σ w_k·Completion[k].
	TotalWeighted float64
	// Makespan is the largest completion time.
	Makespan int64
	// Slots is the number of slots simulated.
	Slots int64
}

// cfState is one live coflow: its sparse remaining demand (which
// maintains row/col sums, the total, and the SEBF bottleneck ρ
// incrementally as units drain) plus the priority key of the current
// slot's sort.
type cfState struct {
	key     int // caller's identifier (batch runs use the instance index)
	release int64
	weight  float64
	demand  *matrix.Sparse
	prio    float64 // per-slot sort key (SEBF/WSPT), set by prioritizeList
}

// SimulateOrder runs the per-slot greedy scheduler with a FIXED coflow
// priority permutation (indices into ins.Coflows): in every slot the
// matching is built by visiting coflows in exactly that order. This is
// the "permutation schedule" notion of the paper's §1.1 — the same
// priority order enforced on all ports at all times — used to
// demonstrate that permutation schedules need not be optimal for
// coflows (they are for concurrent open shop).
func SimulateOrder(ins *coflowmodel.Instance, order []int) (*Result, error) {
	if len(order) != len(ins.Coflows) {
		return nil, fmt.Errorf("online: order has %d entries, instance has %d coflows", len(order), len(ins.Coflows))
	}
	seen := make([]bool, len(ins.Coflows))
	for _, k := range order {
		if k < 0 || k >= len(ins.Coflows) || seen[k] {
			return nil, fmt.Errorf("online: order is not a permutation")
		}
		seen[k] = true
	}
	rank := make([]int, len(ins.Coflows))
	for pos, k := range order {
		rank[k] = pos
	}
	return simulate(ins, func(s *State, slot int64) StepResult {
		//lint:ignore pooled the closure re-lends step's loan to the synchronous simulate driver, which consumes it before the next step
		return s.step(slot, func(active []*cfState) {
			sort.SliceStable(active, func(a, b int) bool {
				return rank[active[a].key] < rank[active[b].key]
			})
		})
	})
}

// Simulate runs the online greedy scheduler under the given policy.
func Simulate(ins *coflowmodel.Instance, policy Policy) (*Result, error) {
	return simulate(ins, func(s *State, slot int64) StepResult {
		//lint:ignore pooled the closure re-lends Step's loan to the synchronous simulate driver, which consumes it before the next Step
		return s.Step(slot, policy)
	})
}

// simulate is the batch driver over the incremental State/Step core
// (the same code path a resident scheduler uses): load every coflow,
// then step slot by slot, skipping idle gaps between arrivals.
func simulate(ins *coflowmodel.Instance, stepFn func(*State, int64) StepResult) (*Result, error) {
	if err := ins.Validate(); err != nil {
		return nil, err
	}
	n := len(ins.Coflows)
	state := NewState(ins.Ports)
	state.SetObs(pkgObs)
	res := &Result{Completion: make([]int64, n)}
	for k := range ins.Coflows {
		c := &ins.Coflows[k]
		remaining, err := state.Add(k, c.Weight, c.Release, c.Flows)
		if err != nil {
			return nil, err
		}
		if remaining == 0 {
			res.Completion[k] = c.Release
		}
	}

	var t int64
	horizon := ins.Horizon() + 1
	for state.Len() > 0 {
		if t > horizon {
			return nil, fmt.Errorf("online: exceeded horizon %d with work remaining (scheduler stalled)", horizon)
		}
		step := stepFn(state, t+1)
		if step.Active == 0 {
			t = state.NextRelease(t) // idle until the next arrival
			continue
		}
		for _, k := range step.Completed {
			res.Completion[k] = step.Slot
		}
		t = step.Slot
	}
	res.Slots = t
	for k := range ins.Coflows {
		res.TotalWeighted += ins.Coflows[k].Weight * float64(res.Completion[k])
		if res.Completion[k] > res.Makespan {
			res.Makespan = res.Completion[k]
		}
	}
	return res, nil
}

// fifoCmp orders by (release, key): arrival order with a deterministic
// tie-break.
//
//coflow:allocfree
func fifoCmp(a, b *cfState) int {
	if a.release != b.release {
		if a.release < b.release {
			return -1
		}
		return 1
	}
	return a.key - b.key
}

// prioCmp orders by the precomputed priority key, breaking ties on the
// unique coflow key so every policy order is a strict total order.
//
//coflow:allocfree
func prioCmp(a, b *cfState) int {
	if a.prio != b.prio {
		if a.prio < b.prio {
			return -1
		}
		return 1
	}
	return a.key - b.key
}

// prioritizeList sorts the live list into the policy's priority order.
// Priorities are precomputed into cfState.prio (one O(1) read per
// coflow — the sparse demand maintains its bottleneck and total
// incrementally), then an O(n) sorted-check skips the sort entirely on
// the common steady-state slot where no coflow overtook another. FIFO
// keys never change, so a sorted list stays sorted until the next Add
// (or a sort under another policy) and skips even the check.
//
// The return reports whether the list was ALREADY in order — i.e. no
// element moved — which is what the warm-start replay in Step needs to
// know (an unchanged visit order).
//
//coflow:allocfree
func (s *State) prioritizeList(policy Policy) bool {
	list := s.list
	switch policy {
	case FIFO:
		if s.fifoSorted {
			s.obs.SortSkips.Inc()
			return true
		}
		if sorted := slices.IsSortedFunc(list, fifoCmp); !sorted {
			slices.SortStableFunc(list, fifoCmp)
			s.fifoSorted = true
			return false
		}
		s.fifoSorted = true
		s.obs.SortSkips.Inc()
		return true
	case SEBF:
		if s.failedCount > 0 {
			// Under port failures the bottleneck is computed over the
			// serviceable submatrix only, so parked demand does not
			// distort the order; a fully stranded coflow (masked load
			// 0 but demand remaining) sorts last.
			for _, st := range list {
				if ml := st.demand.LoadMasked(s.failed); ml > 0 {
					st.prio = float64(ml) / st.weight
				} else {
					st.prio = math.Inf(1)
				}
			}
			break
		}
		for _, st := range list {
			st.prio = float64(st.demand.Load()) / st.weight
		}
	case WSPT:
		if s.failedCount > 0 {
			for _, st := range list {
				if mt := st.demand.TotalMasked(s.failed); mt > 0 {
					st.prio = float64(mt) / st.weight
				} else {
					st.prio = math.Inf(1)
				}
			}
			break
		}
		for _, st := range list {
			st.prio = float64(st.demand.Total()) / st.weight
		}
	}
	if !slices.IsSortedFunc(list, prioCmp) {
		slices.SortStableFunc(list, prioCmp)
		s.fifoSorted = false
		return false
	}
	s.obs.SortSkips.Inc()
	return true
}
