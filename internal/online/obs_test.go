package online

import (
	"math/rand"
	"testing"

	"coflow/internal/coflowmodel"
	"coflow/internal/obs"
)

// TestStepObsEnabledDoesNotAllocate is the enabled-path companion of
// TestStepDoesNotAllocate: with a live registry wired in (histograms,
// counters, and a trace ring), a steady-state serving tick must still
// run with zero heap allocations — all metric updates are atomic
// stores into pre-allocated structures, spans are stack values, and
// the trace ring overwrites in place.
func TestStepObsEnabledDoesNotAllocate(t *testing.T) {
	for _, p := range []Policy{FIFO, SEBF, WSPT} {
		t.Run("serving-"+p.String(), func(t *testing.T) {
			reg := obs.NewRegistry()
			o := NewObs(reg)
			o.Trace = obs.NewTrace(256)
			s := benchState(50, 200)
			s.SetObs(o)
			// Warm up: the first slots may grow the reusable buffers.
			slot := int64(0)
			for ; slot < 3; slot++ {
				s.Step(slot+1, p)
			}
			if avg := testing.AllocsPerRun(200, func() {
				slot++
				s.Step(slot, p)
			}); avg != 0 {
				t.Errorf("instrumented %v tick allocates %.1f times per step, want 0", p, avg)
			}
			if got := o.Steps.Value(); got == 0 {
				t.Fatal("instrumentation did not record any steps")
			}
			if o.StepSeconds.Snapshot().Count == 0 {
				t.Fatal("step histogram recorded no samples")
			}
			if o.Trace.Len() == 0 {
				t.Fatal("trace ring recorded no events")
			}
		})
	}
	t.Run("noop", func(t *testing.T) {
		reg := obs.NewRegistry()
		s := NewState(100)
		s.SetObs(NewObs(reg))
		if _, err := s.Add(1, 1, 1<<40, []coflowmodel.Flow{{Src: 0, Dst: 0, Size: 1}}); err != nil {
			t.Fatal(err)
		}
		slot := int64(0)
		if avg := testing.AllocsPerRun(200, func() {
			slot++
			s.Step(slot, SEBF)
		}); avg != 0 {
			t.Errorf("instrumented no-op tick allocates %.1f times per step, want 0", avg)
		}
	})
}

// TestObsCountersConsistent runs a full simulation with instrumentation
// and checks the bookkeeping identities: every step is a replay, a
// full scan, or idle; units served equals the instance's total demand.
func TestObsCountersConsistent(t *testing.T) {
	reg := obs.NewRegistry()
	o := NewObs(reg)
	SetDefaultObs(o)
	defer SetDefaultObs(Obs{})

	ins := randomInstance(rand.New(rand.NewSource(7)), 8, 20, 12, 30)
	res, err := Simulate(ins, SEBF)
	if err != nil {
		t.Fatal(err)
	}
	steps := o.Steps.Value()
	replays := o.Replays.Value()
	scans := o.FullScans.Value()
	idle := o.IdleSteps.Value()
	if replays+scans+idle != steps {
		t.Errorf("replays(%d) + scans(%d) + idle(%d) != steps(%d)", replays, scans, idle, steps)
	}
	var total int64
	for k := range ins.Coflows {
		total += ins.Coflows[k].TotalSize()
	}
	if got := o.UnitsServed.Value(); got != total {
		t.Errorf("units served = %d, want total demand %d", got, total)
	}
	if got := o.CoflowsCompleted.Value(); got != int64(len(ins.Coflows)) {
		t.Errorf("completions = %d, want %d", got, len(ins.Coflows))
	}
	if res.Makespan <= 0 {
		t.Fatalf("degenerate makespan %d", res.Makespan)
	}
	rate := o.WarmStartHitRate()
	if rate < 0 || rate > 1 {
		t.Errorf("warm-start hit rate %v outside [0,1]", rate)
	}
}
