package online

import (
	"math/rand"
	"testing"

	"coflow/internal/coflowmodel"
	"coflow/internal/matrix"
)

func inst(ports int, coflows ...coflowmodel.Coflow) *coflowmodel.Instance {
	return &coflowmodel.Instance{Ports: ports, Coflows: coflows}
}

func TestSingleCoflowWithinTwiceLoad(t *testing.T) {
	// Greedy maximal matchings clear a coflow within 2ρ−1 slots.
	d := matrix.MustFromRows([][]int64{{1, 2}, {2, 1}})
	for _, p := range []Policy{FIFO, SEBF, WSPT} {
		res, err := Simulate(inst(2, coflowmodel.FromMatrix(1, 1, 0, d)), p)
		if err != nil {
			t.Fatal(err)
		}
		if res.Completion[0] < 3 || res.Completion[0] > 5 {
			t.Fatalf("%v: completion %d outside [ρ, 2ρ−1] = [3, 5]", p, res.Completion[0])
		}
	}
}

func TestSingleFlowExact(t *testing.T) {
	c := coflowmodel.Coflow{ID: 1, Weight: 1, Flows: []coflowmodel.Flow{{Src: 0, Dst: 0, Size: 7}}}
	res, err := Simulate(inst(1, c), FIFO)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completion[0] != 7 {
		t.Fatalf("completion = %d, want 7", res.Completion[0])
	}
}

func TestArrivalsRespected(t *testing.T) {
	c := coflowmodel.Coflow{ID: 1, Weight: 1, Release: 10,
		Flows: []coflowmodel.Flow{{Src: 0, Dst: 0, Size: 2}}}
	res, err := Simulate(inst(1, c), SEBF)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completion[0] != 12 {
		t.Fatalf("completion = %d, want 12 (release 10 + 2 units)", res.Completion[0])
	}
}

func TestEmptyCoflow(t *testing.T) {
	empty := coflowmodel.Coflow{ID: 1, Weight: 1, Release: 3}
	busy := coflowmodel.Coflow{ID: 2, Weight: 1, Flows: []coflowmodel.Flow{{Src: 0, Dst: 0, Size: 1}}}
	res, err := Simulate(inst(1, empty, busy), WSPT)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completion[0] != 3 {
		t.Fatalf("empty coflow completion = %d, want release 3", res.Completion[0])
	}
}

func TestSEBFPrioritizesSmall(t *testing.T) {
	big := coflowmodel.Coflow{ID: 1, Weight: 1, Flows: []coflowmodel.Flow{{Src: 0, Dst: 0, Size: 20}}}
	small := coflowmodel.Coflow{ID: 2, Weight: 1, Flows: []coflowmodel.Flow{{Src: 0, Dst: 0, Size: 2}}}
	res, err := Simulate(inst(1, big, small), SEBF)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completion[1] != 2 || res.Completion[0] != 22 {
		t.Fatalf("completions = %v, want small at 2, big at 22", res.Completion)
	}
	// FIFO does the opposite.
	res, err = Simulate(inst(1, big, small), FIFO)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completion[0] != 20 || res.Completion[1] != 22 {
		t.Fatalf("FIFO completions = %v, want big at 20, small at 22", res.Completion)
	}
}

func TestWeightedPriority(t *testing.T) {
	light := coflowmodel.Coflow{ID: 1, Weight: 1, Flows: []coflowmodel.Flow{{Src: 0, Dst: 0, Size: 5}}}
	heavy := coflowmodel.Coflow{ID: 2, Weight: 100, Flows: []coflowmodel.Flow{{Src: 0, Dst: 0, Size: 5}}}
	for _, p := range []Policy{SEBF, WSPT} {
		res, err := Simulate(inst(1, light, heavy), p)
		if err != nil {
			t.Fatal(err)
		}
		if res.Completion[1] != 5 {
			t.Fatalf("%v: heavy coflow at %d, want 5", p, res.Completion[1])
		}
	}
}

func randomInstance(rng *rand.Rand, m, n int, maxSize, maxRelease int64) *coflowmodel.Instance {
	ins := &coflowmodel.Instance{Ports: m}
	for k := 0; k < n; k++ {
		c := coflowmodel.Coflow{ID: k + 1, Weight: 1 + float64(rng.Intn(5))}
		if maxRelease > 0 {
			c.Release = rng.Int63n(maxRelease + 1)
		}
		for f := 0; f < 1+rng.Intn(m*m); f++ {
			c.Flows = append(c.Flows, coflowmodel.Flow{
				Src: rng.Intn(m), Dst: rng.Intn(m), Size: 1 + rng.Int63n(maxSize),
			})
		}
		ins.Coflows = append(ins.Coflows, c)
	}
	return ins
}

// All work must be served; completions respect release + own load;
// and the makespan respects the global load bound.
func TestInvariantsOnRandomInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(2025))
	for trial := 0; trial < 80; trial++ {
		m := 1 + rng.Intn(4)
		n := 1 + rng.Intn(7)
		ins := randomInstance(rng, m, n, 7, 6)
		for _, p := range []Policy{FIFO, SEBF, WSPT} {
			res, err := Simulate(ins, p)
			if err != nil {
				t.Fatalf("trial %d %v: %v", trial, p, err)
			}
			sum := matrix.NewSquare(m)
			for k := range ins.Coflows {
				c := &ins.Coflows[k]
				min := c.Release + c.Load(m)
				if res.Completion[k] < min {
					t.Fatalf("trial %d %v: coflow %d at %d beats bound %d",
						trial, p, k, res.Completion[k], min)
				}
				sum.AddMatrix(c.Matrix(m))
			}
			if res.Makespan < sum.Load() {
				t.Fatalf("trial %d %v: makespan %d beats ρ(ΣD) = %d",
					trial, p, res.Makespan, sum.Load())
			}
			// Greedy maximal matching guarantee: within 2× the naive
			// sequential bound.
			if res.Makespan > 2*ins.Horizon() {
				t.Fatalf("trial %d %v: makespan %d implausibly large", trial, p, res.Makespan)
			}
		}
	}
}

func TestPolicyString(t *testing.T) {
	if FIFO.String() != "FIFO" || SEBF.String() != "SEBF" || WSPT.String() != "WSPT" {
		t.Fatal("Policy.String broken")
	}
}

func BenchmarkOnlineSEBF(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	ins := randomInstance(rng, 20, 30, 20, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(ins, SEBF); err != nil {
			b.Fatal(err)
		}
	}
}

func TestSimulateOrderFixedPriority(t *testing.T) {
	big := coflowmodel.Coflow{ID: 1, Weight: 1, Flows: []coflowmodel.Flow{{Src: 0, Dst: 0, Size: 20}}}
	small := coflowmodel.Coflow{ID: 2, Weight: 1, Flows: []coflowmodel.Flow{{Src: 0, Dst: 0, Size: 2}}}
	ins := inst(1, big, small)
	// Big first.
	res, err := SimulateOrder(ins, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completion[0] != 20 || res.Completion[1] != 22 {
		t.Fatalf("completions = %v, want [20 22]", res.Completion)
	}
	// Small first.
	res, err = SimulateOrder(ins, []int{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completion[1] != 2 || res.Completion[0] != 22 {
		t.Fatalf("completions = %v, want small 2, big 22", res.Completion)
	}
}

func TestSimulateOrderValidation(t *testing.T) {
	ins := inst(1, coflowmodel.Coflow{ID: 1, Weight: 1, Flows: []coflowmodel.Flow{{Src: 0, Dst: 0, Size: 1}}})
	for _, bad := range [][]int{{}, {0, 0}, {1}} {
		if _, err := SimulateOrder(ins, bad); err == nil {
			t.Errorf("order %v accepted", bad)
		}
	}
}
