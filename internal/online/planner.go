package online

import (
	"fmt"

	"coflow/internal/bvn"
	"coflow/internal/coflowmodel"
	"coflow/internal/matrix"
)

// Planner maintains a live Birkhoff–von Neumann plan of the aggregate
// remaining demand on an m×m switch. It is the Decomposer-backed
// counterpart of the greedy Step loop: where Step commits to a maximal
// matching per slot, the Planner's Plan is the full Σ qᵤ·Πᵤ expansion
// of Algorithm 1, whose ρ(D) slots are the optimal clearing time of
// the current backlog.
//
// The Planner exploits the slot pipeline's shrink-only steady state:
// between registrations the aggregate demand only loses served (or
// cancelled) units, so consecutive Plan calls run the Decomposer's
// incremental Update repair instead of recomputing Algorithm 1 —
// O(changed terms) instead of O(m·nnz) matchings per slot. A
// registration grows the demand and forces the next Plan cold (the
// warm matcher and term pool still carry over).
//
// The returned *bvn.Decomposition aliases the Decomposer's recycled
// storage and is valid until the next Plan call. A Planner is NOT
// safe for concurrent use; callers serialize access like they do for
// State (coflowd runs both inside its single-writer loop).
type Planner struct {
	ports  int
	dec    *bvn.Decomposer
	demand *matrix.Matrix // aggregate remaining demand
	served *matrix.Matrix // shrinkage accumulated since the last Plan
	plan   *bvn.Decomposition
	grew   bool // demand grew since the last Plan: next Plan is cold
	shrunk bool // served has nonzero entries: next Plan is an Update
}

// NewPlanner creates an empty planner for an m-port switch. It panics
// if ports is not positive.
func NewPlanner(ports int) *Planner {
	if ports <= 0 {
		panic(fmt.Sprintf("online: non-positive port count %d", ports))
	}
	return &Planner{
		ports:  ports,
		dec:    bvn.NewDecomposer(ports),
		demand: matrix.NewSquare(ports),
		served: matrix.NewSquare(ports),
	}
}

// SetObs installs the decomposition instrumentation (term-reuse hit
// rate, update fallbacks, matcher warm-start counters) on the owned
// Decomposer.
func (p *Planner) SetObs(o bvn.Obs) { p.dec.SetObs(o) }

// Ports returns the switch size m.
func (p *Planner) Ports() int { return p.ports }

// Add accumulates a registered coflow's flows into the aggregate
// demand. Flows sharing a port pair accumulate; zero-size flows are
// ignored. The next Plan after an Add runs cold.
func (p *Planner) Add(flows []coflowmodel.Flow) error {
	for _, f := range flows {
		if f.Src < 0 || f.Src >= p.ports || f.Dst < 0 || f.Dst >= p.ports {
			return fmt.Errorf("online: flow (%d→%d) outside %d ports", f.Src, f.Dst, p.ports)
		}
		if f.Size < 0 {
			return fmt.Errorf("online: negative flow size %d on (%d→%d)", f.Size, f.Src, f.Dst)
		}
	}
	for _, f := range flows {
		if f.Size > 0 {
			p.demand.Add(f.Src, f.Dst, f.Size)
			p.grew = true
		}
	}
	return nil
}

// Observe records one slot's served matching: one unit of demand
// drained per assignment. Assignments must reflect real service (the
// planner's demand on each served pair must be positive).
//
//coflow:allocfree
func (p *Planner) Observe(served []Assignment) error {
	for _, a := range served {
		if p.demand.At(a.Src, a.Dst) <= 0 {
			//lint:ignore allocfree misuse error path, never taken by a conservation-respecting caller
			return fmt.Errorf("online: served unit on (%d→%d) with no planned demand", a.Src, a.Dst)
		}
		p.demand.Add(a.Src, a.Dst, -1)
		p.served.Add(a.Src, a.Dst, 1)
		p.shrunk = true
	}
	return nil
}

// Shed removes a cancelled coflow's remaining demand (as reported by
// State.Demand). A cancellation is a shrink like service, so the next
// Plan still runs the incremental Update.
//
//coflow:allocfree
func (p *Planner) Shed(entries []matrix.SparseEntry) error {
	for _, e := range entries {
		if e.Val <= 0 {
			continue
		}
		if p.demand.At(e.Row, e.Col) < e.Val {
			//lint:ignore allocfree misuse error path, never taken by a conservation-respecting caller
			return fmt.Errorf("online: shedding %d on (%d→%d) exceeds planned demand %d",
				e.Val, e.Row, e.Col, p.demand.At(e.Row, e.Col))
		}
		p.demand.Add(e.Row, e.Col, -e.Val)
		p.served.Add(e.Row, e.Col, e.Val)
		p.shrunk = true
	}
	return nil
}

// Plan returns the BvN decomposition of the current aggregate demand:
// cached when nothing changed, incrementally repaired via
// Decomposer.Update when demand only shrank, recomputed cold after a
// growth. The result aliases the Decomposer's storage and is valid
// until the next Plan.
//
//coflow:allocfree
//coflow:pooled
func (p *Planner) Plan() (*bvn.Decomposition, error) {
	switch {
	case p.grew || p.plan == nil:
		//lint:ignore allocfree cold path taken only on growth slots; steady-state shrink slots run the annotated Update
		dec, err := p.dec.Decompose(p.demand)
		if err != nil {
			return nil, err
		}
		p.plan = dec
	case p.shrunk:
		dec, err := p.dec.Update(p.served)
		if err != nil {
			return nil, err
		}
		p.plan = dec
	default:
		return p.plan, nil
	}
	p.served.Zero()
	p.grew, p.shrunk = false, false
	return p.plan, nil
}

// Load returns ρ of the most recent Plan (the optimal number of slots
// to clear that backlog), or 0 before the first Plan.
func (p *Planner) Load() int64 {
	if p.plan == nil {
		return 0
	}
	return p.plan.Load
}

// Terms returns the number of permutation terms in the most recent
// Plan, or 0 before the first Plan.
func (p *Planner) Terms() int {
	if p.plan == nil {
		return 0
	}
	return len(p.plan.Terms)
}
