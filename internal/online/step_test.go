package online

import (
	"math/rand"
	"testing"

	"coflow/internal/coflowmodel"
)

func TestStateAddValidation(t *testing.T) {
	s := NewState(2)
	if _, err := s.Add(1, 1, 0, []coflowmodel.Flow{{Src: 0, Dst: 0, Size: 1}}); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		key     int
		weight  float64
		release int64
		flows   []coflowmodel.Flow
	}{
		{"duplicate key", 1, 1, 0, nil},
		{"zero weight", 2, 0, 0, nil},
		{"negative release", 2, 1, -1, nil},
		{"src out of range", 2, 1, 0, []coflowmodel.Flow{{Src: 2, Dst: 0, Size: 1}}},
		{"dst out of range", 2, 1, 0, []coflowmodel.Flow{{Src: 0, Dst: -1, Size: 1}}},
		{"negative size", 2, 1, 0, []coflowmodel.Flow{{Src: 0, Dst: 0, Size: -1}}},
	}
	for _, tc := range cases {
		if _, err := s.Add(tc.key, tc.weight, tc.release, tc.flows); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d after rejected adds, want 1", s.Len())
	}
}

func TestStateZeroDemandNotRetained(t *testing.T) {
	s := NewState(2)
	rem, err := s.Add(1, 1, 5, []coflowmodel.Flow{{Src: 0, Dst: 1, Size: 0}})
	if err != nil || rem != 0 {
		t.Fatalf("Add = (%d, %v), want (0, nil)", rem, err)
	}
	if s.Len() != 0 {
		t.Fatalf("zero-demand coflow retained (Len = %d)", s.Len())
	}
}

func TestStepServesMatchingAndCompletes(t *testing.T) {
	s := NewState(2)
	// Two coflows on disjoint pairs: both can be served every slot.
	if _, err := s.Add(7, 1, 0, []coflowmodel.Flow{{Src: 0, Dst: 1, Size: 2}}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Add(9, 1, 0, []coflowmodel.Flow{{Src: 1, Dst: 0, Size: 1}}); err != nil {
		t.Fatal(err)
	}
	r1 := s.Step(1, FIFO)
	if r1.Active != 2 || len(r1.Served) != 2 {
		t.Fatalf("slot 1: active=%d served=%v", r1.Active, r1.Served)
	}
	if len(r1.Completed) != 1 || r1.Completed[0] != 9 {
		t.Fatalf("slot 1 completed = %v, want [9]", r1.Completed)
	}
	if rem, ok := s.Remaining(7); !ok || rem != 1 {
		t.Fatalf("Remaining(7) = (%d, %v), want (1, true)", rem, ok)
	}
	r2 := s.Step(2, FIFO)
	if len(r2.Completed) != 1 || r2.Completed[0] != 7 {
		t.Fatalf("slot 2 completed = %v, want [7]", r2.Completed)
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d after completion, want 0", s.Len())
	}
}

func TestStepMatchingConstraint(t *testing.T) {
	// Three coflows all demanding ingress 0: one unit per slot total.
	s := NewState(2)
	for k := 1; k <= 3; k++ {
		if _, err := s.Add(k, 1, 0, []coflowmodel.Flow{{Src: 0, Dst: k % 2, Size: 3}}); err != nil {
			t.Fatal(err)
		}
	}
	for slot := int64(1); s.Len() > 0; slot++ {
		if slot > 100 {
			t.Fatal("did not drain")
		}
		r := s.Step(slot, WSPT)
		srcSeen := map[int]bool{}
		dstSeen := map[int]bool{}
		for _, a := range r.Served {
			if srcSeen[a.Src] || dstSeen[a.Dst] {
				t.Fatalf("slot %d: served set %v is not a matching", slot, r.Served)
			}
			srcSeen[a.Src] = true
			dstSeen[a.Dst] = true
		}
	}
}

func TestStepRespectsRelease(t *testing.T) {
	s := NewState(1)
	if _, err := s.Add(1, 1, 3, []coflowmodel.Flow{{Src: 0, Dst: 0, Size: 1}}); err != nil {
		t.Fatal(err)
	}
	// Released at 3: first eligible slot is 4.
	for slot := int64(1); slot <= 3; slot++ {
		if r := s.Step(slot, SEBF); r.Active != 0 || len(r.Served) != 0 {
			t.Fatalf("slot %d served a coflow released at 3: %+v", slot, r)
		}
	}
	if next := s.NextRelease(0); next != 3 {
		t.Fatalf("NextRelease(0) = %d, want 3", next)
	}
	if next := s.NextRelease(3); next != -1 {
		t.Fatalf("NextRelease(3) = %d, want -1", next)
	}
	r := s.Step(4, SEBF)
	if len(r.Completed) != 1 || r.Completed[0] != 1 {
		t.Fatalf("slot 4 completed = %v, want [1]", r.Completed)
	}
}

func TestRemoveCancelsCoflow(t *testing.T) {
	s := NewState(1)
	if _, err := s.Add(1, 1, 0, []coflowmodel.Flow{{Src: 0, Dst: 0, Size: 10}}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Add(2, 1, 0, []coflowmodel.Flow{{Src: 0, Dst: 0, Size: 1}}); err != nil {
		t.Fatal(err)
	}
	if !s.Remove(1) {
		t.Fatal("Remove(1) = false")
	}
	if s.Remove(1) {
		t.Fatal("Remove(1) succeeded twice")
	}
	if _, ok := s.Remaining(1); ok {
		t.Fatal("removed coflow still live")
	}
	// With the hog cancelled, coflow 2 completes immediately.
	r := s.Step(1, FIFO)
	if len(r.Completed) != 1 || r.Completed[0] != 2 {
		t.Fatalf("completed = %v, want [2]", r.Completed)
	}
}

// The incremental Step path must agree exactly with the batch Simulate
// path (they share the slot core, but the drivers differ).
func TestStepAgreesWithSimulate(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 40; trial++ {
		m := 1 + rng.Intn(4)
		n := 1 + rng.Intn(6)
		ins := randomInstance(rng, m, n, 6, 5)
		for _, p := range []Policy{FIFO, SEBF, WSPT} {
			want, err := Simulate(ins, p)
			if err != nil {
				t.Fatal(err)
			}
			s := NewState(m)
			got := make([]int64, n)
			for k := range ins.Coflows {
				c := &ins.Coflows[k]
				rem, err := s.Add(k, c.Weight, c.Release, c.Flows)
				if err != nil {
					t.Fatal(err)
				}
				if rem == 0 {
					got[k] = c.Release
				}
			}
			// Drive every slot explicitly (no idle skipping).
			for slot := int64(1); s.Len() > 0; slot++ {
				if slot > 2*ins.Horizon()+2 {
					t.Fatalf("trial %d %v: step driver stalled", trial, p)
				}
				for _, k := range s.Step(slot, p).Completed {
					got[k] = slot
				}
			}
			for k := range got {
				if got[k] != want.Completion[k] {
					t.Fatalf("trial %d %v coflow %d: step %d != simulate %d",
						trial, p, k, got[k], want.Completion[k])
				}
			}
		}
	}
}

// TestStepDoesNotAllocate is the allocation regression gate (the
// BenchmarkStep* numbers report the same thing, but a benchmark is only
// read by humans; this fails CI). A no-op tick — nothing released — and
// a steady-state serving tick must both run with zero heap allocations.
func TestStepDoesNotAllocate(t *testing.T) {
	t.Run("noop", func(t *testing.T) {
		s := NewState(100)
		if _, err := s.Add(1, 1, 1<<40, []coflowmodel.Flow{{Src: 0, Dst: 0, Size: 1}}); err != nil {
			t.Fatal(err)
		}
		slot := int64(0)
		if avg := testing.AllocsPerRun(200, func() {
			slot++
			s.Step(slot, SEBF)
		}); avg != 0 {
			t.Errorf("no-op tick allocates %.1f times per step, want 0", avg)
		}
	})
	for _, p := range []Policy{FIFO, SEBF, WSPT} {
		t.Run("serving-"+p.String(), func(t *testing.T) {
			s := benchState(50, 200)
			// Warm up: the first slots may grow the reusable buffers.
			slot := int64(0)
			for ; slot < 3; slot++ {
				s.Step(slot+1, p)
			}
			if avg := testing.AllocsPerRun(200, func() {
				slot++
				s.Step(slot, p)
			}); avg != 0 {
				t.Errorf("steady-state %v tick allocates %.1f times per step, want 0", p, avg)
			}
		})
	}
}

// benchState builds the issue's tracked baseline: m=100 ports with 500
// live coflows whose demand is large enough that none completes during
// the benchmark, so every iteration measures a full scheduling step.
func benchState(m, n int) *State {
	rng := rand.New(rand.NewSource(42))
	s := NewState(m)
	for k := 0; k < n; k++ {
		var flows []coflowmodel.Flow
		for f := 0; f < 1+rng.Intn(8); f++ {
			flows = append(flows, coflowmodel.Flow{
				Src: rng.Intn(m), Dst: rng.Intn(m), Size: 1 << 40,
			})
		}
		if _, err := s.Add(k, 1+float64(rng.Intn(9)), 0, flows); err != nil {
			panic(err)
		}
	}
	return s
}

// BenchmarkStep* track the latency of one daemon scheduling tick at
// datacenter scale. The issue's tracked configurations are m=100 and
// m=500 ports, each with 500 live coflows.
func benchStep(b *testing.B, m, n int, p Policy) {
	b.Helper()
	s := benchState(m, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step(int64(i+1), p)
	}
}

func BenchmarkStepM100C500SEBF(b *testing.B) { benchStep(b, 100, 500, SEBF) }
func BenchmarkStepM100C500WSPT(b *testing.B) { benchStep(b, 100, 500, WSPT) }
func BenchmarkStepM100C500FIFO(b *testing.B) { benchStep(b, 100, 500, FIFO) }
func BenchmarkStepM500C500SEBF(b *testing.B) { benchStep(b, 500, 500, SEBF) }
func BenchmarkStepM500C500WSPT(b *testing.B) { benchStep(b, 500, 500, WSPT) }
func BenchmarkStepM500C500FIFO(b *testing.B) { benchStep(b, 500, 500, FIFO) }

// BenchmarkStepNoopTick measures a tick with no eligible coflow (the
// idle daemon steady state). The regression contract is allocs/op == 0.
func BenchmarkStepNoopTick(b *testing.B) {
	s := NewState(100)
	if _, err := s.Add(1, 1, 1<<40, []coflowmodel.Flow{{Src: 0, Dst: 0, Size: 1}}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step(int64(i+1), SEBF)
	}
}
