package online

import "coflow/internal/obs"

// Obs is the per-stage instrumentation of the slot pipeline. Every
// field is a nil-safe obs metric, so the zero Obs is the disabled
// mode: Step pays one nil check per site and nothing else (the
// TestStepDoesNotAllocate and make-check overhead gates enforce
// this). Wire it with NewObs against a live registry, or leave the
// State's zero value for uninstrumented use.
//
// Stage taxonomy (see DESIGN.md "Observability"):
//
//	step    the whole Step call
//	sort    prioritizeList: priority recompute + sorted-check (+ sort)
//	match   the greedy matching scan of a full-scan slot
//	replay  the warm-start fast path re-serving the previous matching
type Obs struct {
	// Stage timers.
	StepSeconds   *obs.Histogram
	SortSeconds   *obs.Histogram
	MatchSeconds  *obs.Histogram
	ReplaySeconds *obs.Histogram

	// Outcome counters. Steps counts every Step call; a serving step
	// is either a Replay (warm-start hit: the previous slot's matching
	// was provably still optimal and was re-served in O(served)) or a
	// FullScan (warm-start miss: the greedy scan ran). IdleSteps had
	// no eligible coflow. SortSkips counts sorts short-circuited by
	// the sorted-check; SaturationExits counts full scans that stopped
	// early because all m ports were matched.
	Steps           *obs.Counter
	Replays         *obs.Counter
	FullScans       *obs.Counter
	IdleSteps       *obs.Counter
	SortSkips       *obs.Counter
	SaturationExits *obs.Counter

	// Work counters.
	UnitsServed      *obs.Counter
	CoflowsCompleted *obs.Counter

	// Trace, when non-nil, receives one event per serving slot (stage
	// "replay" or "scan", the slot number, and the stage seconds).
	Trace *obs.Trace
}

// NewObs registers the slot-pipeline metrics on r (prefix
// coflow_step_) and returns the wired Obs. A nil registry yields the
// zero (disabled) Obs.
func NewObs(r *obs.Registry) Obs {
	return Obs{
		StepSeconds:   r.Histogram("coflow_step_seconds", "latency of one scheduling step", obs.LatencyBuckets),
		SortSeconds:   r.Histogram("coflow_step_sort_seconds", "latency of the priority sort stage (SEBF sort / sorted-check)", obs.LatencyBuckets),
		MatchSeconds:  r.Histogram("coflow_step_match_seconds", "latency of the greedy matching scan stage", obs.LatencyBuckets),
		ReplaySeconds: r.Histogram("coflow_step_replay_seconds", "latency of the warm-start replay fast path", obs.LatencyBuckets),

		Steps:           r.Counter("coflow_steps_total", "scheduling steps taken"),
		Replays:         r.Counter("coflow_step_matcher_warm_start_hits_total", "serving steps satisfied by replaying the previous matching (warm-start hits)"),
		FullScans:       r.Counter("coflow_step_matcher_warm_start_misses_total", "serving steps that ran the full greedy matching scan (warm-start misses)"),
		IdleSteps:       r.Counter("coflow_step_idle_total", "steps with no eligible coflow"),
		SortSkips:       r.Counter("coflow_step_sort_skips_total", "priority sorts skipped by the sorted-check"),
		SaturationExits: r.Counter("coflow_step_saturation_exits_total", "matching scans stopped early with all ports matched"),

		UnitsServed:      r.Counter("coflow_units_served_total", "data units transferred"),
		CoflowsCompleted: r.Counter("coflow_completions_total", "coflows completed by the scheduler"),
	}
}

// SetObs installs the instrumentation hooks. The zero Obs disables
// them. Call between steps, not concurrently with Step.
func (s *State) SetObs(o Obs) { s.obs = o }

// pkgObs is the default instrumentation inherited by States the batch
// drivers (Simulate, SimulateOrder) create internally; the zero value
// disables it. Long-lived owners like the daemon wire their State
// explicitly with SetObs instead.
var pkgObs Obs

// SetDefaultObs installs instrumentation for batch simulations. Call
// once at startup (not synchronized against concurrent simulations);
// the zero Obs restores the disabled default.
func SetDefaultObs(o Obs) { pkgObs = o }

// WarmStartHitRate returns replays / (replays + full scans), the
// fraction of serving slots satisfied without a matching scan, or 0
// before any serving slot.
func (o *Obs) WarmStartHitRate() float64 {
	hits, misses := o.Replays.Value(), o.FullScans.Value()
	if hits+misses == 0 {
		return 0
	}
	return float64(hits) / float64(hits+misses)
}
