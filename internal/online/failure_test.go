package online

import (
	"testing"

	"coflow/internal/coflowmodel"
)

func TestFailPortValidation(t *testing.T) {
	s := NewState(4)
	if err := s.FailPort(-1); err == nil {
		t.Error("FailPort(-1) accepted")
	}
	if err := s.FailPort(4); err == nil {
		t.Error("FailPort(4) accepted on a 4-port switch")
	}
	if err := s.RecoverPort(99); err == nil {
		t.Error("RecoverPort(99) accepted")
	}
	if err := s.FailPort(2); err != nil {
		t.Fatal(err)
	}
	if err := s.FailPort(2); err != nil {
		t.Fatalf("FailPort is not idempotent: %v", err)
	}
	if !s.PortFailed(2) || s.FailedPortCount() != 1 {
		t.Fatalf("PortFailed(2)=%v count=%d, want true/1", s.PortFailed(2), s.FailedPortCount())
	}
	if got := s.FailedPorts(nil); len(got) != 1 || got[0] != 2 {
		t.Fatalf("FailedPorts = %v, want [2]", got)
	}
	if err := s.RecoverPort(2); err != nil {
		t.Fatal(err)
	}
	if s.PortFailed(2) || s.FailedPortCount() != 0 {
		t.Fatalf("port 2 still failed after recovery")
	}
}

// TestFailPortParksDemand pins the core failure semantics: demand on a
// dead port is never served and never dropped — it parks, and resumes
// after recovery, with total conservation across the whole episode.
func TestFailPortParksDemand(t *testing.T) {
	for _, policy := range []Policy{FIFO, SEBF, WSPT} {
		s := NewState(3)
		// Coflow 1 is entirely on port 0 (ingress); coflow 2 avoids it.
		if _, err := s.Add(1, 1, 0, []coflowmodel.Flow{{Src: 0, Dst: 1, Size: 3}}); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Add(2, 1, 0, []coflowmodel.Flow{{Src: 1, Dst: 2, Size: 2}}); err != nil {
			t.Fatal(err)
		}
		if err := s.FailPort(0); err != nil {
			t.Fatal(err)
		}
		var slot int64
		for ; slot < 3; slot++ {
			res := s.Step(slot+1, policy)
			for _, a := range res.Served {
				if a.Src == 0 || a.Dst == 0 {
					t.Fatalf("%v slot %d: served %+v on failed port 0", policy, res.Slot, a)
				}
			}
		}
		// Coflow 2 drained; coflow 1 is parked intact.
		if rem, ok := s.Remaining(1); !ok || rem != 3 {
			t.Fatalf("%v: Remaining(1) = (%d, %v), want (3, true) while port down", policy, rem, ok)
		}
		if _, ok := s.Remaining(2); ok {
			t.Fatalf("%v: coflow 2 not completed despite live ports", policy)
		}
		if err := s.RecoverPort(0); err != nil {
			t.Fatal(err)
		}
		for ; slot < 10 && s.Len() > 0; slot++ {
			s.Step(slot+1, policy)
		}
		if s.Len() != 0 {
			t.Fatalf("%v: coflow 1 never drained after recovery", policy)
		}
	}
}

// TestFailPortInvalidatesReplay drives the scheduler into the
// warm-start replay regime, then fails a port that the replayed
// matching uses: the next slot must NOT re-serve the dead port.
func TestFailPortInvalidatesReplay(t *testing.T) {
	s := NewState(2)
	if _, err := s.Add(1, 1, 0, []coflowmodel.Flow{{Src: 0, Dst: 1, Size: 10}}); err != nil {
		t.Fatal(err)
	}
	s.Step(1, FIFO)
	s.Step(2, FIFO) // replay regime: same matching recurs
	if err := s.FailPort(0); err != nil {
		t.Fatal(err)
	}
	res := s.Step(3, FIFO)
	if len(res.Served) != 0 {
		t.Fatalf("served %v through failed port 0 (stale replay)", res.Served)
	}
	if rem, _ := s.Remaining(1); rem != 8 {
		t.Fatalf("Remaining = %d, want 8 (two slots served, then parked)", rem)
	}
}

// TestFailPortMaskedPriority: with a port down, SEBF must prefer the
// coflow with the smaller serviceable bottleneck, not the smaller
// nominal one, and a fully stranded coflow must not block others.
func TestFailPortMaskedPriority(t *testing.T) {
	s := NewState(4)
	// Coflow 1: tiny nominal load but fully stranded once port 0 fails.
	if _, err := s.Add(1, 1, 0, []coflowmodel.Flow{{Src: 0, Dst: 1, Size: 1}}); err != nil {
		t.Fatal(err)
	}
	// Coflows 2 and 3 share ingress 2: only one can be served per slot,
	// so priority decides. Coflow 2 has the larger serviceable load.
	if _, err := s.Add(2, 1, 0, []coflowmodel.Flow{{Src: 2, Dst: 3, Size: 5}}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Add(3, 1, 0, []coflowmodel.Flow{{Src: 2, Dst: 1, Size: 2}}); err != nil {
		t.Fatal(err)
	}
	if err := s.FailPort(0); err != nil {
		t.Fatal(err)
	}
	res := s.Step(1, SEBF)
	if len(res.Served) != 1 {
		t.Fatalf("served %v, want exactly one unit (shared ingress)", res.Served)
	}
	if res.Served[0].Key != 3 {
		t.Fatalf("served coflow %d first, want 3 (smallest masked bottleneck)", res.Served[0].Key)
	}
}

func TestStepWithFailedPortDoesNotAllocate(t *testing.T) {
	s := NewState(8)
	for k := 0; k < 4; k++ {
		if _, err := s.Add(k, 1, 0, []coflowmodel.Flow{{Src: k, Dst: k + 4, Size: 1 << 20}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.FailPort(1); err != nil {
		t.Fatal(err)
	}
	var slot int64
	s.Step(1, SEBF)
	slot = 1
	allocs := testing.AllocsPerRun(100, func() {
		slot++
		s.Step(slot, SEBF)
	})
	if allocs != 0 {
		t.Fatalf("Step with a failed port allocates %.1f times per slot, want 0", allocs)
	}
}
