// Package stats provides the summary statistics used when reporting
// schedules: distribution summaries (mean/percentiles) and coflow
// slowdowns. The slowdown of a coflow is C_k / (r_k + ρ_k) — its
// completion time over the best it could possibly achieve alone in
// the fabric — a standard quality metric in the coflow literature.
package stats

import (
	"fmt"
	"math"
	"sort"

	"coflow/internal/coflowmodel"
)

// Summary describes a distribution of non-negative values.
type Summary struct {
	Count         int
	Mean          float64
	P50, P90, P99 float64
	Min, Max      float64
	StdDev        float64
}

// Summarize computes a Summary of values. An empty input yields the
// zero Summary.
func Summarize(values []float64) Summary {
	if len(values) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	var sum, sq float64
	for _, v := range sorted {
		sum += v
		sq += v * v
	}
	n := float64(len(sorted))
	mean := sum / n
	variance := sq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	return Summary{
		Count:  len(sorted),
		Mean:   mean,
		P50:    percentile(sorted, 0.50),
		P90:    percentile(sorted, 0.90),
		P99:    percentile(sorted, 0.99),
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		StdDev: math.Sqrt(variance),
	}
}

// percentile returns the nearest-rank percentile of sorted values.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(p * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// Slowdowns returns, per coflow, C_k / (r_k + ρ_k). Empty coflows
// (no demand) are reported as 1 exactly. It panics if the completion
// vector's length differs from the instance's coflow count.
func Slowdowns(ins *coflowmodel.Instance, completion []int64) []float64 {
	if len(completion) != len(ins.Coflows) {
		panic(fmt.Sprintf("stats: %d completions for %d coflows", len(completion), len(ins.Coflows)))
	}
	out := make([]float64, len(completion))
	for k := range ins.Coflows {
		c := &ins.Coflows[k]
		ideal := c.Release + c.Load(ins.Ports)
		if ideal == 0 {
			out[k] = 1
			continue
		}
		out[k] = float64(completion[k]) / float64(ideal)
	}
	return out
}

// SlowdownSummary is Summarize over Slowdowns.
func SlowdownSummary(ins *coflowmodel.Instance, completion []int64) Summary {
	return Summarize(Slowdowns(ins, completion))
}

// Format renders the summary on one line.
func (s Summary) Format() string {
	if s.Count == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d mean=%.2f p50=%.2f p90=%.2f p99=%.2f max=%.2f",
		s.Count, s.Mean, s.P50, s.P90, s.P99, s.Max)
}
