package stats

import (
	"math"
	"testing"
)

func TestRollingBeforeAnyObservation(t *testing.T) {
	r := NewRolling(4)
	if r.Total() != 0 || r.Last() != 0 {
		t.Fatalf("fresh Rolling: Total=%d Last=%g", r.Total(), r.Last())
	}
	if s := r.Summary(); s.Count != 0 {
		t.Fatalf("fresh Summary = %+v", s)
	}
}

func TestRollingPartialWindow(t *testing.T) {
	r := NewRolling(10)
	r.Observe(2)
	r.Observe(4)
	s := r.Summary()
	if s.Count != 2 || s.Min != 2 || s.Max != 4 || math.Abs(s.Mean-3) > 1e-12 {
		t.Fatalf("partial window summary = %+v", s)
	}
	if r.Last() != 4 || r.Total() != 2 {
		t.Fatalf("Last=%g Total=%d", r.Last(), r.Total())
	}
}

func TestRollingEvictsOldest(t *testing.T) {
	r := NewRolling(3)
	for _, v := range []float64{100, 1, 2, 3} { // 100 evicted
		r.Observe(v)
	}
	s := r.Summary()
	if s.Count != 3 || s.Max != 3 || s.Min != 1 {
		t.Fatalf("window after eviction = %+v", s)
	}
	if r.Total() != 4 {
		t.Fatalf("Total = %d, want 4", r.Total())
	}
	if r.Last() != 3 {
		t.Fatalf("Last = %g, want 3", r.Last())
	}
	// Wrap fully around twice more.
	for v := 10.0; v < 16; v++ {
		r.Observe(v)
	}
	s = r.Summary()
	if s.Min != 13 || s.Max != 15 || r.Last() != 15 {
		t.Fatalf("after wrap: %+v last=%g", s, r.Last())
	}
}

func TestNewRollingPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("capacity 0 accepted")
		}
	}()
	NewRolling(0)
}
