package stats

import (
	"math"
	"testing"
)

func TestRollingBeforeAnyObservation(t *testing.T) {
	r := NewRolling(4)
	if r.Total() != 0 || r.Last() != 0 {
		t.Fatalf("fresh Rolling: Total=%d Last=%g", r.Total(), r.Last())
	}
	if s := r.Summary(); s.Count != 0 {
		t.Fatalf("fresh Summary = %+v", s)
	}
}

func TestRollingPartialWindow(t *testing.T) {
	r := NewRolling(10)
	r.Observe(2)
	r.Observe(4)
	s := r.Summary()
	if s.Count != 2 || s.Min != 2 || s.Max != 4 || math.Abs(s.Mean-3) > 1e-12 {
		t.Fatalf("partial window summary = %+v", s)
	}
	if r.Last() != 4 || r.Total() != 2 {
		t.Fatalf("Last=%g Total=%d", r.Last(), r.Total())
	}
}

func TestRollingEvictsOldest(t *testing.T) {
	r := NewRolling(3)
	for _, v := range []float64{100, 1, 2, 3} { // 100 evicted
		r.Observe(v)
	}
	s := r.Summary()
	if s.Count != 3 || s.Max != 3 || s.Min != 1 {
		t.Fatalf("window after eviction = %+v", s)
	}
	if r.Total() != 4 {
		t.Fatalf("Total = %d, want 4", r.Total())
	}
	if r.Last() != 3 {
		t.Fatalf("Last = %g, want 3", r.Last())
	}
	// Wrap fully around twice more.
	for v := 10.0; v < 16; v++ {
		r.Observe(v)
	}
	s = r.Summary()
	if s.Min != 13 || s.Max != 15 || r.Last() != 15 {
		t.Fatalf("after wrap: %+v last=%g", s, r.Last())
	}
}

// TestRollingBoundaries pins the eviction/Last arithmetic at the ring
// boundaries where off-by-ones live: capacity 1 (every observation
// both fills and evicts), and a window wrapped exactly once (next has
// just returned to 0, so Last must reach back to the END of the
// buffer, not index -1). Each case lists the full expected window.
func TestRollingBoundaries(t *testing.T) {
	cases := []struct {
		name     string
		capacity int
		observe  []float64
		wantLast float64
		wantMin  float64
		wantMax  float64
		wantN    int64
	}{
		{"capacity 1, single", 1, []float64{7}, 7, 7, 7, 1},
		{"capacity 1, replaced", 1, []float64{7, 9}, 9, 9, 9, 2},
		{"capacity 1, replaced twice", 1, []float64{7, 9, 4}, 4, 4, 4, 3},
		{"exactly full, no wrap", 3, []float64{1, 2, 3}, 3, 1, 3, 3},
		{"wrapped exactly once", 3, []float64{1, 2, 3, 4, 5, 6}, 6, 4, 6, 6},
		{"one past full", 3, []float64{1, 2, 3, 4}, 4, 2, 4, 4},
		{"one short of wrap", 3, []float64{1, 2, 3, 4, 5}, 5, 3, 5, 5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := NewRolling(tc.capacity)
			for _, v := range tc.observe {
				r.Observe(v)
				if r.Last() != v {
					t.Fatalf("Last() = %g immediately after Observe(%g)", r.Last(), v)
				}
			}
			s := r.Summary()
			if r.Last() != tc.wantLast || s.Min != tc.wantMin || s.Max != tc.wantMax ||
				int64(s.Count) != min64(int64(tc.capacity), tc.wantN) || r.Total() != tc.wantN {
				t.Fatalf("Last=%g Total=%d summary=%+v, want last=%g min=%g max=%g n=%d",
					r.Last(), r.Total(), s, tc.wantLast, tc.wantMin, tc.wantMax, tc.wantN)
			}
		})
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func TestNewRollingPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("capacity 0 accepted")
		}
	}()
	NewRolling(0)
}
