package stats

// Rolling keeps the most recent observations of a stream in a
// fixed-capacity ring and summarizes the current window on demand.
// A resident scheduler (cmd/coflowd) uses it for per-slot scheduler
// latencies and completed-coflow slowdowns: memory stays bounded no
// matter how long the daemon runs, while the summary tracks recent
// behaviour rather than the all-time mix.
//
// Rolling is not safe for concurrent use; the daemon's single-writer
// loop owns it and publishes Summary() values in read-only snapshots.
type Rolling struct {
	buf   []float64
	next  int   // ring write position
	total int64 // observations ever seen
}

// NewRolling creates a window over the most recent capacity
// observations. It panics if capacity is not positive.
func NewRolling(capacity int) *Rolling {
	if capacity <= 0 {
		panic("stats: non-positive Rolling capacity")
	}
	return &Rolling{buf: make([]float64, 0, capacity)}
}

// Observe appends one value, evicting the oldest when the window is
// full.
func (r *Rolling) Observe(v float64) {
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, v)
	} else {
		r.buf[r.next] = v
	}
	r.next = (r.next + 1) % cap(r.buf)
	r.total++
}

// Total returns the number of observations ever made (not just those
// still in the window).
func (r *Rolling) Total() int64 { return r.total }

// Last returns the most recent observation, or 0 before any.
func (r *Rolling) Last() float64 {
	if r.total == 0 {
		return 0
	}
	return r.buf[(r.next-1+cap(r.buf))%cap(r.buf)]
}

// Summary summarizes the current window.
func (r *Rolling) Summary() Summary {
	return Summarize(r.buf)
}
