package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"coflow/internal/coflowmodel"
)

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	if s.Count != 10 {
		t.Fatalf("Count = %d", s.Count)
	}
	if math.Abs(s.Mean-5.5) > 1e-12 {
		t.Fatalf("Mean = %g, want 5.5", s.Mean)
	}
	if s.P50 != 5 { // nearest rank: ceil(0.5*10) = 5th value
		t.Fatalf("P50 = %g, want 5", s.P50)
	}
	if s.P90 != 9 {
		t.Fatalf("P90 = %g, want 9", s.P90)
	}
	if s.P99 != 10 {
		t.Fatalf("P99 = %g, want 10", s.P99)
	}
	if s.Min != 1 || s.Max != 10 {
		t.Fatalf("Min/Max = %g/%g", s.Min, s.Max)
	}
	// Population stddev of 1..10 = sqrt(33/4) ≈ 2.8723.
	if math.Abs(s.StdDev-math.Sqrt(8.25)) > 1e-9 {
		t.Fatalf("StdDev = %g", s.StdDev)
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	if s := Summarize(nil); s.Count != 0 {
		t.Fatalf("empty summary: %+v", s)
	}
	s := Summarize([]float64{7})
	if s.Count != 1 || s.Mean != 7 || s.P50 != 7 || s.P99 != 7 || s.StdDev != 0 {
		t.Fatalf("single-value summary wrong: %+v", s)
	}
}

func TestSummarizeConstantInput(t *testing.T) {
	s := Summarize([]float64{6, 6, 6, 6, 6})
	if s.StdDev != 0 {
		t.Fatalf("StdDev = %g, want exactly 0 on constant input", s.StdDev)
	}
	if s.P50 != s.P99 || s.P50 != 6 {
		t.Fatalf("P50/P99 = %g/%g, want both exactly 6", s.P50, s.P99)
	}
	if s.Min != 6 || s.Max != 6 || s.Mean != 6 {
		t.Fatalf("constant summary = %+v", s)
	}
}

// A coflow released at t=0 that completes at its standalone lower
// bound ρ has slowdown exactly 1.0 — no rounding slack allowed.
func TestSlowdownAtLowerBoundIsExactlyOne(t *testing.T) {
	ins := &coflowmodel.Instance{
		Ports: 2,
		Coflows: []coflowmodel.Coflow{{
			ID: 1, Weight: 1, Release: 0,
			Flows: []coflowmodel.Flow{
				{Src: 0, Dst: 0, Size: 1}, {Src: 0, Dst: 1, Size: 2},
				{Src: 1, Dst: 0, Size: 2}, {Src: 1, Dst: 1, Size: 1},
			},
		}},
	}
	load := ins.Coflows[0].Load(2)
	if load != 3 {
		t.Fatalf("ρ(D) = %d, want 3", load)
	}
	sd := Slowdowns(ins, []int64{load})
	if sd[0] != 1.0 {
		t.Fatalf("slowdown at lower bound = %v, want exactly 1.0", sd[0])
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	in := []float64{3, 1, 2}
	Summarize(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatal("Summarize sorted the caller's slice")
	}
}

func TestSlowdowns(t *testing.T) {
	ins := &coflowmodel.Instance{
		Ports: 2,
		Coflows: []coflowmodel.Coflow{
			{ID: 1, Weight: 1, Flows: []coflowmodel.Flow{{Src: 0, Dst: 0, Size: 4}}},
			{ID: 2, Weight: 1, Release: 2, Flows: []coflowmodel.Flow{{Src: 1, Dst: 1, Size: 3}}},
			{ID: 3, Weight: 1}, // empty
		},
	}
	sd := Slowdowns(ins, []int64{8, 10, 0})
	if math.Abs(sd[0]-2) > 1e-12 { // 8 / (0+4)
		t.Fatalf("slowdown[0] = %g, want 2", sd[0])
	}
	if math.Abs(sd[1]-2) > 1e-12 { // 10 / (2+3)
		t.Fatalf("slowdown[1] = %g, want 2", sd[1])
	}
	if sd[2] != 1 {
		t.Fatalf("empty coflow slowdown = %g, want 1", sd[2])
	}
}

func TestSlowdownsPanicsOnArity(t *testing.T) {
	ins := &coflowmodel.Instance{Ports: 1, Coflows: []coflowmodel.Coflow{{ID: 1, Weight: 1}}}
	defer func() {
		if recover() == nil {
			t.Fatal("arity mismatch accepted")
		}
	}()
	Slowdowns(ins, []int64{1, 2})
}

func TestSlowdownSummaryAndFormat(t *testing.T) {
	ins := &coflowmodel.Instance{
		Ports: 1,
		Coflows: []coflowmodel.Coflow{
			{ID: 1, Weight: 1, Flows: []coflowmodel.Flow{{Src: 0, Dst: 0, Size: 2}}},
			{ID: 2, Weight: 1, Flows: []coflowmodel.Flow{{Src: 0, Dst: 0, Size: 2}}},
		},
	}
	s := SlowdownSummary(ins, []int64{2, 4})
	if s.Count != 2 || s.Min != 1 || s.Max != 2 {
		t.Fatalf("summary wrong: %+v", s)
	}
	out := s.Format()
	if !strings.Contains(out, "p90=") || !strings.Contains(out, "n=2") {
		t.Fatalf("Format output wrong: %s", out)
	}
	if Summarize(nil).Format() != "n=0" {
		t.Fatal("empty Format wrong")
	}
}

// testing/quick property: percentiles are ordered and bounded by the
// extremes for any input.
func TestSummaryOrderingQuick(t *testing.T) {
	f := func(raw []float64) bool {
		vals := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				// Bound magnitudes: the property under test is the
				// percentile ordering, not float overflow semantics.
				vals = append(vals, math.Mod(math.Abs(v), 1e12))
			}
		}
		s := Summarize(vals)
		if s.Count == 0 {
			return len(vals) == 0
		}
		return s.Min <= s.P50 && s.P50 <= s.P90 && s.P90 <= s.P99 &&
			s.P99 <= s.Max && s.Min <= s.Mean && s.Mean <= s.Max+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
