// Package core implements the paper's primary contribution: the first
// polynomial-time constant-factor approximation algorithms for
// minimizing total weighted coflow completion time with release dates.
//
//   - Algorithm2 is the deterministic 67/3-approximation (64/3 for
//     zero release dates): solve the interval-indexed LP, order coflows
//     by the approximated completion times C̄_k (Eq. 14/15), group
//     consecutive coflows whose maximum total loads V_k (Eq. 16) fall
//     in the same geometric interval (τ_{s−1}, τ_s], and clear each
//     group as one aggregated coflow with a Birkhoff–von Neumann
//     schedule.
//   - Randomized is the (9 + 16√2/3)-approximation: identical except
//     the grouping intervals are τ′_l = T₀·a^(l−1) with a = 1+√2 and
//     T₀ ~ Unif[1, a).
//   - Schedule exposes the full §4 design space — three orderings
//     (H_A, H_ρ, H_LP) × {grouping, backfilling} — used to reproduce
//     Table 1 and Figure 2.
package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"coflow/internal/bvn"
	"coflow/internal/coflowmodel"
	"coflow/internal/lp"
	"coflow/internal/lpmodel"
	"coflow/internal/switchsim"
)

// Ordering selects the §4.1 ordering stage.
type Ordering int

const (
	// OrderArrival is H_A: coflows in trace (ID) order.
	OrderArrival Ordering = iota
	// OrderLoadWeight is H_ρ: nondecreasing ρ(D(k))/w_k, the ordering
	// also used by Varys-style heuristics.
	OrderLoadWeight
	// OrderLP is H_LP: nondecreasing LP completion times C̄_k (15).
	OrderLP
)

func (o Ordering) String() string {
	switch o {
	case OrderArrival:
		return "HA"
	case OrderLoadWeight:
		return "Hrho"
	case OrderLP:
		return "HLP"
	}
	return fmt.Sprintf("Ordering(%d)", int(o))
}

// Options selects one of the paper's 12 algorithm combinations, plus
// the work-conserving Recompute extension (off in the paper).
type Options struct {
	Ordering  Ordering
	Grouping  bool
	Backfill  bool
	Recompute bool
	// ThickMatchings switches Step 2's matching extraction to the
	// bottleneck rule (bvn.StrategyThick): identical ρ-slot schedules
	// from roughly an order of magnitude fewer distinct matchings,
	// which matters when each matching is a fabric reconfiguration.
	ThickMatchings bool
	// SparseLP solves the H_LP ordering LP with the sparse pipeline
	// (presolve + revised simplex) instead of the dense tableau,
	// regardless of the lpmodel package default. The two solvers agree
	// on status and objective (differential-tested); this is a
	// performance switch that unlocks trace-scale LP ordering.
	SparseLP bool
}

// Label renders the option set in the paper's naming: ordering plus
// case (a)–(d).
func (o Options) Label() string {
	c := "a"
	switch {
	case o.Grouping && o.Backfill:
		c = "d"
	case o.Grouping:
		c = "c"
	case o.Backfill:
		c = "b"
	}
	return fmt.Sprintf("%s(%s)", o.Ordering, c)
}

// Result bundles the executed schedule with the policy artifacts that
// produced it.
type Result struct {
	*switchsim.Result
	// Order lists coflow indices in service order.
	Order []int
	// Stages is the grouping used (one stage per coflow if disabled).
	Stages []switchsim.Stage
	// V[pos] is the maximum total load of order prefix 0..pos (Eq. 16).
	V []int64
	// LP is the interval LP solution when the LP ordering was used.
	LP *lpmodel.IntervalSolution
}

// Schedule runs the selected ordering and scheduling combination on
// the instance and returns completion times.
func Schedule(ins *coflowmodel.Instance, opts Options) (*Result, error) {
	var lpSol *lpmodel.IntervalSolution
	var order []int
	switch opts.Ordering {
	case OrderArrival:
		order = arrivalOrder(ins)
	case OrderLoadWeight:
		order = LoadWeightOrder(ins)
	case OrderLP:
		method := lpmodel.DefaultMethod()
		if opts.SparseLP {
			method = lp.MethodSparse
		}
		sol, err := lpmodel.SolveIntervalLPWith(ins, method)
		if err != nil {
			return nil, err
		}
		lpSol = sol
		order = sol.Order
	default:
		return nil, fmt.Errorf("core: unknown ordering %v", opts.Ordering)
	}

	res, err := ExecuteOrdered(ins, order, opts)
	if err != nil {
		return nil, err
	}
	res.LP = lpSol
	return res, nil
}

// ExecuteOrdered runs the scheduling stage (grouping, backfilling,
// BvN execution) for an externally supplied order. opts.Ordering is
// ignored. Experiment harnesses use this to reuse one LP solve across
// the four scheduling cases.
func ExecuteOrdered(ins *coflowmodel.Instance, order []int, opts Options) (*Result, error) {
	v := lpmodel.MaxTotalLoads(ins, order)
	var stages []switchsim.Stage
	if opts.Grouping {
		stages = GeometricStages(v)
	} else {
		stages = switchsim.SingleStage(len(order))
	}
	strategy := bvn.StrategyFirst
	if opts.ThickMatchings {
		strategy = bvn.StrategyThick
	}
	res, err := switchsim.Execute(&switchsim.Plan{
		Ins:       ins,
		Order:     order,
		Stages:    stages,
		Backfill:  opts.Backfill,
		Recompute: opts.Recompute,
		Strategy:  strategy,
	})
	if err != nil {
		return nil, err
	}
	return &Result{Result: res, Order: order, Stages: stages, V: v}, nil
}

// ExecuteOrderedRecorded is ExecuteOrdered with a unit-level
// transcript of the schedule (slower; for export, display, and
// validation against the formulation's constraints).
func ExecuteOrderedRecorded(ins *coflowmodel.Instance, order []int, opts Options) (*Result, *switchsim.Transcript, error) {
	v := lpmodel.MaxTotalLoads(ins, order)
	var stages []switchsim.Stage
	if opts.Grouping {
		stages = GeometricStages(v)
	} else {
		stages = switchsim.SingleStage(len(order))
	}
	strategy := bvn.StrategyFirst
	if opts.ThickMatchings {
		strategy = bvn.StrategyThick
	}
	res, tr, err := switchsim.ExecuteRecorded(&switchsim.Plan{
		Ins:       ins,
		Order:     order,
		Stages:    stages,
		Backfill:  opts.Backfill,
		Recompute: opts.Recompute,
		Strategy:  strategy,
	})
	if err != nil {
		return nil, nil, err
	}
	return &Result{Result: res, Order: order, Stages: stages, V: v}, tr, nil
}

// Algorithm2 is the paper's deterministic approximation algorithm
// exactly as written: LP ordering, geometric grouping, no backfilling,
// paper-literal BvN schedules. Guarantee: Σ w_k C_k ≤ (67/3)·OPT, and
// (64/3)·OPT when all release dates are zero (Theorem 1/Corollary 1).
func Algorithm2(ins *coflowmodel.Instance) (*Result, error) {
	return Schedule(ins, Options{Ordering: OrderLP, Grouping: true})
}

// RandomizedAlpha is a = 1 + √2, the base of the randomized grouping
// intervals.
var RandomizedAlpha = 1 + math.Sqrt2

// Randomized runs the randomized variant: LP ordering, then grouping
// by the random intervals (τ′_{l−1}, τ′_l] with τ′_l = T₀·a^(l−1),
// T₀ ~ Unif[1, a). Guarantee: E[Σ w_k C_k] ≤ (9 + 16√2/3)·OPT, and
// (8 + 16√2/3)·OPT with zero release dates (Theorem 2/Corollary 2).
func Randomized(ins *coflowmodel.Instance, rng *rand.Rand) (*Result, error) {
	sol, err := lpmodel.SolveIntervalLP(ins)
	if err != nil {
		return nil, err
	}
	order := sol.Order
	v := lpmodel.MaxTotalLoads(ins, order)
	t0 := 1 + rng.Float64()*(RandomizedAlpha-1)
	stages := RandomGeometricStages(v, t0)
	res, err := switchsim.Execute(&switchsim.Plan{
		Ins: ins, Order: order, Stages: stages,
	})
	if err != nil {
		return nil, err
	}
	return &Result{Result: res, Order: order, Stages: stages, V: v, LP: sol}, nil
}

// arrivalOrder is H_A: sort positions by coflow ID.
func arrivalOrder(ins *coflowmodel.Instance) []int {
	order := make([]int, len(ins.Coflows))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return ins.Coflows[order[a]].ID < ins.Coflows[order[b]].ID
	})
	return order
}

// LoadWeightOrder is H_ρ: sort by nondecreasing ρ(D(k))/w_k, ties by
// coflow ID. Exported because the experiment harness reports it as its
// own algorithm family.
func LoadWeightOrder(ins *coflowmodel.Instance) []int {
	m := ins.Ports
	key := make([]float64, len(ins.Coflows))
	for k := range ins.Coflows {
		key[k] = float64(ins.Coflows[k].Load(m)) / ins.Coflows[k].Weight
	}
	order := make([]int, len(ins.Coflows))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ka, kb := order[a], order[b]
		if key[ka] != key[kb] {
			return key[ka] < key[kb]
		}
		return ins.Coflows[ka].ID < ins.Coflows[kb].ID
	})
	return order
}

// GeometricStages implements Step 2 of Algorithm 2: positions whose
// V_k fall in the same interval (τ_{s−1}, τ_s] (τ_l = 2^(l−1)) form
// one group. V must be nondecreasing (it always is — Eq. 16 takes
// prefix maxima), which makes the groups consecutive runs.
func GeometricStages(v []int64) []switchsim.Stage {
	n := len(v)
	var stages []switchsim.Stage
	start := 0
	for start < n {
		r := geomIndex(v[start])
		end := start + 1
		for end < n && geomIndex(v[end]) == r {
			end++
		}
		stages = append(stages, switchsim.Stage{Start: start, End: end})
		start = end
	}
	return stages
}

// geomIndex returns the smallest l ≥ 1 with v ≤ 2^(l−1); i.e. the
// index of the geometric interval (2^(l−2), 2^(l−1)] containing v.
func geomIndex(v int64) int {
	l := 1
	cap := int64(1)
	for cap < v {
		cap *= 2
		l++
	}
	return l
}

// RandomGeometricStages groups positions by the randomized intervals
// τ′_l = t0·a^(l−1) (τ′_0 = 0): position k joins group r where
// τ′_{r−1} < V_k ≤ τ′_r.
func RandomGeometricStages(v []int64, t0 float64) []switchsim.Stage {
	n := len(v)
	var stages []switchsim.Stage
	start := 0
	for start < n {
		r := randIndex(v[start], t0)
		end := start + 1
		for end < n && randIndex(v[end], t0) == r {
			end++
		}
		stages = append(stages, switchsim.Stage{Start: start, End: end})
		start = end
	}
	return stages
}

// randIndex returns the smallest l ≥ 1 with v ≤ t0·a^(l−1).
func randIndex(v int64, t0 float64) int {
	l := 1
	cap := t0
	for cap < float64(v) {
		cap *= RandomizedAlpha
		l++
	}
	return l
}

// prefixReleaseByStage returns, per position, the maximum release date
// over all positions up to the END of the stage containing it. A stage
// only starts once every member is released, so this (rather than the
// strict prefix max) is the waiting term a completion bound must
// charge; with zero release dates it vanishes and the bounds reduce to
// the paper's 4·V_k and (3/2+√2)·V_k.
func prefixReleaseByStage(ins *coflowmodel.Instance, order []int, stages []switchsim.Stage) []int64 {
	out := make([]int64, len(order))
	var maxR int64
	for _, st := range stages {
		for pos := st.Start; pos < st.End; pos++ {
			if r := ins.Coflows[order[pos]].Release; r > maxR {
				maxR = r
			}
		}
		for pos := st.Start; pos < st.End; pos++ {
			out[pos] = maxR
		}
	}
	return out
}

// Proposition1Bound returns, for each order position k, the
// deterministic guarantee of Eq. 19: (release wait) + 4·V_k.
// Algorithm 2 completions never exceed it.
func Proposition1Bound(ins *coflowmodel.Instance, order []int, stages []switchsim.Stage, v []int64) []int64 {
	rel := prefixReleaseByStage(ins, order, stages)
	out := make([]int64, len(order))
	for pos := range order {
		out[pos] = rel[pos] + 4*v[pos]
	}
	return out
}

// Proposition2Bound returns, for each order position, the randomized
// guarantee of Eq. 20 on E[C_k]: (release wait) + (3/2 + √2)·V_k.
func Proposition2Bound(ins *coflowmodel.Instance, order []int, stages []switchsim.Stage, v []int64) []float64 {
	factor := 1.5 + math.Sqrt2
	rel := prefixReleaseByStage(ins, order, stages)
	out := make([]float64, len(order))
	for pos := range order {
		out[pos] = float64(rel[pos]) + factor*float64(v[pos])
	}
	return out
}

// DeterministicRatio and RandomizedRatio are the worst-case guarantees
// proven in Theorems 1 and 2 (release dates allowed), and the
// zero-release variants of Corollaries 1 and 2.
var (
	DeterministicRatio            = 67.0 / 3.0
	DeterministicRatioZeroRelease = 64.0 / 3.0
	RandomizedRatio               = 9 + 16*math.Sqrt2/3
	RandomizedRatioZeroRelease    = 8 + 16*math.Sqrt2/3
)

// AllOptions enumerates the 12 combinations evaluated in §4: three
// orderings × the four scheduling cases (a)–(d).
func AllOptions() []Options {
	var out []Options
	for _, ord := range []Ordering{OrderArrival, OrderLoadWeight, OrderLP} {
		for _, grouping := range []bool{false, true} {
			for _, backfill := range []bool{false, true} {
				out = append(out, Options{Ordering: ord, Grouping: grouping, Backfill: backfill})
			}
		}
	}
	return out
}
