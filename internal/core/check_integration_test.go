// Package core_test wires the internal/check validator into the
// top-level scheduler's suite: the schedule behind every §4 option
// combination must certify against the feasibility invariants, not
// just produce plausible objective values. External package because
// check imports core's dependencies.
package core_test

import (
	"testing"

	"coflow/internal/check"
	"coflow/internal/core"
	"coflow/internal/trace"
)

func TestAllOptionSchedulesValidate(t *testing.T) {
	for _, seed := range []int64{3, 17} {
		ins := trace.MustGenerate(trace.Config{
			Ports: 4, NumCoflows: 7, Seed: seed,
			NarrowFraction: 0.5, WideFraction: 0.2,
			MaxFlowSize: 6, ParetoAlpha: 1.3, MeanInterarrival: 2,
		})
		for _, opts := range core.AllOptions() {
			first, err := core.Schedule(ins, opts)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, opts.Label(), err)
			}
			res, tr, err := core.ExecuteOrderedRecorded(ins, first.Order, opts)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, opts.Label(), err)
			}
			if res.TotalWeighted != first.TotalWeighted {
				t.Errorf("seed %d %s: recorded re-execution changed the objective: %g vs %g",
					seed, opts.Label(), res.TotalWeighted, first.TotalWeighted)
			}
			if vs := check.Schedule(ins, check.FromTranscript(tr, res.Result)); vs != nil {
				t.Errorf("seed %d %s: %d violations, first: %v", seed, opts.Label(), len(vs), vs[0])
			}
		}
	}
}
