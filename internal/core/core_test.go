package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"coflow/internal/coflowmodel"
	"coflow/internal/matrix"
	"coflow/internal/switchsim"
)

func randomInstance(rng *rand.Rand, m, n int, maxSize, maxRelease int64) *coflowmodel.Instance {
	ins := &coflowmodel.Instance{Ports: m}
	for k := 0; k < n; k++ {
		c := coflowmodel.Coflow{ID: k + 1, Weight: 1 + float64(rng.Intn(9))}
		if maxRelease > 0 {
			c.Release = rng.Int63n(maxRelease + 1)
		}
		flows := 1 + rng.Intn(m*m)
		for f := 0; f < flows; f++ {
			c.Flows = append(c.Flows, coflowmodel.Flow{
				Src: rng.Intn(m), Dst: rng.Intn(m), Size: 1 + rng.Int63n(maxSize),
			})
		}
		ins.Coflows = append(ins.Coflows, c)
	}
	return ins
}

func TestOptionLabels(t *testing.T) {
	cases := map[string]Options{
		"HA(a)":   {Ordering: OrderArrival},
		"HA(b)":   {Ordering: OrderArrival, Backfill: true},
		"Hrho(c)": {Ordering: OrderLoadWeight, Grouping: true},
		"HLP(d)":  {Ordering: OrderLP, Grouping: true, Backfill: true},
	}
	for want, opts := range cases {
		if got := opts.Label(); got != want {
			t.Errorf("Label = %q, want %q", got, want)
		}
	}
}

func TestAllOptionsEnumerates12(t *testing.T) {
	opts := AllOptions()
	if len(opts) != 12 {
		t.Fatalf("AllOptions returned %d combos, want 12", len(opts))
	}
	seen := map[string]bool{}
	for _, o := range opts {
		if seen[o.Label()] {
			t.Fatalf("duplicate combo %s", o.Label())
		}
		seen[o.Label()] = true
	}
}

func TestAlgorithm2SingleCoflow(t *testing.T) {
	d := matrix.MustFromRows([][]int64{{1, 2}, {2, 1}})
	ins := &coflowmodel.Instance{Ports: 2, Coflows: []coflowmodel.Coflow{
		coflowmodel.FromMatrix(1, 1, 0, d),
	}}
	res, err := Algorithm2(ins)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completion[0] != 3 {
		t.Fatalf("completion = %d, want ρ = 3", res.Completion[0])
	}
	if len(res.Stages) != 1 {
		t.Fatalf("stages = %v", res.Stages)
	}
	if res.LP == nil {
		t.Fatal("LP solution missing from Algorithm 2 result")
	}
}

func TestLoadWeightOrder(t *testing.T) {
	// Loads 4, 2, 4 with weights 1, 1, 4: keys 4, 2, 1 → order 2,1,0.
	mk := func(id int, w float64, size int64) coflowmodel.Coflow {
		return coflowmodel.Coflow{ID: id, Weight: w,
			Flows: []coflowmodel.Flow{{Src: 0, Dst: 0, Size: size}}}
	}
	ins := &coflowmodel.Instance{Ports: 1, Coflows: []coflowmodel.Coflow{
		mk(1, 1, 4), mk(2, 1, 2), mk(3, 4, 4),
	}}
	order := LoadWeightOrder(ins)
	want := []int{2, 1, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestLoadWeightOrderTieBreaksByID(t *testing.T) {
	mk := func(id int) coflowmodel.Coflow {
		return coflowmodel.Coflow{ID: id, Weight: 1,
			Flows: []coflowmodel.Flow{{Src: 0, Dst: 0, Size: 3}}}
	}
	ins := &coflowmodel.Instance{Ports: 1, Coflows: []coflowmodel.Coflow{mk(5), mk(2), mk(9)}}
	order := LoadWeightOrder(ins)
	if ins.Coflows[order[0]].ID != 2 || ins.Coflows[order[1]].ID != 5 || ins.Coflows[order[2]].ID != 9 {
		t.Fatalf("tie break wrong: %v", order)
	}
}

func TestGeometricStages(t *testing.T) {
	v := []int64{1, 2, 3, 4, 8, 9}
	stages := GeometricStages(v)
	// geomIndex: 1→1, 2→2, 3→3, 4→3, 8→4, 9→5.
	wantBounds := [][2]int{{0, 1}, {1, 2}, {2, 4}, {4, 5}, {5, 6}}
	if len(stages) != len(wantBounds) {
		t.Fatalf("stages = %v, want %v", stages, wantBounds)
	}
	for i, wb := range wantBounds {
		if stages[i].Start != wb[0] || stages[i].End != wb[1] {
			t.Fatalf("stages = %v, want %v", stages, wantBounds)
		}
	}
}

func TestGeomIndex(t *testing.T) {
	cases := map[int64]int{0: 1, 1: 1, 2: 2, 3: 3, 4: 3, 5: 4, 8: 4, 9: 5, 16: 5, 17: 6}
	for v, want := range cases {
		if got := geomIndex(v); got != want {
			t.Errorf("geomIndex(%d) = %d, want %d", v, got, want)
		}
	}
}

func TestRandIndexMatchesDefinition(t *testing.T) {
	// τ′_l = t0·a^(l−1); randIndex(v) must be the smallest l with
	// v ≤ τ′_l.
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		t0 := 1 + rng.Float64()*(RandomizedAlpha-1)
		v := rng.Int63n(1000) + 1
		l := randIndex(v, t0)
		tau := func(l int) float64 { return t0 * math.Pow(RandomizedAlpha, float64(l-1)) }
		if float64(v) > tau(l) {
			t.Fatalf("v=%d t0=%g: τ′_%d = %g < v", v, t0, l, tau(l))
		}
		if l > 1 && float64(v) <= tau(l-1) {
			t.Fatalf("v=%d t0=%g: l=%d not minimal", v, t0, l)
		}
	}
}

// Proposition 1: Algorithm 2 completions obey C_k ≤ wait + 4·V_k.
func TestProposition1Bound(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for trial := 0; trial < 30; trial++ {
		ins := randomInstance(rng, 2+rng.Intn(3), 2+rng.Intn(6), 10, 15)
		res, err := Algorithm2(ins)
		if err != nil {
			t.Fatal(err)
		}
		bound := Proposition1Bound(ins, res.Order, res.Stages, res.V)
		for pos, k := range res.Order {
			if res.Completion[k] > bound[pos] {
				t.Fatalf("trial %d: C_%d = %d > bound %d (V=%d)",
					trial, pos, res.Completion[k], bound[pos], res.V[pos])
			}
		}
	}
}

// Corollary 1 setting: all releases zero → C_k ≤ 4·V_k.
func TestProposition1ZeroRelease(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	for trial := 0; trial < 30; trial++ {
		ins := randomInstance(rng, 2+rng.Intn(3), 2+rng.Intn(6), 10, 0)
		res, err := Algorithm2(ins)
		if err != nil {
			t.Fatal(err)
		}
		for pos, k := range res.Order {
			if res.Completion[k] > 4*res.V[pos] {
				t.Fatalf("trial %d: C = %d > 4·V = %d", trial, res.Completion[k], 4*res.V[pos])
			}
		}
	}
}

// Theorem 1 surrogate, fully measurable: with zero releases, per
// coflow C_k(A) ≤ 4·V_k ≤ (64/3)·C̄_k (modulo the V_k ≤ 1 corner), so
// the total is within 67/3 of the LP lower bound contribution.
func TestTheorem1PerCoflowSurrogate(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	for trial := 0; trial < 20; trial++ {
		ins := randomInstance(rng, 2+rng.Intn(3), 2+rng.Intn(5), 8, 0)
		res, err := Algorithm2(ins)
		if err != nil {
			t.Fatal(err)
		}
		for pos, k := range res.Order {
			limit := DeterministicRatioZeroRelease*res.LP.CBar[k] + 4 // +4 covers V_k ≤ 1 corner
			if float64(res.Completion[k]) > limit+1e-6 {
				t.Fatalf("trial %d pos %d: C = %d > (64/3)·C̄+4 = %g",
					trial, pos, res.Completion[k], limit)
			}
		}
	}
}

func TestRandomizedStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	ins := randomInstance(rng, 3, 6, 10, 0)
	res, err := Randomized(ins, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Stages partition all positions.
	covered := 0
	for _, st := range res.Stages {
		covered += st.End - st.Start
	}
	if covered != len(ins.Coflows) {
		t.Fatalf("stages cover %d of %d", covered, len(ins.Coflows))
	}
}

func TestRandomizedDeterministicGivenSeed(t *testing.T) {
	base := rand.New(rand.NewSource(7))
	ins := randomInstance(base, 3, 5, 8, 0)
	r1, err := Randomized(ins, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Randomized(ins, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	for k := range r1.Completion {
		if r1.Completion[k] != r2.Completion[k] {
			t.Fatal("randomized schedule not reproducible for fixed seed")
		}
	}
}

// Proposition 2: E[C_k] ≤ (3/2+√2)·V_k with zero releases. Checked
// empirically over many draws with 10% slack for sampling noise.
func TestProposition2Expectation(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	ins := randomInstance(rng, 3, 6, 10, 0)
	const draws = 400
	var sum []float64
	var res *Result
	for d := 0; d < draws; d++ {
		r, err := Randomized(ins, rand.New(rand.NewSource(int64(d))))
		if err != nil {
			t.Fatal(err)
		}
		if sum == nil {
			sum = make([]float64, len(r.Completion))
		}
		for k, c := range r.Completion {
			sum[k] += float64(c)
		}
		res = r
	}
	factor := 1.5 + math.Sqrt2
	for pos, k := range res.Order {
		mean := sum[k] / draws
		bound := factor * float64(res.V[pos])
		if mean > bound*1.10+1 {
			t.Fatalf("pos %d: empirical E[C] = %g > (3/2+√2)·V = %g", pos, mean, bound)
		}
	}
}

// Every paper combination must run and serve all demand; grouping and
// backfilling must never lose coflows.
func TestAllCombinationsRun(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ins := randomInstance(rng, 4, 8, 10, 0)
	for _, opts := range AllOptions() {
		res, err := Schedule(ins, opts)
		if err != nil {
			t.Fatalf("%s: %v", opts.Label(), err)
		}
		if len(res.Completion) != len(ins.Coflows) {
			t.Fatalf("%s: %d completions", opts.Label(), len(res.Completion))
		}
		for k, c := range res.Completion {
			if c < ins.Coflows[k].Load(ins.Ports) {
				t.Fatalf("%s: coflow %d completes at %d < its own load", opts.Label(), k, c)
			}
		}
	}
}

// Grouping should generally help; assert the paper's qualitative
// finding on average (not per-instance, where ties happen).
func TestGroupingHelpsOnAverage(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	var withG, withoutG float64
	for trial := 0; trial < 15; trial++ {
		ins := randomInstance(rng, 4, 10, 10, 0)
		a, err := Schedule(ins, Options{Ordering: OrderLoadWeight})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Schedule(ins, Options{Ordering: OrderLoadWeight, Grouping: true})
		if err != nil {
			t.Fatal(err)
		}
		withoutG += a.TotalWeighted
		withG += b.TotalWeighted
	}
	if withG > withoutG {
		t.Fatalf("grouping hurt on average: %g > %g", withG, withoutG)
	}
}

func TestOrderingString(t *testing.T) {
	if OrderArrival.String() != "HA" || OrderLoadWeight.String() != "Hrho" || OrderLP.String() != "HLP" {
		t.Fatal("Ordering.String broken")
	}
}

func BenchmarkAlgorithm2_20x12(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	ins := randomInstance(rng, 12, 20, 20, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Algorithm2(ins); err != nil {
			b.Fatal(err)
		}
	}
}

// ThickMatchings must produce dramatically fewer distinct matchings
// while every schedule-quality invariant still holds.
func TestThickMatchingsReducesReconfigurations(t *testing.T) {
	rng := rand.New(rand.NewSource(313))
	ins := randomInstance(rng, 8, 12, 20, 0)
	first, err := Schedule(ins, Options{Ordering: OrderLoadWeight, Grouping: true, Backfill: true})
	if err != nil {
		t.Fatal(err)
	}
	thick, err := Schedule(ins, Options{Ordering: OrderLoadWeight, Grouping: true, Backfill: true, ThickMatchings: true})
	if err != nil {
		t.Fatal(err)
	}
	if thick.Matchings >= first.Matchings {
		t.Fatalf("thick used %d matchings, first-fit %d", thick.Matchings, first.Matchings)
	}
	// Same stage structure means identical slot counts per stage; the
	// makespan therefore cannot grow.
	if thick.Makespan > first.Makespan {
		t.Fatalf("thick makespan %d > first %d", thick.Makespan, first.Makespan)
	}
	for k := range ins.Coflows {
		min := ins.Coflows[k].Load(ins.Ports)
		if thick.Completion[k] < min {
			t.Fatalf("thick completion %d beats load bound %d", thick.Completion[k], min)
		}
	}
}

func TestExecuteOrderedRecordedMatchesPlain(t *testing.T) {
	rng := rand.New(rand.NewSource(606))
	ins := randomInstance(rng, 4, 6, 8, 0)
	order := LoadWeightOrder(ins)
	opts := Options{Grouping: true, Backfill: true}
	plain, err := ExecuteOrdered(ins, order, opts)
	if err != nil {
		t.Fatal(err)
	}
	rec, tr, err := ExecuteOrderedRecorded(ins, order, opts)
	if err != nil {
		t.Fatal(err)
	}
	for k := range plain.Completion {
		if plain.Completion[k] != rec.Completion[k] {
			t.Fatalf("recorded completions diverge at %d: %d vs %d",
				k, rec.Completion[k], plain.Completion[k])
		}
	}
	if err := switchsim.ValidateTranscript(ins, tr, rec.Completion); err != nil {
		t.Fatal(err)
	}
}

// testing/quick property: GeometricStages partitions any nondecreasing
// load vector into consecutive runs whose members share a geometric
// interval, and distinct stages use distinct intervals.
func TestGeometricStagesPartitionQuick(t *testing.T) {
	f := func(deltas []uint8) bool {
		v := make([]int64, len(deltas))
		var cur int64
		for i, d := range deltas {
			cur += int64(d)
			v[i] = cur
		}
		stages := GeometricStages(v)
		covered := 0
		prevIdx := -1
		for _, st := range stages {
			if st.Start != covered || st.End <= st.Start {
				return false
			}
			covered = st.End
			idx := geomIndex(v[st.Start])
			if idx == prevIdx {
				return false // adjacent stages must differ
			}
			prevIdx = idx
			for pos := st.Start; pos < st.End; pos++ {
				if geomIndex(v[pos]) != idx {
					return false
				}
			}
		}
		return covered == len(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// testing/quick property: randomized stages are a valid partition for
// every t0 in [1, a).
func TestRandomGeometricStagesPartitionQuick(t *testing.T) {
	f := func(deltas []uint8, t0frac float64) bool {
		if t0frac < 0 {
			t0frac = -t0frac
		}
		t0frac -= math.Floor(t0frac)
		t0 := 1 + t0frac*(RandomizedAlpha-1)
		v := make([]int64, len(deltas))
		var cur int64
		for i, d := range deltas {
			cur += int64(d)
			v[i] = cur
		}
		stages := RandomGeometricStages(v, t0)
		covered := 0
		for _, st := range stages {
			if st.Start != covered || st.End <= st.Start {
				return false
			}
			covered = st.End
		}
		return covered == len(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
