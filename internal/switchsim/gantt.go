package switchsim

import (
	"fmt"
	"strings"

	"coflow/internal/coflowmodel"
)

// ganttSymbols are cycled through to label coflows in a Gantt chart.
const ganttSymbols = "123456789ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz"

// RenderGantt draws a transcript as an ASCII timeline: one row per
// ingress port, one column per slot, each cell showing which coflow's
// unit left that port ('.' = idle). Timelines longer than maxSlots are
// truncated with a marker. Intended for small demonstrations and
// debugging; for m ≤ ~30 and short horizons it is quite readable.
func RenderGantt(ins *coflowmodel.Instance, tr *Transcript, maxSlots int) string {
	if maxSlots <= 0 {
		maxSlots = 120
	}
	var horizon int64
	for _, s := range tr.Services {
		if s.Slot > horizon {
			horizon = s.Slot
		}
	}
	truncated := false
	if horizon > int64(maxSlots) {
		horizon = int64(maxSlots)
		truncated = true
	}
	if horizon == 0 {
		return "(empty schedule)\n"
	}
	grid := make([][]byte, tr.Ports)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(".", int(horizon)))
	}
	for _, s := range tr.Services {
		if s.Slot > horizon {
			continue
		}
		sym := ganttSymbols[s.Coflow%len(ganttSymbols)]
		grid[s.Src][s.Slot-1] = sym
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Gantt (ingress ports × slots 1..%d", horizon)
	if truncated {
		b.WriteString(", truncated")
	}
	b.WriteString("):\n")
	for i, row := range grid {
		fmt.Fprintf(&b, "  in%-3d |%s|\n", i, row)
	}
	b.WriteString("  legend:")
	for k := range ins.Coflows {
		if k >= len(ganttSymbols) {
			fmt.Fprintf(&b, " … (+%d more)", len(ins.Coflows)-k)
			break
		}
		fmt.Fprintf(&b, " %c=coflow%d", ganttSymbols[k%len(ganttSymbols)], ins.Coflows[k].ID)
	}
	b.WriteByte('\n')
	return b.String()
}
