package switchsim

import (
	"math/rand"
	"strings"
	"testing"

	"coflow/internal/bvn"
	"coflow/internal/coflowmodel"
	"coflow/internal/matrix"
)

func TestRecordedMatchesExecute(t *testing.T) {
	rng := rand.New(rand.NewSource(808))
	for trial := 0; trial < 80; trial++ {
		m := 1 + rng.Intn(4)
		n := 1 + rng.Intn(5)
		ins := randomInstance(rng, m, n, 6, 4)
		plan := &Plan{
			Ins:       ins,
			Order:     rng.Perm(n),
			Stages:    randomStages(rng, n),
			Backfill:  rng.Intn(2) == 0,
			Recompute: rng.Intn(2) == 0,
		}
		want, err := Execute(plan)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := ExecuteRecorded(plan)
		if err != nil {
			t.Fatal(err)
		}
		for k := range want.Completion {
			if want.Completion[k] != got.Completion[k] {
				t.Fatalf("trial %d coflow %d: recorded %d, plain %d",
					trial, k, got.Completion[k], want.Completion[k])
			}
		}
	}
}

// Every executed schedule must satisfy the formulation (O): matching
// constraints per slot, release dates, and exact demand coverage. The
// validator is an independent checker over the unit-level transcript.
func TestTranscriptFeasibility(t *testing.T) {
	rng := rand.New(rand.NewSource(909))
	for trial := 0; trial < 80; trial++ {
		m := 1 + rng.Intn(4)
		n := 1 + rng.Intn(5)
		ins := randomInstance(rng, m, n, 6, 5)
		plan := &Plan{
			Ins:       ins,
			Order:     rng.Perm(n),
			Stages:    randomStages(rng, n),
			Backfill:  rng.Intn(2) == 0,
			Recompute: rng.Intn(2) == 0,
			Strategy:  bvn.Strategy(rng.Intn(2)),
		}
		res, tr, err := ExecuteRecorded(plan)
		if err != nil {
			t.Fatal(err)
		}
		if err := ValidateTranscript(ins, tr, res.Completion); err != nil {
			t.Fatalf("trial %d: %v (plan %+v)", trial, err, plan)
		}
	}
}

func TestValidateTranscriptCatchesViolations(t *testing.T) {
	d := matrix.MustFromRows([][]int64{{2, 0}, {0, 1}})
	ins := inst(2, cf(1, 1, 0, d))
	plan := &Plan{Ins: ins, Order: []int{0}, Stages: OneStage(1)}
	res, tr, err := ExecuteRecorded(plan)
	if err != nil {
		t.Fatal(err)
	}

	corruptions := map[string]func(*Transcript, []int64) (*Transcript, []int64){
		"drop a unit": func(tr *Transcript, c []int64) (*Transcript, []int64) {
			out := &Transcript{Ports: tr.Ports, Services: tr.Services[:len(tr.Services)-1]}
			return out, c
		},
		"double-book ingress": func(tr *Transcript, c []int64) (*Transcript, []int64) {
			out := &Transcript{Ports: tr.Ports, Services: append([]UnitService{}, tr.Services...)}
			dup := out.Services[0]
			dup.Dst = 1 - dup.Dst // same slot, same src, different dst
			out.Services = append(out.Services, dup)
			return out, c
		},
		"phantom demand": func(tr *Transcript, c []int64) (*Transcript, []int64) {
			out := &Transcript{Ports: tr.Ports, Services: append([]UnitService{}, tr.Services...)}
			out.Services = append(out.Services, UnitService{Slot: 99, Src: 1, Dst: 0, Coflow: 0})
			return out, c
		},
		"wrong completion": func(tr *Transcript, c []int64) (*Transcript, []int64) {
			cc := append([]int64{}, c...)
			cc[0]++
			return tr, cc
		},
		"serve before release": func(tr *Transcript, c []int64) (*Transcript, []int64) {
			out := &Transcript{Ports: tr.Ports, Services: append([]UnitService{}, tr.Services...)}
			out.Services[0].Slot = 0
			return out, c
		},
	}
	for name, corrupt := range corruptions {
		ctr, cc := corrupt(tr, res.Completion)
		if err := ValidateTranscript(ins, ctr, cc); err == nil {
			t.Errorf("%s: validator accepted a corrupted transcript", name)
		}
	}
}

func TestValidateTranscriptArity(t *testing.T) {
	ins := inst(1, cf(1, 1, 0, matrix.MustFromRows([][]int64{{1}})))
	tr := &Transcript{Ports: 2}
	if err := ValidateTranscript(ins, tr, []int64{1}); err == nil {
		t.Error("port mismatch accepted")
	}
	tr = &Transcript{Ports: 1}
	if err := ValidateTranscript(ins, tr, []int64{1, 2}); err == nil {
		t.Error("completion arity mismatch accepted")
	}
}

func TestRenderGantt(t *testing.T) {
	d1 := matrix.MustFromRows([][]int64{{2, 0}, {0, 0}})
	d2 := matrix.MustFromRows([][]int64{{0, 0}, {0, 2}})
	ins := inst(2, cf(1, 1, 0, d1), cf(2, 1, 0, d2))
	plan := &Plan{Ins: ins, Order: []int{0, 1}, Stages: SingleStage(2), Backfill: true}
	_, tr, err := ExecuteRecorded(plan)
	if err != nil {
		t.Fatal(err)
	}
	out := RenderGantt(ins, tr, 0)
	if !strings.Contains(out, "in0") || !strings.Contains(out, "in1") {
		t.Fatalf("missing port rows:\n%s", out)
	}
	if !strings.Contains(out, "1=coflow1") || !strings.Contains(out, "2=coflow2") {
		t.Fatalf("missing legend:\n%s", out)
	}
	// With backfill, coflow 2 occupies ingress 1 during slots 1-2.
	if !strings.Contains(out, "|22|") {
		t.Fatalf("expected coflow 2 on ingress 1 for two slots:\n%s", out)
	}
}

func TestRenderGanttTruncation(t *testing.T) {
	d := matrix.MustFromRows([][]int64{{10}})
	ins := inst(1, cf(1, 1, 0, d))
	plan := &Plan{Ins: ins, Order: []int{0}, Stages: OneStage(1)}
	_, tr, err := ExecuteRecorded(plan)
	if err != nil {
		t.Fatal(err)
	}
	out := RenderGantt(ins, tr, 4)
	if !strings.Contains(out, "truncated") {
		t.Fatalf("missing truncation marker:\n%s", out)
	}
}

func TestRenderGanttEmpty(t *testing.T) {
	ins := inst(1, coflowmodel.Coflow{ID: 1, Weight: 1})
	out := RenderGantt(ins, &Transcript{Ports: 1}, 10)
	if !strings.Contains(out, "empty") {
		t.Fatalf("empty schedule rendering wrong: %s", out)
	}
}

// TestDecomposeStageTermsOwnTheirPerms is the hand-audit regression
// for the recorded-schedule cloning contract: decomposeStage must
// deep-copy each term's permutation out of the shared Decomposer,
// whose buffers are recycled by the next stage's decomposition. If
// the clone is dropped, the first stage's recorded terms silently
// mutate into the second stage's matchings.
func TestDecomposeStageTermsOwnTheirPerms(t *testing.T) {
	d1 := matrix.MustFromRows([][]int64{{2, 0}, {0, 3}})
	d2 := matrix.MustFromRows([][]int64{{0, 1}, {4, 0}})
	plan := &Plan{
		Ins:    inst(2, cf(0, 1, 0, d1)),
		Order:  []int{0},
		Stages: OneStage(1),
	}
	e, err := newExecutor(plan)
	if err != nil {
		t.Fatal(err)
	}
	terms1, err := e.decomposeStage(d1)
	if err != nil {
		t.Fatal(err)
	}
	snap := make([]matrix.Permutation, len(terms1))
	for i := range terms1 {
		snap[i] = terms1[i].perm.Clone()
	}

	// A later stage recycles the Decomposer's internal buffers.
	if _, err := e.decomposeStage(d2); err != nil {
		t.Fatal(err)
	}
	for i := range terms1 {
		for row, j := range terms1[i].perm.To {
			if j != snap[i].To[row] {
				t.Fatalf("stage-1 term %d row %d mutated: got %d, recorded %d (perm aliases the Decomposer)",
					i, row, j, snap[i].To[row])
			}
		}
	}
}
