package switchsim

import (
	"math/rand"
	"testing"

	"coflow/internal/bvn"
	"coflow/internal/coflowmodel"
	"coflow/internal/lpmodel"
	"coflow/internal/matrix"
)

func inst(ports int, coflows ...coflowmodel.Coflow) *coflowmodel.Instance {
	return &coflowmodel.Instance{Ports: ports, Coflows: coflows}
}

func cf(id int, weight float64, release int64, d *matrix.Matrix) coflowmodel.Coflow {
	return coflowmodel.FromMatrix(id, weight, release, d)
}

func TestFigure1Coflow(t *testing.T) {
	// The intro example: [[1,2],[2,1]] completes in exactly ρ = 3 slots.
	ins := inst(2, cf(1, 1, 0, matrix.MustFromRows([][]int64{{1, 2}, {2, 1}})))
	res, err := Execute(&Plan{Ins: ins, Order: []int{0}, Stages: OneStage(1)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completion[0] != 3 {
		t.Fatalf("completion = %d, want 3", res.Completion[0])
	}
	if res.Makespan != 3 || res.TotalWeighted != 3 {
		t.Fatalf("makespan=%d total=%g, want 3/3", res.Makespan, res.TotalWeighted)
	}
}

func TestSequentialSingleMachine(t *testing.T) {
	// m=1: equivalent to single-machine scheduling. Sizes 2 then 3.
	d1 := matrix.MustFromRows([][]int64{{2}})
	d2 := matrix.MustFromRows([][]int64{{3}})
	ins := inst(1, cf(1, 1, 0, d1), cf(2, 1, 0, d2))
	res, err := Execute(&Plan{Ins: ins, Order: []int{0, 1}, Stages: SingleStage(2)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completion[0] != 2 || res.Completion[1] != 5 {
		t.Fatalf("completions = %v, want [2 5]", res.Completion)
	}
}

func TestBackfillFillsIdleSlots(t *testing.T) {
	// Coflow 1 only loads pair (0,0); its augmented schedule matches
	// (1,1) idly. Coflow 2 lives entirely on (1,1): with backfilling it
	// finishes alongside coflow 1.
	d1 := matrix.MustFromRows([][]int64{{2, 0}, {0, 0}})
	d2 := matrix.MustFromRows([][]int64{{0, 0}, {0, 2}})
	ins := inst(2, cf(1, 1, 0, d1), cf(2, 1, 0, d2))

	plain, err := Execute(&Plan{Ins: ins, Order: []int{0, 1}, Stages: SingleStage(2)})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Completion[0] != 2 || plain.Completion[1] != 4 {
		t.Fatalf("no backfill: %v, want [2 4]", plain.Completion)
	}

	bf, err := Execute(&Plan{Ins: ins, Order: []int{0, 1}, Stages: SingleStage(2), Backfill: true})
	if err != nil {
		t.Fatal(err)
	}
	if bf.Completion[0] != 2 || bf.Completion[1] != 2 {
		t.Fatalf("backfill: %v, want [2 2]", bf.Completion)
	}
}

func TestGroupingConsolidatesComplementaryCoflows(t *testing.T) {
	d1 := matrix.MustFromRows([][]int64{{1, 0}, {0, 0}})
	d2 := matrix.MustFromRows([][]int64{{0, 0}, {0, 1}})
	ins := inst(2, cf(1, 1, 0, d1), cf(2, 1, 0, d2))

	seq, err := Execute(&Plan{Ins: ins, Order: []int{0, 1}, Stages: SingleStage(2)})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Completion[0] != 1 || seq.Completion[1] != 2 {
		t.Fatalf("sequential: %v, want [1 2]", seq.Completion)
	}

	grp, err := Execute(&Plan{Ins: ins, Order: []int{0, 1}, Stages: OneStage(2)})
	if err != nil {
		t.Fatal(err)
	}
	if grp.Completion[0] != 1 || grp.Completion[1] != 1 {
		t.Fatalf("grouped: %v, want [1 1]", grp.Completion)
	}
}

func TestReleaseDateDelaysService(t *testing.T) {
	d := matrix.MustFromRows([][]int64{{1}})
	ins := inst(1, cf(1, 1, 5, d))
	res, err := Execute(&Plan{Ins: ins, Order: []int{0}, Stages: OneStage(1)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completion[0] != 6 {
		t.Fatalf("completion = %d, want 6 (released at 5, one unit)", res.Completion[0])
	}
}

func TestGroupWaitsForLatestRelease(t *testing.T) {
	d := matrix.MustFromRows([][]int64{{1}})
	ins := inst(1, cf(1, 1, 0, d), cf(2, 1, 10, d))
	res, err := Execute(&Plan{Ins: ins, Order: []int{0, 1}, Stages: OneStage(2)})
	if err != nil {
		t.Fatal(err)
	}
	// Algorithm 2 schedules the group after all members are released.
	if res.Completion[0] != 11 || res.Completion[1] != 12 {
		t.Fatalf("completions = %v, want [11 12]", res.Completion)
	}
}

func TestBackfillRespectsRelease(t *testing.T) {
	// Coflow 2 is not released when coflow 1's block starts; backfill
	// must not serve it early.
	d1 := matrix.MustFromRows([][]int64{{2, 0}, {0, 0}})
	d2 := matrix.MustFromRows([][]int64{{0, 0}, {0, 2}})
	ins := inst(2, cf(1, 1, 0, d1), cf(2, 1, 100, d2))
	res, err := Execute(&Plan{Ins: ins, Order: []int{0, 1}, Stages: SingleStage(2), Backfill: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completion[1] <= 100 {
		t.Fatalf("coflow 2 served before release: completion %d", res.Completion[1])
	}
}

func TestRecomputeSkipsPrepaidWork(t *testing.T) {
	// With backfill, coflow 2 is fully served during stage 1. The
	// paper-literal plan still spends ρ slots on stage 2 (harmless);
	// with Recompute the stage collapses to nothing. Completion times
	// agree; the schedule length differs.
	d1 := matrix.MustFromRows([][]int64{{3, 0}, {0, 0}})
	d2 := matrix.MustFromRows([][]int64{{0, 0}, {0, 3}})
	ins := inst(2, cf(1, 1, 0, d1), cf(2, 1, 0, d2))

	literal, err := Execute(&Plan{Ins: ins, Order: []int{0, 1}, Stages: SingleStage(2), Backfill: true})
	if err != nil {
		t.Fatal(err)
	}
	recomp, err := Execute(&Plan{Ins: ins, Order: []int{0, 1}, Stages: SingleStage(2), Backfill: true, Recompute: true})
	if err != nil {
		t.Fatal(err)
	}
	for k := range literal.Completion {
		if literal.Completion[k] != recomp.Completion[k] {
			t.Fatalf("completions differ: %v vs %v", literal.Completion, recomp.Completion)
		}
	}
	if recomp.Slots >= literal.Slots {
		t.Fatalf("recompute did not shorten the schedule: %d vs %d", recomp.Slots, literal.Slots)
	}
}

func TestEmptyCoflowCompletesOnRelease(t *testing.T) {
	ins := inst(2,
		coflowmodel.Coflow{ID: 1, Weight: 1, Release: 7},
		cf(2, 1, 0, matrix.MustFromRows([][]int64{{1, 0}, {0, 0}})))
	res, err := Execute(&Plan{Ins: ins, Order: []int{0, 1}, Stages: SingleStage(2)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completion[0] != 7 {
		t.Fatalf("empty coflow completion = %d, want its release 7", res.Completion[0])
	}
}

func TestPlanValidation(t *testing.T) {
	ins := inst(1, cf(1, 1, 0, matrix.MustFromRows([][]int64{{1}})))
	bad := []*Plan{
		{Ins: ins, Order: []int{}, Stages: nil},
		{Ins: ins, Order: []int{0, 0}, Stages: OneStage(2)},
		{Ins: ins, Order: []int{1}, Stages: OneStage(1)},
		{Ins: ins, Order: []int{0}, Stages: []Stage{{0, 0}}},
		{Ins: ins, Order: []int{0}, Stages: []Stage{{0, 2}}},
		{Ins: ins, Order: []int{0}, Stages: []Stage{}},
	}
	for i, p := range bad {
		if _, err := Execute(p); err == nil {
			t.Errorf("bad plan %d accepted", i)
		}
	}
}

func randomInstance(rng *rand.Rand, m, n int, maxSize int64, maxRelease int64) *coflowmodel.Instance {
	ins := &coflowmodel.Instance{Ports: m}
	for k := 0; k < n; k++ {
		c := coflowmodel.Coflow{
			ID:      k + 1,
			Weight:  1 + float64(rng.Intn(5)),
			Release: rng.Int63n(maxRelease + 1),
		}
		flows := 1 + rng.Intn(m*m)
		for f := 0; f < flows; f++ {
			c.Flows = append(c.Flows, coflowmodel.Flow{
				Src: rng.Intn(m), Dst: rng.Intn(m), Size: 1 + rng.Int63n(maxSize),
			})
		}
		ins.Coflows = append(ins.Coflows, c)
	}
	return ins
}

func randomStages(rng *rand.Rand, n int) []Stage {
	var stages []Stage
	start := 0
	for start < n {
		end := start + 1 + rng.Intn(n-start)
		stages = append(stages, Stage{Start: start, End: end})
		start = end
	}
	return stages
}

// The block executor and the slot-accurate executor must agree exactly
// on every configuration.
func TestBlockMatchesSlotAccurate(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	for trial := 0; trial < 150; trial++ {
		m := 1 + rng.Intn(4)
		n := 1 + rng.Intn(5)
		ins := randomInstance(rng, m, n, 6, 5)
		plan := &Plan{
			Ins:       ins,
			Order:     rng.Perm(n),
			Stages:    randomStages(rng, n),
			Backfill:  rng.Intn(2) == 0,
			Recompute: rng.Intn(2) == 0,
			Strategy:  bvn.Strategy(rng.Intn(2)),
		}
		a, err := Execute(plan)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		b, err := ExecuteSlotAccurate(plan)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for k := range a.Completion {
			if a.Completion[k] != b.Completion[k] {
				t.Fatalf("trial %d coflow %d: block %d, slot %d (plan %+v)",
					trial, k, a.Completion[k], b.Completion[k], plan)
			}
		}
		if a.Slots != b.Slots || a.Matchings != b.Matchings {
			t.Fatalf("trial %d: slots/matchings differ: %+v vs %+v", trial, a, b)
		}
	}
}

// TestBlockMatchesSlotAccurateWithReleases pins the executors'
// completion-time equivalence on release-date instances specifically:
// every coflow has a strictly positive release and the staggering is
// wide relative to the demand, so stages routinely start idle, wait
// mid-plan for a member's release, or straddle a release boundary —
// exactly the block-arithmetic corners (wait-then-serve, partial
// blocks) where a per-term executor could drift from the slot-by-slot
// ground truth.
func TestBlockMatchesSlotAccurateWithReleases(t *testing.T) {
	rng := rand.New(rand.NewSource(808))
	for trial := 0; trial < 100; trial++ {
		m := 1 + rng.Intn(4)
		n := 1 + rng.Intn(5)
		ins := randomInstance(rng, m, n, 4, 0)
		for k := range ins.Coflows {
			// Strictly positive, widely staggered releases.
			ins.Coflows[k].Release = 1 + rng.Int63n(40)
		}
		for _, strategy := range []bvn.Strategy{bvn.StrategyFirst, bvn.StrategyThick} {
			plan := &Plan{
				Ins:       ins,
				Order:     rng.Perm(n),
				Stages:    randomStages(rng, n),
				Backfill:  rng.Intn(2) == 0,
				Recompute: rng.Intn(2) == 0,
				Strategy:  strategy,
			}
			block, err := Execute(plan)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			slot, err := ExecuteSlotAccurate(plan)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			for k := range block.Completion {
				if block.Completion[k] != slot.Completion[k] {
					t.Fatalf("trial %d %v coflow %d (release %d): block %d, slot-accurate %d",
						trial, strategy, k, ins.Coflows[k].Release,
						block.Completion[k], slot.Completion[k])
				}
			}
			if block.Slots != slot.Slots {
				t.Fatalf("trial %d %v: slots differ: %d vs %d", trial, strategy, block.Slots, slot.Slots)
			}
		}
	}
}

// Lemma 2: under ANY schedule, the time all of the first k coflows (in
// schedule order) complete is at least V_k.
func TestLemma2LoadLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 100; trial++ {
		m := 1 + rng.Intn(4)
		n := 1 + rng.Intn(6)
		ins := randomInstance(rng, m, n, 8, 0)
		order := rng.Perm(n)
		plan := &Plan{
			Ins: ins, Order: order, Stages: randomStages(rng, n),
			Backfill: rng.Intn(2) == 0, Recompute: rng.Intn(2) == 0,
		}
		res, err := Execute(plan)
		if err != nil {
			t.Fatal(err)
		}
		v := lpmodel.MaxTotalLoads(ins, order)
		var prefixMax int64
		for pos, k := range order {
			if res.Completion[k] > prefixMax {
				prefixMax = res.Completion[k]
			}
			if prefixMax < v[pos] {
				t.Fatalf("trial %d: prefix %d completes at %d < V = %d",
					trial, pos, prefixMax, v[pos])
			}
		}
	}
}

// Completion times can never precede release + the coflow's own load.
func TestCompletionRespectsLoadBound(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 100; trial++ {
		m := 1 + rng.Intn(4)
		n := 1 + rng.Intn(6)
		ins := randomInstance(rng, m, n, 8, 6)
		plan := &Plan{
			Ins: ins, Order: rng.Perm(n), Stages: randomStages(rng, n),
			Backfill: true, Recompute: rng.Intn(2) == 0,
		}
		res, err := Execute(plan)
		if err != nil {
			t.Fatal(err)
		}
		for k := range ins.Coflows {
			c := &ins.Coflows[k]
			min := c.Release + c.Load(m)
			if res.Completion[k] < min {
				t.Fatalf("trial %d: coflow %d completes at %d < release+ρ = %d",
					trial, k, res.Completion[k], min)
			}
		}
	}
}

// Backfilling can only help (or leave unchanged) the total weighted
// completion time when the rest of the plan is fixed.
func TestBackfillNeverHurtsTotal(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	for trial := 0; trial < 60; trial++ {
		m := 1 + rng.Intn(4)
		n := 2 + rng.Intn(5)
		ins := randomInstance(rng, m, n, 6, 0)
		order := rng.Perm(n)
		stages := randomStages(rng, n)
		off, err := Execute(&Plan{Ins: ins, Order: order, Stages: stages})
		if err != nil {
			t.Fatal(err)
		}
		on, err := Execute(&Plan{Ins: ins, Order: order, Stages: stages, Backfill: true})
		if err != nil {
			t.Fatal(err)
		}
		for k := range off.Completion {
			if on.Completion[k] > off.Completion[k] {
				t.Fatalf("trial %d: backfill delayed coflow %d: %d > %d",
					trial, k, on.Completion[k], off.Completion[k])
			}
		}
	}
}

func TestWeightedCompletionHelper(t *testing.T) {
	ins := inst(1,
		cf(1, 2, 0, matrix.MustFromRows([][]int64{{1}})),
		cf(2, 3, 0, matrix.MustFromRows([][]int64{{1}})))
	got := WeightedCompletion(ins, []int64{4, 5})
	if got != 2*4+3*5 {
		t.Fatalf("WeightedCompletion = %g, want 23", got)
	}
}

func TestStageHelpers(t *testing.T) {
	if err := checkStages(SingleStage(3), 3); err != nil {
		t.Fatal(err)
	}
	if err := checkStages(OneStage(5), 5); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkExecuteGrouped40x30(b *testing.B) {
	rng := rand.New(rand.NewSource(77))
	ins := randomInstance(rng, 30, 40, 50, 0)
	plan := &Plan{Ins: ins, Order: rng.Perm(40), Stages: OneStage(40), Backfill: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Execute(plan); err != nil {
			b.Fatal(err)
		}
	}
}
