package switchsim

import (
	"fmt"

	"coflow/internal/coflowmodel"
	"coflow/internal/matrix"
)

// UnitService records a single data unit's transfer: one unit of
// coflow Coflow moved from port Src to port Dst during slot Slot.
type UnitService struct {
	Slot   int64
	Src    int
	Dst    int
	Coflow int // index into the instance's Coflows
}

// Transcript is a complete, unit-level record of an executed schedule.
// It is the exportable artifact a real fabric controller would
// install, and the object the feasibility validator checks.
type Transcript struct {
	Ports    int
	Services []UnitService
}

// ExecuteRecorded runs the plan like Execute while recording every
// unit transfer. It is slot-granular internally (so the transcript is
// exact) and therefore slower than Execute; use it for export,
// debugging, and validation.
func ExecuteRecorded(plan *Plan) (*Result, *Transcript, error) {
	e, err := newExecutor(plan)
	if err != nil {
		return nil, nil, err
	}
	tr := &Transcript{Ports: plan.Ins.Ports}
	var t int64
	matchings := 0
	for _, st := range plan.Stages {
		for pos := st.Start; pos < st.End; pos++ {
			if r := plan.Ins.Coflows[plan.Order[pos]].Release; r > t {
				t = r
			}
		}
		d := e.stageMatrix(st)
		if d.IsZero() {
			continue
		}
		dec, err := e.decomposeStage(d)
		if err != nil {
			return nil, nil, err
		}
		for _, term := range dec {
			blockStart := t
			for s := int64(0); s < term.count; s++ {
				for i, j := range term.perm.To {
					if j == matrix.Unmatched {
						continue
					}
					pair := i*e.m + j
					if k, served := e.serveOneSlotRecorded(pair, blockStart, t+1, st.End); served {
						tr.Services = append(tr.Services, UnitService{
							Slot: t + 1, Src: i, Dst: j, Coflow: k,
						})
					}
				}
				t++
			}
			matchings++
		}
	}
	res, err := e.finish(t, matchings)
	if err != nil {
		return nil, nil, err
	}
	return res, tr, nil
}

type stageTerm struct {
	count int64
	perm  matrix.Permutation
}

// decomposeStage wraps the shared Decomposer's result into plain
// terms. The permutations are cloned because the Decomposer recycles
// its buffers on the next stage, while a transcript consumer may hold
// the terms longer; this is the slow export path, so the copies are
// irrelevant next to the unit-level recording.
func (e *executor) decomposeStage(d *matrix.Matrix) ([]stageTerm, error) {
	dec, err := e.decompose(d)
	if err != nil {
		return nil, err
	}
	out := make([]stageTerm, len(dec.Terms))
	for i, t := range dec.Terms {
		out[i] = stageTerm{count: t.Count, perm: t.Perm.Clone()}
	}
	return out, nil
}

// serveOneSlotRecorded is serveOneSlot returning which coflow was
// served.
func (e *executor) serveOneSlotRecorded(pair int, blockStart, slot int64, stEnd int) (int, bool) {
	q := e.queues[pair]
	for idx := e.head[pair]; idx < len(q); idx++ {
		it := &q[idx]
		if it.remaining == 0 {
			if idx == e.head[pair] {
				e.head[pair]++
			}
			continue
		}
		if it.pos >= stEnd {
			if !e.plan.Backfill {
				return 0, false
			}
			if e.plan.Ins.Coflows[it.coflow].Release > blockStart {
				continue
			}
		}
		it.remaining--
		e.remain[it.coflow]--
		if slot > e.lastSrv[it.coflow] {
			e.lastSrv[it.coflow] = slot
		}
		if it.remaining == 0 && idx == e.head[pair] {
			e.head[pair]++
		}
		return it.coflow, true
	}
	return 0, false
}

// ValidateTranscript checks a transcript against the paper's
// formulation (O): the matching constraints (2)–(3) per slot, the
// release-date constraint (4), and the load constraints (1) — every
// unit of demand served exactly once, none invented. It also verifies
// that the claimed completion times equal each coflow's last service
// slot. A nil return certifies feasibility.
func ValidateTranscript(ins *coflowmodel.Instance, tr *Transcript, completion []int64) error {
	if tr.Ports != ins.Ports {
		return fmt.Errorf("switchsim: transcript for %d ports, instance has %d", tr.Ports, ins.Ports)
	}
	if len(completion) != len(ins.Coflows) {
		return fmt.Errorf("switchsim: %d completions for %d coflows", len(completion), len(ins.Coflows))
	}
	// Demand bookkeeping.
	type pairKey struct {
		coflow, src, dst int
	}
	remaining := map[pairKey]int64{}
	for k := range ins.Coflows {
		for _, f := range ins.Coflows[k].Flows {
			if f.Size > 0 {
				remaining[pairKey{k, f.Src, f.Dst}] += f.Size
			}
		}
	}
	// Per-slot matching constraints.
	type portKey struct {
		slot int64
		port int
	}
	srcBusy := map[portKey]bool{}
	dstBusy := map[portKey]bool{}
	lastService := make([]int64, len(ins.Coflows))
	for i := range lastService {
		lastService[i] = -1
	}
	for _, s := range tr.Services {
		if s.Coflow < 0 || s.Coflow >= len(ins.Coflows) {
			return fmt.Errorf("switchsim: service names unknown coflow %d", s.Coflow)
		}
		if s.Src < 0 || s.Src >= ins.Ports || s.Dst < 0 || s.Dst >= ins.Ports {
			return fmt.Errorf("switchsim: service outside port range: %+v", s)
		}
		if s.Slot <= ins.Coflows[s.Coflow].Release {
			return fmt.Errorf("switchsim: coflow %d served in slot %d before release %d (constraint 4)",
				s.Coflow, s.Slot, ins.Coflows[s.Coflow].Release)
		}
		if srcBusy[portKey{s.Slot, s.Src}] {
			return fmt.Errorf("switchsim: ingress %d double-booked in slot %d (constraint 2)", s.Src, s.Slot)
		}
		if dstBusy[portKey{s.Slot, s.Dst}] {
			return fmt.Errorf("switchsim: egress %d double-booked in slot %d (constraint 3)", s.Dst, s.Slot)
		}
		srcBusy[portKey{s.Slot, s.Src}] = true
		dstBusy[portKey{s.Slot, s.Dst}] = true
		key := pairKey{s.Coflow, s.Src, s.Dst}
		if remaining[key] <= 0 {
			return fmt.Errorf("switchsim: phantom service %+v (no such demand left)", s)
		}
		remaining[key]--
		if s.Slot > lastService[s.Coflow] {
			lastService[s.Coflow] = s.Slot
		}
	}
	for key, rem := range remaining {
		if rem != 0 {
			return fmt.Errorf("switchsim: coflow %d leaves %d units unserved on (%d→%d) (constraint 1)",
				key.coflow, rem, key.src, key.dst)
		}
	}
	for k := range ins.Coflows {
		want := lastService[k]
		if want < 0 {
			want = ins.Coflows[k].Release
		}
		if completion[k] != want {
			return fmt.Errorf("switchsim: coflow %d claims completion %d, transcript says %d",
				k, completion[k], want)
		}
	}
	return nil
}
