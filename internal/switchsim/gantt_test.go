package switchsim

import (
	"strings"
	"testing"

	"coflow/internal/coflowmodel"
)

// A transcript longer than maxSlots must render the truncation marker
// and exactly maxSlots columns per port row (TestRenderGanttTruncation
// in record_test.go checks the marker on the recorded-execution path;
// this pins the column count on a hand-built transcript).
func TestRenderGanttTruncationColumnCount(t *testing.T) {
	const maxSlots = 10
	ins := &coflowmodel.Instance{
		Ports: 2,
		Coflows: []coflowmodel.Coflow{
			{ID: 1, Weight: 1, Flows: []coflowmodel.Flow{{Src: 0, Dst: 0, Size: 25}}},
		},
	}
	tr := &Transcript{Ports: 2}
	for slot := int64(1); slot <= 25; slot++ {
		tr.Services = append(tr.Services, UnitService{Slot: slot, Src: 0, Dst: 0, Coflow: 0})
	}

	out := RenderGantt(ins, tr, maxSlots)
	if !strings.Contains(out, "truncated") {
		t.Fatalf("no truncation marker in:\n%s", out)
	}
	if !strings.Contains(out, "slots 1..10") {
		t.Fatalf("header does not show the truncated horizon:\n%s", out)
	}
	rows := 0
	for _, line := range strings.Split(out, "\n") {
		start := strings.IndexByte(line, '|')
		if start < 0 {
			continue
		}
		end := strings.LastIndexByte(line, '|')
		if end <= start {
			t.Fatalf("unterminated row %q", line)
		}
		if cols := end - start - 1; cols != maxSlots {
			t.Fatalf("row %q has %d columns, want %d", line, cols, maxSlots)
		}
		rows++
	}
	if rows != 2 {
		t.Fatalf("rendered %d port rows, want 2", rows)
	}
	// The served port shows the coflow symbol in every kept slot; the
	// idle port is all dots.
	if !strings.Contains(out, "|"+strings.Repeat("1", maxSlots)+"|") {
		t.Fatalf("port 0 row not fully served:\n%s", out)
	}
	if !strings.Contains(out, "|"+strings.Repeat(".", maxSlots)+"|") {
		t.Fatalf("port 1 row not idle:\n%s", out)
	}
}

// One slot past maxSlots is the smallest truncating horizon: the
// marker appears and exactly the overflowing slot is dropped.
func TestRenderGanttTruncationOneSlotPast(t *testing.T) {
	const maxSlots = 10
	ins := &coflowmodel.Instance{
		Ports: 1,
		Coflows: []coflowmodel.Coflow{
			{ID: 1, Weight: 1, Flows: []coflowmodel.Flow{{Src: 0, Dst: 0, Size: maxSlots + 1}}},
		},
	}
	tr := &Transcript{Ports: 1}
	for slot := int64(1); slot <= maxSlots+1; slot++ {
		tr.Services = append(tr.Services, UnitService{Slot: slot, Src: 0, Dst: 0, Coflow: 0})
	}
	out := RenderGantt(ins, tr, maxSlots)
	if !strings.Contains(out, "truncated") {
		t.Fatalf("no marker one slot past the boundary:\n%s", out)
	}
	if !strings.Contains(out, "slots 1..10") {
		t.Fatalf("header horizon not clamped to maxSlots:\n%s", out)
	}
	if !strings.Contains(out, "|"+strings.Repeat("1", maxSlots)+"|") {
		t.Fatalf("kept slots wrong:\n%s", out)
	}
}

// At exactly maxSlots no marker appears and nothing is dropped.
func TestRenderGanttNoTruncationAtBoundary(t *testing.T) {
	ins := &coflowmodel.Instance{
		Ports: 1,
		Coflows: []coflowmodel.Coflow{
			{ID: 1, Weight: 1, Flows: []coflowmodel.Flow{{Src: 0, Dst: 0, Size: 10}}},
		},
	}
	tr := &Transcript{Ports: 1}
	for slot := int64(1); slot <= 10; slot++ {
		tr.Services = append(tr.Services, UnitService{Slot: slot, Src: 0, Dst: 0, Coflow: 0})
	}
	out := RenderGantt(ins, tr, 10)
	if strings.Contains(out, "truncated") {
		t.Fatalf("marker at exact fit:\n%s", out)
	}
	if !strings.Contains(out, "|"+strings.Repeat("1", 10)+"|") {
		t.Fatalf("full row missing:\n%s", out)
	}
}
