package switchsim

import "coflow/internal/obs"

// Obs instruments the crossbar executors. Every field is a nil-safe
// obs metric; the zero value (the default) disables them. Hooks are
// package-level because Execute is called from many sites (core,
// experiments, the gantt replay); install once at startup with
// SetObs. Decomposition internals are covered by bvn's own hooks.
//
// Stage taxonomy:
//
//	execute  one whole Execute/ExecuteSlotAccurate call
//	stage    clearing one plan stage (release wait excluded):
//	         decompose + serve all its terms
type Obs struct {
	ExecuteSeconds *obs.Histogram
	StageSeconds   *obs.Histogram

	Executes  *obs.Counter
	Stages    *obs.Counter
	Matchings *obs.Counter // distinct BvN terms scheduled
}

// pkgObs is the installed hooks; the zero value disables them.
var pkgObs Obs

// SetObs installs package-wide instrumentation. Call once at startup
// (it is not synchronized against concurrent executions); the zero
// Obs restores the disabled default.
func SetObs(o Obs) { pkgObs = o }

// NewObs registers the executor metrics on r (prefix coflow_switch_)
// and returns the wired Obs. A nil registry yields the zero Obs.
func NewObs(r *obs.Registry) Obs {
	return Obs{
		ExecuteSeconds: r.Histogram("coflow_switch_execute_seconds", "latency of executing one full plan", obs.LatencyBuckets),
		StageSeconds:   r.Histogram("coflow_switch_stage_seconds", "latency of clearing one plan stage (decompose + serve)", obs.LatencyBuckets),
		Executes:       r.Counter("coflow_switch_executes_total", "plans executed"),
		Stages:         r.Counter("coflow_switch_stages_total", "plan stages cleared"),
		Matchings:      r.Counter("coflow_switch_matchings_total", "distinct BvN matchings scheduled"),
	}
}
