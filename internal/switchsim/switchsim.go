// Package switchsim executes coflow schedules on the paper's network
// model: an m×m non-blocking switch where, in each integral time slot,
// the set of served (ingress, egress) pairs must form a matching.
//
// The executor runs a Plan: an ordered list of coflows partitioned
// into consecutive stages (single coflows, or the groups built by
// Algorithm 2). Each stage is cleared with the matchings of a
// Birkhoff–von Neumann decomposition; within a matched port pair,
// data units are served in coflow order, and optional backfilling
// pulls units from subsequent coflows into slots the decomposition
// would otherwise leave idle (§4.1 of the paper).
//
// Two executors are provided: Execute processes whole BvN terms
// (q slots at a time) and is used for experiments; ExecuteSlotAccurate
// simulates one slot at a time and exists to cross-check the block
// arithmetic in tests.
package switchsim

import (
	"fmt"

	"coflow/internal/bvn"
	"coflow/internal/coflowmodel"
	"coflow/internal/matrix"
)

// Stage is a run of consecutive positions [Start, End) in the plan's
// order, scheduled together as one aggregated coflow.
type Stage struct {
	Start, End int
}

// Plan describes one complete scheduling policy instantiation.
type Plan struct {
	// Ins is the instance being scheduled.
	Ins *coflowmodel.Instance
	// Order lists coflow indices (into Ins.Coflows) in service order.
	Order []int
	// Stages partitions positions 0..len(Order)-1 into consecutive
	// runs; each stage is aggregated and cleared by one BvN schedule.
	Stages []Stage
	// Backfill, when set, lets a matched pair with spare slots serve
	// flows of subsequent coflows on the same pair, in order.
	Backfill bool
	// Recompute, when set, decomposes the *remaining* demand of a
	// stage when it starts (work-conserving extension). When unset the
	// paper-literal schedule is used: the stage's original demand is
	// decomposed even if backfilling already served part of it.
	Recompute bool
	// Strategy selects the BvN extraction rule (bvn.StrategyFirst is
	// the paper's Algorithm 1; bvn.StrategyThick emits far fewer
	// distinct matchings for the same ρ-slot schedules).
	Strategy bvn.Strategy
}

// Result reports the outcome of executing a plan.
type Result struct {
	// Completion[k] is the completion slot of Ins.Coflows[k]: the
	// index of the slot in which its last unit was transferred, or its
	// release date if it has no demand.
	Completion []int64
	// TotalWeighted is Σ_k w_k·Completion[k].
	TotalWeighted float64
	// Makespan is the largest completion time.
	Makespan int64
	// Matchings is the number of distinct BvN terms scheduled.
	Matchings int
	// Slots is the total number of slots spanned by the schedule,
	// including any forced idle waiting for releases.
	Slots int64
}

// pairItem is one coflow's aggregated demand on a single port pair.
type pairItem struct {
	pos       int // position in plan order
	coflow    int // index into Ins.Coflows
	remaining int64
}

type executor struct {
	plan    *Plan
	m       int
	queues  [][]pairItem // per pair i*m+j, in order position
	head    []int        // first possibly-unfinished queue item per pair
	lastSrv []int64      // per coflow: last slot any unit was served
	remain  []int64      // per coflow: total remaining units
	stageOf []int        // per position: stage index
	// dec is the executor-owned reusable BvN engine: every stage of
	// the run shares its scratch and warm matcher, so only the first
	// stage pays the pool warm-up allocations.
	dec *bvn.Decomposer
}

// decompose runs the plan's strategy on d through the shared
// Decomposer. The returned terms alias the Decomposer's recycled
// buffers: they are consumed (served or copied) before the next
// stage's decompose overwrites them.
//
//coflow:pooled
func (e *executor) decompose(d *matrix.Matrix) (*bvn.Decomposition, error) {
	return e.dec.DecomposeWith(d, e.plan.Strategy)
}

func newExecutor(plan *Plan) (*executor, error) {
	ins := plan.Ins
	if err := ins.Validate(); err != nil {
		return nil, err
	}
	n := len(ins.Coflows)
	if len(plan.Order) != n {
		return nil, fmt.Errorf("switchsim: order has %d entries, instance has %d coflows", len(plan.Order), n)
	}
	seen := make([]bool, n)
	for _, k := range plan.Order {
		if k < 0 || k >= n || seen[k] {
			return nil, fmt.Errorf("switchsim: order is not a permutation of coflow indices")
		}
		seen[k] = true
	}
	if err := checkStages(plan.Stages, n); err != nil {
		return nil, err
	}
	m := ins.Ports
	e := &executor{
		plan:    plan,
		m:       m,
		queues:  make([][]pairItem, m*m),
		head:    make([]int, m*m),
		lastSrv: make([]int64, n),
		remain:  make([]int64, n),
		stageOf: make([]int, n),
		dec:     bvn.NewDecomposer(m),
	}
	e.dec.SetObs(bvn.DefaultObs())
	for s, st := range plan.Stages {
		for pos := st.Start; pos < st.End; pos++ {
			e.stageOf[pos] = s
		}
	}
	for k := range e.lastSrv {
		e.lastSrv[k] = -1
	}
	// Build per-pair queues in order position, merging duplicate flows.
	for pos, k := range plan.Order {
		agg := make(map[int]int64)
		for _, f := range ins.Coflows[k].Flows {
			if f.Size > 0 {
				agg[f.Src*m+f.Dst] += f.Size
			}
		}
		for pair, size := range agg {
			e.queues[pair] = append(e.queues[pair], pairItem{pos: pos, coflow: k, remaining: size})
			e.remain[k] += size
		}
	}
	// Map iteration order is random; restore order-position sorting.
	for pair := range e.queues {
		q := e.queues[pair]
		for i := 1; i < len(q); i++ {
			for j := i; j > 0 && q[j].pos < q[j-1].pos; j-- {
				q[j], q[j-1] = q[j-1], q[j]
			}
		}
	}
	return e, nil
}

func checkStages(stages []Stage, n int) error {
	want := 0
	for _, st := range stages {
		if st.Start != want || st.End <= st.Start {
			return fmt.Errorf("switchsim: stages must partition 0..%d into consecutive runs", n)
		}
		want = st.End
	}
	if want != n {
		return fmt.Errorf("switchsim: stages cover %d of %d positions", want, n)
	}
	return nil
}

// stageMatrix builds the demand to decompose for a stage: the original
// aggregate (paper-literal) or the remaining aggregate (Recompute).
func (e *executor) stageMatrix(st Stage) *matrix.Matrix {
	d := matrix.NewSquare(e.m)
	if e.plan.Recompute {
		for pair, q := range e.queues {
			i, j := pair/e.m, pair%e.m
			for _, it := range q {
				if it.pos >= st.Start && it.pos < st.End && it.remaining > 0 {
					d.Add(i, j, it.remaining)
				}
			}
		}
		return d
	}
	for pos := st.Start; pos < st.End; pos++ {
		k := e.plan.Order[pos]
		for _, f := range e.plan.Ins.Coflows[k].Flows {
			if f.Size > 0 {
				d.Add(f.Src, f.Dst, f.Size)
			}
		}
	}
	return d
}

// servePair serves up to cap units on pair (i,j) starting at absolute
// slot start+1, honouring the plan's service discipline for the stage
// covering positions [stStart, stEnd). Returns the number served.
func (e *executor) servePair(pair int, cap int64, start int64, stEnd int) int64 {
	q := e.queues[pair]
	served := int64(0)
	for idx := e.head[pair]; idx < len(q) && served < cap; idx++ {
		it := &q[idx]
		if it.remaining == 0 {
			if idx == e.head[pair] {
				e.head[pair]++
			}
			continue
		}
		if it.pos >= stEnd {
			if !e.plan.Backfill {
				break
			}
			if e.plan.Ins.Coflows[it.coflow].Release > start {
				continue // not yet released; try later coflows
			}
		}
		take := cap - served
		if take > it.remaining {
			take = it.remaining
		}
		it.remaining -= take
		e.remain[it.coflow] -= take
		served += take
		// Units on this pair occupy consecutive slots following the
		// units already served in this block.
		last := start + served
		if last > e.lastSrv[it.coflow] {
			e.lastSrv[it.coflow] = last
		}
		if it.remaining == 0 && idx == e.head[pair] {
			e.head[pair]++
		}
	}
	return served
}

// Execute runs the plan with block-granularity service and returns
// per-coflow completion times.
func Execute(plan *Plan) (*Result, error) {
	e, err := newExecutor(plan)
	if err != nil {
		return nil, err
	}
	execSpan := pkgObs.ExecuteSeconds.Start()
	defer execSpan.End()
	var t int64
	matchings := 0
	for _, st := range plan.Stages {
		// Algorithm 2 schedules a group once all its members are
		// released.
		for pos := st.Start; pos < st.End; pos++ {
			if r := plan.Ins.Coflows[plan.Order[pos]].Release; r > t {
				t = r
			}
		}
		d := e.stageMatrix(st)
		if d.IsZero() {
			continue
		}
		stageSpan := pkgObs.StageSeconds.Start()
		dec, err := e.decompose(d)
		if err != nil {
			stageSpan.End()
			return nil, err
		}
		for _, term := range dec.Terms {
			for i, j := range term.Perm.To {
				if j != matrix.Unmatched {
					e.servePair(i*e.m+j, term.Count, t, st.End)
				}
			}
			t += term.Count
			matchings++
		}
		stageSpan.End()
		pkgObs.Stages.Inc()
	}
	pkgObs.Executes.Inc()
	pkgObs.Matchings.Add(int64(matchings))
	return e.finish(t, matchings)
}

// ExecuteSlotAccurate runs the plan one slot at a time: in each slot
// each matched pair serves at most one unit. It must produce exactly
// the same completion times as Execute; it exists as an independent
// cross-check of the block arithmetic.
func ExecuteSlotAccurate(plan *Plan) (*Result, error) {
	e, err := newExecutor(plan)
	if err != nil {
		return nil, err
	}
	execSpan := pkgObs.ExecuteSeconds.Start()
	defer execSpan.End()
	var t int64
	matchings := 0
	for _, st := range plan.Stages {
		for pos := st.Start; pos < st.End; pos++ {
			if r := plan.Ins.Coflows[plan.Order[pos]].Release; r > t {
				t = r
			}
		}
		d := e.stageMatrix(st)
		if d.IsZero() {
			continue
		}
		dec, err := e.decompose(d)
		if err != nil {
			return nil, err
		}
		for _, term := range dec.Terms {
			blockStart := t
			for s := int64(0); s < term.Count; s++ {
				for i, j := range term.Perm.To {
					if j == matrix.Unmatched {
						continue
					}
					pair := i*e.m + j
					// Serve exactly one unit using the block's
					// eligibility time, matching Execute's rule.
					e.serveOneSlot(pair, blockStart, t+1, st.End)
				}
				t++
			}
			matchings++
		}
	}
	pkgObs.Executes.Inc()
	pkgObs.Matchings.Add(int64(matchings))
	return e.finish(t, matchings)
}

// serveOneSlot serves a single unit on pair at absolute slot `slot`,
// with backfill eligibility evaluated at blockStart (the same rule the
// block executor uses).
func (e *executor) serveOneSlot(pair int, blockStart, slot int64, stEnd int) {
	q := e.queues[pair]
	for idx := e.head[pair]; idx < len(q); idx++ {
		it := &q[idx]
		if it.remaining == 0 {
			if idx == e.head[pair] {
				e.head[pair]++
			}
			continue
		}
		if it.pos >= stEnd {
			if !e.plan.Backfill {
				return
			}
			if e.plan.Ins.Coflows[it.coflow].Release > blockStart {
				continue
			}
		}
		it.remaining--
		e.remain[it.coflow]--
		if slot > e.lastSrv[it.coflow] {
			e.lastSrv[it.coflow] = slot
		}
		if it.remaining == 0 && idx == e.head[pair] {
			e.head[pair]++
		}
		return
	}
}

func (e *executor) finish(t int64, matchings int) (*Result, error) {
	ins := e.plan.Ins
	res := &Result{
		Completion: make([]int64, len(ins.Coflows)),
		Matchings:  matchings,
		Slots:      t,
	}
	for k := range ins.Coflows {
		if e.remain[k] != 0 {
			return nil, fmt.Errorf("switchsim: coflow %d has %d unserved units after schedule end",
				ins.Coflows[k].ID, e.remain[k])
		}
		c := e.lastSrv[k]
		if c < 0 {
			c = ins.Coflows[k].Release // empty coflow completes on release
		}
		res.Completion[k] = c
		res.TotalWeighted += ins.Coflows[k].Weight * float64(c)
		if c > res.Makespan {
			res.Makespan = c
		}
	}
	return res, nil
}

// SingleStage returns the stage list for per-position scheduling
// (every coflow its own stage: the "without grouping" cases).
func SingleStage(n int) []Stage {
	out := make([]Stage, n)
	for i := range out {
		out[i] = Stage{Start: i, End: i + 1}
	}
	return out
}

// OneStage returns a single stage covering all n positions.
func OneStage(n int) []Stage {
	return []Stage{{Start: 0, End: n}}
}

// WeightedCompletion recomputes Σ w_k·C_k for an instance from a
// completion vector.
func WeightedCompletion(ins *coflowmodel.Instance, completion []int64) float64 {
	var s float64
	for k := range ins.Coflows {
		s += ins.Coflows[k].Weight * float64(completion[k])
	}
	return s
}
