// Package switchsim_test wires the internal/check validator into the
// executor's test suite: every recorded schedule the executor emits —
// any order, any stage partition, any BvN strategy, backfill or not —
// must certify against the paper's feasibility invariants. The test
// lives in an external package because check imports switchsim.
package switchsim_test

import (
	"math/rand"
	"testing"

	"coflow/internal/bvn"
	"coflow/internal/check"
	"coflow/internal/switchsim"
	"coflow/internal/trace"
)

func randomPlanStages(rng *rand.Rand, n int) []switchsim.Stage {
	var stages []switchsim.Stage
	start := 0
	for start < n {
		end := start + 1 + rng.Intn(n-start)
		stages = append(stages, switchsim.Stage{Start: start, End: end})
		start = end
	}
	return stages
}

func TestRecordedSchedulesValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		ins := trace.MustGenerate(trace.Config{
			Ports: 2 + rng.Intn(4), NumCoflows: 2 + rng.Intn(6), Seed: rng.Int63(),
			NarrowFraction: 0.5, WideFraction: 0.2,
			MaxFlowSize: 5, ParetoAlpha: 1.3, MeanInterarrival: float64(rng.Intn(3)),
		})
		n := len(ins.Coflows)
		strategy := bvn.StrategyFirst
		if rng.Intn(2) == 0 {
			strategy = bvn.StrategyThick
		}
		plan := &switchsim.Plan{
			Ins:       ins,
			Order:     rng.Perm(n),
			Stages:    randomPlanStages(rng, n),
			Backfill:  rng.Intn(2) == 0,
			Recompute: rng.Intn(2) == 0,
			Strategy:  strategy,
		}
		res, tr, err := switchsim.ExecuteRecorded(plan)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if vs := check.Schedule(ins, check.FromTranscript(tr, res)); vs != nil {
			t.Errorf("trial %d (backfill=%v recompute=%v stages=%d): %d violations, first: %v",
				trial, plan.Backfill, plan.Recompute, len(plan.Stages), len(vs), vs[0])
		}
	}
}
