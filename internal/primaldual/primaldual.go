// Package primaldual implements an LP-free coflow ordering based on
// the primal-dual algorithm of Mastrolilli, Queyranne, Schulz,
// Svensson and Uhan for concurrent open shop ("Minimizing the sum of
// weighted completion times in a concurrent open shop", OR Letters
// 2010), which the paper's conclusion singles out as the natural route
// to simpler, distributed coflow schedulers.
//
// The rule builds the permutation from last to first. With coflows
// still unordered forming a set S:
//
//  1. find the bottleneck port i* — the ingress or egress port with
//     the largest total remaining load over S;
//  2. schedule last the coflow k ∈ S with positive load on i*
//     minimizing w_k / load_{i*}(k) (delaying it costs the least per
//     unit of bottleneck work it removes);
//  3. remove k and repeat.
//
// On diagonal instances (concurrent open shop) this is exactly the
// known 2-approximation for zero release dates; on general coflows it
// is a heuristic ordering that needs no LP solve, making it a natural
// ablation partner for H_LP.
package primaldual

import (
	"coflow/internal/coflowmodel"
)

// Order returns the primal-dual coflow ordering (indices into
// ins.Coflows, first to last). It is deterministic: ties break on
// coflow ID.
func Order(ins *coflowmodel.Instance) []int {
	m := ins.Ports
	n := len(ins.Coflows)

	// Per-coflow port loads.
	rowLoad := make([][]int64, n)
	colLoad := make([][]int64, n)
	for k := range ins.Coflows {
		rowLoad[k] = ins.Coflows[k].RowLoads(m)
		colLoad[k] = ins.Coflows[k].ColLoads(m)
	}

	// Remaining total load per port over the unordered set.
	rows := make([]int64, m)
	cols := make([]int64, m)
	for k := 0; k < n; k++ {
		for i := 0; i < m; i++ {
			rows[i] += rowLoad[k][i]
			cols[i] += colLoad[k][i]
		}
	}

	inSet := make([]bool, n)
	for k := range inSet {
		inSet[k] = true
	}
	order := make([]int, n)

	for pos := n - 1; pos >= 0; pos-- {
		// Bottleneck port over the remaining set.
		bestPort, bestIsRow, bestLoad := -1, true, int64(-1)
		for i := 0; i < m; i++ {
			if rows[i] > bestLoad {
				bestPort, bestIsRow, bestLoad = i, true, rows[i]
			}
			if cols[i] > bestLoad {
				bestPort, bestIsRow, bestLoad = i, false, cols[i]
			}
		}

		chosen := -1
		if bestLoad > 0 {
			// Min w_k / load(k) on the bottleneck, over coflows that
			// actually load it. Compare with cross-multiplication to
			// stay in exact arithmetic.
			var cw float64
			var cl int64
			for k := 0; k < n; k++ {
				if !inSet[k] {
					continue
				}
				var l int64
				if bestIsRow {
					l = rowLoad[k][bestPort]
				} else {
					l = colLoad[k][bestPort]
				}
				if l == 0 {
					continue
				}
				w := ins.Coflows[k].Weight
				// w/l < cw/cl  ⟺  w·cl < cw·l
				if chosen < 0 || w*float64(cl) < cw*float64(l) ||
					(w*float64(cl) == cw*float64(l) && ins.Coflows[k].ID > ins.Coflows[chosen].ID) {
					chosen, cw, cl = k, w, l
				}
			}
		}
		if chosen < 0 {
			// No load anywhere (all remaining coflows empty): take the
			// largest ID so empty coflows sink to the back.
			for k := 0; k < n; k++ {
				if inSet[k] && (chosen < 0 || ins.Coflows[k].ID > ins.Coflows[chosen].ID) {
					chosen = k
				}
			}
		}

		order[pos] = chosen
		inSet[chosen] = false
		for i := 0; i < m; i++ {
			rows[i] -= rowLoad[chosen][i]
			cols[i] -= colLoad[chosen][i]
		}
	}
	return order
}
