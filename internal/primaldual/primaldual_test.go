package primaldual

import (
	"math/rand"
	"sort"
	"testing"

	"coflow/internal/coflowmodel"
	"coflow/internal/core"
	"coflow/internal/openshop"
)

func singleMachine(sizes []int64, weights []float64) *coflowmodel.Instance {
	ins := &coflowmodel.Instance{Ports: 1}
	for k := range sizes {
		ins.Coflows = append(ins.Coflows, coflowmodel.Coflow{
			ID: k + 1, Weight: weights[k],
			Flows: []coflowmodel.Flow{{Src: 0, Dst: 0, Size: sizes[k]}},
		})
	}
	return ins
}

// On a single machine the rule must reduce to Smith's WSPT order.
func TestSingleMachineIsWSPT(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(8)
		sizes := make([]int64, n)
		weights := make([]float64, n)
		for k := range sizes {
			sizes[k] = 1 + rng.Int63n(20)
			weights[k] = float64(1 + rng.Intn(10))
		}
		ins := singleMachine(sizes, weights)
		got := Order(ins)

		want := make([]int, n)
		for i := range want {
			want[i] = i
		}
		sort.SliceStable(want, func(a, b int) bool {
			ra := float64(sizes[want[a]]) / weights[want[a]]
			rb := float64(sizes[want[b]]) / weights[want[b]]
			if ra != rb {
				return ra < rb
			}
			return want[a] < want[b]
		})
		// Compare resulting schedules (ties can permute legally).
		gotTotal := wsptTotal(sizes, weights, got)
		wantTotal := wsptTotal(sizes, weights, want)
		if gotTotal != wantTotal {
			t.Fatalf("trial %d: PD total %g != WSPT total %g (sizes %v weights %v)",
				trial, gotTotal, wantTotal, sizes, weights)
		}
	}
}

func wsptTotal(sizes []int64, weights []float64, order []int) float64 {
	var t int64
	var total float64
	for _, k := range order {
		t += sizes[k]
		total += weights[k] * float64(t)
	}
	return total
}

// On diagonal instances (concurrent open shop, zero releases) the rule
// is a 2-approximation; verify against the exact best permutation.
func TestTwoApproxOnOpenShop(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		machines := 1 + rng.Intn(3)
		jobs := 1 + rng.Intn(6)
		shop := &openshop.Instance{Machines: machines}
		for k := 0; k < jobs; k++ {
			j := openshop.Job{ID: k + 1, Weight: float64(1 + rng.Intn(5)),
				Proc: make([]int64, machines)}
			for i := range j.Proc {
				j.Proc[i] = rng.Int63n(9)
			}
			hasWork := false
			for _, p := range j.Proc {
				if p > 0 {
					hasWork = true
				}
			}
			if !hasWork {
				j.Proc[0] = 1
			}
			shop.Jobs = append(shop.Jobs, j)
		}
		_, _, opt, err := openshop.BestPermutation(shop)
		if err != nil {
			t.Fatal(err)
		}
		order := Order(shop.ToCoflowInstance())
		comp, err := openshop.ScheduleByOrder(shop, order)
		if err != nil {
			t.Fatal(err)
		}
		got := shop.TotalWeighted(comp)
		if got > 2*opt+1e-9 {
			t.Fatalf("trial %d: PD total %g exceeds 2·OPT = %g", trial, got, 2*opt)
		}
	}
}

func TestOrderIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 40; trial++ {
		m := 1 + rng.Intn(5)
		n := 1 + rng.Intn(8)
		ins := &coflowmodel.Instance{Ports: m}
		for k := 0; k < n; k++ {
			c := coflowmodel.Coflow{ID: k + 1, Weight: 1 + float64(rng.Intn(4))}
			if rng.Intn(5) > 0 { // some coflows stay empty
				for f := 0; f < 1+rng.Intn(4); f++ {
					c.Flows = append(c.Flows, coflowmodel.Flow{
						Src: rng.Intn(m), Dst: rng.Intn(m), Size: 1 + rng.Int63n(5),
					})
				}
			}
			ins.Coflows = append(ins.Coflows, c)
		}
		order := Order(ins)
		seen := make([]bool, n)
		for _, k := range order {
			if k < 0 || k >= n || seen[k] {
				t.Fatalf("trial %d: not a permutation: %v", trial, order)
			}
			seen[k] = true
		}
	}
}

func TestDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	ins := &coflowmodel.Instance{Ports: 3}
	for k := 0; k < 6; k++ {
		c := coflowmodel.Coflow{ID: k + 1, Weight: 1}
		for f := 0; f < 3; f++ {
			c.Flows = append(c.Flows, coflowmodel.Flow{
				Src: rng.Intn(3), Dst: rng.Intn(3), Size: 1 + rng.Int63n(5),
			})
		}
		ins.Coflows = append(ins.Coflows, c)
	}
	a := Order(ins)
	b := Order(ins)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("order not deterministic")
		}
	}
}

// The PD ordering should be competitive with H_rho when executed with
// the same scheduling stage.
func TestCompetitiveWithLoadWeightOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	var pd, hrho float64
	for trial := 0; trial < 15; trial++ {
		ins := &coflowmodel.Instance{Ports: 5}
		for k := 0; k < 10; k++ {
			c := coflowmodel.Coflow{ID: k + 1, Weight: 1 + float64(rng.Intn(9))}
			for f := 0; f < 1+rng.Intn(10); f++ {
				c.Flows = append(c.Flows, coflowmodel.Flow{
					Src: rng.Intn(5), Dst: rng.Intn(5), Size: 1 + rng.Int63n(9),
				})
			}
			ins.Coflows = append(ins.Coflows, c)
		}
		opts := core.Options{Grouping: true, Backfill: true}
		pdRes, err := core.ExecuteOrdered(ins, Order(ins), opts)
		if err != nil {
			t.Fatal(err)
		}
		hrRes, err := core.ExecuteOrdered(ins, core.LoadWeightOrder(ins), opts)
		if err != nil {
			t.Fatal(err)
		}
		pd += pdRes.TotalWeighted
		hrho += hrRes.TotalWeighted
	}
	if pd > hrho*1.2 {
		t.Fatalf("primal-dual ordering uncompetitive: %g vs Hrho %g", pd, hrho)
	}
}
