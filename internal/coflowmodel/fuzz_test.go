package coflowmodel

import (
	"bytes"
	"testing"
)

// FuzzRead ensures arbitrary JSON either fails cleanly or produces a
// validated instance that survives a write/read round trip unchanged.
func FuzzRead(f *testing.F) {
	var seed bytes.Buffer
	ins := &Instance{
		Ports: 2,
		Coflows: []Coflow{{
			ID: 1, Weight: 1,
			Flows: []Flow{{Src: 0, Dst: 1, Size: 3}},
		}},
	}
	if err := ins.Write(&seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte(`{"ports":1,"coflows":[]}`))
	f.Add([]byte(`{"ports":-1}`))
	f.Add([]byte(`garbage`))
	f.Add([]byte(`{"ports":3,"coflows":[{"id":1,"weight":2,"release":5,"flows":[{"src":2,"dst":0,"size":7}]}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Read(bytes.NewReader(data))
		if err != nil {
			return // rejected cleanly
		}
		// Accepted instances must be valid and round-trip stable.
		if err := got.Validate(); err != nil {
			t.Fatalf("Read returned an invalid instance: %v", err)
		}
		var buf bytes.Buffer
		if err := got.Write(&buf); err != nil {
			t.Fatalf("Write failed: %v", err)
		}
		again, err := Read(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if again.Ports != got.Ports || len(again.Coflows) != len(got.Coflows) ||
			again.TotalWork() != got.TotalWork() {
			t.Fatalf("round trip changed the instance")
		}
	})
}
