package coflowmodel

import (
	"errors"
	"strings"
	"testing"
)

func TestParseRegistrationsSingleObject(t *testing.T) {
	rs, err := ParseRegistrations(strings.NewReader(
		`{"weight": 2, "flows": [{"src": 0, "dst": 1, "size": 4}]}`), 2)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Bulk {
		t.Fatal("object body reported as bulk")
	}
	if len(rs.Items) != 1 || rs.Errs[0] != nil || rs.Items[0].Weight != 2 {
		t.Fatalf("parsed %+v errs %v", rs.Items, rs.Errs)
	}
	if rs.Valid() != 1 {
		t.Fatalf("Valid() = %d, want 1", rs.Valid())
	}

	// A single-object validation failure is index-addressed at 0, not
	// a body-level error.
	rs, err = ParseRegistrations(strings.NewReader(
		`{"flows": [{"src": 9, "dst": 0, "size": 1}]}`), 2)
	if err != nil {
		t.Fatalf("validation failure escalated to body error: %v", err)
	}
	if rs.Errs[0] == nil || rs.Valid() != 0 {
		t.Fatalf("out-of-range flow not flagged: errs %v", rs.Errs)
	}
}

func TestParseRegistrationsArray(t *testing.T) {
	body := `[
		{"weight": 1, "flows": [{"src": 0, "dst": 1, "size": 2}]},
		{"flows": [{"src": 9, "dst": 0, "size": 1}]},
		{"typo": true},
		{"weight": 3, "flows": []},
		7
	]`
	rs, err := ParseRegistrations(strings.NewReader(body), 2)
	if err != nil {
		t.Fatal(err)
	}
	if !rs.Bulk {
		t.Fatal("array body not reported as bulk")
	}
	if len(rs.Items) != 5 || len(rs.Errs) != 5 {
		t.Fatalf("decoded %d items / %d errs, want 5/5", len(rs.Items), len(rs.Errs))
	}
	if rs.Errs[0] != nil || rs.Errs[3] != nil {
		t.Errorf("valid items flagged: %v / %v", rs.Errs[0], rs.Errs[3])
	}
	if rs.Errs[1] == nil {
		t.Error("out-of-range item 1 not flagged")
	}
	if rs.Errs[2] == nil || !errors.Is(rs.Errs[2], ErrMalformed) {
		t.Errorf("unknown-field item 2: %v, want ErrMalformed", rs.Errs[2])
	}
	if rs.Errs[4] == nil || !errors.Is(rs.Errs[4], ErrMalformed) {
		t.Errorf("non-object item 4: %v, want ErrMalformed", rs.Errs[4])
	}
	if rs.Valid() != 2 {
		t.Fatalf("Valid() = %d, want 2", rs.Valid())
	}
}

func TestParseRegistrationsBodyLevelErrors(t *testing.T) {
	for _, bad := range []string{
		``,                   // empty body
		`not json`,           // not JSON at all
		`42`,                 // neither object nor array
		`"str"`,              // neither object nor array
		`[{"flows": []}`,     // unterminated array
		`{"flows": [`,        // unterminated object
		`[{"flows": []},, ]`, // broken array structure
	} {
		rs, err := ParseRegistrations(strings.NewReader(bad), 2)
		if err == nil {
			t.Errorf("ParseRegistrations accepted %q: %+v", bad, rs)
			continue
		}
		if !errors.Is(err, ErrMalformed) {
			t.Errorf("ParseRegistrations(%q) error %v does not wrap ErrMalformed", bad, err)
		}
	}
}

func TestParseRegistrationsEmptyArray(t *testing.T) {
	rs, err := ParseRegistrations(strings.NewReader(`[]`), 2)
	if err != nil {
		t.Fatal(err)
	}
	if !rs.Bulk || len(rs.Items) != 0 || rs.Valid() != 0 {
		t.Fatalf("empty array parsed as %+v", rs)
	}
}

func TestRegistrationFabricField(t *testing.T) {
	rs, err := ParseRegistrations(strings.NewReader(
		`{"fabric": 3, "flows": [{"src": 0, "dst": 1, "size": 1}]}`), 2)
	if err != nil || rs.Errs[0] != nil {
		t.Fatalf("fabric-pinned registration rejected: %v / %v", err, rs.Errs)
	}
	if rs.Items[0].Fabric == nil || *rs.Items[0].Fabric != 3 {
		t.Fatalf("fabric not decoded: %+v", rs.Items[0])
	}
	// Absent fabric stays nil (hash-routed), and a negative one fails
	// validation.
	rs, err = ParseRegistrations(strings.NewReader(`{"flows": []}`), 2)
	if err != nil || rs.Items[0].Fabric != nil {
		t.Fatalf("absent fabric decoded as %+v (err %v)", rs.Items[0].Fabric, err)
	}
	neg := -1
	if err := (&Registration{Fabric: &neg}).Validate(2); err == nil {
		t.Fatal("negative fabric accepted")
	}
}
