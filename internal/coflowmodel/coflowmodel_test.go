package coflowmodel

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"testing"

	"coflow/internal/matrix"
)

func figure1Coflow() Coflow {
	return Coflow{
		ID:     1,
		Weight: 1,
		Flows: []Flow{
			{0, 0, 1}, {0, 1, 2},
			{1, 0, 2}, {1, 1, 1},
		},
	}
}

func TestCoflowMatrixAndLoad(t *testing.T) {
	c := figure1Coflow()
	d := c.Matrix(2)
	want := matrix.MustFromRows([][]int64{{1, 2}, {2, 1}})
	if !d.Equal(want) {
		t.Fatalf("Matrix = %v, want %v", d, want)
	}
	if got := c.Load(2); got != 3 {
		t.Fatalf("Load = %d, want 3", got)
	}
	if got := c.TotalSize(); got != 6 {
		t.Fatalf("TotalSize = %d, want 6", got)
	}
}

func TestCoflowDuplicatePairsAccumulate(t *testing.T) {
	c := Coflow{ID: 1, Weight: 1, Flows: []Flow{{0, 1, 2}, {0, 1, 3}}}
	if got := c.Matrix(2).At(0, 1); got != 5 {
		t.Fatalf("accumulated size = %d, want 5", got)
	}
	if got := c.NonZeroFlows(); got != 1 {
		t.Fatalf("NonZeroFlows = %d, want 1 (same pair)", got)
	}
}

func TestRowColLoads(t *testing.T) {
	c := figure1Coflow()
	rows := c.RowLoads(2)
	cols := c.ColLoads(2)
	if rows[0] != 3 || rows[1] != 3 || cols[0] != 3 || cols[1] != 3 {
		t.Fatalf("loads: rows=%v cols=%v, want all 3", rows, cols)
	}
}

func TestWidth(t *testing.T) {
	c := Coflow{Flows: []Flow{{0, 5, 1}, {0, 6, 2}, {3, 5, 1}, {4, 9, 0}}}
	in, out := c.Width()
	if in != 2 || out != 2 {
		t.Fatalf("Width = (%d,%d), want (2,2); zero-size flow must not count", in, out)
	}
}

func TestFromMatrixRoundTrip(t *testing.T) {
	d := matrix.MustFromRows([][]int64{{0, 4, 0}, {1, 0, 0}, {0, 0, 9}})
	c := FromMatrix(7, 2.5, 3, d)
	if c.ID != 7 || c.Weight != 2.5 || c.Release != 3 {
		t.Fatalf("metadata lost: %+v", c)
	}
	if !c.Matrix(3).Equal(d) {
		t.Fatalf("round trip failed: %v != %v", c.Matrix(3), d)
	}
	if c.NonZeroFlows() != 3 {
		t.Fatalf("NonZeroFlows = %d, want 3", c.NonZeroFlows())
	}
}

func validInstance() *Instance {
	return &Instance{
		Ports: 2,
		Coflows: []Coflow{
			figure1Coflow(),
			{ID: 2, Weight: 2, Release: 5, Flows: []Flow{{1, 0, 4}}},
		},
	}
}

func TestValidateAccepts(t *testing.T) {
	if err := validInstance().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := map[string]func(*Instance){
		"zero ports":     func(i *Instance) { i.Ports = 0 },
		"dup id":         func(i *Instance) { i.Coflows[1].ID = 1 },
		"bad weight":     func(i *Instance) { i.Coflows[0].Weight = 0 },
		"neg release":    func(i *Instance) { i.Coflows[0].Release = -1 },
		"port range src": func(i *Instance) { i.Coflows[0].Flows[0].Src = 2 },
		"port range dst": func(i *Instance) { i.Coflows[0].Flows[0].Dst = -1 },
		"neg flow size":  func(i *Instance) { i.Coflows[0].Flows[0].Size = -2 },
	}
	for name, corrupt := range cases {
		ins := validInstance()
		corrupt(ins)
		if err := ins.Validate(); err == nil {
			t.Errorf("%s: validation passed", name)
		}
	}
}

func TestTotalWorkAndHorizon(t *testing.T) {
	ins := validInstance()
	if got := ins.TotalWork(); got != 10 {
		t.Fatalf("TotalWork = %d, want 10", got)
	}
	if got := ins.MaxRelease(); got != 5 {
		t.Fatalf("MaxRelease = %d, want 5", got)
	}
	if got := ins.Horizon(); got != 15 {
		t.Fatalf("Horizon = %d, want 15", got)
	}
}

func TestWeightHelpers(t *testing.T) {
	ins := validInstance()
	ins.SetEqualWeights()
	for _, c := range ins.Coflows {
		if c.Weight != 1 {
			t.Fatalf("equal weights: got %g", c.Weight)
		}
	}
	rng := rand.New(rand.NewSource(1))
	ins.SetRandomPermutationWeights(rng)
	seen := map[float64]bool{}
	for _, c := range ins.Coflows {
		if c.Weight < 1 || c.Weight > float64(len(ins.Coflows)) || seen[c.Weight] {
			t.Fatalf("permutation weights invalid: %v", ins.Coflows)
		}
		seen[c.Weight] = true
	}
}

func TestFilterMinFlows(t *testing.T) {
	ins := validInstance()
	f := ins.FilterMinFlows(2)
	if len(f.Coflows) != 1 || f.Coflows[0].ID != 1 {
		t.Fatalf("filter kept %v", f.Coflows)
	}
	// Original untouched.
	if len(ins.Coflows) != 2 {
		t.Fatal("filter modified original")
	}
}

func TestZeroReleases(t *testing.T) {
	z := validInstance().ZeroReleases()
	for _, c := range z.Coflows {
		if c.Release != 0 {
			t.Fatalf("release %d survived", c.Release)
		}
	}
}

func TestSortByID(t *testing.T) {
	ins := &Instance{Ports: 1, Coflows: []Coflow{
		{ID: 3, Weight: 1}, {ID: 1, Weight: 1}, {ID: 2, Weight: 1},
	}}
	ins.SortByID()
	for i, want := range []int{1, 2, 3} {
		if ins.Coflows[i].ID != want {
			t.Fatalf("order %v", ins.Coflows)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	ins := validInstance()
	var buf bytes.Buffer
	if err := ins.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Ports != ins.Ports || len(got.Coflows) != len(ins.Coflows) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if got.Coflows[0].Flows[1] != ins.Coflows[0].Flows[1] {
		t.Fatalf("flow lost: %+v", got.Coflows[0])
	}
}

func TestReadRejectsInvalid(t *testing.T) {
	if _, err := Read(bytes.NewBufferString(`{"ports":0,"coflows":[]}`)); err == nil {
		t.Fatal("invalid instance accepted")
	}
	if _, err := Read(bytes.NewBufferString(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "inst.json")
	ins := validInstance()
	if err := ins.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.TotalWork() != ins.TotalWork() {
		t.Fatal("file round trip mismatch")
	}
	if _, err := ReadFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file read succeeded")
	}
}

func TestCloneIndependence(t *testing.T) {
	ins := validInstance()
	c := ins.Clone()
	c.Coflows[0].Flows[0].Size = 99
	if ins.Coflows[0].Flows[0].Size == 99 {
		t.Fatal("Clone shares flow storage")
	}
}
