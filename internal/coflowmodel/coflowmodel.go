// Package coflowmodel defines the problem data of the paper: coflows
// (collections of parallel flows with a common performance goal),
// scheduling instances over an m×m non-blocking switch, and their
// serialization.
//
// A coflow k is an m×m demand matrix D(k) together with a positive
// weight w_k and an integer release date r_k. Demands are stored
// sparsely (real traces are sparse); dense matrices are materialized
// on demand for the Birkhoff–von Neumann machinery.
package coflowmodel

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"

	"coflow/internal/matrix"
)

// Flow is one point-to-point transfer within a coflow: Size data
// units from ingress port Src to egress port Dst.
type Flow struct {
	Src  int   `json:"src"`
	Dst  int   `json:"dst"`
	Size int64 `json:"size"`
}

// Coflow is a collection of parallel flows released together.
type Coflow struct {
	ID      int     `json:"id"`
	Weight  float64 `json:"weight"`
	Release int64   `json:"release"`
	Flows   []Flow  `json:"flows"`
}

// Clone returns a deep copy of c.
func (c *Coflow) Clone() Coflow {
	out := *c
	out.Flows = make([]Flow, len(c.Flows))
	copy(out.Flows, c.Flows)
	return out
}

// Matrix materializes the demand matrix D(k) on an m-port switch.
// Flows sharing a port pair accumulate.
func (c *Coflow) Matrix(m int) *matrix.Matrix {
	d := matrix.NewSquare(m)
	for _, f := range c.Flows {
		d.Add(f.Src, f.Dst, f.Size)
	}
	return d
}

// RowLoads returns, per ingress port, the total demand of the coflow.
func (c *Coflow) RowLoads(m int) []int64 {
	out := make([]int64, m)
	for _, f := range c.Flows {
		out[f.Src] += f.Size
	}
	return out
}

// ColLoads returns, per egress port, the total demand of the coflow.
func (c *Coflow) ColLoads(m int) []int64 {
	out := make([]int64, m)
	for _, f := range c.Flows {
		out[f.Dst] += f.Size
	}
	return out
}

// Load returns ρ(D(k)) for an m-port switch: the maximum port load
// (Eq. 18), the minimum time to clear the coflow in isolation.
func (c *Coflow) Load(m int) int64 {
	var load int64
	for _, v := range c.RowLoads(m) {
		if v > load {
			load = v
		}
	}
	for _, v := range c.ColLoads(m) {
		if v > load {
			load = v
		}
	}
	return load
}

// TotalSize returns the total number of data units in the coflow.
func (c *Coflow) TotalSize() int64 {
	var s int64
	for _, f := range c.Flows {
		s += f.Size
	}
	return s
}

// NonZeroFlows returns the number of distinct port pairs with positive
// demand (the paper's M0 filtering statistic).
func (c *Coflow) NonZeroFlows() int {
	seen := make(map[[2]int]int64, len(c.Flows))
	for _, f := range c.Flows {
		if f.Size > 0 {
			seen[[2]int{f.Src, f.Dst}] += f.Size
		}
	}
	return len(seen)
}

// Width returns (#active ingress ports, #active egress ports), the
// "mappers × reducers" shape of the coflow.
func (c *Coflow) Width() (in, out int) {
	srcs := map[int]bool{}
	dsts := map[int]bool{}
	for _, f := range c.Flows {
		if f.Size > 0 {
			srcs[f.Src] = true
			dsts[f.Dst] = true
		}
	}
	return len(srcs), len(dsts)
}

// FromMatrix builds a Coflow from a dense demand matrix.
func FromMatrix(id int, weight float64, release int64, d *matrix.Matrix) Coflow {
	c := Coflow{ID: id, Weight: weight, Release: release}
	for i := 0; i < d.Rows(); i++ {
		for j := 0; j < d.Cols(); j++ {
			if v := d.At(i, j); v > 0 {
				c.Flows = append(c.Flows, Flow{Src: i, Dst: j, Size: v})
			}
		}
	}
	return c
}

// Instance is a complete coflow scheduling problem: an m-port switch
// and n coflows.
type Instance struct {
	Ports   int      `json:"ports"`
	Coflows []Coflow `json:"coflows"`
}

// Clone returns a deep copy of the instance.
func (ins *Instance) Clone() *Instance {
	out := &Instance{Ports: ins.Ports, Coflows: make([]Coflow, len(ins.Coflows))}
	for i := range ins.Coflows {
		out.Coflows[i] = ins.Coflows[i].Clone()
	}
	return out
}

// Validate checks structural soundness: positive port count, port
// indices in range, non-negative sizes and release dates, positive
// weights, and distinct coflow IDs.
func (ins *Instance) Validate() error {
	if ins.Ports <= 0 {
		return fmt.Errorf("coflowmodel: non-positive port count %d", ins.Ports)
	}
	ids := make(map[int]bool, len(ins.Coflows))
	for k := range ins.Coflows {
		c := &ins.Coflows[k]
		if ids[c.ID] {
			return fmt.Errorf("coflowmodel: duplicate coflow ID %d", c.ID)
		}
		ids[c.ID] = true
		if c.Weight <= 0 {
			return fmt.Errorf("coflowmodel: coflow %d has non-positive weight %g", c.ID, c.Weight)
		}
		if c.Release < 0 {
			return fmt.Errorf("coflowmodel: coflow %d has negative release %d", c.ID, c.Release)
		}
		for _, f := range c.Flows {
			if f.Src < 0 || f.Src >= ins.Ports || f.Dst < 0 || f.Dst >= ins.Ports {
				return fmt.Errorf("coflowmodel: coflow %d flow (%d→%d) outside %d ports",
					c.ID, f.Src, f.Dst, ins.Ports)
			}
			if f.Size < 0 {
				return fmt.Errorf("coflowmodel: coflow %d has negative flow size %d", c.ID, f.Size)
			}
		}
	}
	return nil
}

// TotalWork returns the total number of data units over all coflows.
func (ins *Instance) TotalWork() int64 {
	var s int64
	for k := range ins.Coflows {
		s += ins.Coflows[k].TotalSize()
	}
	return s
}

// MaxRelease returns the latest release date.
func (ins *Instance) MaxRelease() int64 {
	var r int64
	for k := range ins.Coflows {
		if ins.Coflows[k].Release > r {
			r = ins.Coflows[k].Release
		}
	}
	return r
}

// Horizon returns the paper's T = max_k r_k + Σ_k Σ_ij d_ij(k): a time
// by which even the naive one-unit-per-slot schedule finishes.
func (ins *Instance) Horizon() int64 {
	return ins.MaxRelease() + ins.TotalWork()
}

// SetEqualWeights assigns weight 1 to every coflow.
func (ins *Instance) SetEqualWeights() {
	for k := range ins.Coflows {
		ins.Coflows[k].Weight = 1
	}
}

// SetRandomPermutationWeights assigns the weights {1, 2, …, n} in a
// random order (the paper's "random weights" setting).
func (ins *Instance) SetRandomPermutationWeights(rng *rand.Rand) {
	n := len(ins.Coflows)
	perm := rng.Perm(n)
	for k := range ins.Coflows {
		ins.Coflows[k].Weight = float64(perm[k] + 1)
	}
}

// FilterMinFlows returns a new instance containing only coflows with
// at least minFlows non-zero flows (the paper's M0 ≥ … filter).
func (ins *Instance) FilterMinFlows(minFlows int) *Instance {
	out := &Instance{Ports: ins.Ports}
	for k := range ins.Coflows {
		if ins.Coflows[k].NonZeroFlows() >= minFlows {
			out.Coflows = append(out.Coflows, ins.Coflows[k].Clone())
		}
	}
	return out
}

// ZeroReleases returns a copy of the instance with all release dates
// set to 0 (the paper's experimental setting).
func (ins *Instance) ZeroReleases() *Instance {
	out := ins.Clone()
	for k := range out.Coflows {
		out.Coflows[k].Release = 0
	}
	return out
}

// SortByID orders coflows by ascending ID (the trace arrival order
// used by the H_A baseline).
func (ins *Instance) SortByID() {
	sort.Slice(ins.Coflows, func(a, b int) bool { return ins.Coflows[a].ID < ins.Coflows[b].ID })
}

// Write serializes the instance as indented JSON.
func (ins *Instance) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ins)
}

// Read parses an instance from JSON and validates it.
func Read(r io.Reader) (*Instance, error) {
	var ins Instance
	if err := json.NewDecoder(r).Decode(&ins); err != nil {
		return nil, fmt.Errorf("coflowmodel: decode: %w", err)
	}
	if err := ins.Validate(); err != nil {
		return nil, err
	}
	return &ins, nil
}

// WriteFile saves the instance to path.
func (ins *Instance) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	//lint:ignore errflow safety net for early returns; the success path checks the explicit Close below
	defer f.Close()
	if err := ins.Write(f); err != nil {
		return err
	}
	return f.Close()
}

// ReadFile loads and validates an instance from path.
func ReadFile(path string) (*Instance, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	//lint:ignore errflow read-only file: Close cannot lose data and read errors surface from Read
	defer f.Close()
	return Read(f)
}
