package coflowmodel

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// ErrMalformed marks registration payloads that failed to DECODE (as
// opposed to well-formed JSON that failed validation). HTTP layers
// branch on it with errors.Is to classify 400s for clients.
var ErrMalformed = errors.New("coflowmodel: malformed registration")

// Registration is the wire format for registering a coflow with a
// running scheduler (coflowd's POST /v1/coflows): the caller supplies
// demand and an optional weight; the service assigns the ID and the
// release date ("now", the service's current slot). It is
// deliberately a subset of Coflow — clients must not pick IDs or
// backdate releases.
type Registration struct {
	// Weight is the coflow's weight w_k; zero means "default" (1).
	Weight float64 `json:"weight,omitempty"`
	// Flows is the sparse demand. Flows sharing a port pair
	// accumulate. A registration with no positive demand is legal and
	// completes at its release slot.
	Flows []Flow `json:"flows"`
	// Fabric, when set, pins the registration to an explicit switch
	// fabric in a sharded deployment instead of letting the router
	// hash it. nil means "route by hash". Single-fabric services
	// accept only nil or 0; a sharded cluster validates the range and
	// rejects unknown fabric IDs with a structured 400.
	Fabric *int `json:"fabric,omitempty"`
}

// Validate checks the registration against an m-port switch: weight
// must not be negative (zero is the default), ports must be in range,
// and sizes non-negative.
func (reg *Registration) Validate(ports int) error {
	if reg.Weight < 0 {
		return fmt.Errorf("coflowmodel: registration has negative weight %g", reg.Weight)
	}
	if reg.Fabric != nil && *reg.Fabric < 0 {
		return fmt.Errorf("coflowmodel: registration has negative fabric %d", *reg.Fabric)
	}
	for _, f := range reg.Flows {
		if f.Src < 0 || f.Src >= ports || f.Dst < 0 || f.Dst >= ports {
			return fmt.Errorf("coflowmodel: registration flow (%d→%d) outside %d ports", f.Src, f.Dst, ports)
		}
		if f.Size < 0 {
			return fmt.Errorf("coflowmodel: registration has negative flow size %d", f.Size)
		}
	}
	return nil
}

// Coflow materializes the registration as a Coflow with the
// service-assigned ID and release slot, applying the default weight.
// The flow slice is copied; the registration stays independent.
func (reg *Registration) Coflow(id int, release int64) Coflow {
	w := reg.Weight
	if w == 0 {
		w = 1
	}
	return Coflow{
		ID:      id,
		Weight:  w,
		Release: release,
		Flows:   append([]Flow(nil), reg.Flows...),
	}
}

// ParseRegistration decodes a JSON registration from r and validates
// it against an m-port switch. Unknown fields are rejected so typos in
// client payloads fail loudly instead of silently registering an empty
// coflow.
func ParseRegistration(r io.Reader, ports int) (*Registration, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var reg Registration
	if err := dec.Decode(&reg); err != nil {
		// Both sentinels stay unwrappable: ErrMalformed for
		// classification, the decoder's error (which may be an
		// *http.MaxBytesError) for cause-specific handling.
		return nil, fmt.Errorf("%w: %w", ErrMalformed, err)
	}
	if err := reg.Validate(ports); err != nil {
		return nil, err
	}
	return &reg, nil
}
