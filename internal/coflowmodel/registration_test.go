package coflowmodel

import (
	"strings"
	"testing"
)

func TestRegistrationValidate(t *testing.T) {
	good := Registration{Weight: 2, Flows: []Flow{{Src: 0, Dst: 1, Size: 3}}}
	if err := good.Validate(2); err != nil {
		t.Fatal(err)
	}
	bad := []Registration{
		{Weight: -1},
		{Flows: []Flow{{Src: 2, Dst: 0, Size: 1}}},
		{Flows: []Flow{{Src: 0, Dst: -1, Size: 1}}},
		{Flows: []Flow{{Src: 0, Dst: 0, Size: -5}}},
	}
	for i, reg := range bad {
		if err := reg.Validate(2); err == nil {
			t.Errorf("bad registration %d accepted", i)
		}
	}
}

func TestRegistrationCoflowDefaultsWeight(t *testing.T) {
	reg := Registration{Flows: []Flow{{Src: 0, Dst: 0, Size: 1}}}
	c := reg.Coflow(7, 42)
	if c.ID != 7 || c.Release != 42 || c.Weight != 1 {
		t.Fatalf("Coflow = %+v, want ID 7, Release 42, Weight 1", c)
	}
	// The materialized flows are a copy.
	c.Flows[0].Size = 99
	if reg.Flows[0].Size != 1 {
		t.Fatal("Coflow shares the registration's flow slice")
	}
	reg.Weight = 3
	if w := reg.Coflow(1, 0).Weight; w != 3 {
		t.Fatalf("explicit weight = %g, want 3", w)
	}
}

func TestParseRegistration(t *testing.T) {
	reg, err := ParseRegistration(strings.NewReader(
		`{"weight": 2, "flows": [{"src": 0, "dst": 1, "size": 4}]}`), 2)
	if err != nil {
		t.Fatal(err)
	}
	if reg.Weight != 2 || len(reg.Flows) != 1 || reg.Flows[0].Size != 4 {
		t.Fatalf("parsed %+v", reg)
	}
	for _, bad := range []string{
		`{"flows": [{"src": 9, "dst": 0, "size": 1}]}`, // out of range
		`{"weights": 2}`,    // unknown field
		`{"flows": "nope"}`, // wrong type
		`not json`,
	} {
		if _, err := ParseRegistration(strings.NewReader(bad), 2); err == nil {
			t.Errorf("ParseRegistration accepted %q", bad)
		}
	}
}
