package coflowmodel

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// Registrations is a decoded registration request body. The wire
// format is either one Registration object (Bulk is false, Items has
// one entry) or a JSON array of them (Bulk is true) — the bulk form
// is how a high-throughput ingestion plane amortizes per-request HTTP
// overhead across many coflows.
//
// Items and Errs are index-aligned with the body: Items[i] is the
// i-th decoded registration and Errs[i] is nil when it is valid, or
// the decode/validation failure for exactly that item. A bad item
// never fails its siblings, so a bulk caller can register the valid
// ones and report the rest per index.
type Registrations struct {
	Items []*Registration
	Errs  []error
	Bulk  bool
}

// Valid returns the number of items that decoded and validated.
func (rs *Registrations) Valid() int {
	n := 0
	for _, err := range rs.Errs {
		if err == nil {
			n++
		}
	}
	return n
}

// ParseRegistrations decodes a registration body that is either a
// single JSON object or an array of objects, validating every item
// against an m-port switch. Like ParseRegistration, unknown fields
// are rejected — but inside an array the rejection is per item
// (index-addressed in Errs) rather than fatal to the whole batch.
//
// The returned error is non-nil only for body-level failures: JSON
// that is neither an object nor an array, a malformed array
// structure, or a read failure (including *http.MaxBytesError). Such
// errors wrap ErrMalformed unless they come from the reader itself.
func ParseRegistrations(r io.Reader, ports int) (*Registrations, error) {
	dec := json.NewDecoder(r)
	tok, err := dec.Token()
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrMalformed, err)
	}
	delim, ok := tok.(json.Delim)
	if !ok {
		return nil, fmt.Errorf("%w: body must be a registration object or array, got %v", ErrMalformed, tok)
	}
	switch delim {
	case '{':
		// Single object: re-decode the whole body strictly. The token
		// read consumed the opening brace, so splice it back in front
		// of the decoder's buffered remainder.
		rest := io.MultiReader(bytes.NewReader([]byte("{")), dec.Buffered(), r)
		reg, err := parseOne(rest)
		if err != nil {
			return nil, err // single-object bodies fail whole, like ParseRegistration
		}
		return &Registrations{
			Items: []*Registration{reg},
			Errs:  []error{reg.Validate(ports)},
		}, nil
	case '[':
		rs := &Registrations{Bulk: true}
		for dec.More() {
			var raw json.RawMessage
			if err := dec.Decode(&raw); err != nil {
				// The array structure itself is broken; positions past
				// this point are unrecoverable.
				return nil, fmt.Errorf("%w: item %d: %w", ErrMalformed, len(rs.Items), err)
			}
			reg, err := parseOne(bytes.NewReader(raw))
			if err == nil {
				err = reg.Validate(ports)
			}
			rs.Items = append(rs.Items, reg)
			rs.Errs = append(rs.Errs, err)
		}
		if _, err := dec.Token(); err != nil { // closing ']'
			return nil, fmt.Errorf("%w: %w", ErrMalformed, err)
		}
		return rs, nil
	}
	return nil, fmt.Errorf("%w: body must be a registration object or array", ErrMalformed)
}

// parseOne strictly decodes one registration object (no validation).
func parseOne(r io.Reader) (*Registration, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var reg Registration
	if err := dec.Decode(&reg); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrMalformed, err)
	}
	return &reg, nil
}
