// Package exact computes provably optimal coflow schedules for tiny
// instances by memoized exhaustive search over remaining-demand
// states. It exists to validate the approximation machinery: LP lower
// bounds must sit below the optimum, Algorithm 2 must sit within its
// proven factor, and the Appendix B counterexample (the per-prefix
// load lower bounds V_k cannot all be achieved simultaneously) can be
// certified mechanically.
//
// The search treats one time slot at a time: a transition picks a
// matching over the support of the remaining demand and, for every
// matched port pair, the coflow whose unit is served. Because serving
// strictly more never delays any completion, the optimum is attained
// among these schedules. States are memoized on the full remaining
// demand vector; with zero release dates the value function is
// time-invariant, which keeps the table small. Instances are accepted
// only below hard size limits.
package exact

import (
	"fmt"

	"coflow/internal/coflowmodel"
)

// Size limits for the exhaustive search.
const (
	MaxPorts   = 4
	MaxCoflows = 4
	MaxUnits   = 26
)

// Solution is the result of an exact solve.
type Solution struct {
	// Total is the optimal Σ_k w_k·C_k.
	Total float64
	// States is the number of distinct demand states explored.
	States int
}

type searcher struct {
	m, n    int
	weights []float64
	demand  []int8 // n*m*m remaining units
	memo    map[string]float64
}

func newSearcher(ins *coflowmodel.Instance) (*searcher, error) {
	if err := ins.Validate(); err != nil {
		return nil, err
	}
	m, n := ins.Ports, len(ins.Coflows)
	if m > MaxPorts {
		return nil, fmt.Errorf("exact: %d ports exceeds limit %d", m, MaxPorts)
	}
	if n == 0 || n > MaxCoflows {
		return nil, fmt.Errorf("exact: %d coflows outside 1..%d", n, MaxCoflows)
	}
	if total := ins.TotalWork(); total > MaxUnits {
		return nil, fmt.Errorf("exact: %d total units exceeds limit %d", total, MaxUnits)
	}
	s := &searcher{
		m: m, n: n,
		weights: make([]float64, n),
		demand:  make([]int8, n*m*m),
		memo:    make(map[string]float64),
	}
	for k := range ins.Coflows {
		c := &ins.Coflows[k]
		if c.Release != 0 {
			return nil, fmt.Errorf("exact: release dates unsupported (coflow %d released at %d)", c.ID, c.Release)
		}
		s.weights[k] = c.Weight
		for _, f := range c.Flows {
			idx := k*m*m + f.Src*m + f.Dst
			v := int64(s.demand[idx]) + f.Size
			if v > 127 {
				return nil, fmt.Errorf("exact: pair demand %d exceeds 127", v)
			}
			s.demand[idx] = int8(v)
		}
	}
	return s, nil
}

func (s *searcher) key() string { return string(unsafeBytes(s.demand)) }

func unsafeBytes(d []int8) []byte {
	b := make([]byte, len(d))
	for i, v := range d {
		b[i] = byte(v)
	}
	return b
}

// pendingWeight sums the weights of coflows with remaining demand.
func (s *searcher) pendingWeight() float64 {
	var w float64
	for k := 0; k < s.n; k++ {
		base := k * s.m * s.m
		for idx := base; idx < base+s.m*s.m; idx++ {
			if s.demand[idx] > 0 {
				w += s.weights[k]
				break
			}
		}
	}
	return w
}

// move is one slot's service decision: matched (row, col, coflow)
// triples.
type move struct {
	row, col, coflow int
}

// forEachMatching enumerates every non-empty matching (with per-pair
// coflow choice) over the support of the remaining demand, invoking
// fn with the move list. fn must not retain the slice.
func (s *searcher) forEachMatching(fn func([]move)) {
	usedCol := make([]bool, s.m)
	var cur []move
	var rec func(row int)
	rec = func(row int) {
		if row == s.m {
			if len(cur) > 0 {
				fn(cur)
			}
			return
		}
		rec(row + 1) // leave this row idle
		for col := 0; col < s.m; col++ {
			if usedCol[col] {
				continue
			}
			for k := 0; k < s.n; k++ {
				if s.demand[k*s.m*s.m+row*s.m+col] > 0 {
					usedCol[col] = true
					cur = append(cur, move{row, col, k})
					rec(row + 1)
					cur = cur[:len(cur)-1]
					usedCol[col] = false
				}
			}
		}
	}
	rec(0)
}

func (s *searcher) apply(ms []move, delta int8) {
	for _, mv := range ms {
		s.demand[mv.coflow*s.m*s.m+mv.row*s.m+mv.col] += delta
	}
}

// value returns the minimal additional weighted completion time from
// the current state: Σ_k w_k·(C_k − t) over unfinished coflows.
func (s *searcher) value() float64 {
	pw := s.pendingWeight()
	if pw == 0 {
		return 0
	}
	key := s.key()
	if v, ok := s.memo[key]; ok {
		return v
	}
	best := -1.0
	s.forEachMatching(func(ms []move) {
		s.apply(ms, -1)
		v := s.value()
		s.apply(ms, +1)
		if best < 0 || v < best {
			best = v
		}
	})
	// Every unfinished coflow pays one slot of weighted waiting.
	best += pw
	s.memo[key] = best
	return best
}

// Solve returns the optimal total weighted completion time of ins.
// All release dates must be zero and the instance must be within the
// package's size limits.
func Solve(ins *coflowmodel.Instance) (*Solution, error) {
	s, err := newSearcher(ins)
	if err != nil {
		return nil, err
	}
	total := s.value()
	return &Solution{Total: total, States: len(s.memo)}, nil
}

// FeasibleDeadlines reports whether some schedule completes every
// coflow k by deadlines[k] (same index order as ins.Coflows). It is
// used to certify Appendix B: the V_k lower bounds cannot always be
// met simultaneously.
func FeasibleDeadlines(ins *coflowmodel.Instance, deadlines []int64) (bool, error) {
	s, err := newSearcher(ins)
	if err != nil {
		return false, err
	}
	if len(deadlines) != s.n {
		return false, fmt.Errorf("exact: %d deadlines for %d coflows", len(deadlines), s.n)
	}
	var maxDL int64
	for _, d := range deadlines {
		if d > maxDL {
			maxDL = d
		}
	}
	memo := make(map[string]bool)
	var feasible func(t int64) bool
	feasible = func(t int64) bool {
		done := true
		for k := 0; k < s.n; k++ {
			unfinished := false
			base := k * s.m * s.m
			for idx := base; idx < base+s.m*s.m; idx++ {
				if s.demand[idx] > 0 {
					unfinished = true
					break
				}
			}
			if unfinished {
				done = false
				if t >= deadlines[k] {
					return false // cannot finish k by its deadline
				}
			}
		}
		if done {
			return true
		}
		if t >= maxDL {
			return false
		}
		key := fmt.Sprintf("%d|%s", t, s.key())
		if v, ok := memo[key]; ok {
			return v
		}
		ok := false
		s.forEachMatching(func(ms []move) {
			if ok {
				return
			}
			s.apply(ms, -1)
			if feasible(t + 1) {
				ok = true
			}
			s.apply(ms, +1)
		})
		memo[key] = ok
		return ok
	}
	return feasible(0), nil
}
