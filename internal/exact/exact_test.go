package exact

import (
	"math"
	"math/rand"
	"testing"

	"coflow/internal/coflowmodel"
	"coflow/internal/core"
	"coflow/internal/lpmodel"
	"coflow/internal/matrix"
	"coflow/internal/online"
)

func inst(ports int, coflows ...coflowmodel.Coflow) *coflowmodel.Instance {
	return &coflowmodel.Instance{Ports: ports, Coflows: coflows}
}

func TestSingleCoflowOptimalIsLoad(t *testing.T) {
	d := matrix.MustFromRows([][]int64{{1, 2}, {2, 1}})
	sol, err := Solve(inst(2, coflowmodel.FromMatrix(1, 1, 0, d)))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Total-3) > 1e-9 {
		t.Fatalf("OPT = %g, want ρ = 3", sol.Total)
	}
}

func TestShortestProcessingTimeOnSingleMachine(t *testing.T) {
	// m=1, sizes 1 and 2, unit weights: SPT gives 1 + 3 = 4.
	a := coflowmodel.Coflow{ID: 1, Weight: 1, Flows: []coflowmodel.Flow{{Src: 0, Dst: 0, Size: 2}}}
	b := coflowmodel.Coflow{ID: 2, Weight: 1, Flows: []coflowmodel.Flow{{Src: 0, Dst: 0, Size: 1}}}
	sol, err := Solve(inst(1, a, b))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Total-4) > 1e-9 {
		t.Fatalf("OPT = %g, want 4", sol.Total)
	}
}

func TestWeightsChangePriority(t *testing.T) {
	// w1=1 size 2; w2=10 size 1 → serve 2 first: 10·1 + 1·3 = 13.
	a := coflowmodel.Coflow{ID: 1, Weight: 1, Flows: []coflowmodel.Flow{{Src: 0, Dst: 0, Size: 2}}}
	b := coflowmodel.Coflow{ID: 2, Weight: 10, Flows: []coflowmodel.Flow{{Src: 0, Dst: 0, Size: 1}}}
	sol, err := Solve(inst(1, a, b))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Total-13) > 1e-9 {
		t.Fatalf("OPT = %g, want 13", sol.Total)
	}
}

func TestParallelPairsOverlap(t *testing.T) {
	// Two coflows on disjoint pairs can finish simultaneously.
	a := coflowmodel.Coflow{ID: 1, Weight: 1, Flows: []coflowmodel.Flow{{Src: 0, Dst: 0, Size: 2}}}
	b := coflowmodel.Coflow{ID: 2, Weight: 1, Flows: []coflowmodel.Flow{{Src: 1, Dst: 1, Size: 2}}}
	sol, err := Solve(inst(2, a, b))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Total-4) > 1e-9 {
		t.Fatalf("OPT = %g, want 2+2=4", sol.Total)
	}
}

func TestSizeGuards(t *testing.T) {
	big := coflowmodel.Coflow{ID: 1, Weight: 1, Flows: []coflowmodel.Flow{{Src: 0, Dst: 0, Size: MaxUnits + 1}}}
	if _, err := Solve(inst(1, big)); err == nil {
		t.Error("unit guard did not trip")
	}
	released := coflowmodel.Coflow{ID: 1, Weight: 1, Release: 3, Flows: []coflowmodel.Flow{{Src: 0, Dst: 0, Size: 1}}}
	if _, err := Solve(inst(1, released)); err == nil {
		t.Error("release guard did not trip")
	}
	var many []coflowmodel.Coflow
	for k := 0; k <= MaxCoflows; k++ {
		many = append(many, coflowmodel.Coflow{ID: k + 1, Weight: 1,
			Flows: []coflowmodel.Flow{{Src: 0, Dst: 0, Size: 1}}})
	}
	if _, err := Solve(inst(1, many...)); err == nil {
		t.Error("coflow-count guard did not trip")
	}
	if _, err := Solve(inst(MaxPorts+1, coflowmodel.Coflow{ID: 1, Weight: 1,
		Flows: []coflowmodel.Flow{{Src: 0, Dst: 0, Size: 1}}})); err == nil {
		t.Error("port guard did not trip")
	}
}

func randomTiny(rng *rand.Rand) *coflowmodel.Instance {
	m := 1 + rng.Intn(3)
	n := 1 + rng.Intn(3)
	ins := &coflowmodel.Instance{Ports: m}
	budget := int64(10)
	for k := 0; k < n; k++ {
		c := coflowmodel.Coflow{ID: k + 1, Weight: 1 + float64(rng.Intn(4))}
		flows := 1 + rng.Intn(3)
		for f := 0; f < flows && budget > 0; f++ {
			size := 1 + rng.Int63n(3)
			if size > budget {
				size = budget
			}
			budget -= size
			c.Flows = append(c.Flows, coflowmodel.Flow{
				Src: rng.Intn(m), Dst: rng.Intn(m), Size: size,
			})
		}
		if len(c.Flows) == 0 {
			c.Flows = []coflowmodel.Flow{{Src: 0, Dst: 0, Size: 1}}
		}
		ins.Coflows = append(ins.Coflows, c)
	}
	return ins
}

// Lemma 1 and the LP-EXP dominance, validated against the true
// optimum: LP ≤ LP-EXP ≤ OPT.
func TestLowerBoundsBelowOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(2023))
	for trial := 0; trial < 30; trial++ {
		ins := randomTiny(rng)
		opt, err := Solve(ins)
		if err != nil {
			t.Fatal(err)
		}
		isol, err := lpmodel.SolveIntervalLP(ins)
		if err != nil {
			t.Fatal(err)
		}
		tsol, err := lpmodel.SolveTimeIndexedLP(ins)
		if err != nil {
			t.Fatal(err)
		}
		if isol.LowerBound > opt.Total+1e-6 {
			t.Fatalf("trial %d: interval LP %g > OPT %g", trial, isol.LowerBound, opt.Total)
		}
		if tsol.LowerBound > opt.Total+1e-6 {
			t.Fatalf("trial %d: LP-EXP %g > OPT %g", trial, tsol.LowerBound, opt.Total)
		}
		if isol.LowerBound > tsol.LowerBound+1e-6 {
			t.Fatalf("trial %d: interval LP %g > LP-EXP %g", trial, isol.LowerBound, tsol.LowerBound)
		}
	}
}

// Theorem 1 / Corollary 1 against the true optimum: Algorithm 2 is
// within 64/3 on zero-release instances (empirically much closer).
func TestAlgorithm2WithinProvenRatio(t *testing.T) {
	rng := rand.New(rand.NewSource(4096))
	worst := 0.0
	for trial := 0; trial < 30; trial++ {
		ins := randomTiny(rng)
		opt, err := Solve(ins)
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.Algorithm2(ins)
		if err != nil {
			t.Fatal(err)
		}
		if opt.Total <= 0 {
			continue
		}
		ratio := res.TotalWeighted / opt.Total
		if ratio > worst {
			worst = ratio
		}
		if ratio > core.DeterministicRatioZeroRelease+1e-9 {
			t.Fatalf("trial %d: ratio %g exceeds 64/3", trial, ratio)
		}
	}
	// The paper's experiments find near-optimal behaviour; a sane
	// implementation stays well under 4 on tiny instances.
	if worst > 4 {
		t.Fatalf("worst observed ratio %g is suspiciously large", worst)
	}
}

// The randomized algorithm also respects its guarantee against OPT.
func TestRandomizedWithinProvenRatio(t *testing.T) {
	rng := rand.New(rand.NewSource(8192))
	for trial := 0; trial < 10; trial++ {
		ins := randomTiny(rng)
		opt, err := Solve(ins)
		if err != nil {
			t.Fatal(err)
		}
		if opt.Total <= 0 {
			continue
		}
		var mean float64
		const draws = 50
		for d := 0; d < draws; d++ {
			res, err := core.Randomized(ins, rand.New(rand.NewSource(int64(d))))
			if err != nil {
				t.Fatal(err)
			}
			mean += res.TotalWeighted
		}
		mean /= draws
		if mean > core.RandomizedRatioZeroRelease*opt.Total+1e-9 {
			t.Fatalf("trial %d: E[total] %g exceeds (8+16√2/3)·OPT = %g",
				trial, mean, core.RandomizedRatioZeroRelease*opt.Total)
		}
	}
}

// Appendix B, scaled: the per-prefix lower bounds V_1, V_2 cannot be
// achieved simultaneously, though each is achievable on its own.
func TestAppendixBCounterexample(t *testing.T) {
	d1 := matrix.MustFromRows([][]int64{
		{1, 0, 1},
		{0, 1, 0},
		{1, 0, 1},
	})
	d2 := matrix.MustFromRows([][]int64{
		{0, 1, 0},
		{1, 0, 1},
		{0, 1, 0},
	})
	ins := inst(3,
		coflowmodel.FromMatrix(1, 1, 0, d1),
		coflowmodel.FromMatrix(2, 1, 0, d2))
	v := lpmodel.MaxTotalLoads(ins, []int{0, 1})
	if v[0] != 2 || v[1] != 3 {
		t.Fatalf("V = %v, want [2 3]", v)
	}
	// Deadlines (V_1, V_2) = (2, 3): infeasible.
	ok, err := FeasibleDeadlines(ins, []int64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("deadlines (2,3) reported feasible; Appendix B says otherwise")
	}
	// Relaxing either deadline makes it feasible.
	ok, err = FeasibleDeadlines(ins, []int64{3, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("deadlines (3,3) should be feasible (one BvN of the sum)")
	}
	ok, err = FeasibleDeadlines(ins, []int64{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("deadlines (2,4) should be feasible (coflow 1 first)")
	}
}

func TestFeasibleDeadlinesArity(t *testing.T) {
	ins := inst(1, coflowmodel.Coflow{ID: 1, Weight: 1, Flows: []coflowmodel.Flow{{Src: 0, Dst: 0, Size: 1}}})
	if _, err := FeasibleDeadlines(ins, []int64{1, 2}); err == nil {
		t.Fatal("deadline arity mismatch accepted")
	}
}

func TestFeasibleDeadlinesTrivial(t *testing.T) {
	ins := inst(1, coflowmodel.Coflow{ID: 1, Weight: 1, Flows: []coflowmodel.Flow{{Src: 0, Dst: 0, Size: 3}}})
	ok, err := FeasibleDeadlines(ins, []int64{3})
	if err != nil || !ok {
		t.Fatalf("deadline 3 for 3 units: ok=%v err=%v", ok, err)
	}
	ok, err = FeasibleDeadlines(ins, []int64{2})
	if err != nil || ok {
		t.Fatalf("deadline 2 for 3 units: ok=%v err=%v", ok, err)
	}
}

func BenchmarkExactTiny(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	ins := randomTiny(rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(ins); err != nil {
			b.Fatal(err)
		}
	}
}

// bestPermutationSchedule evaluates the canonical priority-greedy
// realization of every fixed coflow permutation and returns the best
// total weighted completion time.
func bestPermutationSchedule(t *testing.T, ins *coflowmodel.Instance) float64 {
	t.Helper()
	n := len(ins.Coflows)
	best := math.Inf(1)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			res, err := online.SimulateOrder(ins, perm)
			if err != nil {
				t.Fatal(err)
			}
			if res.TotalWeighted < best {
				best = res.TotalWeighted
			}
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
	return best
}

// §1.1: "permutation schedules need not be optimal for coflow
// scheduling" (they ARE optimal for concurrent open shop). The witness
// below — found by exhaustive search — has an exact optimum of 33
// while the best fixed-priority schedule reaches only 39: interleaving
// different coflows' priority across ports is strictly necessary.
func TestPermutationSchedulesNotOptimal(t *testing.T) {
	ins := inst(3,
		coflowmodel.Coflow{ID: 1, Weight: 3, Flows: []coflowmodel.Flow{
			{Src: 0, Dst: 0, Size: 2}, {Src: 0, Dst: 1, Size: 2}}},
		coflowmodel.Coflow{ID: 2, Weight: 3, Flows: []coflowmodel.Flow{
			{Src: 2, Dst: 1, Size: 3}, {Src: 2, Dst: 0, Size: 2}, {Src: 1, Dst: 0, Size: 2}}},
		coflowmodel.Coflow{ID: 3, Weight: 3, Flows: []coflowmodel.Flow{
			{Src: 2, Dst: 1, Size: 1}}},
	)
	opt, err := Solve(ins)
	if err != nil {
		t.Fatal(err)
	}
	bestPerm := bestPermutationSchedule(t, ins)
	if bestPerm < opt.Total-1e-9 {
		t.Fatalf("a permutation schedule (%g) beat the exact optimum (%g)", bestPerm, opt.Total)
	}
	if opt.Total >= bestPerm-1e-9 {
		t.Fatalf("witness lost its separation: OPT %g vs best permutation %g", opt.Total, bestPerm)
	}
}

// Sanity: on random tiny instances no permutation schedule may ever
// beat the exact optimum.
func TestPermutationSchedulesNeverBeatOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(1337))
	for trial := 0; trial < 40; trial++ {
		ins := randomTiny(rng)
		opt, err := Solve(ins)
		if err != nil {
			t.Fatal(err)
		}
		if best := bestPermutationSchedule(t, ins); best < opt.Total-1e-9 {
			t.Fatalf("trial %d: permutation schedule %g beat OPT %g", trial, best, opt.Total)
		}
	}
}
