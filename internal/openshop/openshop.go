// Package openshop implements the concurrent open shop scheduling
// substrate of Appendix A. Coflow scheduling restricted to diagonal
// demand matrices is exactly concurrent open shop: machine i of the
// shop is port pair (i,i) of the switch, and because diagonal pairs
// never conflict in a matching, all machines can run simultaneously.
//
// The package provides the instance type, the embedding into (and
// extraction from) coflow instances, permutation list scheduling
// (optimal among schedules with a fixed order — Ahmadi et al.),
// brute-force optimal permutations for tiny instances, and the
// Wang–Cheng-style interval-indexed LP ordering the paper builds on.
package openshop

import (
	"fmt"
	"sort"

	"coflow/internal/coflowmodel"
	"coflow/internal/lpmodel"
)

// Job is one customer order: Proc[i] units of work on machine i, all
// of which must finish for the job to complete.
type Job struct {
	ID      int
	Weight  float64
	Release int64
	Proc    []int64
}

// Instance is a concurrent open shop problem.
type Instance struct {
	Machines int
	Jobs     []Job
}

// Validate checks structural soundness.
func (ins *Instance) Validate() error {
	if ins.Machines <= 0 {
		return fmt.Errorf("openshop: non-positive machine count %d", ins.Machines)
	}
	ids := map[int]bool{}
	for _, j := range ins.Jobs {
		if ids[j.ID] {
			return fmt.Errorf("openshop: duplicate job ID %d", j.ID)
		}
		ids[j.ID] = true
		if j.Weight <= 0 {
			return fmt.Errorf("openshop: job %d has non-positive weight", j.ID)
		}
		if j.Release < 0 {
			return fmt.Errorf("openshop: job %d has negative release", j.ID)
		}
		if len(j.Proc) != ins.Machines {
			return fmt.Errorf("openshop: job %d has %d machine times, want %d", j.ID, len(j.Proc), ins.Machines)
		}
		for i, p := range j.Proc {
			if p < 0 {
				return fmt.Errorf("openshop: job %d has negative time %d on machine %d", j.ID, p, i)
			}
		}
	}
	return nil
}

// ToCoflowInstance embeds the shop as a coflow instance with diagonal
// demand matrices (Appendix A).
func (ins *Instance) ToCoflowInstance() *coflowmodel.Instance {
	out := &coflowmodel.Instance{Ports: ins.Machines}
	for _, j := range ins.Jobs {
		c := coflowmodel.Coflow{ID: j.ID, Weight: j.Weight, Release: j.Release}
		for i, p := range j.Proc {
			if p > 0 {
				c.Flows = append(c.Flows, coflowmodel.Flow{Src: i, Dst: i, Size: p})
			}
		}
		out.Coflows = append(out.Coflows, c)
	}
	return out
}

// FromCoflowInstance extracts a shop from a coflow instance whose
// demand matrices are all diagonal; it errors otherwise.
func FromCoflowInstance(cins *coflowmodel.Instance) (*Instance, error) {
	if err := cins.Validate(); err != nil {
		return nil, err
	}
	out := &Instance{Machines: cins.Ports}
	for k := range cins.Coflows {
		c := &cins.Coflows[k]
		j := Job{ID: c.ID, Weight: c.Weight, Release: c.Release, Proc: make([]int64, cins.Ports)}
		for _, f := range c.Flows {
			if f.Src != f.Dst {
				return nil, fmt.Errorf("openshop: coflow %d has off-diagonal flow (%d→%d)", c.ID, f.Src, f.Dst)
			}
			j.Proc[f.Src] += f.Size
		}
		out.Jobs = append(out.Jobs, j)
	}
	return out, nil
}

// ScheduleByOrder list-schedules jobs in the given order (indices into
// ins.Jobs): every machine processes jobs in that common order,
// work-conserving with respect to release dates, and a job completes
// when its last machine finishes it. This is optimal among schedules
// honouring the order on all machines.
func ScheduleByOrder(ins *Instance, order []int) ([]int64, error) {
	if err := ins.Validate(); err != nil {
		return nil, err
	}
	if len(order) != len(ins.Jobs) {
		return nil, fmt.Errorf("openshop: order has %d entries, instance has %d jobs", len(order), len(ins.Jobs))
	}
	seen := make([]bool, len(ins.Jobs))
	for _, k := range order {
		if k < 0 || k >= len(ins.Jobs) || seen[k] {
			return nil, fmt.Errorf("openshop: order is not a permutation")
		}
		seen[k] = true
	}
	machineFree := make([]int64, ins.Machines)
	completion := make([]int64, len(ins.Jobs))
	for _, k := range order {
		j := &ins.Jobs[k]
		c := j.Release
		for i, p := range j.Proc {
			if p == 0 {
				continue
			}
			start := machineFree[i]
			if j.Release > start {
				start = j.Release
			}
			machineFree[i] = start + p
			if machineFree[i] > c {
				c = machineFree[i]
			}
		}
		completion[k] = c
	}
	return completion, nil
}

// TotalWeighted sums w_j·C_j.
func (ins *Instance) TotalWeighted(completion []int64) float64 {
	var s float64
	for k := range ins.Jobs {
		s += ins.Jobs[k].Weight * float64(completion[k])
	}
	return s
}

// SWPTOrder orders jobs by nondecreasing (total processing)/weight —
// the shop analogue of H_ρ uses the bottleneck machine instead; both
// are provided.
func SWPTOrder(ins *Instance) []int {
	key := make([]float64, len(ins.Jobs))
	for k, j := range ins.Jobs {
		var tot int64
		for _, p := range j.Proc {
			tot += p
		}
		key[k] = float64(tot) / j.Weight
	}
	return orderByKey(ins, key)
}

// BottleneckOrder orders jobs by nondecreasing (max machine load)/weight,
// matching H_ρ on the diagonal embedding.
func BottleneckOrder(ins *Instance) []int {
	key := make([]float64, len(ins.Jobs))
	for k, j := range ins.Jobs {
		var mx int64
		for _, p := range j.Proc {
			if p > mx {
				mx = p
			}
		}
		key[k] = float64(mx) / j.Weight
	}
	return orderByKey(ins, key)
}

func orderByKey(ins *Instance, key []float64) []int {
	order := make([]int, len(ins.Jobs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		if key[order[a]] != key[order[b]] {
			return key[order[a]] < key[order[b]]
		}
		return ins.Jobs[order[a]].ID < ins.Jobs[order[b]].ID
	})
	return order
}

// LPOrder derives the Wang–Cheng-style interval-indexed LP ordering by
// solving the coflow interval LP on the diagonal embedding.
func LPOrder(ins *Instance) ([]int, error) {
	sol, err := lpmodel.SolveIntervalLP(ins.ToCoflowInstance())
	if err != nil {
		return nil, err
	}
	return sol.Order, nil
}

// MaxPermutationJobs caps BestPermutation's n! search.
const MaxPermutationJobs = 8

// BestPermutation exhaustively searches all job orders and returns the
// best (order, completions, total). For concurrent open shop an
// optimal permutation schedule exists (Ahmadi et al.), so with zero
// release dates this is the true optimum.
func BestPermutation(ins *Instance) ([]int, []int64, float64, error) {
	if err := ins.Validate(); err != nil {
		return nil, nil, 0, err
	}
	n := len(ins.Jobs)
	if n > MaxPermutationJobs {
		return nil, nil, 0, fmt.Errorf("openshop: %d jobs exceeds permutation search limit %d", n, MaxPermutationJobs)
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	var bestOrder []int
	var bestComp []int64
	best := -1.0
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			comp, err := ScheduleByOrder(ins, perm)
			if err != nil {
				return
			}
			if tot := ins.TotalWeighted(comp); best < 0 || tot < best {
				best = tot
				bestOrder = append([]int(nil), perm...)
				bestComp = comp
			}
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
	return bestOrder, bestComp, best, nil
}
