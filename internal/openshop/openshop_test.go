package openshop

import (
	"math"
	"math/rand"
	"testing"

	"coflow/internal/coflowmodel"
	"coflow/internal/core"
	"coflow/internal/exact"
)

func twoJobShop() *Instance {
	return &Instance{
		Machines: 2,
		Jobs: []Job{
			{ID: 1, Weight: 1, Proc: []int64{2, 1}},
			{ID: 2, Weight: 1, Proc: []int64{1, 3}},
		},
	}
}

func TestValidate(t *testing.T) {
	if err := twoJobShop().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := twoJobShop()
	bad.Jobs[0].Proc = []int64{1}
	if err := bad.Validate(); err == nil {
		t.Fatal("arity mismatch accepted")
	}
	bad2 := twoJobShop()
	bad2.Jobs[1].ID = 1
	if err := bad2.Validate(); err == nil {
		t.Fatal("duplicate ID accepted")
	}
	bad3 := twoJobShop()
	bad3.Jobs[0].Proc[0] = -1
	if err := bad3.Validate(); err == nil {
		t.Fatal("negative proc accepted")
	}
}

func TestScheduleByOrder(t *testing.T) {
	ins := twoJobShop()
	comp, err := ScheduleByOrder(ins, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	// Machine 0: job1 [0,2], job2 [2,3]; machine 1: job1 [0,1], job2 [1,4].
	if comp[0] != 2 || comp[1] != 4 {
		t.Fatalf("completions = %v, want [2 4]", comp)
	}
	comp, err = ScheduleByOrder(ins, []int{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	// Machine 0: job2 [0,1], job1 [1,3]; machine 1: job2 [0,3], job1 [3,4].
	if comp[1] != 3 || comp[0] != 4 {
		t.Fatalf("completions = %v, want job2=3 job1=4", comp)
	}
}

func TestScheduleByOrderReleaseDates(t *testing.T) {
	ins := &Instance{Machines: 1, Jobs: []Job{
		{ID: 1, Weight: 1, Release: 5, Proc: []int64{2}},
		{ID: 2, Weight: 1, Release: 0, Proc: []int64{1}},
	}}
	comp, err := ScheduleByOrder(ins, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if comp[0] != 7 || comp[1] != 8 {
		t.Fatalf("completions = %v, want [7 8]", comp)
	}
}

func TestScheduleByOrderRejectsBadOrder(t *testing.T) {
	ins := twoJobShop()
	for _, order := range [][]int{{0}, {0, 0}, {0, 2}} {
		if _, err := ScheduleByOrder(ins, order); err == nil {
			t.Errorf("order %v accepted", order)
		}
	}
}

func TestEmbeddingRoundTrip(t *testing.T) {
	ins := twoJobShop()
	cins := ins.ToCoflowInstance()
	if err := cins.Validate(); err != nil {
		t.Fatal(err)
	}
	for k := range cins.Coflows {
		if !cins.Coflows[k].Matrix(2).IsDiagonal() {
			t.Fatal("embedding not diagonal")
		}
	}
	back, err := FromCoflowInstance(cins)
	if err != nil {
		t.Fatal(err)
	}
	for k := range back.Jobs {
		for i := range back.Jobs[k].Proc {
			if back.Jobs[k].Proc[i] != ins.Jobs[k].Proc[i] {
				t.Fatalf("round trip lost processing times: %+v", back.Jobs[k])
			}
		}
	}
}

func TestFromCoflowRejectsOffDiagonal(t *testing.T) {
	cins := &coflowmodel.Instance{Ports: 2, Coflows: []coflowmodel.Coflow{
		{ID: 1, Weight: 1, Flows: []coflowmodel.Flow{{Src: 0, Dst: 1, Size: 1}}},
	}}
	if _, err := FromCoflowInstance(cins); err == nil {
		t.Fatal("off-diagonal coflow accepted")
	}
}

func TestSWPTAndBottleneckOrders(t *testing.T) {
	ins := &Instance{Machines: 2, Jobs: []Job{
		{ID: 1, Weight: 1, Proc: []int64{5, 5}}, // total 10, bottleneck 5
		{ID: 2, Weight: 1, Proc: []int64{8, 0}}, // total 8, bottleneck 8
	}}
	swpt := SWPTOrder(ins)
	if swpt[0] != 1 {
		t.Fatalf("SWPT order = %v, want job 2 first (total 8 < 10)", swpt)
	}
	bn := BottleneckOrder(ins)
	if bn[0] != 0 {
		t.Fatalf("Bottleneck order = %v, want job 1 first (5 < 8)", bn)
	}
}

func TestBestPermutationTiny(t *testing.T) {
	ins := twoJobShop()
	order, comp, total, err := BestPermutation(ins)
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || len(comp) != 2 {
		t.Fatalf("order=%v comp=%v", order, comp)
	}
	// Orders: {0,1} → 2+4 = 6; {1,0} → 4+3 = 7. Best is 6.
	if math.Abs(total-6) > 1e-9 {
		t.Fatalf("best total = %g, want 6", total)
	}
}

func TestBestPermutationGuard(t *testing.T) {
	ins := &Instance{Machines: 1}
	for k := 0; k <= MaxPermutationJobs; k++ {
		ins.Jobs = append(ins.Jobs, Job{ID: k + 1, Weight: 1, Proc: []int64{1}})
	}
	if _, _, _, err := BestPermutation(ins); err == nil {
		t.Fatal("permutation guard did not trip")
	}
}

func randomShop(rng *rand.Rand, machines, jobs int, maxP int64) *Instance {
	ins := &Instance{Machines: machines}
	for k := 0; k < jobs; k++ {
		j := Job{ID: k + 1, Weight: 1 + float64(rng.Intn(4)), Proc: make([]int64, machines)}
		for i := range j.Proc {
			j.Proc[i] = rng.Int63n(maxP + 1)
		}
		if func() bool {
			for _, p := range j.Proc {
				if p > 0 {
					return false
				}
			}
			return true
		}() {
			j.Proc[0] = 1
		}
		ins.Jobs = append(ins.Jobs, j)
	}
	return ins
}

// Appendix A equivalence at the optimum: the exact coflow optimum of
// the diagonal embedding equals the best permutation schedule of the
// shop (permutation schedules are optimal for concurrent open shop).
func TestDiagonalCoflowOptimumEqualsShopOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(314))
	for trial := 0; trial < 20; trial++ {
		ins := randomShop(rng, 1+rng.Intn(3), 1+rng.Intn(3), 3)
		_, _, shopOpt, err := BestPermutation(ins)
		if err != nil {
			t.Fatal(err)
		}
		cins := ins.ToCoflowInstance()
		if cins.TotalWork() > exact.MaxUnits {
			continue
		}
		copt, err := exact.Solve(cins)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(copt.Total-shopOpt) > 1e-9 {
			t.Fatalf("trial %d: coflow OPT %g != shop OPT %g", trial, copt.Total, shopOpt)
		}
	}
}

// List scheduling never loses to the coflow executor given the same
// order: the shop schedule is work-conserving per machine.
func TestListSchedulingDominatesCoflowExecutor(t *testing.T) {
	rng := rand.New(rand.NewSource(2718))
	for trial := 0; trial < 30; trial++ {
		ins := randomShop(rng, 1+rng.Intn(4), 1+rng.Intn(5), 6)
		cins := ins.ToCoflowInstance()
		res, err := core.Schedule(cins, core.Options{Ordering: core.OrderLoadWeight, Grouping: true, Backfill: true})
		if err != nil {
			t.Fatal(err)
		}
		// Use the same order for the shop.
		comp, err := ScheduleByOrder(ins, res.Order)
		if err != nil {
			t.Fatal(err)
		}
		if shop := ins.TotalWeighted(comp); shop > res.TotalWeighted+1e-9 {
			t.Fatalf("trial %d: shop list schedule %g worse than coflow executor %g", trial, shop, res.TotalWeighted)
		}
	}
}

func TestLPOrderRunsAndIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ins := randomShop(rng, 3, 6, 5)
	order, err := LPOrder(ins)
	if err != nil {
		t.Fatal(err)
	}
	seen := make([]bool, len(order))
	for _, k := range order {
		if k < 0 || k >= len(order) || seen[k] {
			t.Fatalf("LP order not a permutation: %v", order)
		}
		seen[k] = true
	}
}

// LP ordering should be competitive with SWPT on random shops.
func TestLPOrderQuality(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var lpTotal, swptTotal float64
	for trial := 0; trial < 10; trial++ {
		ins := randomShop(rng, 3, 7, 6)
		lpOrd, err := LPOrder(ins)
		if err != nil {
			t.Fatal(err)
		}
		c1, err := ScheduleByOrder(ins, lpOrd)
		if err != nil {
			t.Fatal(err)
		}
		c2, err := ScheduleByOrder(ins, SWPTOrder(ins))
		if err != nil {
			t.Fatal(err)
		}
		lpTotal += ins.TotalWeighted(c1)
		swptTotal += ins.TotalWeighted(c2)
	}
	if lpTotal > swptTotal*1.3 {
		t.Fatalf("LP ordering much worse than SWPT: %g vs %g", lpTotal, swptTotal)
	}
}
