package lint

import (
	"go/ast"
	"go/types"
)

// SpawnGuard closes the hole guardedby leaves open: guardedby exempts
// everything inside a //coflow:singlewriter function, but a goroutine
// spawned there — or a closure that escapes there — runs OFF the
// single-writer goroutine, so the exemption must not extend into it.
//
// Inside a //coflow:singlewriter function, a function literal that is
// (a) launched with go, (b) sent on a channel, or (c) stored into a
// field, element, or package-level variable is treated as escaping:
//
//   - it may not touch a field guarded by a serialization domain
//     (non-mutex guard) at all — the domain is the single-writer loop
//     it just left;
//   - it may touch a mutex-guarded field only if it takes that lock
//     itself (a Lock on the same base expression inside the literal).
//
// Closures that stay synchronous — assigned to a local and called
// in-loop (the daemon's publish/handle helpers) or passed directly as
// a call argument — still run on the single-writer goroutine and are
// exempt, exactly like the enclosing function. Passing an escaping
// closure through a call argument that stores it is the documented
// blind spot; the scenario soak and race-enabled tests back this
// analyzer up at runtime.
var SpawnGuard = &Analyzer{
	Name: "spawnguard",
	Doc:  "goroutines/escaping closures inside //coflow:singlewriter functions must not touch serialization-domain state",
	Run:  runSpawnGuard,
}

func runSpawnGuard(pass *Pass) {
	guarded := collectGuardedFields(pass)
	if len(guarded) == 0 {
		return
	}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !FuncAnnotations(fd)["singlewriter"] {
				continue
			}
			checkSpawns(pass, fd, guarded)
		}
	}
}

func checkSpawns(pass *Pass, fd *ast.FuncDecl, guarded map[types.Object]guardInfo) {
	// Local name -> literal bindings, so `f := func() {...}; go f()`
	// resolves. Only direct bindings count; anything fancier already
	// escapes via the store rules below.
	litBindings := map[types.Object]*ast.FuncLit{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, l := range as.Lhs {
			id, ok := l.(*ast.Ident)
			if !ok {
				continue
			}
			if lit, ok := as.Rhs[i].(*ast.FuncLit); ok {
				if obj := pass.ObjectOf(id); obj != nil {
					litBindings[obj] = lit
				}
			}
		}
		return true
	})

	seen := map[*ast.FuncLit]bool{}
	escape := func(lit *ast.FuncLit, how string) {
		if lit == nil || seen[lit] {
			return
		}
		seen[lit] = true
		checkEscapedLit(pass, fd, lit, how, guarded)
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			switch fun := ast.Unparen(n.Call.Fun).(type) {
			case *ast.FuncLit:
				escape(fun, "a goroutine")
			case *ast.Ident:
				if obj := pass.ObjectOf(fun); obj != nil {
					escape(litBindings[obj], "a goroutine")
				}
			}
		case *ast.SendStmt:
			if lit, ok := ast.Unparen(n.Value).(*ast.FuncLit); ok {
				escape(lit, "a channel send")
			} else if id, ok := ast.Unparen(n.Value).(*ast.Ident); ok {
				if obj := pass.ObjectOf(id); obj != nil {
					escape(litBindings[obj], "a channel send")
				}
			}
		case *ast.AssignStmt:
			for i, l := range n.Lhs {
				if len(n.Rhs) != len(n.Lhs) {
					continue
				}
				lit, ok := ast.Unparen(n.Rhs[i]).(*ast.FuncLit)
				if !ok {
					continue
				}
				switch lhs := l.(type) {
				case *ast.Ident:
					// Package-level variable stores escape; locals
					// stay synchronous until proven otherwise.
					if obj := pass.ObjectOf(lhs); obj != nil && obj.Parent() == pass.Pkg.Types.Scope() {
						escape(lit, "a package-level variable")
					}
				default:
					escape(lit, "a field or element store")
				}
			}
		}
		return true
	})
}

// checkEscapedLit vets one escaping literal's body against the
// guarded-field table.
func checkEscapedLit(pass *Pass, fd *ast.FuncDecl, lit *ast.FuncLit, how string, guarded map[types.Object]guardInfo) {
	locks := collectLockedPrefixesIn(lit.Body)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj := pass.Pkg.Info.Uses[sel.Sel]
		info, ok := guarded[obj]
		if !ok {
			return true
		}
		if info.isMutex {
			if base := exprString(sel.X); base != "" && locks[base+"."+info.guard] {
				return true
			}
			pass.Reportf(sel.Sel.Pos(), "field %s is guarded by %s but is touched from a closure escaping //coflow:singlewriter %s via %s without taking %s.%s itself",
				sel.Sel.Name, info.guard, fd.Name.Name, how, describeExpr(sel.X), info.guard)
			return true
		}
		pass.Reportf(sel.Sel.Pos(), "field %s is guarded by the %q serialization domain but is touched from a closure escaping //coflow:singlewriter %s via %s",
			sel.Sel.Name, info.guard, fd.Name.Name, how)
		return true
	})
}
