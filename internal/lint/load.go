package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package: the parsed syntax
// (with comments), the types.Package, and the types.Info the
// analyzers query. Module is the module path of the enclosing module
// ("" for standalone fixture packages).
type Package struct {
	Path   string // import path
	Name   string // package name
	Dir    string // absolute directory
	Module string // module path, "" outside a module
	Fset   *token.FileSet
	Files  []*ast.File
	Types  *types.Package
	Info   *types.Info
}

// Loader loads and type-checks the packages of one module (or a
// standalone directory) using only the standard library: go/parser
// for syntax, go/types for checking, and go/importer for
// dependencies. Module-local imports are resolved by mapping the
// import path onto the module directory tree; everything else (the
// standard library) goes through the gc export-data importer, with a
// source-importer fallback for toolchains without export data.
//
// A Loader memoizes: each package is parsed and checked once, and
// type objects are shared across the load, so an annotation recorded
// on a function in one package is recognized at call sites in
// another.
type Loader struct {
	Fset       *token.FileSet
	ModuleRoot string // absolute path of the module root ("" standalone)
	ModulePath string // module path from go.mod ("" standalone)

	std     types.Importer
	stdSrc  types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader creates a loader rooted at the module containing dir:
// it walks upward from dir to the nearest go.mod and reads the
// module path from it.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("lint: no go.mod at or above %s", abs)
		}
		root = parent
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	l := newLoader()
	l.ModuleRoot = root
	l.ModulePath = modPath
	return l, nil
}

// newLoader builds the shared pieces of a loader.
func newLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		std:     importer.Default(),
		stdSrc:  importer.ForCompiler(fset, "source", nil),
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
	}
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// LoadAll loads every package directory under the module root,
// skipping testdata, hidden and underscore directories. Packages are
// returned sorted by import path.
func (l *Loader) LoadAll() ([]*Package, error) {
	if l.ModuleRoot == "" {
		return nil, fmt.Errorf("lint: LoadAll needs a module-rooted loader")
	}
	var dirs []string
	err := filepath.WalkDir(l.ModuleRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != l.ModuleRoot &&
				(name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(l.ModuleRoot, dir)
		if err != nil {
			return nil, err
		}
		path := l.ModulePath
		if rel != "." {
			path = l.ModulePath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.LoadDir(dir, path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(a, b int) bool { return pkgs[a].Path < pkgs[b].Path })
	return pkgs, nil
}

// LoadDir parses and type-checks the single package in dir under the
// given import path. Results are memoized by import path.
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	pkg := &Package{
		Path:   path,
		Name:   tpkg.Name(),
		Dir:    dir,
		Module: l.ModulePath,
		Fset:   l.Fset,
		Files:  files,
		Types:  tpkg,
		Info:   info,
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// Import implements types.Importer: module-local paths are loaded
// from source inside the module tree, "unsafe" maps to types.Unsafe,
// and everything else is delegated to the standard importers.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if l.ModulePath != "" && (path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/")) {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
		dir := filepath.Join(l.ModuleRoot, filepath.FromSlash(rel))
		pkg, err := l.LoadDir(dir, path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	pkg, err := l.std.Import(path)
	if err == nil {
		return pkg, nil
	}
	// Toolchains without export data for the stdlib (or unusual
	// GOROOT layouts) fall back to type-checking from source.
	return l.stdSrc.Import(path)
}
