package lint

import (
	"go/ast"
	"testing"
)

// genKill builds a transfer function from per-node gen/kill sets
// keyed by the name assigned in an AssignStmt, mimicking how the real
// analyzers drive the solver.
func genKill(gen, kill map[string]int) TransferFunc {
	return func(b *Block, out BitSet) {
		for _, n := range b.Nodes {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				continue
			}
			id, ok := as.Lhs[0].(*ast.Ident)
			if !ok {
				continue
			}
			if bit, ok := kill[id.Name]; ok {
				out.Clear(bit)
			}
			if bit, ok := gen[id.Name]; ok {
				out.Set(bit)
			}
		}
	}
}

func TestForwardMayJoinsBranches(t *testing.T) {
	c := BuildCFG(parseFuncBody(t, `
		x := 0
		if x > 0 {
			a := 1
			_ = a
		} else {
			b := 2
			_ = b
		}
		d := 3
		_ = d
	`))
	// bit 0 gen'd in then branch, bit 1 in else branch.
	ins := c.ForwardMay(2, genKill(map[string]int{"a": 0, "b": 1}, nil))
	followB := nodeBlock(c, assignTo("d"))
	in := ins[followB.Index]
	if !in.Has(0) || !in.Has(1) {
		t.Fatalf("may-join at follow block lost a branch fact: %v", in)
	}
}

func TestForwardMayKill(t *testing.T) {
	c := BuildCFG(parseFuncBody(t, `
		a := 1
		_ = a
		k := 2
		_ = k
		d := 3
		_ = d
	`))
	ins := c.ForwardMay(1, genKill(map[string]int{"a": 0}, map[string]int{"k": 0}))
	followB := nodeBlock(c, assignTo("d"))
	// a gens bit 0, k kills it: straight-line, so the follow node is
	// in the same block; check the exit in-state instead.
	_ = followB
	exitIn := ins[c.Exit.Index]
	if exitIn.Has(0) {
		t.Fatalf("killed fact survived to exit")
	}
}

func TestForwardMayTerminatesOnCyclicCFG(t *testing.T) {
	c := BuildCFG(parseFuncBody(t, `
		for i := 0; i < 10; i++ {
			a := 1
			_ = a
			for j := 0; j < 10; j++ {
				b := 2
				_ = b
			}
		}
		d := 3
		_ = d
	`))
	// Gen in both loop bodies, never killed: the fixpoint must still
	// terminate (monotone lattice) and the facts must flow around the
	// back edges into the loop heads.
	ins := c.ForwardMay(2, genKill(map[string]int{"a": 0, "b": 1}, nil))
	bodyA := nodeBlock(c, assignTo("a"))
	if !ins[bodyA.Index].Has(0) {
		t.Fatalf("fact gen'd in loop body did not flow around the back edge")
	}
	followB := nodeBlock(c, assignTo("d"))
	if !ins[followB.Index].Has(0) || !ins[followB.Index].Has(1) {
		t.Fatalf("loop facts missing after the loop: %v", ins[followB.Index])
	}
}

func TestBackwardMayReachesUseBeforeDef(t *testing.T) {
	c := BuildCFG(parseFuncBody(t, `
		a := 1
		_ = a
		if a > 1 {
			b := 2
			_ = b
		}
		c := 3
		_ = c
	`))
	// Backward: gen bit 0 at the c assignment; it must be visible in
	// the out-state of every earlier block on a path to it.
	outs := c.BackwardMay(1, func(b *Block, out BitSet) {
		for _, n := range b.Nodes {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				continue
			}
			if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name == "c" {
				out.Set(0)
			}
		}
	})
	thenB := nodeBlock(c, assignTo("b"))
	if !outs[thenB.Index].Has(0) {
		t.Fatalf("backward fact did not propagate to earlier branch block")
	}
}

func TestBitSetOps(t *testing.T) {
	s := newBitSet(130)
	s.Set(0)
	s.Set(64)
	s.Set(129)
	if !s.Has(0) || !s.Has(64) || !s.Has(129) || s.Has(1) {
		t.Fatalf("bitset set/has broken across words")
	}
	s.Clear(64)
	if s.Has(64) {
		t.Fatalf("clear failed")
	}
	o := newBitSet(130)
	o.Set(7)
	if !o.UnionWith(s) {
		t.Fatalf("union should report change")
	}
	if o.UnionWith(s) {
		t.Fatalf("second union should be a no-op")
	}
	if !o.Has(0) || !o.Has(7) || !o.Has(129) {
		t.Fatalf("union lost bits")
	}
	if o.Empty() {
		t.Fatalf("non-empty set reported empty")
	}
	if !newBitSet(130).Empty() {
		t.Fatalf("fresh set not empty")
	}
}
