package lint

import (
	"go/ast"
	"go/types"
)

// Pooled machine-checks the PR 7 aliasing contract: a function
// annotated //coflow:pooled returns pointers into recycled storage
// owned by its receiver (bvn.Decomposer.Decompose/Update,
// online.Planner.Plan, online.State.Step). Such a value is a loan,
// not a gift:
//
//   - it may not escape the borrowing function — no stores to
//     package-level variables, struct fields, or container elements,
//     no channel sends, no capture by function literals, no handoff
//     to goroutines, and no returning it from a function that is not
//     itself //coflow:pooled (the propagation pattern: Planner.Plan
//     stores the loan in a receiver field and re-lends it);
//   - it may not be used after the next //coflow:pooled call on the
//     same receiver, which recycles the storage out from under it
//     (checked flow-sensitively over the CFG, so a reassignment in a
//     loop is fine but a genuine use-after-invalidation on any path
//     is not);
//   - a value laundered through a //coflow:clones function (a deep
//     copy) owns its storage and is exempt.
//
// The analysis is intraprocedural: passing a loan down as a plain
// call argument is allowed (the callee borrows it synchronously), and
// interior aliases extracted through non-reference-shaped reads
// (ints, floats) are never tracked.
var Pooled = &Analyzer{
	Name: "pooled",
	Doc:  "results of //coflow:pooled functions must not escape or outlive the next invalidating call",
	Run:  runPooled,
}

// pooledTrack is one local variable holding a pooled loan.
type pooledTrack struct {
	obj types.Object
	// key identifies the pool owner (the receiver expression text of
	// the originating call); a second pooled call with the same key
	// invalidates the loan.
	key string
	// name for diagnostics.
	name string
}

func runPooled(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			anns := FuncAnnotations(fd)
			var recvObj types.Object
			if fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
				recvObj = pass.Pkg.Info.Defs[fd.Recv.List[0].Names[0]]
			}
			// The declaration's body is one analysis universe; every
			// nested function literal is another (with no annotation
			// and no receiver of its own).
			first := true
			forEachFuncBody(fd.Body, func(body *ast.BlockStmt) {
				if first {
					first = false
					checkPooledIn(pass, body, anns["pooled"], recvObj)
					return
				}
				checkPooledIn(pass, body, false, nil)
			})
		}
	}
}

// checkPooledIn analyzes one function body: isPooled and recvObj
// describe the enclosing function's own annotation and receiver,
// which legalize the ownership-propagation pattern (storing the loan
// into a receiver field, returning it onward).
func checkPooledIn(pass *Pass, body *ast.BlockStmt, isPooled bool, recvObj types.Object) {
	tracks := collectPooledTracks(pass, body)
	if len(tracks) == 0 {
		// Even with no tracked locals, a pooled call result can be
		// stored directly (g = p.Decompose()); scan for that.
		checkPooledEscapes(pass, body, nil, isPooled, recvObj)
		return
	}
	checkPooledEscapes(pass, body, tracks, isPooled, recvObj)
	checkPooledStaleness(pass, body, tracks)
}

// pooledCallKey resolves call to a //coflow:pooled callee and returns
// the pool-owner key, or ok=false. The key is the receiver chain
// ("p.dec" in p.dec.Decompose(...)); calls whose receiver is not a
// plain ident/selector chain get key "" and never cross-invalidate.
func pooledCallKey(pass *Pass, call *ast.CallExpr) (string, bool) {
	fn := calleeFunc(pass, call)
	if fn == nil || !pass.Index.Annotated(fn, "pooled") {
		return "", false
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return exprString(sel.X), true
	}
	return "", true
}

// clonesCall reports whether call launders its arguments through a
// //coflow:clones deep copy.
func clonesCall(pass *Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(pass, call)
	return fn != nil && pass.Index.Annotated(fn, "clones")
}

// collectPooledTracks finds the local variables bound to pooled
// loans: direct results of pooled calls, plus aliases and
// reference-shaped interior reads of already-tracked variables.
// Iterates to a fixpoint so declaration order does not matter.
func collectPooledTracks(pass *Pass, body *ast.BlockStmt) map[types.Object]*pooledTrack {
	tracks := map[types.Object]*pooledTrack{}
	for {
		changed := false
		inspectShallow(body, func(n ast.Node) {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Rhs) != 1 {
				return
			}
			var key string
			if call, ok := as.Rhs[0].(*ast.CallExpr); ok {
				k, isPooled := pooledCallKey(pass, call)
				if !isPooled {
					return
				}
				key = k
			} else if root := rootIdent(as.Rhs[0]); root != nil {
				src := pass.ObjectOf(root)
				tr, ok := tracks[src]
				if !ok || !refShaped(pass.TypeOf(as.Rhs[0])) {
					return
				}
				key = tr.key
			} else {
				return
			}
			for _, l := range as.Lhs {
				id, ok := l.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := pass.ObjectOf(id)
				if obj == nil || isErrType(obj.Type()) || tracks[obj] != nil {
					continue
				}
				if !refShaped(obj.Type()) && !structWithRefs(obj.Type()) {
					continue
				}
				tracks[obj] = &pooledTrack{obj: obj, key: key, name: id.Name}
				changed = true
			}
		})
		if !changed {
			return tracks
		}
	}
}

// refShaped reports whether t can alias pool storage: pointers,
// slices, maps, channels, and interfaces.
func refShaped(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Interface:
		return true
	}
	return false
}

// structWithRefs reports whether t is a struct value carrying at
// least one reference-shaped field (online.StepResult: the struct is
// copied but its slices still alias the pool).
func structWithRefs(t types.Type) bool {
	if t == nil {
		return false
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if refShaped(st.Field(i).Type()) {
			return true
		}
	}
	return false
}

// pooledValue returns the tracked loan (or direct pooled call)
// embedded in e when storing e would leak pool storage, else nil.
// Results of //coflow:clones calls own their storage; results of
// other calls are assumed fresh unless a pooled argument flows in and
// the result is reference-shaped.
func pooledValue(pass *Pass, e ast.Expr, tracks map[types.Object]*pooledTrack) ast.Expr {
	switch x := e.(type) {
	case *ast.Ident:
		if obj := pass.ObjectOf(x); obj != nil && tracks[obj] != nil {
			return x
		}
		return nil
	case *ast.ParenExpr:
		return pooledValue(pass, x.X, tracks)
	case *ast.UnaryExpr:
		return pooledValue(pass, x.X, tracks)
	case *ast.StarExpr:
		return pooledValue(pass, x.X, tracks)
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.SliceExpr:
		if !refShaped(pass.TypeOf(e)) {
			return nil
		}
		if root := rootIdent(e.(ast.Expr)); root != nil {
			if obj := pass.ObjectOf(root); obj != nil && tracks[obj] != nil {
				return root
			}
		}
		return nil
	case *ast.CompositeLit:
		for _, elt := range x.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			if v := pooledValue(pass, elt, tracks); v != nil {
				return v
			}
		}
		return nil
	case *ast.CallExpr:
		if clonesCall(pass, x) {
			return nil
		}
		if _, ok := pooledCallKey(pass, x); ok {
			return x
		}
		// A plain call may retain a pooled argument in its
		// reference-shaped result; append is exempt (the idiomatic
		// copy is append([]T(nil), loan...)).
		if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
			if b, ok := pass.ObjectOf(id).(*types.Builtin); ok && b.Name() == "append" {
				return nil
			}
		}
		if !refShaped(pass.TypeOf(x)) {
			return nil
		}
		for _, arg := range x.Args {
			if v := pooledValue(pass, arg, tracks); v != nil {
				return v
			}
		}
		return nil
	}
	return nil
}

func pooledValueName(pass *Pass, e ast.Expr) string {
	if id, ok := e.(*ast.Ident); ok {
		return id.Name
	}
	return "the pooled result"
}

// checkPooledEscapes walks the body (shallow) and reports every store,
// send, return, goroutine handoff, or closure capture that would let
// a pooled loan outlive its frame.
func checkPooledEscapes(pass *Pass, body *ast.BlockStmt, tracks map[types.Object]*pooledTrack, isPooled bool, recvObj types.Object) {
	recvRooted := func(e ast.Expr) bool {
		root := rootIdent(e)
		return root != nil && recvObj != nil && pass.ObjectOf(root) == recvObj
	}
	inspectShallow(body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, l := range n.Lhs {
				var rhs ast.Expr
				switch {
				case len(n.Rhs) == len(n.Lhs):
					rhs = n.Rhs[i]
				case len(n.Rhs) == 1:
					rhs = n.Rhs[0]
				default:
					continue
				}
				v := pooledValue(pass, rhs, tracks)
				if v == nil {
					continue
				}
				name := pooledValueName(pass, v)
				switch lhs := l.(type) {
				case *ast.Ident:
					if lhs.Name == "_" {
						continue
					}
					if obj := pass.ObjectOf(lhs); obj != nil {
						if _, isPkgLevel := obj.(*types.Var); isPkgLevel && obj.Parent() == pass.Pkg.Types.Scope() {
							pass.Reportf(n.Pos(), "pooled value %s stored to package-level variable %s: pooled results alias recycled storage (copy via a //coflow:clones function)", name, lhs.Name)
						}
					}
				default:
					// Field, element, or through-pointer store. The
					// ownership-propagation pattern — a //coflow:pooled
					// function parking the loan in its own receiver —
					// is the one legal shape.
					if isPooled && recvRooted(l) {
						continue
					}
					pass.Reportf(n.Pos(), "pooled value %s stored to %s: pooled results alias recycled storage (copy via a //coflow:clones function)", name, describeExpr(l))
				}
			}
		case *ast.SendStmt:
			if v := pooledValue(pass, n.Value, tracks); v != nil {
				pass.Reportf(n.Pos(), "pooled value %s sent on a channel: pooled results alias recycled storage (copy via a //coflow:clones function)", pooledValueName(pass, v))
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if v := pooledValue(pass, r, tracks); v != nil && !isPooled {
					pass.Reportf(n.Pos(), "pooled value %s returned from a function not annotated //coflow:pooled: annotate the function or return a //coflow:clones copy", pooledValueName(pass, v))
				}
			}
		case *ast.GoStmt:
			for _, arg := range n.Call.Args {
				if v := pooledValue(pass, arg, tracks); v != nil {
					pass.Reportf(n.Pos(), "pooled value %s passed to a goroutine: the loan is invalidated while the goroutine still holds it", pooledValueName(pass, v))
				}
			}
		}
	})
	// Closure captures: a function literal (at any depth, attributed
	// to this universe only for its direct children) referencing a
	// tracked loan keeps the alias alive past this frame's control.
	inspectChildLits(body, func(lit *ast.FuncLit) {
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			id, ok := m.(*ast.Ident)
			if !ok {
				return true
			}
			if obj := pass.ObjectOf(id); obj != nil && tracks[obj] != nil {
				pass.Reportf(id.Pos(), "pooled value %s captured by a function literal: the closure may outlive the loan (copy via a //coflow:clones function)", id.Name)
			}
			return true
		})
	})
}

// inspectChildLits calls fn for each function literal whose nearest
// enclosing function body is root.
func inspectChildLits(root *ast.BlockStmt, fn func(*ast.FuncLit)) {
	ast.Inspect(root, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			fn(lit)
			return false
		}
		return true
	})
}

// checkPooledStaleness runs the CFG dataflow: two bits per track,
// "active" (holds a live loan) and "stale" (a later pooled call on
// the same owner recycled the storage). Any use of a stale loan is an
// error.
func checkPooledStaleness(pass *Pass, body *ast.BlockStmt, tracks map[types.Object]*pooledTrack) {
	list := make([]*pooledTrack, 0, len(tracks))
	slot := map[types.Object]int{}
	for obj, tr := range tracks {
		slot[obj] = len(list)
		list = append(list, tr)
	}
	activeBit := func(i int) int { return 2 * i }
	staleBit := func(i int) int { return 2*i + 1 }

	step := func(n ast.Node, state BitSet, report bool) {
		// 1. Uses of stale loans (checked before this node's own
		// invalidations take effect).
		if report {
			lhsTargets := map[*ast.Ident]bool{}
			if as, ok := n.(*ast.AssignStmt); ok {
				for _, l := range as.Lhs {
					if id, ok := l.(*ast.Ident); ok {
						lhsTargets[id] = true
					}
				}
			}
			inspectShallow(n, func(m ast.Node) {
				id, ok := m.(*ast.Ident)
				if !ok || lhsTargets[id] {
					return
				}
				obj := pass.ObjectOf(id)
				if obj == nil {
					return
				}
				if i, ok := slot[obj]; ok && state.Has(staleBit(i)) {
					tr := list[i]
					pass.Reportf(id.Pos(), "pooled value %s used after a later call on %q invalidated it: the pool recycled its storage", tr.name, tr.key)
				}
			})
		}
		// 2. Pooled calls invalidate every active loan from the same
		// owner.
		inspectShallow(n, func(m ast.Node) {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return
			}
			key, ok := pooledCallKey(pass, call)
			if !ok || key == "" {
				return
			}
			for i, tr := range list {
				if tr.key == key && state.Has(activeBit(i)) {
					state.Set(staleBit(i))
				}
			}
		})
		// 3. Assignments rebind: a fresh pooled result re-arms the
		// loan; anything else releases it.
		if as, ok := n.(*ast.AssignStmt); ok {
			fromPooled := false
			if len(as.Rhs) == 1 {
				if call, ok := as.Rhs[0].(*ast.CallExpr); ok {
					_, fromPooled = pooledCallKey(pass, call)
				}
				if root := rootIdent(as.Rhs[0]); !fromPooled && root != nil {
					if obj := pass.ObjectOf(root); obj != nil {
						_, fromPooled = slot[obj]
					}
				}
			}
			for _, l := range as.Lhs {
				id, ok := l.(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.ObjectOf(id)
				if obj == nil {
					continue
				}
				if i, ok := slot[obj]; ok {
					state.Clear(staleBit(i))
					if fromPooled {
						state.Set(activeBit(i))
					} else {
						state.Clear(activeBit(i))
					}
				}
			}
		}
	}

	cfg := BuildCFG(body)
	ins := cfg.ForwardMay(2*len(list), func(b *Block, out BitSet) {
		for _, n := range b.Nodes {
			step(n, out, false)
		}
	})
	for _, b := range cfg.Blocks {
		if !cfg.Reachable(b) {
			continue
		}
		state := ins[b.Index].Clone()
		for _, n := range b.Nodes {
			step(n, state, true)
		}
	}
}
