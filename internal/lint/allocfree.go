package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AllocFree rejects allocation-causing constructs inside functions
// annotated //coflow:allocfree. It is the compile-time sibling of the
// runtime gates (online.TestStepDoesNotAllocate, make bench's
// allocs/op comparison): the runtime gates tell you THAT the hot path
// allocated, this analyzer tells you WHERE, before the code runs.
//
// Flagged constructs:
//
//   - slice and map composite literals, and &T{...} (escaping
//     composite)
//   - make, new
//   - append whose destination is not caller-owned scratch (rooted at
//     the receiver or a parameter)
//   - map assignment (may trigger growth)
//   - function literals (closure allocation) and go statements
//   - any call into package fmt
//   - string concatenation and allocating conversions
//     (string<->[]byte/[]rune, integer->string, concrete->interface)
//   - interface boxing at call sites: passing a non-pointer-shaped
//     concrete value where an interface parameter is expected
//   - calls to module-local functions that are not themselves
//     annotated //coflow:allocfree (the contract is transitive; the
//     standard library, except fmt, is trusted)
//
// The analysis is deliberately conservative: a construct the escape
// analyzer would stack-allocate still needs an explicit
// "//lint:ignore allocfree <reason>" so the exemption is visible in
// review. cmd/escapecheck closes the remaining gap against the real
// escape analysis.
var AllocFree = &Analyzer{
	Name: "allocfree",
	Doc:  "reject allocation-causing constructs in //coflow:allocfree functions",
	Run:  runAllocFree,
}

func runAllocFree(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !FuncAnnotations(fd)["allocfree"] {
				continue
			}
			checkAllocFree(pass, fd)
		}
	}
}

// checkAllocFree walks one annotated function body: every node of
// every reachable basic block (constructs in dead code cannot
// allocate at runtime; `go vet` flags the dead code itself). Function
// literals are visited but not entered — the literal is the finding.
func checkAllocFree(pass *Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	owned := ownedObjects(pass, fd)
	visit := func(n ast.Node) {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "%s is //coflow:allocfree but contains a function literal (closures allocate)", name)
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "%s is //coflow:allocfree but starts a goroutine (go statements allocate)", name)
		case *ast.CompositeLit:
			switch pass.TypeOf(n).Underlying().(type) {
			case *types.Slice:
				pass.Reportf(n.Pos(), "%s is //coflow:allocfree but contains a slice literal", name)
			case *types.Map:
				pass.Reportf(n.Pos(), "%s is //coflow:allocfree but contains a map literal", name)
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(), "%s is //coflow:allocfree but takes the address of a composite literal", name)
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(pass.TypeOf(n)) {
				pass.Reportf(n.Pos(), "%s is //coflow:allocfree but concatenates strings", name)
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isString(pass.TypeOf(n.Lhs[0])) {
				pass.Reportf(n.Pos(), "%s is //coflow:allocfree but concatenates strings", name)
			}
			for _, lhs := range n.Lhs {
				if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
					if _, isMap := pass.TypeOf(idx.X).Underlying().(*types.Map); isMap {
						pass.Reportf(lhs.Pos(), "%s is //coflow:allocfree but assigns into a map (growth allocates)", name)
					}
				}
			}
		case *ast.CallExpr:
			checkAllocFreeCall(pass, fd, n, owned)
		}
	}
	cfg := BuildCFG(fd.Body)
	for _, b := range cfg.Blocks {
		if !cfg.Reachable(b) {
			continue
		}
		for _, n := range b.Nodes {
			inspectShallow(n, visit)
		}
	}
}

// ownedObjects collects the receiver and parameter objects of fd:
// scratch rooted at these is caller-owned and pre-sized, so append
// into it is amortized allocation-free.
func ownedObjects(pass *Pass, fd *ast.FuncDecl) map[types.Object]bool {
	owned := map[types.Object]bool{}
	add := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, id := range field.Names {
				if obj := pass.Pkg.Info.Defs[id]; obj != nil {
					owned[obj] = true
				}
			}
		}
	}
	add(fd.Recv)
	add(fd.Type.Params)
	return owned
}

// checkAllocFreeCall vets one call expression inside an annotated
// function.
func checkAllocFreeCall(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr, owned map[types.Object]bool) {
	name := fd.Name.Name
	info := pass.Pkg.Info

	// Conversions.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		checkConversion(pass, fd, call)
		return
	}

	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pass.ObjectOf(id).(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				pass.Reportf(call.Pos(), "%s is //coflow:allocfree but calls make", name)
			case "new":
				pass.Reportf(call.Pos(), "%s is //coflow:allocfree but calls new", name)
			case "append":
				checkAppendDst(pass, fd, call, owned)
			}
			return
		}
	}

	fn := calleeFunc(pass, call)
	if fn == nil {
		// Call through a function value: the value's creation is what
		// allocates, and that is flagged where it happens.
		return
	}
	if pkg := fn.Pkg(); pkg != nil {
		if pkg.Path() == "fmt" {
			pass.Reportf(call.Pos(), "%s is //coflow:allocfree but calls fmt.%s (fmt allocates)", name, fn.Name())
			return
		}
		if moduleLocal(pass.Pkg, pkg.Path()) && !pass.Index.Annotated(fn, "allocfree") {
			pass.Reportf(call.Pos(), "%s is //coflow:allocfree but calls %s which is not annotated //coflow:allocfree", name, fn.FullName())
			return
		}
	}
	checkBoxing(pass, fd, call)
}

// moduleLocal reports whether path names a package of the same
// module as pkg (or the same package, for standalone loads).
func moduleLocal(pkg *Package, path string) bool {
	if pkg.Module == "" {
		return path == pkg.Path
	}
	return path == pkg.Module || len(path) > len(pkg.Module) && path[:len(pkg.Module)+1] == pkg.Module+"/"
}

// checkConversion flags conversions that copy memory: string <->
// []byte/[]rune, integer -> string, and boxing into an interface
// type.
func checkConversion(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr) {
	if len(call.Args) != 1 {
		return
	}
	name := fd.Name.Name
	dst := pass.TypeOf(call)
	src := pass.TypeOf(call.Args[0])
	if dst == nil || src == nil {
		return
	}
	du, su := dst.Underlying(), src.Underlying()
	switch {
	case isString(dst) && !isString(src):
		pass.Reportf(call.Pos(), "%s is //coflow:allocfree but converts to string (allocates)", name)
	case isByteOrRuneSlice(du) && isString(src):
		pass.Reportf(call.Pos(), "%s is //coflow:allocfree but converts a string to a byte/rune slice (allocates)", name)
	case types.IsInterface(du) && !types.IsInterface(su) && !pointerShaped(su):
		pass.Reportf(call.Pos(), "%s is //coflow:allocfree but boxes a %s into interface %s (allocates)", name, src, dst)
	}
}

// checkAppendDst allows append only into caller-owned scratch: the
// destination must be rooted at the receiver or a parameter of the
// annotated function (e.g. s.served = append(s.served, ...)).
func checkAppendDst(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr, owned map[types.Object]bool) {
	if len(call.Args) == 0 {
		return
	}
	dst := call.Args[0]
	if root := rootIdent(dst); root != nil {
		if obj := pass.ObjectOf(root); obj != nil && owned[obj] {
			return
		}
	}
	pass.Reportf(call.Pos(), "%s is //coflow:allocfree but appends to %s, which is not receiver- or parameter-owned scratch",
		fd.Name.Name, describeExpr(dst))
}

// checkBoxing flags arguments boxed into interface parameters:
// passing a non-pointer-shaped concrete value (int, string, struct)
// where an interface is expected allocates the interface data word.
func checkBoxing(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr) {
	sig, ok := pass.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	name := fd.Name.Name
	params := sig.Params()
	for i, arg := range call.Args {
		if call.Ellipsis.IsValid() && i == len(call.Args)-1 {
			break // x... spreads an existing slice, no boxing here
		}
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			st, ok := params.At(params.Len() - 1).Type().(*types.Slice)
			if !ok {
				return
			}
			pt = st.Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			return
		}
		if _, isTP := pt.(*types.TypeParam); isTP {
			continue // generic instantiation, not interface boxing
		}
		if !types.IsInterface(pt) {
			continue
		}
		at := pass.TypeOf(arg)
		if at == nil || types.IsInterface(at.Underlying()) || pointerShaped(at.Underlying()) {
			continue
		}
		if tv, ok := pass.Pkg.Info.Types[arg]; ok && (tv.IsNil() || tv.Value != nil && isString(at)) {
			// Untyped nil never boxes; constant strings may still
			// allocate, but flagging literals in cold diagnostics is
			// all noise — the fmt rule already covers the hot cases.
			continue
		}
		pass.Reportf(arg.Pos(), "%s is //coflow:allocfree but boxes %s (type %s) into interface parameter %d of %s",
			name, describeExpr(arg), at, i, describeExpr(call.Fun))
	}
}

// pointerShaped reports whether values of underlying type u fit the
// interface data word without an allocation.
func pointerShaped(u types.Type) bool {
	switch u.(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.(*types.Basic).Kind() == types.UnsafePointer
	}
	return false
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(u types.Type) bool {
	s, ok := u.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// describeExpr renders a short name for an expression in a message.
func describeExpr(e ast.Expr) string {
	if s := exprString(e); s != "" {
		return s
	}
	if root := rootIdent(e); root != nil {
		return root.Name + "..."
	}
	return "expression"
}
