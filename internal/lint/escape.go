package lint

import (
	"bufio"
	"fmt"
	"go/ast"
	"io"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// This file is the escape-analysis half of the allocfree contract.
// The allocfree analyzer rejects allocation-causing constructs it can
// see in the syntax; the compiler's escape analysis is the ground
// truth for the rest (a value the analyzer allowed can still escape
// through a path only the compiler proves). cmd/escapecheck runs
// `go build -gcflags=<module>/...=-m=1`, keeps the "escapes to heap"
// diagnostics that land inside //coflow:allocfree functions, and
// compares them against a committed baseline — the gate is
// compare-only, so pre-existing escapes are grandfathered and only a
// NEW escape in an annotated function fails the build.
//
// Baseline entries are keyed (file, function, message), NOT line
// numbers, so edits elsewhere in a file do not churn the baseline.

// LineRange is the span of one annotated function in a file.
type LineRange struct {
	File  string // module-root-relative path, forward slashes
	Func  string // function or method name (methods as "(T).Name")
	Start int    // first line of the declaration (doc comment excluded)
	End   int    // last line of the body
}

// AllocFreeRanges collects the spans of every //coflow:allocfree
// function in the packages, sorted by (File, Start). moduleRoot
// makes the file paths relative.
func AllocFreeRanges(pkgs []*Package, moduleRoot string) []LineRange {
	var out []LineRange
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || !FuncAnnotations(fd)["allocfree"] {
					continue
				}
				start := pkg.Fset.Position(fd.Type.Pos())
				end := pkg.Fset.Position(fd.Body.End())
				file := start.Filename
				if rel, err := filepath.Rel(moduleRoot, file); err == nil && !strings.HasPrefix(rel, "..") {
					file = filepath.ToSlash(rel)
				}
				out = append(out, LineRange{
					File:  file,
					Func:  funcDisplayName(fd),
					Start: start.Line,
					End:   end.Line,
				})
			}
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].File != out[b].File {
			return out[a].File < out[b].File
		}
		return out[a].Start < out[b].Start
	})
	return out
}

// funcDisplayName renders fd as "Name" or "(T).Name" / "(*T).Name".
func funcDisplayName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	recv := fd.Recv.List[0].Type
	var b strings.Builder
	b.WriteByte('(')
	writeRecvType(&b, recv)
	b.WriteString(").")
	b.WriteString(fd.Name.Name)
	return b.String()
}

func writeRecvType(b *strings.Builder, e ast.Expr) {
	switch t := e.(type) {
	case *ast.StarExpr:
		b.WriteByte('*')
		writeRecvType(b, t.X)
	case *ast.Ident:
		b.WriteString(t.Name)
	case *ast.IndexExpr: // generic receiver T[P]
		writeRecvType(b, t.X)
	case *ast.IndexListExpr:
		writeRecvType(b, t.X)
	default:
		b.WriteString("?")
	}
}

// EscapeDiag is one compiler escape diagnostic.
type EscapeDiag struct {
	File string // as printed by the compiler (module-root-relative when run there)
	Line int
	Msg  string // e.g. "&Trace{...} escapes to heap"
}

// escapeRe matches the -m=1 diagnostics that mean a heap allocation:
// "<x> escapes to heap" and "moved to heap: <x>".
var escapeRe = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.*escapes to heap.*|moved to heap.*)$`)

// ParseEscapes scans `go build -gcflags=-m=1` output (one diagnostic
// per line, "# pkg" headers and unrelated inline/bounds lines
// ignored) for heap-escape diagnostics.
func ParseEscapes(r io.Reader) ([]EscapeDiag, error) {
	var out []EscapeDiag
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	for sc.Scan() {
		m := escapeRe.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		line, err := strconv.Atoi(m[2])
		if err != nil {
			return nil, fmt.Errorf("lint: bad escape line number in %q", sc.Text())
		}
		out = append(out, EscapeDiag{File: filepath.ToSlash(m[1]), Line: line, Msg: m[4]})
	}
	return out, sc.Err()
}

// EscapeKeys keeps the diagnostics landing inside an allocfree range
// and normalizes each to its baseline key "file<TAB>func<TAB>msg".
// Line numbers are deliberately dropped so unrelated edits do not
// churn the baseline; duplicates (e.g. the same message for two
// statements) collapse. Keys come back sorted.
func EscapeKeys(diags []EscapeDiag, ranges []LineRange) []string {
	set := map[string]bool{}
	for _, d := range diags {
		for _, r := range ranges {
			if d.File == r.File && d.Line >= r.Start && d.Line <= r.End {
				set[d.File+"\t"+r.Func+"\t"+d.Msg] = true
				break
			}
		}
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// DiffEscapes returns the keys present in current but not in
// baseline (the regressions) and the keys in baseline no longer
// present (fixed escapes, reported so the baseline can be re-tightened).
func DiffEscapes(current, baseline []string) (added, removed []string) {
	base := map[string]bool{}
	for _, k := range baseline {
		base[k] = true
	}
	cur := map[string]bool{}
	for _, k := range current {
		cur[k] = true
		if !base[k] {
			added = append(added, k)
		}
	}
	for _, k := range baseline {
		if !cur[k] {
			removed = append(removed, k)
		}
	}
	return added, removed
}

// ReadBaseline parses a baseline file: one key per line, "#" comments
// and blank lines ignored.
func ReadBaseline(r io.Reader) ([]string, error) {
	var out []string
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		out = append(out, sc.Text())
	}
	return out, sc.Err()
}
