package lint

// Worklist dataflow over a CFG. The lattice is a fixed-width bit
// vector with union as join ("may" analyses); transfer functions are
// supplied by the analyzer and must be monotone (gen/kill style), so
// the fixpoint iteration terminates.

// BitSet is a fixed-capacity bit vector.
type BitSet []uint64

func newBitSet(nbits int) BitSet { return make(BitSet, (nbits+63)/64) }

func (s BitSet) Has(i int) bool { return s[i/64]&(1<<uint(i%64)) != 0 }
func (s BitSet) Set(i int)      { s[i/64] |= 1 << uint(i%64) }
func (s BitSet) Clear(i int)    { s[i/64] &^= 1 << uint(i%64) }

// UnionWith ors o into s and reports whether s changed.
func (s BitSet) UnionWith(o BitSet) bool {
	changed := false
	for i, w := range o {
		if s[i]|w != s[i] {
			s[i] |= w
			changed = true
		}
	}
	return changed
}

func (s BitSet) CopyFrom(o BitSet) { copy(s, o) }

func (s BitSet) Clone() BitSet {
	c := make(BitSet, len(s))
	copy(c, s)
	return c
}

func (s BitSet) Empty() bool {
	for _, w := range s {
		if w != 0 {
			return false
		}
	}
	return true
}

// TransferFunc rewrites out in place given a block; out is
// pre-initialized to the block's in-state (forward) or out-state
// (backward) before the call.
type TransferFunc func(b *Block, out BitSet)

// ForwardMay solves a forward may-analysis to fixpoint and returns
// the in-state of every block, indexed by Block.Index. The entry
// block's in-state is empty; join is union. Only reachable blocks are
// iterated, so unreachable code keeps an empty state.
func (c *CFG) ForwardMay(nbits int, transfer TransferFunc) []BitSet {
	ins := make([]BitSet, len(c.Blocks))
	outs := make([]BitSet, len(c.Blocks))
	for i := range c.Blocks {
		ins[i] = newBitSet(nbits)
		outs[i] = newBitSet(nbits)
	}
	work := make([]*Block, 0, len(c.Blocks))
	inWork := make([]bool, len(c.Blocks))
	for _, b := range c.Blocks {
		if c.Reachable(b) {
			work = append(work, b)
			inWork[b.Index] = true
		}
	}
	tmp := newBitSet(nbits)
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		inWork[b.Index] = false
		in := ins[b.Index]
		for i := range in {
			in[i] = 0
		}
		for _, p := range b.Preds {
			if c.Reachable(p) {
				in.UnionWith(outs[p.Index])
			}
		}
		tmp.CopyFrom(in)
		transfer(b, tmp)
		if outs[b.Index].UnionWith(tmp) {
			for _, s := range b.Succs {
				if !inWork[s.Index] && c.Reachable(s) {
					work = append(work, s)
					inWork[s.Index] = true
				}
			}
		}
	}
	return ins
}

// BackwardMay solves a backward may-analysis to fixpoint and returns
// the out-state of every block (the union of successor in-states,
// post-transfer), indexed by Block.Index. The transfer function sees
// the block's out-state and rewrites it into the in-state.
func (c *CFG) BackwardMay(nbits int, transfer TransferFunc) []BitSet {
	ins := make([]BitSet, len(c.Blocks))
	outs := make([]BitSet, len(c.Blocks))
	for i := range c.Blocks {
		ins[i] = newBitSet(nbits)
		outs[i] = newBitSet(nbits)
	}
	work := make([]*Block, 0, len(c.Blocks))
	inWork := make([]bool, len(c.Blocks))
	for _, b := range c.Blocks {
		if c.Reachable(b) {
			work = append(work, b)
			inWork[b.Index] = true
		}
	}
	tmp := newBitSet(nbits)
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		inWork[b.Index] = false
		out := outs[b.Index]
		for i := range out {
			out[i] = 0
		}
		for _, s := range b.Succs {
			out.UnionWith(ins[s.Index])
		}
		tmp.CopyFrom(out)
		transfer(b, tmp)
		if ins[b.Index].UnionWith(tmp) {
			for _, p := range b.Preds {
				if !inWork[p.Index] && c.Reachable(p) {
					work = append(work, p)
					inWork[p.Index] = true
				}
			}
		}
	}
	return outs
}
