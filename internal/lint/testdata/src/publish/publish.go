// Package publish exercises the publish analyzer: a value handed to
// atomic.Pointer.Store/CompareAndSwap (or a //coflow:published sink)
// is visible to concurrent readers and must be frozen.
package publish

import "sync/atomic"

type Snap struct {
	n    int
	vals []int
}

type Holder struct{ cur atomic.Pointer[Snap] }

// Install hands the snapshot to concurrent readers.
//
//coflow:published
func Install(s *Snap) {}

// storeWrite mutates the snapshot after publishing it.
func storeWrite(h *Holder) {
	s := &Snap{}
	h.cur.Store(s)
	s.n = 7 // want "after s was published"
}

// casWrite publishes via CompareAndSwap, then writes through an
// element of the published value.
func casWrite(h *Holder, old *Snap) {
	next := &Snap{vals: make([]int, 4)}
	if h.cur.CompareAndSwap(old, next) {
		next.vals[0] = 1 // want "after next was published"
	}
}

// aliasWrite mutates the published snapshot through a second name:
// the alias class is published as a whole.
func aliasWrite(h *Holder) {
	s := &Snap{}
	alias := s
	h.cur.Store(s)
	alias.n++ // want "after alias was published"
}

// installWrite publishes through the annotated sink instead of an
// atomic pointer.
func installWrite() {
	s := &Snap{}
	Install(s)
	s.n = 7 // want "after s was published"
}

// buildThenStore does all its writing before publication: clean.
func buildThenStore(h *Holder) {
	s := &Snap{}
	s.n = 5
	s.vals = append(s.vals, 1)
	h.cur.Store(s)
}

// rebindAfterStore rebinds the name to a fresh snapshot after
// publishing: writes through the new value are clean.
func rebindAfterStore(h *Holder) {
	s := &Snap{}
	h.cur.Store(s)
	s = &Snap{}
	s.n = 3
	h.cur.Store(s)
}
