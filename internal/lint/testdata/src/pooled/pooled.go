// Package pooled exercises the pooled analyzer: results of
// //coflow:pooled functions are loans into recycled storage — they
// may not escape the borrowing frame and may not outlive the next
// invalidating call on the same owner.
package pooled

type Item struct{ vals []int }

// Pool hands out pointers into storage it recycles on every call.
type Pool struct{ scratch Item }

// Get returns the recycled scratch item.
//
//coflow:pooled
func (p *Pool) Get() *Item {
	p.scratch.vals = p.scratch.vals[:0]
	return &p.scratch
}

// Clone deep-copies an item: the result owns its storage.
//
//coflow:clones
func Clone(it *Item) *Item {
	cp := Item{vals: append([]int(nil), it.vals...)}
	return &cp
}

func consume(it *Item) {}
func sink(it *Item)    {}

var leaked *Item

// leakGlobal parks the loan in a package-level variable.
func leakGlobal(p *Pool) {
	it := p.Get()
	leaked = it // want "stored to package-level variable leaked"
}

type Box struct{ it *Item }

// leakField stores the loan into a struct owned by someone else.
func leakField(p *Pool, b *Box) {
	b.it = p.Get() // want "stored to b.it"
}

// leakChan sends the loan to a consumer that may read it after the
// pool recycles the storage.
func leakChan(p *Pool, ch chan *Item) {
	it := p.Get()
	ch <- it // want "sent on a channel"
}

// leakReturn re-lends the loan without carrying the annotation.
func leakReturn(p *Pool) *Item {
	it := p.Get()
	return it // want "returned from a function not annotated"
}

// leakGo hands the loan to a goroutine that outlives the frame.
func leakGo(p *Pool) {
	it := p.Get()
	go consume(it) // want "passed to a goroutine"
}

// leakCapture closes over the loan.
func leakCapture(p *Pool) func() int {
	it := p.Get()
	return func() int { return len(it.vals) } // want "captured by a function literal"
}

// useAfterInvalidate reads the first loan after a second call on the
// same pool recycled it.
func useAfterInvalidate(p *Pool) int {
	a := p.Get()
	b := p.Get()
	n := a.vals[:] // want "used after a later call"
	return len(n) + len(b.vals)
}

// keepClone launders the loan through a deep copy: clean.
func keepClone(p *Pool) *Item {
	it := p.Get()
	return Clone(it)
}

// snapshot copies the interior slice with the append idiom: clean.
func snapshot(p *Pool) []int {
	it := p.Get()
	return append([]int(nil), it.vals...)
}

// rebind re-arms the loan before each use: clean.
func rebind(p *Pool) {
	a := p.Get()
	sink(a)
	a = p.Get()
	sink(a)
}

// borrow passes the loan down a synchronous call: clean.
func borrow(p *Pool) {
	it := p.Get()
	consume(it)
	sink(it)
}

// Cache demonstrates the ownership-propagation pattern: a
// //coflow:pooled method may park the loan in its own receiver and
// return it onward. Clean.
type Cache struct {
	p    *Pool
	last *Item
}

// Refresh re-lends the pool's loan under its own annotation.
//
//coflow:pooled
func (c *Cache) Refresh() *Item {
	it := c.p.Get()
	c.last = it
	return it
}
