// Package obs exercises the obsguard analyzer. The nil-receiver rule
// only applies in packages named "obs", so the fixture package takes
// that name; the span rule triggers on any Start method returning a
// type named Span.
package obs

import (
	"errors"
	"time"
)

var errNope = errors.New("nope")

// Counter mimics a metric type: exported pointer-receiver methods
// must begin with a nil-receiver guard.
type Counter struct{ v int64 }

// Good begins with the guard.
func (c *Counter) Good() {
	if c == nil {
		return
	}
	c.v++
}

// Inc is a tail delegation; the callee carries the guard.
func (c *Counter) Inc() { c.Add(1) }

// Add begins with the guard.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v += n
}

// Bad touches the receiver with no guard.
func (c *Counter) Bad() { // want "must begin with a nil-receiver guard"
	c.v++
}

// unexported methods are internal plumbing and exempt.
func (c *Counter) unexported() { c.v++ }

// Value has a value receiver: the zero value is its own guard.
func (c Counter) Value() int64 { return c.v }

// Histogram provides Start so spans exist in this package.
type Histogram struct{ sum float64 }

// Observe begins with the guard.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.sum += v
}

// Span is the stage timer; End settles it.
type Span struct {
	h     *Histogram
	start time.Time
}

// Start begins with the guard and hands out a span.
func (h *Histogram) Start() Span {
	if h == nil {
		return Span{}
	}
	return Span{h: h, start: time.Now()}
}

// End has a value receiver (pointer-receiver rule does not apply).
func (s Span) End() {
	if s.h == nil {
		return
	}
	s.h.Observe(time.Since(s.start).Seconds())
}

// allEnds settles the span on both return paths: clean.
func allEnds(h *Histogram, fail bool) error {
	sp := h.Start()
	if fail {
		sp.End()
		return errNope
	}
	sp.End()
	return nil
}

// leaks forgets the span on the early-error path.
func leaks(h *Histogram, fail bool) error {
	sp := h.Start() // want "does not reach"
	if fail {
		return errNope
	}
	sp.End()
	return nil
}

// deferred covers every path with one defer: clean.
func deferred(h *Histogram, fail bool) error {
	sp := h.Start()
	defer sp.End()
	if fail {
		return errNope
	}
	return nil
}

// passesOn hands the span to another function, which is assumed to
// manage it: clean.
func passesOn(h *Histogram) {
	sp := h.Start()
	keep(sp)
}

func keep(Span) {}
