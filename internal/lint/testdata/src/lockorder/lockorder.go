// Package lockorder exercises the lockorder analyzer: the
// module-wide mutex acquisition graph must be acyclic, and no path
// may upgrade an RLock to a Lock on the same class.
package lockorder

import "sync"

type ab struct {
	a sync.Mutex
	b sync.Mutex
}

// lockAB nests b inside a (the deferred unlock holds a to exit).
func (x *ab) lockAB() {
	x.a.Lock()
	defer x.a.Unlock()
	x.b.Lock() // want "lock-order cycle: acquiring lockorder.b while holding lockorder.a"
	x.b.Unlock()
}

// lockBA nests a inside b: the opposite order, so both edges sit on
// a cycle.
func (x *ab) lockBA() {
	x.b.Lock()
	defer x.b.Unlock()
	x.a.Lock() // want "lock-order cycle: acquiring lockorder.a while holding lockorder.b"
	x.a.Unlock()
}

// lockABAgain repeats the a-then-b order: the edge already exists at
// an earlier position, so the cycle is reported there, not here.
func (x *ab) lockABAgain() {
	x.a.Lock()
	x.b.Lock()
	x.b.Unlock()
	x.a.Unlock()
}

// sequential holds nothing while acquiring: no edges form.
func (x *ab) sequential() {
	x.a.Lock()
	x.a.Unlock()
	x.b.Lock()
	x.b.Unlock()
}

type rw struct {
	mu sync.RWMutex
}

// upgrade takes the write lock while still holding the read lock.
func (r *rw) upgrade() {
	r.mu.RLock()
	r.mu.Lock() // want "lock upgrade: lockorder.mu.Lock"
	r.mu.Unlock()
	r.mu.RUnlock()
}

// lockForWrite acquires the write lock directly: fine on its own.
func (r *rw) lockForWrite() {
	r.mu.Lock()
	r.mu.Unlock()
}

// upgradeViaCall reaches the write lock through a helper: the
// transitive acquisition summary still catches the upgrade.
func (r *rw) upgradeViaCall() {
	r.mu.RLock()
	r.lockForWrite() // want "call acquires lockorder.mu.Lock"
	r.mu.RUnlock()
}

// readThenWrite releases the read lock before taking the write lock:
// not an upgrade.
func (r *rw) readThenWrite() {
	r.mu.RLock()
	r.mu.RUnlock()
	r.mu.Lock()
	r.mu.Unlock()
}

type cd struct {
	c sync.Mutex
	d sync.Mutex
}

// spawn locks d from a goroutine while holding c: the goroutine has
// its own empty held set, so no c-to-d edge forms.
func (y *cd) spawn() {
	y.c.Lock()
	go func() {
		y.d.Lock()
		y.d.Unlock()
	}()
	y.c.Unlock()
}

// dThenC is then the only ordered pair on c/d: a single edge with no
// opposite-order path is not a cycle.
func (y *cd) dThenC() {
	y.d.Lock()
	defer y.d.Unlock()
	y.c.Lock()
	y.c.Unlock()
}
