// Package errflow exercises the errflow analyzer. The `_ =` cases use
// the runner's offset form want(+2), because a want comment adjacent
// to the assignment would itself satisfy the justification rule.
package errflow

import (
	"errors"
	"fmt"
	"os"
	"strings"
)

var errBoom = errors.New("boom")

func fails() error { return errBoom }

func multi() (int, error) { return 0, errBoom }

func discards() {
	fails() // want "silently discarded"
}

func deferredDiscard() {
	defer fails() // want "silently discarded"
}

func spawnedDiscard() {
	go fails() // want "silently discarded"
}

func blanked() {
	// want(+2) "justification comment"

	_ = fails()
}

func tupleBlank() (n int) {
	// want(+2) "justification comment"

	n, _ = multi()
	return n
}

func justified() {
	// Best effort: the caller cannot act on this failure.
	_ = fails()
}

func trailingJustified() {
	_ = fails() // best effort: nothing to do about it here
}

func handled() error {
	if err := fails(); err != nil {
		return err
	}
	return nil
}

// allowlisted exercises the documented infallible-writer contracts.
func allowlisted(sb *strings.Builder) {
	fmt.Println("to stdout")
	fmt.Fprintf(os.Stderr, "to stderr\n")
	sb.WriteString("builder writes never fail")
	fmt.Fprintf(sb, "nor via fmt %d\n", 1)
}

func reasonless() {
	// want(+1) "needs a reason"
	//lint:ignore errflow
	_ = fails()
}
