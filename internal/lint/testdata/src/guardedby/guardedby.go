// Package guardedby exercises the guardedby analyzer: mutex-guarded
// fields need the lock, serialization-domain fields need
// //coflow:singlewriter.
package guardedby

import "sync"

type store struct {
	mu   sync.Mutex
	n    int   // guarded by mu
	evts []int // guarded by eventloop
}

// locked takes the mutex before touching n: clean.
func (s *store) locked() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// unlocked reads n with no lock and no annotation.
func (s *store) unlocked() int {
	return s.n // want "does not hold"
}

// owner runs on the owning goroutine: both fields are fair game.
//
//coflow:singlewriter
func (s *store) owner() {
	s.n++
	s.evts = append(s.evts, 1)
}

// outsider touches the eventloop domain without the annotation.
func (s *store) outsider() {
	s.evts = nil // want "serialization domain"
}

type rwstore struct {
	mu sync.RWMutex
	v  int // guarded by mu
}

// read holds the read lock: RLock satisfies the guard too.
func (r *rwstore) read() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.v
}
