// Package allocfree exercises the allocfree analyzer: each flagged
// construct carries a // want comment with the expected message.
package allocfree

import "fmt"

type scratch struct {
	buf []int
}

//coflow:allocfree
func makesSlice() []int {
	return []int{1, 2, 3} // want "slice literal"
}

//coflow:allocfree
func makesMap() {
	m := map[int]int{} // want "map literal"
	m[1] = 2           // want "assigns into a map"
	_ = m
}

//coflow:allocfree
func callsMake() {
	_ = make([]int, 4) // want "calls make"
}

//coflow:allocfree
func callsNew() {
	_ = new(int) // want "calls new"
}

//coflow:allocfree
func escapingComposite() *scratch {
	return &scratch{} // want "address of a composite literal"
}

//coflow:allocfree
func closes() {
	f := func() {} // want "function literal"
	f()
}

//coflow:allocfree
func spawns() {
	go annotatedCallee() // want "goroutine"
}

//coflow:allocfree
func concats(a, b string) string {
	return a + b // want "concatenates strings"
}

//coflow:allocfree
func callsFmt(x int) {
	fmt.Println(x) // want "calls fmt"
}

//coflow:allocfree
func appendsFresh() []int {
	var local []int
	local = append(local, 1) // want "not receiver- or parameter-owned"
	return local
}

// appendsOwned appends only into receiver-owned scratch: allowed.
//
//coflow:allocfree
func (s *scratch) appendsOwned(vals []int) {
	s.buf = s.buf[:0]
	for _, v := range vals {
		s.buf = append(s.buf, v)
	}
}

func helper() {}

//coflow:allocfree
func annotatedCallee() {}

// The contract is transitive: calling an unannotated local function
// is flagged, calling an annotated one is not.
//
//coflow:allocfree
func callsHelper() {
	helper() // want "not annotated"
	annotatedCallee()
}

//coflow:allocfree
func takesAny(v any) bool { return v != nil }

//coflow:allocfree
func boxes(x int) bool {
	return takesAny(x) // want "boxes"
}

//coflow:allocfree
func convertsToString(b []byte) string {
	return string(b) // want "converts to string"
}

//coflow:allocfree
func convertsToBytes(s string) []byte {
	return []byte(s) // want "byte/rune slice"
}

// A reasoned suppression silences the finding.
//
//coflow:allocfree
func suppressedColdPath() {
	//lint:ignore allocfree cold path: runs once at startup, not per slot
	_ = make([]int, 1)
}

// Unannotated functions may allocate freely.
func unannotated() []int {
	return append([]int(nil), 1, 2, 3)
}
