// Package spawnguard exercises the spawnguard analyzer: a closure
// that escapes a //coflow:singlewriter function runs off the
// single-writer goroutine, so it loses the exemption guardedby
// grants the enclosing function.
package spawnguard

import "sync"

type loop struct {
	mu      sync.Mutex
	hits    int   // guarded by mu
	pending []int // guarded by eventloop
	done    func()
}

// run owns all the state. Direct touches are fine (that is
// guardedby's business); escaping closures are not.
//
//coflow:singlewriter
func (l *loop) run(ch chan func()) {
	l.pending = nil // clean: still on the single-writer goroutine

	go func() {
		l.pending = nil // want "serialization domain"
	}()

	go func() {
		l.hits++ // want "without taking l.mu itself"
	}()

	go func() {
		l.mu.Lock()
		l.hits++ // clean: the goroutine takes the lock itself
		l.mu.Unlock()
	}()

	f := func() {
		l.pending = nil // clean: synchronous closure, called in-loop below
	}
	f()

	g := func() {
		l.hits = 0 // want "without taking l.mu itself"
	}
	go g()

	ch <- func() {
		l.pending = nil // want "via a channel send"
	}

	l.done = func() {
		l.pending = nil // want "via a field or element store"
	}
}
