package lint

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestParseEscapes(t *testing.T) {
	const out = `# coflow/internal/matrix
internal/matrix/sparse.go:10:6: can inline (*Sparse).Len
internal/matrix/sparse.go:42:17: d escapes to heap
internal/matrix/sparse.go:44:9: moved to heap: e
internal/matrix/sparse.go:50:20: ... argument does not escape
internal/matrix/other.go:7:2: []int{...} does not escape
# coflow/internal/online
internal/online/step.go:12:3: leaking param: s
`
	diags, err := ParseEscapes(strings.NewReader(out))
	if err != nil {
		t.Fatalf("ParseEscapes: %v", err)
	}
	want := []EscapeDiag{
		{File: "internal/matrix/sparse.go", Line: 42, Msg: "d escapes to heap"},
		{File: "internal/matrix/sparse.go", Line: 44, Msg: "moved to heap: e"},
	}
	if !reflect.DeepEqual(diags, want) {
		t.Errorf("ParseEscapes = %v, want %v", diags, want)
	}
}

func TestEscapeKeysFiltersAndDedups(t *testing.T) {
	ranges := []LineRange{
		{File: "a.go", Func: "(*T).M", Start: 10, End: 20},
		{File: "a.go", Func: "F", Start: 30, End: 40},
	}
	diags := []EscapeDiag{
		{File: "a.go", Line: 15, Msg: "x escapes to heap"},
		{File: "a.go", Line: 16, Msg: "x escapes to heap"}, // same key: collapses
		{File: "a.go", Line: 35, Msg: "y escapes to heap"},
		{File: "a.go", Line: 25, Msg: "z escapes to heap"}, // between ranges: dropped
		{File: "b.go", Line: 15, Msg: "w escapes to heap"}, // other file: dropped
	}
	got := EscapeKeys(diags, ranges)
	want := []string{
		"a.go\t(*T).M\tx escapes to heap",
		"a.go\tF\ty escapes to heap",
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("EscapeKeys = %v, want %v", got, want)
	}
}

func TestDiffEscapes(t *testing.T) {
	current := []string{"a", "b", "d"}
	baseline := []string{"a", "c"}
	added, removed := DiffEscapes(current, baseline)
	if !reflect.DeepEqual(added, []string{"b", "d"}) {
		t.Errorf("added = %v, want [b d]", added)
	}
	if !reflect.DeepEqual(removed, []string{"c"}) {
		t.Errorf("removed = %v, want [c]", removed)
	}
}

func TestReadBaseline(t *testing.T) {
	const in = `# header comment
# another

a.go	F	x escapes to heap
b.go	G	moved to heap: y
`
	got, err := ReadBaseline(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadBaseline: %v", err)
	}
	want := []string{
		"a.go\tF\tx escapes to heap",
		"b.go\tG\tmoved to heap: y",
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ReadBaseline = %v, want %v", got, want)
	}
}

// TestAllocFreeRanges loads the allocfree fixture and checks the
// annotated-function spans come back with display names and
// root-relative paths.
func TestAllocFreeRanges(t *testing.T) {
	dir := filepath.Join("testdata", "src", "allocfree")
	l := newLoader()
	pkg, err := l.LoadDir(dir, "allocfree")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	// The loader parsed with dir-relative paths, so the same relative
	// dir works as the root for path trimming.
	ranges := AllocFreeRanges([]*Package{pkg}, dir)
	byFunc := map[string]LineRange{}
	for _, r := range ranges {
		byFunc[r.Func] = r
	}
	plain, ok := byFunc["makesSlice"]
	if !ok {
		t.Fatalf("makesSlice missing from ranges: %v", ranges)
	}
	if plain.File != "allocfree.go" {
		t.Errorf("File = %q, want root-relative %q", plain.File, "allocfree.go")
	}
	if plain.Start <= 0 || plain.End <= plain.Start {
		t.Errorf("bad span for makesSlice: %+v", plain)
	}
	if _, ok := byFunc["(*scratch).appendsOwned"]; !ok {
		t.Errorf("method display name (*scratch).appendsOwned missing: %v", ranges)
	}
	if _, ok := byFunc["unannotated"]; ok {
		t.Errorf("unannotated function must not appear in allocfree ranges")
	}
}
