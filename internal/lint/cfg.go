package lint

import (
	"go/ast"
	"go/token"
)

// This file builds intraprocedural control-flow graphs from go/ast
// function bodies. The CFG is deliberately small: blocks hold only
// "atomic" nodes — simple statements and the control expressions that
// drive branches (if conditions, range operands, switch tags, case
// expressions) — never compound statements. An analyzer can therefore
// ast.Inspect every node of every block without visiting any
// sub-statement twice, and a node's position in the block order is its
// evaluation order.

// TermKind classifies how a block transfers control to the synthetic
// exit block, so analyzers can treat normal returns, panics, and the
// implicit fall-off-the-end exit differently (span-hygiene, for one,
// exempts panic paths).
type TermKind int

const (
	// TermNone: the block does not edge to Exit (or only falls
	// through to an ordinary successor).
	TermNone TermKind = iota
	// TermReturn: the block ends in an explicit return statement.
	TermReturn
	// TermPanic: the block ends in a call to panic.
	TermPanic
	// TermFall: control falls off the closing brace of the function.
	TermFall
)

// Block is one basic block: a maximal straight-line run of atomic
// nodes. Entry is Blocks[0]; the synthetic Exit block has no nodes.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
	// Term says how this block reaches the CFG's Exit, if it does.
	Term TermKind
}

// CFG is the control-flow graph of a single function body. Deferred
// calls are collected separately (they run at every exit) rather than
// modeled as edges.
type CFG struct {
	Blocks []*Block
	Exit   *Block
	Defers []*ast.DeferStmt

	reach []bool
}

// Reachable reports whether b is reachable from the entry block.
func (c *CFG) Reachable(b *Block) bool { return c.reach[b.Index] }

type loopTarget struct {
	label string
	block *Block
}

type cfgBuilder struct {
	cfg       *CFG
	cur       *Block
	breaks    []loopTarget
	continues []loopTarget
	labels    map[string]*Block
	// curLabel is the pending label for the next loop/switch/select,
	// so labeled break/continue can find their targets.
	curLabel string
}

// BuildCFG constructs the CFG of a function body (FuncDecl.Body or
// FuncLit.Body). Nested function literals are opaque: their bodies are
// not traversed; the literal appears as part of whatever atomic node
// contains it.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{
		cfg:    &CFG{},
		labels: make(map[string]*Block),
	}
	b.cfg.Exit = b.newBlock()
	entry := b.newBlock()
	b.cur = entry
	b.stmtList(body.List)
	if b.cur.Term == TermNone {
		b.cur.Term = TermFall
		b.edge(b.cur, b.cfg.Exit)
	}
	// Entry-first ordering is convenient for solvers and tests; the
	// exit block sorts last.
	old := b.cfg.Blocks
	blocks := make([]*Block, 0, len(old))
	blocks = append(blocks, old[1])
	blocks = append(blocks, old[2:]...)
	blocks = append(blocks, old[0])
	b.cfg.Blocks = blocks
	for i, blk := range blocks {
		blk.Index = i
	}
	for _, blk := range blocks {
		for _, s := range blk.Succs {
			s.Preds = append(s.Preds, blk)
		}
	}
	b.cfg.computeReach()
	return b.cfg
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

func (b *cfgBuilder) add(n ast.Node) {
	b.cur.Nodes = append(b.cur.Nodes, n)
}

// dangle starts a fresh, unreachable block after an unconditional
// transfer (return, break, goto, panic). Statements that follow are
// still recorded — they are dead code — but carry no in-edges.
func (b *cfgBuilder) dangle() {
	b.cur = b.newBlock()
}

func (b *cfgBuilder) takeLabel() string {
	l := b.curLabel
	b.curLabel = ""
	return l
}

func (b *cfgBuilder) labelBlock(name string) *Block {
	if blk, ok := b.labels[name]; ok {
		return blk
	}
	blk := b.newBlock()
	b.labels[name] = blk
	return blk
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		lb := b.labelBlock(s.Label.Name)
		b.edge(b.cur, lb)
		b.cur = lb
		b.curLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.curLabel = ""

	case *ast.ReturnStmt:
		b.add(s)
		b.cur.Term = TermReturn
		b.edge(b.cur, b.cfg.Exit)
		b.dangle()

	case *ast.ExprStmt:
		b.add(s)
		if isPanicCall(s.X) {
			b.cur.Term = TermPanic
			b.edge(b.cur, b.cfg.Exit)
			b.dangle()
		}

	case *ast.DeferStmt:
		b.add(s)
		b.cfg.Defers = append(b.cfg.Defers, s)

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Cond)
		cond := b.cur
		follow := b.newBlock()
		then := b.newBlock()
		b.edge(cond, then)
		b.cur = then
		b.stmt(s.Body)
		b.edge(b.cur, follow)
		if s.Else != nil {
			els := b.newBlock()
			b.edge(cond, els)
			b.cur = els
			b.stmt(s.Else)
			b.edge(b.cur, follow)
		} else {
			b.edge(cond, follow)
		}
		b.cur = follow

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.newBlock()
		b.edge(b.cur, head)
		b.cur = head
		if s.Cond != nil {
			b.add(s.Cond)
		}
		follow := b.newBlock()
		if s.Cond != nil {
			b.edge(head, follow)
		}
		post := b.newBlock()
		body := b.newBlock()
		b.edge(head, body)
		b.breaks = append(b.breaks, loopTarget{label, follow})
		b.continues = append(b.continues, loopTarget{label, post})
		b.cur = body
		b.stmt(s.Body)
		b.edge(b.cur, post)
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.continues = b.continues[:len(b.continues)-1]
		b.cur = post
		if s.Post != nil {
			b.stmt(s.Post)
		}
		b.edge(b.cur, head)
		b.cur = follow

	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.newBlock()
		b.edge(b.cur, head)
		b.cur = head
		b.add(s.X)
		if s.Key != nil {
			b.add(s.Key)
		}
		if s.Value != nil {
			b.add(s.Value)
		}
		follow := b.newBlock()
		b.edge(head, follow)
		body := b.newBlock()
		b.edge(head, body)
		b.breaks = append(b.breaks, loopTarget{label, follow})
		b.continues = append(b.continues, loopTarget{label, head})
		b.cur = body
		b.stmt(s.Body)
		b.edge(b.cur, head)
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.continues = b.continues[:len(b.continues)-1]
		b.cur = follow

	case *ast.SwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.buildSwitchClauses(s.Body, label, func(cc *ast.CaseClause, blk *Block) {
			for _, e := range cc.List {
				blk.Nodes = append(blk.Nodes, e)
			}
		})

	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		// The assign form (v := x.(type)) is a shallow statement:
		// record it whole so analyzers see the declared variable.
		b.add(s.Assign)
		b.buildSwitchClauses(s.Body, label, func(cc *ast.CaseClause, blk *Block) {})

	case *ast.SelectStmt:
		label := b.takeLabel()
		sel := b.cur
		follow := b.newBlock()
		b.breaks = append(b.breaks, loopTarget{label, follow})
		for _, cl := range s.Body.List {
			cc := cl.(*ast.CommClause)
			blk := b.newBlock()
			b.edge(sel, blk)
			b.cur = blk
			if cc.Comm != nil {
				b.add(cc.Comm)
			}
			b.stmtList(cc.Body)
			b.edge(b.cur, follow)
		}
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.cur = follow

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if t := findTarget(b.breaks, s.Label); t != nil {
				b.edge(b.cur, t)
			}
			b.dangle()
		case token.CONTINUE:
			if t := findTarget(b.continues, s.Label); t != nil {
				b.edge(b.cur, t)
			}
			b.dangle()
		case token.GOTO:
			b.edge(b.cur, b.labelBlock(s.Label.Name))
			b.dangle()
		case token.FALLTHROUGH:
			// Handled structurally in buildSwitchClauses.
		}

	case *ast.EmptyStmt:
		// nothing

	default:
		// AssignStmt, DeclStmt, IncDecStmt, SendStmt, GoStmt, and
		// anything else simple: one atomic node.
		b.add(s)
	}
}

// buildSwitchClauses wires the shared clause structure of switch and
// type-switch statements: every clause is entered from the dispatch
// block, fallthrough edges into the next clause body, and a missing
// default adds a dispatch→follow edge.
func (b *cfgBuilder) buildSwitchClauses(body *ast.BlockStmt, label string, caseNodes func(*ast.CaseClause, *Block)) {
	dispatch := b.cur
	follow := b.newBlock()
	b.breaks = append(b.breaks, loopTarget{label, follow})
	var clauses []*ast.CaseClause
	for _, cl := range body.List {
		clauses = append(clauses, cl.(*ast.CaseClause))
	}
	bodyBlocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, cc := range clauses {
		bodyBlocks[i] = b.newBlock()
		b.edge(dispatch, bodyBlocks[i])
		if cc.List == nil {
			hasDefault = true
		}
	}
	for i, cc := range clauses {
		b.cur = bodyBlocks[i]
		caseNodes(cc, bodyBlocks[i])
		falls := false
		for _, st := range cc.Body {
			if br, ok := st.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				falls = true
			}
			b.stmt(st)
		}
		if falls && i+1 < len(bodyBlocks) {
			b.edge(b.cur, bodyBlocks[i+1])
			b.dangle()
		} else {
			b.edge(b.cur, follow)
		}
	}
	if !hasDefault {
		b.edge(dispatch, follow)
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.cur = follow
}

func findTarget(stack []loopTarget, label *ast.Ident) *Block {
	if label == nil {
		if len(stack) == 0 {
			return nil
		}
		return stack[len(stack)-1].block
	}
	for i := len(stack) - 1; i >= 0; i-- {
		if stack[i].label == label.Name {
			return stack[i].block
		}
	}
	return nil
}

func isPanicCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

func (c *CFG) computeReach() {
	c.reach = make([]bool, len(c.Blocks))
	var stack []*Block
	stack = append(stack, c.Blocks[0])
	c.reach[c.Blocks[0].Index] = true
	for len(stack) > 0 {
		blk := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range blk.Succs {
			if !c.reach[s.Index] {
				c.reach[s.Index] = true
				stack = append(stack, s)
			}
		}
	}
}
