package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Publish enforces the snapshot-publication discipline of the shard
// and daemon planes: a value handed to atomic.Pointer.Store /
// CompareAndSwap (or to a //coflow:published function) becomes
// visible to concurrent readers with no further synchronization, so
// it must be frozen — no writes through the published variable or any
// local alias of it, on any CFG path after the publication point.
//
// Aliasing is tracked flow-insensitively (any assignment linking two
// reference-shaped locals merges them into one class; publication
// marks the whole class) and publication flow-sensitively (a bit per
// variable, set at the sink, cleared when that variable is rebound to
// a fresh value). Writes through a marked variable — field stores,
// element stores, IncDec — are errors.
var Publish = &Analyzer{
	Name: "publish",
	Doc:  "values published via atomic.Pointer.Store/CAS or //coflow:published sinks must be frozen",
	Run:  runPublish,
}

func runPublish(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			forEachFuncBody(fd.Body, func(body *ast.BlockStmt) {
				checkPublishIn(pass, body)
			})
		}
	}
}

// atomicPointerSink returns the published value expression when call
// is atomic.Pointer[T].Store(v) or CompareAndSwap(old, v), else nil.
func atomicPointerSink(pass *Pass, call *ast.CallExpr) ast.Expr {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	var arg int
	switch sel.Sel.Name {
	case "Store":
		arg = 0
	case "CompareAndSwap":
		arg = 1
	default:
		return nil
	}
	if len(call.Args) <= arg {
		return nil
	}
	t := pass.TypeOf(sel.X)
	if t == nil {
		return nil
	}
	s := strings.TrimPrefix(t.String(), "*")
	if !strings.HasPrefix(s, "sync/atomic.Pointer[") {
		return nil
	}
	return call.Args[arg]
}

// publishSink collects the value expressions a call publishes: the
// atomic.Pointer argument, or every reference-shaped argument of a
// //coflow:published function.
func publishSink(pass *Pass, call *ast.CallExpr) []ast.Expr {
	if v := atomicPointerSink(pass, call); v != nil {
		return []ast.Expr{v}
	}
	if fn := calleeFunc(pass, call); fn != nil && pass.Index.Annotated(fn, "published") {
		var out []ast.Expr
		for _, arg := range call.Args {
			if refShaped(pass.TypeOf(arg)) {
				out = append(out, arg)
			}
		}
		return out
	}
	return nil
}

// localRefVar resolves id to a function-local (or parameter)
// reference-shaped variable, else nil.
func localRefVar(pass *Pass, id *ast.Ident) types.Object {
	obj := pass.ObjectOf(id)
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return nil
	}
	if obj.Parent() == pass.Pkg.Types.Scope() || obj.Parent() == types.Universe {
		return nil
	}
	if !refShaped(v.Type()) {
		return nil
	}
	return obj
}

// aliasClasses is a union-find over local variables: any assignment
// whose right side mentions a reference-shaped local links it to the
// (reference-shaped) assigned variable — if one end is published,
// writes through the other can mutate the published object.
type aliasClasses struct {
	parent map[types.Object]types.Object
}

func (a *aliasClasses) find(o types.Object) types.Object {
	p, ok := a.parent[o]
	if !ok || p == o {
		return o
	}
	r := a.find(p)
	a.parent[o] = r
	return r
}

func (a *aliasClasses) union(x, y types.Object) {
	rx, ry := a.find(x), a.find(y)
	if rx != ry {
		a.parent[rx] = ry
	}
}

func checkPublishIn(pass *Pass, body *ast.BlockStmt) {
	// Pass 1: find publication sinks and their root variables.
	type sink struct {
		node  ast.Node // enclosing atomic node (statement-level)
		call  *ast.CallExpr
		roots []types.Object
	}
	var sinks []sink
	inspectShallow(body, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		values := publishSink(pass, call)
		if len(values) == 0 {
			return
		}
		var roots []types.Object
		for _, v := range values {
			inspectShallow(v, func(m ast.Node) {
				if id, ok := m.(*ast.Ident); ok {
					if obj := localRefVar(pass, id); obj != nil {
						roots = append(roots, obj)
					}
				}
			})
		}
		if len(roots) > 0 {
			sinks = append(sinks, sink{call: call, roots: roots})
		}
	})
	if len(sinks) == 0 {
		return
	}

	// Pass 2: alias classes from every linking assignment.
	classes := &aliasClasses{parent: map[types.Object]types.Object{}}
	inspectShallow(body, func(n ast.Node) {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return
		}
		for i, l := range as.Lhs {
			id, ok := l.(*ast.Ident)
			if !ok {
				continue
			}
			lobj := localRefVar(pass, id)
			if lobj == nil {
				continue
			}
			var rhs ast.Expr
			switch {
			case len(as.Rhs) == len(as.Lhs):
				rhs = as.Rhs[i]
			case len(as.Rhs) == 1:
				rhs = as.Rhs[0]
			default:
				continue
			}
			inspectShallow(rhs, func(m ast.Node) {
				if rid, ok := m.(*ast.Ident); ok {
					if robj := localRefVar(pass, rid); robj != nil && robj != lobj {
						classes.union(lobj, robj)
					}
				}
			})
		}
	})

	// The tracked variable set: every local sharing a class with a
	// sink root.
	published := map[types.Object]bool{}
	for _, s := range sinks {
		for _, r := range s.roots {
			published[classes.find(r)] = true
		}
	}
	vars := map[types.Object]int{}
	var names []string
	collect := func(o types.Object) {
		if _, ok := vars[o]; !ok && published[classes.find(o)] {
			vars[o] = len(names)
			names = append(names, o.Name())
		}
	}
	inspectShallow(body, func(n ast.Node) {
		if id, ok := n.(*ast.Ident); ok {
			if obj := localRefVar(pass, id); obj != nil {
				collect(obj)
			}
		}
	})
	if len(vars) == 0 {
		return
	}

	// Pass 3: flow-sensitive publication bits over the CFG.
	step := func(n ast.Node, state BitSet, report bool) {
		// Writes through a published variable (checked before this
		// node's own sinks fire: storing then writing in one
		// statement is still a write-after-store on re-execution,
		// but within one node order is program order).
		if report {
			checkWrite := func(lhs ast.Expr, at ast.Node) {
				root := rootIdent(lhs)
				if root == nil {
					return
				}
				if _, isIdent := lhs.(*ast.Ident); isIdent {
					return // rebinding, handled below
				}
				obj := pass.ObjectOf(root)
				if obj == nil {
					return
				}
				if bit, ok := vars[obj]; ok && state.Has(bit) {
					pass.Reportf(at.Pos(), "write to %s after %s was published: values behind atomic.Pointer.Store/CompareAndSwap (or //coflow:published sinks) must be frozen", describeExpr(lhs), root.Name)
				}
			}
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, l := range n.Lhs {
					checkWrite(l, n)
				}
			case *ast.IncDecStmt:
				checkWrite(n.X, n)
			default:
				inspectShallow(n, func(m ast.Node) {
					switch m := m.(type) {
					case *ast.AssignStmt:
						for _, l := range m.Lhs {
							checkWrite(l, m)
						}
					case *ast.IncDecStmt:
						checkWrite(m.X, m)
					}
				})
			}
		}
		// Sinks set the publication bit for the whole alias class.
		inspectShallow(n, func(m ast.Node) {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return
			}
			for _, s := range sinks {
				if s.call != call {
					continue
				}
				for _, r := range s.roots {
					rc := classes.find(r)
					for obj, bit := range vars {
						if classes.find(obj) == rc {
							state.Set(bit)
						}
					}
				}
			}
		})
		// Rebinding a variable to a fresh value releases it (the
		// published object is unreachable through this name now);
		// its aliases stay published.
		if as, ok := n.(*ast.AssignStmt); ok {
			for _, l := range as.Lhs {
				if id, ok := l.(*ast.Ident); ok {
					if obj := pass.ObjectOf(id); obj != nil {
						if bit, ok := vars[obj]; ok {
							state.Clear(bit)
						}
					}
				}
			}
		}
	}

	cfg := BuildCFG(body)
	ins := cfg.ForwardMay(len(vars), func(b *Block, out BitSet) {
		for _, n := range b.Nodes {
			step(n, out, false)
		}
	})
	for _, b := range cfg.Blocks {
		if !cfg.Reachable(b) {
			continue
		}
		state := ins[b.Index].Clone()
		for _, n := range b.Nodes {
			step(n, state, true)
		}
	}
}
