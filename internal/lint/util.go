package lint

import (
	"go/ast"
	"go/types"
)

// calleeFunc resolves the named function or method a call invokes,
// or nil for calls through function values, builtins, and
// conversions.
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	fun := ast.Unparen(call.Fun)
	// Unwrap explicit generic instantiation.
	switch f := fun.(type) {
	case *ast.IndexExpr:
		fun = f.X
	case *ast.IndexListExpr:
		fun = f.X
	}
	var id *ast.Ident
	switch f := fun.(type) {
	case *ast.Ident:
		id = f
	case *ast.SelectorExpr:
		id = f.Sel
	default:
		return nil
	}
	fn, _ := pass.ObjectOf(id).(*types.Func)
	return fn
}

// rootIdent strips selectors, indexes, slices and parens down to the
// leftmost identifier of an expression, or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// exprString renders ident/selector chains ("d.obs.reg") textually;
// anything more complex yields "".
func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		base := exprString(x.X)
		if base == "" {
			return ""
		}
		return base + "." + x.Sel.Name
	case *ast.ParenExpr:
		return exprString(x.X)
	default:
		return ""
	}
}

// isErrType reports whether t is the predeclared error type.
func isErrType(t types.Type) bool {
	return t != nil && types.Identical(t, types.Universe.Lookup("error").Type())
}

// forEachFuncBody invokes fn on root and on the body of every
// function literal nested inside it, at any depth — each body exactly
// once. Analyzers that treat function literals as independent
// control-flow universes (obsguard spans, pooled) iterate with this.
func forEachFuncBody(root *ast.BlockStmt, fn func(*ast.BlockStmt)) {
	fn(root)
	ast.Inspect(root, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			fn(lit.Body)
		}
		return true
	})
}

// inspectShallow walks the subtree like ast.Inspect but does not
// descend into nested function literals — their statements belong to
// a different function. The literal node itself is still visited, so
// construct checks (allocfree's "function literal" finding) see it.
func inspectShallow(root ast.Node, fn func(ast.Node)) {
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			return true
		}
		fn(n)
		if _, ok := n.(*ast.FuncLit); ok && n != root {
			return false
		}
		return true
	})
}

// terminates reports whether a statement definitely transfers
// control out (a return, or a panic call) — a cheap approximation of
// go/types' terminating-statement analysis, used to decide whether a
// function body can fall off its closing brace.
func terminates(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.ForStmt:
		return s.Cond == nil // for {} without break is endless enough here
	case *ast.BlockStmt:
		if n := len(s.List); n > 0 {
			return terminates(s.List[n-1])
		}
	}
	return false
}
