package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// parseFuncBody parses a function body from source for CFG tests.
func parseFuncBody(t *testing.T, body string) *ast.BlockStmt {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "t.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return file.Decls[0].(*ast.FuncDecl).Body
}

// nodeBlock returns the reachable block containing a node for which
// pred returns true, or nil.
func nodeBlock(c *CFG, pred func(ast.Node) bool) *Block {
	for _, b := range c.Blocks {
		if !c.Reachable(b) {
			continue
		}
		for _, n := range b.Nodes {
			if pred(n) {
				return b
			}
		}
	}
	return nil
}

func assignTo(name string) func(ast.Node) bool {
	return func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return false
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		return ok && id.Name == name
	}
}

func TestCFGIfElse(t *testing.T) {
	c := BuildCFG(parseFuncBody(t, `
		a := 1
		if a > 0 {
			b := 2
			_ = b
		} else {
			c := 3
			_ = c
		}
		d := 4
		_ = d
	`))
	thenB := nodeBlock(c, assignTo("b"))
	elseB := nodeBlock(c, assignTo("c"))
	followB := nodeBlock(c, assignTo("d"))
	if thenB == nil || elseB == nil || followB == nil {
		t.Fatalf("missing branch blocks: then=%v else=%v follow=%v", thenB, elseB, followB)
	}
	if thenB == elseB {
		t.Fatalf("then and else share a block")
	}
	hasSucc := func(from, to *Block) bool {
		for _, s := range from.Succs {
			if s == to {
				return true
			}
		}
		return false
	}
	if !hasSucc(thenB, followB) || !hasSucc(elseB, followB) {
		t.Fatalf("branches do not rejoin at follow block")
	}
}

func TestCFGIfWithoutElseHasSkipEdge(t *testing.T) {
	c := BuildCFG(parseFuncBody(t, `
		a := 1
		if a > 0 {
			b := 2
			_ = b
		}
		d := 4
		_ = d
	`))
	condB := nodeBlock(c, assignTo("a"))
	followB := nodeBlock(c, assignTo("d"))
	found := false
	for _, s := range condB.Succs {
		if s == followB {
			found = true
		}
	}
	if !found {
		t.Fatalf("if without else must edge cond -> follow directly")
	}
}

func TestCFGLoopBackEdge(t *testing.T) {
	c := BuildCFG(parseFuncBody(t, `
		for i := 0; i < 10; i++ {
			b := i
			_ = b
		}
		d := 1
		_ = d
	`))
	bodyB := nodeBlock(c, assignTo("b"))
	if bodyB == nil {
		t.Fatalf("loop body block not found")
	}
	// The body must cycle back: some path body -> ... -> body.
	seen := map[*Block]bool{}
	var stack []*Block
	stack = append(stack, bodyB.Succs...)
	cyclic := false
	for len(stack) > 0 {
		blk := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if blk == bodyB {
			cyclic = true
			break
		}
		if seen[blk] {
			continue
		}
		seen[blk] = true
		stack = append(stack, blk.Succs...)
	}
	if !cyclic {
		t.Fatalf("for loop has no back edge to the body")
	}
}

func TestCFGInfiniteLoopFollowUnreachable(t *testing.T) {
	c := BuildCFG(parseFuncBody(t, `
		for {
			a := 1
			_ = a
		}
	`))
	// The function can only be left via Exit from... nowhere: no
	// return, no fall-off (the loop never exits), so Exit must be
	// unreachable.
	if c.Reachable(c.Exit) {
		t.Fatalf("exit of `for {}` must be unreachable")
	}
}

func TestCFGLabeledBreak(t *testing.T) {
	c := BuildCFG(parseFuncBody(t, `
	outer:
		for {
			for {
				a := 1
				_ = a
				break outer
			}
		}
		d := 1
		_ = d
	`))
	followB := nodeBlock(c, assignTo("d"))
	if followB == nil {
		t.Fatalf("labeled break target (outer follow) is unreachable")
	}
	if !c.Reachable(c.Exit) {
		t.Fatalf("function exit unreachable despite labeled break")
	}
}

func TestCFGReturnTerminatorAndDeadCode(t *testing.T) {
	c := BuildCFG(parseFuncBody(t, `
		a := 1
		if a > 0 {
			return
		}
		b := 2
		_ = b
	`))
	var retB *Block
	for _, b := range c.Blocks {
		if b.Term == TermReturn {
			retB = b
		}
	}
	if retB == nil {
		t.Fatalf("no block marked TermReturn")
	}
	if retB.Succs[0] != c.Exit {
		t.Fatalf("return block must edge to Exit")
	}
	if nodeBlock(c, assignTo("b")) == nil {
		t.Fatalf("code after conditional return must stay reachable")
	}
}

func TestCFGPanicTerminator(t *testing.T) {
	c := BuildCFG(parseFuncBody(t, `
		a := 1
		if a > 0 {
			panic("boom")
		}
		_ = a
	`))
	found := false
	for _, b := range c.Blocks {
		if b.Term == TermPanic {
			found = true
		}
	}
	if !found {
		t.Fatalf("panic call not marked TermPanic")
	}
}

func TestCFGDefersCollected(t *testing.T) {
	c := BuildCFG(parseFuncBody(t, `
		defer println("one")
		if true {
			defer println("two")
		}
	`))
	if len(c.Defers) != 2 {
		t.Fatalf("got %d defers, want 2", len(c.Defers))
	}
}

func TestCFGSwitchFallthroughAndDefault(t *testing.T) {
	c := BuildCFG(parseFuncBody(t, `
		x := 1
		switch x {
		case 1:
			a := 1
			_ = a
			fallthrough
		case 2:
			b := 2
			_ = b
		default:
			e := 3
			_ = e
		}
		d := 4
		_ = d
	`))
	aB := nodeBlock(c, assignTo("a"))
	bB := nodeBlock(c, assignTo("b"))
	if aB == nil || bB == nil {
		t.Fatalf("switch clause blocks missing")
	}
	found := false
	for _, s := range aB.Succs {
		if s == bB {
			found = true
		}
	}
	if !found {
		t.Fatalf("fallthrough must edge clause 1 into clause 2")
	}
	if nodeBlock(c, assignTo("d")) == nil {
		t.Fatalf("switch follow block unreachable")
	}
}

func TestCFGSelectAndGoto(t *testing.T) {
	c := BuildCFG(parseFuncBody(t, `
		ch := make(chan int)
	again:
		select {
		case v := <-ch:
			_ = v
			goto again
		default:
			d := 1
			_ = d
		}
	`))
	if nodeBlock(c, assignTo("d")) == nil {
		t.Fatalf("select default clause unreachable")
	}
	if !c.Reachable(c.Exit) {
		t.Fatalf("exit unreachable")
	}
}
