package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrFlow forbids silently discarded error returns: calling an
// error-returning function as a bare statement (including go/defer),
// or blanking an error with "_ =", loses failures like a short HTTP
// write or a snapshot encode with no trace. Discarding must be
// visible and justified:
//
//	_ = enc.Encode(v) // best effort: client may be gone
//
// i.e. an "_ =" assignment needs a comment on the same line or the
// line directly above; a bare call is never acceptable (make the
// discard explicit with "_ =" plus the comment, or handle the
// error).
//
// Allowlisted as error-free by documented contract:
//
//   - fmt.Print/Printf/Println, and fmt.Fprint* directed at
//     os.Stdout/os.Stderr (process output; nothing sane to do on
//     failure)
//   - methods on *strings.Builder and *bytes.Buffer (documented to
//     never return an error), and fmt.Fprint* into either
//   - fmt.Fprint* into *bufio.Writer and *tabwriter.Writer: their
//     write errors are sticky and reported by the Flush call the
//     enclosing function must make (Flush errors ARE checked)
//
// examples/ packages are exempt — they are narrative code.
var ErrFlow = &Analyzer{
	Name: "errflow",
	Doc:  "no silently discarded error returns; _ = needs an adjacent justification comment",
	Run:  runErrFlow,
}

func runErrFlow(pass *Pass) {
	if pass.Pkg.Module != "" && strings.HasPrefix(pass.Pkg.Path, pass.Pkg.Module+"/examples") {
		return
	}
	for _, f := range pass.Pkg.Files {
		commented := commentLines(pass, f)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					checkDiscardedCall(pass, call)
				}
			case *ast.GoStmt:
				checkDiscardedCall(pass, n.Call)
			case *ast.DeferStmt:
				checkDiscardedCall(pass, n.Call)
			case *ast.AssignStmt:
				checkBlankedErrors(pass, n, commented)
			}
			return true
		})
	}
}

// commentLines records which lines of f carry (or are directly
// covered by) a comment, for the justification-adjacency test.
func commentLines(pass *Pass, f *ast.File) map[int]bool {
	lines := map[int]bool{}
	for _, cg := range f.Comments {
		start := pass.Fset.Position(cg.Pos()).Line
		end := pass.Fset.Position(cg.End()).Line
		for l := start; l <= end; l++ {
			lines[l] = true
		}
	}
	return lines
}

// checkDiscardedCall flags a statement-position call that returns an
// error.
func checkDiscardedCall(pass *Pass, call *ast.CallExpr) {
	if !returnsError(pass, call) || allowlisted(pass, call) {
		return
	}
	pass.Reportf(call.Pos(), "error result of %s is silently discarded (handle it, or assign to _ with a justification comment)",
		describeExpr(call.Fun))
}

// checkBlankedErrors flags `_ = err-returning-expr` (in any position
// of the assignment) when no comment sits on the same line or the
// line above.
func checkBlankedErrors(pass *Pass, as *ast.AssignStmt, commented map[int]bool) {
	blanksError := false
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		// Tuple assignment: x, _ := f()
		tup, ok := pass.TypeOf(as.Rhs[0]).(*types.Tuple)
		if !ok {
			return
		}
		for i, lhs := range as.Lhs {
			if isBlank(lhs) && i < tup.Len() && isErrType(tup.At(i).Type()) {
				blanksError = true
			}
		}
	} else {
		for i, lhs := range as.Lhs {
			if isBlank(lhs) && i < len(as.Rhs) && isErrType(pass.TypeOf(as.Rhs[i])) {
				if call, ok := ast.Unparen(as.Rhs[i]).(*ast.CallExpr); ok && allowlisted(pass, call) {
					continue
				}
				blanksError = true
			}
		}
	}
	if !blanksError {
		return
	}
	line := pass.Fset.Position(as.Pos()).Line
	if commented[line] || commented[line-1] {
		return
	}
	pass.Reportf(as.Pos(), "_ discards an error without an adjacent justification comment (same line or the line above)")
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// returnsError reports whether the call's result(s) include an
// error.
func returnsError(pass *Pass, call *ast.CallExpr) bool {
	t := pass.TypeOf(call)
	if t == nil {
		return false
	}
	if tup, ok := t.(*types.Tuple); ok {
		for i := 0; i < tup.Len(); i++ {
			if isErrType(tup.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isErrType(t)
}

// allowlisted reports whether the call's error is unfailable (or
// unactionable) by documented contract.
func allowlisted(pass *Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(pass, call)
	if fn == nil {
		return false
	}
	if pkg := fn.Pkg(); pkg != nil && pkg.Path() == "fmt" {
		switch fn.Name() {
		case "Print", "Printf", "Println":
			return true
		}
		if strings.HasPrefix(fn.Name(), "Fprint") && len(call.Args) > 0 {
			dst := ast.Unparen(call.Args[0])
			if sel, ok := dst.(*ast.SelectorExpr); ok {
				if obj := pass.Pkg.Info.Uses[sel.Sel]; obj != nil && obj.Pkg() != nil &&
					obj.Pkg().Path() == "os" && (obj.Name() == "Stdout" || obj.Name() == "Stderr") {
					return true
				}
			}
			if infallibleWriter(pass.TypeOf(dst)) {
				return true
			}
		}
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		switch sig.Recv().Type().String() {
		case "*strings.Builder", "*bytes.Buffer":
			return true
		}
	}
	return false
}

// infallibleWriter reports whether writes to t either never fail
// (strings.Builder, bytes.Buffer) or stick and resurface at the Flush
// the enclosing function must call (bufio.Writer, tabwriter.Writer).
func infallibleWriter(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.String() {
	case "*strings.Builder", "*bytes.Buffer", "*bufio.Writer", "*text/tabwriter.Writer":
		return true
	}
	return false
}
