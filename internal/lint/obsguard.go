package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ObsGuard proves the observability layer's "free when off" contract
// shape-wise:
//
//  1. In the metrics kernel (any package named "obs"), every exported
//     method on a pointer receiver must either begin with a
//     nil-receiver guard (if r == nil { ... return }) or consist of a
//     single delegation to another method on the same receiver (whose
//     guard it inherits, e.g. Counter.Inc -> Counter.Add). A metric
//     method without its guard panics the instrumented hot path the
//     first time observability is disabled.
//
//  2. Everywhere: a span obtained from a Start() call (any method
//     returning a type named Span) must reach an End/EndWithTrace/
//     Done call on every return path of the enclosing function — a
//     span that escapes a return path silently under-counts its
//     histogram, which no runtime test notices. A deferred End
//     covers all paths; a span passed onward (stored, returned,
//     handed to another function) is assumed managed there.
var ObsGuard = &Analyzer{
	Name: "obsguard",
	Doc:  "nil-receiver guards on obs metric methods; spans must End on all return paths",
	Run:  runObsGuard,
}

// spanEnders are the methods that settle a span.
var spanEnders = map[string]bool{"End": true, "EndWithTrace": true, "Done": true}

func runObsGuard(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if pass.Pkg.Name == "obs" {
				checkNilGuard(pass, fd)
			}
			// Each function literal is its own control-flow universe:
			// spans started inside one are checked against its CFG,
			// not the enclosing declaration's.
			forEachFuncBody(fd.Body, func(body *ast.BlockStmt) {
				checkSpans(pass, body)
			})
		}
	}
}

// checkNilGuard enforces rule 1 on one declaration.
func checkNilGuard(pass *Pass, fd *ast.FuncDecl) {
	if fd.Recv == nil || len(fd.Recv.List) != 1 || !fd.Name.IsExported() {
		return
	}
	if _, ok := fd.Recv.List[0].Type.(*ast.StarExpr); !ok {
		return // value receivers carry their own zero-value semantics
	}
	recv := receiverName(fd)
	if recv == "" {
		pass.Reportf(fd.Name.Pos(), "exported method %s on a pointer metric type has an unnamed receiver and cannot nil-guard it", fd.Name.Name)
		return
	}
	if beginsWithNilGuard(fd, recv) || isTailDelegation(fd, recv) {
		return
	}
	pass.Reportf(fd.Name.Pos(), "exported method %s on a pointer metric type must begin with a nil-receiver guard (if %s == nil { ... })", fd.Name.Name, recv)
}

func receiverName(fd *ast.FuncDecl) string {
	names := fd.Recv.List[0].Names
	if len(names) != 1 || names[0].Name == "_" {
		return ""
	}
	return names[0].Name
}

// beginsWithNilGuard reports whether the first statement is an if
// whose condition checks recv == nil (directly or as an operand of a
// top-level ||) and whose body leaves the function.
func beginsWithNilGuard(fd *ast.FuncDecl, recv string) bool {
	if len(fd.Body.List) == 0 {
		return false
	}
	ifStmt, ok := fd.Body.List[0].(*ast.IfStmt)
	if !ok || !condChecksNil(ifStmt.Cond, recv) {
		return false
	}
	n := len(ifStmt.Body.List)
	return n > 0 && terminates(ifStmt.Body.List[n-1])
}

// condChecksNil looks for `recv == nil` among the top-level ||
// operands of cond.
func condChecksNil(cond ast.Expr, recv string) bool {
	switch e := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LOR:
			return condChecksNil(e.X, recv) || condChecksNil(e.Y, recv)
		case token.EQL:
			return isIdentNamed(e.X, recv) && isNilIdent(e.Y) ||
				isIdentNamed(e.Y, recv) && isNilIdent(e.X)
		}
	}
	return false
}

func isIdentNamed(e ast.Expr, name string) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == name
}

func isNilIdent(e ast.Expr) bool { return isIdentNamed(e, "nil") }

// isTailDelegation reports whether the body is a single call (or
// return of a call) to another method on the same receiver, which
// carries the guard on the callee's side.
func isTailDelegation(fd *ast.FuncDecl, recv string) bool {
	if len(fd.Body.List) != 1 {
		return false
	}
	var call *ast.CallExpr
	switch s := fd.Body.List[0].(type) {
	case *ast.ExprStmt:
		call, _ = s.X.(*ast.CallExpr)
	case *ast.ReturnStmt:
		if len(s.Results) == 1 {
			call, _ = s.Results[0].(*ast.CallExpr)
		}
	}
	if call == nil {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	return ok && isIdentNamed(sel.X, recv)
}

// checkSpans enforces rule 2 on one function body (declaration or
// literal; nested literals are skipped — they get their own call).
func checkSpans(pass *Pass, body *ast.BlockStmt) {
	var starts []*ast.AssignStmt
	inspectShallow(body, func(n ast.Node) {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Start" {
			return
		}
		if named, ok := deref(pass.TypeOf(call)); !ok || named != "Span" {
			return
		}
		starts = append(starts, as)
	})
	if len(starts) == 0 {
		return
	}
	var tracks []spanTrack
	for _, as := range starts {
		if tr, ok := classifySpan(pass, body, as); ok {
			tracks = append(tracks, tr)
		}
	}
	if len(tracks) == 0 {
		return
	}
	checkSpanFlow(pass, body, tracks)
}

// deref names the (possibly pointer-wrapped) named type of t.
func deref(t interface{ String() string }) (string, bool) {
	if t == nil {
		return "", false
	}
	s := t.String()
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '.' {
			return s[i+1:], true
		}
	}
	return s, s != ""
}

// spanTrack is one live span variable under flow analysis.
type spanTrack struct {
	start  *ast.AssignStmt
	obj    types.Object
	name   string
	enders []*ast.CallExpr
}

// classifySpan inspects every use of the span variable assigned in
// start. A use that is neither the Start assignment, a reassignment,
// nor the receiver of an ender means the span escapes our view
// (stored, returned, handed onward, or captured by a closure) —
// assume managed there and drop the track. A deferred ender covers
// all paths, so those tracks are dropped too. The survivors go to the
// CFG dataflow in checkSpanFlow.
func classifySpan(pass *Pass, body *ast.BlockStmt, start *ast.AssignStmt) (spanTrack, bool) {
	id := start.Lhs[0].(*ast.Ident)
	obj := pass.ObjectOf(id)
	if obj == nil {
		return spanTrack{}, false
	}
	deferred := false
	escaped := false
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	var enderCalls []*ast.CallExpr
	inspectShallow(body, func(n ast.Node) {
		use, ok := n.(*ast.Ident)
		if !ok || pass.ObjectOf(use) != obj {
			return
		}
		parent := parents[use]
		switch p := parent.(type) {
		case *ast.SelectorExpr:
			if spanEnders[p.Sel.Name] {
				if call, ok := parents[p].(*ast.CallExpr); ok && call.Fun == p {
					enderCalls = append(enderCalls, call)
					if isDeferred(parents, call) {
						deferred = true
					}
					return
				}
			}
			escaped = true
		case *ast.AssignStmt:
			for _, l := range p.Lhs {
				if l == ast.Expr(use) {
					return // (re)assignment
				}
			}
			escaped = true
		default:
			escaped = true
		}
	})
	// A capture by a nested function literal is an escape: the
	// closure may End it on paths this CFG cannot see.
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				if use, ok := m.(*ast.Ident); ok && pass.ObjectOf(use) == obj {
					escaped = true
				}
				return true
			})
			return false
		}
		return true
	})
	if escaped || deferred {
		return spanTrack{}, false
	}
	return spanTrack{start: start, obj: obj, name: id.Name, enders: enderCalls}, true
}

// checkSpanFlow runs a forward may-analysis over the body's CFG: bit
// i means "span i is live (started, not yet ended)". The bit is
// gen'd at the Start assignment, killed by any node containing one of
// the span's ender calls or a reassignment, and must be clear at
// every return and at the fall-off-the-end exit. Panic exits are
// exempt: a panicking path is not a return path.
func checkSpanFlow(pass *Pass, body *ast.BlockStmt, tracks []spanTrack) {
	cfg := BuildCFG(body)
	step := func(n ast.Node, state BitSet) {
		for i := range tracks {
			tr := &tracks[i]
			if n == ast.Node(tr.start) {
				state.Set(i)
				continue
			}
			killed := false
			for _, e := range tr.enders {
				if n.Pos() <= e.Pos() && e.End() <= n.End() {
					killed = true
				}
			}
			if !killed {
				if as, ok := n.(*ast.AssignStmt); ok {
					for _, l := range as.Lhs {
						if id, ok := l.(*ast.Ident); ok && pass.ObjectOf(id) == tr.obj {
							killed = true
						}
					}
				}
			}
			if killed {
				state.Clear(i)
			}
		}
	}
	ins := cfg.ForwardMay(len(tracks), func(b *Block, out BitSet) {
		for _, n := range b.Nodes {
			step(n, out)
		}
	})
	report := func(state BitSet, exitLine int) {
		for i := range tracks {
			if state.Has(i) {
				tr := &tracks[i]
				pass.Reportf(tr.start.Pos(), "span %s started here does not reach %s.End() on the return path at line %d",
					tr.name, tr.name, exitLine)
			}
		}
	}
	for _, b := range cfg.Blocks {
		if !cfg.Reachable(b) {
			continue
		}
		switch b.Term {
		case TermReturn:
			state := ins[b.Index].Clone()
			for _, n := range b.Nodes {
				step(n, state)
				if r, ok := n.(*ast.ReturnStmt); ok {
					report(state, pass.Fset.Position(r.Pos()).Line)
				}
			}
		case TermFall:
			state := ins[b.Index].Clone()
			for _, n := range b.Nodes {
				step(n, state)
			}
			report(state, pass.Fset.Position(body.Rbrace).Line)
		}
	}
}

// isDeferred reports whether call is the call of a defer statement.
func isDeferred(parents map[ast.Node]ast.Node, call *ast.CallExpr) bool {
	d, ok := parents[call].(*ast.DeferStmt)
	return ok && d.Call == call
}
