package lint

import (
	"go/ast"
	"go/token"
)

// ObsGuard proves the observability layer's "free when off" contract
// shape-wise:
//
//  1. In the metrics kernel (any package named "obs"), every exported
//     method on a pointer receiver must either begin with a
//     nil-receiver guard (if r == nil { ... return }) or consist of a
//     single delegation to another method on the same receiver (whose
//     guard it inherits, e.g. Counter.Inc -> Counter.Add). A metric
//     method without its guard panics the instrumented hot path the
//     first time observability is disabled.
//
//  2. Everywhere: a span obtained from a Start() call (any method
//     returning a type named Span) must reach an End/EndWithTrace/
//     Done call on every return path of the enclosing function — a
//     span that escapes a return path silently under-counts its
//     histogram, which no runtime test notices. A deferred End
//     covers all paths; a span passed onward (stored, returned,
//     handed to another function) is assumed managed there.
var ObsGuard = &Analyzer{
	Name: "obsguard",
	Doc:  "nil-receiver guards on obs metric methods; spans must End on all return paths",
	Run:  runObsGuard,
}

// spanEnders are the methods that settle a span.
var spanEnders = map[string]bool{"End": true, "EndWithTrace": true, "Done": true}

func runObsGuard(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if pass.Pkg.Name == "obs" {
				checkNilGuard(pass, fd)
			}
			checkSpans(pass, fd)
		}
	}
}

// checkNilGuard enforces rule 1 on one declaration.
func checkNilGuard(pass *Pass, fd *ast.FuncDecl) {
	if fd.Recv == nil || len(fd.Recv.List) != 1 || !fd.Name.IsExported() {
		return
	}
	if _, ok := fd.Recv.List[0].Type.(*ast.StarExpr); !ok {
		return // value receivers carry their own zero-value semantics
	}
	recv := receiverName(fd)
	if recv == "" {
		pass.Reportf(fd.Name.Pos(), "exported method %s on a pointer metric type has an unnamed receiver and cannot nil-guard it", fd.Name.Name)
		return
	}
	if beginsWithNilGuard(fd, recv) || isTailDelegation(fd, recv) {
		return
	}
	pass.Reportf(fd.Name.Pos(), "exported method %s on a pointer metric type must begin with a nil-receiver guard (if %s == nil { ... })", fd.Name.Name, recv)
}

func receiverName(fd *ast.FuncDecl) string {
	names := fd.Recv.List[0].Names
	if len(names) != 1 || names[0].Name == "_" {
		return ""
	}
	return names[0].Name
}

// beginsWithNilGuard reports whether the first statement is an if
// whose condition checks recv == nil (directly or as an operand of a
// top-level ||) and whose body leaves the function.
func beginsWithNilGuard(fd *ast.FuncDecl, recv string) bool {
	if len(fd.Body.List) == 0 {
		return false
	}
	ifStmt, ok := fd.Body.List[0].(*ast.IfStmt)
	if !ok || !condChecksNil(ifStmt.Cond, recv) {
		return false
	}
	n := len(ifStmt.Body.List)
	return n > 0 && terminates(ifStmt.Body.List[n-1])
}

// condChecksNil looks for `recv == nil` among the top-level ||
// operands of cond.
func condChecksNil(cond ast.Expr, recv string) bool {
	switch e := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LOR:
			return condChecksNil(e.X, recv) || condChecksNil(e.Y, recv)
		case token.EQL:
			return isIdentNamed(e.X, recv) && isNilIdent(e.Y) ||
				isIdentNamed(e.Y, recv) && isNilIdent(e.X)
		}
	}
	return false
}

func isIdentNamed(e ast.Expr, name string) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == name
}

func isNilIdent(e ast.Expr) bool { return isIdentNamed(e, "nil") }

// isTailDelegation reports whether the body is a single call (or
// return of a call) to another method on the same receiver, which
// carries the guard on the callee's side.
func isTailDelegation(fd *ast.FuncDecl, recv string) bool {
	if len(fd.Body.List) != 1 {
		return false
	}
	var call *ast.CallExpr
	switch s := fd.Body.List[0].(type) {
	case *ast.ExprStmt:
		call, _ = s.X.(*ast.CallExpr)
	case *ast.ReturnStmt:
		if len(s.Results) == 1 {
			call, _ = s.Results[0].(*ast.CallExpr)
		}
	}
	if call == nil {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	return ok && isIdentNamed(sel.X, recv)
}

// checkSpans enforces rule 2 on one function declaration.
func checkSpans(pass *Pass, fd *ast.FuncDecl) {
	var starts []*ast.AssignStmt
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Start" {
			return true
		}
		if named, ok := deref(pass.TypeOf(call)); !ok || named != "Span" {
			return true
		}
		starts = append(starts, as)
		return true
	})
	for _, as := range starts {
		checkSpanEnds(pass, fd, as)
	}
}

// deref names the (possibly pointer-wrapped) named type of t.
func deref(t interface{ String() string }) (string, bool) {
	if t == nil {
		return "", false
	}
	s := t.String()
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '.' {
			return s[i+1:], true
		}
	}
	return s, s != ""
}

// checkSpanEnds verifies that the span assigned in start reaches an
// ender on every return path of fd.
func checkSpanEnds(pass *Pass, fd *ast.FuncDecl, start *ast.AssignStmt) {
	id := start.Lhs[0].(*ast.Ident)
	obj := pass.ObjectOf(id)
	if obj == nil {
		return
	}
	name := id.Name

	// Classify every use of the span variable. A use that is neither
	// the Start assignment, a reassignment, nor the receiver of an
	// ender means the span escapes our view — assume managed there.
	deferred := false
	escaped := false
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	var enderCalls []*ast.CallExpr
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		use, ok := n.(*ast.Ident)
		if !ok || pass.ObjectOf(use) != obj {
			return true
		}
		parent := parents[use]
		switch p := parent.(type) {
		case *ast.SelectorExpr:
			if spanEnders[p.Sel.Name] {
				if call, ok := parents[p].(*ast.CallExpr); ok && call.Fun == p {
					enderCalls = append(enderCalls, call)
					if isDeferred(parents, call) {
						deferred = true
					}
					return true
				}
			}
			escaped = true
		case *ast.AssignStmt:
			for _, l := range p.Lhs {
				if l == ast.Expr(use) {
					return true // (re)assignment
				}
			}
			escaped = true
		default:
			escaped = true
		}
		return true
	})
	if escaped || deferred {
		return
	}

	// Every return path lexically after the Start must pass an ender.
	exits := collectExits(fd, start)
	for _, exit := range exits {
		if !pathHasEnder(fd, start, exit, enderCalls, parents) {
			pass.Reportf(start.Pos(), "span %s started here does not reach %s.End() on the return path at line %d",
				name, name, pass.Fset.Position(exit.Pos()).Line)
		}
	}
}

// isDeferred reports whether call is the call of a defer statement.
func isDeferred(parents map[ast.Node]ast.Node, call *ast.CallExpr) bool {
	d, ok := parents[call].(*ast.DeferStmt)
	return ok && d.Call == call
}

// exitPoint is one way control leaves the function: a return
// statement, or the closing brace when the body can fall off the end.
type exitPoint struct {
	stmt ast.Stmt // nil for the implicit end-of-body exit
	pos  token.Pos
}

func (e exitPoint) Pos() token.Pos { return e.pos }

// collectExits gathers the return statements after start, plus the
// implicit fall-off-the-end exit for bodies that permit it.
func collectExits(fd *ast.FuncDecl, start *ast.AssignStmt) []exitPoint {
	var exits []exitPoint
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // nested function: its returns are not ours
		}
		if r, ok := n.(*ast.ReturnStmt); ok && r.Pos() > start.Pos() {
			exits = append(exits, exitPoint{stmt: r, pos: r.Pos()})
		}
		return true
	})
	n := len(fd.Body.List)
	if n == 0 || !terminates(fd.Body.List[n-1]) {
		exits = append(exits, exitPoint{pos: fd.Body.Rbrace})
	}
	return exits
}

// pathHasEnder walks from the exit back toward the Start assignment
// through the enclosing statement lists: some statement strictly
// between them must contain an ender call. Reaching the Start without
// one means this return path leaks the span.
func pathHasEnder(fd *ast.FuncDecl, start *ast.AssignStmt, exit exitPoint, enders []*ast.CallExpr, parents map[ast.Node]ast.Node) bool {
	containsEnder := func(s ast.Stmt) bool {
		for _, e := range enders {
			if s.Pos() <= e.Pos() && e.End() <= s.End() {
				return true
			}
		}
		return false
	}
	containsStart := func(s ast.Stmt) bool {
		return s.Pos() <= start.Pos() && start.End() <= s.End()
	}

	var path []ast.Node
	if exit.stmt != nil {
		path = pathTo(fd.Body, exit.stmt)
	} else {
		path = []ast.Node{fd.Body}
	}
	// cur walks up the ancestor chain; at each statement list we scan
	// the statements before cur's slot, newest first.
	for i := len(path) - 1; i >= 0; i-- {
		list := stmtList(path[i])
		if list == nil {
			continue
		}
		// Find the child of this list on the path (or, for the
		// implicit exit, scan the whole list).
		cut := len(list)
		if i+1 < len(path) || exit.stmt != nil {
			child := exit.stmt
			if i+1 < len(path) {
				child = nil
				if s, ok := path[i+1].(ast.Stmt); ok {
					child = s
				}
			}
			for k, s := range list {
				if s == child {
					cut = k
					break
				}
			}
		}
		for k := cut - 1; k >= 0; k-- {
			s := list[k]
			if containsEnder(s) {
				return true
			}
			if containsStart(s) {
				return false // reached Start with no ender in between
			}
		}
	}
	// The Start is not on the path to this exit (e.g. the return sits
	// in a sibling branch taken before the span begins).
	return true
}

// stmtList extracts the statement list a node owns, if any.
func stmtList(n ast.Node) []ast.Stmt {
	switch n := n.(type) {
	case *ast.BlockStmt:
		return n.List
	case *ast.CaseClause:
		return n.Body
	case *ast.CommClause:
		return n.Body
	}
	return nil
}
