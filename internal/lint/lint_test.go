package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The analyzer tests are golden-diagnostic tests in the analysistest
// style, stdlib-only: each fixture package under testdata/src/<name>
// marks its expected findings with
//
//	// want "regexp"
//	// want(+2) "regexp"
//
// A marker expects exactly one diagnostic on its own line (or, with
// the offset form, N lines below — needed by errflow, where a comment
// adjacent to the flagged line would itself satisfy the
// justification-comment rule and change the verdict). The runner
// fails on any unmatched marker AND on any unexpected diagnostic, so
// the fixtures pin both the positives and the negatives.

var wantRe = regexp.MustCompile(`// want(?:\(\+(\d+)\))? "([^"]*)"`)

type expectation struct {
	file string // base name within the fixture dir
	line int    // expected diagnostic line
	re   *regexp.Regexp
	raw  string
	hit  bool
}

// loadExpectations scans every fixture file for want markers.
func loadExpectations(t *testing.T, dir string) []*expectation {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	var wants []*expectation
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatalf("reading fixture: %v", err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				offset := 0
				if m[1] != "" {
					for _, c := range m[1] {
						offset = offset*10 + int(c-'0')
					}
				}
				re, err := regexp.Compile(m[2])
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %q: %v", e.Name(), i+1, m[2], err)
				}
				wants = append(wants, &expectation{
					file: e.Name(),
					line: i + 1 + offset,
					re:   re,
					raw:  m[2],
				})
			}
		}
	}
	if len(wants) == 0 {
		t.Fatalf("fixture %s has no // want markers", dir)
	}
	return wants
}

// runFixture loads one standalone fixture package, runs a single
// analyzer over it, and compares the diagnostics against the want
// markers.
func runFixture(t *testing.T, a *Analyzer, name string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	l := newLoader()
	pkg, err := l.LoadDir(dir, name)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	idx := BuildIndex([]*Package{pkg})
	diags := Run([]*Package{pkg}, []*Analyzer{a}, idx)
	wants := loadExpectations(t, dir)

	for _, d := range diags {
		base := filepath.Base(d.Pos.Filename)
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == base && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic at %s:%d: [%s] %s", base, d.Pos.Line, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("missing diagnostic at %s:%d matching %q", w.file, w.line, w.raw)
		}
	}
}

func TestAllocFreeFixture(t *testing.T)  { runFixture(t, AllocFree, "allocfree") }
func TestObsGuardFixture(t *testing.T)   { runFixture(t, ObsGuard, "obsguard") }
func TestGuardedByFixture(t *testing.T)  { runFixture(t, GuardedBy, "guardedby") }
func TestErrFlowFixture(t *testing.T)    { runFixture(t, ErrFlow, "errflow") }
func TestPooledFixture(t *testing.T)     { runFixture(t, Pooled, "pooled") }
func TestPublishFixture(t *testing.T)    { runFixture(t, Publish, "publish") }
func TestSpawnGuardFixture(t *testing.T) { runFixture(t, SpawnGuard, "spawnguard") }
func TestLockOrderFixture(t *testing.T)  { runFixture(t, LockOrder, "lockorder") }

// TestRepoIsLintClean runs the full analyzer set over the whole
// module — the same check "make lint" performs — and demands zero
// findings. It keeps the tree at the bar the analyzers set.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module type-check is slow; skipped with -short")
	}
	l, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := l.LoadAll()
	if err != nil {
		t.Fatalf("LoadAll: %v", err)
	}
	diags := Run(pkgs, All, BuildIndex(pkgs))
	for _, d := range diags {
		t.Errorf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}
}

// TestFuncAnnotations pins the annotation grammar: the directive must
// be a doc-comment line of the form //coflow:<word>, the word ends at
// whitespace, and annotations stack.
func TestFuncAnnotations(t *testing.T) {
	src := `package p

//coflow:allocfree
//coflow:singlewriter trailing prose is ignored
func both() {}

// coflow:allocfree has a space and is NOT a directive
func spaced() {}

func bare() {}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "anns.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	got := map[string]map[string]bool{}
	for _, decl := range f.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok {
			got[fd.Name.Name] = FuncAnnotations(fd)
		}
	}
	if !got["both"]["allocfree"] || !got["both"]["singlewriter"] {
		t.Errorf("both: want allocfree+singlewriter, got %v", got["both"])
	}
	if len(got["spaced"]) != 0 {
		t.Errorf("spaced: want no annotations, got %v", got["spaced"])
	}
	if len(got["bare"]) != 0 {
		t.Errorf("bare: want no annotations, got %v", got["bare"])
	}
}
