// Package lint is the project's static-analysis framework: a
// stdlib-only (go/parser, go/ast, go/types, go/importer — no x/tools)
// multi-analyzer harness that proves the repo's performance and
// concurrency invariants at "make check" time, before any benchmark
// or fuzzer can observe a regression at runtime.
//
// Four project-specific analyzers ship with it (see their files):
//
//	allocfree  functions annotated //coflow:allocfree must not contain
//	           allocation-causing constructs (the static sibling of
//	           online.TestStepDoesNotAllocate)
//	obsguard   exported methods on internal/obs pointer metric types
//	           must begin with a nil-receiver guard, and every
//	           Histogram.Start span must reach End on all return paths
//	guardedby  struct fields annotated "// guarded by <mu>" may only
//	           be touched under that mutex or from a
//	           //coflow:singlewriter function
//	errflow    no silently discarded error returns; "_ =" needs an
//	           adjacent justification comment
//
// Annotation grammar (all annotations are ordinary comments):
//
//	//coflow:allocfree      on a function: its body must be
//	                        allocation-free (checked by allocfree,
//	                        gated against escape analysis by
//	                        cmd/escapecheck)
//	//coflow:singlewriter   on a function: it runs on the single
//	                        goroutine that owns the touched state
//	// guarded by <mu>      on a struct field: accesses require
//	                        <mu>.Lock()/RLock() in the same function,
//	                        or a //coflow:singlewriter function; when
//	                        <mu> is not a sibling sync.Mutex/RWMutex
//	                        field, it names a serialization domain and
//	                        only //coflow:singlewriter functions
//	                        qualify
//
// Suppression: a diagnostic is silenced by
//
//	//lint:ignore <analyzer> <reason>
//
// either trailing the offending line or on the line directly above
// it. The reason is mandatory — a reasonless ignore is itself a
// diagnostic — so every suppression in the tree documents why the
// construct is acceptable.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// All is the shipped analyzer set, in the order cmd/coflowvet runs
// them.
var All = []*Analyzer{AllocFree, ObsGuard, GuardedBy, ErrFlow}

// Diagnostic is one analyzer finding at a resolved source position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// Analyzer is one named check run over every loaded package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass carries everything one analyzer needs for one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkg      *Package
	Index    *Index

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the static type of e, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Pkg.Info.TypeOf(e) }

// ObjectOf returns the object an identifier denotes, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if o := p.Pkg.Info.Defs[id]; o != nil {
		return o
	}
	return p.Pkg.Info.Uses[id]
}

// Index is the module-wide annotation index shared by every pass:
// which function objects carry which //coflow: annotations. It spans
// packages — the loader shares type objects across the load, so a
// call in internal/online to a function annotated in internal/matrix
// resolves to the same *types.Func the index recorded.
type Index struct {
	funcs map[types.Object]map[string]bool
}

// BuildIndex scans every package's function declarations for
// //coflow:<word> annotations.
func BuildIndex(pkgs []*Package) *Index {
	idx := &Index{funcs: map[types.Object]map[string]bool{}}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				anns := FuncAnnotations(fd)
				if len(anns) == 0 {
					continue
				}
				if obj := pkg.Info.Defs[fd.Name]; obj != nil {
					idx.funcs[obj] = anns
				}
			}
		}
	}
	return idx
}

// Annotated reports whether the function object carries the
// annotation (e.g. "allocfree").
func (idx *Index) Annotated(obj types.Object, ann string) bool {
	if idx == nil || obj == nil {
		return false
	}
	return idx.funcs[obj][ann]
}

// FuncAnnotations extracts the //coflow:<word> annotations from a
// function's doc comment.
func FuncAnnotations(fd *ast.FuncDecl) map[string]bool {
	if fd.Doc == nil {
		return nil
	}
	var anns map[string]bool
	for _, c := range fd.Doc.List {
		rest, ok := strings.CutPrefix(c.Text, "//coflow:")
		if !ok {
			continue
		}
		word := strings.TrimSpace(rest)
		if i := strings.IndexAny(word, " \t"); i >= 0 {
			word = word[:i]
		}
		if word == "" {
			continue
		}
		if anns == nil {
			anns = map[string]bool{}
		}
		anns[word] = true
	}
	return anns
}

// ignoreRe matches the suppression directive: analyzer name (or
// "all"), then the mandatory free-text reason.
var ignoreRe = regexp.MustCompile(`^//lint:ignore\s+(\S+)[ \t]*(.*)$`)

// ignore is one parsed //lint:ignore directive.
type ignore struct {
	analyzer string
	reason   string
	pos      token.Position
}

// collectIgnores gathers the suppression directives of a package,
// keyed by filename and line. A directive suppresses matching
// diagnostics on its own line and on the line directly below it.
func collectIgnores(fset *token.FileSet, pkg *Package) map[string]map[int][]ignore {
	out := map[string]map[int][]ignore{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				byLine := out[pos.Filename]
				if byLine == nil {
					byLine = map[int][]ignore{}
					out[pos.Filename] = byLine
				}
				ig := ignore{analyzer: m[1], reason: strings.TrimSpace(m[2]), pos: pos}
				byLine[pos.Line] = append(byLine[pos.Line], ig)
			}
		}
	}
	return out
}

// Run executes the analyzers over the packages, applies the
// //lint:ignore suppressions, reports reasonless suppressions as
// diagnostics of the framework itself (analyzer "lint"), and returns
// the surviving diagnostics sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer, index *Index) []Diagnostic {
	var raw []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Pkg:      pkg,
				Index:    index,
				diags:    &raw,
			}
			a.Run(pass)
		}
	}
	var out []Diagnostic
	for _, pkg := range pkgs {
		ignores := collectIgnores(pkg.Fset, pkg)
		for _, byLine := range ignores {
			for _, igs := range byLine {
				for _, ig := range igs {
					if ig.reason == "" {
						out = append(out, Diagnostic{
							Pos:      ig.pos,
							Analyzer: "lint",
							Message:  "//lint:ignore " + ig.analyzer + " needs a reason",
						})
					}
				}
			}
		}
		for _, d := range raw {
			if !inPackage(pkg, d.Pos.Filename) {
				continue
			}
			if suppressed(ignores, d) {
				continue
			}
			out = append(out, d)
		}
	}
	sort.Slice(out, func(a, b int) bool {
		da, db := out[a], out[b]
		if da.Pos.Filename != db.Pos.Filename {
			return da.Pos.Filename < db.Pos.Filename
		}
		if da.Pos.Line != db.Pos.Line {
			return da.Pos.Line < db.Pos.Line
		}
		if da.Pos.Column != db.Pos.Column {
			return da.Pos.Column < db.Pos.Column
		}
		return da.Analyzer < db.Analyzer
	})
	return out
}

// suppressed reports whether an ignore directive covers d: same
// analyzer (or "all"), on d's line or the line above.
func suppressed(ignores map[string]map[int][]ignore, d Diagnostic) bool {
	byLine := ignores[d.Pos.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
		for _, ig := range byLine[line] {
			if ig.reason != "" && (ig.analyzer == d.Analyzer || ig.analyzer == "all") {
				return true
			}
		}
	}
	return false
}

// inPackage reports whether filename belongs to pkg (used to
// re-associate a flat diagnostic list with per-package suppression
// tables).
func inPackage(pkg *Package, filename string) bool {
	for _, f := range pkg.Files {
		if pkg.Fset.Position(f.Pos()).Filename == filename {
			return true
		}
	}
	return false
}
