// Package lint is the project's static-analysis framework: a
// stdlib-only (go/parser, go/ast, go/types, go/importer — no x/tools)
// multi-analyzer harness that proves the repo's performance and
// concurrency invariants at "make check" time, before any benchmark
// or fuzzer can observe a regression at runtime.
//
// Eight project-specific analyzers ship with it (see their files).
// The first four are syntactic; the last four (and the span half of
// obsguard) are flow-sensitive, built on the intraprocedural CFG +
// bit-vector dataflow engine in cfg.go / flow.go:
//
//	allocfree  functions annotated //coflow:allocfree must not contain
//	           allocation-causing constructs (the static sibling of
//	           online.TestStepDoesNotAllocate)
//	obsguard   exported methods on internal/obs pointer metric types
//	           must begin with a nil-receiver guard, and every
//	           Histogram.Start span must reach End on all return paths
//	guardedby  struct fields annotated "// guarded by <mu>" may only
//	           be touched under that mutex or from a
//	           //coflow:singlewriter function
//	errflow    no silently discarded error returns; "_ =" needs an
//	           adjacent justification comment
//	pooled     values returned by //coflow:pooled functions alias
//	           recycled storage: they may not escape (fields, globals,
//	           channels, closures, returns from unannotated functions)
//	           and may not be used past the next invalidating call on
//	           the same receiver, unless laundered through a
//	           //coflow:clones function
//	publish    values reaching atomic.Pointer Store/CompareAndSwap (or
//	           a //coflow:published sink) must be frozen: no writes
//	           through any alias after publication on any CFG path
//	spawnguard goroutines and escaping closures created inside a
//	           //coflow:singlewriter function may not touch
//	           serialization-domain-guarded fields, and must take the
//	           lock themselves for mutex-guarded ones
//	lockorder  the module-wide mutex acquisition graph must be acyclic
//	           and upgrade-free (no RLock→Lock on any path)
//
// Annotation grammar (all annotations are ordinary comments):
//
//	//coflow:allocfree      on a function: its body must be
//	                        allocation-free (checked by allocfree,
//	                        gated against escape analysis by
//	                        cmd/escapecheck)
//	//coflow:singlewriter   on a function: it runs on the single
//	                        goroutine that owns the touched state
//	//coflow:pooled         on a function: its pointer results alias
//	                        pool storage owned by the receiver, valid
//	                        only until the next pooled call on the
//	                        same receiver (checked by pooled)
//	//coflow:clones         on a function: it deep-copies its pooled
//	                        arguments, so the result owns its storage
//	//coflow:published      on a function: pointer arguments passed to
//	                        it are published to other goroutines and
//	                        must be frozen (checked by publish)
//	// guarded by <mu>      on a struct field: accesses require
//	                        <mu>.Lock()/RLock() in the same function,
//	                        or a //coflow:singlewriter function; when
//	                        <mu> is not a sibling sync.Mutex/RWMutex
//	                        field, it names a serialization domain and
//	                        only //coflow:singlewriter functions
//	                        qualify (goroutines spawned inside those
//	                        functions are checked by spawnguard)
//
// Suppression: a diagnostic is silenced by
//
//	//lint:ignore <analyzer> <reason>
//
// either trailing the offending line or on the line directly above
// it. The reason is mandatory — a reasonless ignore is itself a
// diagnostic — so every suppression in the tree documents why the
// construct is acceptable.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// All is the shipped analyzer set, in the order cmd/coflowvet runs
// them.
var All = []*Analyzer{AllocFree, ObsGuard, GuardedBy, ErrFlow, Pooled, Publish, SpawnGuard, LockOrder}

// Diagnostic is one analyzer finding at a resolved source position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	// Severity is "error" (the default: fails the build gate) or
	// "warning" (reported and counted, same exit code, but flagged
	// for readers and machine consumers as advisory).
	Severity string
	Message  string
}

// Analyzer is one named check. Per-package analyzers set Run;
// module-wide analyzers (lockorder, which needs the cross-package
// call graph) set RunModule instead and are invoked once per load.
type Analyzer struct {
	Name      string
	Doc       string
	Run       func(*Pass)
	RunModule func(*ModulePass)
}

// Pass carries everything one analyzer needs for one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkg      *Package
	Index    *Index

	diags *[]Diagnostic
}

// Reportf records an error-severity diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Severity: "error",
		Message:  fmt.Sprintf(format, args...),
	})
}

// Warnf records a warning-severity diagnostic at pos.
func (p *Pass) Warnf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Severity: "warning",
		Message:  fmt.Sprintf(format, args...),
	})
}

// ModulePass carries everything a module-wide analyzer needs: every
// loaded package at once (they share one FileSet and one type-object
// space, so cross-package call edges resolve).
type ModulePass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkgs     []*Package
	Index    *Index

	diags *[]Diagnostic
}

// Reportf records an error-severity diagnostic at pos.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Severity: "error",
		Message:  fmt.Sprintf(format, args...),
	})
}

// Warnf records a warning-severity diagnostic at pos.
func (p *ModulePass) Warnf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Severity: "warning",
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the static type of e, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Pkg.Info.TypeOf(e) }

// ObjectOf returns the object an identifier denotes, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if o := p.Pkg.Info.Defs[id]; o != nil {
		return o
	}
	return p.Pkg.Info.Uses[id]
}

// Index is the module-wide annotation index shared by every pass:
// which function objects carry which //coflow: annotations. It spans
// packages — the loader shares type objects across the load, so a
// call in internal/online to a function annotated in internal/matrix
// resolves to the same *types.Func the index recorded.
type Index struct {
	funcs map[types.Object]map[string]bool
}

// BuildIndex scans every package's function declarations for
// //coflow:<word> annotations.
func BuildIndex(pkgs []*Package) *Index {
	idx := &Index{funcs: map[types.Object]map[string]bool{}}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				anns := FuncAnnotations(fd)
				if len(anns) == 0 {
					continue
				}
				if obj := pkg.Info.Defs[fd.Name]; obj != nil {
					idx.funcs[obj] = anns
				}
			}
		}
	}
	return idx
}

// Annotated reports whether the function object carries the
// annotation (e.g. "allocfree").
func (idx *Index) Annotated(obj types.Object, ann string) bool {
	if idx == nil || obj == nil {
		return false
	}
	return idx.funcs[obj][ann]
}

// FuncAnnotations extracts the //coflow:<word> annotations from a
// function's doc comment.
func FuncAnnotations(fd *ast.FuncDecl) map[string]bool {
	if fd.Doc == nil {
		return nil
	}
	var anns map[string]bool
	for _, c := range fd.Doc.List {
		rest, ok := strings.CutPrefix(c.Text, "//coflow:")
		if !ok {
			continue
		}
		word := strings.TrimSpace(rest)
		if i := strings.IndexAny(word, " \t"); i >= 0 {
			word = word[:i]
		}
		if word == "" {
			continue
		}
		if anns == nil {
			anns = map[string]bool{}
		}
		anns[word] = true
	}
	return anns
}

// ignoreRe matches the suppression directive: analyzer name (or
// "all"), then the mandatory free-text reason.
var ignoreRe = regexp.MustCompile(`^//lint:ignore\s+(\S+)[ \t]*(.*)$`)

// ignore is one parsed //lint:ignore directive.
type ignore struct {
	analyzer string
	reason   string
	pos      token.Position
}

// collectIgnores gathers the suppression directives of a package,
// keyed by filename and line. A directive suppresses matching
// diagnostics on its own line and on the line directly below it.
func collectIgnores(fset *token.FileSet, pkg *Package) map[string]map[int][]ignore {
	out := map[string]map[int][]ignore{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				byLine := out[pos.Filename]
				if byLine == nil {
					byLine = map[int][]ignore{}
					out[pos.Filename] = byLine
				}
				ig := ignore{analyzer: m[1], reason: strings.TrimSpace(m[2]), pos: pos}
				byLine[pos.Line] = append(byLine[pos.Line], ig)
			}
		}
	}
	return out
}

// Run executes the analyzers over the packages, applies the
// //lint:ignore suppressions, reports reasonless suppressions as
// diagnostics of the framework itself (analyzer "lint"), and returns
// the surviving diagnostics sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer, index *Index) []Diagnostic {
	var raw []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Pkg:      pkg,
				Index:    index,
				diags:    &raw,
			}
			a.Run(pass)
		}
	}
	if len(pkgs) > 0 {
		for _, a := range analyzers {
			if a.RunModule == nil {
				continue
			}
			a.RunModule(&ModulePass{
				Analyzer: a,
				Fset:     pkgs[0].Fset,
				Pkgs:     pkgs,
				Index:    index,
				diags:    &raw,
			})
		}
	}
	var out []Diagnostic
	for _, pkg := range pkgs {
		ignores := collectIgnores(pkg.Fset, pkg)
		for _, byLine := range ignores {
			for _, igs := range byLine {
				for _, ig := range igs {
					if ig.reason == "" {
						out = append(out, Diagnostic{
							Pos:      ig.pos,
							Analyzer: "lint",
							Severity: "error",
							Message:  "//lint:ignore " + ig.analyzer + " needs a reason",
						})
					}
				}
			}
		}
		for _, d := range raw {
			if !inPackage(pkg, d.Pos.Filename) {
				continue
			}
			if suppressed(ignores, d) {
				continue
			}
			out = append(out, d)
		}
	}
	sort.Slice(out, func(a, b int) bool {
		da, db := out[a], out[b]
		if da.Pos.Filename != db.Pos.Filename {
			return da.Pos.Filename < db.Pos.Filename
		}
		if da.Pos.Line != db.Pos.Line {
			return da.Pos.Line < db.Pos.Line
		}
		if da.Pos.Column != db.Pos.Column {
			return da.Pos.Column < db.Pos.Column
		}
		return da.Analyzer < db.Analyzer
	})
	return out
}

// suppressed reports whether an ignore directive covers d: same
// analyzer (or "all"), on d's line or the line above.
func suppressed(ignores map[string]map[int][]ignore, d Diagnostic) bool {
	byLine := ignores[d.Pos.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
		for _, ig := range byLine[line] {
			if ig.reason != "" && (ig.analyzer == d.Analyzer || ig.analyzer == "all") {
				return true
			}
		}
	}
	return false
}

// Suppression is one //lint:ignore directive, surfaced for the
// `coflowvet -ignores` audit listing so grandfathered suppressions
// stay visible.
type Suppression struct {
	Pos      token.Position
	Analyzer string
	Reason   string
}

// Suppressions returns every //lint:ignore directive in the packages,
// sorted by position.
func Suppressions(pkgs []*Package) []Suppression {
	var out []Suppression
	for _, pkg := range pkgs {
		for _, byLine := range collectIgnores(pkg.Fset, pkg) {
			for _, igs := range byLine {
				for _, ig := range igs {
					out = append(out, Suppression{Pos: ig.pos, Analyzer: ig.analyzer, Reason: ig.reason})
				}
			}
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Pos.Filename != out[b].Pos.Filename {
			return out[a].Pos.Filename < out[b].Pos.Filename
		}
		return out[a].Pos.Line < out[b].Pos.Line
	})
	return out
}

// inPackage reports whether filename belongs to pkg (used to
// re-associate a flat diagnostic list with per-package suppression
// tables).
func inPackage(pkg *Package, filename string) bool {
	for _, f := range pkg.Files {
		if pkg.Fset.Position(f.Pos()).Filename == filename {
			return true
		}
	}
	return false
}
