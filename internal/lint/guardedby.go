package lint

import (
	"go/ast"
	"go/types"
	"regexp"
)

// GuardedBy checks the repo's concurrency annotations: a struct
// field commented
//
//	// guarded by <mu>
//
// may only be read or written in a function that locks <mu>
// (<mu>.Lock() or <mu>.RLock() on the same base expression as the
// access), or in a function annotated //coflow:singlewriter — the
// daemon's event-loop discipline, where one goroutine owns all the
// mutable state and no lock exists to take.
//
// When <mu> names a sibling field of type sync.Mutex or sync.RWMutex
// the lock requirement applies; any other guard name (e.g. "eventloop")
// declares a pure serialization domain in which ONLY
// //coflow:singlewriter functions may touch the field.
//
// The lock check is lexical, not flow-sensitive: a Lock anywhere in
// the accessing function satisfies it. That is exactly the right
// strength for this codebase's small critical sections, and wrong
// code still has to say something out loud to pass.
var GuardedBy = &Analyzer{
	Name: "guardedby",
	Doc:  "fields annotated 'guarded by <mu>' are only touched under the lock or by //coflow:singlewriter functions",
	Run:  runGuardedBy,
}

var guardRe = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_]*)`)

// guardInfo describes one annotated field.
type guardInfo struct {
	guard   string // guard name from the annotation
	isMutex bool   // guard resolves to a sibling sync.Mutex/RWMutex field
}

func runGuardedBy(pass *Pass) {
	guarded := collectGuardedFields(pass)
	if len(guarded) == 0 {
		return
	}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkGuardedAccesses(pass, fd, guarded)
		}
	}
}

// collectGuardedFields scans the package's struct declarations for
// "guarded by" field annotations (in the field's doc comment or its
// trailing line comment).
func collectGuardedFields(pass *Pass) map[types.Object]guardInfo {
	out := map[types.Object]guardInfo{}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			for _, field := range st.Fields.List {
				guard := fieldGuard(field)
				if guard == "" {
					continue
				}
				info := guardInfo{guard: guard, isMutex: siblingMutex(pass, st, guard)}
				for _, name := range field.Names {
					if obj := pass.Pkg.Info.Defs[name]; obj != nil {
						out[obj] = info
					}
				}
			}
			return true
		})
	}
	return out
}

// fieldGuard extracts the guard name from a field's comments.
func fieldGuard(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// siblingMutex reports whether the struct has a field named guard of
// type sync.Mutex or sync.RWMutex.
func siblingMutex(pass *Pass, st *ast.StructType, guard string) bool {
	for _, field := range st.Fields.List {
		for _, name := range field.Names {
			if name.Name != guard {
				continue
			}
			t := pass.TypeOf(field.Type)
			if t == nil {
				return false
			}
			s := t.String()
			return s == "sync.Mutex" || s == "sync.RWMutex"
		}
	}
	return false
}

// checkGuardedAccesses vets every guarded-field selector in fd.
func checkGuardedAccesses(pass *Pass, fd *ast.FuncDecl, guarded map[types.Object]guardInfo) {
	singleWriter := FuncAnnotations(fd)["singlewriter"]
	var locks map[string]bool
	if !singleWriter {
		locks = collectLockedPrefixes(fd)
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj := pass.Pkg.Info.Uses[sel.Sel]
		info, ok := guarded[obj]
		if !ok {
			return true
		}
		if singleWriter {
			return true
		}
		if info.isMutex {
			if base := exprString(sel.X); base != "" && locks[base+"."+info.guard] {
				return true
			}
			pass.Reportf(sel.Sel.Pos(), "field %s is guarded by %s but the access does not hold %s.%s (no %s.%s.Lock/RLock in %s, which is not //coflow:singlewriter)",
				sel.Sel.Name, info.guard, describeExpr(sel.X), info.guard, describeExpr(sel.X), info.guard, fd.Name.Name)
			return true
		}
		pass.Reportf(sel.Sel.Pos(), "field %s is guarded by the %q serialization domain but %s is not annotated //coflow:singlewriter",
			sel.Sel.Name, info.guard, fd.Name.Name)
		return true
	})
}

// collectLockedPrefixes gathers "base.mu" strings for every
// base.mu.Lock() / base.mu.RLock() call in the function.
func collectLockedPrefixes(fd *ast.FuncDecl) map[string]bool {
	return collectLockedPrefixesIn(fd.Body)
}

// collectLockedPrefixesIn is the body-level version, shared with
// spawnguard (which vets closure bodies, not declarations).
func collectLockedPrefixesIn(body ast.Node) map[string]bool {
	locks := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		if prefix := exprString(sel.X); prefix != "" {
			locks[prefix] = true
		}
		return true
	})
	return locks
}
