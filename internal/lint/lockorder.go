package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LockOrder builds the module-wide mutex acquisition graph and
// rejects the two shapes that deadlock at runtime but pass every
// unit test that doesn't hit the exact interleaving:
//
//   - lock-order cycles: some path acquires class A while holding B
//     and another acquires B while holding A (lockdep-style, with a
//     lock "class" being the declared mutex variable or struct field
//     — all instances of shard.Cluster.mu are one class);
//   - lock upgrades: RLock held on a class while a path acquires
//     Lock on the same class — the reader blocks the writer it is
//     about to become.
//
// Held sets are tracked flow-sensitively per function over the CFG
// (a deferred Unlock keeps the lock held to function exit, which is
// what it does), and acquisition sets propagate transitively over
// the module-local call graph, so an edge through a helper call is
// still an edge. Goroutine bodies start with an empty held set —
// they are their own threads. Two documented blind spots: closures
// invoked synchronously while the parent holds a lock are analyzed
// with an empty held set, and helper functions that return while
// still holding a lock do not extend the caller's held set.
var LockOrder = &Analyzer{
	Name:      "lockorder",
	Doc:       "the module-wide mutex acquisition graph must be acyclic and RLock→Lock upgrade-free",
	RunModule: runLockOrder,
}

func infoObjectOf(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Defs[id]; o != nil {
		return o
	}
	return info.Uses[id]
}

func isMutexType(t types.Type) bool {
	if t == nil {
		return false
	}
	s := strings.TrimPrefix(t.String(), "*")
	return s == "sync.Mutex" || s == "sync.RWMutex"
}

// lockClassObj resolves the receiver of a Lock/Unlock call to the
// declared variable or struct field that names the lock class.
func lockClassObj(info *types.Info, e ast.Expr) types.Object {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return infoObjectOf(info, x)
	case *ast.SelectorExpr:
		return infoObjectOf(info, x.Sel)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return lockClassObj(info, x.X)
		}
	case *ast.StarExpr:
		return lockClassObj(info, x.X)
	}
	return nil
}

// lockGraph accumulates classes, edges, and function summaries
// across the whole module.
type lockGraph struct {
	pass    *ModulePass
	classes map[types.Object]int
	names   []string
	// edges[from][to] = earliest acquisition position creating it.
	edges map[int]map[int]token.Pos
	// acq maps a module-local function to the lock/mode keys
	// (2*class for RLock, 2*class+1 for Lock) it may acquire,
	// directly or transitively.
	acq map[types.Object]map[int]bool
}

func (g *lockGraph) class(obj types.Object, pkgName string) int {
	if c, ok := g.classes[obj]; ok {
		return c
	}
	c := len(g.names)
	g.classes[obj] = c
	g.names = append(g.names, pkgName+"."+obj.Name())
	return c
}

func (g *lockGraph) addEdge(from, to int, pos token.Pos) {
	if from == to {
		return
	}
	m := g.edges[from]
	if m == nil {
		m = map[int]token.Pos{}
		g.edges[from] = m
	}
	if old, ok := m[to]; !ok || pos < old {
		m[to] = pos
	}
}

// mutexOp describes one Lock-family call.
type mutexOp struct {
	class int
	name  string // Lock, RLock, Unlock, RUnlock
}

// resolveMutexOp classifies call as a mutex operation, or ok=false.
func (g *lockGraph) resolveMutexOp(pkg *Package, call *ast.CallExpr) (mutexOp, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return mutexOp{}, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return mutexOp{}, false
	}
	if !isMutexType(pkg.Info.TypeOf(sel.X)) {
		return mutexOp{}, false
	}
	obj := lockClassObj(pkg.Info, sel.X)
	if obj == nil {
		return mutexOp{}, false
	}
	return mutexOp{class: g.class(obj, pkg.Name), name: sel.Sel.Name}, true
}

func runLockOrder(pass *ModulePass) {
	g := &lockGraph{
		pass:    pass,
		classes: map[types.Object]int{},
		edges:   map[int]map[int]token.Pos{},
		acq:     map[types.Object]map[int]bool{},
	}

	// Pass 1: direct acquisition summaries and the module-local call
	// graph. A function's summary includes its synchronous closures
	// but not its go-spawned ones (those run with their own empty
	// held set).
	calls := map[types.Object]map[types.Object]bool{}
	for _, pkg := range pass.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fobj := pkg.Info.Defs[fd.Name]
				if fobj == nil {
					continue
				}
				direct := map[int]bool{}
				fcalls := map[types.Object]bool{}
				spawned := goSpawnedLits(fd.Body)
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					if lit, ok := n.(*ast.FuncLit); ok && spawned[lit] {
						return false
					}
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if op, ok := g.resolveMutexOp(pkg, call); ok {
						switch op.name {
						case "Lock":
							direct[2*op.class+1] = true
						case "RLock":
							direct[2*op.class] = true
						}
						return true
					}
					if callee := calleeFuncInfo(pkg.Info, call); callee != nil {
						fcalls[callee] = true
					}
					return true
				})
				if len(direct) > 0 {
					g.acq[fobj] = direct
				}
				if len(fcalls) > 0 {
					calls[fobj] = fcalls
				}
			}
		}
	}
	// Transitive closure of acquisition sets over the call graph.
	for changed := true; changed; {
		changed = false
		for f, cs := range calls {
			for gfn := range cs {
				for k := range g.acq[gfn] {
					if !g.acq[f][k] {
						if g.acq[f] == nil {
							g.acq[f] = map[int]bool{}
						}
						g.acq[f][k] = true
						changed = true
					}
				}
			}
		}
	}

	// Pass 2: flow-sensitive held sets per function universe,
	// recording edges and upgrades.
	for _, pkg := range pass.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				forEachFuncBody(fd.Body, func(body *ast.BlockStmt) {
					g.analyzeBody(pkg, body)
				})
			}
		}
	}

	// Pass 3: report every acquisition edge that participates in a
	// cycle. (Run sorts diagnostics by position afterwards.)
	for from, tos := range g.edges {
		for to, pos := range tos {
			if g.pathExists(to, from) {
				pass.Reportf(pos, "lock-order cycle: acquiring %s while holding %s (an opposite-order path exists)", g.names[to], g.names[from])
			}
		}
	}
}

// goSpawnedLits collects the function literals launched directly via
// a go statement beneath root.
func goSpawnedLits(root ast.Node) map[*ast.FuncLit]bool {
	out := map[*ast.FuncLit]bool{}
	ast.Inspect(root, func(n ast.Node) bool {
		if gs, ok := n.(*ast.GoStmt); ok {
			if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
				out[lit] = true
			}
		}
		return true
	})
	return out
}

// calleeFuncInfo is calleeFunc for contexts that carry a types.Info
// instead of a Pass.
func calleeFuncInfo(info *types.Info, call *ast.CallExpr) *types.Func {
	fun := ast.Unparen(call.Fun)
	switch f := fun.(type) {
	case *ast.IndexExpr:
		fun = f.X
	case *ast.IndexListExpr:
		fun = f.X
	}
	var id *ast.Ident
	switch f := fun.(type) {
	case *ast.Ident:
		id = f
	case *ast.SelectorExpr:
		id = f.Sel
	default:
		return nil
	}
	fn, _ := infoObjectOf(info, id).(*types.Func)
	return fn
}

// analyzeBody runs the held-set dataflow over one function body and
// records edges/upgrades.
func (g *lockGraph) analyzeBody(pkg *Package, body *ast.BlockStmt) {
	// Cheap pre-scan: skip bodies with no mutex ops and no calls to
	// acquiring functions.
	interesting := false
	inspectShallow(body, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		if _, ok := g.resolveMutexOp(pkg, call); ok {
			interesting = true
		} else if callee := calleeFuncInfo(pkg.Info, call); callee != nil && len(g.acq[callee]) > 0 {
			interesting = true
		}
	})
	if !interesting {
		return
	}

	nClasses := len(g.names)
	heldClasses := func(state BitSet) []int {
		var held []int
		for c := 0; c < nClasses; c++ {
			if state.Has(2*c) || state.Has(2*c+1) {
				held = append(held, c)
			}
		}
		return held
	}
	step := func(n ast.Node, state BitSet, report bool) {
		switch n.(type) {
		case *ast.GoStmt:
			return // the spawned call runs with its own empty held set
		case *ast.DeferStmt:
			return // deferred Unlock releases at exit: held until then
		}
		inspectShallow(n, func(m ast.Node) {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return
			}
			if op, ok := g.resolveMutexOp(pkg, call); ok {
				switch op.name {
				case "Lock":
					if report {
						if state.Has(2 * op.class) {
							g.pass.Reportf(call.Pos(), "lock upgrade: %s.Lock() while an RLock on the same class may be held — the reader blocks the writer it is becoming", g.names[op.class])
						}
						for _, h := range heldClasses(state) {
							g.addEdge(h, op.class, call.Pos())
						}
					}
					state.Set(2*op.class + 1)
				case "RLock":
					if report {
						for _, h := range heldClasses(state) {
							g.addEdge(h, op.class, call.Pos())
						}
					}
					state.Set(2 * op.class)
				case "Unlock":
					state.Clear(2*op.class + 1)
				case "RUnlock":
					state.Clear(2 * op.class)
				}
				return
			}
			if !report {
				return
			}
			callee := calleeFuncInfo(pkg.Info, call)
			if callee == nil {
				return
			}
			for k := range g.acq[callee] {
				t := k / 2
				for _, h := range heldClasses(state) {
					g.addEdge(h, t, call.Pos())
				}
				if k%2 == 1 && state.Has(2*t) {
					g.pass.Reportf(call.Pos(), "lock upgrade: call acquires %s.Lock() while an RLock on the same class may be held", g.names[t])
				}
			}
		})
	}

	cfg := BuildCFG(body)
	nbits := 2 * nClasses
	if nbits == 0 {
		return
	}
	ins := cfg.ForwardMay(nbits, func(b *Block, out BitSet) {
		for _, n := range b.Nodes {
			step(n, out, false)
		}
	})
	for _, b := range cfg.Blocks {
		if !cfg.Reachable(b) {
			continue
		}
		state := ins[b.Index].Clone()
		for _, n := range b.Nodes {
			step(n, state, true)
		}
	}
}

// pathExists reports whether the acquisition graph has a path from
// src to dst.
func (g *lockGraph) pathExists(src, dst int) bool {
	seen := map[int]bool{src: true}
	stack := []int{src}
	for len(stack) > 0 {
		c := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if c == dst {
			return true
		}
		for to := range g.edges[c] {
			if !seen[to] {
				seen[to] = true
				stack = append(stack, to)
			}
		}
	}
	return false
}
