// Package matching implements bipartite maximum matching, the
// combinatorial substrate of the Birkhoff–von Neumann decomposition
// (paper §3.1, Algorithm 1 step 2).
//
// The central routine is Hopcroft–Karp, which finds a maximum matching
// in O(E·√V). PerfectOnSupport specializes it to the support graph of
// a non-negative matrix whose row and column sums are all equal; Hall's
// theorem guarantees a perfect matching exists there, and the function
// reports an error if the caller violated that precondition.
package matching

import (
	"fmt"

	"coflow/internal/matrix"
)

// Graph is a bipartite graph with n left vertices and n right
// vertices; Adj[u] lists the right-neighbours of left vertex u.
type Graph struct {
	N   int
	Adj [][]int
}

// NewGraph returns an empty bipartite graph on n+n vertices.
func NewGraph(n int) *Graph {
	return &Graph{N: n, Adj: make([][]int, n)}
}

// AddEdge adds an edge from left vertex u to right vertex v.
func (g *Graph) AddEdge(u, v int) {
	g.Adj[u] = append(g.Adj[u], v)
}

// SupportGraph returns the bipartite graph whose edges are the
// strictly positive entries of d (rows are left vertices, columns are
// right vertices). d must be square.
func SupportGraph(d *matrix.Matrix) *Graph {
	if d.Rows() != d.Cols() {
		panic(fmt.Sprintf("matching: SupportGraph needs a square matrix, got %d×%d", d.Rows(), d.Cols()))
	}
	g := NewGraph(d.Rows())
	for i := 0; i < d.Rows(); i++ {
		for j := 0; j < d.Cols(); j++ {
			if d.At(i, j) > 0 {
				g.AddEdge(i, j)
			}
		}
	}
	return g
}

const infDist = int(^uint(0) >> 1)

// HopcroftKarp computes a maximum matching of g. The result maps each
// left vertex to its matched right vertex, or matrix.Unmatched.
func HopcroftKarp(g *Graph) matrix.Permutation {
	n := g.N
	matchL := make([]int, n) // left -> right
	matchR := make([]int, n) // right -> left
	for i := range matchL {
		matchL[i] = matrix.Unmatched
		matchR[i] = matrix.Unmatched
	}
	dist := make([]int, n)
	queue := make([]int, 0, n)

	bfs := func() bool {
		queue = queue[:0]
		for u := 0; u < n; u++ {
			if matchL[u] == matrix.Unmatched {
				dist[u] = 0
				queue = append(queue, u)
			} else {
				dist[u] = infDist
			}
		}
		found := false
		for qi := 0; qi < len(queue); qi++ {
			u := queue[qi]
			for _, v := range g.Adj[u] {
				w := matchR[v]
				if w == matrix.Unmatched {
					found = true
				} else if dist[w] == infDist {
					dist[w] = dist[u] + 1
					queue = append(queue, w)
				}
			}
		}
		return found
	}

	var dfs func(u int) bool
	dfs = func(u int) bool {
		for _, v := range g.Adj[u] {
			w := matchR[v]
			if w == matrix.Unmatched || (dist[w] == dist[u]+1 && dfs(w)) {
				matchL[u] = v
				matchR[v] = u
				return true
			}
		}
		dist[u] = infDist
		return false
	}

	for bfs() {
		for u := 0; u < n; u++ {
			if matchL[u] == matrix.Unmatched {
				dfs(u)
			}
		}
	}
	return matrix.Permutation{To: matchL}
}

// MaxMatchingSize returns the cardinality of a maximum matching of g.
func MaxMatchingSize(g *Graph) int {
	return HopcroftKarp(g).Size()
}

// PerfectOnSupport finds a perfect matching on the support of d. The
// caller must ensure one exists — in Algorithm 1 this follows from
// Hall's theorem because every row and column of the augmented matrix
// sums to ρ > 0. A non-nil error means the precondition was violated.
func PerfectOnSupport(d *matrix.Matrix) (matrix.Permutation, error) {
	p := HopcroftKarp(SupportGraph(d))
	if !p.IsPerfect() {
		return matrix.Permutation{}, fmt.Errorf("matching: support of %d×%d matrix admits no perfect matching (matched %d of %d rows)",
			d.Rows(), d.Cols(), p.Size(), d.Rows())
	}
	return p, nil
}

// BruteForceMaxMatching computes a maximum matching by exhaustive
// search. Exponential; only for cross-checking Hopcroft–Karp in tests
// (n ≤ ~10).
func BruteForceMaxMatching(g *Graph) int {
	usedR := make([]bool, g.N)
	var rec func(u int) int
	rec = func(u int) int {
		if u == g.N {
			return 0
		}
		best := rec(u + 1) // leave u unmatched
		for _, v := range g.Adj[u] {
			if !usedR[v] {
				usedR[v] = true
				if got := 1 + rec(u+1); got > best {
					best = got
				}
				usedR[v] = false
			}
		}
		return best
	}
	return rec(0)
}

// HallViolator returns a subset of left vertices S with |N(S)| < |S|
// if one exists (certifying that no perfect matching exists), or nil.
// Exponential; for tests and diagnostics on small graphs. Graph size
// is caller input, so an oversized graph is an error, not a panic.
func HallViolator(g *Graph) ([]int, error) {
	n := g.N
	if n > 20 {
		return nil, fmt.Errorf("matching: HallViolator limited to n <= 20, got %d", n)
	}
	for mask := 1; mask < 1<<uint(n); mask++ {
		var s []int
		nb := make(map[int]bool)
		for u := 0; u < n; u++ {
			if mask&(1<<uint(u)) != 0 {
				s = append(s, u)
				for _, v := range g.Adj[u] {
					nb[v] = true
				}
			}
		}
		if len(nb) < len(s) {
			return s, nil
		}
	}
	return nil, nil
}
