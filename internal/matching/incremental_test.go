package matching

import (
	"math/rand"
	"testing"

	"coflow/internal/matrix"
)

// checkMatching verifies p is a valid matching on the theta-threshold
// graph of d and returns its cardinality.
func checkMatching(t testing.TB, d *matrix.Matrix, theta int64, p matrix.Permutation) int {
	t.Helper()
	n := d.Rows()
	usedR := make([]bool, n)
	size := 0
	for u, v := range p.To {
		if v == matrix.Unmatched {
			continue
		}
		if v < 0 || v >= n {
			t.Fatalf("match %d→%d out of range", u, v)
		}
		if usedR[v] {
			t.Fatalf("right vertex %d matched twice", v)
		}
		usedR[v] = true
		if d.At(u, v) < theta {
			t.Fatalf("match %d→%d is not an edge (d=%d < θ=%d)", u, v, d.At(u, v), theta)
		}
		size++
	}
	return size
}

// mutate applies one random shrink or grow step to d: shrinking zeroes
// or decrements a positive entry (the BvN/slot-drain direction the warm
// start is tuned for), growing raises a random entry. Roughly 2/3 of
// the steps shrink so sequences drift toward sparse supports.
func mutate(rng *rand.Rand, d *matrix.Matrix) {
	n := d.Rows()
	i, j := rng.Intn(n), rng.Intn(n)
	switch v := d.At(i, j); {
	case rng.Intn(3) != 0 && v > 0:
		if rng.Intn(2) == 0 {
			d.Set(i, j, 0) // drop the edge entirely
		} else {
			d.Set(i, j, v-1)
		}
	default:
		d.Set(i, j, v+int64(1+rng.Intn(4)))
	}
}

// TestMatcherMatchesBruteForce is the satellite property test: across
// 1000 random shrink/grow demand sequences, a single warm-started
// Matcher must report the same maximum-matching cardinality as the
// exponential brute-force reference on every intermediate graph, and
// every matching it returns must be valid.
func TestMatcherMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const sequences = 1000
	for seq := 0; seq < sequences; seq++ {
		n := 2 + rng.Intn(5) // brute force is exponential: keep n ≤ 6
		d := matrix.NewSquare(n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if rng.Intn(3) == 0 {
					d.Set(i, j, int64(1+rng.Intn(5)))
				}
			}
		}
		mt := NewMatcher(n)
		steps := 1 + rng.Intn(12)
		for s := 0; s < steps; s++ {
			mutate(rng, d)
			p := mt.MatchSupport(d)
			got := checkMatching(t, d, 1, p)
			want := BruteForceMaxMatching(SupportGraph(d))
			if got != want {
				t.Fatalf("seq %d step %d: warm matcher found %d, brute force %d on\n%v",
					seq, s, got, want, d)
			}
		}
	}
}

// TestMatcherThresholdMatchesBruteForce covers MatchSupportAtLeast, the
// entry point the bottleneck-extraction binary search probes with a
// moving θ on a fixed matrix — the other warm-start pattern in the
// pipeline (edges only ever disappear as θ rises, then the whole edge
// set changes for the next term).
func TestMatcherThresholdMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for seq := 0; seq < 200; seq++ {
		n := 2 + rng.Intn(5)
		d := matrix.NewSquare(n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if rng.Intn(2) == 0 {
					d.Set(i, j, int64(1+rng.Intn(6)))
				}
			}
		}
		mt := NewMatcher(n)
		for theta := int64(1); theta <= 6; theta++ {
			p := mt.MatchSupportAtLeast(d, theta)
			got := checkMatching(t, d, theta, p)
			ref := NewGraph(n)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if d.At(i, j) >= theta {
						ref.AddEdge(i, j)
					}
				}
			}
			if want := BruteForceMaxMatching(ref); got != want {
				t.Fatalf("seq %d θ=%d: warm matcher found %d, brute force %d on\n%v",
					seq, theta, got, want, d)
			}
		}
	}
}

// TestMatcherAgreesWithColdHopcroftKarp cross-checks the warm engine
// against the package's cold solver on larger graphs where brute force
// is out of reach (cardinality only — matchings themselves may differ).
func TestMatcherAgreesWithColdHopcroftKarp(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for seq := 0; seq < 50; seq++ {
		n := 10 + rng.Intn(30)
		d := matrix.NewSquare(n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if rng.Intn(4) == 0 {
					d.Set(i, j, int64(1+rng.Intn(3)))
				}
			}
		}
		mt := NewMatcher(n)
		for s := 0; s < 20; s++ {
			mutate(rng, d)
			got := checkMatching(t, d, 1, mt.MatchSupport(d))
			if want := HopcroftKarp(SupportGraph(d)).Size(); got != want {
				t.Fatalf("seq %d step %d: warm %d, cold %d", seq, s, got, want)
			}
		}
	}
}

// FuzzMatcherWarmStart drives one warm-started Matcher through an
// arbitrary byte-encoded mutation sequence and checks every
// intermediate result against brute force. Each triple of bytes is one
// step: (row, col, new value mod 4) on a 4×4 matrix — zero values
// delete edges, so the fuzzer explores adversarial shrink/grow
// interleavings far from the monotone pattern the warm start is tuned
// for.
func FuzzMatcherWarmStart(f *testing.F) {
	f.Add([]byte{0, 0, 1})
	f.Add([]byte{0, 0, 1, 0, 0, 0})                   // add then delete
	f.Add([]byte{0, 1, 2, 1, 0, 2, 0, 0, 1, 1, 1, 1}) // crossing pairs
	f.Add([]byte{3, 3, 3, 2, 2, 1, 1, 1, 2, 0, 0, 3, 3, 3, 0})
	f.Fuzz(func(t *testing.T, steps []byte) {
		const n = 4
		d := matrix.NewSquare(n)
		mt := NewMatcher(n)
		for s := 0; s+2 < len(steps); s += 3 {
			i := int(steps[s]) % n
			j := int(steps[s+1]) % n
			d.Set(i, j, int64(steps[s+2]%4))
			p := mt.MatchSupport(d)
			got := checkMatching(t, d, 1, p)
			if want := BruteForceMaxMatching(SupportGraph(d)); got != want {
				t.Fatalf("step %d: warm matcher found %d, brute force %d on\n%v",
					s/3, got, want, d)
			}
		}
	})
}

// TestMatcherExternalAdjacency exercises the caller-owned adjacency
// path used by the incremental BvN decomposer: install a CSR view via
// SetAdjacency, shrink it in place with swap-deletes + Unmatch, and
// repair one row at a time with AugmentRow. Every intermediate
// matching must match brute force on the equivalent graph.
func TestMatcherExternalAdjacency(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for seq := 0; seq < 200; seq++ {
		n := 2 + rng.Intn(5)
		// Dense-ish random support; keep a parallel dense matrix as
		// the reference edge set.
		d := matrix.NewSquare(n)
		off := make([]int32, n)
		length := make([]int32, n)
		dat := make([]int32, 0, n*n)
		for i := 0; i < n; i++ {
			off[i] = int32(len(dat))
			for j := 0; j < n; j++ {
				if rng.Intn(3) != 0 {
					d.Set(i, j, 1)
					dat = append(dat, int32(j))
				}
			}
			length[i] = int32(len(dat)) - off[i]
		}
		mt := NewMatcher(n)
		mt.SetAdjacency(off, length, dat)
		got := mt.Rematch()
		if want := BruteForceMaxMatching(SupportGraph(d)); got != want {
			t.Fatalf("seq %d cold: got %d want %d", seq, got, want)
		}
		if got != mt.MatchedCount() {
			t.Fatalf("seq %d: Rematch %d vs MatchedCount %d", seq, got, mt.MatchedCount())
		}
		dst := make([]int, n)
		checkMatching(t, d, 1, mt.MatchingInto(dst))

		// Now delete random edges one at a time, repairing per row.
		for step := 0; step < 3*n; step++ {
			// Pick a random live edge (row with length > 0).
			rows := make([]int, 0, n)
			for i := 0; i < n; i++ {
				if length[i] > 0 {
					rows = append(rows, i)
				}
			}
			if len(rows) == 0 {
				break
			}
			u := rows[rng.Intn(len(rows))]
			k := off[u] + int32(rng.Intn(int(length[u])))
			v := int(dat[k])
			// Swap-delete the edge from the live view.
			last := off[u] + length[u] - 1
			dat[k] = dat[last]
			length[u]--
			d.Set(u, v, 0)
			mt.Unmatch(u, v)
			// Per the AugmentRow contract: on a non-perfect matching a
			// failed u-rooted search needs the Rematch fallback.
			if !mt.AugmentRow(u) {
				mt.Rematch()
			}
			got := mt.MatchedCount()
			if want := BruteForceMaxMatching(SupportGraph(d)); got != want {
				t.Fatalf("seq %d step %d: after deleting (%d,%d) got %d want %d",
					seq, step, u, v, got, want)
			}
			checkMatching(t, d, 1, mt.MatchingInto(dst))
		}
	}
}

// TestMatcherRepairRematch checks the bulk external-adjacency repair:
// shrink the view arbitrarily (without telling the matcher which
// edges died) and let RepairRematch rediscover a maximum matching.
func TestMatcherRepairRematch(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for seq := 0; seq < 200; seq++ {
		n := 2 + rng.Intn(5)
		d := matrix.NewSquare(n)
		off := make([]int32, n)
		length := make([]int32, n)
		dat := make([]int32, 0, n*n)
		for i := 0; i < n; i++ {
			off[i] = int32(len(dat))
			for j := 0; j < n; j++ {
				if rng.Intn(2) == 0 {
					d.Set(i, j, 1)
					dat = append(dat, int32(j))
				}
			}
			length[i] = int32(len(dat)) - off[i]
		}
		mt := NewMatcher(n)
		mt.SetAdjacency(off, length, dat)
		mt.Rematch()
		// Truncate random rows in place, then bulk-repair.
		for i := 0; i < n; i++ {
			for length[i] > 0 && rng.Intn(3) == 0 {
				v := int(dat[off[i]+length[i]-1])
				length[i]--
				d.Set(i, v, 0)
			}
		}
		got := mt.RepairRematch()
		if want := BruteForceMaxMatching(SupportGraph(d)); got != want {
			t.Fatalf("seq %d: repaired %d want %d", seq, got, want)
		}
		dst := make([]int, n)
		checkMatching(t, d, 1, mt.MatchingInto(dst))
	}
}

// TestMatcherMatchedCountTracksMatchSupport pins the O(1) cardinality
// counter against the returned permutation across warm-started calls
// through the matrix entry point.
func TestMatcherMatchedCountTracksMatchSupport(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	n := 6
	d := matrix.NewSquare(n)
	mt := NewMatcher(n)
	for s := 0; s < 300; s++ {
		mutate(rng, d)
		p := mt.MatchSupport(d)
		if got, want := mt.MatchedCount(), p.Size(); got != want {
			t.Fatalf("step %d: MatchedCount %d, permutation size %d", s, got, want)
		}
	}
}
