package matching

import (
	"math/rand"
	"testing"

	"coflow/internal/matrix"
)

// checkMatching verifies p is a valid matching on the theta-threshold
// graph of d and returns its cardinality.
func checkMatching(t testing.TB, d *matrix.Matrix, theta int64, p matrix.Permutation) int {
	t.Helper()
	n := d.Rows()
	usedR := make([]bool, n)
	size := 0
	for u, v := range p.To {
		if v == matrix.Unmatched {
			continue
		}
		if v < 0 || v >= n {
			t.Fatalf("match %d→%d out of range", u, v)
		}
		if usedR[v] {
			t.Fatalf("right vertex %d matched twice", v)
		}
		usedR[v] = true
		if d.At(u, v) < theta {
			t.Fatalf("match %d→%d is not an edge (d=%d < θ=%d)", u, v, d.At(u, v), theta)
		}
		size++
	}
	return size
}

// mutate applies one random shrink or grow step to d: shrinking zeroes
// or decrements a positive entry (the BvN/slot-drain direction the warm
// start is tuned for), growing raises a random entry. Roughly 2/3 of
// the steps shrink so sequences drift toward sparse supports.
func mutate(rng *rand.Rand, d *matrix.Matrix) {
	n := d.Rows()
	i, j := rng.Intn(n), rng.Intn(n)
	switch v := d.At(i, j); {
	case rng.Intn(3) != 0 && v > 0:
		if rng.Intn(2) == 0 {
			d.Set(i, j, 0) // drop the edge entirely
		} else {
			d.Set(i, j, v-1)
		}
	default:
		d.Set(i, j, v+int64(1+rng.Intn(4)))
	}
}

// TestMatcherMatchesBruteForce is the satellite property test: across
// 1000 random shrink/grow demand sequences, a single warm-started
// Matcher must report the same maximum-matching cardinality as the
// exponential brute-force reference on every intermediate graph, and
// every matching it returns must be valid.
func TestMatcherMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const sequences = 1000
	for seq := 0; seq < sequences; seq++ {
		n := 2 + rng.Intn(5) // brute force is exponential: keep n ≤ 6
		d := matrix.NewSquare(n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if rng.Intn(3) == 0 {
					d.Set(i, j, int64(1+rng.Intn(5)))
				}
			}
		}
		mt := NewMatcher(n)
		steps := 1 + rng.Intn(12)
		for s := 0; s < steps; s++ {
			mutate(rng, d)
			p := mt.MatchSupport(d)
			got := checkMatching(t, d, 1, p)
			want := BruteForceMaxMatching(SupportGraph(d))
			if got != want {
				t.Fatalf("seq %d step %d: warm matcher found %d, brute force %d on\n%v",
					seq, s, got, want, d)
			}
		}
	}
}

// TestMatcherThresholdMatchesBruteForce covers MatchSupportAtLeast, the
// entry point the bottleneck-extraction binary search probes with a
// moving θ on a fixed matrix — the other warm-start pattern in the
// pipeline (edges only ever disappear as θ rises, then the whole edge
// set changes for the next term).
func TestMatcherThresholdMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for seq := 0; seq < 200; seq++ {
		n := 2 + rng.Intn(5)
		d := matrix.NewSquare(n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if rng.Intn(2) == 0 {
					d.Set(i, j, int64(1+rng.Intn(6)))
				}
			}
		}
		mt := NewMatcher(n)
		for theta := int64(1); theta <= 6; theta++ {
			p := mt.MatchSupportAtLeast(d, theta)
			got := checkMatching(t, d, theta, p)
			ref := NewGraph(n)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if d.At(i, j) >= theta {
						ref.AddEdge(i, j)
					}
				}
			}
			if want := BruteForceMaxMatching(ref); got != want {
				t.Fatalf("seq %d θ=%d: warm matcher found %d, brute force %d on\n%v",
					seq, theta, got, want, d)
			}
		}
	}
}

// TestMatcherAgreesWithColdHopcroftKarp cross-checks the warm engine
// against the package's cold solver on larger graphs where brute force
// is out of reach (cardinality only — matchings themselves may differ).
func TestMatcherAgreesWithColdHopcroftKarp(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for seq := 0; seq < 50; seq++ {
		n := 10 + rng.Intn(30)
		d := matrix.NewSquare(n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if rng.Intn(4) == 0 {
					d.Set(i, j, int64(1+rng.Intn(3)))
				}
			}
		}
		mt := NewMatcher(n)
		for s := 0; s < 20; s++ {
			mutate(rng, d)
			got := checkMatching(t, d, 1, mt.MatchSupport(d))
			if want := HopcroftKarp(SupportGraph(d)).Size(); got != want {
				t.Fatalf("seq %d step %d: warm %d, cold %d", seq, s, got, want)
			}
		}
	}
}

// FuzzMatcherWarmStart drives one warm-started Matcher through an
// arbitrary byte-encoded mutation sequence and checks every
// intermediate result against brute force. Each triple of bytes is one
// step: (row, col, new value mod 4) on a 4×4 matrix — zero values
// delete edges, so the fuzzer explores adversarial shrink/grow
// interleavings far from the monotone pattern the warm start is tuned
// for.
func FuzzMatcherWarmStart(f *testing.F) {
	f.Add([]byte{0, 0, 1})
	f.Add([]byte{0, 0, 1, 0, 0, 0})                   // add then delete
	f.Add([]byte{0, 1, 2, 1, 0, 2, 0, 0, 1, 1, 1, 1}) // crossing pairs
	f.Add([]byte{3, 3, 3, 2, 2, 1, 1, 1, 2, 0, 0, 3, 3, 3, 0})
	f.Fuzz(func(t *testing.T, steps []byte) {
		const n = 4
		d := matrix.NewSquare(n)
		mt := NewMatcher(n)
		for s := 0; s+2 < len(steps); s += 3 {
			i := int(steps[s]) % n
			j := int(steps[s+1]) % n
			d.Set(i, j, int64(steps[s+2]%4))
			p := mt.MatchSupport(d)
			got := checkMatching(t, d, 1, p)
			if want := BruteForceMaxMatching(SupportGraph(d)); got != want {
				t.Fatalf("step %d: warm matcher found %d, brute force %d on\n%v",
					s/3, got, want, d)
			}
		}
	})
}
