package matching

import (
	"fmt"

	"coflow/internal/matrix"
	"coflow/internal/obs"
)

// Matcher is a reusable, warm-started Hopcroft–Karp engine for the
// slot pipeline's repeated-matching workloads (the BvN extraction loop
// and the per-threshold probes of the bottleneck rule).
//
// Between calls it keeps (a) its scratch buffers — BFS levels, queue,
// CSR adjacency — so steady-state calls allocate only the returned
// permutation, and (b) the previous matching. Each call first repairs
// the previous matching against the new edge set (dropping pairs whose
// edge disappeared) and then augments from there. When the caller's
// demand shrinks monotonically — a BvN subtraction zeroes only matched
// entries, a daemon slot only drains served pairs — most repaired
// matchings are already maximum or one augmenting path away, so the
// amortized cost per call is O(changed entries) plus the adjacency
// scan, instead of a full O(E·√V) cold solve.
//
// A Matcher is NOT safe for concurrent use. Correctness never depends
// on the warm state: any valid partial matching extends to a maximum
// one via augmenting paths, so even an adversarial (grown) edge set
// yields a true maximum matching.
type Matcher struct {
	n              int
	matchL, matchR []int
	dist           []int
	queue          []int
	// Matcher-owned CSR adjacency, rebuilt (not reallocated) by the
	// matrix/graph entry points (MatchSupportAtLeast, MatchGraph).
	ownOff []int32
	ownDat []int32
	ownLen []int32

	// Active adjacency view the search routines run on: row u's live
	// neighbours are adjDat[adjOff[u] : adjOff[u]+adjLen[u]]. Either
	// the own* buffers above, or a caller-installed view
	// (SetAdjacency) that the caller mutates in place between calls.
	adjOff []int32
	adjLen []int32
	adjDat []int32

	// Kuhn scratch for single-row augmentation (AugmentRow): per
	// right-vertex visit stamps, bumped per call so no O(n) clear runs.
	mark  []int64
	stamp int64

	// matched is the live matching cardinality, maintained by every
	// mutation so perfection checks are O(1).
	matched int

	// obs counts warm-start effectiveness (see Obs). The zero value
	// is the disabled mode (nil-safe no-op counters).
	obs Obs
}

// Obs instruments the warm-start machinery: Calls counts matching
// solves, WarmHits the solves where the repaired previous matching
// was already maximum (zero Hopcroft–Karp phases ran — the pure
// warm-start win), Phases the total HK phases across all solves.
// Every field is a nil-safe obs metric; the zero Obs disables them.
type Obs struct {
	Calls    *obs.Counter
	WarmHits *obs.Counter
	Phases   *obs.Counter
}

// NewObs registers the matcher metrics on r (prefix coflow_matcher_)
// and returns the wired Obs. A nil registry yields the zero Obs.
func NewObs(r *obs.Registry) Obs {
	return Obs{
		Calls:    r.Counter("coflow_matcher_calls_total", "warm-started matching solves"),
		WarmHits: r.Counter("coflow_matcher_warm_start_hits_total", "solves where the repaired previous matching was already maximum"),
		Phases:   r.Counter("coflow_matcher_phases_total", "Hopcroft-Karp phases run across all solves"),
	}
}

// SetObs installs the instrumentation hooks; the zero Obs disables
// them. Not safe to call concurrently with matching.
func (mt *Matcher) SetObs(o Obs) { mt.obs = o }

// WarmStartHitRate returns WarmHits / Calls, or 0 before any call.
func (o *Obs) WarmStartHitRate() float64 {
	calls := o.Calls.Value()
	if calls == 0 {
		return 0
	}
	return float64(o.WarmHits.Value()) / float64(calls)
}

// NewMatcher returns a Matcher for bipartite graphs on n+n vertices
// with an empty warm matching.
func NewMatcher(n int) *Matcher {
	if n <= 0 {
		panic(fmt.Sprintf("matching: non-positive matcher size %d", n))
	}
	mt := &Matcher{
		n:      n,
		matchL: make([]int, n),
		matchR: make([]int, n),
		dist:   make([]int, n),
		queue:  make([]int, 0, n),
		ownOff: make([]int32, n+1),
		ownLen: make([]int32, n),
		mark:   make([]int64, n),
	}
	mt.Reset()
	return mt
}

// Reset forgets the warm matching; the next call runs cold.
//
//coflow:allocfree
func (mt *Matcher) Reset() {
	for i := range mt.matchL {
		mt.matchL[i] = matrix.Unmatched
		mt.matchR[i] = matrix.Unmatched
	}
	mt.matched = 0
}

// MatchSupport computes a maximum matching on the support graph of d
// (edges where d.At(i,j) > 0), warm-starting from the previous call.
func (mt *Matcher) MatchSupport(d *matrix.Matrix) matrix.Permutation {
	return mt.MatchSupportAtLeast(d, 1)
}

// MatchSupportAtLeast computes a maximum matching on the threshold
// graph {(i,j) : d.At(i,j) >= theta} of a square matrix d,
// warm-starting from the previous call. theta must be positive.
func (mt *Matcher) MatchSupportAtLeast(d *matrix.Matrix, theta int64) matrix.Permutation {
	mt.matchSupportAtLeast(d, theta)
	return matrix.Permutation{To: append([]int(nil), mt.matchL...)}
}

// MatchSupportAtLeastInto is MatchSupportAtLeast writing the matching
// into caller-owned dst (which must have length n): the
// allocation-free form for reusable-scratch callers. Perfection is
// checked allocation-free via MatchedCount() == n.
//
//coflow:allocfree
func (mt *Matcher) MatchSupportAtLeastInto(dst []int, d *matrix.Matrix, theta int64) matrix.Permutation {
	mt.matchSupportAtLeast(d, theta)
	copy(dst, mt.matchL)
	return matrix.Permutation{To: dst}
}

// matchSupportAtLeast solves the threshold-graph matching into the
// matcher's own matchL/matchR state.
//
//coflow:allocfree
func (mt *Matcher) matchSupportAtLeast(d *matrix.Matrix, theta int64) {
	if d.Rows() != d.Cols() || d.Rows() != mt.n {
		//lint:ignore allocfree the panic message formats once on a fatal size mismatch, never on the served path
		panic(fmt.Sprintf("matching: matcher size %d, matrix %d×%d", mt.n, d.Rows(), d.Cols()))
	}
	if theta <= 0 {
		//lint:ignore allocfree the panic message formats once on a fatal threshold misuse, never on the served path
		panic(fmt.Sprintf("matching: non-positive threshold %d", theta))
	}
	n := mt.n
	// Build CSR adjacency into the reusable buffers.
	mt.ownDat = mt.ownDat[:0]
	for i := 0; i < n; i++ {
		mt.ownOff[i] = int32(len(mt.ownDat))
		for j := 0; j < n; j++ {
			if d.At(i, j) >= theta {
				mt.ownDat = append(mt.ownDat, int32(j))
			}
		}
		mt.ownLen[i] = int32(len(mt.ownDat)) - mt.ownOff[i]
	}
	mt.ownOff[n] = int32(len(mt.ownDat))
	mt.useOwnAdj()
	// Repair the warm matching: drop pairs whose edge disappeared.
	for u := 0; u < n; u++ {
		if v := mt.matchL[u]; v != matrix.Unmatched && d.At(u, v) < theta {
			mt.matchL[u] = matrix.Unmatched
			mt.matchR[v] = matrix.Unmatched
			mt.matched--
		}
	}
	mt.augmentToMax()
}

// useOwnAdj points the active adjacency view at the matcher-owned CSR
// buffers built by the matrix/graph entry points.
//
//coflow:allocfree
func (mt *Matcher) useOwnAdj() {
	mt.adjOff = mt.ownOff
	mt.adjLen = mt.ownLen
	mt.adjDat = mt.ownDat
}

// MatchGraph computes a maximum matching of g, warm-starting from the
// previous call. g must have the matcher's size.
func (mt *Matcher) MatchGraph(g *Graph) matrix.Permutation {
	if g.N != mt.n {
		panic(fmt.Sprintf("matching: matcher size %d, graph size %d", mt.n, g.N))
	}
	n := mt.n
	mt.ownDat = mt.ownDat[:0]
	for u := 0; u < n; u++ {
		mt.ownOff[u] = int32(len(mt.ownDat))
		for _, v := range g.Adj[u] {
			mt.ownDat = append(mt.ownDat, int32(v))
		}
		mt.ownLen[u] = int32(len(mt.ownDat)) - mt.ownOff[u]
	}
	mt.ownOff[n] = int32(len(mt.ownDat))
	mt.useOwnAdj()
	for u := 0; u < n; u++ {
		v := mt.matchL[u]
		if v == matrix.Unmatched {
			continue
		}
		present := false
		for _, w := range g.Adj[u] {
			if w == v {
				present = true
				break
			}
		}
		if !present {
			mt.matchL[u] = matrix.Unmatched
			mt.matchR[v] = matrix.Unmatched
			mt.matched--
		}
	}
	mt.augmentToMax()
	return matrix.Permutation{To: append([]int(nil), mt.matchL...)}
}

// PerfectOnSupport is MatchSupport with the Hall precondition check of
// the package-level PerfectOnSupport.
func (mt *Matcher) PerfectOnSupport(d *matrix.Matrix) (matrix.Permutation, error) {
	p := mt.MatchSupport(d)
	if !p.IsPerfect() {
		return matrix.Permutation{}, fmt.Errorf("matching: support of %d×%d matrix admits no perfect matching (matched %d of %d rows)",
			d.Rows(), d.Cols(), p.Size(), d.Rows())
	}
	return p, nil
}

// augmentToMax runs Hopcroft–Karp phases over the active adjacency
// from the current (partial) matching until no augmenting path
// remains.
//
//coflow:allocfree
func (mt *Matcher) augmentToMax() {
	phases := int64(0)
	for mt.bfs() {
		phases++
		for u := 0; u < mt.n; u++ {
			if mt.matchL[u] == matrix.Unmatched && mt.dfs(u) {
				mt.matched++
			}
		}
	}
	mt.obs.Calls.Inc()
	mt.obs.Phases.Add(phases)
	if phases == 0 {
		mt.obs.WarmHits.Inc()
	}
}

// bfs builds the layered graph from free left vertices; it reports
// whether any augmenting path exists. The queue buffer is pre-sized at
// construction (≤ n vertices enter), so append never grows it.
//
//coflow:allocfree
func (mt *Matcher) bfs() bool {
	mt.queue = mt.queue[:0]
	for u := 0; u < mt.n; u++ {
		if mt.matchL[u] == matrix.Unmatched {
			mt.dist[u] = 0
			mt.queue = append(mt.queue, u)
		} else {
			mt.dist[u] = infDist
		}
	}
	found := false
	for qi := 0; qi < len(mt.queue); qi++ {
		u := mt.queue[qi]
		off := mt.adjOff[u]
		for _, v32 := range mt.adjDat[off : off+mt.adjLen[u]] {
			w := mt.matchR[v32]
			if w == matrix.Unmatched {
				found = true
			} else if mt.dist[w] == infDist {
				mt.dist[w] = mt.dist[u] + 1
				mt.queue = append(mt.queue, w)
			}
		}
	}
	return found
}

// dfs walks the layered graph looking for an augmenting path from u.
//
//coflow:allocfree
func (mt *Matcher) dfs(u int) bool {
	off := mt.adjOff[u]
	for _, v32 := range mt.adjDat[off : off+mt.adjLen[u]] {
		v := int(v32)
		w := mt.matchR[v]
		if w == matrix.Unmatched || (mt.dist[w] == mt.dist[u]+1 && mt.dfs(w)) {
			mt.matchL[u] = v
			mt.matchR[v] = u
			return true
		}
	}
	mt.dist[u] = infDist
	return false
}

// SetAdjacency installs a caller-owned CSR adjacency view: row u's
// live neighbours are dat[off[u] : off[u]+length[u]]. The caller may
// mutate the view in place (shrink lengths, swap-delete entries)
// between calls; the matcher only reads it. off and length must have
// at least n entries. The view stays active until the next
// MatchSupport*/MatchGraph call rebuilds the matcher-owned adjacency.
//
//coflow:allocfree
func (mt *Matcher) SetAdjacency(off, length, dat []int32) {
	mt.adjOff = off
	mt.adjLen = length
	mt.adjDat = dat
}

// Unmatch removes the pair (u, v) from the current matching if
// present; it is a no-op otherwise.
//
//coflow:allocfree
func (mt *Matcher) Unmatch(u, v int) {
	if u >= 0 && u < mt.n && mt.matchL[u] == v {
		mt.matchL[u] = matrix.Unmatched
		mt.matchR[v] = matrix.Unmatched
		mt.matched--
	}
}

// MatchedCount returns the cardinality of the current matching in
// O(1). The matching is perfect iff MatchedCount() == n.
//
//coflow:allocfree
func (mt *Matcher) MatchedCount() int { return mt.matched }

// AugmentRow tries to rematch the single free left vertex u with one
// Kuhn augmenting-path DFS over the active adjacency, reporting
// success. Unlike a full Hopcroft–Karp phase it costs O(reachable
// edges), which is the right tool when one matched edge just
// disappeared and the rest of the matching is intact. Calling it on an
// already-matched row reports true without searching.
//
// Maximality contract: if the matching was PERFECT before deleting
// matched edge (u, v) — the BvN extraction invariant — then u and v
// are the only free vertices, every augmenting path runs u→…→v, and a
// false return proves no perfect matching exists. If other vertices
// were already free, a path ending at the freed v from a different
// free row can escape the u-rooted search; such callers must fall
// back to Rematch on failure.
//
//coflow:allocfree
func (mt *Matcher) AugmentRow(u int) bool {
	if mt.matchL[u] != matrix.Unmatched {
		return true
	}
	mt.stamp++
	if mt.kuhn(u) {
		mt.matched++
		return true
	}
	return false
}

// kuhn is the single-source augmenting DFS behind AugmentRow. The
// mark/stamp pair gives O(1) per-call visited-set reset. At every
// depth a lookahead pass claims a free neighbour before any recursion
// runs, so the common repair (a short path to a just-freed column)
// never wanders depth-first through the matched bulk of the graph.
//
//coflow:allocfree
func (mt *Matcher) kuhn(u int) bool {
	off := mt.adjOff[u]
	adj := mt.adjDat[off : off+mt.adjLen[u]]
	for _, v32 := range adj {
		v := int(v32)
		if mt.matchR[v] == matrix.Unmatched && mt.mark[v] != mt.stamp {
			mt.mark[v] = mt.stamp
			mt.matchL[u] = v
			mt.matchR[v] = u
			return true
		}
	}
	for _, v32 := range adj {
		v := int(v32)
		if mt.mark[v] == mt.stamp {
			continue
		}
		mt.mark[v] = mt.stamp
		if mt.kuhn(mt.matchR[v]) {
			mt.matchL[u] = v
			mt.matchR[v] = u
			return true
		}
	}
	return false
}

// RepairRematch revalidates the warm matching against the ACTIVE
// adjacency (dropping matched pairs whose edge is gone), augments to
// maximum, and reports the resulting cardinality. This is the
// external-adjacency analogue of the repair step inside
// MatchSupportAtLeast: the caller mutates its SetAdjacency view, then
// asks for a repaired maximum matching without any CSR rebuild.
//
//coflow:allocfree
func (mt *Matcher) RepairRematch() int {
	for u := 0; u < mt.n; u++ {
		v := mt.matchL[u]
		if v == matrix.Unmatched {
			continue
		}
		present := false
		off := mt.adjOff[u]
		for _, w32 := range mt.adjDat[off : off+mt.adjLen[u]] {
			if int(w32) == v {
				present = true
				break
			}
		}
		if !present {
			mt.matchL[u] = matrix.Unmatched
			mt.matchR[v] = matrix.Unmatched
			mt.matched--
		}
	}
	mt.augmentToMax()
	return mt.matched
}

// Rematch augments the current matching to maximum over the active
// adjacency (no repair scan — the caller guarantees every matched
// edge is still live, e.g. because it called Unmatch for each removed
// edge) and reports the resulting cardinality.
//
//coflow:allocfree
func (mt *Matcher) Rematch() int {
	mt.augmentToMax()
	return mt.matched
}

// MatchingInto copies the current left-to-right assignment into dst
// (which must have length n) and returns it wrapped as a Permutation.
//
//coflow:allocfree
func (mt *Matcher) MatchingInto(dst []int) matrix.Permutation {
	copy(dst, mt.matchL)
	return matrix.Permutation{To: dst}
}
