package matching

import (
	"fmt"

	"coflow/internal/matrix"
	"coflow/internal/obs"
)

// Matcher is a reusable, warm-started Hopcroft–Karp engine for the
// slot pipeline's repeated-matching workloads (the BvN extraction loop
// and the per-threshold probes of the bottleneck rule).
//
// Between calls it keeps (a) its scratch buffers — BFS levels, queue,
// CSR adjacency — so steady-state calls allocate only the returned
// permutation, and (b) the previous matching. Each call first repairs
// the previous matching against the new edge set (dropping pairs whose
// edge disappeared) and then augments from there. When the caller's
// demand shrinks monotonically — a BvN subtraction zeroes only matched
// entries, a daemon slot only drains served pairs — most repaired
// matchings are already maximum or one augmenting path away, so the
// amortized cost per call is O(changed entries) plus the adjacency
// scan, instead of a full O(E·√V) cold solve.
//
// A Matcher is NOT safe for concurrent use. Correctness never depends
// on the warm state: any valid partial matching extends to a maximum
// one via augmenting paths, so even an adversarial (grown) edge set
// yields a true maximum matching.
type Matcher struct {
	n              int
	matchL, matchR []int
	dist           []int
	queue          []int
	// CSR adjacency of the current call, rebuilt (not reallocated)
	// every call.
	adjOff []int32
	adjDat []int32

	// obs counts warm-start effectiveness (see Obs). The zero value
	// is the disabled mode (nil-safe no-op counters).
	obs Obs
}

// Obs instruments the warm-start machinery: Calls counts matching
// solves, WarmHits the solves where the repaired previous matching
// was already maximum (zero Hopcroft–Karp phases ran — the pure
// warm-start win), Phases the total HK phases across all solves.
// Every field is a nil-safe obs metric; the zero Obs disables them.
type Obs struct {
	Calls    *obs.Counter
	WarmHits *obs.Counter
	Phases   *obs.Counter
}

// NewObs registers the matcher metrics on r (prefix coflow_matcher_)
// and returns the wired Obs. A nil registry yields the zero Obs.
func NewObs(r *obs.Registry) Obs {
	return Obs{
		Calls:    r.Counter("coflow_matcher_calls_total", "warm-started matching solves"),
		WarmHits: r.Counter("coflow_matcher_warm_start_hits_total", "solves where the repaired previous matching was already maximum"),
		Phases:   r.Counter("coflow_matcher_phases_total", "Hopcroft-Karp phases run across all solves"),
	}
}

// SetObs installs the instrumentation hooks; the zero Obs disables
// them. Not safe to call concurrently with matching.
func (mt *Matcher) SetObs(o Obs) { mt.obs = o }

// WarmStartHitRate returns WarmHits / Calls, or 0 before any call.
func (o *Obs) WarmStartHitRate() float64 {
	calls := o.Calls.Value()
	if calls == 0 {
		return 0
	}
	return float64(o.WarmHits.Value()) / float64(calls)
}

// NewMatcher returns a Matcher for bipartite graphs on n+n vertices
// with an empty warm matching.
func NewMatcher(n int) *Matcher {
	if n <= 0 {
		panic(fmt.Sprintf("matching: non-positive matcher size %d", n))
	}
	mt := &Matcher{
		n:      n,
		matchL: make([]int, n),
		matchR: make([]int, n),
		dist:   make([]int, n),
		queue:  make([]int, 0, n),
		adjOff: make([]int32, n+1),
	}
	mt.Reset()
	return mt
}

// Reset forgets the warm matching; the next call runs cold.
func (mt *Matcher) Reset() {
	for i := range mt.matchL {
		mt.matchL[i] = matrix.Unmatched
		mt.matchR[i] = matrix.Unmatched
	}
}

// MatchSupport computes a maximum matching on the support graph of d
// (edges where d.At(i,j) > 0), warm-starting from the previous call.
func (mt *Matcher) MatchSupport(d *matrix.Matrix) matrix.Permutation {
	return mt.MatchSupportAtLeast(d, 1)
}

// MatchSupportAtLeast computes a maximum matching on the threshold
// graph {(i,j) : d.At(i,j) >= theta} of a square matrix d,
// warm-starting from the previous call. theta must be positive.
func (mt *Matcher) MatchSupportAtLeast(d *matrix.Matrix, theta int64) matrix.Permutation {
	if d.Rows() != d.Cols() || d.Rows() != mt.n {
		panic(fmt.Sprintf("matching: matcher size %d, matrix %d×%d", mt.n, d.Rows(), d.Cols()))
	}
	if theta <= 0 {
		panic(fmt.Sprintf("matching: non-positive threshold %d", theta))
	}
	n := mt.n
	// Build CSR adjacency into the reusable buffers.
	mt.adjDat = mt.adjDat[:0]
	for i := 0; i < n; i++ {
		mt.adjOff[i] = int32(len(mt.adjDat))
		for j := 0; j < n; j++ {
			if d.At(i, j) >= theta {
				mt.adjDat = append(mt.adjDat, int32(j))
			}
		}
	}
	mt.adjOff[n] = int32(len(mt.adjDat))
	// Repair the warm matching: drop pairs whose edge disappeared.
	for u := 0; u < n; u++ {
		if v := mt.matchL[u]; v != matrix.Unmatched && d.At(u, v) < theta {
			mt.matchL[u] = matrix.Unmatched
			mt.matchR[v] = matrix.Unmatched
		}
	}
	mt.augmentToMax()
	return matrix.Permutation{To: append([]int(nil), mt.matchL...)}
}

// MatchGraph computes a maximum matching of g, warm-starting from the
// previous call. g must have the matcher's size.
func (mt *Matcher) MatchGraph(g *Graph) matrix.Permutation {
	if g.N != mt.n {
		panic(fmt.Sprintf("matching: matcher size %d, graph size %d", mt.n, g.N))
	}
	n := mt.n
	mt.adjDat = mt.adjDat[:0]
	for u := 0; u < n; u++ {
		mt.adjOff[u] = int32(len(mt.adjDat))
		for _, v := range g.Adj[u] {
			mt.adjDat = append(mt.adjDat, int32(v))
		}
	}
	mt.adjOff[n] = int32(len(mt.adjDat))
	for u := 0; u < n; u++ {
		v := mt.matchL[u]
		if v == matrix.Unmatched {
			continue
		}
		present := false
		for _, w := range g.Adj[u] {
			if w == v {
				present = true
				break
			}
		}
		if !present {
			mt.matchL[u] = matrix.Unmatched
			mt.matchR[v] = matrix.Unmatched
		}
	}
	mt.augmentToMax()
	return matrix.Permutation{To: append([]int(nil), mt.matchL...)}
}

// PerfectOnSupport is MatchSupport with the Hall precondition check of
// the package-level PerfectOnSupport.
func (mt *Matcher) PerfectOnSupport(d *matrix.Matrix) (matrix.Permutation, error) {
	p := mt.MatchSupport(d)
	if !p.IsPerfect() {
		return matrix.Permutation{}, fmt.Errorf("matching: support of %d×%d matrix admits no perfect matching (matched %d of %d rows)",
			d.Rows(), d.Cols(), p.Size(), d.Rows())
	}
	return p, nil
}

// augmentToMax runs Hopcroft–Karp phases over the CSR adjacency from
// the current (partial) matching until no augmenting path remains.
//
//coflow:allocfree
func (mt *Matcher) augmentToMax() {
	phases := int64(0)
	for mt.bfs() {
		phases++
		for u := 0; u < mt.n; u++ {
			if mt.matchL[u] == matrix.Unmatched {
				mt.dfs(u)
			}
		}
	}
	mt.obs.Calls.Inc()
	mt.obs.Phases.Add(phases)
	if phases == 0 {
		mt.obs.WarmHits.Inc()
	}
}

// bfs builds the layered graph from free left vertices; it reports
// whether any augmenting path exists. The queue buffer is pre-sized at
// construction (≤ n vertices enter), so append never grows it.
//
//coflow:allocfree
func (mt *Matcher) bfs() bool {
	mt.queue = mt.queue[:0]
	for u := 0; u < mt.n; u++ {
		if mt.matchL[u] == matrix.Unmatched {
			mt.dist[u] = 0
			mt.queue = append(mt.queue, u)
		} else {
			mt.dist[u] = infDist
		}
	}
	found := false
	for qi := 0; qi < len(mt.queue); qi++ {
		u := mt.queue[qi]
		for _, v32 := range mt.adjDat[mt.adjOff[u]:mt.adjOff[u+1]] {
			w := mt.matchR[v32]
			if w == matrix.Unmatched {
				found = true
			} else if mt.dist[w] == infDist {
				mt.dist[w] = mt.dist[u] + 1
				mt.queue = append(mt.queue, w)
			}
		}
	}
	return found
}

// dfs walks the layered graph looking for an augmenting path from u.
//
//coflow:allocfree
func (mt *Matcher) dfs(u int) bool {
	for _, v32 := range mt.adjDat[mt.adjOff[u]:mt.adjOff[u+1]] {
		v := int(v32)
		w := mt.matchR[v]
		if w == matrix.Unmatched || (mt.dist[w] == mt.dist[u]+1 && mt.dfs(w)) {
			mt.matchL[u] = v
			mt.matchR[v] = u
			return true
		}
	}
	mt.dist[u] = infDist
	return false
}
