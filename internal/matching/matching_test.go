package matching

import (
	"math/rand"
	"testing"
	"testing/quick"

	"coflow/internal/matrix"
)

func TestHopcroftKarpTrivial(t *testing.T) {
	g := NewGraph(1)
	g.AddEdge(0, 0)
	p := HopcroftKarp(g)
	if !p.IsPerfect() {
		t.Fatalf("single edge not matched: %+v", p)
	}
}

func TestHopcroftKarpNoEdges(t *testing.T) {
	g := NewGraph(3)
	p := HopcroftKarp(g)
	if p.Size() != 0 {
		t.Fatalf("matching on empty graph has size %d", p.Size())
	}
}

func TestHopcroftKarpPerfectCycle(t *testing.T) {
	// 0-1, 1-2, 2-0 plus identity edges: perfect matching exists.
	g := NewGraph(3)
	for i := 0; i < 3; i++ {
		g.AddEdge(i, i)
		g.AddEdge(i, (i+1)%3)
	}
	p := HopcroftKarp(g)
	if !p.IsPerfect() {
		t.Fatalf("expected perfect matching, got %+v", p)
	}
}

func TestHopcroftKarpHallViolation(t *testing.T) {
	// Left {0,1} both only connect to right 0: max matching is 2 via…
	// no — it is 1. Vertex 2 connects everywhere.
	g := NewGraph(3)
	g.AddEdge(0, 0)
	g.AddEdge(1, 0)
	g.AddEdge(2, 0)
	g.AddEdge(2, 1)
	g.AddEdge(2, 2)
	p := HopcroftKarp(g)
	if p.Size() != 2 {
		t.Fatalf("max matching size = %d, want 2", p.Size())
	}
	if !p.IsValid() {
		t.Fatalf("invalid matching %+v", p)
	}
	if v, err := HallViolator(g); err != nil || v == nil {
		t.Fatalf("expected a Hall violator, got (%v, %v)", v, err)
	}
}

func TestHopcroftKarpAugmentingPath(t *testing.T) {
	// Classic case requiring an augmenting path of length 3:
	// 0: {0}, 1: {0,1}. Greedy may match 1-0 first.
	g := NewGraph(2)
	g.AddEdge(1, 0)
	g.AddEdge(1, 1)
	g.AddEdge(0, 0)
	p := HopcroftKarp(g)
	if !p.IsPerfect() {
		t.Fatalf("expected perfect matching, got %+v", p)
	}
	if p.To[0] != 0 || p.To[1] != 1 {
		t.Fatalf("expected 0->0, 1->1, got %+v", p)
	}
}

func randomGraph(rng *rand.Rand, n int, pEdge float64) *Graph {
	g := NewGraph(n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if rng.Float64() < pEdge {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

func TestHopcroftKarpMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(7)
		g := randomGraph(rng, n, 0.1+0.8*rng.Float64())
		want := BruteForceMaxMatching(g)
		p := HopcroftKarp(g)
		if !p.IsValid() {
			t.Fatalf("trial %d: invalid matching %+v", trial, p)
		}
		if p.Size() != want {
			t.Fatalf("trial %d: HK size %d, brute force %d (n=%d adj=%v)",
				trial, p.Size(), want, n, g.Adj)
		}
	}
}

func TestHopcroftKarpRespectsEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(10)
		g := randomGraph(r, n, 0.5)
		has := make(map[[2]int]bool)
		for u, vs := range g.Adj {
			for _, v := range vs {
				has[[2]int{u, v}] = true
			}
		}
		p := HopcroftKarp(g)
		for u, v := range p.To {
			if v != matrix.Unmatched && !has[[2]int{u, v}] {
				return false
			}
		}
		return p.IsValid()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestSupportGraph(t *testing.T) {
	d := matrix.MustFromRows([][]int64{
		{0, 5},
		{3, 0},
	})
	g := SupportGraph(d)
	if len(g.Adj[0]) != 1 || g.Adj[0][0] != 1 {
		t.Fatalf("row 0 adjacency wrong: %v", g.Adj[0])
	}
	if len(g.Adj[1]) != 1 || g.Adj[1][0] != 0 {
		t.Fatalf("row 1 adjacency wrong: %v", g.Adj[1])
	}
}

func TestSupportGraphPanicsNonSquare(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("SupportGraph on non-square did not panic")
		}
	}()
	SupportGraph(matrix.New(2, 3))
}

func TestPerfectOnSupportDoublyStochastic(t *testing.T) {
	// All row/col sums equal 3 → perfect matching must exist.
	d := matrix.MustFromRows([][]int64{
		{1, 2, 0},
		{2, 0, 1},
		{0, 1, 2},
	})
	p, err := PerfectOnSupport(d)
	if err != nil {
		t.Fatal(err)
	}
	if !p.IsPerfect() {
		t.Fatalf("not perfect: %+v", p)
	}
	for i, j := range p.To {
		if d.At(i, j) == 0 {
			t.Fatalf("matched a zero entry (%d,%d)", i, j)
		}
	}
}

func TestPerfectOnSupportFailure(t *testing.T) {
	d := matrix.MustFromRows([][]int64{
		{1, 0},
		{1, 0},
	})
	if _, err := PerfectOnSupport(d); err == nil {
		t.Fatal("expected error when no perfect matching exists")
	}
}

// Property: on any matrix with all row and column sums equal and
// positive, the support admits a perfect matching (Hall via the
// Birkhoff–von Neumann argument). This is the precondition Algorithm 1
// relies on after augmentation.
func TestPerfectMatchingOnBalancedMatrices(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(6)
		// Build a balanced matrix as a sum of random permutation
		// matrices with random multiplicities.
		d := matrix.NewSquare(n)
		perms := 1 + rng.Intn(4)
		for p := 0; p < perms; p++ {
			perm := rng.Perm(n)
			q := int64(1 + rng.Intn(5))
			for i, j := range perm {
				d.Add(i, j, q)
			}
		}
		if _, err := PerfectOnSupport(d); err != nil {
			t.Fatalf("trial %d: %v (matrix %v)", trial, err, d)
		}
	}
}

func TestMaxMatchingSize(t *testing.T) {
	g := NewGraph(2)
	g.AddEdge(0, 0)
	g.AddEdge(1, 0)
	if got := MaxMatchingSize(g); got != 1 {
		t.Fatalf("MaxMatchingSize = %d, want 1", got)
	}
}

func TestHallViolatorNilWhenPerfect(t *testing.T) {
	g := NewGraph(2)
	g.AddEdge(0, 0)
	g.AddEdge(1, 1)
	if v, err := HallViolator(g); err != nil || v != nil {
		t.Fatalf("unexpected violator (%v, %v)", v, err)
	}
}

func TestHallViolatorErrorsOnOversizedGraph(t *testing.T) {
	if _, err := HallViolator(NewGraph(21)); err == nil {
		t.Fatal("no error for n > 20")
	}
}

func BenchmarkHopcroftKarpDense150(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	g := randomGraph(rng, 150, 0.2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		HopcroftKarp(g)
	}
}
