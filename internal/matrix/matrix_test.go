package matrix

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewDimensions(t *testing.T) {
	m := New(3, 4)
	if m.Rows() != 3 || m.Cols() != 4 {
		t.Fatalf("got %d×%d, want 3×4", m.Rows(), m.Cols())
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("fresh matrix not zero at (%d,%d)", i, j)
			}
		}
	}
}

func TestNewPanicsOnBadDims(t *testing.T) {
	for _, dims := range [][2]int{{0, 1}, {1, 0}, {-1, 2}, {2, -3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) did not panic", dims[0], dims[1])
				}
			}()
			New(dims[0], dims[1])
		}()
	}
}

func TestFromRows(t *testing.T) {
	m, err := FromRows([][]int64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Fatalf("wrong entries: %v", m)
	}
}

func TestFromRowsErrors(t *testing.T) {
	if _, err := FromRows(nil); err == nil {
		t.Error("nil rows accepted")
	}
	if _, err := FromRows([][]int64{{}}); err == nil {
		t.Error("empty row accepted")
	}
	if _, err := FromRows([][]int64{{1, 2}, {3}}); err == nil {
		t.Error("ragged rows accepted")
	}
	if _, err := FromRows([][]int64{{1, -2}}); err == nil {
		t.Error("negative entry accepted")
	}
}

func TestSetNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Set(-1) did not panic")
		}
	}()
	New(2, 2).Set(0, 0, -1)
}

func TestAddGuardsNegative(t *testing.T) {
	m := New(2, 2)
	m.Set(0, 0, 5)
	m.Add(0, 0, -3)
	if m.At(0, 0) != 2 {
		t.Fatalf("Add: got %d, want 2", m.At(0, 0))
	}
	defer func() {
		if recover() == nil {
			t.Error("Add below zero did not panic")
		}
	}()
	m.Add(0, 0, -3)
}

func TestSums(t *testing.T) {
	m := MustFromRows([][]int64{
		{1, 2, 0},
		{0, 3, 4},
	})
	if got := m.RowSum(0); got != 3 {
		t.Errorf("RowSum(0) = %d, want 3", got)
	}
	if got := m.RowSum(1); got != 7 {
		t.Errorf("RowSum(1) = %d, want 7", got)
	}
	if got := m.ColSum(1); got != 5 {
		t.Errorf("ColSum(1) = %d, want 5", got)
	}
	wantRows := []int64{3, 7}
	for i, w := range wantRows {
		if m.RowSums()[i] != w {
			t.Errorf("RowSums()[%d] = %d, want %d", i, m.RowSums()[i], w)
		}
	}
	wantCols := []int64{1, 5, 4}
	for j, w := range wantCols {
		if m.ColSums()[j] != w {
			t.Errorf("ColSums()[%d] = %d, want %d", j, m.ColSums()[j], w)
		}
	}
	if m.Total() != 10 {
		t.Errorf("Total = %d, want 10", m.Total())
	}
}

func TestLoadPaperExample(t *testing.T) {
	// The Figure 1 coflow [[1,2],[2,1]] has ρ = 3 and can be cleared
	// in exactly 3 matchings.
	d := MustFromRows([][]int64{{1, 2}, {2, 1}})
	if got := d.Load(); got != 3 {
		t.Fatalf("Load = %d, want 3", got)
	}
}

func TestLoadColumnDominates(t *testing.T) {
	d := MustFromRows([][]int64{
		{1, 0},
		{9, 0},
	})
	if got := d.Load(); got != 10 {
		t.Fatalf("Load = %d, want 10 (column sum)", got)
	}
}

func TestLoadZero(t *testing.T) {
	if got := NewSquare(4).Load(); got != 0 {
		t.Fatalf("Load of zero matrix = %d, want 0", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	m := MustFromRows([][]int64{{1, 2}, {3, 4}})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone shares storage with original")
	}
	if !m.Equal(m.Clone()) {
		t.Fatal("Clone not equal to original")
	}
}

func TestAddSubMatrix(t *testing.T) {
	a := MustFromRows([][]int64{{1, 2}, {3, 4}})
	b := MustFromRows([][]int64{{5, 6}, {7, 8}})
	s := a.Clone()
	s.AddMatrix(b)
	want := MustFromRows([][]int64{{6, 8}, {10, 12}})
	if !s.Equal(want) {
		t.Fatalf("AddMatrix: got %v, want %v", s, want)
	}
	s.SubMatrix(b)
	if !s.Equal(a) {
		t.Fatalf("SubMatrix: got %v, want %v", s, a)
	}
}

func TestSubMatrixPanicsOnNegative(t *testing.T) {
	a := MustFromRows([][]int64{{1}})
	b := MustFromRows([][]int64{{2}})
	defer func() {
		if recover() == nil {
			t.Error("SubMatrix below zero did not panic")
		}
	}()
	a.SubMatrix(b)
}

func TestDimensionMismatchPanics(t *testing.T) {
	a := New(2, 2)
	b := New(2, 3)
	for name, f := range map[string]func(){
		"AddMatrix": func() { a.Clone().AddMatrix(b) },
		"SubMatrix": func() { a.Clone().SubMatrix(b) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s with mismatched dims did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestIsZeroAndNonZeroCount(t *testing.T) {
	m := NewSquare(3)
	if !m.IsZero() {
		t.Fatal("zero matrix not IsZero")
	}
	if m.NonZeroCount() != 0 {
		t.Fatal("zero matrix has nonzero count")
	}
	m.Set(1, 2, 5)
	m.Set(0, 0, 1)
	if m.IsZero() {
		t.Fatal("nonzero matrix reported IsZero")
	}
	if got := m.NonZeroCount(); got != 2 {
		t.Fatalf("NonZeroCount = %d, want 2", got)
	}
}

func TestIsDiagonal(t *testing.T) {
	d := MustFromRows([][]int64{{3, 0}, {0, 7}})
	if !d.IsDiagonal() {
		t.Error("diagonal matrix not detected")
	}
	nd := MustFromRows([][]int64{{3, 1}, {0, 7}})
	if nd.IsDiagonal() {
		t.Error("non-diagonal matrix reported diagonal")
	}
}

func TestGE(t *testing.T) {
	a := MustFromRows([][]int64{{2, 2}, {2, 2}})
	b := MustFromRows([][]int64{{1, 2}, {2, 2}})
	if !a.GE(b) {
		t.Error("a >= b expected")
	}
	if b.GE(a) {
		t.Error("b >= a unexpected")
	}
	if a.GE(New(2, 3)) {
		t.Error("GE across shapes should be false")
	}
}

func TestString(t *testing.T) {
	m := MustFromRows([][]int64{{1, 2}, {3, 4}})
	if got, want := m.String(), "[[1 2] [3 4]]"; got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
}

func TestPermutationBasics(t *testing.T) {
	p := NewPermutation(3)
	if p.Size() != 0 {
		t.Fatal("fresh permutation has matches")
	}
	if p.IsPerfect() {
		t.Fatal("empty permutation reported perfect")
	}
	if !p.IsValid() {
		t.Fatal("empty permutation reported invalid")
	}
	p.To[0] = 1
	p.To[1] = 0
	p.To[2] = 2
	if !p.IsPerfect() || !p.IsValid() || p.Size() != 3 {
		t.Fatalf("perfect permutation misreported: %+v", p)
	}
	dup := NewPermutation(2)
	dup.To[0] = 1
	dup.To[1] = 1
	if dup.IsValid() {
		t.Fatal("duplicate column accepted")
	}
}

func TestPermutationMatrix(t *testing.T) {
	p := NewPermutation(2)
	p.To[0] = 1
	got := p.Matrix()
	want := MustFromRows([][]int64{{0, 1}, {0, 0}})
	if !got.Equal(want) {
		t.Fatalf("Permutation.Matrix = %v, want %v", got, want)
	}
}

func TestPermutationClone(t *testing.T) {
	p := NewPermutation(2)
	p.To[0] = 1
	c := p.Clone()
	c.To[0] = 0
	if p.To[0] != 1 {
		t.Fatal("Clone shares storage")
	}
}

// randomMatrix builds a random m×m matrix with entries in [0, maxV].
func randomMatrix(rng *rand.Rand, m int, maxV int64) *Matrix {
	out := NewSquare(m)
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			out.Set(i, j, rng.Int63n(maxV+1))
		}
	}
	return out
}

func TestLoadPropertyBounds(t *testing.T) {
	// ρ(D) ≥ every row and column sum; ρ(D) ≤ Total; and
	// ρ(A+B) ≤ ρ(A)+ρ(B) (subadditivity used implicitly by grouping).
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := 1 + r.Intn(6)
		a := randomMatrix(r, m, 9)
		b := randomMatrix(r, m, 9)
		la, lb := a.Load(), b.Load()
		for i := 0; i < m; i++ {
			if a.RowSum(i) > la || a.ColSum(i) > la {
				return false
			}
		}
		if la > a.Total() {
			return false
		}
		sum := a.Clone()
		sum.AddMatrix(b)
		return sum.Load() <= la+lb
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestLoadMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		m := 1 + rng.Intn(5)
		d := randomMatrix(rng, m, 12)
		var want int64
		for i := 0; i < m; i++ {
			var rs, cs int64
			for j := 0; j < m; j++ {
				rs += d.At(i, j)
				cs += d.At(j, i)
			}
			if rs > want {
				want = rs
			}
			if cs > want {
				want = cs
			}
		}
		if got := d.Load(); got != want {
			t.Fatalf("trial %d: Load = %d, want %d for %v", trial, got, want, d)
		}
	}
}

func BenchmarkLoad150(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	d := randomMatrix(rng, 150, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = d.Load()
	}
}
