package matrix

import (
	"math/rand"
	"testing"
)

func TestMaskedStatsBasic(t *testing.T) {
	s, err := NewSparse([]SparseEntry{
		{Row: 0, Col: 1, Val: 5},
		{Row: 0, Col: 2, Val: 3},
		{Row: 1, Col: 2, Val: 4},
		{Row: 3, Col: 0, Val: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	// No mask: masked stats agree with the unmasked ones.
	if got := s.LoadMasked(nil); got != s.Load() {
		t.Fatalf("LoadMasked(nil) = %d, want %d", got, s.Load())
	}
	if got := s.TotalMasked(nil); got != s.Total() {
		t.Fatalf("TotalMasked(nil) = %d, want %d", got, s.Total())
	}
	down := make([]bool, 4)
	down[2] = true // strands (0,2) and (1,2)
	if got := s.TotalMasked(down); got != 7 {
		t.Fatalf("TotalMasked(down 2) = %d, want 7", got)
	}
	// Serviceable submatrix: (0,1)=5, (3,0)=2 -> bottleneck is row 0 / col 1 at 5.
	if got := s.LoadMasked(down); got != 5 {
		t.Fatalf("LoadMasked(down 2) = %d, want 5", got)
	}
	down[0] = true // additionally strands (0,*) rows and (3,0)
	if got := s.TotalMasked(down); got != 0 {
		t.Fatalf("TotalMasked(down 0,2) = %d, want 0", got)
	}
	if got := s.LoadMasked(down); got != 0 {
		t.Fatalf("LoadMasked(down 0,2) = %d, want 0", got)
	}
}

// TestMaskedStatsAgainstDense cross-checks the masked statistics
// against a brute-force computation over random matrices, masks, and
// drain sequences.
func TestMaskedStatsAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		m := 2 + rng.Intn(6)
		var entries []SparseEntry
		for r := 0; r < m; r++ {
			for c := 0; c < m; c++ {
				if rng.Intn(2) == 0 {
					entries = append(entries, SparseEntry{Row: r, Col: c, Val: int64(1 + rng.Intn(5))})
				}
			}
		}
		if len(entries) == 0 {
			continue
		}
		s, err := NewSparse(entries)
		if err != nil {
			t.Fatal(err)
		}
		down := make([]bool, m)
		for p := range down {
			down[p] = rng.Intn(3) == 0
		}
		for step := 0; step < 10; step++ {
			// Brute force over the current entry values.
			rows := make([]int64, m)
			cols := make([]int64, m)
			var total int64
			for e := 0; e < s.Len(); e++ {
				r, c, v := s.Entry(e)
				if down[r] || down[c] {
					continue
				}
				rows[r] += v
				cols[c] += v
				total += v
			}
			var load int64
			for p := 0; p < m; p++ {
				if rows[p] > load {
					load = rows[p]
				}
				if cols[p] > load {
					load = cols[p]
				}
			}
			if got := s.LoadMasked(down); got != load {
				t.Fatalf("trial %d step %d: LoadMasked = %d, want %d", trial, step, got, load)
			}
			if got := s.TotalMasked(down); got != total {
				t.Fatalf("trial %d step %d: TotalMasked = %d, want %d", trial, step, got, total)
			}
			// Drain a random positive cell and re-check.
			e := rng.Intn(s.Len())
			if s.Val(e) > 0 {
				s.Dec(e, 1)
			}
		}
	}
}

func TestMaskedStatsDoNotAllocate(t *testing.T) {
	s, err := NewSparse([]SparseEntry{
		{Row: 0, Col: 1, Val: 5},
		{Row: 1, Col: 2, Val: 4},
		{Row: 2, Col: 0, Val: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	down := make([]bool, 3)
	down[1] = true
	allocs := testing.AllocsPerRun(100, func() {
		_ = s.LoadMasked(down)
		_ = s.TotalMasked(down)
	})
	if allocs != 0 {
		t.Fatalf("masked stats allocate %.1f times per call, want 0", allocs)
	}
}
