// Package matrix provides dense non-negative integer matrices and the
// load computations used throughout the coflow scheduling stack.
//
// A coflow on an m×m non-blocking switch is represented by an m×m
// matrix D = (d_ij) of non-negative integers, where d_ij is the number
// of data units to transfer from ingress port i to egress port j.
// The load ρ(D) — the maximum over all row and column sums — is a
// universal lower bound on the number of time slots needed to clear D
// with matching schedules, and by the Birkhoff–von Neumann
// decomposition (package bvn) it is also achievable.
package matrix

import (
	"fmt"
	"strings"
)

// Matrix is a dense rows×cols matrix of non-negative int64 values.
// The zero value is not usable; construct with New or FromRows.
type Matrix struct {
	rows, cols int
	data       []int64 // row-major, len rows*cols
}

// New returns a zeroed rows×cols matrix.
// It panics if either dimension is not positive.
func New(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("matrix: invalid dimensions %d×%d", rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: make([]int64, rows*cols)}
}

// NewSquare returns a zeroed m×m matrix.
func NewSquare(m int) *Matrix { return New(m, m) }

// FromRows builds a matrix from a slice of rows. All rows must have
// equal length and all entries must be non-negative.
func FromRows(rows [][]int64) (*Matrix, error) {
	if len(rows) == 0 || len(rows[0]) == 0 {
		return nil, fmt.Errorf("matrix: empty row data")
	}
	m := New(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.cols {
			return nil, fmt.Errorf("matrix: row %d has %d entries, want %d", i, len(r), m.cols)
		}
		for j, v := range r {
			if v < 0 {
				return nil, fmt.Errorf("matrix: negative entry %d at (%d,%d)", v, i, j)
			}
			m.data[i*m.cols+j] = v
		}
	}
	return m, nil
}

// MustFromRows is FromRows that panics on error; intended for tests
// and literals.
func MustFromRows(rows [][]int64) *Matrix {
	m, err := FromRows(rows)
	if err != nil {
		panic(err)
	}
	return m
}

// Rows returns the number of rows.
//
//coflow:allocfree
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
//
//coflow:allocfree
func (m *Matrix) Cols() int { return m.cols }

// At returns the entry at row i, column j.
//
//coflow:allocfree
func (m *Matrix) At(i, j int) int64 { return m.data[i*m.cols+j] }

// Set assigns v to entry (i, j). It panics if v is negative.
//
//coflow:allocfree
func (m *Matrix) Set(i, j int, v int64) {
	if v < 0 {
		//lint:ignore allocfree the panic message formats once on a fatal negative-value misuse, never on the served path
		panic(fmt.Sprintf("matrix: negative value %d at (%d,%d)", v, i, j))
	}
	m.data[i*m.cols+j] = v
}

// Add adds v (which may be negative) to entry (i, j), panicking if the
// result would be negative.
//
//coflow:allocfree
func (m *Matrix) Add(i, j int, v int64) {
	idx := i*m.cols + j
	nv := m.data[idx] + v
	if nv < 0 {
		//lint:ignore allocfree the panic message formats once on a fatal conservation violation, never on the served path
		panic(fmt.Sprintf("matrix: entry (%d,%d) would become negative (%d)", i, j, nv))
	}
	m.data[idx] = nv
}

// Clone returns a deep copy of m.
//
//coflow:clones
func (m *Matrix) Clone() *Matrix {
	c := &Matrix{rows: m.rows, cols: m.cols, data: make([]int64, len(m.data))}
	copy(c.data, m.data)
	return c
}

// CopyFrom overwrites m's entries with other's. Dimensions must match.
// Copying a matrix onto itself is a no-op.
//
//coflow:allocfree
func (m *Matrix) CopyFrom(other *Matrix) {
	if m.rows != other.rows || m.cols != other.cols {
		//lint:ignore allocfree the panic message formats once on a fatal shape mismatch, never on the served path
		panic(fmt.Sprintf("matrix: CopyFrom dimension mismatch %d×%d vs %d×%d", m.rows, m.cols, other.rows, other.cols))
	}
	copy(m.data, other.data)
}

// Zero resets every entry of m to 0 in place.
//
//coflow:allocfree
func (m *Matrix) Zero() {
	clear(m.data)
}

// AddMatrix adds other into m entrywise. Dimensions must match.
func (m *Matrix) AddMatrix(other *Matrix) {
	if m.rows != other.rows || m.cols != other.cols {
		panic(fmt.Sprintf("matrix: dimension mismatch %d×%d vs %d×%d", m.rows, m.cols, other.rows, other.cols))
	}
	for i := range m.data {
		m.data[i] += other.data[i]
	}
}

// SubMatrix subtracts other from m entrywise, panicking if any entry
// would become negative.
func (m *Matrix) SubMatrix(other *Matrix) {
	if m.rows != other.rows || m.cols != other.cols {
		panic(fmt.Sprintf("matrix: dimension mismatch %d×%d vs %d×%d", m.rows, m.cols, other.rows, other.cols))
	}
	for i := range m.data {
		v := m.data[i] - other.data[i]
		if v < 0 {
			panic("matrix: SubMatrix would produce a negative entry")
		}
		m.data[i] = v
	}
}

// RowSum returns the sum of row i.
//
//coflow:allocfree
func (m *Matrix) RowSum(i int) int64 {
	var s int64
	row := m.data[i*m.cols : (i+1)*m.cols]
	for _, v := range row {
		s += v
	}
	return s
}

// ColSum returns the sum of column j.
func (m *Matrix) ColSum(j int) int64 {
	var s int64
	for i := 0; i < m.rows; i++ {
		s += m.data[i*m.cols+j]
	}
	return s
}

// RowSums returns all row sums.
func (m *Matrix) RowSums() []int64 {
	return m.RowSumsInto(make([]int64, m.rows))
}

// RowSumsInto writes all row sums into dst (which must have length
// Rows()) and returns it. The allocation-free form of RowSums.
//
//coflow:allocfree
func (m *Matrix) RowSumsInto(dst []int64) []int64 {
	for i := 0; i < m.rows; i++ {
		dst[i] = m.RowSum(i)
	}
	return dst
}

// ColSums returns all column sums.
func (m *Matrix) ColSums() []int64 {
	return m.ColSumsInto(make([]int64, m.cols))
}

// ColSumsInto writes all column sums into dst (which must have length
// Cols()) and returns it. The allocation-free form of ColSums.
//
//coflow:allocfree
func (m *Matrix) ColSumsInto(dst []int64) []int64 {
	for j := range dst {
		dst[j] = 0
	}
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, v := range row {
			dst[j] += v
		}
	}
	return dst
}

// Total returns the sum of all entries.
func (m *Matrix) Total() int64 {
	var s int64
	for _, v := range m.data {
		s += v
	}
	return s
}

// Load returns ρ(D): the maximum row or column sum (Eq. 18 of the
// paper). It is 0 for an all-zero matrix.
func (m *Matrix) Load() int64 {
	var load int64
	cols := make([]int64, m.cols)
	for i := 0; i < m.rows; i++ {
		var rs int64
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, v := range row {
			rs += v
			cols[j] += v
		}
		if rs > load {
			load = rs
		}
	}
	for _, cs := range cols {
		if cs > load {
			load = cs
		}
	}
	return load
}

// IsZero reports whether every entry is zero.
func (m *Matrix) IsZero() bool {
	for _, v := range m.data {
		if v != 0 {
			return false
		}
	}
	return true
}

// NonZeroCount returns the number of strictly positive entries (the
// paper's M0 statistic used for trace filtering).
func (m *Matrix) NonZeroCount() int {
	n := 0
	for _, v := range m.data {
		if v > 0 {
			n++
		}
	}
	return n
}

// Equal reports whether m and other have identical shape and entries.
func (m *Matrix) Equal(other *Matrix) bool {
	if m.rows != other.rows || m.cols != other.cols {
		return false
	}
	for i, v := range m.data {
		if v != other.data[i] {
			return false
		}
	}
	return true
}

// GE reports whether m >= other entrywise (same shape required).
func (m *Matrix) GE(other *Matrix) bool {
	if m.rows != other.rows || m.cols != other.cols {
		return false
	}
	for i, v := range m.data {
		if v < other.data[i] {
			return false
		}
	}
	return true
}

// IsDiagonal reports whether all off-diagonal entries are zero (the
// concurrent-open-shop special case of Appendix A).
func (m *Matrix) IsDiagonal() bool {
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			if i != j && m.data[i*m.cols+j] != 0 {
				return false
			}
		}
	}
	return true
}

// String renders the matrix in a compact bracketed form, useful in
// test failure messages.
func (m *Matrix) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for i := 0; i < m.rows; i++ {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteByte('[')
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%d", m.At(i, j))
		}
		b.WriteByte(']')
	}
	b.WriteByte(']')
	return b.String()
}

// Permutation represents a (possibly partial) matching between rows
// and columns: To[i] = j means row i is matched to column j, and
// To[i] = Unmatched means row i is idle.
type Permutation struct {
	To []int
}

// Unmatched marks an unmatched row in a Permutation.
const Unmatched = -1

// NewPermutation returns an all-unmatched permutation over m rows.
func NewPermutation(m int) Permutation {
	to := make([]int, m)
	for i := range to {
		to[i] = Unmatched
	}
	return Permutation{To: to}
}

// IsPerfect reports whether every row is matched to a distinct column.
func (p Permutation) IsPerfect() bool {
	seen := make([]bool, len(p.To))
	for _, j := range p.To {
		if j == Unmatched || j < 0 || j >= len(p.To) || seen[j] {
			return false
		}
		seen[j] = true
	}
	return true
}

// IsValid reports whether no column is used twice (partial matchings
// allowed).
func (p Permutation) IsValid() bool {
	seen := make(map[int]bool, len(p.To))
	for _, j := range p.To {
		if j == Unmatched {
			continue
		}
		if j < 0 || seen[j] {
			return false
		}
		seen[j] = true
	}
	return true
}

// Size returns the number of matched rows.
func (p Permutation) Size() int {
	n := 0
	for _, j := range p.To {
		if j != Unmatched {
			n++
		}
	}
	return n
}

// Clone returns a deep copy of p.
//
//coflow:clones
func (p Permutation) Clone() Permutation {
	to := make([]int, len(p.To))
	copy(to, p.To)
	return Permutation{To: to}
}

// Matrix returns the 0/1 matrix of the matching.
func (p Permutation) Matrix() *Matrix {
	m := NewSquare(len(p.To))
	for i, j := range p.To {
		if j != Unmatched {
			m.Set(i, j, 1)
		}
	}
	return m
}
