package matrix

import (
	"fmt"
	"sort"
)

// SparseEntry is one positive demand cell of a sparse matrix: Val data
// units from ingress Row to egress Col.
type SparseEntry struct {
	Row, Col int
	Val      int64
}

// Sparse is a CSR-style sparse demand matrix specialized for the slot
// pipeline: the set of non-zero cells is fixed at construction (values
// may only decrease, as service drains demand), and the row sums,
// column sums and load ρ are maintained incrementally in O(changed
// entries) per mutation instead of O(m²) rescans.
//
// Ports are remapped to compact indices: only the rows and columns the
// demand actually touches get a sum slot, so a coflow touching 8 port
// pairs on a 500-port switch carries O(8) state, and recomputing its
// load after a decrement costs O(distinct ports), not O(m).
//
// The zero value is not usable; construct with NewSparse. Sparse is
// not safe for concurrent use.
type Sparse struct {
	// entries, sorted by (Row, Col); the cell set never changes.
	ent []SparseEntry
	// CSR row pointers over the compact rows: entries of compact row r
	// are ent[rowOff[r]:rowOff[r+1]].
	rowOff []int32
	// compact row/col index of each entry (parallel to ent).
	rowIdx, colIdx []int32
	// distinct ports in ascending order (compact index -> port).
	rowID, colID []int
	// incrementally maintained sums over compact indices.
	rowSum, colSum []int64
	total          int64
	// load is ρ = max(rowSum, colSum), recomputed lazily: a decrement
	// that lowers a sum equal to the current load marks it dirty.
	load      int64
	loadDirty bool
	// maskCol is per-compact-column scratch for LoadMasked, allocated
	// at construction so the masked statistics stay allocation-free.
	maskCol []int64
}

// NewSparse builds a Sparse from entries. Entries sharing a (row, col)
// cell accumulate; zero-valued entries are dropped. It fails on a
// negative port, a negative value, or no positive entries at all
// (callers represent empty demand as absence, not as an empty Sparse).
func NewSparse(entries []SparseEntry) (*Sparse, error) {
	agg := make(map[[2]int]int64, len(entries))
	for _, e := range entries {
		if e.Row < 0 || e.Col < 0 {
			return nil, fmt.Errorf("matrix: sparse entry (%d,%d) has a negative port", e.Row, e.Col)
		}
		if e.Val < 0 {
			return nil, fmt.Errorf("matrix: sparse entry (%d,%d) has negative value %d", e.Row, e.Col, e.Val)
		}
		if e.Val > 0 {
			agg[[2]int{e.Row, e.Col}] += e.Val
		}
	}
	if len(agg) == 0 {
		return nil, fmt.Errorf("matrix: sparse matrix needs at least one positive entry")
	}
	s := &Sparse{ent: make([]SparseEntry, 0, len(agg))}
	for k, v := range agg {
		s.ent = append(s.ent, SparseEntry{Row: k[0], Col: k[1], Val: v})
	}
	sort.Slice(s.ent, func(a, b int) bool {
		if s.ent[a].Row != s.ent[b].Row {
			return s.ent[a].Row < s.ent[b].Row
		}
		return s.ent[a].Col < s.ent[b].Col
	})
	s.index()
	return s, nil
}

// index builds the compact port maps, CSR offsets and initial sums
// from the sorted entry list.
func (s *Sparse) index() {
	rowOf := map[int]int32{}
	colOf := map[int]int32{}
	for _, e := range s.ent {
		if _, ok := rowOf[e.Row]; !ok {
			rowOf[e.Row] = 0
			s.rowID = append(s.rowID, e.Row)
		}
		if _, ok := colOf[e.Col]; !ok {
			colOf[e.Col] = 0
			s.colID = append(s.colID, e.Col)
		}
	}
	sort.Ints(s.rowID)
	sort.Ints(s.colID)
	for i, p := range s.rowID {
		rowOf[p] = int32(i)
	}
	for i, p := range s.colID {
		colOf[p] = int32(i)
	}
	s.rowSum = make([]int64, len(s.rowID))
	s.colSum = make([]int64, len(s.colID))
	s.rowIdx = make([]int32, len(s.ent))
	s.colIdx = make([]int32, len(s.ent))
	s.rowOff = make([]int32, len(s.rowID)+1)
	prev := int32(-1)
	for i, e := range s.ent {
		ri, ci := rowOf[e.Row], colOf[e.Col]
		s.rowIdx[i], s.colIdx[i] = ri, ci
		s.rowSum[ri] += e.Val
		s.colSum[ci] += e.Val
		s.total += e.Val
		for prev < ri {
			prev++
			s.rowOff[prev] = int32(i)
		}
	}
	s.rowOff[len(s.rowID)] = int32(len(s.ent))
	s.load = s.maxSum()
	s.maskCol = make([]int64, len(s.colID))
}

//coflow:allocfree
func (s *Sparse) maxSum() int64 {
	var b int64
	for _, v := range s.rowSum {
		if v > b {
			b = v
		}
	}
	for _, v := range s.colSum {
		if v > b {
			b = v
		}
	}
	return b
}

// Len returns the number of cells (fixed at construction; cells drained
// to zero still count).
//
//coflow:allocfree
func (s *Sparse) Len() int { return len(s.ent) }

// Entry returns cell e: its ports and current value.
//
//coflow:allocfree
func (s *Sparse) Entry(e int) (row, col int, val int64) {
	it := &s.ent[e]
	return it.Row, it.Col, it.Val
}

// Val returns the current value of cell e.
//
//coflow:allocfree
func (s *Sparse) Val(e int) int64 { return s.ent[e].Val }

// Dec drains d units from cell e, updating the row sum, column sum and
// total in O(1) and deferring the ρ update until the next Load call
// (and only when the decrement could have lowered it). It panics if
// the cell would go negative.
//
//coflow:allocfree
func (s *Sparse) Dec(e int, d int64) {
	it := &s.ent[e]
	if d < 0 || it.Val < d {
		//lint:ignore allocfree the panic message formats once on a fatal invariant violation, never on the served path
		panic(fmt.Sprintf("matrix: Dec(%d, %d) on cell (%d,%d) holding %d", e, d, it.Row, it.Col, it.Val))
	}
	if d == 0 {
		return
	}
	it.Val -= d
	ri, ci := s.rowIdx[e], s.colIdx[e]
	if s.rowSum[ri] == s.load || s.colSum[ci] == s.load {
		s.loadDirty = true
	}
	s.rowSum[ri] -= d
	s.colSum[ci] -= d
	s.total -= d
}

// Load returns ρ: the maximum row or column sum. Cached between
// mutations; recomputed over the compact sums only when a decrement
// touched a maximal row or column.
//
//coflow:allocfree
func (s *Sparse) Load() int64 {
	if s.loadDirty {
		s.load = s.maxSum()
		s.loadDirty = false
	}
	return s.load
}

// Total returns the sum of all cells.
//
//coflow:allocfree
func (s *Sparse) Total() int64 { return s.total }

// portDown reports whether port p is marked failed in the mask. Ports
// beyond the mask are up, so a nil or short mask degrades gracefully.
//
//coflow:allocfree
func portDown(down []bool, p int) bool { return p < len(down) && down[p] }

// LoadMasked returns ρ of the demand restricted to live ports: the
// maximum row or column sum counting only cells whose ingress AND
// egress are both up (down[p] true marks port p failed). This is the
// serviceable bottleneck — demand stranded on a failed port is parked,
// not counted — which is what masked-aware priorities (SEBF under port
// failures) need. O(cells); the column scratch is preallocated so the
// call is allocation-free.
//
//coflow:allocfree
func (s *Sparse) LoadMasked(down []bool) int64 {
	for i := range s.maskCol {
		s.maskCol[i] = 0
	}
	var b int64
	for r := range s.rowID {
		if portDown(down, s.rowID[r]) {
			continue
		}
		var rs int64
		for e, hi := int(s.rowOff[r]), int(s.rowOff[r+1]); e < hi; e++ {
			ci := s.colIdx[e]
			if portDown(down, s.colID[ci]) {
				continue
			}
			v := s.ent[e].Val
			rs += v
			s.maskCol[ci] += v
		}
		if rs > b {
			b = rs
		}
	}
	for _, v := range s.maskCol {
		if v > b {
			b = v
		}
	}
	return b
}

// TotalMasked returns the sum of cells whose ingress and egress are
// both up under the mask — the serviceable remaining work. O(cells).
//
//coflow:allocfree
func (s *Sparse) TotalMasked(down []bool) int64 {
	var t int64
	for i := range s.ent {
		if portDown(down, s.ent[i].Row) || portDown(down, s.ent[i].Col) {
			continue
		}
		t += s.ent[i].Val
	}
	return t
}

// RowPorts returns the distinct ingress ports, ascending. Shared;
// callers must not mutate.
func (s *Sparse) RowPorts() []int { return s.rowID }

// ColPorts returns the distinct egress ports, ascending. Shared;
// callers must not mutate.
func (s *Sparse) ColPorts() []int { return s.colID }

// RowRange returns the half-open entry range [lo, hi) of compact row r
// (entries are grouped by row, ascending column within the row).
//
//coflow:allocfree
func (s *Sparse) RowRange(r int) (lo, hi int) {
	return int(s.rowOff[r]), int(s.rowOff[r+1])
}

// Dense materializes the current values as a dense m×m matrix. It
// panics if any port is out of range. For tests and interop, not the
// hot path.
func (s *Sparse) Dense(m int) *Matrix {
	d := NewSquare(m)
	for _, e := range s.ent {
		if e.Val > 0 {
			d.Add(e.Row, e.Col, e.Val)
		}
	}
	return d
}
