package matrix

import (
	"math/rand"
	"testing"
)

func TestNewSparseValidation(t *testing.T) {
	cases := []struct {
		name    string
		entries []SparseEntry
	}{
		{"empty", nil},
		{"all zero values", []SparseEntry{{Row: 1, Col: 2, Val: 0}}},
		{"negative row", []SparseEntry{{Row: -1, Col: 0, Val: 1}}},
		{"negative col", []SparseEntry{{Row: 0, Col: -2, Val: 1}}},
		{"negative value", []SparseEntry{{Row: 0, Col: 0, Val: -3}}},
	}
	for _, tc := range cases {
		if _, err := NewSparse(tc.entries); err == nil {
			t.Errorf("%s: NewSparse accepted invalid input", tc.name)
		}
	}
}

func TestNewSparseAccumulatesDuplicates(t *testing.T) {
	s, err := NewSparse([]SparseEntry{
		{Row: 3, Col: 7, Val: 2},
		{Row: 0, Col: 1, Val: 5},
		{Row: 3, Col: 7, Val: 4},
		{Row: 3, Col: 2, Val: 1},
		{Row: 5, Col: 1, Val: 0}, // dropped
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3 (duplicates merged, zeros dropped)", s.Len())
	}
	d := s.Dense(8)
	if got := d.At(3, 7); got != 6 {
		t.Errorf("cell (3,7) = %d, want 6", got)
	}
	if s.Total() != 12 {
		t.Errorf("Total = %d, want 12", s.Total())
	}
	// ρ: row 3 sums to 7, col 1 to 5, col 7 to 6.
	if s.Load() != 7 {
		t.Errorf("Load = %d, want 7", s.Load())
	}
}

func TestSparseCompactPorts(t *testing.T) {
	s, err := NewSparse([]SparseEntry{
		{Row: 100, Col: 400, Val: 1},
		{Row: 100, Col: 7, Val: 2},
		{Row: 9, Col: 400, Val: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	wantRows := []int{9, 100}
	wantCols := []int{7, 400}
	if got := s.RowPorts(); len(got) != 2 || got[0] != wantRows[0] || got[1] != wantRows[1] {
		t.Errorf("RowPorts = %v, want %v", got, wantRows)
	}
	if got := s.ColPorts(); len(got) != 2 || got[0] != wantCols[0] || got[1] != wantCols[1] {
		t.Errorf("ColPorts = %v, want %v", got, wantCols)
	}
	// CSR layout: entries grouped by row, ascending col within a row.
	lo, hi := s.RowRange(0) // compact row 0 = port 9
	if hi-lo != 1 {
		t.Fatalf("row 9 has %d entries, want 1", hi-lo)
	}
	if r, c, v := s.Entry(lo); r != 9 || c != 400 || v != 3 {
		t.Errorf("row 9 entry = (%d,%d,%d), want (9,400,3)", r, c, v)
	}
	lo, hi = s.RowRange(1) // compact row 1 = port 100
	if hi-lo != 2 {
		t.Fatalf("row 100 has %d entries, want 2", hi-lo)
	}
	if _, c, _ := s.Entry(lo); c != 7 {
		t.Errorf("row 100 first col = %d, want 7 (ascending)", c)
	}
}

func TestSparseDecPanics(t *testing.T) {
	s, err := NewSparse([]SparseEntry{{Row: 0, Col: 0, Val: 2}})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []int64{-1, 3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Dec(0, %d) on value 2 did not panic", d)
				}
			}()
			s.Dec(0, d)
		}()
	}
}

// TestSparseIncrementalAgainstDense is the core invariant check: under
// random drain sequences the incrementally maintained total and lazy
// load must always equal a from-scratch recompute on the equivalent
// dense matrix. This exercises the dirty-flag path both ways — drains
// that touch the maximal row/column (must invalidate) and drains that
// don't (must keep the cache).
func TestSparseIncrementalAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const m = 12
	for trial := 0; trial < 200; trial++ {
		var entries []SparseEntry
		for i := 0; i < m; i++ {
			for j := 0; j < m; j++ {
				if rng.Intn(3) == 0 {
					entries = append(entries, SparseEntry{Row: i, Col: j, Val: int64(1 + rng.Intn(9))})
				}
			}
		}
		if len(entries) == 0 {
			continue
		}
		s, err := NewSparse(entries)
		if err != nil {
			t.Fatal(err)
		}
		for s.Total() > 0 {
			e := rng.Intn(s.Len())
			if v := s.Val(e); v > 0 {
				s.Dec(e, 1+rng.Int63n(v))
			}
			ref := s.Dense(m)
			if s.Total() != ref.Total() {
				t.Fatalf("trial %d: incremental total %d, dense %d", trial, s.Total(), ref.Total())
			}
			if s.Load() != ref.Load() {
				t.Fatalf("trial %d: incremental load %d, dense %d", trial, s.Load(), ref.Load())
			}
			for ri, p := range s.RowPorts() {
				if s.rowSum[ri] != ref.RowSum(p) {
					t.Fatalf("trial %d: row %d sum %d, dense %d", trial, p, s.rowSum[ri], ref.RowSum(p))
				}
			}
			for ci, p := range s.ColPorts() {
				if s.colSum[ci] != ref.ColSum(p) {
					t.Fatalf("trial %d: col %d sum %d, dense %d", trial, p, s.colSum[ci], ref.ColSum(p))
				}
			}
		}
	}
}

// TestSparseLoadStaysCleanOffBottleneck pins the dirty-flag behaviour:
// a drain on a non-maximal row and column must not trigger a rescan
// (the cached ρ is provably still correct), while draining the
// bottleneck itself must.
func TestSparseLoadStaysCleanOffBottleneck(t *testing.T) {
	// Row 0 sums to 10 (bottleneck); cell (1,1) is on a row and column
	// summing to 3 and 4.
	s, err := NewSparse([]SparseEntry{
		{Row: 0, Col: 0, Val: 6},
		{Row: 0, Col: 1, Val: 4},
		{Row: 1, Col: 1, Val: 0},
		{Row: 1, Col: 2, Val: 3},
		{Row: 2, Col: 2, Val: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	// (1,2): row 1 sums 3, col 2 sums 4 — off the bottleneck.
	var off int
	for e := 0; e < s.Len(); e++ {
		if r, c, _ := s.Entry(e); r == 1 && c == 2 {
			off = e
		}
	}
	if s.Load() != 10 {
		t.Fatalf("Load = %d, want 10", s.Load())
	}
	s.Dec(off, 1)
	if s.loadDirty {
		t.Error("drain off the bottleneck marked the load dirty")
	}
	if s.Load() != 10 {
		t.Errorf("Load = %d after off-bottleneck drain, want 10", s.Load())
	}
	// Drain the bottleneck row: must invalidate and recompute.
	var on int
	for e := 0; e < s.Len(); e++ {
		if r, c, _ := s.Entry(e); r == 0 && c == 0 {
			on = e
		}
	}
	s.Dec(on, 6)
	if !s.loadDirty {
		t.Error("drain on the bottleneck did not mark the load dirty")
	}
	// Row 0 now sums 4; col sums are 0,4,3 → ρ = 4.
	if s.Load() != 4 {
		t.Errorf("Load = %d after bottleneck drain, want 4", s.Load())
	}
}
