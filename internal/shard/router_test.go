package shard

import "testing"

// TestRouteDistribution: consistent hashing over sequential coflow IDs
// must stay balanced — with default replicas, no fabric may own more
// than 2x the mean share of 10k keys (the routing bound the HTTP plane
// relies on for per-shard capacity planning).
func TestRouteDistribution(t *testing.T) {
	for _, shards := range []int{2, 3, 4, 8} {
		r := NewRing(shards, 0)
		counts := make([]int, shards)
		const keys = 10000
		for id := 1; id <= keys; id++ {
			s := r.Route(uint64(id))
			if s < 0 || s >= shards {
				t.Fatalf("Route(%d) = %d, out of range [0,%d)", id, s, shards)
			}
			counts[s]++
		}
		mean := keys / shards
		for s, n := range counts {
			if n == 0 {
				t.Errorf("shards=%d: fabric %d owns no keys", shards, s)
			}
			if n > 2*mean {
				t.Errorf("shards=%d: fabric %d owns %d keys, > 2x mean %d", shards, s, n, mean)
			}
		}
	}
}

// TestRouteDeterministic: the ring is a pure function of (shards,
// replicas) — two rings agree on every key, and repeated lookups are
// stable. Owner() depends on this to re-derive placement from the ID.
func TestRouteDeterministic(t *testing.T) {
	a, b := NewRing(4, 64), NewRing(4, 64)
	for id := 1; id <= 1000; id++ {
		if a.Route(uint64(id)) != b.Route(uint64(id)) {
			t.Fatalf("rings disagree on key %d", id)
		}
	}
}

// TestRouteConsistency: growing the ring by one fabric moves only the
// keys the new fabric gains — about 1/(N+1) of them — not the wholesale
// reshuffle modulo hashing would cause. This is what keeps most coflow
// IDs resolvable by hash alone across a reshard.
func TestRouteConsistency(t *testing.T) {
	before, after := NewRing(4, 0), NewRing(5, 0)
	const keys = 10000
	moved := 0
	for id := 1; id <= keys; id++ {
		b, a := before.Route(uint64(id)), after.Route(uint64(id))
		if b != a {
			moved++
			if a != 4 {
				t.Errorf("key %d moved fabric %d -> %d, not to the new fabric", id, b, a)
			}
		}
	}
	// Ideal is keys/5 = 2000; allow generous slack but stay far from
	// the (N-1)/N = 8000 a modulo scheme would move.
	if moved > 2*keys/5 {
		t.Errorf("%d/%d keys moved adding a 5th fabric, want about %d", moved, keys, keys/5)
	}
}

func TestNewRingRejectsBadShards(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewRing(0, 0) did not panic")
		}
	}()
	NewRing(0, 0)
}

// TestRouteDoesNotAllocate: Route sits on the ingest hot path and is
// //coflow:allocfree — one mix and a binary search over a fixed slice.
func TestRouteDoesNotAllocate(t *testing.T) {
	r := NewRing(8, 0)
	key := uint64(0)
	if avg := testing.AllocsPerRun(200, func() {
		key++
		r.Route(key)
	}); avg != 0 {
		t.Errorf("Route allocates %.1f times per op, want 0", avg)
	}
}
