//go:build slowcheck

package shard

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"coflow/internal/coflowmodel"
	"coflow/internal/daemon"
	"coflow/internal/online"
)

// TestChurnSoak is the cancellation-churn soak the scenario engine's
// bugfix work exists for: a 4-fabric cluster with the BvN planner and
// the self-check monitor enabled, externally clocked, hammered by
// concurrent workers registering and cancelling mid-flight while a
// ticker drains and a reader scrapes metrics. Run under -race via
// `make slowcheck`.
//
// Invariants pinned:
//   - no lost cancellations: a Cancel of an ID we created either
//     succeeds or reports the terminal race (ErrTerminalCoflow) —
//     never unknown — and every successful cancel leaves the coflow
//     in state "cancelled";
//   - zero self-check violations across every fabric;
//   - the planner stays alive (no PlanError), its fallbacks to cold
//     decomposition stay bounded by its updates, and its load drains
//     to zero with the fabric;
//   - the cluster drains to zero active coflows.
func TestChurnSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short")
	}
	const (
		shards        = 4
		ports         = 16
		regsPerWorker = 250
		workers       = 4
	)
	c := newTestCluster(t, Config{
		Shards: shards,
		Fabric: daemon.Config{
			Ports:          ports,
			Policy:         online.SEBF,
			Plan:           true,
			SelfCheck:      true,
			SelfCheckEvery: 1,
		},
	})

	done := make(chan struct{})
	var tickErr error
	var tickWG sync.WaitGroup
	tickWG.Add(1)
	go func() {
		defer tickWG.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			if err := c.Tick(); err != nil {
				tickErr = err
				return
			}
		}
	}()
	readerDone := make(chan struct{})
	go func() { // scrape storm: races the aggregate against the churn
		defer close(readerDone)
		for {
			select {
			case <-done:
				return
			default:
				c.Metrics()
			}
		}
	}()

	type outcome struct {
		ids       []int
		cancelled map[int]bool
		lost      []error
	}
	results := make([]outcome, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)*104729 + 17))
			out := &results[w]
			out.cancelled = map[int]bool{}
			for i := 0; i < regsPerWorker; i++ {
				reg := &coflowmodel.Registration{Weight: 1 + rng.Float64()}
				for f, n := 0, 1+rng.Intn(4); f < n; f++ {
					reg.Flows = append(reg.Flows, coflowmodel.Flow{
						Src: rng.Intn(ports), Dst: rng.Intn(ports), Size: 1 + rng.Int63n(20),
					})
				}
				id, _, _, err := c.Register(reg)
				if err != nil {
					out.lost = append(out.lost, err)
					return
				}
				out.ids = append(out.ids, id)
				if rng.Intn(2) == 0 {
					victim := out.ids[rng.Intn(len(out.ids))]
					switch err := c.Cancel(victim); {
					case err == nil:
						out.cancelled[victim] = true
					case errors.Is(err, daemon.ErrTerminalCoflow):
						// completed or already cancelled first: expected churn
					default:
						out.lost = append(out.lost, err)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(done)
	tickWG.Wait()
	<-readerDone
	if tickErr != nil {
		t.Fatalf("ticker died: %v", tickErr)
	}

	// Drain whatever churn left behind.
	for i := 0; i < 100000 && c.Metrics().Active > 0; i++ {
		if err := c.Tick(); err != nil {
			t.Fatalf("drain tick: %v", err)
		}
	}

	var cancels int
	for w := range results {
		out := &results[w]
		if len(out.lost) > 0 {
			t.Fatalf("worker %d lost operations: %v", w, out.lost)
		}
		cancels += len(out.cancelled)
		for _, id := range out.ids {
			_, cs, ok := c.Owner(id)
			if !ok {
				t.Fatalf("coflow %d vanished", id)
			}
			switch {
			case out.cancelled[id] && cs.State != "cancelled":
				t.Fatalf("coflow %d: cancel succeeded but state is %q (lost cancellation)", id, cs.State)
			case !out.cancelled[id] && cs.State != "completed" && cs.State != "cancelled":
				t.Fatalf("coflow %d never drained: state %q, remaining %d", id, cs.State, cs.Remaining)
			}
		}
	}

	m := c.Metrics()
	if m.Active != 0 {
		t.Fatalf("%d coflows still active after drain", m.Active)
	}
	if m.Cancelled != int64(cancels) {
		t.Fatalf("cluster counted %d cancels, workers performed %d", m.Cancelled, cancels)
	}
	if m.Registered != int64(workers*regsPerWorker) {
		t.Fatalf("cluster counted %d registrations, want %d", m.Registered, workers*regsPerWorker)
	}
	for _, s := range m.PerShard {
		fm := s.Metrics
		if fm.SelfCheckViolations != 0 {
			t.Fatalf("fabric %d: %d self-check violations", s.Fabric, fm.SelfCheckViolations)
		}
		if fm.PlanError != "" {
			t.Fatalf("fabric %d: planner died: %s", s.Fabric, fm.PlanError)
		}
		if !fm.Plan {
			t.Fatalf("fabric %d: planner not running", s.Fabric)
		}
		// The greedy tick serves matchings unrelated to the plan's
		// terms, so under churn many updates legitimately recompute
		// cold — but never more than once per update, and the plan
		// must still drain with the fabric.
		if fm.PlanUpdates == 0 {
			t.Fatalf("fabric %d: planner never updated", s.Fabric)
		}
		if fm.PlanFallbacks > fm.PlanUpdates {
			t.Fatalf("fabric %d: %d fallbacks exceed %d plan updates",
				s.Fabric, fm.PlanFallbacks, fm.PlanUpdates)
		}
		if fm.PlanLoad != 0 {
			t.Fatalf("fabric %d: plan load %d after drain, want 0", s.Fabric, fm.PlanLoad)
		}
	}
}
