package shard

import (
	"errors"
	"testing"
	"time"

	"coflow/internal/coflowmodel"
	"coflow/internal/daemon"
	"coflow/internal/obs"
	"coflow/internal/online"
)

func newTestCluster(t *testing.T, cfg Config) *Cluster {
	t.Helper()
	if cfg.Fabric.Ports == 0 {
		cfg.Fabric.Ports = 2
	}
	if cfg.AggEvery == 0 {
		cfg.AggEvery = -1 // deterministic: every Metrics() recomputes
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func oneFlow() *coflowmodel.Registration {
	return &coflowmodel.Registration{
		Flows: []coflowmodel.Flow{{Src: 0, Dst: 0, Size: 1}},
	}
}

// TestRegisterRoutesByHash: unpinned registrations land on the hash
// owner of their cluster-assigned ID, and Owner re-derives that fabric
// from the ID alone.
func TestRegisterRoutesByHash(t *testing.T) {
	c := newTestCluster(t, Config{Shards: 4})
	for i := 0; i < 32; i++ {
		id, _, fabric, err := c.Register(oneFlow())
		if err != nil {
			t.Fatal(err)
		}
		if want := c.ring.Route(uint64(id)); fabric != want {
			t.Fatalf("coflow %d placed on fabric %d, hash owner is %d", id, fabric, want)
		}
		gotFabric, cs, ok := c.Owner(id)
		if !ok || gotFabric != fabric || cs.ID != id {
			t.Fatalf("Owner(%d) = (%d, %+v, %v), want fabric %d", id, gotFabric, cs, ok, fabric)
		}
	}
	m := c.Metrics()
	if m.Routed != 32 || m.Pinned != 0 {
		t.Fatalf("routed/pinned = %d/%d, want 32/0", m.Routed, m.Pinned)
	}
}

// TestRegisterPinned: an explicit fabric overrides the hash, and Owner
// still finds the coflow via the fallback scan.
func TestRegisterPinned(t *testing.T) {
	c := newTestCluster(t, Config{Shards: 4})
	// The next assigned ID is 1; pin away from its hash owner so the
	// lookup must take the fallback path.
	pin := (c.ring.Route(1) + 1) % 4
	reg := oneFlow()
	reg.Fabric = &pin
	id, _, fabric, err := c.Register(reg)
	if err != nil {
		t.Fatal(err)
	}
	if fabric != pin {
		t.Fatalf("pinned to %d, placed on %d", pin, fabric)
	}
	gotFabric, cs, ok := c.Owner(id)
	if !ok || gotFabric != pin || cs.ID != id {
		t.Fatalf("Owner(%d) = (%d, %+v, %v), want pinned fabric %d", id, gotFabric, cs, ok, pin)
	}
	m := c.Metrics()
	if m.Pinned != 1 || m.FallbackScans == 0 {
		t.Fatalf("pinned=%d fallbackScans=%d, want 1 and >0", m.Pinned, m.FallbackScans)
	}
}

// TestRegisterUnknownFabric: pinning outside 0..N-1 is rejected with
// the daemon's sentinel and consumes no coflow slot on any fabric.
func TestRegisterUnknownFabric(t *testing.T) {
	c := newTestCluster(t, Config{Shards: 2})
	for _, pin := range []int{-1, 2, 7} {
		reg := oneFlow()
		reg.Fabric = &pin
		if _, _, _, err := c.Register(reg); !errors.Is(err, daemon.ErrUnknownFabric) {
			t.Fatalf("pin %d: err = %v, want ErrUnknownFabric", pin, err)
		}
	}
	if m := c.Metrics(); m.Registered != 0 {
		t.Fatalf("rejected registrations counted: %+v", m)
	}
}

// TestHeterogeneousPorts: per-fabric port overrides are validated at
// the owning fabric — a flow legal on the wide fabric is rejected by
// the narrow one.
func TestHeterogeneousPorts(t *testing.T) {
	c := newTestCluster(t, Config{Shards: 2, Ports: []int{2, 8}})
	wide, narrow := 1, 0
	reg := &coflowmodel.Registration{
		Flows:  []coflowmodel.Flow{{Src: 5, Dst: 5, Size: 1}},
		Fabric: &wide,
	}
	if _, _, _, err := c.Register(reg); err != nil {
		t.Fatalf("port 5 on 8-port fabric rejected: %v", err)
	}
	reg2 := &coflowmodel.Registration{
		Flows:  []coflowmodel.Flow{{Src: 5, Dst: 5, Size: 1}},
		Fabric: &narrow,
	}
	if _, _, _, err := c.Register(reg2); err == nil {
		t.Fatal("port 5 on 2-port fabric accepted")
	}
}

// TestTickCompletesAndAggregates: ticks drive every fabric, and the
// rollup conserves coflows (registered = completed + cancelled + active).
func TestTickCompletesAndAggregates(t *testing.T) {
	c := newTestCluster(t, Config{Shards: 3})
	var cancelID int
	for i := 0; i < 12; i++ {
		id, _, _, err := c.Register(oneFlow())
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			cancelID = id
		}
	}
	if err := c.Cancel(cancelID); err != nil {
		t.Fatal(err)
	}
	if err := c.Cancel(99999); !errors.Is(err, ErrUnknownCoflow) {
		t.Fatalf("cancelling unknown id: %v, want ErrUnknownCoflow", err)
	}
	for i := 0; i < 20; i++ {
		if err := c.Tick(); err != nil {
			t.Fatal(err)
		}
		if c.Metrics().Active == 0 {
			break
		}
	}
	m := c.Metrics()
	if m.Registered != 12 || m.Cancelled != 1 || m.Completed != 11 || m.Active != 0 {
		t.Fatalf("rollup = %+v", m)
	}
	if m.Registered != m.Completed+m.Cancelled+int64(m.Active) {
		t.Fatalf("conservation violated: %+v", m)
	}
	if m.Fabrics != 3 || len(m.PerShard) != 3 {
		t.Fatalf("per-shard detail = %d fabrics, want 3", len(m.PerShard))
	}
	var perShardRegistered int64
	for i, s := range m.PerShard {
		if s.Fabric != i {
			t.Fatalf("PerShard[%d].Fabric = %d", i, s.Fabric)
		}
		perShardRegistered += s.Metrics.Registered
	}
	if perShardRegistered != m.Registered {
		t.Fatalf("per-shard sum %d != rollup %d", perShardRegistered, m.Registered)
	}
	if m.IngestLatency.Count != 12 {
		t.Fatalf("ingest latency count = %d, want 12", m.IngestLatency.Count)
	}
}

// TestMetricsAmortized: within the AggEvery window every read shares
// one cached aggregate; a negative window disables the cache.
func TestMetricsAmortized(t *testing.T) {
	c := newTestCluster(t, Config{Shards: 2, AggEvery: time.Hour})
	if _, _, _, err := c.Register(oneFlow()); err != nil {
		t.Fatal(err)
	}
	first := c.Metrics()
	if _, _, _, err := c.Register(oneFlow()); err != nil {
		t.Fatal(err)
	}
	if got := c.Metrics(); got != first {
		t.Fatal("second read inside the window recomputed")
	}

	fresh := newTestCluster(t, Config{Shards: 2, AggEvery: -1})
	a := fresh.Metrics()
	if _, _, _, err := fresh.Register(oneFlow()); err != nil {
		t.Fatal(err)
	}
	b := fresh.Metrics()
	if a == b || b.Registered != 1 {
		t.Fatalf("cache disabled but read stale: %+v", b)
	}
}

// TestCloseDrainsEveryFabric: Close is idempotent and every fabric
// refuses work afterwards.
func TestCloseDrainsEveryFabric(t *testing.T) {
	c := newTestCluster(t, Config{Shards: 3})
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := c.Register(oneFlow()); !errors.Is(err, daemon.ErrClosed) {
		t.Fatalf("register after close: %v, want ErrClosed", err)
	}
	if err := c.Tick(); !errors.Is(err, daemon.ErrClosed) {
		t.Fatalf("tick after close: %v, want ErrClosed", err)
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{Shards: -1, Fabric: daemon.Config{Ports: 2}}); err == nil {
		t.Error("negative shard count accepted")
	}
	if _, err := New(Config{Shards: 2, Ports: []int{4}, Fabric: daemon.Config{Ports: 2}}); err == nil {
		t.Error("mismatched per-fabric port overrides accepted")
	}
	if _, err := New(Config{Shards: 2, Fabric: daemon.Config{Ports: 2, Policy: online.Policy(99)}}); err == nil {
		t.Error("bad fabric config accepted")
	}
}

// TestPerShardTickDoesNotAllocate extends the scheduler's zero-alloc
// gate to the sharded path: N per-fabric states with the daemon's obs
// wiring, stepped together behind ring routing, stay at 0 allocs/op in
// steady state. The cluster adds no per-tick allocation of its own —
// fan-out is a plain loop over fabrics.
func TestPerShardTickDoesNotAllocate(t *testing.T) {
	const shards, ports = 4, 50
	ring := NewRing(shards, 0)
	states := make([]*online.State, shards)
	for i := range states {
		s := online.NewState(ports)
		s.SetObs(online.NewObs(obs.NewRegistry()))
		for k := 1; k <= 40; k++ {
			flows := []coflowmodel.Flow{{Src: k % ports, Dst: (k * 7) % ports, Size: 1 << 40}}
			if _, err := s.Add(k, 1, 0, flows); err != nil {
				t.Fatal(err)
			}
		}
		states[i] = s
	}
	// Warm up: the first slots may grow the reusable buffers.
	slot := int64(0)
	for ; slot < 3; slot++ {
		for _, s := range states {
			s.Step(slot+1, online.SEBF)
		}
	}
	key := uint64(0)
	if avg := testing.AllocsPerRun(200, func() {
		slot++
		key++
		_ = ring.Route(key)
		for _, s := range states {
			s.Step(slot, online.SEBF)
		}
	}); avg != 0 {
		t.Errorf("sharded steady-state tick allocates %.1f times per slot, want 0", avg)
	}
}
