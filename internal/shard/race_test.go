package shard

import (
	"sync"
	"testing"
	"time"

	"coflow/internal/coflowmodel"
)

// TestConcurrentCancelAndTick interleaves registrations, cancels,
// ticks and snapshot readers across 4 fabrics. Run under -race (make
// check does) this is the cluster's linearizability smoke test; the
// assertions hold regardless:
//
//   - no lost cancellations: every cancel the cluster acked leaves the
//     coflow in state "cancelled" — a tick racing the cancel must not
//     resurrect or complete it,
//   - snapshot stability: concurrent readers always find acked IDs and
//     never observe a torn status,
//   - conservation: registered = completed + cancelled + active after
//     the dust settles.
func TestConcurrentCancelAndTick(t *testing.T) {
	c := newTestCluster(t, Config{Shards: 4, AggEvery: 100 * time.Microsecond})

	const (
		registrants   = 4
		perRegistrant = 150
		cancellers    = 2
		readers       = 2
		slowFlowEvery = 2 // every 2nd registration is long-lived (cancellable)
		slowFlowSize  = int64(1 << 30)
	)

	idsCh := make(chan int, registrants*perRegistrant)
	done := make(chan struct{})

	var regWG sync.WaitGroup
	var allRegistered sync.Map // id -> struct{}
	for g := 0; g < registrants; g++ {
		regWG.Add(1)
		go func(g int) {
			defer regWG.Done()
			for i := 0; i < perRegistrant; i++ {
				size := int64(1)
				if i%slowFlowEvery == 0 {
					size = slowFlowSize
				}
				reg := &coflowmodel.Registration{
					Flows: []coflowmodel.Flow{{Src: g % 2, Dst: i % 2, Size: size}},
				}
				if i%7 == 0 {
					pin := (g + i) % 4
					reg.Fabric = &pin
				}
				id, _, _, err := c.Register(reg)
				if err != nil {
					t.Errorf("register: %v", err)
					return
				}
				allRegistered.Store(id, struct{}{})
				idsCh <- id
			}
		}(g)
	}
	go func() {
		regWG.Wait()
		close(idsCh)
	}()

	// Cancellers race the ticker over every registered ID. A nil error
	// is the cluster's promise the cancel took effect.
	var cancelWG sync.WaitGroup
	var mu sync.Mutex
	var acked []int
	for g := 0; g < cancellers; g++ {
		cancelWG.Add(1)
		go func() {
			defer cancelWG.Done()
			for id := range idsCh {
				if err := c.Cancel(id); err == nil {
					mu.Lock()
					acked = append(acked, id)
					mu.Unlock()
				}
			}
		}()
	}

	var bgWG sync.WaitGroup
	bgWG.Add(1)
	go func() { // ticker: every fabric advances while writes land
		defer bgWG.Done()
		for {
			select {
			case <-done:
				return
			default:
				if err := c.Tick(); err != nil {
					t.Errorf("tick: %v", err)
					return
				}
			}
		}
	}()
	for g := 0; g < readers; g++ {
		bgWG.Add(1)
		go func() { // readers: acked IDs are always findable and sane
			defer bgWG.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				allRegistered.Range(func(k, _ any) bool {
					id := k.(int)
					fabric, cs, ok := c.Owner(id)
					if !ok {
						t.Errorf("acked coflow %d vanished", id)
						return false
					}
					if cs.ID != id || fabric < 0 || fabric >= 4 {
						t.Errorf("torn read: id %d -> fabric %d, status %+v", id, fabric, cs)
						return false
					}
					return true
				})
				if m := c.Metrics(); len(m.PerShard) != 4 {
					t.Errorf("metrics read saw %d shards", len(m.PerShard))
					return
				}
			}
		}()
	}

	cancelWG.Wait()
	close(done)
	bgWG.Wait()
	if t.Failed() {
		return
	}

	// No lost cancellations.
	for _, id := range acked {
		_, cs, ok := c.Owner(id)
		if !ok || cs.State != "cancelled" {
			t.Errorf("acked cancel of %d lost: %+v", id, cs)
		}
	}

	// Conservation across the whole cluster (bypassing the amortized
	// cache so the numbers are post-quiescence).
	m := c.computeMetrics()
	if want := int64(registrants * perRegistrant); m.Registered != want {
		t.Errorf("registered = %d, want %d", m.Registered, want)
	}
	if m.Cancelled != int64(len(acked)) {
		t.Errorf("cancelled metric = %d, acked cancels = %d", m.Cancelled, len(acked))
	}
	if m.Registered != m.Completed+m.Cancelled+int64(m.Active) {
		t.Errorf("conservation violated: %+v", m)
	}
}
