// Package shard scales the single-fabric daemon horizontally: a
// Cluster owns N independent m×m switch fabrics (each an
// internal/daemon single-writer loop with its own online.State, obs
// registry and optional self-check monitor), a consistent-hash router
// that assigns registrations to fabrics, and an amortized cross-shard
// metrics aggregation behind one HTTP control plane.
//
// Sharding model: coflows never span fabrics — a coflow's flows all
// live on the switch it was routed to, so each fabric's scheduling
// problem is exactly the paper's m×m formulation and the per-fabric
// zero-alloc Step machinery applies unchanged. The cluster's job is
// pure control-plane fan-out/fan-in: route writes to one fabric's
// loop, serve reads from per-fabric atomic snapshots, and aggregate.
package shard

import "slices"

// Ring is a consistent-hash ring over fabric indices: each fabric
// owns Replicas pseudo-random points on a uint64 ring, and a key is
// routed to the fabric owning the first point at or after the key's
// hash (wrapping). Consistency is the point of this construction:
// when a fabric is added or removed, only the keys on the segments it
// gains or loses move — about 1/N of them — instead of (N−1)/N under
// modulo hashing, so a resharded deployment keeps most coflow IDs
// resolvable by hash alone.
//
// A Ring is immutable after NewRing and safe for concurrent use.
type Ring struct {
	points []ringPoint // sorted by hash
	shards int
}

type ringPoint struct {
	hash  uint64
	shard int
}

// defaultReplicas is the virtual-node count per fabric: enough that
// the max/mean key imbalance stays well under the 2× routing bound
// (empirically ~±15% at 128), cheap enough that building the ring is
// microseconds.
const defaultReplicas = 128

// NewRing builds a ring over shards fabrics with the given number of
// virtual points each (0 means defaultReplicas). It panics on a
// non-positive shard count — the cluster validates its config first.
func NewRing(shards, replicas int) *Ring {
	if shards <= 0 {
		panic("shard: non-positive shard count")
	}
	if replicas <= 0 {
		replicas = defaultReplicas
	}
	r := &Ring{
		points: make([]ringPoint, 0, shards*replicas),
		shards: shards,
	}
	for s := 0; s < shards; s++ {
		for j := 0; j < replicas; j++ {
			// shard and replica packed into one unique seed; mix64
			// spreads consecutive seeds uniformly over the ring.
			h := mix64(uint64(s)<<32 | uint64(j))
			r.points = append(r.points, ringPoint{hash: h, shard: s})
		}
	}
	sortPoints(r.points)
	return r
}

// Shards returns the number of fabrics on the ring.
func (r *Ring) Shards() int { return r.shards }

// Route maps a coflow ID (or any key) to its fabric: the owner of the
// first ring point at or after mix64(key), wrapping past the top.
// This sits on the ingest hot path — a binary search over a fixed
// slice, no allocation.
//
//coflow:allocfree
func (r *Ring) Route(key uint64) int {
	h := mix64(key)
	// Manual binary search for the first point with hash >= h
	// (sort.Search would force h and the receiver into a closure).
	lo, hi := 0, len(r.points)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if r.points[mid].hash < h {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(r.points) {
		lo = 0 // wrapped past the highest point
	}
	return r.points[lo].shard
}

// mix64 is the SplitMix64 finalizer: a cheap bijective mixer whose
// output is uniform even on sequential inputs, which is exactly what
// monotone coflow IDs are.
//
//coflow:allocfree
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// sortPoints sorts by hash; mix64 is bijective over distinct seeds so
// ties cannot happen and the order is total.
func sortPoints(ps []ringPoint) {
	slices.SortFunc(ps, func(a, b ringPoint) int {
		switch {
		case a.hash < b.hash:
			return -1
		case a.hash > b.hash:
			return 1
		}
		return 0
	})
}
