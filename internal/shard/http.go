package shard

import (
	"errors"
	"net/http"
	"strconv"

	"coflow/internal/daemon"
	"coflow/internal/obs"
	"coflow/internal/online"
)

// Handler returns the cluster's HTTP control plane. It is the
// single-fabric daemon's API made shard-aware:
//
//	POST   /v1/coflows              register one coflow (object body) or
//	                                many (array body, per-item results)
//	GET    /v1/coflows              every coflow across all fabrics
//	DELETE /v1/coflows              bulk-cancel (JSON array of IDs,
//	                                per-item results + owning fabric)
//	GET    /v1/coflows/{id}         one coflow's status (+ owning fabric)
//	DELETE /v1/coflows/{id}         cancel, wherever the coflow lives
//	POST   /v1/ports/{port}/fail    take a port offline on every fabric
//	                                that has it (?fabric=K targets one)
//	POST   /v1/ports/{port}/recover bring a failed port back
//	GET    /v1/schedule             per-fabric matchings (?fabric=K filters)
//	GET    /v1/metrics              cross-shard rollup + per-shard detail
//	GET    /metrics                 Prometheus text: cluster registry plus
//	                                every fabric's registry under fabric="i"
//	GET    /healthz                 liveness + per-fabric slots
//
// All GETs read atomic snapshots and the amortized aggregate; no
// request ever waits on a fabric loop. Errors follow the daemon's
// structured {"error","kind"} contract, with kind unknown_fabric for
// registrations or filters naming a fabric the cluster does not have,
// and kind terminal_coflow for cancelling an already completed or
// cancelled coflow.
func (c *Cluster) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/coflows", c.handleRegister)
	mux.HandleFunc("GET /v1/coflows", c.handleList)
	mux.HandleFunc("DELETE /v1/coflows", c.handleBulkCancel)
	mux.HandleFunc("GET /v1/coflows/{id}", c.handleGet)
	mux.HandleFunc("DELETE /v1/coflows/{id}", c.handleCancel)
	mux.HandleFunc("POST /v1/ports/{port}/fail", c.handlePortFail)
	mux.HandleFunc("POST /v1/ports/{port}/recover", c.handlePortRecover)
	mux.HandleFunc("GET /v1/schedule", c.handleSchedule)
	mux.HandleFunc("GET /v1/metrics", c.handleMetrics)
	mux.HandleFunc("GET /metrics", c.handlePrometheus)
	mux.HandleFunc("GET /healthz", c.handleHealthz)
	mux.HandleFunc("/v1/coflows", daemon.MethodNotAllowed("DELETE, GET, POST"))
	mux.HandleFunc("/v1/coflows/{id}", daemon.MethodNotAllowed("DELETE, GET"))
	mux.HandleFunc("/v1/ports/{port}/fail", daemon.MethodNotAllowed("POST"))
	mux.HandleFunc("/v1/ports/{port}/recover", daemon.MethodNotAllowed("POST"))
	mux.HandleFunc("/v1/schedule", daemon.MethodNotAllowed("GET"))
	mux.HandleFunc("/v1/metrics", daemon.MethodNotAllowed("GET"))
	mux.HandleFunc("/metrics", daemon.MethodNotAllowed("GET"))
	mux.HandleFunc("/healthz", daemon.MethodNotAllowed("GET"))
	return mux
}

func (c *Cluster) handleRegister(w http.ResponseWriter, r *http.Request) {
	// Parse-time validation uses the widest fabric so a heterogeneous
	// deployment never rejects a port the target fabric does have; the
	// owning fabric re-validates against its own size on ingest.
	bulk, items := daemon.ServeRegister(w, r, c.maxBody, c.maxPorts, c.Register)
	if bulk {
		c.obs.bulkRequests.Inc()
		c.obs.bulkItems.Add(int64(items))
	}
}

// coflowEntry decorates a coflow status with its owning fabric.
type coflowEntry struct {
	Fabric int `json:"fabric"`
	*daemon.CoflowStatus
}

func (c *Cluster) handleList(w http.ResponseWriter, r *http.Request) {
	slots := make([]int64, len(c.fabrics))
	coflows := make(map[int]coflowEntry)
	for i, d := range c.fabrics {
		snap := d.Snapshot()
		slots[i] = snap.Slot
		snap.Coflows.Range(func(id int, cs *daemon.CoflowStatus) bool {
			coflows[id] = coflowEntry{Fabric: i, CoflowStatus: cs}
			return true
		})
	}
	daemon.WriteJSON(w, http.StatusOK, map[string]any{
		"fabrics": len(c.fabrics),
		"slots":   slots,
		"coflows": coflows,
	})
}

// pathID parses the {id} path segment.
func pathID(w http.ResponseWriter, r *http.Request) (int, bool) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil || id <= 0 {
		daemon.WriteError(w, http.StatusBadRequest, "validation", "coflow id must be a positive integer")
		return 0, false
	}
	return id, true
}

func (c *Cluster) handleGet(w http.ResponseWriter, r *http.Request) {
	id, ok := pathID(w, r)
	if !ok {
		return
	}
	fabric, cs, ok := c.Owner(id)
	if !ok {
		daemon.WriteError(w, http.StatusNotFound, "not_found", "unknown coflow "+strconv.Itoa(id))
		return
	}
	daemon.WriteJSON(w, http.StatusOK, coflowEntry{Fabric: fabric, CoflowStatus: cs})
}

func (c *Cluster) handleCancel(w http.ResponseWriter, r *http.Request) {
	id, ok := pathID(w, r)
	if !ok {
		return
	}
	if err := c.Cancel(id); err != nil {
		// ErrUnknownCoflow wraps daemon.ErrUnknownCoflow, so the shared
		// classifier answers exactly like the single-fabric plane:
		// not_found for an unknown ID, terminal_coflow 409 for a coflow
		// that already completed or was cancelled.
		code, kind := daemon.CancelErrorStatus(err)
		daemon.WriteError(w, code, kind, err.Error())
		return
	}
	daemon.WriteJSON(w, http.StatusOK, map[string]any{"id": id, "cancelled": true})
}

func (c *Cluster) handleBulkCancel(w http.ResponseWriter, r *http.Request) {
	items := daemon.ServeBulkCancel(w, r, c.maxBody, c.CancelFabric)
	if items > 0 {
		c.obs.bulkRequests.Inc()
		c.obs.bulkItems.Add(int64(items))
	}
}

// pathFabric parses the optional ?fabric=K query; -1 means every
// fabric.
func (c *Cluster) pathFabric(w http.ResponseWriter, r *http.Request) (int, bool) {
	q := r.URL.Query().Get("fabric")
	if q == "" {
		return -1, true
	}
	k, err := strconv.Atoi(q)
	if err != nil || k < 0 || k >= len(c.fabrics) {
		daemon.WriteError(w, http.StatusBadRequest, "unknown_fabric",
			"fabric must be an integer in 0.."+strconv.Itoa(len(c.fabrics)-1))
		return 0, false
	}
	return k, true
}

// pathPort parses the {port} path segment.
func pathPort(w http.ResponseWriter, r *http.Request) (int, bool) {
	p, err := strconv.Atoi(r.PathValue("port"))
	if err != nil || p < 0 {
		daemon.WriteError(w, http.StatusBadRequest, "validation", "port must be a non-negative integer")
		return 0, false
	}
	return p, true
}

func (c *Cluster) handlePortFail(w http.ResponseWriter, r *http.Request) {
	c.servePortOp(w, r, true)
}

func (c *Cluster) handlePortRecover(w http.ResponseWriter, r *http.Request) {
	c.servePortOp(w, r, false)
}

func (c *Cluster) servePortOp(w http.ResponseWriter, r *http.Request, fail bool) {
	port, ok := pathPort(w, r)
	if !ok {
		return
	}
	fabric, ok := c.pathFabric(w, r)
	if !ok {
		return
	}
	var err error
	if fail {
		err = c.FailPort(fabric, port)
	} else {
		err = c.RecoverPort(fabric, port)
	}
	if err != nil {
		switch {
		case errors.Is(err, daemon.ErrClosed):
			daemon.WriteError(w, http.StatusServiceUnavailable, "unavailable", err.Error())
		case errors.Is(err, daemon.ErrUnknownFabric):
			daemon.WriteError(w, http.StatusBadRequest, "unknown_fabric", err.Error())
		default:
			daemon.WriteError(w, http.StatusBadRequest, "validation", err.Error())
		}
		return
	}
	daemon.WriteJSON(w, http.StatusOK, map[string]any{"port": port, "fabric": fabric, "failed": fail})
}

// fabricSchedule is one fabric's slice of GET /v1/schedule.
type fabricSchedule struct {
	Fabric      int                 `json:"fabric"`
	Slot        int64               `json:"slot"`
	Policy      string              `json:"policy"`
	Assignments []online.Assignment `json:"assignments"`
}

func (c *Cluster) handleSchedule(w http.ResponseWriter, r *http.Request) {
	first, last := 0, len(c.fabrics)-1
	if q := r.URL.Query().Get("fabric"); q != "" {
		k, err := strconv.Atoi(q)
		if err != nil || k < 0 || k >= len(c.fabrics) {
			daemon.WriteError(w, http.StatusBadRequest, "unknown_fabric",
				"fabric must be an integer in 0.."+strconv.Itoa(len(c.fabrics)-1))
			return
		}
		first, last = k, k
	}
	schedules := make([]fabricSchedule, 0, last-first+1)
	for i := first; i <= last; i++ {
		snap := c.fabrics[i].Snapshot()
		assignments := snap.Schedule
		if assignments == nil {
			assignments = []online.Assignment{} // render [] rather than null
		}
		schedules = append(schedules, fabricSchedule{
			Fabric:      i,
			Slot:        snap.Slot,
			Policy:      snap.Metrics.ActivePolicy,
			Assignments: assignments,
		})
	}
	daemon.WriteJSON(w, http.StatusOK, map[string]any{
		"fabrics":   len(c.fabrics),
		"schedules": schedules,
	})
}

func (c *Cluster) handleMetrics(w http.ResponseWriter, r *http.Request) {
	daemon.WriteJSON(w, http.StatusOK, c.Metrics())
}

// handlePrometheus renders one exposition: the cluster registry's own
// series (router counters, ingest latency, rollup gauges — refreshed
// through the amortized aggregate first), followed by every fabric's
// registry zipped under a fabric="i" label so per-shard series share
// a single HELP/TYPE block per metric name.
func (c *Cluster) handlePrometheus(w http.ResponseWriter, r *http.Request) {
	c.Metrics() // refresh rollup gauges (amortized)
	w.Header().Set("Content-Type", obs.PrometheusContentType)
	// Best effort: a short scrape means the scraper disconnected.
	if err := c.obs.reg.WritePrometheus(w); err != nil {
		return
	}
	regs := make([]*obs.Registry, len(c.fabrics))
	for i, d := range c.fabrics {
		regs[i] = d.MetricsRegistry()
	}
	// Same best-effort contract as above.
	_ = obs.WritePrometheusLabeled(w, "fabric", c.labels, regs)
}

func (c *Cluster) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if c.closed.Load() {
		daemon.WriteError(w, http.StatusServiceUnavailable, "unavailable", "shutting down")
		return
	}
	slots := make([]int64, len(c.fabrics))
	for i, d := range c.fabrics {
		slots[i] = d.Snapshot().Slot
	}
	daemon.WriteJSON(w, http.StatusOK, map[string]any{
		"status":  "ok",
		"fabrics": len(c.fabrics),
		"slots":   slots,
	})
}
