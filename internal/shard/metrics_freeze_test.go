package shard

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestMetricsSnapshotImmutable is the hand-audit regression for the
// publish discipline on the metrics cache: Metrics() publishes its
// result via an atomic pointer Store, so a snapshot handed to one
// scraper must never be mutated by a later recompute — each window
// builds a fresh ClusterMetrics and publishes that instead.
func TestMetricsSnapshotImmutable(t *testing.T) {
	c := newTestCluster(t, Config{Shards: 2, AggEvery: -1})
	if _, _, _, err := c.Register(oneFlow()); err != nil {
		t.Fatal(err)
	}
	first := c.Metrics()
	before, err := json.Marshal(first)
	if err != nil {
		t.Fatal(err)
	}

	// Change every roll-up input, then force a recompute + re-publish.
	for i := 0; i < 3; i++ {
		if _, _, _, err := c.Register(oneFlow()); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Tick(); err != nil {
		t.Fatal(err)
	}
	second := c.Metrics()
	if second == first {
		t.Fatal("recompute republished the same snapshot pointer")
	}
	if second.Registered != 4 {
		t.Fatalf("fresh snapshot registered = %d, want 4", second.Registered)
	}

	after, err := json.Marshal(first)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatalf("published snapshot mutated by a later recompute:\nbefore: %s\nafter:  %s", before, after)
	}
}
