package shard

import (
	"testing"

	"coflow/internal/coflowmodel"
	"coflow/internal/daemon"
	"coflow/internal/online"
)

// BenchmarkClusterRegister measures direct (no-HTTP) ingest through
// the router and fabric loops, parallel clients.
func BenchmarkClusterRegister(b *testing.B) {
	c, err := New(Config{Shards: 4, AggEvery: -1, Fabric: daemon.Config{Ports: 16, Policy: online.SEBF}})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			reg := &coflowmodel.Registration{Flows: []coflowmodel.Flow{{Src: 0, Dst: 1, Size: 5}}}
			if _, _, _, err := c.Register(reg); err != nil {
				b.Fatal(err)
			}
		}
	})
}
