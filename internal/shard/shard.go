package shard

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"coflow/internal/coflowmodel"
	"coflow/internal/daemon"
)

// ErrUnknownCoflow is returned for operations addressing an ID no
// fabric has ever seen. It wraps daemon.ErrUnknownCoflow so error
// classification — and the HTTP planes' not_found mapping via
// daemon.CancelErrorStatus — is uniform whether a cancel misses on a
// single fabric or across the whole cluster.
var ErrUnknownCoflow = fmt.Errorf("shard: %w", daemon.ErrUnknownCoflow)

// Config parametrizes a Cluster.
type Config struct {
	// Shards is the number of independent switch fabrics; zero means 1.
	Shards int
	// Replicas is the consistent-hash ring's virtual-node count per
	// fabric; zero means the package default (128).
	Replicas int
	// Fabric is the per-fabric daemon configuration (ports, policy,
	// tick, deadline guard, self-check, ...). Every fabric gets an
	// identical copy except SnapshotPath, which is suffixed with the
	// fabric index when Shards > 1 so fabrics do not clobber each
	// other's final state.
	Fabric daemon.Config
	// Ports optionally overrides Fabric.Ports per fabric for a
	// heterogeneous deployment (len must equal Shards). Registrations
	// are validated against the ports of the fabric they route to.
	Ports []int
	// AggEvery bounds how often the cross-shard metrics aggregate is
	// recomputed: reads within the window share the cached aggregate,
	// so a scrape storm costs one N-fabric walk per window instead of
	// one per request. Zero means 25ms; negative disables caching
	// (every read recomputes — tests use this for determinism).
	AggEvery time.Duration
}

// Cluster owns N switch fabrics behind one control plane. Writes
// (register, cancel) are routed to exactly one fabric's single-writer
// loop; reads are served from per-fabric atomic snapshots and the
// amortized aggregate. A Cluster is safe for concurrent use.
type Cluster struct {
	cfg     Config
	ring    *Ring
	fabrics []*daemon.Daemon
	obs     *clusterObs

	// nextID is the cluster-unique coflow ID sequence. IDs are
	// assigned here (not by the fabrics) so one ID space spans the
	// cluster and the consistent hash of the ID is the routing key.
	nextID atomic.Int64

	agg       atomic.Pointer[aggregate]
	aggStamp  atomic.Int64 // monotonic ns of the newest (re)compute claim
	aggEpoch  time.Time    // base for monotonic stamps
	closed    atomic.Bool
	closeOnce sync.Once
	closeErr  error

	// maxBody and maxPorts are HTTP-plane precomputes: the request
	// body cap, and the widest fabric's port count (parse-time
	// validation bound; the owning fabric re-validates on ingest).
	maxBody  int64
	maxPorts int
	// labels holds "0".."N-1" for the Prometheus fabric label.
	labels []string
}

// aggregate is one cached cross-shard metrics rollup.
type aggregate struct {
	metrics *ClusterMetrics
}

// ShardMetrics is one fabric's slice of the cluster metrics payload.
type ShardMetrics struct {
	Fabric  int            `json:"fabric"`
	Ports   int            `json:"ports"`
	Slot    int64          `json:"slot"`
	Metrics daemon.Metrics `json:"metrics"`
}

// ClusterMetrics is the fabric-level rollup plus per-shard detail
// served by the sharded GET /v1/metrics.
type ClusterMetrics struct {
	Fabrics       int     `json:"fabrics"`
	Registered    int64   `json:"registered"`
	Completed     int64   `json:"completed"`
	Cancelled     int64   `json:"cancelled"`
	Active        int     `json:"active_coflows"`
	Ticks         int64   `json:"ticks"`
	TicksSkipped  int64   `json:"ticks_skipped"`
	TotalWeighted float64 `json:"total_weighted_completion"`

	// Router and ingestion-plane counters.
	Routed        int64 `json:"routed"`
	Pinned        int64 `json:"pinned"`
	FallbackScans int64 `json:"route_fallback_scans"`
	BulkRequests  int64 `json:"bulk_requests"`
	BulkItems     int64 `json:"bulk_items"`

	// IngestLatency summarizes coflow_cluster_ingest_seconds: the
	// server-side latency of one registration through route + loop.
	IngestLatency HistogramJSON `json:"ingest_latency"`

	PerShard []ShardMetrics `json:"per_shard"`
}

// HistogramJSON mirrors obs.HistogramSnapshot for the JSON payload.
type HistogramJSON struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P99   float64 `json:"p99"`
}

// New validates cfg and starts every fabric (each with its own event
// loop, and its own ticker when Fabric.Tick > 0).
func New(cfg Config) (*Cluster, error) {
	if cfg.Shards == 0 {
		cfg.Shards = 1
	}
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("shard: negative shard count %d", cfg.Shards)
	}
	if cfg.Ports != nil && len(cfg.Ports) != cfg.Shards {
		return nil, fmt.Errorf("shard: %d per-fabric port overrides for %d shards", len(cfg.Ports), cfg.Shards)
	}
	if cfg.AggEvery == 0 {
		cfg.AggEvery = 25 * time.Millisecond
	}
	c := &Cluster{
		cfg:      cfg,
		ring:     NewRing(cfg.Shards, cfg.Replicas),
		fabrics:  make([]*daemon.Daemon, 0, cfg.Shards),
		obs:      newClusterObs(),
		aggEpoch: time.Now(),
	}
	for i := 0; i < cfg.Shards; i++ {
		fc := cfg.Fabric
		if cfg.Ports != nil {
			fc.Ports = cfg.Ports[i]
		}
		if fc.SnapshotPath != "" && cfg.Shards > 1 {
			fc.SnapshotPath = fmt.Sprintf("%s.fabric%d", fc.SnapshotPath, i)
		}
		d, err := daemon.New(fc)
		if err != nil {
			// Already-started fabrics must not leak their loops.
			for _, prev := range c.fabrics {
				// Already failing: the config error is what the caller
				// needs; fabric teardown is best effort.
				_ = prev.Close()
			}
			return nil, fmt.Errorf("shard: fabric %d: %w", i, err)
		}
		c.fabrics = append(c.fabrics, d)
	}
	c.maxBody = cfg.Fabric.MaxBody
	if c.maxBody <= 0 {
		c.maxBody = 1 << 20
	}
	c.labels = make([]string, cfg.Shards)
	for i, d := range c.fabrics {
		c.labels[i] = fmt.Sprintf("%d", i)
		if p := d.Ports(); p > c.maxPorts {
			c.maxPorts = p
		}
	}
	c.obs.fabrics.Set(float64(cfg.Shards))
	return c, nil
}

// Shards returns the fabric count.
func (c *Cluster) Shards() int { return len(c.fabrics) }

// Fabric returns fabric i (panics out of range). For tests and the
// load generator's self-test harness.
func (c *Cluster) Fabric(i int) *daemon.Daemon { return c.fabrics[i] }

// Close drains every fabric: each loop stops, writes its final
// snapshot if configured, and refuses further commands. The first
// error from each fabric is joined.
func (c *Cluster) Close() error {
	c.closeOnce.Do(func() {
		c.closed.Store(true)
		errs := make([]error, len(c.fabrics))
		for i, d := range c.fabrics {
			errs[i] = d.Close()
		}
		c.closeErr = errors.Join(errs...)
	})
	return c.closeErr
}

// Register routes one registration: to its pinned fabric when the
// registration names one, otherwise to the consistent hash of the
// cluster-assigned coflow ID. The returned fabric is where the coflow
// lives; reads and cancels find it again through Owner.
func (c *Cluster) Register(reg *coflowmodel.Registration) (id int, release int64, fabric int, err error) {
	span := c.obs.ingestSeconds.Start()
	defer span.End()
	id = int(c.nextID.Add(1))
	if reg.Fabric != nil {
		fabric = *reg.Fabric
		if fabric < 0 || fabric >= len(c.fabrics) {
			c.obs.ingestErrors.Inc()
			return 0, 0, 0, fmt.Errorf("shard: %w %d (cluster has fabrics 0..%d)",
				daemon.ErrUnknownFabric, fabric, len(c.fabrics)-1)
		}
		c.obs.pinned.Inc()
	} else {
		fabric = c.ring.Route(uint64(id))
		c.obs.routed.Inc()
	}
	release, err = c.fabrics[fabric].RegisterWithID(id, reg)
	if err != nil {
		c.obs.ingestErrors.Inc()
		return 0, 0, 0, err
	}
	return id, release, fabric, nil
}

// Owner locates the fabric holding id: the hash owner first (every
// unpinned coflow lives there), then a scan of the remaining
// snapshots (pinned coflows, counted as fallback scans). Reads only
// atomic snapshots — never a fabric loop — and registrations are
// published before their reply, so an acked ID is always findable.
func (c *Cluster) Owner(id int) (fabric int, cs *daemon.CoflowStatus, ok bool) {
	if id <= 0 {
		return 0, nil, false
	}
	f := c.ring.Route(uint64(id))
	if cs := c.fabrics[f].Snapshot().Coflows.Get(id); cs != nil {
		return f, cs, true
	}
	c.obs.fallbackScans.Inc()
	for i, d := range c.fabrics {
		if i == f {
			continue
		}
		if cs := d.Snapshot().Coflows.Get(id); cs != nil {
			return i, cs, true
		}
	}
	return 0, nil, false
}

// Cancel cancels the live coflow with the given cluster ID, wherever
// it lives.
func (c *Cluster) Cancel(id int) error {
	_, err := c.CancelFabric(id)
	return err
}

// CancelFabric cancels like Cancel and additionally reports the fabric
// that owned the coflow; the bulk-cancel HTTP plane uses it to fill
// index-addressed per-item results.
func (c *Cluster) CancelFabric(id int) (fabric int, err error) {
	fabric, _, ok := c.Owner(id)
	if !ok {
		return 0, fmt.Errorf("%w %d", ErrUnknownCoflow, id)
	}
	return fabric, c.fabrics[fabric].Cancel(id)
}

// FailPort takes port p offline on fabric k, or on every fabric that
// has the port when k is negative (heterogeneous clusters skip fabrics
// too small for it). Demand on a failed port is parked, never dropped
// (see daemon.FailPort). It fails if k names no fabric, or if no
// fabric has the port.
func (c *Cluster) FailPort(fabric, port int) error {
	return c.portOp(fabric, port, true)
}

// RecoverPort brings port p back online on fabric k, or on every
// fabric that has the port when k is negative.
func (c *Cluster) RecoverPort(fabric, port int) error {
	return c.portOp(fabric, port, false)
}

func (c *Cluster) portOp(fabric, port int, fail bool) error {
	do := func(d *daemon.Daemon) error {
		if fail {
			return d.FailPort(port)
		}
		return d.RecoverPort(port)
	}
	if fabric >= 0 {
		if fabric >= len(c.fabrics) {
			return fmt.Errorf("shard: %w %d (cluster has fabrics 0..%d)",
				daemon.ErrUnknownFabric, fabric, len(c.fabrics)-1)
		}
		return do(c.fabrics[fabric])
	}
	applied := false
	for i, d := range c.fabrics {
		if port >= d.Ports() {
			continue
		}
		if err := do(d); err != nil {
			return fmt.Errorf("shard: fabric %d: %w", i, err)
		}
		applied = true
	}
	if !applied {
		return fmt.Errorf("shard: port %d outside every fabric", port)
	}
	return nil
}

// Tick advances every fabric one slot synchronously, in fabric order.
// Tests and external clocks use it; production fabrics run their own
// tickers (Config.Fabric.Tick > 0).
func (c *Cluster) Tick() error {
	for i, d := range c.fabrics {
		if err := d.Tick(); err != nil {
			return fmt.Errorf("shard: fabric %d: %w", i, err)
		}
	}
	return nil
}

// Metrics returns the cross-shard rollup, recomputing at most once
// per Config.AggEvery: concurrent readers inside the window share the
// cached aggregate (an atomic pointer load), so heavy scrape traffic
// costs one N-fabric walk per window, not per request. The loser of a
// recompute race serves the winner's (fresh) result.
func (c *Cluster) Metrics() *ClusterMetrics {
	if c.cfg.AggEvery > 0 {
		now := time.Since(c.aggEpoch).Nanoseconds()
		stamp := c.aggStamp.Load()
		if cached := c.agg.Load(); cached != nil && now-stamp < c.cfg.AggEvery.Nanoseconds() {
			return cached.metrics
		}
		if !c.aggStamp.CompareAndSwap(stamp, now) {
			// Another reader claimed the recompute; serve what is
			// published (it is at most one window old).
			if cached := c.agg.Load(); cached != nil {
				return cached.metrics
			}
		}
	}
	m := c.computeMetrics()
	c.agg.Store(&aggregate{metrics: m})
	return m
}

// computeMetrics walks every fabric snapshot and the cluster
// registry. O(shards); called through the amortizing cache.
func (c *Cluster) computeMetrics() *ClusterMetrics {
	o := c.obs
	ing := o.ingestSeconds.Snapshot()
	m := &ClusterMetrics{
		Fabrics:       len(c.fabrics),
		Routed:        o.routed.Value(),
		Pinned:        o.pinned.Value(),
		FallbackScans: o.fallbackScans.Value(),
		BulkRequests:  o.bulkRequests.Value(),
		BulkItems:     o.bulkItems.Value(),
		IngestLatency: HistogramJSON{Count: ing.Count, Mean: ing.Mean, P50: ing.P50, P99: ing.P99},
		PerShard:      make([]ShardMetrics, len(c.fabrics)),
	}
	for i, d := range c.fabrics {
		snap := d.Snapshot()
		dm := snap.Metrics
		m.PerShard[i] = ShardMetrics{Fabric: i, Ports: d.Ports(), Slot: snap.Slot, Metrics: dm}
		m.Registered += dm.Registered
		m.Completed += dm.Completed
		m.Cancelled += dm.Cancelled
		m.Active += dm.ActiveCoflows
		m.Ticks += dm.Ticks
		m.TicksSkipped += dm.TicksSkipped
		m.TotalWeighted += dm.TotalWeighted
	}
	o.rollupRegistered.Set(float64(m.Registered))
	o.rollupCompleted.Set(float64(m.Completed))
	o.rollupCancelled.Set(float64(m.Cancelled))
	o.rollupActive.Set(float64(m.Active))
	o.rollupWeighted.Set(m.TotalWeighted)
	return m
}
