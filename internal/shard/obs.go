package shard

import "coflow/internal/obs"

// clusterObs is the cluster-level metrics registry: the routing and
// ingestion counters that exist above any single fabric. Per-fabric
// scheduling metrics stay in each daemon's own registry (scoped by a
// fabric label in the Prometheus exposition); this registry only
// carries what the router and the bulk plane themselves do.
type clusterObs struct {
	reg *obs.Registry

	fabrics       *obs.Gauge
	routed        *obs.Counter
	pinned        *obs.Counter
	fallbackScans *obs.Counter
	bulkRequests  *obs.Counter
	bulkItems     *obs.Counter
	ingestErrors  *obs.Counter
	ingestSeconds *obs.Histogram

	// Scrape-time rollups across fabrics, refreshed from the amortized
	// aggregate: one place a dashboard can read cluster totals without
	// summing labeled series.
	rollupRegistered *obs.Gauge
	rollupCompleted  *obs.Gauge
	rollupCancelled  *obs.Gauge
	rollupActive     *obs.Gauge
	rollupWeighted   *obs.Gauge
}

func newClusterObs() *clusterObs {
	r := obs.NewRegistry()
	return &clusterObs{
		reg: r,

		fabrics:       r.Gauge("coflow_cluster_fabrics", "switch fabrics in the cluster"),
		routed:        r.Counter("coflow_cluster_routed_total", "registrations placed by the consistent-hash router"),
		pinned:        r.Counter("coflow_cluster_pinned_total", "registrations placed by an explicit fabric ID"),
		fallbackScans: r.Counter("coflow_cluster_route_fallback_scans_total", "ID lookups that missed the hash-owner fabric and scanned the rest (pinned coflows)"),
		bulkRequests:  r.Counter("coflow_cluster_bulk_requests_total", "bulk (array-body) registration requests"),
		bulkItems:     r.Counter("coflow_cluster_bulk_items_total", "registration items carried by bulk requests"),
		ingestErrors:  r.Counter("coflow_cluster_ingest_errors_total", "registrations rejected (validation, unknown fabric, or shutdown)"),
		ingestSeconds: r.Histogram("coflow_cluster_ingest_seconds", "latency of one registration through route and fabric loop", obs.LatencyBuckets),

		rollupRegistered: r.Gauge("coflow_cluster_coflows_registered", "rollup: coflows registered across all fabrics"),
		rollupCompleted:  r.Gauge("coflow_cluster_coflows_completed", "rollup: coflows completed across all fabrics"),
		rollupCancelled:  r.Gauge("coflow_cluster_coflows_cancelled", "rollup: coflows cancelled across all fabrics"),
		rollupActive:     r.Gauge("coflow_cluster_coflows_active", "rollup: live coflows across all fabrics"),
		rollupWeighted:   r.Gauge("coflow_cluster_total_weighted_completion", "rollup: sum of weight times completion slot across all fabrics"),
	}
}
