package shard

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"coflow/internal/daemon"
)

func newTestServer(t *testing.T, cfg Config) (*Cluster, *httptest.Server) {
	t.Helper()
	c := newTestCluster(t, cfg)
	srv := httptest.NewServer(c.Handler())
	t.Cleanup(srv.Close)
	return c, srv
}

func doJSON(t *testing.T, method, url, body string, out any) (int, string) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("%s %s: bad JSON %q: %v", method, url, raw, err)
		}
	}
	return resp.StatusCode, string(raw)
}

// TestHTTPSingleRegisterLifecycle: the single-object contract survives
// sharding — 201 with the owning fabric, readable and cancellable by
// ID from any frontend, structured 404/409 afterwards.
func TestHTTPSingleRegisterLifecycle(t *testing.T) {
	_, srv := newTestServer(t, Config{Shards: 4})
	var created struct {
		ID     int `json:"id"`
		Fabric int `json:"fabric"`
	}
	code, raw := doJSON(t, "POST", srv.URL+"/v1/coflows",
		`{"flows": [{"src": 0, "dst": 1, "size": 3}]}`, &created)
	if code != http.StatusCreated || created.ID == 0 {
		t.Fatalf("POST = %d %s", code, raw)
	}

	var got struct {
		Fabric int    `json:"fabric"`
		ID     int    `json:"id"`
		State  string `json:"state"`
	}
	idPath := srv.URL + "/v1/coflows/" + strconv.Itoa(created.ID)
	if code, raw := doJSON(t, "GET", idPath, "", &got); code != http.StatusOK ||
		got.ID != created.ID || got.Fabric != created.Fabric || got.State != "active" {
		t.Fatalf("GET = %d %s", code, raw)
	}

	if code, raw := doJSON(t, "DELETE", idPath, "", nil); code != http.StatusOK {
		t.Fatalf("DELETE = %d %s", code, raw)
	}
	var errBody struct {
		Kind string `json:"kind"`
	}
	if code, _ := doJSON(t, "DELETE", idPath, "", &errBody); code != http.StatusConflict || errBody.Kind != "terminal_coflow" {
		t.Fatalf("second DELETE = %d kind=%q, want 409 terminal_coflow", code, errBody.Kind)
	}
	if code, _ := doJSON(t, "GET", srv.URL+"/v1/coflows/99999", "", &errBody); code != http.StatusNotFound || errBody.Kind != "not_found" {
		t.Fatalf("GET unknown = %d kind=%q, want 404 not_found", code, errBody.Kind)
	}
}

// TestHTTPBulkRegister: an array body yields index-aligned per-item
// results where bad items (validation, unknown fabric) fail alone, and
// the bulk plane meters the request.
func TestHTTPBulkRegister(t *testing.T) {
	c, srv := newTestServer(t, Config{Shards: 4})
	body := `[
		{"flows": [{"src": 0, "dst": 0, "size": 1}]},
		{"flows": [{"src": 9, "dst": 0, "size": 1}]},
		{"flows": [{"src": 0, "dst": 1, "size": 2}], "fabric": 9},
		{"flows": [{"src": 1, "dst": 1, "size": 2}], "fabric": 2}
	]`
	var resp daemon.BulkResponse
	code, raw := doJSON(t, "POST", srv.URL+"/v1/coflows", body, &resp)
	if code != http.StatusOK {
		t.Fatalf("bulk POST = %d %s", code, raw)
	}
	if resp.OK != 2 || resp.Failed != 2 || len(resp.Results) != 4 {
		t.Fatalf("bulk response = %+v", resp)
	}
	if r := resp.Results[0]; r.ID == 0 || r.Kind != "" {
		t.Fatalf("item 0 = %+v, want accepted", r)
	}
	if r := resp.Results[1]; r.Kind != "validation" {
		t.Fatalf("item 1 kind = %q, want validation", r.Kind)
	}
	if r := resp.Results[2]; r.Kind != "unknown_fabric" {
		t.Fatalf("item 2 kind = %q, want unknown_fabric", r.Kind)
	}
	if r := resp.Results[3]; r.ID == 0 || r.Fabric != 2 {
		t.Fatalf("item 3 = %+v, want accepted on fabric 2", r)
	}

	m := c.Metrics()
	if m.BulkRequests != 1 || m.BulkItems != 4 {
		t.Fatalf("bulk counters = %d/%d, want 1/4", m.BulkRequests, m.BulkItems)
	}
	if m.Registered != 2 {
		t.Fatalf("registered = %d, want 2", m.Registered)
	}
}

// TestHTTPBulkMalformed: body-level breakage (not an object or array,
// or a broken array) fails the whole request with malformed_json.
func TestHTTPBulkMalformed(t *testing.T) {
	_, srv := newTestServer(t, Config{Shards: 2})
	var errBody struct {
		Kind string `json:"kind"`
	}
	for _, body := range []string{`"nope"`, `[{"flows": []}`, `{broken`} {
		if code, _ := doJSON(t, "POST", srv.URL+"/v1/coflows", body, &errBody); code != http.StatusBadRequest || errBody.Kind != "malformed_json" {
			t.Fatalf("body %q = %d kind=%q, want 400 malformed_json", body, code, errBody.Kind)
		}
	}
}

// TestHTTPUnknownFabric: a single-object registration pinned to a
// fabric the cluster lacks gets the structured unknown_fabric 400.
func TestHTTPUnknownFabric(t *testing.T) {
	_, srv := newTestServer(t, Config{Shards: 2})
	var errBody struct {
		Kind  string `json:"kind"`
		Error string `json:"error"`
	}
	code, _ := doJSON(t, "POST", srv.URL+"/v1/coflows",
		`{"flows": [{"src": 0, "dst": 0, "size": 1}], "fabric": 42}`, &errBody)
	if code != http.StatusBadRequest || errBody.Kind != "unknown_fabric" {
		t.Fatalf("pinned-to-42 = %d kind=%q, want 400 unknown_fabric", code, errBody.Kind)
	}
	if !strings.Contains(errBody.Error, "0..1") {
		t.Fatalf("error %q does not name the valid fabric range", errBody.Error)
	}
}

// TestHTTPListAndSchedule: cluster-wide list carries the owning
// fabric; /v1/schedule covers every fabric and ?fabric=K filters.
func TestHTTPListAndSchedule(t *testing.T) {
	c, srv := newTestServer(t, Config{Shards: 3})
	for i := 0; i < 9; i++ {
		if _, _, _, err := c.Register(oneFlow()); err != nil {
			t.Fatal(err)
		}
	}
	var list struct {
		Fabrics int                        `json:"fabrics"`
		Slots   []int64                    `json:"slots"`
		Coflows map[string]json.RawMessage `json:"coflows"`
	}
	if code, raw := doJSON(t, "GET", srv.URL+"/v1/coflows", "", &list); code != http.StatusOK ||
		list.Fabrics != 3 || len(list.Slots) != 3 || len(list.Coflows) != 9 {
		t.Fatalf("list = %d %s", code, raw)
	}

	var sched struct {
		Fabrics   int `json:"fabrics"`
		Schedules []struct {
			Fabric      int               `json:"fabric"`
			Assignments []json.RawMessage `json:"assignments"`
		} `json:"schedules"`
	}
	if code, raw := doJSON(t, "GET", srv.URL+"/v1/schedule", "", &sched); code != http.StatusOK || len(sched.Schedules) != 3 {
		t.Fatalf("schedule = %d %s", code, raw)
	}
	if sched.Schedules[0].Assignments == nil {
		t.Fatal("assignments rendered as null, want []")
	}
	if code, raw := doJSON(t, "GET", srv.URL+"/v1/schedule?fabric=1", "", &sched); code != http.StatusOK ||
		len(sched.Schedules) != 1 || sched.Schedules[0].Fabric != 1 {
		t.Fatalf("filtered schedule = %d %s", code, raw)
	}
	var errBody struct {
		Kind string `json:"kind"`
	}
	if code, _ := doJSON(t, "GET", srv.URL+"/v1/schedule?fabric=7", "", &errBody); code != http.StatusBadRequest || errBody.Kind != "unknown_fabric" {
		t.Fatalf("fabric=7 = %d kind=%q, want 400 unknown_fabric", code, errBody.Kind)
	}
}

// TestHTTPPrometheus: one exposition carries the cluster registry plus
// every fabric's registry under fabric="i", with a single HELP/TYPE
// block per metric name (validity requirement).
func TestHTTPPrometheus(t *testing.T) {
	c, srv := newTestServer(t, Config{Shards: 2})
	for i := 0; i < 4; i++ {
		if _, _, _, err := c.Register(oneFlow()); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Tick(); err != nil {
		t.Fatal(err)
	}
	_, body := doJSON(t, "GET", srv.URL+"/metrics", "", nil)
	for _, want := range []string{
		"coflow_cluster_fabrics 2",
		"coflow_cluster_routed_total 4",
		"coflow_cluster_coflows_registered 4", // rollup gauge, refreshed at scrape
		`coflowd_ticks_total{fabric="0"} 1`,
		`coflowd_ticks_total{fabric="1"} 1`,
		`coflowd_coflows_registered_total{fabric="0"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	for _, name := range []string{"coflowd_ticks_total", "coflowd_coflows_registered_total", "coflowd_tick_seconds"} {
		if got := strings.Count(body, "# TYPE "+name+" "); got != 1 {
			t.Errorf("TYPE block for %s appears %d times, want 1", name, got)
		}
	}
}

// TestHTTPMetricsAndHealth: /v1/metrics serves the rollup, /healthz
// reports per-fabric slots and flips to 503 after Close.
func TestHTTPMetricsAndHealth(t *testing.T) {
	c, srv := newTestServer(t, Config{Shards: 2})
	if _, _, _, err := c.Register(oneFlow()); err != nil {
		t.Fatal(err)
	}
	var m ClusterMetrics
	if code, raw := doJSON(t, "GET", srv.URL+"/v1/metrics", "", &m); code != http.StatusOK ||
		m.Fabrics != 2 || m.Registered != 1 || len(m.PerShard) != 2 {
		t.Fatalf("metrics = %d %s", code, raw)
	}
	var h struct {
		Status string  `json:"status"`
		Slots  []int64 `json:"slots"`
	}
	if code, _ := doJSON(t, "GET", srv.URL+"/healthz", "", &h); code != http.StatusOK || h.Status != "ok" || len(h.Slots) != 2 {
		t.Fatalf("healthz = %d %+v", code, h)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if code, _ := doJSON(t, "GET", srv.URL+"/healthz", "", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("healthz after close = %d, want 503", code)
	}
}

// TestHTTPMethodNotAllowed: wrong methods get the structured 405 with
// an Allow header, same contract as the single-fabric daemon.
func TestHTTPMethodNotAllowed(t *testing.T) {
	_, srv := newTestServer(t, Config{Shards: 2})
	req, err := http.NewRequest("PUT", srv.URL+"/v1/coflows", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed || resp.Header.Get("Allow") == "" {
		t.Fatalf("PUT = %d Allow=%q", resp.StatusCode, resp.Header.Get("Allow"))
	}
}

// TestHTTPBulkCancel: the cluster-wide DELETE /v1/coflows resolves a
// mixed array of IDs independently, reports the owning fabric for
// clean cancels, and meters the bulk plane — same index-addressed
// format as bulk registration.
func TestHTTPBulkCancel(t *testing.T) {
	c, srv := newTestServer(t, Config{Shards: 4})
	live, _, liveFabric, err := c.Register(oneFlow())
	if err != nil {
		t.Fatal(err)
	}
	terminal, _, _, err := c.Register(oneFlow())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Cancel(terminal); err != nil {
		t.Fatal(err)
	}

	body := "[" + strconv.Itoa(live) + ", 99999, " + strconv.Itoa(terminal) + ", 0]"
	var resp daemon.BulkResponse
	if code, raw := doJSON(t, "DELETE", srv.URL+"/v1/coflows", body, &resp); code != http.StatusOK {
		t.Fatalf("bulk DELETE = %d %s", code, raw)
	}
	if resp.OK != 1 || resp.Failed != 3 || len(resp.Results) != 4 {
		t.Fatalf("bulk response = %+v, want 1 ok / 3 failed / 4 results", resp)
	}
	if r := resp.Results[0]; r.Index != 0 || r.ID != live || r.Fabric != liveFabric || r.Kind != "" {
		t.Fatalf("live item = %+v, want clean cancel on fabric %d", r, liveFabric)
	}
	if r := resp.Results[1]; r.Kind != "not_found" {
		t.Fatalf("unknown item = %+v, want not_found", r)
	}
	if r := resp.Results[2]; r.Kind != "terminal_coflow" {
		t.Fatalf("terminal item = %+v, want terminal_coflow", r)
	}
	if r := resp.Results[3]; r.Kind != "validation" {
		t.Fatalf("non-positive item = %+v, want validation", r)
	}
	if _, cs, ok := c.Owner(live); !ok || cs.State != "cancelled" {
		t.Fatalf("live coflow after bulk cancel: %+v", cs)
	}

	m := c.Metrics()
	if m.BulkRequests != 1 || m.BulkItems != 4 {
		t.Fatalf("bulk counters = %d/%d, want 1/4", m.BulkRequests, m.BulkItems)
	}
}

// TestHTTPPortOps: the port failure routes hit every fabric by
// default, one with ?fabric=K, and classify bad fabrics and ports
// with the structured kinds.
func TestHTTPPortOps(t *testing.T) {
	c, srv := newTestServer(t, Config{Shards: 3})
	var ack struct {
		Port   int  `json:"port"`
		Fabric int  `json:"fabric"`
		Failed bool `json:"failed"`
	}
	if code, raw := doJSON(t, "POST", srv.URL+"/v1/ports/1/fail", "", &ack); code != http.StatusOK ||
		ack.Port != 1 || ack.Fabric != -1 || !ack.Failed {
		t.Fatalf("cluster-wide fail = %d %s", code, raw)
	}
	for i, d := range c.fabrics {
		if got := d.Snapshot().Metrics.PortsFailed; got != 1 {
			t.Fatalf("fabric %d ports_failed = %d, want 1", i, got)
		}
	}
	if code, raw := doJSON(t, "POST", srv.URL+"/v1/ports/1/recover?fabric=2", "", &ack); code != http.StatusOK ||
		ack.Fabric != 2 || ack.Failed {
		t.Fatalf("fabric-2 recover = %d %s", code, raw)
	}
	if got := c.fabrics[2].Snapshot().Metrics.PortsFailed; got != 0 {
		t.Fatalf("fabric 2 ports_failed = %d after recover, want 0", got)
	}
	if got := c.fabrics[0].Snapshot().Metrics.PortsFailed; got != 1 {
		t.Fatalf("fabric 0 ports_failed = %d, want still 1", got)
	}

	var errBody struct {
		Kind string `json:"kind"`
	}
	if code, _ := doJSON(t, "POST", srv.URL+"/v1/ports/1/fail?fabric=9", "", &errBody); code != http.StatusBadRequest || errBody.Kind != "unknown_fabric" {
		t.Fatalf("fabric=9 = %d kind=%q, want 400 unknown_fabric", code, errBody.Kind)
	}
	if code, _ := doJSON(t, "POST", srv.URL+"/v1/ports/99/fail", "", &errBody); code != http.StatusBadRequest || errBody.Kind != "validation" {
		t.Fatalf("port 99 = %d kind=%q, want 400 validation", code, errBody.Kind)
	}
}
