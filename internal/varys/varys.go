// Package varys implements a fluid (rate-based) coflow scheduler in
// the style of Varys [Chowdhury, Zhong, Stoica — SIGCOMM'14], the
// heuristic system the paper builds on and compares against
// conceptually. It is the "rate allocation" alternative the paper's
// §1.1 contrasts with integral matchings: in each epoch every port
// divides its unit capacity fractionally among flows, which
// corresponds to scheduling by doubly-substochastic rate matrices
// (convex combinations of matchings, by Birkhoff–von Neumann).
//
// The policy is weighted SEBF + MADD:
//
//   - ordering: smallest effective bottleneck first, weighted —
//     coflows sorted by ρ(remaining)/w;
//   - rates: minimum-allocation-for-desired-duration — each flow of
//     the coflow gets exactly the rate needed to finish at the
//     coflow's bottleneck time given the capacity left by
//     higher-priority coflows;
//   - work conservation: leftover port capacity is granted greedily,
//     in priority order, to any flow that can use it.
//
// The simulation is event-driven: it advances directly to the next
// flow completion or coflow release, so runtime scales with the number
// of events rather than with the time horizon.
package varys

import (
	"fmt"
	"math"
	"sort"

	"coflow/internal/coflowmodel"
)

const eps = 1e-9

// Result reports a fluid schedule's outcome. Completion times are
// real-valued: fluid schedules may finish between integer slots.
type Result struct {
	// Completion[k] is the completion time of ins.Coflows[k] (its
	// release date if it carries no data).
	Completion []float64
	// TotalWeighted is Σ w_k·Completion[k].
	TotalWeighted float64
	// Makespan is the largest completion time.
	Makespan float64
	// Epochs is the number of rate-allocation epochs simulated.
	Epochs int
}

type flowState struct {
	coflow    int
	src, dst  int
	remaining float64
	rate      float64
}

type coflowState struct {
	idx       int // index into ins.Coflows
	weight    float64
	release   float64
	flows     []int // indices into the flow table
	remaining float64
	done      bool
}

// Simulate runs the weighted SEBF + MADD fluid scheduler.
func Simulate(ins *coflowmodel.Instance) (*Result, error) {
	if err := ins.Validate(); err != nil {
		return nil, err
	}
	m := ins.Ports
	n := len(ins.Coflows)

	var flows []flowState
	states := make([]*coflowState, n)
	for k := range ins.Coflows {
		c := &ins.Coflows[k]
		st := &coflowState{idx: k, weight: c.Weight, release: float64(c.Release)}
		agg := map[[2]int]int64{}
		for _, f := range c.Flows {
			if f.Size > 0 {
				agg[[2]int{f.Src, f.Dst}] += f.Size
			}
		}
		// Deterministic flow order.
		keys := make([][2]int, 0, len(agg))
		for key := range agg {
			keys = append(keys, key)
		}
		sort.Slice(keys, func(a, b int) bool {
			if keys[a][0] != keys[b][0] {
				return keys[a][0] < keys[b][0]
			}
			return keys[a][1] < keys[b][1]
		})
		for _, key := range keys {
			st.flows = append(st.flows, len(flows))
			st.remaining += float64(agg[key])
			flows = append(flows, flowState{coflow: k, src: key[0], dst: key[1], remaining: float64(agg[key])})
		}
		if len(st.flows) == 0 {
			st.done = true
		}
		states[k] = st
	}

	res := &Result{Completion: make([]float64, n)}
	for k, st := range states {
		if st.done {
			res.Completion[k] = st.release
		}
	}

	t := 0.0
	maxEpochs := 4 * (len(flows) + n + 1) // each epoch retires a flow or crosses a release
	rowRem := make([]float64, m)
	colRem := make([]float64, m)
	rowLoad := make([]float64, m)
	colLoad := make([]float64, m)

	for epoch := 0; ; epoch++ {
		if epoch > maxEpochs {
			return nil, fmt.Errorf("varys: event loop exceeded %d epochs (numerical stall)", maxEpochs)
		}
		active := activeCoflows(states, t)
		nextRel := nextRelease(states, t)
		if len(active) == 0 {
			if math.IsInf(nextRel, 1) {
				break // everything done
			}
			t = nextRel
			continue
		}
		res.Epochs++

		// Priority: weighted SEBF on remaining bottleneck.
		sort.SliceStable(active, func(a, b int) bool {
			ka := bottleneck(active[a], flows, rowLoad, colLoad, m) / active[a].weight
			kb := bottleneck(active[b], flows, rowLoad, colLoad, m) / active[b].weight
			if ka != kb {
				return ka < kb
			}
			return active[a].idx < active[b].idx
		})

		for i := 0; i < m; i++ {
			rowRem[i], colRem[i] = 1, 1
		}
		for f := range flows {
			flows[f].rate = 0
		}

		// MADD pass: give each coflow, in priority order, the minimum
		// rates that finish it at its bottleneck time under the
		// capacity left for it.
		for _, st := range active {
			gamma := 0.0
			feasible := true
			for i := 0; i < m; i++ {
				rowLoad[i], colLoad[i] = 0, 0
			}
			for _, f := range st.flows {
				fl := &flows[f]
				if fl.remaining > eps {
					rowLoad[fl.src] += fl.remaining
					colLoad[fl.dst] += fl.remaining
				}
			}
			for i := 0; i < m; i++ {
				if rowLoad[i] > eps {
					if rowRem[i] <= eps {
						feasible = false
						break
					}
					if g := rowLoad[i] / rowRem[i]; g > gamma {
						gamma = g
					}
				}
				if colLoad[i] > eps {
					if colRem[i] <= eps {
						feasible = false
						break
					}
					if g := colLoad[i] / colRem[i]; g > gamma {
						gamma = g
					}
				}
			}
			if !feasible || gamma <= eps {
				continue // blocked this epoch (or has no work)
			}
			for _, f := range st.flows {
				fl := &flows[f]
				if fl.remaining <= eps {
					continue
				}
				r := fl.remaining / gamma
				fl.rate = r
				rowRem[fl.src] -= r
				colRem[fl.dst] -= r
			}
		}

		// Work conservation: top up flows greedily in priority order.
		for _, st := range active {
			for _, f := range st.flows {
				fl := &flows[f]
				if fl.remaining <= eps {
					continue
				}
				extra := math.Min(rowRem[fl.src], colRem[fl.dst])
				if extra > eps {
					fl.rate += extra
					rowRem[fl.src] -= extra
					colRem[fl.dst] -= extra
				}
			}
		}

		// Advance to the next event: a flow draining or a release.
		dt := nextRel - t
		for f := range flows {
			fl := &flows[f]
			if fl.rate > eps && fl.remaining > eps {
				if d := fl.remaining / fl.rate; d < dt {
					dt = d
				}
			}
		}
		if math.IsInf(dt, 1) {
			return nil, fmt.Errorf("varys: no progress possible with work remaining")
		}
		if dt < eps {
			dt = eps
		}
		t += dt
		for f := range flows {
			fl := &flows[f]
			if fl.rate > eps && fl.remaining > eps {
				fl.remaining -= fl.rate * dt
				if fl.remaining < eps {
					fl.remaining = 0
				}
				st := states[fl.coflow]
				st.remaining -= fl.rate * dt
			}
		}
		for _, st := range active {
			if !st.done && coflowDrained(st, flows) {
				st.done = true
				res.Completion[st.idx] = t
			}
		}
	}

	for k := range ins.Coflows {
		res.TotalWeighted += ins.Coflows[k].Weight * res.Completion[k]
		if res.Completion[k] > res.Makespan {
			res.Makespan = res.Completion[k]
		}
	}
	return res, nil
}

func activeCoflows(states []*coflowState, t float64) []*coflowState {
	var out []*coflowState
	for _, st := range states {
		if !st.done && st.release <= t+eps {
			out = append(out, st)
		}
	}
	return out
}

func nextRelease(states []*coflowState, t float64) float64 {
	next := math.Inf(1)
	for _, st := range states {
		if !st.done && st.release > t+eps && st.release < next {
			next = st.release
		}
	}
	return next
}

func bottleneck(st *coflowState, flows []flowState, rowLoad, colLoad []float64, m int) float64 {
	for i := 0; i < m; i++ {
		rowLoad[i], colLoad[i] = 0, 0
	}
	var b float64
	for _, f := range st.flows {
		fl := &flows[f]
		if fl.remaining <= eps {
			continue
		}
		rowLoad[fl.src] += fl.remaining
		colLoad[fl.dst] += fl.remaining
		if rowLoad[fl.src] > b {
			b = rowLoad[fl.src]
		}
		if colLoad[fl.dst] > b {
			b = colLoad[fl.dst]
		}
	}
	return b
}

func coflowDrained(st *coflowState, flows []flowState) bool {
	for _, f := range st.flows {
		if flows[f].remaining > eps {
			return false
		}
	}
	return true
}
