package varys

import (
	"math"
	"math/rand"
	"testing"

	"coflow/internal/coflowmodel"
	"coflow/internal/core"
	"coflow/internal/matrix"
)

func inst(ports int, coflows ...coflowmodel.Coflow) *coflowmodel.Instance {
	return &coflowmodel.Instance{Ports: ports, Coflows: coflows}
}

func TestSingleCoflowFinishesAtLoad(t *testing.T) {
	// Fluid scheduling clears a lone coflow in exactly ρ(D): rates can
	// form the doubly stochastic matrix D/ρ.
	d := matrix.MustFromRows([][]int64{{1, 2}, {2, 1}})
	res, err := Simulate(inst(2, coflowmodel.FromMatrix(1, 1, 0, d)))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Completion[0]-3) > 1e-6 {
		t.Fatalf("completion = %g, want ρ = 3", res.Completion[0])
	}
}

func TestDisjointCoflowsOverlap(t *testing.T) {
	a := coflowmodel.Coflow{ID: 1, Weight: 1, Flows: []coflowmodel.Flow{{Src: 0, Dst: 0, Size: 4}}}
	b := coflowmodel.Coflow{ID: 2, Weight: 1, Flows: []coflowmodel.Flow{{Src: 1, Dst: 1, Size: 4}}}
	res, err := Simulate(inst(2, a, b))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Completion[0]-4) > 1e-6 || math.Abs(res.Completion[1]-4) > 1e-6 {
		t.Fatalf("completions = %v, want both 4 (disjoint pairs run in parallel)", res.Completion)
	}
}

func TestSEBFPrioritizesSmallCoflow(t *testing.T) {
	// A small coflow sharing a port with a large one should finish
	// near its own load, not after the large one.
	big := coflowmodel.Coflow{ID: 1, Weight: 1, Flows: []coflowmodel.Flow{{Src: 0, Dst: 0, Size: 20}}}
	small := coflowmodel.Coflow{ID: 2, Weight: 1, Flows: []coflowmodel.Flow{{Src: 0, Dst: 0, Size: 2}}}
	res, err := Simulate(inst(1, big, small))
	if err != nil {
		t.Fatal(err)
	}
	if res.Completion[1] > 2+1e-6 {
		t.Fatalf("small coflow finished at %g, want 2 (SEBF priority)", res.Completion[1])
	}
	if math.Abs(res.Completion[0]-22) > 1e-6 {
		t.Fatalf("big coflow finished at %g, want 22", res.Completion[0])
	}
}

func TestWeightOverridesSize(t *testing.T) {
	// Same port, equal sizes, weight 10 vs 1: the heavy one goes first.
	light := coflowmodel.Coflow{ID: 1, Weight: 1, Flows: []coflowmodel.Flow{{Src: 0, Dst: 0, Size: 4}}}
	heavy := coflowmodel.Coflow{ID: 2, Weight: 10, Flows: []coflowmodel.Flow{{Src: 0, Dst: 0, Size: 4}}}
	res, err := Simulate(inst(1, light, heavy))
	if err != nil {
		t.Fatal(err)
	}
	if res.Completion[1] > 4+1e-6 {
		t.Fatalf("heavy coflow finished at %g, want 4", res.Completion[1])
	}
	if math.Abs(res.Completion[0]-8) > 1e-6 {
		t.Fatalf("light coflow finished at %g, want 8", res.Completion[0])
	}
}

func TestReleaseDatesRespected(t *testing.T) {
	c := coflowmodel.Coflow{ID: 1, Weight: 1, Release: 10,
		Flows: []coflowmodel.Flow{{Src: 0, Dst: 0, Size: 3}}}
	res, err := Simulate(inst(1, c))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Completion[0]-13) > 1e-6 {
		t.Fatalf("completion = %g, want 13", res.Completion[0])
	}
}

func TestEmptyCoflowCompletesOnRelease(t *testing.T) {
	c := coflowmodel.Coflow{ID: 1, Weight: 1, Release: 4}
	other := coflowmodel.Coflow{ID: 2, Weight: 1, Flows: []coflowmodel.Flow{{Src: 0, Dst: 0, Size: 1}}}
	res, err := Simulate(inst(1, c, other))
	if err != nil {
		t.Fatal(err)
	}
	if res.Completion[0] != 4 {
		t.Fatalf("empty coflow completion = %g, want release 4", res.Completion[0])
	}
}

func TestWorkConservation(t *testing.T) {
	// Two coflows on the same pair: total drain time equals total work
	// (port never idles while work remains).
	a := coflowmodel.Coflow{ID: 1, Weight: 1, Flows: []coflowmodel.Flow{{Src: 0, Dst: 0, Size: 7}}}
	b := coflowmodel.Coflow{ID: 2, Weight: 1, Flows: []coflowmodel.Flow{{Src: 0, Dst: 0, Size: 5}}}
	res, err := Simulate(inst(1, a, b))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Makespan-12) > 1e-6 {
		t.Fatalf("makespan = %g, want 12 (work conservation)", res.Makespan)
	}
}

func randomInstance(rng *rand.Rand, m, n int, maxSize, maxRelease int64) *coflowmodel.Instance {
	ins := &coflowmodel.Instance{Ports: m}
	for k := 0; k < n; k++ {
		c := coflowmodel.Coflow{ID: k + 1, Weight: 1 + float64(rng.Intn(5))}
		if maxRelease > 0 {
			c.Release = rng.Int63n(maxRelease + 1)
		}
		flows := 1 + rng.Intn(m*m)
		for f := 0; f < flows; f++ {
			c.Flows = append(c.Flows, coflowmodel.Flow{
				Src: rng.Intn(m), Dst: rng.Intn(m), Size: 1 + rng.Int63n(maxSize),
			})
		}
		ins.Coflows = append(ins.Coflows, c)
	}
	return ins
}

// Fluid completions can never beat the per-coflow load bound
// r_k + ρ_k, and the simulation must conserve work.
func TestFluidRespectsLoadBound(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 80; trial++ {
		m := 1 + rng.Intn(4)
		n := 1 + rng.Intn(6)
		ins := randomInstance(rng, m, n, 8, 5)
		res, err := Simulate(ins)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for k := range ins.Coflows {
			c := &ins.Coflows[k]
			min := float64(c.Release + c.Load(m))
			if res.Completion[k] < min-1e-6 {
				t.Fatalf("trial %d: coflow %d at %g beats load bound %g",
					trial, k, res.Completion[k], min)
			}
		}
		// Makespan can't beat the global load bound either.
		sum := matrix.NewSquare(m)
		for k := range ins.Coflows {
			sum.AddMatrix(ins.Coflows[k].Matrix(m))
		}
		if res.Makespan < float64(sum.Load())-1e-6 {
			t.Fatalf("trial %d: makespan %g beats ρ(ΣD) = %d", trial, res.Makespan, sum.Load())
		}
	}
}

// With zero releases the fluid scheduler should be competitive with
// (often better than) the slotted heuristics, since rates relax the
// integrality of matchings.
func TestFluidCompetitiveWithSlotted(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	var fluid, slotted float64
	for trial := 0; trial < 20; trial++ {
		ins := randomInstance(rng, 4, 8, 8, 0)
		fres, err := Simulate(ins)
		if err != nil {
			t.Fatal(err)
		}
		sres, err := core.Schedule(ins, core.Options{Ordering: core.OrderLoadWeight, Grouping: true, Backfill: true})
		if err != nil {
			t.Fatal(err)
		}
		fluid += fres.TotalWeighted
		slotted += sres.TotalWeighted
	}
	if fluid > slotted*1.25 {
		t.Fatalf("fluid scheduler uncompetitive: %g vs slotted %g", fluid, slotted)
	}
}

func BenchmarkSimulate30x20(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	ins := randomInstance(rng, 20, 30, 30, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(ins); err != nil {
			b.Fatal(err)
		}
	}
}
