package bvn

import (
	"math/rand"
	"testing"

	"coflow/internal/matrix"
)

// randomServe builds one shrink step: a served matrix taking a random
// positive amount from a random subset of shadow's positive entries,
// and applies it to shadow. It reports false when shadow is already
// zero.
func randomServe(rng *rand.Rand, shadow, served *matrix.Matrix) bool {
	m := shadow.Rows()
	served.Zero()
	any := false
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			v := shadow.At(i, j)
			if v <= 0 || rng.Intn(3) == 0 {
				continue
			}
			q := 1 + rng.Int63n(v)
			served.Set(i, j, q)
			shadow.Add(i, j, -q)
			any = true
		}
	}
	if any {
		return true
	}
	// Nothing picked by the coin flips: serve the first positive entry
	// so every step with demand left makes progress.
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			if v := shadow.At(i, j); v > 0 {
				q := 1 + rng.Int63n(v)
				served.Set(i, j, q)
				shadow.Add(i, j, -q)
				return true
			}
		}
	}
	return false
}

// TestIncrementalVsCold is the differential gate on Update: across
// 1000 random shrink sequences, every incremental repair must satisfy
// the full Lemma 4 contract (Verify) against the shrunken demand —
// the exact invariants a cold Decompose of that demand would satisfy,
// including Σq = ρ(D′).
func TestIncrementalVsCold(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for seq := 0; seq < 1000; seq++ {
		m := 2 + rng.Intn(6)
		d := matrix.NewSquare(m)
		for i := 0; i < m; i++ {
			for j := 0; j < m; j++ {
				if rng.Intn(3) > 0 {
					d.Set(i, j, rng.Int63n(10))
				}
			}
		}
		dc := NewDecomposer(m)
		strategy := StrategyFirst
		if seq%4 == 3 {
			strategy = StrategyThick
		}
		cur, err := dc.DecomposeWith(d, strategy)
		if err != nil {
			t.Fatalf("seq %d: cold: %v", seq, err)
		}
		if err := cur.Verify(d); err != nil {
			t.Fatalf("seq %d: cold verify: %v", seq, err)
		}
		shadow := d.Clone()
		served := matrix.NewSquare(m)
		for step := 0; step < 8; step++ {
			if !randomServe(rng, shadow, served) {
				break
			}
			cur, err = dc.Update(served)
			if err != nil {
				t.Fatalf("seq %d step %d: Update: %v", seq, step, err)
			}
			if err := cur.Verify(shadow); err != nil {
				t.Fatalf("seq %d step %d: diverged from cold contract: %v\nshadow:\n%v", seq, step, err, shadow)
			}
			if want := shadow.Load(); cur.Load != want {
				t.Fatalf("seq %d step %d: Load %d, cold would give %d", seq, step, cur.Load, want)
			}
		}
	}
}

// FuzzIncrementalVsCold drives Update with arbitrary demand matrices
// and shrink scripts and checks each repaired result against the cold
// contract. The payload is split: the first m² bytes fill the matrix,
// the rest script the serves (each byte picks a cell and an amount).
func FuzzIncrementalVsCold(f *testing.F) {
	f.Add([]byte{1, 2, 2, 1, 0x13, 0x02, 0x31})
	f.Add([]byte{9, 0, 9, 0, 9, 0, 9, 0, 9, 0xff, 0x40, 0x07})
	f.Add([]byte{5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		m := 2
		for (m+1)*(m+1) <= len(data) && m+1 <= 5 {
			m++
		}
		if len(data) < m*m {
			return
		}
		d := matrix.NewSquare(m)
		for i := 0; i < m; i++ {
			for j := 0; j < m; j++ {
				d.Set(i, j, int64(data[i*m+j]))
			}
		}
		dc := NewDecomposer(m)
		cur, err := dc.Decompose(d)
		if err != nil {
			t.Fatalf("cold on %v: %v", d, err)
		}
		shadow := d.Clone()
		served := matrix.NewSquare(m)
		for _, op := range data[m*m:] {
			cell := int(op) % (m * m)
			i, j := cell/m, cell%m
			v := shadow.At(i, j)
			if v <= 0 {
				continue
			}
			q := 1 + int64(op>>4)%v
			served.Zero()
			served.Set(i, j, q)
			shadow.Add(i, j, -q)
			cur, err = dc.Update(served)
			if err != nil {
				t.Fatalf("Update on %v served (%d,%d)=%d: %v", shadow, i, j, q, err)
			}
			if err := cur.Verify(shadow); err != nil {
				t.Fatalf("diverged from cold contract on %v: %v", shadow, err)
			}
		}
	})
}

// TestDecomposeDoesNotAllocate is the steady-state allocation gate
// mirroring online's TestStepDoesNotAllocate: once a Decomposer's
// scratch and term pool are warm, a cold Decompose and an incremental
// Update must both run without a single heap allocation.
func TestDecomposeDoesNotAllocate(t *testing.T) {
	for _, tc := range []struct {
		name     string
		strategy Strategy
	}{
		{"first", StrategyFirst},
		{"thick", StrategyThick},
	} {
		t.Run(tc.name, func(t *testing.T) {
			d := benchMatrix(40, 0.5, 23)
			dc := NewDecomposer(40)
			if _, err := dc.DecomposeWith(d, tc.strategy); err != nil {
				t.Fatal(err)
			}
			if avg := testing.AllocsPerRun(10, func() {
				if _, err := dc.DecomposeWith(d, tc.strategy); err != nil {
					t.Fatal(err)
				}
			}); avg != 0 {
				t.Fatalf("warm DecomposeWith(%s) allocates %.1f times per run, want 0", tc.name, avg)
			}
		})
	}

	t.Run("update", func(t *testing.T) {
		d := benchMatrix(40, 0.5, 23)
		dc := NewDecomposer(40)
		served := matrix.NewSquare(40)
		if _, err := dc.Decompose(d); err != nil {
			t.Fatal(err)
		}
		// Each run re-primes cold (0 allocs, proven above) and then
		// serves the plan's first matching for one slot — the slot
		// pipeline's steady-state transition.
		if avg := testing.AllocsPerRun(10, func() {
			cur, err := dc.Decompose(d)
			if err != nil {
				t.Fatal(err)
			}
			// Serve the plan's first matching for one slot; matched cells
			// that are augmentation filler (zero real demand) idle, as in
			// the switch executor.
			perm := cur.Terms[0].Perm
			served.Zero()
			for i, j := range perm.To {
				if dc.Demand().At(i, j) > 0 {
					served.Set(i, j, 1)
				}
			}
			if _, err := dc.Update(served); err != nil {
				t.Fatal(err)
			}
		}); avg != 0 {
			t.Fatalf("warm Update allocates %.1f times per run, want 0", avg)
		}
	})
}

// benchDecomposer measures the steady-state reusable path: one held
// Decomposer, cold Decompose per iteration (the BENCH gate pairs these
// with the package-level BenchmarkDecompose* numbers, whose per-call
// pool build they strip away).
func benchDecomposer(b *testing.B, m int, density float64, strategy Strategy) {
	b.Helper()
	d := benchMatrix(m, density, 17)
	dc := NewDecomposer(m)
	if _, err := dc.DecomposeWith(d, strategy); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dc.DecomposeWith(d, strategy); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecomposerM50Dense(b *testing.B)   { benchDecomposer(b, 50, 0.5, StrategyFirst) }
func BenchmarkDecomposerM100Sparse(b *testing.B) { benchDecomposer(b, 100, 0.1, StrategyFirst) }
func BenchmarkDecomposerM100Dense(b *testing.B)  { benchDecomposer(b, 100, 0.5, StrategyFirst) }

// BenchmarkDecomposerUpdateM100Dense measures the incremental slot
// transition: serve the current plan's first matching for one slot,
// repair with Update. Re-priming when the backlog drains runs off the
// clock.
func BenchmarkDecomposerUpdateM100Dense(b *testing.B) {
	d := benchMatrix(100, 0.5, 17)
	dc := NewDecomposer(100)
	served := matrix.NewSquare(100)
	cur, err := dc.Decompose(d)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Serve the plan's first matching for one slot (matched cells
		// that are augmentation filler idle, as in the switch executor);
		// re-prime when the backlog has drained.
		any := false
		if cur.Load > 0 {
			perm := cur.Terms[0].Perm
			served.Zero()
			for r, c := range perm.To {
				if dc.Demand().At(r, c) > 0 {
					served.Set(r, c, 1)
					any = true
				}
			}
		}
		if !any {
			b.StopTimer()
			if cur, err = dc.Decompose(d); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			continue
		}
		if cur, err = dc.Update(served); err != nil {
			b.Fatal(err)
		}
	}
}
