package bvn

import (
	"fmt"
	"slices"

	"coflow/internal/matching"
	"coflow/internal/matrix"
)

// Decomposer is the reusable, zero-allocation engine behind Algorithm
// 1 for a fixed port count m. It owns every piece of scratch a
// decomposition needs — the augmentation sum buffers and deficit
// heaps, the working copy of D̃, a warm-started matching.Matcher, an
// incrementally maintained support adjacency, and a recycled pool of
// permutation buffers — so once the pool is warm, Decompose and
// Update perform no allocations (enforced by TestDecomposeDoesNotAllocate
// and the allocfree analyzer).
//
// Two modes:
//
//   - Decompose/DecomposeWith run Algorithm 1 cold on a fresh demand
//     matrix, warm-starting only the matcher.
//   - Update(served) repairs the PREVIOUS result after demand shrank
//     by served (the slot pipeline's only transition): it sheds the
//     load delta from existing term counts under the coverage
//     invariant instead of re-extracting matchings, falling back to a
//     cold run when the greedy repair cannot shed the full delta.
//
// The returned *Decomposition aliases the Decomposer's recycled
// storage: it is valid until the next Decompose/DecomposeWith/Update
// call on the same Decomposer. Callers that need the terms afterwards
// must copy them first. A Decomposer is NOT safe for concurrent use.
type Decomposer struct {
	m       int
	matcher *matching.Matcher
	augSc   augScratch

	// demand is the current (original, unaugmented) demand matrix the
	// last result decomposes; cover is the running Σ q_u·Π_u (equal to
	// D̃ right after a cold run); work is the cold run's draining copy.
	demand *matrix.Matrix
	cover  *matrix.Matrix
	work   *matrix.Matrix

	// Support adjacency over work during a StrategyFirst cold run,
	// installed into the matcher via SetAdjacency and maintained
	// incrementally with O(1) swap-deletes: row i's live columns are
	// adjDat[i*m : i*m+adjLen[i]], and edgePos[i*m+j] is the absolute
	// adjDat position of edge (i,j), or -1. nnz counts live support
	// cells, making the extraction loop's termination test O(1)
	// instead of the former O(m²) IsZero scan.
	adjOff    []int32
	adjLen    []int32
	adjDat    []int32
	edgePos   []int32
	freedRows []int32
	nnz       int

	// Recycled term storage: terms is the reused Terms backing array
	// and permBufs the pool of m-length permutation buffers, where
	// term k of a cold run writes into permBufs[k]. Update's
	// compaction swaps pool entries alongside terms so the pool stays
	// a permutation of every buffer ever allocated.
	terms    []Term
	permBufs [][]int

	// Thick-strategy scratch: distinct entry values and the
	// current/best probe matchings of the bottleneck binary search.
	vals      []int64
	thickCur  []int
	thickBest []int

	dec          Decomposition
	primed       bool
	lastStrategy Strategy

	obs Obs
}

// NewDecomposer returns a Decomposer for m×m demand matrices. It
// performs all sizing allocations up front (O(m²) memory).
func NewDecomposer(m int) *Decomposer {
	if m <= 0 {
		panic(fmt.Sprintf("bvn: non-positive decomposer size %d", m))
	}
	dc := &Decomposer{
		m:         m,
		matcher:   matching.NewMatcher(m),
		demand:    matrix.NewSquare(m),
		cover:     matrix.NewSquare(m),
		work:      matrix.NewSquare(m),
		adjOff:    make([]int32, m),
		adjLen:    make([]int32, m),
		adjDat:    make([]int32, m*m),
		edgePos:   make([]int32, m*m),
		freedRows: make([]int32, 0, m),
		vals:      make([]int64, 0, m*m),
		thickCur:  make([]int, m),
		thickBest: make([]int, m),
	}
	for i := 0; i < m; i++ {
		dc.adjOff[i] = int32(i * m)
	}
	dc.augSc.grow(m)
	return dc
}

// SetObs installs per-instance instrumentation (term-reuse hit rate,
// update fallbacks, matcher warm-start counters); the zero Obs
// disables it. Not safe to call concurrently with decompositions.
func (dc *Decomposer) SetObs(o Obs) {
	dc.obs = o
	dc.matcher.SetObs(o.Matcher)
}

// Size returns the port count m the Decomposer was built for.
func (dc *Decomposer) Size() int { return dc.m }

// Decompose runs Algorithm 1 cold on d with StrategyFirst. See the
// type comment for the aliasing contract of the result.
//
//coflow:pooled
func (dc *Decomposer) Decompose(d *matrix.Matrix) (*Decomposition, error) {
	return dc.DecomposeWith(d, StrategyFirst)
}

// DecomposeWith runs Algorithm 1 cold on d with the given extraction
// strategy, reusing all scratch from previous calls.
//
//coflow:pooled
func (dc *Decomposer) DecomposeWith(d *matrix.Matrix, strategy Strategy) (*Decomposition, error) {
	if d.Rows() != d.Cols() || d.Rows() != dc.m {
		panic(fmt.Sprintf("bvn: decomposer size %d, matrix %d×%d", dc.m, d.Rows(), d.Cols()))
	}
	dc.demand.CopyFrom(d)
	dc.lastStrategy = strategy
	return dc.cold(strategy)
}

// cold runs Algorithm 1 over dc.demand into the recycled result.
//
//coflow:allocfree
//coflow:pooled
func (dc *Decomposer) cold(strategy Strategy) (*Decomposition, error) {
	decSpan := dc.obs.DecomposeSeconds.Start()
	defer decSpan.End()
	augSpan := dc.obs.AugmentSeconds.Start()
	dc.work.CopyFrom(dc.demand)
	rho := dc.augSc.augmentInto(dc.work)
	augSpan.End()
	dc.cover.CopyFrom(dc.work)
	dc.terms = dc.terms[:0]
	dc.dec = Decomposition{Load: rho, m: dc.m}
	dc.primed = false
	if rho > 0 {
		var err error
		if strategy == StrategyFirst {
			err = dc.extractFirstAll()
		} else {
			err = dc.extractThickAll()
		}
		if err != nil {
			return nil, err
		}
	}
	dc.dec.Terms = dc.terms
	dc.primed = true
	dc.obs.Decomposes.Inc()
	dc.obs.Terms.Add(int64(len(dc.terms)))
	return &dc.dec, nil
}

// permBuf returns the pooled m-length buffer for term k, growing the
// pool only while it is colder than the current term count.
//
//coflow:allocfree
func (dc *Decomposer) permBuf(k int) []int {
	if k < len(dc.permBufs) {
		dc.obs.TermReuses.Inc()
		return dc.permBufs[k]
	}
	dc.obs.TermAllocs.Inc()
	//lint:ignore allocfree one-time pool growth until the term pool is warm; steady-state extractions reuse pooled buffers
	buf := make([]int, dc.m)
	dc.permBufs = append(dc.permBufs, buf)
	return buf
}

// buildSupport (re)derives the incremental adjacency and nnz from the
// current work matrix.
//
//coflow:allocfree
func (dc *Decomposer) buildSupport() {
	m := dc.m
	dc.nnz = 0
	for i := 0; i < m; i++ {
		base := i * m
		ln := int32(0)
		for j := 0; j < m; j++ {
			if dc.work.At(i, j) > 0 {
				dc.adjDat[base+int(ln)] = int32(j)
				dc.edgePos[base+j] = int32(base) + ln
				ln++
			} else {
				dc.edgePos[base+j] = -1
			}
		}
		dc.adjLen[i] = ln
		dc.nnz += int(ln)
	}
}

// deleteEdge removes support cell (i, j) from the adjacency in O(1)
// by swap-delete with the row's last live entry.
//
//coflow:allocfree
func (dc *Decomposer) deleteEdge(i, j int) {
	base := int32(i) * int32(dc.m)
	p := dc.edgePos[base+int32(j)]
	last := base + dc.adjLen[i] - 1
	moved := dc.adjDat[last]
	dc.adjDat[p] = moved
	dc.edgePos[base+moved] = p
	dc.adjLen[i]--
	dc.edgePos[base+int32(j)] = -1
	dc.nnz--
}

// extractFirstAll is Step 2 with StrategyFirst on the incremental
// path: one repaired maximum matching up front, then per term an O(m)
// min-scan/subtract, O(1) support deletes, and single-row Kuhn
// repairs for the rows whose matched edge drained — instead of the
// former per-term O(m²) adjacency rebuild + IsZero scan that
// dominated the dense benchmarks.
//
//coflow:allocfree
func (dc *Decomposer) extractFirstAll() error {
	m := dc.m
	dc.buildSupport()
	dc.matcher.SetAdjacency(dc.adjOff, dc.adjLen, dc.adjDat)
	// Repair whatever matching the matcher still holds from the
	// previous decomposition against the fresh support: across daemon
	// slots the demand barely moves, so this is usually a handful of
	// augmenting paths, not a cold solve.
	if dc.matcher.RepairRematch() != m {
		//lint:ignore allocfree unreachable-for-valid-input error path (balanced matrix support always admits a perfect matching)
		return fmt.Errorf("bvn: support of %d×%d balanced matrix admits no perfect matching", m, m)
	}
	maxTerms := m*m + 1
	for dc.nnz > 0 {
		if len(dc.terms) >= maxTerms {
			//lint:ignore allocfree unreachable-for-valid-input error path (term count is bounded by m²)
			return fmt.Errorf("bvn: more than m²=%d terms extracted; invariant violated", m*m)
		}
		exSpan := dc.obs.ExtractSeconds.Start()
		perm := dc.matcher.MatchingInto(dc.permBuf(len(dc.terms)))
		// q = min entry along the matching: subtracting q·Π zeroes at
		// least one support entry, bounding the number of terms by m².
		var q int64 = -1
		for i, j := range perm.To {
			if v := dc.work.At(i, j); q < 0 || v < q {
				q = v
			}
		}
		if q <= 0 {
			exSpan.End()
			//lint:ignore allocfree unreachable-for-valid-input error path (matched entries are positive by construction)
			return fmt.Errorf("bvn: non-positive multiplicity %d; invariant violated", q)
		}
		dc.freedRows = dc.freedRows[:0]
		for i, j := range perm.To {
			dc.work.Add(i, j, -q)
			if dc.work.At(i, j) == 0 {
				dc.deleteEdge(i, j)
				dc.matcher.Unmatch(i, j)
				dc.freedRows = append(dc.freedRows, int32(i))
			}
		}
		dc.terms = append(dc.terms, Term{Count: q, Perm: perm})
		if dc.nnz > 0 {
			// Every drained cell was its row's matched edge, so repair
			// is one Kuhn augmentation per freed row. With only the
			// freed rows and columns unmatched, a failed u-rooted
			// search proves no perfect matching exists — see the
			// AugmentRow contract.
			for _, i := range dc.freedRows {
				if !dc.matcher.AugmentRow(int(i)) {
					exSpan.End()
					//lint:ignore allocfree unreachable-for-valid-input error path (balanced matrix support always admits a perfect matching)
					return fmt.Errorf("bvn: support lost its perfect matching after term %d; invariant violated", len(dc.terms)-1)
				}
			}
		}
		exSpan.End()
	}
	return nil
}

// extractThickAll is Step 2 with StrategyThick: every term extracts a
// bottleneck (maximin-entry) matching via binary search over the
// distinct entry values, all probes sharing the warm matcher and the
// Decomposer's scratch.
//
//coflow:allocfree
func (dc *Decomposer) extractThickAll() error {
	m := dc.m
	dc.nnz = 0
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			if dc.work.At(i, j) > 0 {
				dc.nnz++
			}
		}
	}
	maxTerms := m*m + 1
	for dc.nnz > 0 {
		if len(dc.terms) >= maxTerms {
			//lint:ignore allocfree unreachable-for-valid-input error path (term count is bounded by m²)
			return fmt.Errorf("bvn: more than m²=%d terms extracted; invariant violated", m*m)
		}
		exSpan := dc.obs.ExtractSeconds.Start()
		ok := dc.bottleneck()
		if !ok {
			exSpan.End()
			//lint:ignore allocfree unreachable-for-valid-input error path (balanced matrix support always admits a perfect matching)
			return fmt.Errorf("bvn: support of %d×%d balanced matrix admits no perfect matching", m, m)
		}
		buf := dc.permBuf(len(dc.terms))
		copy(buf, dc.thickBest)
		perm := matrix.Permutation{To: buf}
		var q int64 = -1
		for i, j := range perm.To {
			if v := dc.work.At(i, j); q < 0 || v < q {
				q = v
			}
		}
		if q <= 0 {
			exSpan.End()
			//lint:ignore allocfree unreachable-for-valid-input error path (matched entries are positive by construction)
			return fmt.Errorf("bvn: non-positive multiplicity %d; invariant violated", q)
		}
		for i, j := range perm.To {
			dc.work.Add(i, j, -q)
			if dc.work.At(i, j) == 0 {
				dc.nnz--
			}
		}
		dc.terms = append(dc.terms, Term{Count: q, Perm: perm})
		exSpan.End()
	}
	return nil
}

// bottleneck finds a perfect matching of work maximizing its minimum
// entry, writing it into thickBest and reporting success. It binary
// searches the sorted distinct positive entries, probing each
// threshold graph on the shared warm matcher.
//
//coflow:allocfree
func (dc *Decomposer) bottleneck() bool {
	m := dc.m
	dc.vals = dc.vals[:0]
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			if v := dc.work.At(i, j); v > 0 {
				dc.vals = append(dc.vals, v)
			}
		}
	}
	slices.Sort(dc.vals)
	dc.vals = slices.Compact(dc.vals)
	// The smallest positive value always works on a balanced matrix
	// (full support); binary search the largest workable value.
	dc.matcher.MatchSupportAtLeastInto(dc.thickCur, dc.work, dc.vals[0])
	if dc.matcher.MatchedCount() != m {
		return false
	}
	copy(dc.thickBest, dc.thickCur)
	lo, hi := 0, len(dc.vals)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		dc.matcher.MatchSupportAtLeastInto(dc.thickCur, dc.work, dc.vals[mid])
		if dc.matcher.MatchedCount() == m {
			copy(dc.thickBest, dc.thickCur)
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return true
}

// Update repairs the previous result after the demand shrank by
// served: D' = D − served. Because a sum of perfect matchings is
// automatically balanced, the repair only has to (a) shed the load
// delta Σq − ρ(D') from existing term counts while (b) keeping the
// coverage invariant Σ q_u·Π_u ≥ D'. It walks the terms once,
// reducing each count by the minimum coverage slack along its
// matching, and stops as soon as the delta is shed — so a typical
// slot touches a handful of terms and never runs a matching. When the
// one-pass greedy cannot shed the full delta, it falls back to a cold
// recomputation (counted by Obs.UpdateFallbacks). served entries must
// not exceed the current demand.
//
//coflow:allocfree
//coflow:pooled
func (dc *Decomposer) Update(served *matrix.Matrix) (*Decomposition, error) {
	if !dc.primed {
		//lint:ignore allocfree misuse error path, never taken by the slot pipeline
		return nil, fmt.Errorf("bvn: Update before a successful Decompose")
	}
	if served.Rows() != served.Cols() || served.Rows() != dc.m {
		//lint:ignore allocfree the panic message formats once on a fatal size mismatch, never on the served path
		panic(fmt.Sprintf("bvn: decomposer size %d, served matrix %d×%d", dc.m, served.Rows(), served.Cols()))
	}
	span := dc.obs.UpdateSeconds.Start()
	defer span.End()
	dc.obs.Updates.Inc()
	m := dc.m
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			v := served.At(i, j)
			if v == 0 {
				continue
			}
			nd := dc.demand.At(i, j) - v
			if nd < 0 {
				dc.primed = false
				//lint:ignore allocfree misuse error path, never taken by a conservation-respecting caller
				return nil, fmt.Errorf("bvn: served %d exceeds demand %d at (%d,%d)", v, dc.demand.At(i, j), i, j)
			}
			dc.demand.Set(i, j, nd)
		}
	}
	// ρ(D') via the augmentation scratch sum buffers.
	rows := dc.demand.RowSumsInto(dc.augSc.rows)
	cols := dc.demand.ColSumsInto(dc.augSc.cols)
	var rho2 int64
	for i := range rows {
		if rows[i] > rho2 {
			rho2 = rows[i]
		}
		if cols[i] > rho2 {
			rho2 = cols[i]
		}
	}
	delta := dc.dec.Load - rho2
	if delta < 0 {
		dc.primed = false
		//lint:ignore allocfree unreachable-for-valid-input error path (shrinking demand cannot raise the load)
		return nil, fmt.Errorf("bvn: load rose from %d to %d under Update; demand must only shrink", dc.dec.Load, rho2)
	}
	for u := 0; u < len(dc.terms) && delta > 0; u++ {
		t := &dc.terms[u]
		// slack = min over the term's cells of (coverage − demand):
		// reducing the count by more would break coverage there.
		slack := delta
		if t.Count < slack {
			slack = t.Count
		}
		for i, j := range t.Perm.To {
			if s := dc.cover.At(i, j) - dc.demand.At(i, j); s < slack {
				slack = s
				if slack == 0 {
					break
				}
			}
		}
		if slack <= 0 {
			continue
		}
		t.Count -= slack
		delta -= slack
		for i, j := range t.Perm.To {
			dc.cover.Add(i, j, -slack)
		}
	}
	if delta > 0 {
		// Greedy repair could not shed the whole delta (the remaining
		// slack sits on cells shared between terms in a conflicting
		// order); recompute cold off the already-updated demand.
		dc.obs.UpdateFallbacks.Inc()
		return dc.cold(dc.lastStrategy)
	}
	// Compact exhausted terms, swapping pool entries alongside so the
	// permutation-buffer pool keeps owning every allocated buffer.
	w := 0
	for u := 0; u < len(dc.terms); u++ {
		if dc.terms[u].Count == 0 {
			continue
		}
		if w != u {
			dc.permBufs[w], dc.permBufs[u] = dc.permBufs[u], dc.permBufs[w]
			dc.terms[w] = dc.terms[u]
		}
		w++
	}
	dc.terms = dc.terms[:w]
	dc.dec.Load = rho2
	dc.dec.Terms = dc.terms
	dc.dec.augmented = nil
	return &dc.dec, nil
}

// Demand returns the demand matrix the current result decomposes
// (aliased, do not mutate). Valid once primed.
func (dc *Decomposer) Demand() *matrix.Matrix { return dc.demand }
