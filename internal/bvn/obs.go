package bvn

import (
	"coflow/internal/matching"
	"coflow/internal/obs"
)

// Obs instruments Algorithm 1. Every field is a nil-safe obs metric,
// so the zero value (the default) is free: each site costs one nil
// check. Hooks are package-level because Decompose is a pure function
// with many call sites (core, switchsim, experiments); install them
// once at startup with SetObs, before any decomposition runs.
//
// Stage taxonomy:
//
//	decompose  one whole Decompose/DecomposeWith call
//	augment    Step 1 (balance D to D̃ with all sums = ρ)
//	extract    Step 2 (one matching extraction + subtraction per term)
type Obs struct {
	DecomposeSeconds *obs.Histogram
	AugmentSeconds   *obs.Histogram
	ExtractSeconds   *obs.Histogram
	UpdateSeconds    *obs.Histogram

	Decomposes *obs.Counter
	Terms      *obs.Counter

	// Term-buffer pool effectiveness of the reusable Decomposer:
	// TermReuses counts extractions served from the recycled
	// permutation-buffer pool, TermAllocs the pool-growth allocations.
	// Their ratio is the term-reuse hit rate; a warm Decomposer sits at
	// 100% reuse (the 0 allocs/op steady state).
	TermReuses *obs.Counter
	TermAllocs *obs.Counter

	// Incremental-mode effectiveness: Updates counts Decomposer.Update
	// calls, UpdateFallbacks the ones whose greedy term repair could
	// not shed the full load delta and fell back to a cold
	// recomputation of Algorithm 1.
	Updates         *obs.Counter
	UpdateFallbacks *obs.Counter

	// Matcher is threaded into every decomposition's warm-started
	// Hopcroft–Karp engine, exposing its warm-start hit rate.
	Matcher matching.Obs
}

// TermReuseHitRate returns TermReuses / (TermReuses + TermAllocs), or
// 0 before any extraction.
func (o *Obs) TermReuseHitRate() float64 {
	r, a := o.TermReuses.Value(), o.TermAllocs.Value()
	if r+a == 0 {
		return 0
	}
	return float64(r) / float64(r+a)
}

// pkgObs is the installed hooks; the zero value disables them.
var pkgObs Obs

// SetObs installs package-wide instrumentation. Call once at startup
// (it is not synchronized against concurrent decompositions); the
// zero Obs restores the disabled default.
func SetObs(o Obs) { pkgObs = o }

// DefaultObs returns the package-wide instrumentation installed by
// SetObs (the zero Obs when none is installed). Decomposer holders
// that want the package default pass it to Decomposer.SetObs.
func DefaultObs() Obs { return pkgObs }

// NewObs registers the decomposition metrics on r (prefix coflow_bvn_)
// and returns the wired Obs, including matcher warm-start counters. A
// nil registry yields the zero Obs.
func NewObs(r *obs.Registry) Obs {
	return Obs{
		DecomposeSeconds: r.Histogram("coflow_bvn_decompose_seconds", "latency of one Birkhoff-von Neumann decomposition", obs.LatencyBuckets),
		AugmentSeconds:   r.Histogram("coflow_bvn_augment_seconds", "latency of the augmentation stage (step 1)", obs.LatencyBuckets),
		ExtractSeconds:   r.Histogram("coflow_bvn_extract_seconds", "latency of one matching extraction (step 2 iteration)", obs.LatencyBuckets),
		UpdateSeconds:    r.Histogram("coflow_bvn_update_seconds", "latency of one incremental Decomposer.Update repair", obs.LatencyBuckets),
		Decomposes:       r.Counter("coflow_bvn_decompositions_total", "decompositions run"),
		Terms:            r.Counter("coflow_bvn_terms_total", "permutation terms extracted"),
		TermReuses:       r.Counter("coflow_bvn_term_buffer_reuses_total", "extractions served from the recycled permutation-buffer pool"),
		TermAllocs:       r.Counter("coflow_bvn_term_buffer_allocs_total", "permutation-buffer pool growth allocations"),
		Updates:          r.Counter("coflow_bvn_updates_total", "incremental Decomposer.Update calls"),
		UpdateFallbacks:  r.Counter("coflow_bvn_update_fallbacks_total", "Update calls that fell back to a cold decomposition"),
		Matcher:          matching.NewObs(r),
	}
}
