package bvn

import (
	"coflow/internal/matching"
	"coflow/internal/obs"
)

// Obs instruments Algorithm 1. Every field is a nil-safe obs metric,
// so the zero value (the default) is free: each site costs one nil
// check. Hooks are package-level because Decompose is a pure function
// with many call sites (core, switchsim, experiments); install them
// once at startup with SetObs, before any decomposition runs.
//
// Stage taxonomy:
//
//	decompose  one whole Decompose/DecomposeWith call
//	augment    Step 1 (balance D to D̃ with all sums = ρ)
//	extract    Step 2 (one matching extraction + subtraction per term)
type Obs struct {
	DecomposeSeconds *obs.Histogram
	AugmentSeconds   *obs.Histogram
	ExtractSeconds   *obs.Histogram

	Decomposes *obs.Counter
	Terms      *obs.Counter

	// Matcher is threaded into every decomposition's warm-started
	// Hopcroft–Karp engine, exposing its warm-start hit rate.
	Matcher matching.Obs
}

// pkgObs is the installed hooks; the zero value disables them.
var pkgObs Obs

// SetObs installs package-wide instrumentation. Call once at startup
// (it is not synchronized against concurrent decompositions); the
// zero Obs restores the disabled default.
func SetObs(o Obs) { pkgObs = o }

// NewObs registers the decomposition metrics on r (prefix coflow_bvn_)
// and returns the wired Obs, including matcher warm-start counters. A
// nil registry yields the zero Obs.
func NewObs(r *obs.Registry) Obs {
	return Obs{
		DecomposeSeconds: r.Histogram("coflow_bvn_decompose_seconds", "latency of one Birkhoff-von Neumann decomposition", obs.LatencyBuckets),
		AugmentSeconds:   r.Histogram("coflow_bvn_augment_seconds", "latency of the augmentation stage (step 1)", obs.LatencyBuckets),
		ExtractSeconds:   r.Histogram("coflow_bvn_extract_seconds", "latency of one matching extraction (step 2 iteration)", obs.LatencyBuckets),
		Decomposes:       r.Counter("coflow_bvn_decompositions_total", "decompositions run"),
		Terms:            r.Counter("coflow_bvn_terms_total", "permutation terms extracted"),
		Matcher:          matching.NewObs(r),
	}
}
