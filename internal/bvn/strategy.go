package bvn

import (
	"fmt"
	"sort"

	"coflow/internal/matching"
	"coflow/internal/matrix"
)

// Strategy selects how Step 2 of Algorithm 1 extracts matchings. Both
// strategies satisfy Lemma 4 exactly (Σq_u = ρ, ≤ m² terms); they
// differ in how many terms they typically produce, which matters when
// each distinct matching is a reconfiguration of a physical fabric.
type Strategy int

const (
	// StrategyFirst extracts any perfect matching on the support (the
	// paper's Algorithm 1 as written).
	StrategyFirst Strategy = iota
	// StrategyThick extracts a bottleneck matching: the perfect
	// matching whose minimum entry is as large as possible, found by
	// binary search over entry thresholds. Each term then carries the
	// largest possible multiplicity, so fewer terms are emitted.
	StrategyThick
)

func (s Strategy) String() string {
	switch s {
	case StrategyFirst:
		return "first"
	case StrategyThick:
		return "thick"
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// DecomposeWith runs Algorithm 1 using the given extraction strategy.
func DecomposeWith(d *matrix.Matrix, strategy Strategy) (*Decomposition, error) {
	if strategy == StrategyFirst {
		return Decompose(d)
	}
	decSpan := pkgObs.DecomposeSeconds.Start()
	defer decSpan.End()
	augSpan := pkgObs.AugmentSeconds.Start()
	aug := Augment(d)
	augSpan.End()
	dec := &Decomposition{Load: d.Load(), Augmented: aug.Clone()}
	work := aug
	m := d.Rows()
	maxTerms := m*m + 1
	// One warm-started matcher serves every threshold probe of every
	// term: each probe repairs the previous probe's matching against
	// the new threshold graph instead of solving cold (correct for any
	// edge-set change, fastest when supports shrink monotonically).
	matcher := matching.NewMatcher(m)
	matcher.SetObs(pkgObs.Matcher)
	for !work.IsZero() {
		if len(dec.Terms) >= maxTerms {
			return nil, fmt.Errorf("bvn: more than m²=%d terms extracted; invariant violated", m*m)
		}
		exSpan := pkgObs.ExtractSeconds.Start()
		perm, err := bottleneckMatching(work, matcher)
		if err != nil {
			exSpan.End()
			return nil, fmt.Errorf("bvn: %w", err)
		}
		var q int64 = -1
		for i, j := range perm.To {
			if v := work.At(i, j); q < 0 || v < q {
				q = v
			}
		}
		if q <= 0 {
			exSpan.End()
			return nil, fmt.Errorf("bvn: non-positive multiplicity %d; invariant violated", q)
		}
		for i, j := range perm.To {
			work.Add(i, j, -q)
		}
		dec.Terms = append(dec.Terms, Term{Count: q, Perm: perm})
		exSpan.End()
	}
	pkgObs.Decomposes.Inc()
	pkgObs.Terms.Add(int64(len(dec.Terms)))
	return dec, nil
}

// bottleneckMatching finds a perfect matching maximizing the minimum
// matrix entry along it: binary search the threshold θ over the
// distinct positive entries, keeping the largest θ whose ≥θ-support
// still admits a perfect matching. Every probe runs on the shared
// warm-started matcher.
func bottleneckMatching(work *matrix.Matrix, matcher *matching.Matcher) (matrix.Permutation, error) {
	m := work.Rows()
	// Collect distinct positive entry values.
	seen := map[int64]bool{}
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			if v := work.At(i, j); v > 0 {
				seen[v] = true
			}
		}
	}
	if len(seen) == 0 {
		return matrix.Permutation{}, fmt.Errorf("bottleneck matching on zero matrix")
	}
	values := make([]int64, 0, len(seen))
	for v := range seen {
		values = append(values, v)
	}
	sort.Slice(values, func(a, b int) bool { return values[a] < values[b] })

	// The smallest positive value always works (full support of a
	// balanced matrix). Binary search the largest workable value.
	lo, hi := 0, len(values)-1 // indices into values; lo is feasible
	var best matrix.Permutation
	if p := matcher.MatchSupportAtLeast(work, values[lo]); p.IsPerfect() {
		best = p
	} else {
		return matrix.Permutation{}, fmt.Errorf("support admits no perfect matching")
	}
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if p := matcher.MatchSupportAtLeast(work, values[mid]); p.IsPerfect() {
			best = p
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return best, nil
}
