package bvn

import (
	"fmt"

	"coflow/internal/matrix"
)

// Strategy selects how Step 2 of Algorithm 1 extracts matchings. Both
// strategies satisfy Lemma 4 exactly (Σq_u = ρ, ≤ m² terms); they
// differ in how many terms they typically produce, which matters when
// each distinct matching is a reconfiguration of a physical fabric.
type Strategy int

const (
	// StrategyFirst extracts any perfect matching on the support (the
	// paper's Algorithm 1 as written).
	StrategyFirst Strategy = iota
	// StrategyThick extracts a bottleneck matching: the perfect
	// matching whose minimum entry is as large as possible, found by
	// binary search over entry thresholds. Each term then carries the
	// largest possible multiplicity, so fewer terms are emitted.
	StrategyThick
)

func (s Strategy) String() string {
	switch s {
	case StrategyFirst:
		return "first"
	case StrategyThick:
		return "thick"
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// DecomposeWith runs Algorithm 1 using the given extraction strategy.
//
// This is the one-shot convenience form: it builds a throwaway
// Decomposer per call. Repeated callers (the slot pipeline) should
// hold a Decomposer, whose steady-state calls are allocation-free and
// whose bottleneck probes reuse one warm matcher across terms.
func DecomposeWith(d *matrix.Matrix, strategy Strategy) (*Decomposition, error) {
	dc := NewDecomposer(d.Rows())
	dc.SetObs(pkgObs)
	//lint:ignore pooled the Decomposer is throwaway: no later call on it can recycle the result's storage
	return dc.DecomposeWith(d, strategy)
}
