package bvn

import (
	"testing"

	"coflow/internal/matrix"
)

// FuzzDecompose drives Algorithm 1 with arbitrary small matrices and
// checks every Lemma 4 invariant via Verify. Run the seed corpus with
// `go test`; explore with `go test -fuzz=FuzzDecompose ./internal/bvn`.
func FuzzDecompose(f *testing.F) {
	f.Add([]byte{1, 2, 2, 1})                // Figure 1
	f.Add([]byte{0, 0, 0, 0})                // zero matrix
	f.Add([]byte{9, 0, 9, 0, 9, 0, 9, 0, 9}) // Appendix B shape
	f.Add([]byte{255})
	f.Add([]byte{1, 0, 0, 0, 1, 0, 0, 0, 1, 5, 5, 5, 5, 5, 5, 5})

	f.Fuzz(func(t *testing.T, data []byte) {
		// Derive the largest square matrix the payload can fill.
		m := 1
		for (m+1)*(m+1) <= len(data) && m+1 <= 6 {
			m++
		}
		if len(data) < m*m {
			return
		}
		d := matrix.NewSquare(m)
		for i := 0; i < m; i++ {
			for j := 0; j < m; j++ {
				d.Set(i, j, int64(data[i*m+j]))
			}
		}
		dec, err := Decompose(d)
		if err != nil {
			t.Fatalf("Decompose failed on %v: %v", d, err)
		}
		if err := dec.Verify(d); err != nil {
			t.Fatalf("invariant violated on %v: %v", d, err)
		}
	})
}
