// Package bvn implements Algorithm 1 of the paper: the integer
// Birkhoff–von Neumann decomposition.
//
// Given a non-negative integer matrix D with load ρ(D) (the maximum
// row or column sum), Step 1 augments D to a matrix D̃ ≥ D whose row
// and column sums all equal ρ(D), in at most 2m−1 augmentation steps.
// Step 2 repeatedly extracts a perfect matching on the support of D̃
// and subtracts it with the largest feasible multiplicity, producing
//
//	D̃ = Σ_{u=1..U} q_u · Π_u,   Σ q_u = ρ(D),   U ≤ m².
//
// Scheduling the matchings Π_u for q_u slots each therefore finishes
// the coflow D in exactly ρ(D) slots (Lemma 4), which is optimal.
package bvn

import (
	"fmt"

	"coflow/internal/matching"
	"coflow/internal/matrix"
)

// Term is one weighted permutation in a decomposition: the matching
// Perm scheduled for Count consecutive time slots.
type Term struct {
	Count int64
	Perm  matrix.Permutation
}

// Decomposition is the result of Algorithm 1 on a coflow matrix.
type Decomposition struct {
	// Load is ρ(D), the total number of slots Σ q_u.
	Load int64
	// Terms are the weighted permutations, in extraction order.
	Terms []Term
	// Augmented is D̃, the matrix the terms sum to exactly.
	Augmented *matrix.Matrix
}

// Augment performs Step 1 of Algorithm 1: it returns a copy of d with
// entries increased until every row and column sums to ρ(d). The input
// is not modified. A zero matrix is returned unchanged.
func Augment(d *matrix.Matrix) *matrix.Matrix {
	if d.Rows() != d.Cols() {
		panic(fmt.Sprintf("bvn: Augment needs a square matrix, got %d×%d", d.Rows(), d.Cols()))
	}
	m := d.Rows()
	rho := d.Load()
	out := d.Clone()
	if rho == 0 {
		return out
	}
	rows := out.RowSums()
	cols := out.ColSums()
	// Each step saturates at least one row or column, so at most 2m−1
	// iterations run before every sum equals ρ.
	for iter := 0; iter <= 2*m; iter++ {
		iMin, jMin := 0, 0
		for i := 1; i < m; i++ {
			if rows[i] < rows[iMin] {
				iMin = i
			}
			if cols[i] < cols[jMin] {
				jMin = i
			}
		}
		if rows[iMin] == rho && cols[jMin] == rho {
			return out
		}
		p := rho - rows[iMin]
		if c := rho - cols[jMin]; c < p {
			p = c
		}
		out.Add(iMin, jMin, p)
		rows[iMin] += p
		cols[jMin] += p
	}
	panic("bvn: Augment did not converge in 2m+1 iterations (invariant violated)")
}

// Decompose runs Algorithm 1 on d and returns the full decomposition.
// It errors only if an internal invariant is violated (a balanced
// matrix whose support has no perfect matching), which cannot happen
// for valid inputs.
func Decompose(d *matrix.Matrix) (*Decomposition, error) {
	decSpan := pkgObs.DecomposeSeconds.Start()
	defer decSpan.End()
	augSpan := pkgObs.AugmentSeconds.Start()
	aug := Augment(d)
	augSpan.End()
	dec := &Decomposition{Load: d.Load(), Augmented: aug.Clone()}
	work := aug
	m := d.Rows()
	maxTerms := m*m + 1
	// Subtracting q·Π only shrinks the support, and only along matched
	// entries, so each extraction warm-starts from the previous
	// matching minus its zeroed edges: most iterations repair with a
	// handful of augmenting paths instead of a cold O(E·√V) solve.
	matcher := matching.NewMatcher(m)
	matcher.SetObs(pkgObs.Matcher)
	for !work.IsZero() {
		if len(dec.Terms) >= maxTerms {
			return nil, fmt.Errorf("bvn: more than m²=%d terms extracted; invariant violated", m*m)
		}
		exSpan := pkgObs.ExtractSeconds.Start()
		perm, err := matcher.PerfectOnSupport(work)
		if err != nil {
			exSpan.End()
			return nil, fmt.Errorf("bvn: %w", err)
		}
		// q = min entry along the matching: subtracting q·Π zeroes at
		// least one support entry, bounding the number of terms by m².
		var q int64 = -1
		for i, j := range perm.To {
			if v := work.At(i, j); q < 0 || v < q {
				q = v
			}
		}
		if q <= 0 {
			exSpan.End()
			return nil, fmt.Errorf("bvn: non-positive multiplicity %d; invariant violated", q)
		}
		for i, j := range perm.To {
			work.Add(i, j, -q)
		}
		dec.Terms = append(dec.Terms, Term{Count: q, Perm: perm})
		exSpan.End()
	}
	pkgObs.Decomposes.Inc()
	pkgObs.Terms.Add(int64(len(dec.Terms)))
	return dec, nil
}

// MustDecompose is Decompose that panics on error. The error paths are
// unreachable for valid (square, non-negative) inputs, so callers that
// construct matrices through the matrix package can use this form.
func MustDecompose(d *matrix.Matrix) *Decomposition {
	dec, err := Decompose(d)
	if err != nil {
		panic(err)
	}
	return dec
}

// TotalSlots returns Σ q_u (equal to Load for a valid decomposition).
func (d *Decomposition) TotalSlots() int64 {
	var s int64
	for _, t := range d.Terms {
		s += t.Count
	}
	return s
}

// Sum reconstructs Σ q_u·Π_u as a matrix (equal to Augmented).
func (d *Decomposition) Sum(m int) *matrix.Matrix {
	out := matrix.NewSquare(m)
	for _, t := range d.Terms {
		for i, j := range t.Perm.To {
			if j != matrix.Unmatched {
				out.Add(i, j, t.Count)
			}
		}
	}
	return out
}

// Verify checks every invariant of Lemma 4 against the original matrix
// d: the terms are perfect matchings, Σ q_u = ρ(d), the term sum
// equals the augmented matrix, and the augmented matrix dominates d
// with all row/column sums equal to ρ(d). It returns the first
// violation found, or nil.
func (dec *Decomposition) Verify(d *matrix.Matrix) error {
	m := d.Rows()
	if dec.Load != d.Load() {
		return fmt.Errorf("bvn: decomposition load %d != ρ(D) %d", dec.Load, d.Load())
	}
	if got := dec.TotalSlots(); got != dec.Load {
		return fmt.Errorf("bvn: Σq_u = %d != ρ(D) = %d", got, dec.Load)
	}
	if len(dec.Terms) > m*m {
		return fmt.Errorf("bvn: %d terms exceeds m² = %d", len(dec.Terms), m*m)
	}
	for u, t := range dec.Terms {
		if t.Count <= 0 {
			return fmt.Errorf("bvn: term %d has count %d", u, t.Count)
		}
		if dec.Load > 0 && !t.Perm.IsPerfect() {
			return fmt.Errorf("bvn: term %d is not a perfect matching", u)
		}
	}
	if !dec.Sum(m).Equal(dec.Augmented) {
		return fmt.Errorf("bvn: term sum differs from augmented matrix")
	}
	if !dec.Augmented.GE(d) {
		return fmt.Errorf("bvn: augmented matrix does not dominate D")
	}
	if dec.Load > 0 {
		for i := 0; i < m; i++ {
			if rs := dec.Augmented.RowSum(i); rs != dec.Load {
				return fmt.Errorf("bvn: augmented row %d sums to %d, want %d", i, rs, dec.Load)
			}
			if cs := dec.Augmented.ColSum(i); cs != dec.Load {
				return fmt.Errorf("bvn: augmented col %d sums to %d, want %d", i, cs, dec.Load)
			}
		}
	}
	return nil
}
