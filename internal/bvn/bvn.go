// Package bvn implements Algorithm 1 of the paper: the integer
// Birkhoff–von Neumann decomposition.
//
// Given a non-negative integer matrix D with load ρ(D) (the maximum
// row or column sum), Step 1 augments D to a matrix D̃ ≥ D whose row
// and column sums all equal ρ(D), in at most 2m−1 augmentation steps.
// Step 2 repeatedly extracts a perfect matching on the support of D̃
// and subtracts it with the largest feasible multiplicity, producing
//
//	D̃ = Σ_{u=1..U} q_u · Π_u,   Σ q_u = ρ(D),   U ≤ m².
//
// Scheduling the matchings Π_u for q_u slots each therefore finishes
// the coflow D in exactly ρ(D) slots (Lemma 4), which is optimal.
package bvn

import (
	"fmt"

	"coflow/internal/matrix"
)

// Term is one weighted permutation in a decomposition: the matching
// Perm scheduled for Count consecutive time slots.
type Term struct {
	Count int64
	Perm  matrix.Permutation
}

// Decomposition is the result of Algorithm 1 on a coflow matrix.
type Decomposition struct {
	// Load is ρ(D), the total number of slots Σ q_u.
	Load int64
	// Terms are the weighted permutations, in extraction order.
	Terms []Term
	// m is the matrix dimension, kept for lazy D̃ reconstruction.
	m int
	// augmented caches the lazily reconstructed D̃ (see Augmented).
	augmented *matrix.Matrix
}

// Augmented returns D̃, the balanced matrix the terms sum to exactly.
// It is reconstructed lazily from the terms on first call and cached,
// so decompositions that never inspect D̃ — the common scheduling
// path — skip the O(m²) copy entirely.
func (dec *Decomposition) Augmented() *matrix.Matrix {
	if dec.augmented == nil {
		dec.augmented = dec.Sum(dec.m)
	}
	return dec.augmented
}

// augHeap is a lazy min-heap of (row/column sum snapshot, index)
// pairs driving Augment's min-deficit selection. Entries are never
// updated in place: a sum change simply pushes a fresh pair, and
// stale pairs (snapshot ≠ current sum) are dropped when popped.
type augHeap struct {
	sum []int64
	idx []int32
}

//coflow:allocfree
func (h *augHeap) reset() {
	h.sum = h.sum[:0]
	h.idx = h.idx[:0]
}

//coflow:allocfree
func (h *augHeap) push(sum int64, idx int32) {
	h.sum = append(h.sum, sum)
	h.idx = append(h.idx, idx)
	i := len(h.sum) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.sum[p] <= h.sum[i] {
			break
		}
		h.sum[p], h.sum[i] = h.sum[i], h.sum[p]
		h.idx[p], h.idx[i] = h.idx[i], h.idx[p]
		i = p
	}
}

//coflow:allocfree
func (h *augHeap) pop() (int64, int32) {
	s, x := h.sum[0], h.idx[0]
	last := len(h.sum) - 1
	h.sum[0], h.idx[0] = h.sum[last], h.idx[last]
	h.sum, h.idx = h.sum[:last], h.idx[:last]
	i := 0
	for {
		c := 2*i + 1
		if c >= last {
			break
		}
		if r := c + 1; r < last && h.sum[r] < h.sum[c] {
			c = r
		}
		if h.sum[i] <= h.sum[c] {
			break
		}
		h.sum[i], h.sum[c] = h.sum[c], h.sum[i]
		h.idx[i], h.idx[c] = h.idx[c], h.idx[i]
		i = c
	}
	return s, x
}

// popDeficit pops until a fresh, unsaturated index surfaces: stale
// snapshots and sums already at ρ are discarded. It reports false
// when every remaining index is saturated.
//
//coflow:allocfree
func (h *augHeap) popDeficit(cur []int64, rho int64) (int32, bool) {
	for len(h.sum) > 0 {
		s, x := h.pop()
		if cur[x] == s && s < rho {
			return x, true
		}
	}
	return -1, false
}

// augScratch owns the reusable buffers of one augmentation run: the
// row/column sum vectors and the two deficit min-heaps. The zero
// value is ready after grow.
type augScratch struct {
	rows, cols       []int64
	rowHeap, colHeap augHeap
}

// grow (re)sizes the scratch for m×m inputs, reallocating only when
// the capacity is insufficient.
func (a *augScratch) grow(m int) {
	if cap(a.rows) < m {
		a.rows = make([]int64, m)
		a.cols = make([]int64, m)
		// Per heap: m initial pushes + one push per augmentation step
		// (≤ 2m−1 steps), so 3m capacity never reallocates.
		a.rowHeap.sum = make([]int64, 0, 3*m)
		a.rowHeap.idx = make([]int32, 0, 3*m)
		a.colHeap.sum = make([]int64, 0, 3*m)
		a.colHeap.idx = make([]int32, 0, 3*m)
	}
	a.rows = a.rows[:m]
	a.cols = a.cols[:m]
}

// augmentInto performs Step 1 of Algorithm 1 in place on dst (which
// already holds D) and returns ρ(D). Each step raises the entry at
// the (min row sum, min column sum) pair — found in O(log m) via the
// deficit heaps instead of the former O(m) scan — and saturates at
// least one of the two, so at most 2m−1 steps run.
//
//coflow:allocfree
func (a *augScratch) augmentInto(dst *matrix.Matrix) int64 {
	m := dst.Rows()
	rows := dst.RowSumsInto(a.rows)
	cols := dst.ColSumsInto(a.cols)
	var rho int64
	for i := range rows {
		if rows[i] > rho {
			rho = rows[i]
		}
		if cols[i] > rho {
			rho = cols[i]
		}
	}
	if rho == 0 {
		return 0
	}
	a.rowHeap.reset()
	a.colHeap.reset()
	for i := 0; i < m; i++ {
		if rows[i] < rho {
			a.rowHeap.push(rows[i], int32(i))
		}
		if cols[i] < rho {
			a.colHeap.push(cols[i], int32(i))
		}
	}
	for iter := 0; iter <= 2*m; iter++ {
		i, okR := a.rowHeap.popDeficit(rows, rho)
		j, okC := a.colHeap.popDeficit(cols, rho)
		if !okR || !okC {
			if okR != okC {
				// Σ row deficits always equals Σ column deficits, so
				// one side cannot drain before the other.
				panic("bvn: augment deficit imbalance (invariant violated)")
			}
			return rho
		}
		p := rho - rows[i]
		if c := rho - cols[j]; c < p {
			p = c
		}
		dst.Add(int(i), int(j), p)
		rows[i] += p
		cols[j] += p
		if rows[i] < rho {
			a.rowHeap.push(rows[i], i)
		}
		if cols[j] < rho {
			a.colHeap.push(cols[j], j)
		}
	}
	panic("bvn: Augment did not converge in 2m+1 iterations (invariant violated)")
}

// Augment performs Step 1 of Algorithm 1: it returns a copy of d with
// entries increased until every row and column sums to ρ(d). The input
// is not modified. A zero matrix is returned unchanged.
func Augment(d *matrix.Matrix) *matrix.Matrix {
	return AugmentInto(d.Clone(), d)
}

// AugmentInto is Augment writing into caller-owned storage: dst is
// overwritten with d and augmented in place (dst == d augments d
// itself). It returns dst. Reused across calls, the only remaining
// per-call cost is the scratch below, which a Decomposer amortizes
// away entirely.
func AugmentInto(dst, d *matrix.Matrix) *matrix.Matrix {
	if d.Rows() != d.Cols() {
		panic(fmt.Sprintf("bvn: Augment needs a square matrix, got %d×%d", d.Rows(), d.Cols()))
	}
	if dst != d {
		dst.CopyFrom(d)
	}
	var a augScratch
	a.grow(d.Rows())
	a.augmentInto(dst)
	return dst
}

// Decompose runs Algorithm 1 on d and returns the full decomposition.
// It errors only if an internal invariant is violated (a balanced
// matrix whose support has no perfect matching), which cannot happen
// for valid inputs.
//
// This is the one-shot convenience form: it builds a throwaway
// Decomposer per call. Repeated callers (the slot pipeline) should
// hold a Decomposer, whose steady-state calls are allocation-free.
func Decompose(d *matrix.Matrix) (*Decomposition, error) {
	return DecomposeWith(d, StrategyFirst)
}

// MustDecompose is Decompose that panics on error. The error paths are
// unreachable for valid (square, non-negative) inputs, so callers that
// construct matrices through the matrix package can use this form.
func MustDecompose(d *matrix.Matrix) *Decomposition {
	dec, err := Decompose(d)
	if err != nil {
		panic(err)
	}
	return dec
}

// TotalSlots returns Σ q_u (equal to Load for a valid decomposition).
func (d *Decomposition) TotalSlots() int64 {
	var s int64
	for _, t := range d.Terms {
		s += t.Count
	}
	return s
}

// Sum reconstructs Σ q_u·Π_u as a matrix (equal to Augmented()).
func (d *Decomposition) Sum(m int) *matrix.Matrix {
	out := matrix.NewSquare(m)
	for _, t := range d.Terms {
		for i, j := range t.Perm.To {
			if j != matrix.Unmatched {
				out.Add(i, j, t.Count)
			}
		}
	}
	return out
}

// Verify checks every invariant of Lemma 4 against the original matrix
// d: the terms are perfect matchings with positive counts, Σ q_u =
// ρ(d), and the term sum Σ q_u·Π_u dominates d with all row/column
// sums equal to ρ(d). Together these certify the terms as a valid
// ρ(d)-slot schedule for d, independent of how they were produced
// (cold Algorithm 1 or an incremental Update). It returns the first
// violation found, or nil.
func (dec *Decomposition) Verify(d *matrix.Matrix) error {
	m := d.Rows()
	if dec.Load != d.Load() {
		return fmt.Errorf("bvn: decomposition load %d != ρ(D) %d", dec.Load, d.Load())
	}
	if got := dec.TotalSlots(); got != dec.Load {
		return fmt.Errorf("bvn: Σq_u = %d != ρ(D) = %d", got, dec.Load)
	}
	if len(dec.Terms) > m*m {
		return fmt.Errorf("bvn: %d terms exceeds m² = %d", len(dec.Terms), m*m)
	}
	for u, t := range dec.Terms {
		if t.Count <= 0 {
			return fmt.Errorf("bvn: term %d has count %d", u, t.Count)
		}
		if dec.Load > 0 && !t.Perm.IsPerfect() {
			return fmt.Errorf("bvn: term %d is not a perfect matching", u)
		}
	}
	sum := dec.Sum(m)
	if !sum.GE(d) {
		return fmt.Errorf("bvn: term sum does not dominate D")
	}
	if dec.Load > 0 {
		for i := 0; i < m; i++ {
			if rs := sum.RowSum(i); rs != dec.Load {
				return fmt.Errorf("bvn: term-sum row %d sums to %d, want %d", i, rs, dec.Load)
			}
			if cs := sum.ColSum(i); cs != dec.Load {
				return fmt.Errorf("bvn: term-sum col %d sums to %d, want %d", i, cs, dec.Load)
			}
		}
	}
	return nil
}
