package bvn

import (
	"math/rand"
	"testing"

	"coflow/internal/matrix"
)

// benchMatrix builds a dense-ish random demand matrix: the shape the
// decomposition loop sees after Augment, where extraction cost is
// dominated by the per-term perfect-matching search.
func benchMatrix(m int, density float64, seed int64) *matrix.Matrix {
	rng := rand.New(rand.NewSource(seed))
	d := matrix.NewSquare(m)
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			if rng.Float64() < density {
				d.Set(i, j, int64(1+rng.Intn(50)))
			}
		}
	}
	return d
}

func benchDecompose(b *testing.B, m int, density float64) {
	b.Helper()
	d := benchMatrix(m, density, 17)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decompose(d); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecomposeM50Dense(b *testing.B)   { benchDecompose(b, 50, 0.5) }
func BenchmarkDecomposeM100Sparse(b *testing.B) { benchDecompose(b, 100, 0.1) }
func BenchmarkDecomposeM100Dense(b *testing.B)  { benchDecompose(b, 100, 0.5) }
