package bvn

import (
	"math/rand"
	"testing"

	"coflow/internal/matrix"
)

func TestAugmentAlreadyBalanced(t *testing.T) {
	d := matrix.MustFromRows([][]int64{
		{1, 2},
		{2, 1},
	})
	a := Augment(d)
	if !a.Equal(d) {
		t.Fatalf("balanced matrix changed by Augment: %v", a)
	}
}

func TestAugmentSkewed(t *testing.T) {
	d := matrix.MustFromRows([][]int64{
		{5, 0},
		{0, 1},
	})
	a := Augment(d)
	if a.Load() != 5 {
		t.Fatalf("augmented load = %d, want 5", a.Load())
	}
	for i := 0; i < 2; i++ {
		if a.RowSum(i) != 5 || a.ColSum(i) != 5 {
			t.Fatalf("row/col %d not saturated: %v", i, a)
		}
	}
	if !a.GE(d) {
		t.Fatalf("augmented does not dominate original: %v", a)
	}
}

func TestAugmentZero(t *testing.T) {
	d := matrix.NewSquare(3)
	a := Augment(d)
	if !a.IsZero() {
		t.Fatalf("zero matrix augmented to %v", a)
	}
}

func TestAugmentDoesNotModifyInput(t *testing.T) {
	d := matrix.MustFromRows([][]int64{{3, 0}, {0, 1}})
	orig := d.Clone()
	Augment(d)
	if !d.Equal(orig) {
		t.Fatal("Augment modified its input")
	}
}

func TestAugmentPanicsNonSquare(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Augment on non-square did not panic")
		}
	}()
	Augment(matrix.New(2, 3))
}

func TestDecomposeFigure1(t *testing.T) {
	// The paper's Figure 1 coflow: ρ = 3, finishes in 3 slots.
	d := matrix.MustFromRows([][]int64{
		{1, 2},
		{2, 1},
	})
	dec := MustDecompose(d)
	if dec.Load != 3 {
		t.Fatalf("Load = %d, want 3", dec.Load)
	}
	if err := dec.Verify(d); err != nil {
		t.Fatal(err)
	}
	if len(dec.Terms) > 4 {
		t.Fatalf("too many terms: %d > m²", len(dec.Terms))
	}
}

func TestDecomposeZero(t *testing.T) {
	dec := MustDecompose(matrix.NewSquare(4))
	if dec.Load != 0 || len(dec.Terms) != 0 {
		t.Fatalf("zero matrix decomposition: load=%d terms=%d", dec.Load, len(dec.Terms))
	}
	if err := dec.Verify(matrix.NewSquare(4)); err != nil {
		t.Fatal(err)
	}
}

func TestDecomposeSingleEntry(t *testing.T) {
	d := matrix.NewSquare(1)
	d.Set(0, 0, 7)
	dec := MustDecompose(d)
	if dec.Load != 7 || len(dec.Terms) != 1 || dec.Terms[0].Count != 7 {
		t.Fatalf("unexpected decomposition: %+v", dec)
	}
}

func TestDecomposeIdentityLike(t *testing.T) {
	d := matrix.MustFromRows([][]int64{
		{4, 0, 0},
		{0, 4, 0},
		{0, 0, 4},
	})
	dec := MustDecompose(d)
	if dec.Load != 4 {
		t.Fatalf("Load = %d, want 4", dec.Load)
	}
	if len(dec.Terms) != 1 {
		t.Fatalf("diagonal matrix should decompose into one term, got %d", len(dec.Terms))
	}
	if err := dec.Verify(d); err != nil {
		t.Fatal(err)
	}
}

func TestDecomposeAppendixBMatrices(t *testing.T) {
	// The two coflows from Appendix B.
	d1 := matrix.MustFromRows([][]int64{
		{9, 0, 9},
		{0, 9, 0},
		{9, 0, 9},
	})
	d2 := matrix.MustFromRows([][]int64{
		{1, 10, 1},
		{10, 1, 10},
		{1, 10, 1},
	})
	if d1.Load() != 18 {
		t.Fatalf("ρ(D1) = %d, want 18", d1.Load())
	}
	// max(I2, J2) for the combined flows = 30 (paper's t2).
	sum := d1.Clone()
	sum.AddMatrix(d2)
	if sum.Load() != 30 {
		t.Fatalf("ρ(D1+D2) = %d, want 30", sum.Load())
	}
	for _, d := range []*matrix.Matrix{d1, d2, sum} {
		dec := MustDecompose(d)
		if err := dec.Verify(d); err != nil {
			t.Fatal(err)
		}
	}
}

func randomMatrix(rng *rand.Rand, m int, maxV int64) *matrix.Matrix {
	out := matrix.NewSquare(m)
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			if rng.Intn(3) > 0 { // ~2/3 density
				out.Set(i, j, rng.Int63n(maxV+1))
			}
		}
	}
	return out
}

// The central property of Lemma 4 on random inputs.
func TestDecomposeRandomVerify(t *testing.T) {
	rng := rand.New(rand.NewSource(2015))
	for trial := 0; trial < 300; trial++ {
		m := 1 + rng.Intn(8)
		d := randomMatrix(rng, m, 20)
		dec, err := Decompose(d)
		if err != nil {
			t.Fatalf("trial %d: %v for %v", trial, err, d)
		}
		if err := dec.Verify(d); err != nil {
			t.Fatalf("trial %d: %v for %v", trial, err, d)
		}
	}
}

// Scheduling the terms must serve every unit of the ORIGINAL demand:
// for each entry, the slots allocated on (i,j) across terms (q_u where
// Π_u matches i→j) must be ≥ d_ij.
func TestDecompositionCoversDemand(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 100; trial++ {
		m := 2 + rng.Intn(5)
		d := randomMatrix(rng, m, 15)
		dec := MustDecompose(d)
		cover := matrix.NewSquare(m)
		for _, term := range dec.Terms {
			for i, j := range term.Perm.To {
				if j != matrix.Unmatched {
					cover.Add(i, j, term.Count)
				}
			}
		}
		if !cover.GE(d) {
			t.Fatalf("trial %d: coverage %v does not dominate demand %v", trial, cover, d)
		}
	}
}

// Augmentation must terminate within 2m-1 entry increases; we check
// the count of entries that changed.
func TestAugmentBoundedChanges(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 200; trial++ {
		m := 1 + rng.Intn(8)
		d := randomMatrix(rng, m, 9)
		a := Augment(d)
		changed := 0
		for i := 0; i < m; i++ {
			for j := 0; j < m; j++ {
				if a.At(i, j) != d.At(i, j) {
					changed++
				}
			}
		}
		if changed > 2*m-1 && d.Load() > 0 {
			t.Fatalf("trial %d: %d entries changed, bound is 2m-1=%d", trial, changed, 2*m-1)
		}
	}
}

func TestVerifyCatchesCorruption(t *testing.T) {
	d := matrix.MustFromRows([][]int64{{1, 2}, {2, 1}})
	dec := MustDecompose(d)
	dec.Terms[0].Count++
	if err := dec.Verify(d); err == nil {
		t.Fatal("Verify accepted a corrupted decomposition")
	}
}

func BenchmarkDecompose50Dense(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	d := randomMatrix(rng, 50, 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MustDecompose(d)
	}
}

func BenchmarkDecompose150Sparse(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	d := matrix.NewSquare(150)
	for k := 0; k < 600; k++ {
		d.Set(rng.Intn(150), rng.Intn(150), rng.Int63n(100)+1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MustDecompose(d)
	}
}
