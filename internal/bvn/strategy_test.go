package bvn

import (
	"math/rand"
	"testing"

	"coflow/internal/matrix"
)

func TestStrategyString(t *testing.T) {
	if StrategyFirst.String() != "first" || StrategyThick.String() != "thick" {
		t.Fatal("Strategy.String broken")
	}
}

func TestDecomposeWithFirstMatchesDefault(t *testing.T) {
	d := matrix.MustFromRows([][]int64{{1, 2}, {2, 1}})
	a, err := DecomposeWith(d, StrategyFirst)
	if err != nil {
		t.Fatal(err)
	}
	b := MustDecompose(d)
	if a.Load != b.Load || len(a.Terms) != len(b.Terms) {
		t.Fatalf("StrategyFirst diverges from Decompose: %d/%d terms", len(a.Terms), len(b.Terms))
	}
}

func TestThickSatisfiesLemma4(t *testing.T) {
	rng := rand.New(rand.NewSource(515))
	for trial := 0; trial < 200; trial++ {
		m := 1 + rng.Intn(7)
		d := randomMatrix(rng, m, 20)
		dec, err := DecomposeWith(d, StrategyThick)
		if err != nil {
			t.Fatalf("trial %d: %v for %v", trial, err, d)
		}
		if err := dec.Verify(d); err != nil {
			t.Fatalf("trial %d: %v for %v", trial, err, d)
		}
	}
}

func TestThickExtractsLargestBottleneckFirst(t *testing.T) {
	// One dominant diagonal plus noise: the first extracted matching
	// must carry the largest possible multiplicity.
	d := matrix.MustFromRows([][]int64{
		{10, 1, 0},
		{0, 10, 1},
		{1, 0, 10},
	})
	dec, err := DecomposeWith(d, StrategyThick)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Terms[0].Count < 10 {
		t.Fatalf("first thick term has count %d, want >= 10", dec.Terms[0].Count)
	}
	for i, j := range dec.Terms[0].Perm.To {
		if i != j {
			t.Fatalf("first thick matching should be the diagonal, got %v", dec.Terms[0].Perm.To)
		}
	}
}

// Thick extraction should not emit more terms than first-fit on
// aggregate (its whole purpose), and usually strictly fewer.
func TestThickEmitsNoMoreTermsOnAggregate(t *testing.T) {
	rng := rand.New(rand.NewSource(2121))
	totalFirst, totalThick := 0, 0
	for trial := 0; trial < 60; trial++ {
		m := 2 + rng.Intn(6)
		d := randomMatrix(rng, m, 30)
		a := MustDecompose(d)
		b, err := DecomposeWith(d, StrategyThick)
		if err != nil {
			t.Fatal(err)
		}
		totalFirst += len(a.Terms)
		totalThick += len(b.Terms)
	}
	if totalThick > totalFirst {
		t.Fatalf("thick strategy emitted more terms in aggregate: %d vs %d", totalThick, totalFirst)
	}
}

func TestDecomposeWithZero(t *testing.T) {
	dec, err := DecomposeWith(matrix.NewSquare(3), StrategyThick)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Terms) != 0 || dec.Load != 0 {
		t.Fatalf("zero matrix: %+v", dec)
	}
}

func BenchmarkDecomposeThick50(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	d := randomMatrix(rng, 50, 50)
	b.ResetTimer()
	var terms int
	for i := 0; i < b.N; i++ {
		dec, err := DecomposeWith(d, StrategyThick)
		if err != nil {
			b.Fatal(err)
		}
		terms = len(dec.Terms)
	}
	b.ReportMetric(float64(terms), "terms")
}

func BenchmarkDecomposeFirst50(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	d := randomMatrix(rng, 50, 50)
	b.ResetTimer()
	var terms int
	for i := 0; i < b.N; i++ {
		dec := MustDecompose(d)
		terms = len(dec.Terms)
	}
	b.ReportMetric(float64(terms), "terms")
}
