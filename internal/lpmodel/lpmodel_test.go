package lpmodel

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"coflow/internal/coflowmodel"
	"coflow/internal/lp"
	"coflow/internal/matrix"
)

func TestIntervals(t *testing.T) {
	cases := []struct {
		T    int64
		want []int64
	}{
		{1, []int64{0, 1}},
		{2, []int64{0, 1, 2}},
		{3, []int64{0, 1, 2, 4}},
		{4, []int64{0, 1, 2, 4}},
		{5, []int64{0, 1, 2, 4, 8}},
		{0, []int64{0, 1}}, // degenerate horizon clamps to 1
	}
	for _, c := range cases {
		got := Intervals(c.T)
		if len(got) != len(c.want) {
			t.Fatalf("Intervals(%d) = %v, want %v", c.T, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("Intervals(%d) = %v, want %v", c.T, got, c.want)
			}
		}
	}
}

func TestIntervalsCoverHorizon(t *testing.T) {
	for _, T := range []int64{1, 7, 100, 12345, 1 << 40} {
		tau := Intervals(T)
		if tau[len(tau)-1] < T {
			t.Fatalf("T=%d: last endpoint %d < T", T, tau[len(tau)-1])
		}
		// L is the smallest such integer: the previous endpoint is < T.
		if len(tau) > 2 && tau[len(tau)-2] >= T {
			t.Fatalf("T=%d: intervals not minimal: %v", T, tau)
		}
	}
}

func TestIntervalIndex(t *testing.T) {
	tau := []int64{0, 1, 2, 4, 8}
	cases := map[int64]int{1: 1, 2: 2, 3: 3, 4: 3, 5: 4, 8: 4, 0: 1, -3: 1}
	for v, want := range cases {
		got, err := IntervalIndex(tau, v)
		if err != nil {
			t.Errorf("IntervalIndex(%d): %v", v, err)
		} else if got != want {
			t.Errorf("IntervalIndex(%d) = %d, want %d", v, got, want)
		}
	}
}

func TestIntervalIndexErrorsBeyondHorizon(t *testing.T) {
	if _, err := IntervalIndex([]int64{0, 1, 2}, 3); err == nil {
		t.Error("no error for value beyond horizon")
	}
}

func TestMustIntervalIndexPanicsBeyondHorizon(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for value beyond horizon")
		}
	}()
	mustIntervalIndex([]int64{0, 1, 2}, 3)
}

func singleCoflowInstance() *coflowmodel.Instance {
	d := matrix.MustFromRows([][]int64{{1, 2}, {2, 1}})
	return &coflowmodel.Instance{
		Ports:   2,
		Coflows: []coflowmodel.Coflow{coflowmodel.FromMatrix(1, 1, 0, d)},
	}
}

func TestIntervalLPSingleCoflow(t *testing.T) {
	sol, err := SolveIntervalLP(singleCoflowInstance())
	if err != nil {
		t.Fatal(err)
	}
	// ρ = 3 → first feasible interval is (2,4], so C̄ = τ_2 = 2.
	if math.Abs(sol.CBar[0]-2) > 1e-9 {
		t.Fatalf("CBar = %g, want 2", sol.CBar[0])
	}
	if math.Abs(sol.LowerBound-2) > 1e-9 {
		t.Fatalf("LowerBound = %g, want 2", sol.LowerBound)
	}
	if len(sol.Order) != 1 || sol.Order[0] != 0 {
		t.Fatalf("Order = %v", sol.Order)
	}
}

func TestIntervalLPRespectsRelease(t *testing.T) {
	ins := singleCoflowInstance()
	ins.Coflows[0].Release = 5
	sol, err := SolveIntervalLP(ins)
	if err != nil {
		t.Fatal(err)
	}
	// r + ρ = 8 → first feasible interval ends at 8 → C̄ = τ = 4.
	if math.Abs(sol.CBar[0]-4) > 1e-9 {
		t.Fatalf("CBar = %g, want 4", sol.CBar[0])
	}
}

func TestIntervalLPOrdering(t *testing.T) {
	// A tiny coflow (load 1) and a huge one (load 40) with equal
	// weights: LP must order the tiny one first.
	tiny := coflowmodel.Coflow{ID: 2, Weight: 1, Flows: []coflowmodel.Flow{{Src: 0, Dst: 0, Size: 1}}}
	huge := coflowmodel.Coflow{ID: 1, Weight: 1, Flows: []coflowmodel.Flow{{Src: 0, Dst: 0, Size: 40}}}
	ins := &coflowmodel.Instance{Ports: 1, Coflows: []coflowmodel.Coflow{huge, tiny}}
	sol, err := SolveIntervalLP(ins)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Order[0] != 1 || sol.Order[1] != 0 {
		t.Fatalf("Order = %v (CBar %v), want tiny first", sol.Order, sol.CBar)
	}
	if sol.CBar[1] >= sol.CBar[0] {
		t.Fatalf("CBar tiny %g !< CBar huge %g", sol.CBar[1], sol.CBar[0])
	}
}

func TestIntervalLPWeightBreaksTies(t *testing.T) {
	// Same loads, very different weights, shared bottleneck: the heavy
	// coflow should get the earlier LP completion.
	a := coflowmodel.Coflow{ID: 1, Weight: 1, Flows: []coflowmodel.Flow{{Src: 0, Dst: 0, Size: 8}}}
	b := coflowmodel.Coflow{ID: 2, Weight: 100, Flows: []coflowmodel.Flow{{Src: 0, Dst: 0, Size: 8}}}
	ins := &coflowmodel.Instance{Ports: 1, Coflows: []coflowmodel.Coflow{a, b}}
	sol, err := SolveIntervalLP(ins)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Order[0] != 1 {
		t.Fatalf("heavy coflow not first: order %v, CBar %v", sol.Order, sol.CBar)
	}
}

func TestIntervalLPConvexity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ins := randomInstance(rng, 3, 4, 6)
	sol, err := SolveIntervalLP(ins)
	if err != nil {
		t.Fatal(err)
	}
	for k, xs := range sol.X {
		var sum float64
		for _, x := range xs {
			if x < -1e-9 {
				t.Fatalf("coflow %d has negative x: %v", k, xs)
			}
			sum += x
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Fatalf("coflow %d x-mass = %g, want 1", k, sum)
		}
	}
}

func TestMaxTotalLoadsAppendixB(t *testing.T) {
	d1 := matrix.MustFromRows([][]int64{
		{9, 0, 9},
		{0, 9, 0},
		{9, 0, 9},
	})
	d2 := matrix.MustFromRows([][]int64{
		{1, 10, 1},
		{10, 1, 10},
		{1, 10, 1},
	})
	ins := &coflowmodel.Instance{Ports: 3, Coflows: []coflowmodel.Coflow{
		coflowmodel.FromMatrix(1, 1, 0, d1),
		coflowmodel.FromMatrix(2, 1, 0, d2),
	}}
	v := MaxTotalLoads(ins, []int{0, 1})
	if v[0] != 18 || v[1] != 30 {
		t.Fatalf("V = %v, want [18 30] (the paper's t1, t2)", v)
	}
}

func TestMaxTotalLoadsMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		ins := randomInstance(rng, 2+rng.Intn(4), 1+rng.Intn(6), 8)
		order := rng.Perm(len(ins.Coflows))
		v := MaxTotalLoads(ins, order)
		for i := 1; i < len(v); i++ {
			if v[i] < v[i-1] {
				t.Fatalf("V not monotone: %v", v)
			}
		}
		// Last prefix covers everything: equals ρ of the summed matrix.
		sum := matrix.NewSquare(ins.Ports)
		for k := range ins.Coflows {
			sum.AddMatrix(ins.Coflows[k].Matrix(ins.Ports))
		}
		if len(v) > 0 && v[len(v)-1] != sum.Load() {
			t.Fatalf("V_n = %d, want ρ(ΣD) = %d", v[len(v)-1], sum.Load())
		}
	}
}

// Lemma 3 as proven: with the LP ordering, V_k ≤ (16/3)·C̄_k for every
// k (except the degenerate all-mass-in-interval-one case, where V_k ≤
// τ_1 = 1 regardless).
func TestLemma3Property(t *testing.T) {
	rng := rand.New(rand.NewSource(1618))
	for trial := 0; trial < 40; trial++ {
		ins := randomInstance(rng, 2+rng.Intn(3), 2+rng.Intn(5), 10)
		sol, err := SolveIntervalLP(ins)
		if err != nil {
			t.Fatal(err)
		}
		v := MaxTotalLoads(ins, sol.Order)
		for pos, k := range sol.Order {
			bound := 16.0 / 3.0 * sol.CBar[k]
			if float64(v[pos]) > bound+1e-6 && v[pos] > 1 {
				t.Fatalf("trial %d: V_%d = %d > (16/3)·C̄ = %g", trial, pos, v[pos], bound)
			}
		}
	}
}

func TestTimeIndexedSingleCoflowTight(t *testing.T) {
	sol, err := SolveTimeIndexedLP(singleCoflowInstance())
	if err != nil {
		t.Fatal(err)
	}
	// LP-EXP is tight for a single coflow: LB = ρ = 3.
	if math.Abs(sol.LowerBound-3) > 1e-8 {
		t.Fatalf("LP-EXP bound = %g, want 3", sol.LowerBound)
	}
}

// LP-EXP dominates the interval LP as a lower bound.
func TestTimeIndexedDominatesInterval(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 25; trial++ {
		ins := randomInstance(rng, 2+rng.Intn(2), 1+rng.Intn(4), 6)
		isol, err := SolveIntervalLP(ins)
		if err != nil {
			t.Fatal(err)
		}
		tsol, err := SolveTimeIndexedLP(ins)
		if err != nil {
			t.Fatal(err)
		}
		if tsol.LowerBound < isol.LowerBound-1e-6 {
			t.Fatalf("trial %d: LP-EXP %g < interval LP %g", trial, tsol.LowerBound, isol.LowerBound)
		}
	}
}

func TestTimeIndexedSizeGuard(t *testing.T) {
	// One coflow with a huge demand explodes T; the guard must trip.
	c := coflowmodel.Coflow{ID: 1, Weight: 1, Flows: []coflowmodel.Flow{{Src: 0, Dst: 0, Size: 10_000_000}}}
	ins := &coflowmodel.Instance{Ports: 1, Coflows: []coflowmodel.Coflow{c}}
	if _, err := SolveTimeIndexedLP(ins); err == nil {
		t.Fatal("size guard did not trip")
	}
}

func TestTrivialLowerBound(t *testing.T) {
	ins := singleCoflowInstance()
	if got := TrivialLowerBound(ins); math.Abs(got-3) > 1e-12 {
		t.Fatalf("TrivialLowerBound = %g, want 3", got)
	}
	ins.Coflows[0].Release = 2
	ins.Coflows[0].Weight = 3
	if got := TrivialLowerBound(ins); math.Abs(got-15) > 1e-12 {
		t.Fatalf("TrivialLowerBound = %g, want 15", got)
	}
}

func TestEmptyInstanceRejected(t *testing.T) {
	ins := &coflowmodel.Instance{Ports: 2}
	if _, err := SolveIntervalLP(ins); err == nil {
		t.Fatal("empty instance accepted by interval LP")
	}
	if _, err := SolveTimeIndexedLP(ins); err == nil {
		t.Fatal("empty instance accepted by LP-EXP")
	}
}

func TestOrderByCBarTieBreak(t *testing.T) {
	ins := &coflowmodel.Instance{Ports: 1, Coflows: []coflowmodel.Coflow{
		{ID: 9, Weight: 1}, {ID: 3, Weight: 1},
	}}
	order := OrderByCBar(ins, []float64{5, 5})
	if order[0] != 1 || order[1] != 0 {
		t.Fatalf("tie break by ID failed: %v", order)
	}
}

// randomInstance builds a random valid instance with n coflows on an
// m-port switch, flow sizes in [1, maxSize].
func randomInstance(rng *rand.Rand, m, n int, maxSize int64) *coflowmodel.Instance {
	ins := &coflowmodel.Instance{Ports: m}
	for k := 0; k < n; k++ {
		c := coflowmodel.Coflow{ID: k + 1, Weight: 1 + float64(rng.Intn(5))}
		flows := 1 + rng.Intn(m*m)
		for f := 0; f < flows; f++ {
			c.Flows = append(c.Flows, coflowmodel.Flow{
				Src:  rng.Intn(m),
				Dst:  rng.Intn(m),
				Size: 1 + rng.Int63n(maxSize),
			})
		}
		ins.Coflows = append(ins.Coflows, c)
	}
	return ins
}

func BenchmarkIntervalLP20x10(b *testing.B) {
	rng := rand.New(rand.NewSource(12))
	ins := randomInstance(rng, 10, 20, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveIntervalLP(ins); err != nil {
			b.Fatal(err)
		}
	}
}

func TestAlphaPointsSingleCoflow(t *testing.T) {
	sol, err := SolveIntervalLP(singleCoflowInstance())
	if err != nil {
		t.Fatal(err)
	}
	// All mass sits in one interval, so every α gives its left endpoint.
	for _, alpha := range []float64{0.1, 0.5, 1.0} {
		pts, err := sol.AlphaPoints(alpha)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(pts[0]-2) > 1e-9 {
			t.Fatalf("alpha=%g: point %g, want 2", alpha, pts[0])
		}
	}
}

func TestAlphaPointsMonotoneInAlpha(t *testing.T) {
	rng := rand.New(rand.NewSource(88))
	for trial := 0; trial < 20; trial++ {
		ins := randomInstance(rng, 2+rng.Intn(3), 2+rng.Intn(5), 10)
		sol, err := SolveIntervalLP(ins)
		if err != nil {
			t.Fatal(err)
		}
		lo, err := sol.AlphaPoints(0.25)
		if err != nil {
			t.Fatal(err)
		}
		hi, err := sol.AlphaPoints(0.95)
		if err != nil {
			t.Fatal(err)
		}
		for k := range lo {
			if lo[k] > hi[k]+1e-9 {
				t.Fatalf("trial %d coflow %d: α-points not monotone (%g > %g)",
					trial, k, lo[k], hi[k])
			}
		}
	}
}

func TestAlphaPointsRejectBadAlpha(t *testing.T) {
	sol, err := SolveIntervalLP(singleCoflowInstance())
	if err != nil {
		t.Fatal(err)
	}
	for _, alpha := range []float64{0, -1, 1.5} {
		if _, err := sol.AlphaPoints(alpha); err == nil {
			t.Errorf("alpha=%g accepted", alpha)
		}
	}
}

func TestOrderByAlphaPointsIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(89))
	ins := randomInstance(rng, 3, 6, 8)
	sol, err := SolveIntervalLP(ins)
	if err != nil {
		t.Fatal(err)
	}
	order, err := sol.OrderByAlphaPoints(ins, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	seen := make([]bool, len(order))
	for _, k := range order {
		if k < 0 || k >= len(order) || seen[k] {
			t.Fatalf("not a permutation: %v", order)
		}
		seen[k] = true
	}
}

func TestWriteIntervalLPMPS(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteIntervalLPMPS(&buf, singleCoflowInstance(), "fig1"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"NAME", "ROWS", "COLUMNS", "RHS", "ENDATA"} {
		if !strings.Contains(out, want) {
			t.Fatalf("MPS output missing %q:\n%s", want, out)
		}
	}
	// The exported program must solve to the same lower bound.
	prob, err := lp.ReadMPS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := lp.Solve(prob)
	if err != nil {
		t.Fatal(err)
	}
	want, err := SolveIntervalLP(singleCoflowInstance())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Objective-want.LowerBound) > 1e-9 {
		t.Fatalf("MPS round trip changed the bound: %g vs %g", sol.Objective, want.LowerBound)
	}
	if err := WriteIntervalLPMPS(&buf, &coflowmodel.Instance{Ports: 1}, "x"); err == nil {
		t.Fatal("empty instance accepted")
	}
}
