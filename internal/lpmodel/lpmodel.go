// Package lpmodel builds and solves the paper's linear programming
// relaxations of the coflow scheduling problem (O):
//
//   - the interval-indexed (LP) of §2.1, polynomial-sized, used both
//     as a lower bound (Lemma 1) and to derive the coflow ordering
//     (15) via the approximated completion times C̄_k (Eq. 14); and
//   - the time-indexed (LP-EXP), pseudo-polynomial, used as a tighter
//     lower bound on small instances (§4.2).
//
// It also computes the maximum total input/output loads V_k (Eq. 16)
// with respect to an ordering, the quantity driving the grouping step
// of Algorithm 2 and the approximation guarantees (Lemmas 2 and 3).
package lpmodel

import (
	"fmt"
	"io"
	"math"
	"sort"

	"coflow/internal/coflowmodel"
	"coflow/internal/lp"
)

// defaultMethod selects the simplex implementation used by
// SolveIntervalLP and SolveTimeIndexedLP. The dense tableau is the
// historical default; coflowsim/experiments switch it to the sparse
// revised simplex with -lpmethod sparse.
var defaultMethod = lp.MethodDense

// SetDefaultMethod installs the package-wide LP method. Call once at
// startup (it is not synchronized against concurrent solves), the
// same convention as lp.SetObs. The explicit ...With variants take
// precedence for individual calls.
func SetDefaultMethod(m lp.Method) { defaultMethod = m }

// DefaultMethod returns the installed package-wide LP method.
func DefaultMethod() lp.Method { return defaultMethod }

// Intervals returns the paper's geometric time points for horizon T:
// τ_0 = 0 and τ_l = 2^(l−1) for l = 1..L, where L is the smallest
// integer with 2^(L−1) ≥ T. The l-th interval is (τ_{l−1}, τ_l].
func Intervals(T int64) []int64 {
	if T < 1 {
		T = 1
	}
	tau := []int64{0, 1}
	for tau[len(tau)-1] < T {
		tau = append(tau, tau[len(tau)-1]*2)
	}
	return tau
}

// IntervalIndex returns the smallest l ≥ 1 with v ≤ τ_l, i.e. the
// index of the interval (τ_{l−1}, τ_l] containing v ≥ 1. A v beyond
// the horizon covered by tau is a caller-input error, not an internal
// invariant, so it is returned rather than panicked.
func IntervalIndex(tau []int64, v int64) (int, error) {
	if v < 1 {
		return 1, nil
	}
	idx := sort.Search(len(tau), func(l int) bool { return tau[l] >= v })
	if idx >= len(tau) {
		return 0, fmt.Errorf("lpmodel: value %d beyond horizon τ_L=%d", v, tau[len(tau)-1])
	}
	if idx == 0 {
		idx = 1
	}
	return idx, nil
}

// mustIntervalIndex is IntervalIndex for call sites that construct
// tau from the same instance v is derived from, where an out-of-range
// v IS an internal invariant violation.
func mustIntervalIndex(tau []int64, v int64) int {
	idx, err := IntervalIndex(tau, v)
	if err != nil {
		panic(err)
	}
	return idx
}

// IntervalSolution is the outcome of solving the interval-indexed LP.
type IntervalSolution struct {
	// Tau are the interval endpoints used (τ_0..τ_L).
	Tau []int64
	// CBar[k] is the approximated completion time of ins.Coflows[k]
	// (Eq. 14): Σ_l τ_{l−1}·x̄_l^(k).
	CBar []float64
	// X[k][l] is the optimal x̄_l^(k) (l indexes 1..L; X[k][0] unused).
	X [][]float64
	// LowerBound is the LP objective value, a lower bound on the
	// optimal total weighted completion time (Lemma 1).
	LowerBound float64
	// Order lists coflow indices sorted by nondecreasing C̄ (the
	// paper's ordering (15)), ties broken by coflow ID.
	Order []int
	// Iterations is the total simplex iteration count.
	Iterations int
	// Vars and Rows describe the solved LP's size.
	Vars, Rows int
}

// intervalModel carries the structural data of one built interval LP.
type intervalModel struct {
	prob   *lp.Problem
	tau    []int64
	lMin   []int
	varIdx [][]int
}

// buildIntervalLP constructs the interval-indexed relaxation without
// solving it.
func buildIntervalLP(ins *coflowmodel.Instance) (*intervalModel, error) {
	if err := ins.Validate(); err != nil {
		return nil, err
	}
	n := len(ins.Coflows)
	if n == 0 {
		return nil, fmt.Errorf("lpmodel: empty instance")
	}
	m := ins.Ports
	tau := Intervals(ins.Horizon())
	L := len(tau) - 1

	// Per-coflow port loads and first feasible interval (13):
	// x_l^(k) = 0 unless τ_l ≥ r_k + every port load of coflow k,
	// i.e. τ_l ≥ r_k + ρ_k.
	rowLoad := make([][]int64, n)
	colLoad := make([][]int64, n)
	lMin := make([]int, n)
	for k := range ins.Coflows {
		c := &ins.Coflows[k]
		rowLoad[k] = c.RowLoads(m)
		colLoad[k] = c.ColLoads(m)
		need := c.Release + c.Load(m)
		if need < 1 {
			need = 1 // an empty coflow still completes in interval 1
		}
		// Intervals(Horizon) covers release+load of every coflow, so
		// an error here is impossible for a validated instance.
		lMin[k] = mustIntervalIndex(tau, need)
	}

	// Variable numbering: x_l^(k) for l = lMin[k]..L.
	varIdx := make([][]int, n)
	numVars := 0
	for k := 0; k < n; k++ {
		varIdx[k] = make([]int, L+1)
		for l := 0; l <= L; l++ {
			varIdx[k][l] = -1
		}
		for l := lMin[k]; l <= L; l++ {
			varIdx[k][l] = numVars
			numVars++
		}
	}

	prob := lp.NewProblem(numVars)
	for k := 0; k < n; k++ {
		w := ins.Coflows[k].Weight
		for l := lMin[k]; l <= L; l++ {
			prob.SetObjective(varIdx[k][l], w*float64(tau[l-1]))
		}
	}

	// Convexity rows: Σ_l x_l^(k) = 1.
	for k := 0; k < n; k++ {
		entries := make([]lp.Entry, 0, L-lMin[k]+1)
		for l := lMin[k]; l <= L; l++ {
			entries = append(entries, lp.Entry{Var: varIdx[k][l], Coef: 1})
		}
		prob.AddConstraint(entries, lp.EQ, 1)
	}

	// Load rows (11)/(12): for each port and interval l,
	// Σ_{u≤l} Σ_k load·x_u^(k) ≤ τ_l. Rows that cannot bind (total
	// feasible load ≤ τ_l) are pruned.
	addLoadRows := func(load [][]int64) {
		for port := 0; port < m; port++ {
			var total int64
			for k := 0; k < n; k++ {
				total += load[k][port]
			}
			if total == 0 {
				continue
			}
			for l := 1; l <= L; l++ {
				if total <= tau[l] {
					break // all longer intervals are slack too
				}
				var entries []lp.Entry
				for k := 0; k < n; k++ {
					if load[k][port] == 0 {
						continue
					}
					for u := lMin[k]; u <= l; u++ {
						entries = append(entries, lp.Entry{Var: varIdx[k][u], Coef: float64(load[k][port])})
					}
				}
				if len(entries) > 0 {
					prob.AddConstraint(entries, lp.LE, float64(tau[l]))
				}
			}
		}
	}
	addLoadRows(rowLoad)
	addLoadRows(colLoad)
	return &intervalModel{prob: prob, tau: tau, lMin: lMin, varIdx: varIdx}, nil
}

// WriteIntervalLPMPS writes the instance's interval-indexed relaxation
// in MPS format for cross-checking with external LP solvers.
func WriteIntervalLPMPS(w io.Writer, ins *coflowmodel.Instance, name string) error {
	model, err := buildIntervalLP(ins)
	if err != nil {
		return err
	}
	return lp.WriteMPS(w, model.prob, name)
}

// SolveIntervalLP builds and solves the interval-indexed relaxation
// (LP) for ins with the package default method. The instance must be
// valid and non-empty.
func SolveIntervalLP(ins *coflowmodel.Instance) (*IntervalSolution, error) {
	return SolveIntervalLPWith(ins, defaultMethod)
}

// SolveIntervalLPWith is SolveIntervalLP with an explicit solver
// method, overriding the package default.
func SolveIntervalLPWith(ins *coflowmodel.Instance, method lp.Method) (*IntervalSolution, error) {
	model, err := buildIntervalLP(ins)
	if err != nil {
		return nil, err
	}
	n := len(ins.Coflows)
	prob, tau, lMin, varIdx := model.prob, model.tau, model.lMin, model.varIdx
	L := len(tau) - 1
	numVars := prob.NumVars()

	sol, err := lp.SolveWith(prob, method)
	if err != nil {
		return nil, err
	}
	if sol.Status != lp.Optimal {
		return nil, fmt.Errorf("lpmodel: interval LP not optimal: %v", sol.Status)
	}
	// Numerical insurance: the solution the orderings and lower bound
	// are built from must actually satisfy the relaxation.
	if err := lp.CheckFeasible(prob, sol.X, 1e-5); err != nil {
		return nil, fmt.Errorf("lpmodel: interval LP solution failed verification: %w", err)
	}

	out := &IntervalSolution{
		Tau:        tau,
		CBar:       make([]float64, n),
		X:          make([][]float64, n),
		LowerBound: sol.Objective,
		Iterations: sol.Iterations,
		Vars:       numVars,
		Rows:       prob.NumConstraints(),
	}
	for k := 0; k < n; k++ {
		out.X[k] = make([]float64, L+1)
		for l := lMin[k]; l <= L; l++ {
			x := sol.X[varIdx[k][l]]
			if x < 0 {
				x = 0
			}
			out.X[k][l] = x
			out.CBar[k] += float64(tau[l-1]) * x
		}
	}
	out.Order = OrderByCBar(ins, out.CBar)
	return out, nil
}

// AlphaPoints returns, per coflow, the α-point of the LP solution: the
// left endpoint τ_{l−1} of the first interval by which a cumulative
// x-mass of at least α has been scheduled. α-point orderings are the
// classic alternative to mean-completion-time orderings in
// LP-rounding scheduling (Skutella; Hall–Schulz–Shmoys–Wein, both
// cited by the paper): α near 1 orders by where the *bulk* of a coflow
// finishes rather than its average. α must lie in (0, 1].
func (s *IntervalSolution) AlphaPoints(alpha float64) ([]float64, error) {
	if alpha <= 0 || alpha > 1 {
		return nil, fmt.Errorf("lpmodel: alpha %g outside (0,1]", alpha)
	}
	out := make([]float64, len(s.X))
	for k, xs := range s.X {
		mass := 0.0
		point := float64(s.Tau[len(s.Tau)-1]) // fallback: horizon
		for l := 1; l < len(xs); l++ {
			mass += xs[l]
			if mass >= alpha-1e-9 {
				point = float64(s.Tau[l-1])
				break
			}
		}
		out[k] = point
	}
	return out, nil
}

// OrderByAlphaPoints orders coflows by nondecreasing α-points, ties by
// C̄ then ID.
func (s *IntervalSolution) OrderByAlphaPoints(ins *coflowmodel.Instance, alpha float64) ([]int, error) {
	pts, err := s.AlphaPoints(alpha)
	if err != nil {
		return nil, err
	}
	order := make([]int, len(pts))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ka, kb := order[a], order[b]
		if pts[ka] != pts[kb] {
			return pts[ka] < pts[kb]
		}
		if math.Abs(s.CBar[ka]-s.CBar[kb]) > 1e-12 {
			return s.CBar[ka] < s.CBar[kb]
		}
		return ins.Coflows[ka].ID < ins.Coflows[kb].ID
	})
	return order, nil
}

// OrderByCBar returns coflow indices sorted by nondecreasing C̄, ties
// broken by coflow ID (deterministic reproduction of ordering (15)).
func OrderByCBar(ins *coflowmodel.Instance, cbar []float64) []int {
	order := make([]int, len(cbar))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ka, kb := order[a], order[b]
		if math.Abs(cbar[ka]-cbar[kb]) > 1e-12 {
			return cbar[ka] < cbar[kb]
		}
		return ins.Coflows[ka].ID < ins.Coflows[kb].ID
	})
	return order
}

// MaxTotalLoads computes V_k (Eq. 16) for each prefix of the given
// ordering: V[pos] is the maximum, over all ports, of the cumulative
// load of coflows order[0..pos]. Every V[pos] is a lower bound on the
// time needed to finish those coflows under any schedule (Lemma 2).
func MaxTotalLoads(ins *coflowmodel.Instance, order []int) []int64 {
	m := ins.Ports
	rows := make([]int64, m)
	cols := make([]int64, m)
	out := make([]int64, len(order))
	var cur int64
	for pos, k := range order {
		for _, f := range ins.Coflows[k].Flows {
			rows[f.Src] += f.Size
			cols[f.Dst] += f.Size
			if rows[f.Src] > cur {
				cur = rows[f.Src]
			}
			if cols[f.Dst] > cur {
				cur = cols[f.Dst]
			}
		}
		out[pos] = cur
	}
	return out
}

// TimeIndexedSolution is the outcome of solving (LP-EXP).
type TimeIndexedSolution struct {
	// CBar[k] = Σ_t t·z̄_t^(k), the relaxed completion time.
	CBar []float64
	// LowerBound is the LP-EXP objective value: a lower bound on the
	// optimum that is at least as tight as the interval LP's.
	LowerBound float64
	// Iterations is the simplex iteration count.
	Iterations int
	// Vars and Rows describe the solved LP's size.
	Vars, Rows int
}

// MaxTimeIndexedVars and MaxTimeIndexedHorizon bound the size of
// (LP-EXP) instances this implementation accepts; beyond them the
// dense simplex would be impractically slow (the paper itself calls
// LP-EXP "extremely time consuming to solve").
const (
	MaxTimeIndexedVars    = 20000
	MaxTimeIndexedHorizon = 50000
)

// SolveTimeIndexedLP builds and solves the time-indexed relaxation
// (LP-EXP) with the package default method. It returns an error if
// the instance's horizon makes the program larger than
// MaxTimeIndexedVars variables.
func SolveTimeIndexedLP(ins *coflowmodel.Instance) (*TimeIndexedSolution, error) {
	return SolveTimeIndexedLPWith(ins, defaultMethod)
}

// SolveTimeIndexedLPWith is SolveTimeIndexedLP with an explicit
// solver method, overriding the package default.
func SolveTimeIndexedLPWith(ins *coflowmodel.Instance, method lp.Method) (*TimeIndexedSolution, error) {
	if err := ins.Validate(); err != nil {
		return nil, err
	}
	n := len(ins.Coflows)
	if n == 0 {
		return nil, fmt.Errorf("lpmodel: empty instance")
	}
	m := ins.Ports
	T := ins.Horizon()
	if T < 1 {
		T = 1
	}
	if T > MaxTimeIndexedHorizon {
		return nil, fmt.Errorf("lpmodel: LP-EXP horizon %d exceeds limit %d; use SolveIntervalLP",
			T, MaxTimeIndexedHorizon)
	}

	rowLoad := make([][]int64, n)
	colLoad := make([][]int64, n)
	tMin := make([]int64, n)
	numVars := 0
	for k := range ins.Coflows {
		c := &ins.Coflows[k]
		rowLoad[k] = c.RowLoads(m)
		colLoad[k] = c.ColLoads(m)
		tMin[k] = c.Release + c.Load(m)
		if tMin[k] < 1 {
			tMin[k] = 1
		}
		numVars += int(T - tMin[k] + 1)
	}
	if numVars > MaxTimeIndexedVars {
		return nil, fmt.Errorf("lpmodel: LP-EXP would need %d variables (limit %d); use SolveIntervalLP",
			numVars, MaxTimeIndexedVars)
	}

	// Variable numbering: z_t^(k) for t = tMin[k]..T.
	varIdx := make([][]int, n)
	idx := 0
	for k := 0; k < n; k++ {
		varIdx[k] = make([]int, T+1)
		for t := int64(0); t <= T; t++ {
			varIdx[k][t] = -1
		}
		for t := tMin[k]; t <= T; t++ {
			varIdx[k][t] = idx
			idx++
		}
	}

	prob := lp.NewProblem(numVars)
	for k := 0; k < n; k++ {
		w := ins.Coflows[k].Weight
		for t := tMin[k]; t <= T; t++ {
			prob.SetObjective(varIdx[k][t], w*float64(t))
		}
	}
	for k := 0; k < n; k++ {
		var entries []lp.Entry
		for t := tMin[k]; t <= T; t++ {
			entries = append(entries, lp.Entry{Var: varIdx[k][t], Coef: 1})
		}
		prob.AddConstraint(entries, lp.EQ, 1)
	}
	addLoadRows := func(load [][]int64) {
		for port := 0; port < m; port++ {
			var total int64
			for k := 0; k < n; k++ {
				total += load[k][port]
			}
			if total == 0 {
				continue
			}
			for t := int64(1); t <= T; t++ {
				if total <= t {
					break
				}
				var entries []lp.Entry
				for k := 0; k < n; k++ {
					if load[k][port] == 0 {
						continue
					}
					for s := tMin[k]; s <= t; s++ {
						entries = append(entries, lp.Entry{Var: varIdx[k][s], Coef: float64(load[k][port])})
					}
				}
				if len(entries) > 0 {
					prob.AddConstraint(entries, lp.LE, float64(t))
				}
			}
		}
	}
	addLoadRows(rowLoad)
	addLoadRows(colLoad)

	sol, err := lp.SolveWith(prob, method)
	if err != nil {
		return nil, err
	}
	if sol.Status != lp.Optimal {
		return nil, fmt.Errorf("lpmodel: LP-EXP not optimal: %v", sol.Status)
	}
	if err := lp.CheckFeasible(prob, sol.X, 1e-5); err != nil {
		return nil, fmt.Errorf("lpmodel: LP-EXP solution failed verification: %w", err)
	}
	out := &TimeIndexedSolution{
		CBar:       make([]float64, n),
		LowerBound: sol.Objective,
		Iterations: sol.Iterations,
		Vars:       numVars,
		Rows:       prob.NumConstraints(),
	}
	for k := 0; k < n; k++ {
		for t := tMin[k]; t <= T; t++ {
			out.CBar[k] += float64(t) * sol.X[varIdx[k][t]]
		}
	}
	return out, nil
}

// TrivialLowerBound returns Σ_k w_k·(r_k + ρ_k): every coflow needs at
// least its own load after release, regardless of contention. Weaker
// than the LP bounds but free; useful as a sanity floor.
func TrivialLowerBound(ins *coflowmodel.Instance) float64 {
	var lb float64
	for k := range ins.Coflows {
		c := &ins.Coflows[k]
		lb += c.Weight * float64(c.Release+c.Load(ins.Ports))
	}
	return lb
}
