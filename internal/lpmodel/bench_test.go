package lpmodel

// LP solve-time benchmarks across fabric sizes, one pair per method.
// These feed the `make bench` regression gate (substring LPSolve) and
// the before/after table in EXPERIMENTS.md. The m=100 pair is the
// instance the sparse-pipeline speedup claim is measured on; dense at
// that size runs seconds per solve, which is exactly the pain the
// sparse path removes — keep it in the gate so the ratio stays honest.

import (
	"testing"

	"coflow/internal/coflowmodel"
	"coflow/internal/lp"
	"coflow/internal/trace"
)

// benchInstance pins the trace the LPSolve benches share at each size:
// 2 coflows per port, seed 9, default size mix.
func benchInstance(b *testing.B, ports int) *coflowmodel.Instance {
	b.Helper()
	cfg := trace.DefaultConfig()
	cfg.Ports = ports
	cfg.NumCoflows = 2 * ports
	cfg.Seed = 9
	ins, err := trace.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return ins
}

func benchLPSolve(b *testing.B, ports int, method lp.Method) {
	ins := benchInstance(b, ports)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveIntervalLPWith(ins, method); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLPSolveDense10(b *testing.B)   { benchLPSolve(b, 10, lp.MethodDense) }
func BenchmarkLPSolveSparse10(b *testing.B)  { benchLPSolve(b, 10, lp.MethodSparse) }
func BenchmarkLPSolveDense50(b *testing.B)   { benchLPSolve(b, 50, lp.MethodDense) }
func BenchmarkLPSolveSparse50(b *testing.B)  { benchLPSolve(b, 50, lp.MethodSparse) }
func BenchmarkLPSolveDense100(b *testing.B)  { benchLPSolve(b, 100, lp.MethodDense) }
func BenchmarkLPSolveSparse100(b *testing.B) { benchLPSolve(b, 100, lp.MethodSparse) }
