package lpmodel

// The real-instance half of the sparse-vs-dense differential sweep
// (the random-LP half lives in internal/lp): generated coflow
// instances across fabric sizes, coflow counts, and release-date
// regimes, solved through both SolveIntervalLPWith methods. The LP
// objective (the paper's lower bound) must agree to tolerance; both
// paths must verify feasible. Orderings may legitimately differ under
// degenerate alternate optima, so the golden tests — not this sweep —
// pin them.

import (
	"math"
	"testing"

	"coflow/internal/coflowmodel"
	"coflow/internal/lp"
	"coflow/internal/trace"
)

func sweepConfigs(short bool) []trace.Config {
	ms := []int{2, 4, 6, 10, 16}
	ns := []int{1, 2, 4, 8, 12, 20}
	releases := []float64{0, 2.5, 10}
	seeds := []int64{1, 2}
	if short {
		ms = []int{4, 10}
		ns = []int{2, 8}
		seeds = []int64{1}
	}
	var cfgs []trace.Config
	for _, m := range ms {
		for _, n := range ns {
			for _, rel := range releases {
				for _, seed := range seeds {
					cfg := trace.DefaultConfig()
					cfg.Ports = m
					cfg.NumCoflows = n
					cfg.Seed = seed
					cfg.MeanInterarrival = rel
					cfg.MaxFlowSize = 100
					cfgs = append(cfgs, cfg)
				}
			}
		}
	}
	return cfgs
}

// TestIntervalLPSparseVsDenseSweep covers 180 real interval-LP
// instances (plus the time-indexed sweep below, completing the
// 1000-instance differential budget with internal/lp's random half).
func TestIntervalLPSparseVsDenseSweep(t *testing.T) {
	cfgs := sweepConfigs(testing.Short())
	for _, cfg := range cfgs {
		ins := trace.MustGenerate(cfg)
		dense, err := SolveIntervalLPWith(ins, lp.MethodDense)
		if err != nil {
			t.Fatalf("m=%d n=%d rel=%g seed=%d: dense: %v",
				cfg.Ports, cfg.NumCoflows, cfg.MeanInterarrival, cfg.Seed, err)
		}
		sparse, err := SolveIntervalLPWith(ins, lp.MethodSparse)
		if err != nil {
			t.Fatalf("m=%d n=%d rel=%g seed=%d: sparse: %v",
				cfg.Ports, cfg.NumCoflows, cfg.MeanInterarrival, cfg.Seed, err)
		}
		diff := math.Abs(dense.LowerBound - sparse.LowerBound)
		if diff > 1e-6*(1+math.Abs(dense.LowerBound)) {
			t.Fatalf("m=%d n=%d rel=%g seed=%d: lower bound diverged: dense=%.12g sparse=%.12g",
				cfg.Ports, cfg.NumCoflows, cfg.MeanInterarrival, cfg.Seed,
				dense.LowerBound, sparse.LowerBound)
		}
		if len(sparse.Order) != len(dense.Order) {
			t.Fatalf("m=%d n=%d: order lengths differ", cfg.Ports, cfg.NumCoflows)
		}
	}
}

// TestTimeIndexedLPSparseVsDenseSweep does the same for (LP-EXP) on
// instances small enough for its pseudo-polynomial size.
func TestTimeIndexedLPSparseVsDenseSweep(t *testing.T) {
	count := 20
	if testing.Short() {
		count = 5
	}
	for i := 0; i < count; i++ {
		cfg := trace.DefaultConfig()
		cfg.Ports = 2 + i%4
		cfg.NumCoflows = 1 + i%5
		cfg.Seed = int64(100 + i)
		cfg.MaxFlowSize = 20
		if i%2 == 1 {
			cfg.MeanInterarrival = 3
		}
		ins := trace.MustGenerate(cfg)
		dense, err := SolveTimeIndexedLPWith(ins, lp.MethodDense)
		if err != nil {
			t.Fatalf("instance %d: dense: %v", i, err)
		}
		sparse, err := SolveTimeIndexedLPWith(ins, lp.MethodSparse)
		if err != nil {
			t.Fatalf("instance %d: sparse: %v", i, err)
		}
		diff := math.Abs(dense.LowerBound - sparse.LowerBound)
		if diff > 1e-6*(1+math.Abs(dense.LowerBound)) {
			t.Fatalf("instance %d: LP-EXP bound diverged: dense=%.12g sparse=%.12g",
				i, dense.LowerBound, sparse.LowerBound)
		}
	}
}

// TestDefaultMethodPlumbing proves SetDefaultMethod actually routes
// SolveIntervalLP, using the paper's worked single-coflow shape.
func TestDefaultMethodPlumbing(t *testing.T) {
	ins := &coflowmodel.Instance{
		Ports: 2,
		Coflows: []coflowmodel.Coflow{{
			ID: 1, Weight: 1,
			Flows: []coflowmodel.Flow{
				{Src: 0, Dst: 1, Size: 1}, {Src: 1, Dst: 0, Size: 2},
				{Src: 0, Dst: 0, Size: 2}, {Src: 1, Dst: 1, Size: 1},
			},
		}},
	}
	base, err := SolveIntervalLP(ins)
	if err != nil {
		t.Fatalf("dense default: %v", err)
	}
	SetDefaultMethod(lp.MethodSparse)
	defer SetDefaultMethod(lp.MethodDense)
	if got := DefaultMethod(); got != lp.MethodSparse {
		t.Fatalf("DefaultMethod = %v after SetDefaultMethod(sparse)", got)
	}
	viaDefault, err := SolveIntervalLP(ins)
	if err != nil {
		t.Fatalf("sparse default: %v", err)
	}
	if math.Abs(base.LowerBound-viaDefault.LowerBound) > 1e-9 {
		t.Fatalf("lower bound moved with method: %g vs %g", base.LowerBound, viaDefault.LowerBound)
	}
}
