// Arrival sweep: the paper's theory distinguishes itself by handling
// release dates (Theorem 1/2 versus Corollary 1/2), but its
// experiments set r_k = 0. This sweep fills that gap: it varies the
// mean coflow interarrival time from batch (0) to sparse and compares
// the release-aware algorithms, verifying the Proposition 1 guarantee
// on every run.
package experiments

import (
	"fmt"
	"strings"
	"sync"

	"coflow/internal/core"
	"coflow/internal/online"
	"coflow/internal/trace"
)

// ArrivalPoint is one sweep point.
type ArrivalPoint struct {
	MeanInterarrival float64
	MaxRelease       int64
	Totals           map[string]float64
	// Prop1Satisfied reports whether every Algorithm 2 completion met
	// the Eq. 19 bound (it must).
	Prop1Satisfied bool
}

// ArrivalAlgorithms are the series evaluated by RunArrivalSweep.
var ArrivalAlgorithms = []string{"Algorithm2", "HLP(d)", "online-SEBF", "online-FIFO"}

// ArrivalReport is the full sweep.
type ArrivalReport struct {
	Coflows int
	Points  []ArrivalPoint
}

// RunArrivalSweep evaluates the algorithms at each mean interarrival
// gap (0 = the paper's batch setting). Points run concurrently.
func RunArrivalSweep(tr trace.Config, gaps []float64, weightSeed int64) (*ArrivalReport, error) {
	if len(gaps) == 0 {
		return nil, fmt.Errorf("experiments: no arrival gaps")
	}
	rep := &ArrivalReport{Points: make([]ArrivalPoint, len(gaps))}
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for i, gap := range gaps {
		wg.Add(1)
		go func(i int, gap float64) {
			defer wg.Done()
			pt, n, err := arrivalPoint(tr, gap, weightSeed)
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf("experiments: arrival sweep gap=%g: %w", gap, err)
				}
				mu.Unlock()
				return
			}
			rep.Points[i] = *pt
			mu.Lock()
			rep.Coflows = n
			mu.Unlock()
		}(i, gap)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return rep, nil
}

func arrivalPoint(tr trace.Config, gap float64, weightSeed int64) (*ArrivalPoint, int, error) {
	cfg := tr
	cfg.MeanInterarrival = gap
	ins, err := trace.Generate(cfg)
	if err != nil {
		return nil, 0, err
	}
	applyWeighting(ins, RandomWeights, weightSeed)
	pt := &ArrivalPoint{
		MeanInterarrival: gap,
		MaxRelease:       ins.MaxRelease(),
		Totals:           map[string]float64{},
	}

	alg2, err := core.Algorithm2(ins)
	if err != nil {
		return nil, 0, err
	}
	pt.Totals["Algorithm2"] = alg2.TotalWeighted
	pt.Prop1Satisfied = true
	bound := core.Proposition1Bound(ins, alg2.Order, alg2.Stages, alg2.V)
	for pos, k := range alg2.Order {
		if alg2.Completion[k] > bound[pos] {
			pt.Prop1Satisfied = false
		}
	}

	hlpd, err := core.ExecuteOrdered(ins, alg2.Order, core.Options{Grouping: true, Backfill: true})
	if err != nil {
		return nil, 0, err
	}
	pt.Totals["HLP(d)"] = hlpd.TotalWeighted

	for name, policy := range map[string]online.Policy{
		"online-SEBF": online.SEBF,
		"online-FIFO": online.FIFO,
	} {
		res, err := online.Simulate(ins, policy)
		if err != nil {
			return nil, 0, err
		}
		pt.Totals[name] = res.TotalWeighted
	}
	return pt, len(ins.Coflows), nil
}

// Format renders the sweep, normalizing each row by its online-SEBF
// total so rows with different horizons stay comparable.
func (r *ArrivalReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Arrival sweep — %d coflows; totals normalized per-row to online-SEBF\n", r.Coflows)
	fmt.Fprintf(&b, "%12s %12s", "mean gap", "max release")
	for _, name := range ArrivalAlgorithms {
		fmt.Fprintf(&b, " %12s", name)
	}
	fmt.Fprintf(&b, " %8s\n", "Prop.1")
	for _, pt := range r.Points {
		base := pt.Totals["online-SEBF"]
		fmt.Fprintf(&b, "%12g %12d", pt.MeanInterarrival, pt.MaxRelease)
		for _, name := range ArrivalAlgorithms {
			fmt.Fprintf(&b, " %12.3f", pt.Totals[name]/base)
		}
		ok := "OK"
		if !pt.Prop1Satisfied {
			ok = "VIOLATED"
		}
		fmt.Fprintf(&b, " %8s\n", ok)
	}
	b.WriteString("(gap 0 is the paper's batch setting; Prop.1 is the Eq. 19 guarantee check)\n")
	return b.String()
}
