package experiments

import (
	"strings"
	"testing"
)

func TestRunExtensions(t *testing.T) {
	rep, err := RunExtensions(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 10 {
		t.Fatalf("got %d rows, want 10", len(rep.Rows))
	}
	if rep.Rows[0].Normalized != 1.0 {
		t.Fatalf("baseline row not 1.0: %+v", rep.Rows[0])
	}
	for _, row := range rep.Rows {
		if row.Total <= 0 || row.Normalized <= 0 || row.Makespan <= 0 {
			t.Fatalf("degenerate row %+v", row)
		}
		// Lower bound below every schedule.
		if rep.LPLowerBound > row.Total+1e-6 {
			t.Fatalf("LP bound %g above %s total %g", rep.LPLowerBound, row.Name, row.Total)
		}
	}
	// Recompute never hurts relative to the literal baseline.
	var recompute, baseline float64
	for _, row := range rep.Rows {
		if strings.Contains(row.Name, "recompute") {
			recompute = row.Total
		}
		if strings.Contains(row.Name, "baseline") {
			baseline = row.Total
		}
	}
	if recompute == 0 || baseline == 0 {
		t.Fatal("expected rows missing")
	}
	if recompute > baseline+1e-9 {
		t.Fatalf("recompute hurt: %g > %g", recompute, baseline)
	}
}

func TestExtensionsFormat(t *testing.T) {
	rep, err := RunExtensions(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	out := rep.Format()
	for _, want := range []string{"Extensions", "Randomized", "fluid", "Online greedy", "lower bound"} {
		if !strings.Contains(out, want) {
			t.Fatalf("format missing %q:\n%s", want, out)
		}
	}
}

func TestRunExtensionsBadConfig(t *testing.T) {
	cfg := tinyConfig()
	cfg.Filters = nil
	if _, err := RunExtensions(cfg); err == nil {
		t.Fatal("empty filters accepted")
	}
	cfg = tinyConfig()
	cfg.Filters = []int{99999}
	if _, err := RunExtensions(cfg); err == nil {
		t.Fatal("impossible filter accepted")
	}
}

func TestRunScaling(t *testing.T) {
	tr := tinyConfig().Trace
	rep, err := RunScaling(tr, []int{5, 10, 20}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 3 {
		t.Fatalf("got %d points, want 3", len(rep.Points))
	}
	for i, pt := range rep.Points {
		if pt.Coflows != []int{5, 10, 20}[i] {
			t.Fatalf("point %d has %d coflows", i, pt.Coflows)
		}
		if pt.LowerBound <= 0 {
			t.Fatalf("point %d missing LP bound", i)
		}
		for _, name := range ScalingAlgorithms {
			ratio := pt.Ratio(name)
			if ratio < 1-1e-6 {
				t.Fatalf("point %d: %s beats the LP lower bound (ratio %g)", i, name, ratio)
			}
			if ratio > 100 {
				t.Fatalf("point %d: %s ratio %g implausible", i, name, ratio)
			}
		}
	}
	out := rep.Format()
	if !strings.Contains(out, "Scaling sweep") || !strings.Contains(out, "HLP(d)") {
		t.Fatalf("scaling format broken:\n%s", out)
	}
}

func TestRunScalingEmptySizes(t *testing.T) {
	if _, err := RunScaling(tinyConfig().Trace, nil, 1); err == nil {
		t.Fatal("empty sizes accepted")
	}
}

func TestRunArrivalSweep(t *testing.T) {
	tr := tinyConfig().Trace
	tr.NumCoflows = 15
	rep, err := RunArrivalSweep(tr, []float64{0, 5, 50}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 3 {
		t.Fatalf("got %d points, want 3", len(rep.Points))
	}
	if rep.Points[0].MaxRelease != 0 {
		t.Fatalf("gap 0 must release everything at 0, got max release %d", rep.Points[0].MaxRelease)
	}
	if rep.Points[2].MaxRelease == 0 {
		t.Fatal("gap 50 should spread arrivals")
	}
	for i, pt := range rep.Points {
		if !pt.Prop1Satisfied {
			t.Fatalf("point %d violates Proposition 1", i)
		}
		for _, name := range ArrivalAlgorithms {
			if pt.Totals[name] <= 0 {
				t.Fatalf("point %d: missing total for %s", i, name)
			}
		}
	}
	out := rep.Format()
	if !strings.Contains(out, "Arrival sweep") || !strings.Contains(out, "OK") {
		t.Fatalf("format broken:\n%s", out)
	}
}

func TestRunArrivalSweepEmpty(t *testing.T) {
	if _, err := RunArrivalSweep(tinyConfig().Trace, nil, 1); err == nil {
		t.Fatal("empty gaps accepted")
	}
}
