// Extension experiments beyond the paper's Table 1 / Figure 2: the
// randomized algorithm of Theorem 2 (which the paper leaves
// unevaluated, "We should also compare the performance of the
// randomized algorithm"), the work-conserving Recompute variant, the
// primal-dual ordering suggested by the paper's conclusion, a
// Varys-style fluid scheduler, and online per-slot greedy policies.
package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"coflow/internal/coflowmodel"
	"coflow/internal/core"
	"coflow/internal/online"
	"coflow/internal/primaldual"
	"coflow/internal/trace"
	"coflow/internal/varys"
)

// ExtensionRow is one algorithm's outcome in the extension comparison.
type ExtensionRow struct {
	Name       string
	Total      float64
	Normalized float64 // vs HLP(d)
	Makespan   float64
}

// ExtensionReport compares the paper's algorithms with the extensions
// on one instance.
type ExtensionReport struct {
	Filter       int
	Coflows      int
	Rows         []ExtensionRow
	LPLowerBound float64
	// RandomizedDraws is the number of seeds averaged for the
	// randomized algorithm's row.
	RandomizedDraws int
}

// RunExtensions evaluates the extension algorithms on the first
// configured filter with random-permutation weights.
func RunExtensions(cfg Config) (*ExtensionReport, error) {
	if len(cfg.Filters) == 0 {
		return nil, fmt.Errorf("experiments: no filters configured")
	}
	base, err := trace.Generate(cfg.Trace)
	if err != nil {
		return nil, err
	}
	ins := base.FilterMinFlows(cfg.Filters[0])
	if len(ins.Coflows) == 0 {
		return nil, fmt.Errorf("experiments: filter M0 >= %d leaves no coflows", cfg.Filters[0])
	}
	applyWeighting(ins, RandomWeights, cfg.WeightSeed)
	return runExtensionsOn(ins, cfg.Filters[0])
}

func runExtensionsOn(ins *coflowmodel.Instance, filter int) (*ExtensionReport, error) {
	rep := &ExtensionReport{Filter: filter, Coflows: len(ins.Coflows), RandomizedDraws: 10}

	baselineRes, err := core.Schedule(ins, core.Options{
		Ordering: core.OrderLP, Grouping: true, Backfill: true,
	})
	if err != nil {
		return nil, err
	}
	baseline := baselineRes.TotalWeighted
	rep.LPLowerBound = baselineRes.LP.LowerBound
	add := func(name string, total, makespan float64) {
		rep.Rows = append(rep.Rows, ExtensionRow{
			Name: name, Total: total, Normalized: total / baseline, Makespan: makespan,
		})
	}
	add("HLP(d) [paper baseline]", baseline, float64(baselineRes.Makespan))

	alg2, err := core.Algorithm2(ins)
	if err != nil {
		return nil, err
	}
	add("Algorithm 2 (HLP(c), no backfill)", alg2.TotalWeighted, float64(alg2.Makespan))

	rc, err := core.Schedule(ins, core.Options{
		Ordering: core.OrderLP, Grouping: true, Backfill: true, Recompute: true,
	})
	if err != nil {
		return nil, err
	}
	add("HLP(d) + recompute [extension]", rc.TotalWeighted, float64(rc.Makespan))

	var randTotal, randMakespan float64
	for d := 0; d < rep.RandomizedDraws; d++ {
		r, err := core.Randomized(ins, rand.New(rand.NewSource(int64(d+1))))
		if err != nil {
			return nil, err
		}
		randTotal += r.TotalWeighted
		randMakespan += float64(r.Makespan)
	}
	add(fmt.Sprintf("Randomized (Thm 2, mean of %d)", rep.RandomizedDraws),
		randTotal/float64(rep.RandomizedDraws), randMakespan/float64(rep.RandomizedDraws))

	pdRes, err := core.ExecuteOrdered(ins, primaldual.Order(ins), core.Options{
		Grouping: true, Backfill: true,
	})
	if err != nil {
		return nil, err
	}
	add("Primal-dual order (d) [extension]", pdRes.TotalWeighted, float64(pdRes.Makespan))

	// α-point variant of the LP ordering (Skutella-style): order by
	// where the bulk of each coflow's LP mass completes.
	alphaOrder, err := baselineRes.LP.OrderByAlphaPoints(ins, 0.5)
	if err != nil {
		return nil, err
	}
	alphaRes, err := core.ExecuteOrdered(ins, alphaOrder, core.Options{Grouping: true, Backfill: true})
	if err != nil {
		return nil, err
	}
	add("LP α-points (α=0.5, d) [extension]", alphaRes.TotalWeighted, float64(alphaRes.Makespan))

	fl, err := varys.Simulate(ins)
	if err != nil {
		return nil, err
	}
	add("Varys-style fluid SEBF+MADD", fl.TotalWeighted, fl.Makespan)

	for _, p := range []online.Policy{online.SEBF, online.WSPT, online.FIFO} {
		or, err := online.Simulate(ins, p)
		if err != nil {
			return nil, err
		}
		add(fmt.Sprintf("Online greedy %v", p), or.TotalWeighted, float64(or.Makespan))
	}
	return rep, nil
}

// Format renders the extension comparison.
func (r *ExtensionReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extensions — %d coflows (M0 >= %d), random weights, normalized to HLP(d)\n",
		r.Coflows, r.Filter)
	fmt.Fprintf(&b, "%-36s %14s %10s %10s\n", "algorithm", "Σ w·C", "norm", "makespan")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-36s %14.0f %10.3f %10.0f\n", row.Name, row.Total, row.Normalized, row.Makespan)
	}
	fmt.Fprintf(&b, "%-36s %14.0f %10.3f\n", "interval LP lower bound (Lemma 1)",
		r.LPLowerBound, r.LPLowerBound/r.Rows[0].Total)
	return b.String()
}
