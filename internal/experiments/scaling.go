// Scaling sweep: how the algorithms' distance to the LP lower bound
// evolves with instance size. Not a figure in the paper, but the
// natural companion to its §4 discussion — the paper's near-optimality
// claim is made at one scale; this sweep shows the trend.
package experiments

import (
	"fmt"
	"strings"
	"sync"

	"coflow/internal/core"
	"coflow/internal/lpmodel"
	"coflow/internal/online"
	"coflow/internal/trace"
	"coflow/internal/varys"
)

// ScalingAlgorithms are the series evaluated by RunScaling.
var ScalingAlgorithms = []string{"HLP(d)", "Hrho(d)", "online-SEBF", "fluid"}

// ScalingPoint is one sweep point: totals per algorithm, the LP lower
// bound, and the resulting bound ratios.
type ScalingPoint struct {
	Coflows    int
	Ports      int
	Totals     map[string]float64
	LowerBound float64
}

// Ratio returns Totals[name]/LowerBound.
func (p *ScalingPoint) Ratio(name string) float64 {
	return p.Totals[name] / p.LowerBound
}

// ScalingReport is the full sweep.
type ScalingReport struct {
	Points []ScalingPoint
}

// RunScaling evaluates the series at each coflow count in sizes,
// holding the fabric and distribution fixed. Points run concurrently.
func RunScaling(tr trace.Config, sizes []int, weightSeed int64) (*ScalingReport, error) {
	if len(sizes) == 0 {
		return nil, fmt.Errorf("experiments: no sweep sizes")
	}
	rep := &ScalingReport{Points: make([]ScalingPoint, len(sizes))}
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for i, n := range sizes {
		wg.Add(1)
		go func(i, n int) {
			defer wg.Done()
			pt, err := scalingPoint(tr, n, weightSeed)
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf("experiments: sweep point n=%d: %w", n, err)
				}
				mu.Unlock()
				return
			}
			rep.Points[i] = *pt
		}(i, n)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return rep, nil
}

func scalingPoint(tr trace.Config, n int, weightSeed int64) (*ScalingPoint, error) {
	cfg := tr
	cfg.NumCoflows = n
	ins, err := trace.Generate(cfg)
	if err != nil {
		return nil, err
	}
	applyWeighting(ins, RandomWeights, weightSeed)

	sol, err := lpmodel.SolveIntervalLP(ins)
	if err != nil {
		return nil, err
	}
	pt := &ScalingPoint{
		Coflows:    len(ins.Coflows),
		Ports:      ins.Ports,
		Totals:     map[string]float64{},
		LowerBound: sol.LowerBound,
	}

	hlp, err := core.ExecuteOrdered(ins, sol.Order, core.Options{Grouping: true, Backfill: true})
	if err != nil {
		return nil, err
	}
	pt.Totals["HLP(d)"] = hlp.TotalWeighted

	hrho, err := core.ExecuteOrdered(ins, core.LoadWeightOrder(ins), core.Options{Grouping: true, Backfill: true})
	if err != nil {
		return nil, err
	}
	pt.Totals["Hrho(d)"] = hrho.TotalWeighted

	ol, err := online.Simulate(ins, online.SEBF)
	if err != nil {
		return nil, err
	}
	pt.Totals["online-SEBF"] = ol.TotalWeighted

	fl, err := varys.Simulate(ins)
	if err != nil {
		return nil, err
	}
	pt.Totals["fluid"] = fl.TotalWeighted
	return pt, nil
}

// Format renders the sweep as ratios to the LP lower bound.
func (r *ScalingReport) Format() string {
	var b strings.Builder
	b.WriteString("Scaling sweep — total weighted completion time / interval-LP lower bound\n")
	fmt.Fprintf(&b, "%8s %8s", "coflows", "ports")
	for _, name := range ScalingAlgorithms {
		fmt.Fprintf(&b, " %12s", name)
	}
	b.WriteByte('\n')
	for _, pt := range r.Points {
		fmt.Fprintf(&b, "%8d %8d", pt.Coflows, pt.Ports)
		for _, name := range ScalingAlgorithms {
			fmt.Fprintf(&b, " %12.3f", pt.Ratio(name))
		}
		b.WriteByte('\n')
	}
	b.WriteString("(lower is better; 1.000 would meet the LP bound, which itself sits below OPT)\n")
	return b.String()
}
