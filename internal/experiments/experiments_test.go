package experiments

import (
	"strings"
	"testing"

	"coflow/internal/core"
	"coflow/internal/trace"
)

// tinyConfig keeps unit tests fast: a 16-port fabric with small flows.
func tinyConfig() Config {
	tr := trace.DefaultConfig()
	tr.Ports = 16
	tr.NumCoflows = 40
	tr.MaxFlowSize = 30
	tr.Seed = 3
	return Config{Trace: tr, Filters: []int{12, 6}, WeightSeed: 11}
}

func TestCaseOptions(t *testing.T) {
	for _, c := range Cases {
		g, b, err := CaseOptions(c)
		if err != nil {
			t.Fatal(err)
		}
		wantG := c == "c" || c == "d"
		wantB := c == "b" || c == "d"
		if g != wantG || b != wantB {
			t.Fatalf("case %s: got (%v,%v), want (%v,%v)", c, g, b, wantG, wantB)
		}
	}
	if _, _, err := CaseOptions("z"); err == nil {
		t.Fatal("unknown case accepted")
	}
}

func TestRunProducesFullGrids(t *testing.T) {
	rep, err := Run(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Grids) != 4 { // 2 filters × 2 weightings
		t.Fatalf("got %d grids, want 4", len(rep.Grids))
	}
	for _, g := range rep.Grids {
		if len(g.Cells) != 12 {
			t.Fatalf("grid %d/%v has %d cells", g.Filter, g.Weighting, len(g.Cells))
		}
		base := g.Cell(core.OrderLP, "d")
		if base == nil || base.Normalized != 1.0 {
			t.Fatalf("baseline not normalized to 1: %+v", base)
		}
		if g.LPLowerBound <= 0 {
			t.Fatalf("missing LP lower bound in grid %+v", g)
		}
		if g.LPLowerBound > base.Total {
			t.Fatalf("LP bound %g above schedule %g", g.LPLowerBound, base.Total)
		}
		for _, cell := range g.Cells {
			if cell.Total <= 0 || cell.Normalized <= 0 {
				t.Fatalf("degenerate cell %+v", cell)
			}
		}
	}
}

// The paper's headline qualitative findings must reproduce: backfilling
// never hurts with fixed stages, case (d) beats the base case for the
// informed orderings, and the arrival order H_A is far worse than the
// load-aware orderings.
func TestQualitativeFindings(t *testing.T) {
	rep, err := Run(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range rep.Grids {
		for _, o := range Orderings {
			a := g.Cell(o, "a").Total
			b := g.Cell(o, "b").Total
			c := g.Cell(o, "c").Total
			d := g.Cell(o, "d").Total
			if b > a+1e-9 {
				t.Fatalf("%v/%v: backfilling hurt without grouping (%g > %g)", g.Filter, o, b, a)
			}
			if d > c+1e-9 {
				t.Fatalf("%v/%v: backfilling hurt with grouping (%g > %g)", g.Filter, o, d, c)
			}
		}
		for _, o := range []core.Ordering{core.OrderLoadWeight, core.OrderLP} {
			if d, a := g.Cell(o, "d").Total, g.Cell(o, "a").Total; d > a+1e-9 {
				t.Fatalf("%v/%v: case (d) worse than base (%g > %g)", g.Filter, o, d, a)
			}
		}
		// H_A is substantially worse than the load-aware orderings in
		// the base case, where ordering dominates. (In case (d) the
		// grouping washes much of the difference out at small scale.)
		ha := g.Cell(core.OrderArrival, "a").Normalized
		hr := g.Cell(core.OrderLoadWeight, "a").Normalized
		if ha < hr {
			t.Fatalf("filter %d %v: HA (%g) beat Hrho (%g) in the base case",
				g.Filter, g.Weighting, ha, hr)
		}
	}
}

func TestFig2a(t *testing.T) {
	rep, err := Run(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	rows, err := rep.Fig2a()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("fig2a rows = %d, want 3", len(rows))
	}
	for _, row := range rows {
		if row.Percent["a"] != 100 {
			t.Fatalf("base case not 100%%: %+v", row)
		}
		if row.Percent["b"] > 100+1e-9 {
			t.Fatalf("backfilling above 100%%: %+v", row)
		}
		if row.Percent["d"] > row.Percent["c"]+1e-9 {
			t.Fatalf("case (d) above case (c): %+v", row)
		}
	}
}

func TestFig2b(t *testing.T) {
	rep, err := Run(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	cells, err := rep.Fig2b()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 6 {
		t.Fatalf("fig2b cells = %d, want 6", len(cells))
	}
}

func TestFormatting(t *testing.T) {
	rep, err := Run(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	t1 := rep.FormatTable1()
	if !strings.Contains(t1, "Table 1") || !strings.Contains(t1, "HLP") {
		t.Fatalf("Table1 format missing headers:\n%s", t1)
	}
	f2a, err := rep.FormatFig2a()
	if err != nil || !strings.Contains(f2a, "Figure 2a") {
		t.Fatalf("Fig2a format broken: %v\n%s", err, f2a)
	}
	f2b, err := rep.FormatFig2b()
	if err != nil || !strings.Contains(f2b, "Figure 2b") {
		t.Fatalf("Fig2b format broken: %v\n%s", err, f2b)
	}
}

func TestPaperReferenceTableComplete(t *testing.T) {
	for _, filter := range []int{50, 40, 30} {
		for _, w := range []Weighting{EqualWeights, RandomWeights} {
			for _, c := range Cases {
				for _, o := range []string{"HA", "Hrho", "HLP"} {
					v := PaperTable1[filter][w][c][o]
					if v <= 0 {
						t.Fatalf("missing paper value for %d/%v/%s/%s", filter, w, c, o)
					}
				}
			}
		}
	}
	// Spot-check against the paper's Appendix D values.
	if PaperTable1[50][EqualWeights]["a"]["HA"] != 9.19 {
		t.Fatal("Table 1 transcription error at (50, equal, a, HA)")
	}
	if PaperTable1[30][RandomWeights]["d"]["Hrho"] != 0.93 {
		t.Fatal("Table 1 transcription error at (30, random, d, Hrho)")
	}
}

func TestRunLowerBoundTiny(t *testing.T) {
	tr := trace.DefaultConfig()
	tr.Ports = 6
	tr.NumCoflows = 5
	tr.MaxFlowSize = 6
	tr.Seed = 9
	res, err := RunLowerBound(tr, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.TimeIndexedErr != "" {
		t.Fatalf("LP-EXP should fit at this scale: %s", res.TimeIndexedErr)
	}
	if res.IntervalLB > res.TimeIndexedLB+1e-6 {
		t.Fatalf("interval LB %g above LP-EXP %g", res.IntervalLB, res.TimeIndexedLB)
	}
	if res.TimeIndexedLB > res.ScheduleTotal+1e-6 {
		t.Fatalf("LP-EXP bound %g above schedule %g", res.TimeIndexedLB, res.ScheduleTotal)
	}
	if res.TimeIndexedRatio <= 0 || res.TimeIndexedRatio > 1 {
		t.Fatalf("ratio %g out of (0,1]", res.TimeIndexedRatio)
	}
	if !strings.Contains(res.Format(), "LP-EXP") {
		t.Fatal("Format missing LP-EXP line")
	}
}

func TestRunRejectsEmptyFilters(t *testing.T) {
	cfg := tinyConfig()
	cfg.Filters = nil
	if _, err := Run(cfg); err == nil {
		t.Fatal("empty filters accepted")
	}
	cfg = tinyConfig()
	cfg.Filters = []int{10_000}
	if _, err := Run(cfg); err == nil {
		t.Fatal("impossible filter accepted")
	}
}

// Results must be identical regardless of the parallelism setting.
func TestParallelismDeterminism(t *testing.T) {
	cfg1 := tinyConfig()
	cfg1.Parallelism = 1
	cfg8 := tinyConfig()
	cfg8.Parallelism = 8
	a, err := Run(cfg1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg8)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Grids) != len(b.Grids) {
		t.Fatal("grid counts differ")
	}
	for i := range a.Grids {
		ga, gb := a.Grids[i], b.Grids[i]
		if ga.Filter != gb.Filter || ga.Weighting != gb.Weighting {
			t.Fatalf("grid order differs at %d", i)
		}
		for j := range ga.Cells {
			if ga.Cells[j] != gb.Cells[j] {
				t.Fatalf("cell %d/%d differs: %+v vs %+v", i, j, ga.Cells[j], gb.Cells[j])
			}
		}
	}
}
