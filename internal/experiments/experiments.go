// Package experiments regenerates every table and figure of the
// paper's evaluation (§4 and Appendix D) on the synthetic trace:
//
//   - Table 1: normalized total weighted completion times for the 12
//     algorithm combinations (3 orderings × 4 scheduling cases) under
//     three M0 filters and two weightings;
//   - Figure 2a: grouping/backfilling improvements relative to the
//     base case, per ordering (filter M0 ≥ 50, random weights);
//   - Figure 2b: ordering comparison with grouping and backfilling
//     (case (d)) for both weightings;
//   - the §4.2 lower-bound ratio: LP-EXP lower bound over the H_LP(d)
//     total (0.9447 in the paper).
//
// Normalization follows the paper exactly: every value is divided by
// the H_LP case-(d) total of the same filter and weighting.
package experiments

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"sync"

	"coflow/internal/coflowmodel"
	"coflow/internal/core"
	"coflow/internal/lpmodel"
	"coflow/internal/trace"
)

// Weighting selects the coflow weight assignment of §4.1.
type Weighting int

const (
	// EqualWeights gives every coflow weight 1.
	EqualWeights Weighting = iota
	// RandomWeights assigns a random permutation of {1..n}.
	RandomWeights
)

func (w Weighting) String() string {
	if w == EqualWeights {
		return "equal"
	}
	return "random"
}

// Case names the four scheduling-stage variants of §4.1.
var Cases = []string{"a", "b", "c", "d"}

// CaseOptions maps a case letter to grouping/backfilling flags.
func CaseOptions(c string) (grouping, backfill bool, err error) {
	switch c {
	case "a":
		return false, false, nil
	case "b":
		return false, true, nil
	case "c":
		return true, false, nil
	case "d":
		return true, true, nil
	}
	return false, false, fmt.Errorf("experiments: unknown case %q", c)
}

// Orderings evaluated, in the paper's column order.
var Orderings = []core.Ordering{core.OrderArrival, core.OrderLoadWeight, core.OrderLP}

// Config parameterizes a full experiment run.
type Config struct {
	// Trace configures the synthetic workload.
	Trace trace.Config
	// Filters are the M0 thresholds (paper: 50, 40, 30).
	Filters []int
	// WeightSeed seeds the random-permutation weighting.
	WeightSeed int64
	// Recompute enables the work-conserving extension in the
	// scheduling stage (off = paper-literal).
	Recompute bool
	// Parallelism bounds the number of concurrently evaluated grids
	// and cells; 0 means GOMAXPROCS. Results are deterministic
	// regardless of the setting — workers fill pre-indexed slots.
	Parallelism int
}

func (c Config) workers() int {
	if c.Parallelism > 0 {
		return c.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// DefaultConfig runs at bench scale (50 ports); pass trace.DefaultConfig
// in Config.Trace for the paper-scale 150-port fabric.
func DefaultConfig() Config {
	return Config{
		Trace:      trace.BenchConfig(),
		Filters:    []int{50, 40, 30},
		WeightSeed: 7,
	}
}

// Cell is one algorithm's outcome on one instance.
type Cell struct {
	Ordering   core.Ordering
	Case       string
	Total      float64
	Normalized float64 // Total / (H_LP case-d Total)
}

// Grid is the 12-cell block for one (filter, weighting) pair.
type Grid struct {
	Filter    int
	Weighting Weighting
	Coflows   int
	Cells     []Cell
	// LPLowerBound is the interval LP bound for this instance.
	LPLowerBound float64
}

// Cell returns the cell for (ordering, case); nil if absent.
func (g *Grid) Cell(o core.Ordering, c string) *Cell {
	for i := range g.Cells {
		if g.Cells[i].Ordering == o && g.Cells[i].Case == c {
			return &g.Cells[i]
		}
	}
	return nil
}

// Report holds every grid of a run.
type Report struct {
	Config Config
	Grids  []Grid
}

// Grid returns the grid for (filter, weighting); nil if absent.
func (r *Report) Grid(filter int, w Weighting) *Grid {
	for i := range r.Grids {
		if r.Grids[i].Filter == filter && r.Grids[i].Weighting == w {
			return &r.Grids[i]
		}
	}
	return nil
}

// Run generates the workload and evaluates all 12 algorithm
// combinations for every (filter, weighting) pair.
func Run(cfg Config) (*Report, error) {
	if len(cfg.Filters) == 0 {
		return nil, fmt.Errorf("experiments: no filters configured")
	}
	base, err := trace.Generate(cfg.Trace)
	if err != nil {
		return nil, err
	}
	report := &Report{Config: cfg}
	type gridSpec struct {
		filter    int
		weighting Weighting
	}
	var specs []gridSpec
	for _, filter := range cfg.Filters {
		if len(base.FilterMinFlows(filter).Coflows) == 0 {
			return nil, fmt.Errorf("experiments: filter M0 >= %d leaves no coflows (trace too small)", filter)
		}
		for _, weighting := range []Weighting{EqualWeights, RandomWeights} {
			specs = append(specs, gridSpec{filter, weighting})
		}
	}

	// Grids are independent; evaluate them concurrently into
	// pre-indexed slots so the report order is deterministic. A single
	// semaphore bounds the heavy per-cell executions across all grids
	// (the grid goroutines themselves only solve one LP each).
	report.Grids = make([]Grid, len(specs))
	sem := make(chan struct{}, cfg.workers())
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for i, spec := range specs {
		wg.Add(1)
		go func(i int, spec gridSpec) {
			defer wg.Done()
			ins := base.FilterMinFlows(spec.filter)
			applyWeighting(ins, spec.weighting, cfg.WeightSeed)
			grid, err := runGrid(ins, spec.filter, spec.weighting, cfg.Recompute, sem)
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				return
			}
			report.Grids[i] = *grid
		}(i, spec)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return report, nil
}

func applyWeighting(ins *coflowmodel.Instance, w Weighting, seed int64) {
	switch w {
	case EqualWeights:
		ins.SetEqualWeights()
	case RandomWeights:
		ins.SetRandomPermutationWeights(rand.New(rand.NewSource(seed)))
	}
}

func runGrid(ins *coflowmodel.Instance, filter int, weighting Weighting, recompute bool, sem chan struct{}) (*Grid, error) {
	grid := &Grid{Filter: filter, Weighting: weighting, Coflows: len(ins.Coflows)}

	// Compute each ordering once; the LP solve is shared across cases.
	orders := make(map[core.Ordering][]int)
	for _, o := range Orderings {
		switch o {
		case core.OrderArrival, core.OrderLoadWeight:
			res, err := orderOnly(ins, o)
			if err != nil {
				return nil, err
			}
			orders[o] = res
		case core.OrderLP:
			sol, err := lpmodel.SolveIntervalLP(ins)
			if err != nil {
				return nil, err
			}
			orders[o] = sol.Order
			grid.LPLowerBound = sol.LowerBound
		}
	}

	// The 12 cells are independent executions over a shared read-only
	// instance; run them concurrently into pre-indexed slots. The
	// semaphore is shared with sibling grids.
	grid.Cells = make([]Cell, len(Orderings)*len(Cases))
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for oi, o := range Orderings {
		for ci, c := range Cases {
			wg.Add(1)
			go func(idx int, o core.Ordering, c string) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				grouping, backfill, err := CaseOptions(c)
				if err == nil {
					var res *core.Result
					res, err = core.ExecuteOrdered(ins, orders[o], core.Options{
						Grouping: grouping, Backfill: backfill, Recompute: recompute,
					})
					if err == nil {
						grid.Cells[idx] = Cell{Ordering: o, Case: c, Total: res.TotalWeighted}
						return
					}
				}
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}(oi*len(Cases)+ci, o, c)
		}
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	baseline := grid.Cell(core.OrderLP, "d").Total
	if baseline <= 0 {
		return nil, fmt.Errorf("experiments: degenerate baseline %g", baseline)
	}
	for i := range grid.Cells {
		grid.Cells[i].Normalized = grid.Cells[i].Total / baseline
	}
	return grid, nil
}

func orderOnly(ins *coflowmodel.Instance, o core.Ordering) ([]int, error) {
	switch o {
	case core.OrderArrival:
		order := make([]int, len(ins.Coflows))
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool {
			return ins.Coflows[order[a]].ID < ins.Coflows[order[b]].ID
		})
		return order, nil
	case core.OrderLoadWeight:
		return core.LoadWeightOrder(ins), nil
	}
	return nil, fmt.Errorf("experiments: ordering %v needs the LP", o)
}

// PaperTable1 holds the published normalized totals of Table 1,
// indexed [filter][weighting][case][ordering].
var PaperTable1 = map[int]map[Weighting]map[string]map[string]float64{
	50: {
		EqualWeights: {
			"a": {"HA": 9.19, "Hrho": 1.41, "HLP": 1.44},
			"b": {"HA": 8.95, "Hrho": 1.30, "HLP": 1.34},
			"c": {"HA": 7.99, "Hrho": 1.01, "HLP": 1.04},
			"d": {"HA": 7.79, "Hrho": 0.97, "HLP": 1.00},
		},
		RandomWeights: {
			"a": {"HA": 6.78, "Hrho": 1.31, "HLP": 1.33},
			"b": {"HA": 6.56, "Hrho": 1.22, "HLP": 1.23},
			"c": {"HA": 5.91, "Hrho": 0.96, "HLP": 1.04},
			"d": {"HA": 5.81, "Hrho": 0.92, "HLP": 1.00},
		},
	},
	40: {
		EqualWeights: {
			"a": {"HA": 10.14, "Hrho": 1.46, "HLP": 1.49},
			"b": {"HA": 9.86, "Hrho": 1.34, "HLP": 1.37},
			"c": {"HA": 8.80, "Hrho": 1.01, "HLP": 1.04},
			"d": {"HA": 8.61, "Hrho": 0.97, "HLP": 1.00},
		},
		RandomWeights: {
			"a": {"HA": 7.44, "Hrho": 1.36, "HLP": 1.40},
			"b": {"HA": 7.24, "Hrho": 1.27, "HLP": 1.27},
			"c": {"HA": 6.40, "Hrho": 0.96, "HLP": 1.04},
			"d": {"HA": 6.30, "Hrho": 0.93, "HLP": 1.00},
		},
	},
	30: {
		EqualWeights: {
			"a": {"HA": 10.25, "Hrho": 1.49, "HLP": 1.51},
			"b": {"HA": 9.98, "Hrho": 1.37, "HLP": 1.40},
			"c": {"HA": 8.86, "Hrho": 1.01, "HLP": 1.04},
			"d": {"HA": 8.68, "Hrho": 0.97, "HLP": 1.00},
		},
		RandomWeights: {
			"a": {"HA": 8.18, "Hrho": 1.40, "HLP": 1.44},
			"b": {"HA": 7.77, "Hrho": 1.30, "HLP": 1.30},
			"c": {"HA": 7.04, "Hrho": 0.97, "HLP": 1.04},
			"d": {"HA": 6.89, "Hrho": 0.93, "HLP": 1.00},
		},
	},
}

// PaperLowerBoundRatio is the §4.2 figure: LP-EXP bound / H_LP(d).
const PaperLowerBoundRatio = 0.9447

// FormatTable1 renders the measured grids next to the paper's Table 1.
func (r *Report) FormatTable1() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1 — normalized total weighted completion times (baseline: HLP case (d))\n")
	fmt.Fprintf(&b, "%-10s %-5s %-7s %9s %9s %9s   %9s %9s %9s\n",
		"filter", "case", "weights", "HA", "Hrho", "HLP", "HA*", "Hrho*", "HLP*")
	fmt.Fprintf(&b, "%s\n", strings.Repeat("-", 92))
	for _, g := range r.Grids {
		for _, c := range Cases {
			fmt.Fprintf(&b, "M0>=%-6d (%s)   %-7s", g.Filter, c, g.Weighting)
			for _, o := range Orderings {
				cell := g.Cell(o, c)
				fmt.Fprintf(&b, " %9.2f", cell.Normalized)
			}
			b.WriteString("  ")
			for _, o := range Orderings {
				ref := paperRef(g.Filter, g.Weighting, c, o)
				if ref > 0 {
					fmt.Fprintf(&b, " %9.2f", ref)
				} else {
					fmt.Fprintf(&b, " %9s", "-")
				}
			}
			b.WriteByte('\n')
		}
	}
	b.WriteString("(* = values published in the paper; measured values use the synthetic trace)\n")
	return b.String()
}

func paperRef(filter int, w Weighting, c string, o core.Ordering) float64 {
	if byW, ok := PaperTable1[filter]; ok {
		if byC, ok := byW[w]; ok {
			if byO, ok := byC[c]; ok {
				return byO[o.String()]
			}
		}
	}
	return 0
}

// Fig2aRow is one ordering's bars in Figure 2a: total weighted
// completion time of each case as a percentage of the base case (a).
type Fig2aRow struct {
	Ordering core.Ordering
	Percent  map[string]float64 // case → percent of case (a)
}

// Fig2a computes Figure 2a from the report: filter = first configured
// filter, random weights.
func (r *Report) Fig2a() ([]Fig2aRow, error) {
	g := r.Grid(r.Config.Filters[0], RandomWeights)
	if g == nil {
		return nil, fmt.Errorf("experiments: missing grid for fig2a")
	}
	var rows []Fig2aRow
	for _, o := range Orderings {
		base := g.Cell(o, "a").Total
		row := Fig2aRow{Ordering: o, Percent: map[string]float64{}}
		for _, c := range Cases {
			row.Percent[c] = 100 * g.Cell(o, c).Total / base
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatFig2a renders Figure 2a as a text table.
func (r *Report) FormatFig2a() (string, error) {
	rows, err := r.Fig2a()
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2a — percent of base case (M0>=%d, random weights)\n", r.Config.Filters[0])
	fmt.Fprintf(&b, "%-6s %8s %8s %8s %8s\n", "order", "(a)", "(b)", "(c)", "(d)")
	for _, row := range rows {
		fmt.Fprintf(&b, "%-6s", row.Ordering)
		for _, c := range Cases {
			fmt.Fprintf(&b, " %7.2f%%", row.Percent[c])
		}
		b.WriteByte('\n')
	}
	b.WriteString("(paper: grouping reduces up to 27.19%, backfilling up to 8.68%; (d) is best)\n")
	return b.String(), nil
}

// Fig2bCell is one bar of Figure 2b: case (d) totals normalized to
// HLP(d) per weighting.
type Fig2bCell struct {
	Ordering   core.Ordering
	Weighting  Weighting
	Normalized float64
}

// Fig2b computes Figure 2b from the report (first filter).
func (r *Report) Fig2b() ([]Fig2bCell, error) {
	var out []Fig2bCell
	for _, w := range []Weighting{EqualWeights, RandomWeights} {
		g := r.Grid(r.Config.Filters[0], w)
		if g == nil {
			return nil, fmt.Errorf("experiments: missing grid for fig2b")
		}
		for _, o := range Orderings {
			out = append(out, Fig2bCell{Ordering: o, Weighting: w,
				Normalized: g.Cell(o, "d").Normalized})
		}
	}
	return out, nil
}

// FormatFig2b renders Figure 2b as a text table.
func (r *Report) FormatFig2b() (string, error) {
	cells, err := r.Fig2b()
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2b — case (d) totals normalized to HLP(d) (M0>=%d)\n", r.Config.Filters[0])
	fmt.Fprintf(&b, "%-8s %8s %8s %8s\n", "weights", "HA", "Hrho", "HLP")
	for _, w := range []Weighting{EqualWeights, RandomWeights} {
		fmt.Fprintf(&b, "%-8s", w)
		for _, o := range Orderings {
			for _, c := range cells {
				if c.Ordering == o && c.Weighting == w {
					fmt.Fprintf(&b, " %8.2f", c.Normalized)
				}
			}
		}
		b.WriteByte('\n')
	}
	b.WriteString("(paper: Hrho and HLP beat HA by up to 8.05x and 7.79x; Hrho slightly ahead)\n")
	return b.String(), nil
}

// LowerBoundResult compares lower bounds with the H_LP(d) schedule on
// one instance (reduced scale so LP-EXP is tractable).
type LowerBoundResult struct {
	Coflows          int
	ScheduleTotal    float64 // H_LP case (d)
	IntervalLB       float64
	TimeIndexedLB    float64 // 0 when skipped
	IntervalRatio    float64
	TimeIndexedRatio float64
	TimeIndexedErr   string
}

// RunLowerBound reproduces the §4.2 lower-bound comparison on a
// reduced-scale instance: the ratio LP-EXP / HLP(d) (paper: 0.9447).
func RunLowerBound(tr trace.Config, weightSeed int64) (*LowerBoundResult, error) {
	ins, err := trace.Generate(tr)
	if err != nil {
		return nil, err
	}
	ins.SetRandomPermutationWeights(rand.New(rand.NewSource(weightSeed)))
	res, err := core.Schedule(ins, core.Options{Ordering: core.OrderLP, Grouping: true, Backfill: true})
	if err != nil {
		return nil, err
	}
	out := &LowerBoundResult{
		Coflows:       len(ins.Coflows),
		ScheduleTotal: res.TotalWeighted,
		IntervalLB:    res.LP.LowerBound,
	}
	out.IntervalRatio = out.IntervalLB / out.ScheduleTotal
	tsol, err := lpmodel.SolveTimeIndexedLP(ins)
	if err != nil {
		out.TimeIndexedErr = err.Error()
	} else {
		out.TimeIndexedLB = tsol.LowerBound
		out.TimeIndexedRatio = out.TimeIndexedLB / out.ScheduleTotal
	}
	return out, nil
}

// Format renders the lower-bound comparison.
func (l *LowerBoundResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Lower bounds vs HLP(d) schedule (%d coflows)\n", l.Coflows)
	fmt.Fprintf(&b, "  HLP(d) total weighted completion: %.0f\n", l.ScheduleTotal)
	fmt.Fprintf(&b, "  interval LP bound:    %.0f (ratio %.4f)\n", l.IntervalLB, l.IntervalRatio)
	if l.TimeIndexedErr != "" {
		fmt.Fprintf(&b, "  LP-EXP bound: skipped (%s)\n", l.TimeIndexedErr)
	} else {
		fmt.Fprintf(&b, "  LP-EXP bound:         %.0f (ratio %.4f; paper reports %.4f)\n",
			l.TimeIndexedLB, l.TimeIndexedRatio, PaperLowerBoundRatio)
	}
	return b.String()
}
