package lp

// Sparse LU factorization of the simplex basis, plus product-form
// (eta) updates. This is the linear-algebra core of the revised
// simplex in sparse.go: the basis matrix B (m×m, columns of the
// standard-form constraint matrix) is factored as P·B = L·U by
// left-looking Gaussian elimination with partial pivoting, and basis
// changes between refactorizations are absorbed as eta matrices
// (B_new = B_old·E with E = I + (w − e_r)·e_rᵀ, w = B_old⁻¹·a_enter).
//
// Coordinate conventions, used consistently by ftran/btran:
//
//   - "row coordinates": indices into the original constraint rows
//     (the space right-hand sides and dual values live in);
//   - "position coordinates": indices into the basis column order
//     (the space basic-variable values live in). Factorization step k
//     eliminates basis column k, so elimination steps and basis
//     positions coincide.
//
// rowOf[k] is the original row chosen as the pivot of step k;
// pos[rowOf[k]] = k inverts it.

import (
	"errors"
	"math"
)

// spCol is one sparse column: parallel index/value slices.
type spCol struct {
	ind []int
	val []float64
}

// errSingular reports a numerically singular basis; the caller
// refactorizes or falls back to the dense solver.
var errSingular = errors.New("lp: singular basis")

const (
	// luPivotTol is the minimum acceptable pivot magnitude during
	// factorization; below it the basis is treated as singular.
	luPivotTol = 1e-11
	// etaDropTol drops negligible eta entries to keep updates sparse.
	etaDropTol = 1e-13
	// refactorEvery bounds the eta file length; past it the basis is
	// refactored from scratch, which also resets accumulated roundoff.
	refactorEvery = 64
)

// luFactors is one P·B = L·U factorization.
type luFactors struct {
	m     int
	rowOf []int // rowOf[k]: original row pivoted at step k
	pos   []int // pos[origRow]: step that pivoted it, -1 while free

	// L is unit lower triangular in step coordinates, stored by column:
	// column k holds multipliers indexed by ORIGINAL row (rows pivoted
	// at later steps).
	lRows [][]int
	lVals [][]float64

	// U is upper triangular in step coordinates, stored by column:
	// column k holds entries u_ik for steps i < k, plus diag[k] = u_kk.
	uRows [][]int
	uVals [][]float64
	diag  []float64

	work    []float64 // dense scratch in row coordinates, len m
	inTouch []bool    // membership marker for the factor scratch list
}

// newLU allocates factor storage for an m×m basis.
func newLU(m int) *luFactors {
	return &luFactors{
		m:       m,
		rowOf:   make([]int, m),
		pos:     make([]int, m),
		lRows:   make([][]int, m),
		lVals:   make([][]float64, m),
		uRows:   make([][]int, m),
		uVals:   make([][]float64, m),
		diag:    make([]float64, m),
		work:    make([]float64, m),
		inTouch: make([]bool, m),
	}
}

// factor computes P·B = L·U for the basis whose k-th column is
// cols(k). Returns errSingular when no acceptable pivot exists.
func (f *luFactors) factor(cols func(k int) spCol) error {
	m := f.m
	for r := 0; r < m; r++ {
		f.pos[r] = -1
		f.work[r] = 0
		f.inTouch[r] = false
	}
	for k := 0; k < m; k++ {
		f.lRows[k] = f.lRows[k][:0]
		f.lVals[k] = f.lVals[k][:0]
		f.uRows[k] = f.uRows[k][:0]
		f.uVals[k] = f.uVals[k][:0]
	}
	// touched tracks scratch entries to re-zero between columns; the
	// inTouch marker keeps it duplicate-free even when a value cancels
	// to exactly zero and is touched again.
	touched := make([]int, 0, 64)
	for k := 0; k < m; k++ {
		c := cols(k)
		for i, r := range c.ind {
			if !f.inTouch[r] {
				f.inTouch[r] = true
				touched = append(touched, r)
			}
			f.work[r] += c.val[i]
		}
		// Left-looking elimination: apply every earlier column's
		// multipliers; the consumed value at each earlier pivot row is a
		// U entry of this column.
		for j := 0; j < k; j++ {
			t := f.work[f.rowOf[j]]
			if t == 0 {
				continue
			}
			f.uRows[k] = append(f.uRows[k], j)
			f.uVals[k] = append(f.uVals[k], t)
			rows, vals := f.lRows[j], f.lVals[j]
			for i, r := range rows {
				if !f.inTouch[r] {
					f.inTouch[r] = true
					touched = append(touched, r)
				}
				f.work[r] -= vals[i] * t
			}
		}
		// Partial pivoting over the still-free rows.
		pivRow, pivMag := -1, luPivotTol
		for _, r := range touched {
			if f.pos[r] >= 0 {
				continue
			}
			if mag := math.Abs(f.work[r]); mag > pivMag {
				pivRow, pivMag = r, mag
			}
		}
		if pivRow < 0 {
			for _, r := range touched {
				f.work[r] = 0
				f.inTouch[r] = false
			}
			return errSingular
		}
		piv := f.work[pivRow]
		f.rowOf[k] = pivRow
		f.pos[pivRow] = k
		f.diag[k] = piv
		inv := 1 / piv
		for _, r := range touched {
			if f.pos[r] >= 0 || f.work[r] == 0 {
				continue
			}
			f.lRows[k] = append(f.lRows[k], r)
			f.lVals[k] = append(f.lVals[k], f.work[r]*inv)
		}
		for _, r := range touched {
			f.work[r] = 0
			f.inTouch[r] = false
		}
		touched = touched[:0]
	}
	return nil
}

// ftranLU solves B·z = b. b is dense in row coordinates and is
// consumed as scratch; z is dense in position coordinates.
func (f *luFactors) ftranLU(b, z []float64) {
	// L solve: y_k accumulates in place at b[rowOf[k]].
	for k := 0; k < f.m; k++ {
		t := b[f.rowOf[k]]
		if t == 0 {
			continue
		}
		rows, vals := f.lRows[k], f.lVals[k]
		for i, r := range rows {
			b[r] -= vals[i] * t
		}
	}
	// U solve, backward, column-oriented: once z_k is known, its
	// contribution u_ik·z_k is pulled out of every earlier y_i.
	for k := f.m - 1; k >= 0; k-- {
		t := b[f.rowOf[k]] / f.diag[k]
		z[k] = t
		if t == 0 {
			continue
		}
		rows, vals := f.uRows[k], f.uVals[k]
		for i, j := range rows {
			b[f.rowOf[j]] -= vals[i] * t
		}
	}
}

// btranLU solves Bᵀ·y = c. c is dense in position coordinates and is
// consumed as scratch; y is dense in row coordinates.
func (f *luFactors) btranLU(c, y []float64) {
	// Uᵀ·w = c, forward: Uᵀ is lower triangular in step coordinates.
	// w is computed in place in c.
	for k := 0; k < f.m; k++ {
		t := c[k]
		rows, vals := f.uRows[k], f.uVals[k]
		for i, j := range rows {
			t -= vals[i] * c[j]
		}
		c[k] = t / f.diag[k]
	}
	// Lᵀ·v = w, backward: column k of L touches only rows pivoted at
	// later steps, whose v entries are already final, so the solve runs
	// in place in c as well.
	for k := f.m - 1; k >= 0; k-- {
		t := c[k]
		rows, vals := f.lRows[k], f.lVals[k]
		for i, r := range rows {
			t -= vals[i] * c[f.pos[r]]
		}
		c[k] = t
	}
	// Undo the row permutation: y = Pᵀ·v.
	for k := 0; k < f.m; k++ {
		y[f.rowOf[k]] = c[k]
	}
}

// eta is one product-form update: the basis column at position r was
// replaced, with w = B_old⁻¹·a_enter. Entries exclude position r
// (stored as wr).
type eta struct {
	r   int
	wr  float64
	ind []int
	val []float64
}

// basisLU maintains B⁻¹ across pivots: an LU factorization plus an
// eta file, refactored when the file reaches refactorEvery.
type basisLU struct {
	m    int
	lu   *luFactors
	etas []eta
}

func newBasisLU(m int) *basisLU {
	return &basisLU{m: m, lu: newLU(m)}
}

// refactor rebuilds the LU factors from the current basis columns and
// clears the eta file.
func (b *basisLU) refactor(cols func(k int) spCol) error {
	if err := b.lu.factor(cols); err != nil {
		return err
	}
	b.etas = b.etas[:0]
	return nil
}

// needsRefactor reports whether the eta file is full.
func (b *basisLU) needsRefactor() bool { return len(b.etas) >= refactorEvery }

// push records the pivot (position r, FTRAN column w) as an eta.
// Returns errSingular when the pivot element is numerically zero.
func (b *basisLU) push(r int, w []float64) error {
	if math.Abs(w[r]) <= luPivotTol {
		return errSingular
	}
	e := eta{r: r, wr: w[r]}
	for i, v := range w {
		if i != r && math.Abs(v) > etaDropTol {
			e.ind = append(e.ind, i)
			e.val = append(e.val, v)
		}
	}
	b.etas = append(b.etas, e)
	return nil
}

// ftran solves B·z = b with the current factors (LU then etas in
// creation order). b is dense in row coordinates and is consumed;
// z is dense in position coordinates.
func (b *basisLU) ftran(rhs, z []float64) {
	b.lu.ftranLU(rhs, z)
	for i := range b.etas {
		e := &b.etas[i]
		t := z[e.r] / e.wr
		if t != 0 {
			for j, p := range e.ind {
				z[p] -= e.val[j] * t
			}
		}
		z[e.r] = t
	}
}

// btran solves Bᵀ·y = c with the current factors (etas in reverse
// order, then LUᵀ). c is dense in position coordinates and is
// consumed; y is dense in row coordinates.
func (b *basisLU) btran(c, y []float64) {
	for i := len(b.etas) - 1; i >= 0; i-- {
		e := &b.etas[i]
		dot := 0.0
		for j, p := range e.ind {
			dot += e.val[j] * c[p]
		}
		c[e.r] = (c[e.r] - dot) / e.wr
	}
	b.lu.btranLU(c, y)
}
