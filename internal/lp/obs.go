package lp

import "coflow/internal/obs"

// Obs instruments the simplex solvers. Every field is a nil-safe obs
// metric; the zero value (the default) disables them at the cost of
// one nil check per site. Hooks are package-level because Solve is a
// pure function called from many places (lpmodel, openshop,
// experiments); install them once at startup with SetObs.
//
// Stage taxonomy:
//
//	solve          one whole Solve/SolveSparse call
//	setup          tableau construction, including row equilibration
//	equilibration  the row-scaling pass alone (subset of setup)
//	phase1         feasibility phase (minimize artificial sum)
//	phase2         optimality phase (minimize the real objective)
//	presolve       the reduction loop ahead of the revised simplex
//	factorize      one sparse LU (re)factorization of the basis
//	price          one pricing pass (BTRAN + reduced costs)
//	update         one basis change (xB update + eta push)
type Obs struct {
	SolveSeconds         *obs.Histogram
	SetupSeconds         *obs.Histogram
	EquilibrationSeconds *obs.Histogram
	Phase1Seconds        *obs.Histogram
	Phase2Seconds        *obs.Histogram
	PresolveSeconds      *obs.Histogram
	FactorizeSeconds     *obs.Histogram
	PriceSeconds         *obs.Histogram
	UpdateSeconds        *obs.Histogram

	Solves *obs.Counter
	// Pivots counts simplex iterations (phase 1 + phase 2, both
	// solvers).
	Pivots *obs.Counter
	// SparseSolves counts SolveSparse calls (a subset of Solves).
	SparseSolves *obs.Counter
	// SparseFallbacks counts sparse solves that hit numerical
	// breakdown and transparently re-ran on the dense oracle.
	SparseFallbacks *obs.Counter

	// Per-reduction presolve counts, accumulated across solves.
	PresolveEmptyRows      *obs.Counter
	PresolveSingletonRows  *obs.Counter
	PresolveRedundantRows  *obs.Counter
	PresolveForcingRows    *obs.Counter
	PresolveFixedVars      *obs.Counter
	PresolveEmptyCols      *obs.Counter
	PresolveFreeSingletons *obs.Counter
	PresolveTightenedBnds  *obs.Counter
}

// pkgObs is the installed hooks; the zero value disables them.
var pkgObs Obs

// SetObs installs package-wide instrumentation. Call once at startup
// (it is not synchronized against concurrent solves); the zero Obs
// restores the disabled default.
func SetObs(o Obs) { pkgObs = o }

// NewObs registers the solver metrics on r (prefix coflow_lp_) and
// returns the wired Obs. A nil registry yields the zero Obs.
func NewObs(r *obs.Registry) Obs {
	return Obs{
		SolveSeconds:         r.Histogram("coflow_lp_solve_seconds", "latency of one simplex solve", obs.LatencyBuckets),
		SetupSeconds:         r.Histogram("coflow_lp_setup_seconds", "latency of tableau construction", obs.LatencyBuckets),
		EquilibrationSeconds: r.Histogram("coflow_lp_equilibration_seconds", "latency of the row-equilibration pass", obs.LatencyBuckets),
		Phase1Seconds:        r.Histogram("coflow_lp_phase1_seconds", "latency of the feasibility phase", obs.LatencyBuckets),
		Phase2Seconds:        r.Histogram("coflow_lp_phase2_seconds", "latency of the optimality phase", obs.LatencyBuckets),
		PresolveSeconds:      r.Histogram("coflow_lp_presolve_seconds", "latency of the presolve reduction loop", obs.LatencyBuckets),
		FactorizeSeconds:     r.Histogram("coflow_lp_factorize_seconds", "latency of one sparse basis LU factorization", obs.LatencyBuckets),
		PriceSeconds:         r.Histogram("coflow_lp_price_seconds", "latency of one revised-simplex pricing pass", obs.LatencyBuckets),
		UpdateSeconds:        r.Histogram("coflow_lp_update_seconds", "latency of one revised-simplex basis update", obs.LatencyBuckets),

		Solves:          r.Counter("coflow_lp_solves_total", "simplex solves run"),
		Pivots:          r.Counter("coflow_lp_pivots_total", "simplex pivots across all solves"),
		SparseSolves:    r.Counter("coflow_lp_sparse_solves_total", "sparse (presolve + revised simplex) solves run"),
		SparseFallbacks: r.Counter("coflow_lp_sparse_fallbacks_total", "sparse solves that fell back to the dense oracle"),

		PresolveEmptyRows:      r.Counter("coflow_lp_presolve_empty_rows_total", "empty rows dropped by presolve"),
		PresolveSingletonRows:  r.Counter("coflow_lp_presolve_singleton_rows_total", "singleton rows converted to bounds by presolve"),
		PresolveRedundantRows:  r.Counter("coflow_lp_presolve_redundant_rows_total", "redundant rows dropped by presolve"),
		PresolveForcingRows:    r.Counter("coflow_lp_presolve_forcing_rows_total", "forcing rows fixed by presolve"),
		PresolveFixedVars:      r.Counter("coflow_lp_presolve_fixed_vars_total", "variables fixed and substituted by presolve"),
		PresolveEmptyCols:      r.Counter("coflow_lp_presolve_empty_cols_total", "empty columns fixed by presolve"),
		PresolveFreeSingletons: r.Counter("coflow_lp_presolve_free_singletons_total", "free singleton columns solved out by presolve"),
		PresolveTightenedBnds:  r.Counter("coflow_lp_presolve_tightened_bounds_total", "implied bounds tightened by presolve"),
	}
}
