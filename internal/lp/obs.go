package lp

import "coflow/internal/obs"

// Obs instruments the simplex solver. Every field is a nil-safe obs
// metric; the zero value (the default) disables them at the cost of
// one nil check per site. Hooks are package-level because Solve is a
// pure function called from many places (lpmodel, openshop,
// experiments); install them once at startup with SetObs.
//
// Stage taxonomy:
//
//	solve          one whole Solve call
//	setup          tableau construction, including row equilibration
//	equilibration  the row-scaling pass alone (subset of setup)
//	phase1         feasibility phase (minimize artificial sum)
//	phase2         optimality phase (minimize the real objective)
type Obs struct {
	SolveSeconds         *obs.Histogram
	SetupSeconds         *obs.Histogram
	EquilibrationSeconds *obs.Histogram
	Phase1Seconds        *obs.Histogram
	Phase2Seconds        *obs.Histogram

	Solves *obs.Counter
	// Pivots counts simplex iterations (phase 1 + phase 2).
	Pivots *obs.Counter
}

// pkgObs is the installed hooks; the zero value disables them.
var pkgObs Obs

// SetObs installs package-wide instrumentation. Call once at startup
// (it is not synchronized against concurrent solves); the zero Obs
// restores the disabled default.
func SetObs(o Obs) { pkgObs = o }

// NewObs registers the solver metrics on r (prefix coflow_lp_) and
// returns the wired Obs. A nil registry yields the zero Obs.
func NewObs(r *obs.Registry) Obs {
	return Obs{
		SolveSeconds:         r.Histogram("coflow_lp_solve_seconds", "latency of one simplex solve", obs.LatencyBuckets),
		SetupSeconds:         r.Histogram("coflow_lp_setup_seconds", "latency of tableau construction", obs.LatencyBuckets),
		EquilibrationSeconds: r.Histogram("coflow_lp_equilibration_seconds", "latency of the row-equilibration pass", obs.LatencyBuckets),
		Phase1Seconds:        r.Histogram("coflow_lp_phase1_seconds", "latency of the feasibility phase", obs.LatencyBuckets),
		Phase2Seconds:        r.Histogram("coflow_lp_phase2_seconds", "latency of the optimality phase", obs.LatencyBuckets),
		Solves:               r.Counter("coflow_lp_solves_total", "simplex solves run"),
		Pivots:               r.Counter("coflow_lp_pivots_total", "simplex pivots across all solves"),
	}
}
