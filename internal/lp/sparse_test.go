package lp

// Status-path coverage for the revised simplex, both through the
// public SolveSparse pipeline and directly on solveRevised (bypassing
// presolve, so the simplex itself — not a reduction — produces the
// verdict), plus the MPS round-trip of presolved problems.

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

func solveSparseOrFail(t *testing.T, p *Problem) *Solution {
	t.Helper()
	sol, err := SolveSparse(p)
	if err != nil {
		t.Fatalf("SolveSparse: %v", err)
	}
	return sol
}

func TestSparseSimple(t *testing.T) {
	// max x0 + x1 (as min of negation) s.t. x0 + x1 ≤ 4, x0 ≤ 3.
	p := NewProblem(2)
	p.SetObjective(0, -1)
	p.SetObjective(1, -1)
	p.AddConstraint([]Entry{{0, 1}, {1, 1}}, LE, 4)
	p.AddConstraint([]Entry{{0, 1}}, LE, 3)
	sol := solveSparseOrFail(t, p)
	if sol.Status != Optimal || math.Abs(sol.Objective-(-4)) > 1e-9 {
		t.Fatalf("got %v obj %g, want optimal obj -4", sol.Status, sol.Objective)
	}
}

func TestSparseInfeasible(t *testing.T) {
	// Multi-entry rows so presolve cannot shortcut the verdict on its
	// own in every case; pipeline and raw solver must both say so.
	p := NewProblem(2)
	p.AddConstraint([]Entry{{0, 1}, {1, 1}}, GE, 4)
	p.AddConstraint([]Entry{{0, 1}, {1, 1}}, LE, 1)
	sol := solveSparseOrFail(t, p)
	if sol.Status != Infeasible {
		t.Fatalf("pipeline status = %v, want infeasible", sol.Status)
	}
	rsol, err := solveRevised(p)
	if err != nil {
		t.Fatalf("solveRevised: %v", err)
	}
	if rsol.Status != Infeasible {
		t.Fatalf("revised status = %v, want infeasible", rsol.Status)
	}
}

func TestSparseUnbounded(t *testing.T) {
	// min −x0 − x1 s.t. x0 − x1 ≤ 1: the ray (t, t) is unbounded.
	p := NewProblem(2)
	p.SetObjective(0, -1)
	p.SetObjective(1, -1)
	p.AddConstraint([]Entry{{0, 1}, {1, -1}}, LE, 1)
	sol := solveSparseOrFail(t, p)
	if sol.Status != Unbounded {
		t.Fatalf("pipeline status = %v, want unbounded", sol.Status)
	}
	rsol, err := solveRevised(p)
	if err != nil {
		t.Fatalf("solveRevised: %v", err)
	}
	if rsol.Status != Unbounded {
		t.Fatalf("revised status = %v, want unbounded", rsol.Status)
	}
}

func TestSparseBealeDegenerate(t *testing.T) {
	// Beale's cycling example; the Dantzig-then-Bland contract must
	// terminate at −0.05 like the dense solver.
	p := NewProblem(4)
	p.SetObjective(0, -0.75)
	p.SetObjective(1, 150)
	p.SetObjective(2, -0.02)
	p.SetObjective(3, 6)
	p.AddConstraint([]Entry{{0, 0.25}, {1, -60}, {2, -0.04}, {3, 9}}, LE, 0)
	p.AddConstraint([]Entry{{0, 0.5}, {1, -90}, {2, -0.02}, {3, 3}}, LE, 0)
	p.AddConstraint([]Entry{{2, 1}}, LE, 1)
	for _, run := range []struct {
		name  string
		solve func() (*Solution, error)
	}{
		{"pipeline", func() (*Solution, error) { return SolveSparse(p) }},
		{"revised", func() (*Solution, error) { return solveRevised(p) }},
	} {
		sol, err := run.solve()
		if err != nil {
			t.Fatalf("%s: %v", run.name, err)
		}
		if sol.Status != Optimal {
			t.Fatalf("%s: status = %v, want optimal", run.name, sol.Status)
		}
		if math.Abs(sol.Objective-(-0.05)) > 1e-6 {
			t.Fatalf("%s: objective = %g, want -0.05", run.name, sol.Objective)
		}
	}
}

func TestSparseDegenerateCyclingProne(t *testing.T) {
	// Kuhn's degenerate instance: multiple zero-ratio pivots at the
	// origin; plain Dantzig pricing can cycle without the Bland
	// fallback. Optimal value is -2 at (2, 0, 1).
	p := NewProblem(3)
	p.SetObjective(0, -2)
	p.SetObjective(1, -3)
	p.SetObjective(2, 1)
	p.AddConstraint([]Entry{{0, 1}, {1, 2}, {2, -2}}, LE, 0)
	p.AddConstraint([]Entry{{0, 1}, {1, 4}, {2, -1}}, LE, 1)
	p.AddConstraint([]Entry{{0, -1}, {1, -1}, {2, 1}}, LE, 0)
	dense := solveOrFail(t, p)
	sol := solveSparseOrFail(t, p)
	if sol.Status != dense.Status {
		t.Fatalf("status: sparse %v, dense %v", sol.Status, dense.Status)
	}
	if dense.Status == Optimal && math.Abs(sol.Objective-dense.Objective) > 1e-6 {
		t.Fatalf("objective: sparse %g, dense %g", sol.Objective, dense.Objective)
	}
}

func TestSparseNoConstraints(t *testing.T) {
	// Zero rows: optimal at the origin for c ≥ 0, unbounded otherwise.
	p := NewProblem(2)
	p.SetObjective(0, 1)
	sol := solveSparseOrFail(t, p)
	if sol.Status != Optimal || sol.Objective != 0 {
		t.Fatalf("got %v obj %g, want optimal 0", sol.Status, sol.Objective)
	}
	q := NewProblem(1)
	q.SetObjective(0, -1)
	sol = solveSparseOrFail(t, q)
	if sol.Status != Unbounded {
		t.Fatalf("got %v, want unbounded", sol.Status)
	}
}

func TestSolveWithDispatch(t *testing.T) {
	p := NewProblem(1)
	p.SetObjective(0, -1)
	p.AddConstraint([]Entry{{0, 2}}, LE, 6)
	for _, m := range []Method{MethodDense, MethodSparse} {
		sol, err := SolveWith(p, m)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if sol.Status != Optimal || math.Abs(sol.Objective-(-3)) > 1e-9 {
			t.Fatalf("%v: got %v obj %g, want optimal -3", m, sol.Status, sol.Objective)
		}
	}
	if _, err := SolveWith(nil, MethodSparse); err == nil {
		t.Fatal("SolveWith(nil) succeeded")
	}
}

func TestParseMethod(t *testing.T) {
	for in, want := range map[string]Method{
		"dense": MethodDense, "tableau": MethodDense,
		"sparse": MethodSparse, "revised": MethodSparse,
	} {
		got, err := ParseMethod(in)
		if err != nil || got != want {
			t.Fatalf("ParseMethod(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseMethod("simplex2000"); err == nil {
		t.Fatal("ParseMethod accepted junk")
	}
	if MethodDense.String() != "dense" || MethodSparse.String() != "sparse" {
		t.Fatalf("String(): %v/%v", MethodDense, MethodSparse)
	}
}

// TestMPSRoundTripPresolved proves presolved problems survive the MPS
// writer/reader with the same optimum: the reduced problem is pure
// x ≥ 0 standard form (bounds re-emitted as rows), which is exactly
// the subset mps.go speaks.
func TestMPSRoundTripPresolved(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	rounds := 0
	for n := 0; n < 1500 && rounds < 25; n++ {
		p := randomProblem(rng)
		ps, err := Presolve(p)
		if err != nil {
			t.Fatalf("instance %d: presolve: %v", n, err)
		}
		if ps.Decided() {
			continue
		}
		red := ps.Reduced()
		before, err := Solve(red)
		if err != nil {
			t.Fatalf("instance %d: solve reduced: %v", n, err)
		}
		if before.Status != Optimal {
			continue
		}
		rounds++
		var buf bytes.Buffer
		if err := WriteMPS(&buf, red, "presolved"); err != nil {
			t.Fatalf("instance %d: write MPS: %v", n, err)
		}
		back, err := ReadMPS(&buf)
		if err != nil {
			t.Fatalf("instance %d: read MPS: %v", n, err)
		}
		after, err := Solve(back)
		if err != nil {
			t.Fatalf("instance %d: solve re-read: %v", n, err)
		}
		if after.Status != Optimal {
			t.Fatalf("instance %d: re-read status = %v, want optimal", n, after.Status)
		}
		if diff := math.Abs(after.Objective - before.Objective); diff > 1e-6*(1+math.Abs(before.Objective)) {
			t.Fatalf("instance %d: MPS round trip moved the optimum: %.12g -> %.12g",
				n, before.Objective, after.Objective)
		}
	}
	if rounds < 8 {
		t.Fatalf("only %d round-trippable instances generated; generator drifted", rounds)
	}
}

// TestSparseLUFactorSolve pins the LU kernel itself on a dense-ish
// deterministic matrix: FTRAN and BTRAN must invert it to fine
// precision, including through a chain of eta updates.
func TestSparseLUFactorSolve(t *testing.T) {
	const m = 12
	rng := rand.New(rand.NewSource(5))
	cols := make([]spCol, m)
	dense := make([][]float64, m) // dense[i][j]
	for i := range dense {
		dense[i] = make([]float64, m)
	}
	for j := 0; j < m; j++ {
		for i := 0; i < m; i++ {
			if rng.Float64() < 0.4 || i == j {
				v := rng.NormFloat64()
				if i == j {
					v += 3 // keep it comfortably nonsingular
				}
				cols[j].ind = append(cols[j].ind, i)
				cols[j].val = append(cols[j].val, v)
				dense[i][j] = v
			}
		}
	}
	blu := newBasisLU(m)
	if err := blu.refactor(func(k int) spCol { return cols[k] }); err != nil {
		t.Fatalf("factor: %v", err)
	}
	matvec := func(x []float64) []float64 {
		out := make([]float64, m)
		for i := 0; i < m; i++ {
			for j := 0; j < m; j++ {
				out[i] += dense[i][j] * x[j]
			}
		}
		return out
	}
	matvecT := func(x []float64) []float64 {
		out := make([]float64, m)
		for j := 0; j < m; j++ {
			for i := 0; i < m; i++ {
				out[j] += dense[i][j] * x[i]
			}
		}
		return out
	}
	checkInverse := func(label string) {
		t.Helper()
		want := make([]float64, m)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		rhs := append([]float64(nil), matvec(want)...)
		z := make([]float64, m)
		blu.ftran(rhs, z)
		for i := range z {
			if math.Abs(z[i]-want[i]) > 1e-8 {
				t.Fatalf("%s: ftran[%d] = %g, want %g", label, i, z[i], want[i])
			}
		}
		rhsT := append([]float64(nil), matvecT(want)...)
		// btran input is in position coordinates.
		y := make([]float64, m)
		blu.btran(rhsT, y)
		for i := range y {
			if math.Abs(y[i]-want[i]) > 1e-8 {
				t.Fatalf("%s: btran[%d] = %g, want %g", label, i, y[i], want[i])
			}
		}
	}
	checkInverse("after factor")
	// Replace three columns through eta updates and re-verify.
	for rep := 0; rep < 3; rep++ {
		r := rng.Intn(m)
		newCol := spCol{}
		for i := 0; i < m; i++ {
			if rng.Float64() < 0.5 || i == r {
				v := rng.NormFloat64()
				if i == r {
					v += 3
				}
				newCol.ind = append(newCol.ind, i)
				newCol.val = append(newCol.val, v)
			}
		}
		rhs := make([]float64, m)
		for i, row := range newCol.ind {
			rhs[row] = newCol.val[i]
		}
		w := make([]float64, m)
		blu.ftran(rhs, w)
		if err := blu.push(r, w); err != nil {
			t.Fatalf("push: %v", err)
		}
		cols[r] = newCol
		for i := 0; i < m; i++ {
			dense[i][r] = 0
		}
		for i, row := range newCol.ind {
			dense[row][r] = newCol.val[i]
		}
		checkInverse("after eta")
	}
}
