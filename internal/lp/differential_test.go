package lp

// Differential harness: the sparse pipeline (presolve + revised
// simplex) is checked against the dense tableau — the same oracle
// pattern check.Shadow applies to the Step pipeline. Any divergence
// in status, objective, or primal feasibility is minimized by
// dropping rows/columns while the divergence persists, then dumped as
// a standalone JSON reproducer.

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// diffObjTol is the relative objective agreement required between the
// two solvers when both report Optimal.
const diffObjTol = 1e-6

// compareSparseDense runs both solvers on p and returns a description
// of the first divergence, or "" when they agree. Instances where
// either solver hits its iteration cap are skipped (no verdict to
// compare).
func compareSparseDense(p *Problem) string {
	dense, err := Solve(p)
	if err != nil {
		return fmt.Sprintf("dense solver error: %v", err)
	}
	sparse, err := SolveSparse(p)
	if err != nil {
		return fmt.Sprintf("sparse solver error: %v", err)
	}
	if dense.Status == IterLimit || sparse.Status == IterLimit {
		return ""
	}
	if dense.Status != sparse.Status {
		return fmt.Sprintf("status: dense=%v sparse=%v", dense.Status, sparse.Status)
	}
	if dense.Status != Optimal {
		return ""
	}
	if diff := math.Abs(dense.Objective - sparse.Objective); diff > diffObjTol*(1+math.Abs(dense.Objective)) {
		return fmt.Sprintf("objective: dense=%.12g sparse=%.12g (diff %.3g)",
			dense.Objective, sparse.Objective, diff)
	}
	if err := CheckFeasible(p, sparse.X, 1e-5); err != nil {
		return fmt.Sprintf("sparse solution infeasible on original problem: %v", err)
	}
	return ""
}

// cloneWithoutRow copies p minus row drop.
func cloneWithoutRow(p *Problem, drop int) *Problem {
	np := NewProblem(p.numVars)
	copy(np.obj, p.obj)
	for i, r := range p.rows {
		if i == drop {
			continue
		}
		np.AddConstraint(r.entries, r.sense, r.rhs)
	}
	return np
}

// cloneWithoutVar copies p minus variable drop (entries removed,
// later variables renumbered). Returns nil when p has one variable.
func cloneWithoutVar(p *Problem, drop int) *Problem {
	if p.numVars <= 1 {
		return nil
	}
	np := NewProblem(p.numVars - 1)
	for v, c := range p.obj {
		switch {
		case v < drop:
			np.obj[v] = c
		case v > drop:
			np.obj[v-1] = c
		}
	}
	for _, r := range p.rows {
		entries := make([]Entry, 0, len(r.entries))
		for _, e := range r.entries {
			switch {
			case e.Var < drop:
				entries = append(entries, e)
			case e.Var > drop:
				entries = append(entries, Entry{Var: e.Var - 1, Coef: e.Coef})
			}
		}
		np.AddConstraint(entries, r.sense, r.rhs)
	}
	return np
}

// minimizeDivergence greedily drops rows, then variables, keeping
// every removal that preserves some divergence. The result is the
// reproducer that gets dumped.
func minimizeDivergence(p *Problem) *Problem {
	for changed := true; changed; {
		changed = false
		for i := 0; i < len(p.rows); i++ {
			np := cloneWithoutRow(p, i)
			if compareSparseDense(np) != "" {
				p = np
				changed = true
				i--
			}
		}
		for v := 0; v < p.numVars; v++ {
			np := cloneWithoutVar(p, v)
			if np == nil {
				continue
			}
			if compareSparseDense(np) != "" {
				p = np
				changed = true
				v--
			}
		}
	}
	return p
}

// lpReproducer is the on-disk format of a dumped divergence, mirroring
// check.Shadow's reproducer files.
type lpReproducer struct {
	Divergence string   `json:"divergence"`
	Problem    *Problem `json:"problem"`
}

// dumpDivergence minimizes p and writes a JSON reproducer under
// testdata/failures, returning its path (best effort: "" on error).
func dumpDivergence(t *testing.T, p *Problem, div string) string {
	t.Helper()
	min := minimizeDivergence(p)
	minDiv := compareSparseDense(min)
	if minDiv == "" { // minimization raced a tolerance edge; keep the original
		min, minDiv = p, div
	}
	dir := filepath.Join("testdata", "failures")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Logf("reproducer dir: %v", err)
		return ""
	}
	data, err := json.MarshalIndent(lpReproducer{Divergence: minDiv, Problem: min}, "", "  ")
	if err != nil {
		t.Logf("reproducer encode: %v", err)
		return ""
	}
	path := filepath.Join(dir, fmt.Sprintf("divergence_%dv_%dr.json", min.numVars, len(min.rows)))
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Logf("reproducer write: %v", err)
		return ""
	}
	return path
}

// requireAgreement fails the test with a minimized reproducer when the
// two solvers diverge on p.
func requireAgreement(t *testing.T, p *Problem, label string) {
	t.Helper()
	div := compareSparseDense(p)
	if div == "" {
		return
	}
	path := dumpDivergence(t, p, div)
	t.Fatalf("%s: sparse/dense divergence: %s (reproducer: %s)", label, div, path)
}

// randomProblem generates a random sparse LP shaped to exercise every
// reduction and status path: small integer-ish coefficients (ties and
// degeneracy), mixed senses, occasional empty/singleton rows,
// duplicate entries, and negative right-hand sides.
func randomProblem(rng *rand.Rand) *Problem {
	numVars := 1 + rng.Intn(10)
	numRows := rng.Intn(12)
	p := NewProblem(numVars)
	for v := 0; v < numVars; v++ {
		switch rng.Intn(4) {
		case 0: // zero cost: free-singleton and empty-column fodder
		default:
			p.SetObjective(v, float64(rng.Intn(11)-5)/2)
		}
	}
	for i := 0; i < numRows; i++ {
		sense := Sense(rng.Intn(3))
		rhs := float64(rng.Intn(21)-8) / 2
		var entries []Entry
		switch rng.Intn(10) {
		case 0: // empty row
		case 1: // singleton row
			entries = append(entries, Entry{Var: rng.Intn(numVars), Coef: float64(rng.Intn(9)-4) / 2})
		default:
			nnz := 1 + rng.Intn(numVars)
			for k := 0; k < nnz; k++ {
				coef := float64(rng.Intn(9)-4) / 2
				if coef == 0 {
					coef = 1
				}
				entries = append(entries, Entry{Var: rng.Intn(numVars), Coef: coef})
			}
		}
		p.AddConstraint(entries, sense, rhs)
	}
	return p
}

// TestSparseVsDenseRandomSweep is the random-LP half of the seeded
// 1000-instance differential sweep (the lpmodel half lives in
// internal/lpmodel). Short mode runs a fifth of it.
func TestSparseVsDenseRandomSweep(t *testing.T) {
	instances := 800
	if testing.Short() {
		instances = 160
	}
	rng := rand.New(rand.NewSource(9))
	statuses := map[Status]int{}
	for n := 0; n < instances; n++ {
		p := randomProblem(rng)
		requireAgreement(t, p, fmt.Sprintf("instance %d", n))
		sol, err := Solve(p)
		if err != nil {
			t.Fatalf("instance %d: %v", n, err)
		}
		statuses[sol.Status]++
	}
	// The sweep is only meaningful if it exercises every verdict.
	for _, s := range []Status{Optimal, Infeasible, Unbounded} {
		if statuses[s] == 0 {
			t.Errorf("sweep never produced status %v (got %v)", s, statuses)
		}
	}
}

// decodeFuzzProblem maps arbitrary fuzz bytes onto an LP. The format
// is positional so the fuzzer can meaningfully mutate it: header
// (numVars, numRows), then per row sense/rhs/nnz and entry pairs, then
// objective bytes.
func decodeFuzzProblem(data []byte) *Problem {
	if len(data) < 2 {
		return nil
	}
	pos := 0
	next := func() byte {
		if pos >= len(data) {
			return 0
		}
		b := data[pos]
		pos++
		return b
	}
	numVars := 1 + int(next())%8
	numRows := int(next()) % 10
	p := NewProblem(numVars)
	for i := 0; i < numRows; i++ {
		sense := Sense(int(next()) % 3)
		rhs := float64(int(next())-128) / 8
		nnz := int(next()) % (numVars + 1)
		entries := make([]Entry, 0, nnz)
		for k := 0; k < nnz; k++ {
			v := int(next()) % numVars
			coef := float64(int(next())-128) / 16
			entries = append(entries, Entry{Var: v, Coef: coef})
		}
		p.AddConstraint(entries, sense, rhs)
	}
	for v := 0; v < numVars; v++ {
		p.SetObjective(v, float64(int(next())-128)/16)
	}
	return p
}

// FuzzSparseVsDense fuzzes the differential harness; `make slowcheck`
// runs it bounded, and any corpus divergence is a reportable bug.
func FuzzSparseVsDense(f *testing.F) {
	f.Add([]byte{3, 4, 0, 140, 2, 1, 120, 0, 100, 1, 135, 3, 0, 90, 1, 200, 2, 50, 100, 140, 120})
	f.Add([]byte{1, 1, 2, 128, 1, 0, 112, 100})
	f.Add([]byte{5, 0, 200, 200, 200, 90, 90})
	f.Add([]byte{2, 3, 1, 100, 2, 0, 144, 1, 144, 0, 120, 1, 0, 160, 2, 1, 130, 0, 130, 110, 150})
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 16; i++ {
		buf := make([]byte, 8+rng.Intn(48))
		rng.Read(buf)
		f.Add(buf)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		p := decodeFuzzProblem(data)
		if p == nil {
			return
		}
		if div := compareSparseDense(p); div != "" {
			min := minimizeDivergence(p)
			out, _ := json.Marshal(min) // best effort: context for the failure message
			t.Fatalf("sparse/dense divergence: %s\nminimized problem: %s", div, out)
		}
	})
}

// TestJSONRoundTrip pins the reproducer format: a problem survives
// MarshalJSON → UnmarshalJSON with identical solver behavior.
func TestJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for n := 0; n < 20; n++ {
		p := randomProblem(rng)
		data, err := json.Marshal(p)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		var q Problem
		if err := json.Unmarshal(data, &q); err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		a, err := Solve(p)
		if err != nil {
			t.Fatalf("solve p: %v", err)
		}
		b, err := Solve(&q)
		if err != nil {
			t.Fatalf("solve q: %v", err)
		}
		if a.Status != b.Status || math.Abs(a.Objective-b.Objective) > 1e-9 {
			t.Fatalf("round-trip changed the problem: %v/%g vs %v/%g",
				a.Status, a.Objective, b.Status, b.Objective)
		}
	}
}
