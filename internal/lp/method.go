package lp

// Method selection: the dense tableau (lp.go) and the presolve +
// revised-simplex pipeline (presolve.go, sparse.go) solve the same
// problem class with the same status contract. The dense solver is
// the differential oracle; the sparse pipeline is the production path
// for large interval-indexed instances.

import "fmt"

// Method selects the simplex implementation used by SolveWith.
type Method int

const (
	// MethodDense is the two-phase dense tableau simplex (the
	// original solver, kept as the differential oracle).
	MethodDense Method = iota
	// MethodSparse is presolve + sparse revised simplex with LU/eta
	// basis updates.
	MethodSparse
)

func (m Method) String() string {
	switch m {
	case MethodDense:
		return "dense"
	case MethodSparse:
		return "sparse"
	}
	return fmt.Sprintf("Method(%d)", int(m))
}

// ParseMethod parses a -lpmethod style flag value.
func ParseMethod(s string) (Method, error) {
	switch s {
	case "dense", "tableau":
		return MethodDense, nil
	case "sparse", "revised":
		return MethodSparse, nil
	}
	return MethodDense, fmt.Errorf("lp: unknown method %q (want dense or sparse)", s)
}

// SolveWith dispatches Solve (dense) or SolveSparse by method.
func SolveWith(p *Problem, m Method) (*Solution, error) {
	if m == MethodSparse {
		return SolveSparse(p)
	}
	return Solve(p)
}

// SolveSparse solves p by presolve + revised simplex, reconstructing
// the full primal solution through postsolve. It honors the same
// status contract as Solve; on numerical breakdown in the sparse
// basis handling (rare; counted by the SparseFallbacks metric) it
// transparently falls back to the dense solver so callers never see
// the difference.
func SolveSparse(p *Problem) (*Solution, error) {
	if p == nil || p.numVars == 0 {
		return nil, ErrBadProblem
	}
	solveSpan := pkgObs.SolveSeconds.Start()
	defer func() {
		pkgObs.Solves.Inc()
		pkgObs.SparseSolves.Inc()
		solveSpan.End()
	}()

	psSpan := pkgObs.PresolveSeconds.Start()
	ps, err := Presolve(p)
	psSpan.End()
	if err != nil {
		return nil, err
	}
	recordPresolveStats(ps.Stats())

	if ps.Decided() {
		sol := &Solution{Status: ps.Status(), X: make([]float64, p.numVars)}
		if ps.Status() == Optimal {
			x, perr := ps.Postsolve(nil)
			if perr != nil {
				return nil, perr
			}
			sol.X = x
			sol.Objective = Objective(p, x)
		}
		return sol, nil
	}

	rsol, err := solveRevised(ps.Reduced())
	if err != nil {
		pkgObs.SparseFallbacks.Inc()
		return Solve(p)
	}
	if rsol.Status != Optimal {
		return &Solution{
			Status:     rsol.Status,
			X:          make([]float64, p.numVars),
			Iterations: rsol.Iterations,
		}, nil
	}
	x, err := ps.Postsolve(rsol.X)
	if err != nil {
		return nil, err
	}
	return &Solution{
		Status:     Optimal,
		X:          x,
		Objective:  Objective(p, x),
		Iterations: rsol.Iterations,
	}, nil
}

// recordPresolveStats mirrors one presolve's reduction counts into the
// package metrics.
func recordPresolveStats(s PresolveStats) {
	pkgObs.PresolveEmptyRows.Add(int64(s.EmptyRows))
	pkgObs.PresolveSingletonRows.Add(int64(s.SingletonRows))
	pkgObs.PresolveRedundantRows.Add(int64(s.RedundantRows))
	pkgObs.PresolveForcingRows.Add(int64(s.ForcingRows))
	pkgObs.PresolveFixedVars.Add(int64(s.FixedVars))
	pkgObs.PresolveEmptyCols.Add(int64(s.EmptyCols))
	pkgObs.PresolveFreeSingletons.Add(int64(s.FreeSingletons))
	pkgObs.PresolveTightenedBnds.Add(int64(s.TightenedBnds))
}
