package lp

// JSON (de)serialization of Problem, for the differential harness's
// divergence reproducers (the same role check.Shadow's JSON dumps play
// for the Step pipeline): a failing LP instance is written to disk as
// a standalone JSON file a test or debugging session can reload.

import "encoding/json"

type problemJSON struct {
	NumVars int              `json:"num_vars"`
	Obj     []float64        `json:"obj"`
	Rows    []constraintJSON `json:"rows"`
}

type constraintJSON struct {
	Entries []Entry `json:"entries"`
	Sense   Sense   `json:"sense"`
	RHS     float64 `json:"rhs"`
}

// MarshalJSON encodes the full problem (objective and rows).
func (p *Problem) MarshalJSON() ([]byte, error) {
	pj := problemJSON{NumVars: p.numVars, Obj: p.obj, Rows: make([]constraintJSON, len(p.rows))}
	for i, r := range p.rows {
		entries := r.entries
		if entries == nil {
			entries = []Entry{}
		}
		pj.Rows[i] = constraintJSON{Entries: entries, Sense: r.sense, RHS: r.rhs}
	}
	return json.Marshal(pj)
}

// UnmarshalJSON decodes a problem previously written by MarshalJSON.
func (p *Problem) UnmarshalJSON(data []byte) error {
	var pj problemJSON
	if err := json.Unmarshal(data, &pj); err != nil {
		return err
	}
	if pj.NumVars <= 0 {
		return ErrBadProblem
	}
	np := NewProblem(pj.NumVars)
	for v, c := range pj.Obj {
		if v < pj.NumVars {
			np.SetObjective(v, c)
		}
	}
	for _, r := range pj.Rows {
		for _, e := range r.Entries {
			if e.Var < 0 || e.Var >= pj.NumVars {
				return ErrBadProblem
			}
		}
		np.AddConstraint(r.Entries, r.Sense, r.RHS)
	}
	*p = *np
	return nil
}
