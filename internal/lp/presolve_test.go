package lp

// Presolve reduction tests. The load-bearing property: for EVERY
// reduction, postsolve lifts a solution of the reduced problem to one
// that passes CheckFeasible on the ORIGINAL problem with the same
// objective. Each table case additionally pins which reduction fired
// via the stats counters.

import (
	"math"
	"math/rand"
	"testing"
)

// presolveAndSolve runs the full sparse pipeline by hand — presolve,
// dense-solve the reduced problem, postsolve — so tests can inspect
// each stage.
func presolveAndSolve(t *testing.T, p *Problem) (*Presolved, Status, []float64) {
	t.Helper()
	ps, err := Presolve(p)
	if err != nil {
		t.Fatalf("presolve: %v", err)
	}
	if ps.Decided() {
		if ps.Status() != Optimal {
			return ps, ps.Status(), nil
		}
		x, err := ps.Postsolve(nil)
		if err != nil {
			t.Fatalf("postsolve (decided): %v", err)
		}
		return ps, Optimal, x
	}
	sol, err := Solve(ps.Reduced())
	if err != nil {
		t.Fatalf("solve reduced: %v", err)
	}
	if sol.Status != Optimal {
		return ps, sol.Status, nil
	}
	x, err := ps.Postsolve(sol.X)
	if err != nil {
		t.Fatalf("postsolve: %v", err)
	}
	return ps, Optimal, x
}

// checkAgainstOriginal asserts the postsolved x is feasible on the
// original problem and matches the dense oracle's optimal objective.
func checkAgainstOriginal(t *testing.T, p *Problem, x []float64) {
	t.Helper()
	if err := CheckFeasible(p, x, 1e-6); err != nil {
		t.Fatalf("postsolved solution infeasible on original: %v", err)
	}
	oracle, err := Solve(p)
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}
	if oracle.Status != Optimal {
		t.Fatalf("oracle status = %v, want optimal", oracle.Status)
	}
	got := Objective(p, x)
	if diff := math.Abs(got - oracle.Objective); diff > 1e-6*(1+math.Abs(oracle.Objective)) {
		t.Fatalf("objective after postsolve = %.12g, oracle = %.12g", got, oracle.Objective)
	}
}

func TestPresolveReductions(t *testing.T) {
	cases := []struct {
		name  string
		build func() *Problem
		// wantStatus is the expected final verdict of the pipeline.
		wantStatus Status
		// fired asserts on the stats of the presolve run.
		fired func(t *testing.T, s PresolveStats)
	}{
		{
			name: "empty row redundant",
			build: func() *Problem {
				p := NewProblem(1)
				p.SetObjective(0, 1)
				p.AddConstraint(nil, LE, 5)
				p.AddConstraint([]Entry{{0, 1}}, GE, 2)
				return p
			},
			wantStatus: Optimal,
			fired: func(t *testing.T, s PresolveStats) {
				if s.EmptyRows == 0 {
					t.Errorf("EmptyRows = 0, want > 0 (stats %+v)", s)
				}
			},
		},
		{
			name: "empty row infeasible",
			build: func() *Problem {
				p := NewProblem(1)
				p.AddConstraint(nil, GE, 3)
				return p
			},
			wantStatus: Infeasible,
		},
		{
			name: "empty row infeasible via negative LE",
			build: func() *Problem {
				p := NewProblem(1)
				p.AddConstraint(nil, LE, -2)
				return p
			},
			wantStatus: Infeasible,
		},
		{
			name: "singleton row becomes bound",
			build: func() *Problem {
				// min -x0 s.t. 2·x0 ≤ 6 → x0 = 3.
				p := NewProblem(2)
				p.SetObjective(0, -1)
				p.SetObjective(1, 1)
				p.AddConstraint([]Entry{{0, 2}}, LE, 6)
				p.AddConstraint([]Entry{{0, 1}, {1, 1}}, GE, 1)
				return p
			},
			wantStatus: Optimal,
			fired: func(t *testing.T, s PresolveStats) {
				if s.SingletonRows == 0 {
					t.Errorf("SingletonRows = 0, want > 0 (stats %+v)", s)
				}
			},
		},
		{
			name: "singleton equality fixes variable",
			build: func() *Problem {
				// 3·x0 = 6 fixes x0 = 2; the remaining row loses it.
				p := NewProblem(2)
				p.SetObjective(1, 1)
				p.AddConstraint([]Entry{{0, 3}}, EQ, 6)
				p.AddConstraint([]Entry{{0, 1}, {1, 1}}, GE, 5)
				return p
			},
			wantStatus: Optimal,
			fired: func(t *testing.T, s PresolveStats) {
				if s.FixedVars == 0 {
					t.Errorf("FixedVars = 0, want > 0 (stats %+v)", s)
				}
			},
		},
		{
			name: "contradictory singleton bounds infeasible",
			build: func() *Problem {
				p := NewProblem(1)
				p.AddConstraint([]Entry{{0, 1}}, GE, 4)
				p.AddConstraint([]Entry{{0, 1}}, LE, 1)
				return p
			},
			wantStatus: Infeasible,
		},
		{
			name: "free singleton column slack-out",
			build: func() *Problem {
				// x0 has zero cost and appears only in the GE row with a
				// positive coefficient: it can absorb any residual, so row
				// and column both go.
				p := NewProblem(3)
				p.SetObjective(1, 2)
				p.SetObjective(2, 1)
				p.AddConstraint([]Entry{{0, 1}, {1, 1}}, GE, 2)
				p.AddConstraint([]Entry{{1, 1}, {2, 1}}, GE, 3)
				return p
			},
			wantStatus: Optimal,
			fired: func(t *testing.T, s PresolveStats) {
				if s.FreeSingletons == 0 {
					t.Errorf("FreeSingletons = 0, want > 0 (stats %+v)", s)
				}
			},
		},
		{
			name: "free singleton column equality substitution",
			build: func() *Problem {
				// x0 appears only in x0 + x1 + x2 = 10 with x1 ≤ 2 and
				// x2 ≤ 3 enforced, so x0 ∈ [5, 10] stays in range and is
				// solved out, carrying its cost into x1, x2.
				p := NewProblem(3)
				p.SetObjective(0, 1)
				p.SetObjective(1, -1)
				p.SetObjective(2, 2)
				p.AddConstraint([]Entry{{0, 1}, {1, 1}, {2, 1}}, EQ, 10)
				p.AddConstraint([]Entry{{1, 1}}, LE, 2)
				p.AddConstraint([]Entry{{2, 1}}, LE, 3)
				return p
			},
			wantStatus: Optimal,
			fired: func(t *testing.T, s PresolveStats) {
				if s.FreeSingletons == 0 {
					t.Errorf("FreeSingletons = 0, want > 0 (stats %+v)", s)
				}
			},
		},
		{
			name: "forcing row fixes members",
			build: func() *Problem {
				// x0 + x1 ≤ 0 with x ≥ 0 forces x0 = x1 = 0.
				p := NewProblem(3)
				p.SetObjective(0, -5)
				p.SetObjective(1, -5)
				p.SetObjective(2, 1)
				p.AddConstraint([]Entry{{0, 1}, {1, 1}}, LE, 0)
				p.AddConstraint([]Entry{{0, 1}, {2, 1}}, GE, 2)
				return p
			},
			wantStatus: Optimal,
			fired: func(t *testing.T, s PresolveStats) {
				if s.ForcingRows == 0 {
					t.Errorf("ForcingRows = 0, want > 0 (stats %+v)", s)
				}
			},
		},
		{
			name: "bound tightening detects infeasibility",
			build: func() *Problem {
				// x0 + x1 ≤ 1 caps both at 1; x0 + 2·x1 ≥ 4 then cannot
				// be met (max activity 3).
				p := NewProblem(2)
				p.AddConstraint([]Entry{{0, 1}, {1, 1}}, LE, 1)
				p.AddConstraint([]Entry{{0, 1}, {1, 2}}, GE, 4)
				return p
			},
			wantStatus: Infeasible,
		},
		{
			name: "redundant row dropped under enforced bounds",
			build: func() *Problem {
				// x0 ≤ 2 and x1 ≤ 3 are enforced singleton bounds, so
				// x0 + x1 ≤ 100 can never bind and is dropped.
				p := NewProblem(2)
				p.SetObjective(0, -1)
				p.SetObjective(1, -1)
				p.AddConstraint([]Entry{{0, 1}}, LE, 2)
				p.AddConstraint([]Entry{{1, 1}}, LE, 3)
				p.AddConstraint([]Entry{{0, 1}, {1, 1}}, LE, 100)
				return p
			},
			wantStatus: Optimal,
			fired: func(t *testing.T, s PresolveStats) {
				if s.RedundantRows == 0 {
					t.Errorf("RedundantRows = 0, want > 0 (stats %+v)", s)
				}
			},
		},
		{
			name: "all presolved away",
			build: func() *Problem {
				// Both variables fixed by equalities; nothing remains.
				p := NewProblem(2)
				p.SetObjective(0, 3)
				p.SetObjective(1, -2)
				p.AddConstraint([]Entry{{0, 1}}, EQ, 4)
				p.AddConstraint([]Entry{{1, 2}}, EQ, 6)
				return p
			},
			wantStatus: Optimal,
			fired: func(t *testing.T, s PresolveStats) {
				if s.FixedVars < 2 {
					t.Errorf("FixedVars = %d, want 2 (stats %+v)", s.FixedVars, s)
				}
			},
		},
		{
			name: "no rows at all",
			build: func() *Problem {
				// Empty columns: non-negative costs pin x = 0 outright.
				p := NewProblem(3)
				p.SetObjective(0, 1)
				p.SetObjective(2, 2)
				return p
			},
			wantStatus: Optimal,
			fired: func(t *testing.T, s PresolveStats) {
				if s.EmptyCols == 0 {
					t.Errorf("EmptyCols = 0, want > 0 (stats %+v)", s)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := tc.build()
			ps, status, x := presolveAndSolve(t, p)
			if status != tc.wantStatus {
				t.Fatalf("status = %v, want %v (stats %+v)", status, tc.wantStatus, ps.Stats())
			}
			if tc.fired != nil {
				tc.fired(t, ps.Stats())
			}
			if status == Optimal {
				checkAgainstOriginal(t, p, x)
			} else {
				// The oracle must agree the problem has no optimum.
				oracle, err := Solve(p)
				if err != nil {
					t.Fatalf("oracle: %v", err)
				}
				if oracle.Status != status {
					t.Fatalf("oracle status = %v, presolve pipeline = %v", oracle.Status, status)
				}
			}
		})
	}
}

// TestPresolveEmptyColumnUnboundedStaysOpen pins the status contract:
// presolve must never decide Unbounded (that requires proof of
// feasibility), so a negative-cost empty column survives into the
// reduced problem and the simplex delivers the verdict.
func TestPresolveEmptyColumnUnboundedStaysOpen(t *testing.T) {
	p := NewProblem(2)
	p.SetObjective(0, -1) // empty column, no upper bound: unbounded ray
	p.SetObjective(1, 1)
	p.AddConstraint([]Entry{{1, 1}}, GE, 1)
	ps, err := Presolve(p)
	if err != nil {
		t.Fatalf("presolve: %v", err)
	}
	if ps.Decided() {
		t.Fatalf("presolve decided %v; the unbounded verdict belongs to the simplex", ps.Status())
	}
	sol, err := SolveSparse(p)
	if err != nil {
		t.Fatalf("solve sparse: %v", err)
	}
	if sol.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", sol.Status)
	}
	// And when the same column's constraint set is infeasible, the
	// verdict must be Infeasible, not Unbounded.
	q := NewProblem(2)
	q.SetObjective(0, -1)
	q.AddConstraint([]Entry{{1, 1}}, GE, 1)
	q.AddConstraint([]Entry{{1, 1}}, LE, 0)
	sol, err = SolveSparse(q)
	if err != nil {
		t.Fatalf("solve sparse: %v", err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible (infeasibility outranks the open ray)", sol.Status)
	}
}

// TestPresolvePostsolveProperty is the randomized form of the
// per-reduction contract: on seeded random problems, whatever chain of
// reductions fires, the postsolved solution is feasible on the
// original problem with the oracle's objective.
func TestPresolvePostsolveProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for n := 0; n < 300; n++ {
		p := randomProblem(rng)
		oracle, err := Solve(p)
		if err != nil {
			t.Fatalf("instance %d: oracle: %v", n, err)
		}
		ps, status, x := presolveAndSolve(t, p)
		if oracle.Status == IterLimit || status == IterLimit {
			continue
		}
		if status != oracle.Status {
			t.Fatalf("instance %d: pipeline status %v, oracle %v (stats %+v)",
				n, status, oracle.Status, ps.Stats())
		}
		if status != Optimal {
			continue
		}
		if err := CheckFeasible(p, x, 1e-5); err != nil {
			t.Fatalf("instance %d: postsolved solution infeasible: %v", n, err)
		}
		got := Objective(p, x)
		if diff := math.Abs(got - oracle.Objective); diff > 1e-6*(1+math.Abs(oracle.Objective)) {
			t.Fatalf("instance %d: objective %.12g, oracle %.12g", n, got, oracle.Objective)
		}
	}
}

// TestPresolveStatsTotal keeps the aggregate helper honest.
func TestPresolveStatsTotal(t *testing.T) {
	s := PresolveStats{EmptyRows: 1, SingletonRows: 2, RedundantRows: 3, ForcingRows: 4,
		FixedVars: 5, EmptyCols: 6, FreeSingletons: 7, TightenedBnds: 100, Passes: 9}
	if got := s.Total(); got != 28 {
		t.Fatalf("Total = %d, want 28 (structural reductions only)", got)
	}
}

// TestPresolveRejectsBadInput mirrors Solve's ErrBadProblem contract.
func TestPresolveRejectsBadInput(t *testing.T) {
	if _, err := Presolve(nil); err == nil {
		t.Fatal("Presolve(nil) succeeded")
	}
}
