package lp

// Presolve shrinks an LP before the simplex sees it. The
// interval-indexed coflow relaxations are the target workload: their
// constraint matrices are mostly unit entries (convexity rows) and
// cumulative load rows whose bounds make large parts of the problem
// decidable by inspection. The reductions implemented here are the
// classic primal ones:
//
//   - empty rows (dropped when satisfiable, else infeasible);
//   - singleton rows, converted into variable bounds;
//   - fixed variables (lower bound meets upper bound), substituted out;
//   - empty columns, fixed at their best enforced bound;
//   - free column singletons, solved out of their only row;
//   - bound tightening from row activity ranges, including redundant
//     and forcing rows.
//
// Every reduction pushes a record onto a postsolve stack so the full
// primal solution of the ORIGINAL problem can be reconstructed from a
// solution of the reduced one. Postsolve correctness is the contract
// the property tests in presolve_test.go pin: for every reduction,
// postsolve output passes CheckFeasible on the original problem with
// the original objective value.
//
// Bookkeeping distinguishes two kinds of bounds:
//
//   - enforced bounds (loRow/upRow) come from the original x ≥ 0, from
//     singleton rows, or are guaranteed by the reduced problem's
//     construction (lower bounds via variable shifting, upper bounds
//     via re-emitted singleton rows). Dropping a row as redundant is
//     only valid against enforced bounds — the row must stay satisfied
//     by every solution of the REDUCED problem, not just solutions
//     that happen to respect implied bounds.
//   - implied bounds (lo/up) additionally fold in activity-based
//     tightening. They are valid facts about every feasible solution
//     of the original problem, so they may detect infeasibility, fix
//     variables and force rows, but they are never relied upon to drop
//     constraints.

import (
	"fmt"
	"math"
)

// PresolveStats counts the reductions applied, for reporting through
// the obs layer and the -v paths of the CLIs.
type PresolveStats struct {
	EmptyRows      int // satisfiable rows with no live entries, dropped
	SingletonRows  int // rows converted to variable bounds
	RedundantRows  int // rows that cannot bind under enforced bounds
	ForcingRows    int // rows whose activity range pins every member
	FixedVars      int // variables substituted out at a fixed value
	EmptyCols      int // columns with no live entries, fixed at a bound
	FreeSingletons int // column singletons solved out of their row
	TightenedBnds  int // implied-bound improvements from row activity
	Passes         int // full reduction sweeps until fixpoint
}

// Total returns the number of structural reductions (bound tightenings
// and passes excluded).
func (s *PresolveStats) Total() int {
	return s.EmptyRows + s.SingletonRows + s.RedundantRows + s.ForcingRows +
		s.FixedVars + s.EmptyCols + s.FreeSingletons
}

type psKind int

const (
	psFix           psKind = iota // x[v] = val
	psFreeSingleton               // x[v] solved from its (dropped) row
)

// psAction is one postsolve record. Records are replayed LIFO: a
// record's Rest entries reference variables that were still live when
// the reduction fired, so by replay time their values are known.
type psAction struct {
	kind  psKind
	v     int
	val   float64 // psFix: the fixed value
	coef  float64 // psFreeSingleton: the column's coefficient in the row
	rhs   float64 // psFreeSingleton: row rhs at reduction time
	sense Sense   // psFreeSingleton: row sense
	lo    float64 // psFreeSingleton: enforced lower bound of v
	rest  []Entry // psFreeSingleton: the row's other live entries
}

// psRow is one mutable constraint row during presolve.
type psRow struct {
	entries []Entry
	sense   Sense
	rhs     float64
	dead    bool
}

// Presolved is the outcome of Presolve: either a final status (the
// problem was decided outright) or a strictly smaller reduced problem
// plus the bookkeeping to lift its solutions back.
type Presolved struct {
	orig  *Problem
	stats PresolveStats

	// status is the presolve verdict: Optimal when the whole problem
	// was reduced away, Infeasible when a contradiction surfaced, or
	// needsSolve when a reduced problem remains.
	status  Status
	decided bool

	reduced *Problem
	// newOf[v] is v's column in the reduced problem, -1 if eliminated.
	newOf []int
	// shift[v] is the enforced lower bound added back on postsolve
	// (reduced variables are shifted so their lower bound is 0).
	shift []float64
	// fixVal[v] is meaningful when newOf[v] == -1 and no stack record
	// covers v (survivor map fallback is never needed; kept for safety).
	stack  []psAction
	offset float64 // objective constant accumulated by substitutions
}

// Stats returns the per-reduction counts.
func (ps *Presolved) Stats() PresolveStats { return ps.stats }

// Decided reports whether presolve settled the problem outright; when
// true, Status is the final verdict and Reduced returns nil.
func (ps *Presolved) Decided() bool { return ps.decided }

// Status returns the presolve verdict; only meaningful when Decided.
func (ps *Presolved) Status() Status { return ps.status }

// Reduced returns the reduced problem, or nil when the problem was
// decided outright.
func (ps *Presolved) Reduced() *Problem { return ps.reduced }

// Offset is the objective constant removed by substitutions: the
// original objective equals the reduced objective plus Offset.
func (ps *Presolved) Offset() float64 { return ps.offset }

const (
	psTol = 1e-9 // zero/coincidence tolerance on bounds and coefficients
	// psFeasTol guards every Infeasible verdict. It matches the dense
	// solver's epsFeas so presolve never declares infeasible a problem
	// the oracle would accept as feasible within tolerance.
	psFeasTol = 1e-6
	psInf     = math.MaxFloat64
)

// Presolve runs the reduction loop on p. The input problem is not
// modified. An error is returned only for invalid input.
func Presolve(p *Problem) (*Presolved, error) {
	if p == nil || p.numVars == 0 {
		return nil, ErrBadProblem
	}
	w := newPresolver(p)
	ps := w.run()
	return ps, nil
}

// Postsolve lifts a solution of the reduced problem back to a full
// solution of the original problem. xReduced must have Reduced's
// variable count (nil when the problem was decided by presolve). The
// result has the original problem's variable count.
func (ps *Presolved) Postsolve(xReduced []float64) ([]float64, error) {
	if ps.reduced != nil {
		if len(xReduced) != ps.reduced.numVars {
			return nil, fmt.Errorf("lp: postsolve got %d vars, reduced problem has %d",
				len(xReduced), ps.reduced.numVars)
		}
	} else if len(xReduced) != 0 {
		return nil, fmt.Errorf("lp: postsolve got %d vars for a decided problem", len(xReduced))
	}
	x := make([]float64, ps.orig.numVars)
	for v, nv := range ps.newOf {
		if nv >= 0 {
			x[v] = xReduced[nv] + ps.shift[v]
		}
	}
	for i := len(ps.stack) - 1; i >= 0; i-- {
		a := &ps.stack[i]
		switch a.kind {
		case psFix:
			x[a.v] = a.val
		case psFreeSingleton:
			rest := 0.0
			for _, e := range a.rest {
				rest += e.Coef * x[e.Var]
			}
			val := (a.rhs - rest) / a.coef
			if a.sense != EQ && val < a.lo {
				// Inequality slack-out: the row only needs x ≥ val (or the
				// bound, whichever is larger); take the cheapest point.
				val = a.lo
			}
			x[a.v] = val
		}
	}
	return x, nil
}

// presolver is the mutable working state of one Presolve call.
type presolver struct {
	orig *Problem
	n    int
	obj  []float64
	rows []psRow

	lo, up       []float64 // implied bounds
	loRow, upRow []float64 // enforced bounds (x ≥ 0 plus singleton rows)
	colDead      []bool
	// colRows[v] lists candidate row indices containing v; rebuilt
	// lazily (dead rows and removed entries are skipped on read).
	colRows [][]int

	stack  []psAction
	offset float64
	stats  PresolveStats

	decided bool
	status  Status
}

func newPresolver(p *Problem) *presolver {
	w := &presolver{
		orig:    p,
		n:       p.numVars,
		obj:     append([]float64(nil), p.obj...),
		rows:    make([]psRow, len(p.rows)),
		lo:      make([]float64, p.numVars),
		up:      make([]float64, p.numVars),
		loRow:   make([]float64, p.numVars),
		upRow:   make([]float64, p.numVars),
		colDead: make([]bool, p.numVars),
		colRows: make([][]int, p.numVars),
	}
	for v := 0; v < p.numVars; v++ {
		w.up[v] = psInf
		w.upRow[v] = psInf
	}
	for i, r := range p.rows {
		// Coalesce duplicate entries and drop zeros so entry counts mean
		// what the reductions think they mean.
		acc := map[int]float64{}
		order := make([]int, 0, len(r.entries))
		for _, e := range r.entries {
			if _, seen := acc[e.Var]; !seen {
				order = append(order, e.Var)
			}
			acc[e.Var] += e.Coef
		}
		entries := make([]Entry, 0, len(order))
		for _, v := range order {
			if c := acc[v]; math.Abs(c) > psTol {
				entries = append(entries, Entry{Var: v, Coef: c})
				w.colRows[v] = append(w.colRows[v], i)
			}
		}
		w.rows[i] = psRow{entries: entries, sense: r.sense, rhs: r.rhs}
	}
	return w
}

// run drives reduction sweeps to a fixpoint and extracts the result.
func (w *presolver) run() *Presolved {
	const maxPasses = 32
	for pass := 0; pass < maxPasses && !w.decided; pass++ {
		w.stats.Passes++
		changed := w.sweep()
		if !changed {
			break
		}
	}
	return w.extract()
}

// sweep applies every reduction family once; reports whether anything
// changed.
func (w *presolver) sweep() bool {
	changed := false
	for i := range w.rows {
		if w.decided {
			return changed
		}
		if w.rows[i].dead {
			continue
		}
		if w.reduceRow(i) {
			changed = true
		}
	}
	for v := 0; v < w.n && !w.decided; v++ {
		if w.colDead[v] {
			continue
		}
		if w.reduceColumn(v) {
			changed = true
		}
	}
	return changed
}

// reduceRow applies the row-shape reductions to live row i.
func (w *presolver) reduceRow(i int) bool {
	r := &w.rows[i]
	switch len(r.entries) {
	case 0:
		return w.emptyRow(i)
	case 1:
		return w.singletonRow(i)
	}
	return w.activityRow(i)
}

// emptyRow decides a row with no live entries: 0 (sense) rhs. The
// satisfiability margin is psFeasTol-scaled: the dense oracle's
// phase 1 tolerates residuals up to epsFeas, so an empty row violated
// by less than that must not be ruled infeasible here.
func (w *presolver) emptyRow(i int) bool {
	r := &w.rows[i]
	tol := psFeasTol * (1 + math.Abs(r.rhs))
	ok := true
	switch r.sense {
	case LE:
		ok = r.rhs >= -tol
	case GE:
		ok = r.rhs <= tol
	case EQ:
		ok = math.Abs(r.rhs) <= tol
	}
	if !ok {
		w.decide(Infeasible)
		return true
	}
	r.dead = true
	w.stats.EmptyRows++
	return true
}

// singletonRow converts a·x (sense) b into bounds on x and drops the
// row. The derived bound is enforced: it replaces a real constraint,
// so extraction re-emits it (upper bounds) or shifts it away (lower
// bounds).
func (w *presolver) singletonRow(i int) bool {
	r := &w.rows[i]
	e := r.entries[0]
	a, v, b := e.Coef, e.Var, r.rhs
	bound := b / a
	lower := false // does the row impose a lower bound on x?
	switch r.sense {
	case LE:
		lower = a < 0
	case GE:
		lower = a > 0
	case EQ:
		w.tightenEnforced(v, bound, true)
		w.tightenEnforced(v, bound, false)
		r.dead = true
		w.stats.SingletonRows++
		w.checkBounds(v)
		return true
	}
	w.tightenEnforced(v, bound, lower)
	r.dead = true
	w.stats.SingletonRows++
	w.checkBounds(v)
	return true
}

// tightenEnforced installs an enforced (and therefore also implied)
// bound on v.
func (w *presolver) tightenEnforced(v int, bound float64, lower bool) {
	if lower {
		if bound > w.loRow[v] {
			w.loRow[v] = bound
		}
		if bound > w.lo[v] {
			w.lo[v] = bound
		}
	} else {
		if bound < w.upRow[v] {
			w.upRow[v] = bound
		}
		if bound < w.up[v] {
			w.up[v] = bound
		}
	}
}

// checkBounds fires the fixed-variable and infeasible-bounds rules for
// v after a bound change.
func (w *presolver) checkBounds(v int) {
	if w.colDead[v] || w.decided {
		return
	}
	// The infeasibility margin mirrors the dense solver's epsFeas
	// contract: a contradiction smaller than what phase 1 would
	// tolerate must not flip the status to Infeasible.
	if w.lo[v] > w.up[v]+psFeasTol*(1+math.Abs(w.lo[v])) {
		w.decide(Infeasible)
		return
	}
	if w.up[v]-w.lo[v] <= psTol {
		w.fixVar(v, w.lo[v])
		w.stats.FixedVars++
	}
}

// fixVar substitutes x[v] = val into every live row and the objective,
// and records the postsolve action.
func (w *presolver) fixVar(v int, val float64) {
	for _, i := range w.colRows[v] {
		r := &w.rows[i]
		if r.dead {
			continue
		}
		for k := range r.entries {
			if r.entries[k].Var == v {
				r.rhs -= r.entries[k].Coef * val
				r.entries = append(r.entries[:k], r.entries[k+1:]...)
				break
			}
		}
	}
	w.offset += w.obj[v] * val
	w.obj[v] = 0
	w.colDead[v] = true
	w.stack = append(w.stack, psAction{kind: psFix, v: v, val: val})
}

// activityRow runs the activity-range reductions on a multi-entry row:
// infeasibility, redundancy (enforced bounds), forcing, and implied
// bound tightening.
func (w *presolver) activityRow(i int) bool {
	r := &w.rows[i]
	minImp, maxImp := w.activity(r, w.lo, w.up)
	minEnf, maxEnf := w.activity(r, w.loRow, w.upRow)
	feasTol := psFeasTol * (1 + math.Abs(r.rhs))

	switch r.sense {
	case LE:
		if minImp > r.rhs+feasTol {
			w.decide(Infeasible)
			return true
		}
		if maxEnf <= r.rhs+psTol { // redundant under enforced bounds
			r.dead = true
			w.stats.RedundantRows++
			return true
		}
		if minImp >= r.rhs-psTol && minImp > -psInf {
			return w.forceRow(i, true)
		}
	case GE:
		if maxImp < r.rhs-feasTol {
			w.decide(Infeasible)
			return true
		}
		if minEnf >= r.rhs-psTol {
			r.dead = true
			w.stats.RedundantRows++
			return true
		}
		if maxImp <= r.rhs+psTol && maxImp < psInf {
			return w.forceRow(i, false)
		}
	case EQ:
		if minImp > r.rhs+feasTol || maxImp < r.rhs-feasTol {
			w.decide(Infeasible)
			return true
		}
		if minImp >= r.rhs-psTol && minImp > -psInf {
			return w.forceRow(i, true)
		}
		if maxImp <= r.rhs+psTol && maxImp < psInf {
			return w.forceRow(i, false)
		}
	}
	return w.tightenFromRow(i, minImp, maxImp)
}

// activity returns the row's activity range under the given bounds.
// Infinite contributions saturate to ±psInf.
func (w *presolver) activity(r *psRow, lo, up []float64) (min, max float64) {
	for _, e := range r.entries {
		if e.Coef > 0 {
			min += e.Coef * lo[e.Var]
			if up[e.Var] >= psInf {
				max = psInf
			} else if max < psInf {
				max += e.Coef * up[e.Var]
			}
		} else {
			max -= e.Coef * lo[e.Var]
			if up[e.Var] >= psInf {
				min = -psInf
			} else if min > -psInf {
				min += e.Coef * up[e.Var]
			}
		}
	}
	return min, max
}

// forceRow fires when a row's implied activity range degenerates to
// its rhs: every member variable must sit at the bound that built that
// extreme, so fix them all (atMin: the minimum activity equals rhs).
func (w *presolver) forceRow(i int, atMin bool) bool {
	r := &w.rows[i]
	// Snapshot: fixVar edits r.entries while we iterate.
	entries := append([]Entry(nil), r.entries...)
	for _, e := range entries {
		if w.colDead[e.Var] || w.decided {
			continue
		}
		atLo := (e.Coef > 0) == atMin
		if atLo {
			w.fixVar(e.Var, w.lo[e.Var])
		} else {
			w.fixVar(e.Var, w.up[e.Var])
		}
		w.stats.FixedVars++
	}
	w.stats.ForcingRows++
	// The row is now empty; the empty-row rule retires it (and double-
	// checks the residual rhs) on this same sweep.
	return true
}

// tightenFromRow derives implied variable bounds from row i's activity
// range. Returns whether any bound moved. The function bails out after
// the first successful tightening: a moved bound (and any variable fix
// it triggers) invalidates the precomputed activity range, and fixVar
// edits row entry slices, so the caller's next sweep recomputes from
// fresh state instead of continuing on stale values.
func (w *presolver) tightenFromRow(i int, minImp, maxImp float64) bool {
	r := &w.rows[i]
	changed := false
	// x_j's own contribution is removed from the row activity to get
	// the residual range the other variables occupy.
	for _, e := range r.entries {
		v, a := e.Var, e.Coef
		if w.colDead[v] {
			continue
		}
		if r.sense == LE || r.sense == EQ {
			// Σ a_j x_j ≤ rhs → a·x ≤ rhs − minRest.
			minRest := residualMin(minImp, a, w.lo[v], w.up[v])
			if minRest > -psInf {
				if a > 0 {
					if nb := (r.rhs - minRest) / a; nb < w.up[v]-1e-7 {
						w.up[v] = nb
						changed = true
						w.stats.TightenedBnds++
					}
				} else {
					if nb := (r.rhs - minRest) / a; nb > w.lo[v]+1e-7 {
						w.lo[v] = nb
						changed = true
						w.stats.TightenedBnds++
					}
				}
			}
		}
		if r.sense == GE || r.sense == EQ {
			// Σ a_j x_j ≥ rhs → a·x ≥ rhs − maxRest.
			maxRest := residualMax(maxImp, a, w.lo[v], w.up[v])
			if maxRest < psInf {
				if a > 0 {
					if nb := (r.rhs - maxRest) / a; nb > w.lo[v]+1e-7 {
						w.lo[v] = nb
						changed = true
						w.stats.TightenedBnds++
					}
				} else {
					if nb := (r.rhs - maxRest) / a; nb < w.up[v]-1e-7 {
						w.up[v] = nb
						changed = true
						w.stats.TightenedBnds++
					}
				}
			}
		}
		if changed {
			w.checkBounds(v)
			return true
		}
	}
	return changed
}

// residualMin removes a·x's contribution from the row's minimum
// activity; -psInf when the residual is unbounded below.
func residualMin(minAct, a, lo, up float64) float64 {
	if minAct <= -psInf {
		return -psInf
	}
	if a > 0 {
		return minAct - a*lo
	}
	if up >= psInf {
		return -psInf
	}
	return minAct - a*up
}

// residualMax removes a·x's contribution from the row's maximum
// activity; psInf when the residual is unbounded above.
func residualMax(maxAct, a, lo, up float64) float64 {
	if maxAct >= psInf {
		return psInf
	}
	if a > 0 {
		if up >= psInf {
			return psInf
		}
		return maxAct - a*up
	}
	return maxAct - a*lo
}

// reduceColumn applies the column-shape reductions to live column v.
func (w *presolver) reduceColumn(v int) bool {
	// Count live appearances.
	liveRow := -1
	count := 0
	for _, i := range w.colRows[v] {
		r := &w.rows[i]
		if r.dead {
			continue
		}
		found := false
		for _, e := range r.entries {
			if e.Var == v {
				found = true
				break
			}
		}
		if found {
			count++
			liveRow = i
			if count > 1 {
				return false
			}
		}
	}
	if count == 0 {
		return w.emptyColumn(v)
	}
	return w.freeSingletonColumn(v, liveRow)
}

// emptyColumn fixes a variable that appears in no live row at its best
// enforced bound. A negative-cost column with no enforced upper bound
// is left alone: the simplex proves unboundedness only after phase 1
// establishes feasibility, matching the dense solver's status
// contract.
func (w *presolver) emptyColumn(v int) bool {
	c := w.obj[v]
	if c < -psTol {
		if w.upRow[v] >= psInf {
			return false
		}
		w.fixVar(v, w.upRow[v])
	} else {
		w.fixVar(v, w.loRow[v])
	}
	w.stats.EmptyCols++
	return true
}

// freeSingletonColumn tries to solve column v out of its only live row
// i. Safe cases only:
//
//   - zero cost, and the row direction lets x absorb any residual
//     (LE with a<0, GE with a>0) with no enforced upper bound; or
//   - an equality row where the enforced activity range of the other
//     variables guarantees the solved value lands inside v's enforced
//     bounds (costs are then substituted through the row).
func (w *presolver) freeSingletonColumn(v, i int) bool {
	r := &w.rows[i]
	var a float64
	rest := make([]Entry, 0, len(r.entries)-1)
	for _, e := range r.entries {
		if e.Var == v {
			a = e.Coef
		} else {
			rest = append(rest, e)
		}
	}
	c := w.obj[v]

	slackOut := w.upRow[v] >= psInf && math.Abs(c) <= psTol &&
		((r.sense == LE && a < 0) || (r.sense == GE && a > 0))
	if slackOut {
		w.retireFreeSingleton(v, i, a, rest)
		return true
	}

	if r.sense != EQ {
		return false
	}
	// Solved value: x = (rhs − rest)/a. Bound the rest activity with
	// ENFORCED bounds — the reconstruction must stay in range for every
	// solution of the reduced problem.
	restRow := psRow{entries: rest}
	minR, maxR := w.activity(&restRow, w.loRow, w.upRow)
	if minR <= -psInf || maxR >= psInf {
		return false
	}
	v1 := (r.rhs - minR) / a
	v2 := (r.rhs - maxR) / a
	if v1 > v2 {
		v1, v2 = v2, v1
	}
	if v1 < w.loRow[v]-psTol || v2 > w.upRow[v]+psTol {
		return false
	}
	// Substitute the column through the objective: c·x = c/a·(rhs − rest).
	if math.Abs(c) > psTol {
		f := c / a
		w.offset += f * r.rhs
		for _, e := range rest {
			w.obj[e.Var] -= f * e.Coef
		}
		w.obj[v] = 0
	}
	w.retireFreeSingleton(v, i, a, rest)
	return true
}

// retireFreeSingleton drops row i and column v, recording how to
// recompute x[v] from the row's other variables.
func (w *presolver) retireFreeSingleton(v, i int, a float64, rest []Entry) {
	r := &w.rows[i]
	w.stack = append(w.stack, psAction{
		kind:  psFreeSingleton,
		v:     v,
		coef:  a,
		rhs:   r.rhs,
		sense: r.sense,
		lo:    w.loRow[v],
		rest:  append([]Entry(nil), rest...),
	})
	r.dead = true
	w.colDead[v] = true
	w.stats.FreeSingletons++
}

func (w *presolver) decide(s Status) {
	w.decided = true
	w.status = s
}

// extract assembles the Presolved result: either a decided status or
// the reduced problem (survivor columns shifted to a zero lower bound,
// enforced upper bounds re-emitted as singleton rows).
func (w *presolver) extract() *Presolved {
	ps := &Presolved{
		orig:   w.orig,
		stats:  w.stats,
		stack:  w.stack,
		offset: w.offset,
		newOf:  make([]int, w.n),
		shift:  make([]float64, w.n),
	}
	if w.decided {
		ps.decided = true
		ps.status = w.status
		for v := range ps.newOf {
			ps.newOf[v] = -1
		}
		return ps
	}

	numNew := 0
	for v := 0; v < w.n; v++ {
		if w.colDead[v] {
			ps.newOf[v] = -1
			continue
		}
		ps.newOf[v] = numNew
		// Shift by the enforced lower bound so the reduced variable is
		// plain x' ≥ 0; the shift is enforced by construction.
		ps.shift[v] = w.loRow[v]
		numNew++
	}
	if numNew == 0 {
		// Everything was presolved away; any remaining live rows are
		// empty and were validated by the empty-row rule (or will be
		// now).
		for i := range w.rows {
			if w.rows[i].dead {
				continue
			}
			if len(w.rows[i].entries) != 0 {
				// Unreachable: a live entry implies a live column.
				panic("lp: presolve: live entries with no live columns")
			}
			w.emptyRow(i)
			if w.decided {
				ps.decided = true
				ps.status = w.status
				return ps
			}
		}
		ps.decided = true
		ps.status = Optimal
		return ps
	}

	red := NewProblem(numNew)
	for v := 0; v < w.n; v++ {
		nv := ps.newOf[v]
		if nv < 0 {
			continue
		}
		if c := w.obj[v]; c != 0 {
			red.SetObjective(nv, c)
			ps.offset += c * ps.shift[v]
		}
	}
	var entries []Entry
	for i := range w.rows {
		r := &w.rows[i]
		if r.dead {
			continue
		}
		entries = entries[:0]
		rhs := r.rhs
		for _, e := range r.entries {
			nv := ps.newOf[e.Var]
			if nv < 0 {
				// Unreachable: dead columns have no live entries.
				continue
			}
			entries = append(entries, Entry{Var: nv, Coef: e.Coef})
			rhs -= e.Coef * ps.shift[e.Var]
		}
		red.AddConstraint(entries, r.sense, rhs)
	}
	// Re-emit enforced upper bounds that no longer have a carrying row.
	for v := 0; v < w.n; v++ {
		nv := ps.newOf[v]
		if nv < 0 || w.upRow[v] >= psInf {
			continue
		}
		red.AddConstraint([]Entry{{Var: nv, Coef: 1}}, LE, w.upRow[v]-ps.shift[v])
	}
	ps.reduced = red
	return ps
}
