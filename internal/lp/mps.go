package lp

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WriteMPS serializes the problem in (free-form) MPS format so it can
// be cross-checked with external LP solvers. Variables are named x0,
// x1, …; constraint rows c0, c1, …; the objective row is COST. All
// variables carry the format's default bounds (x ≥ 0), matching this
// package's model.
func WriteMPS(w io.Writer, p *Problem, name string) error {
	if p == nil {
		return ErrBadProblem
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "NAME          %s\n", name)
	fmt.Fprintln(bw, "ROWS")
	fmt.Fprintln(bw, " N  COST")
	for i, r := range p.rows {
		var tag string
		switch r.sense {
		case LE:
			tag = "L"
		case GE:
			tag = "G"
		case EQ:
			tag = "E"
		}
		fmt.Fprintf(bw, " %s  c%d\n", tag, i)
	}

	// COLUMNS is column-major: gather per-variable coefficients.
	type colEntry struct {
		row  string
		coef float64
	}
	cols := make([][]colEntry, p.numVars)
	for v, c := range p.obj {
		if c != 0 {
			cols[v] = append(cols[v], colEntry{"COST", c})
		}
	}
	for i, r := range p.rows {
		acc := map[int]float64{}
		for _, e := range r.entries {
			acc[e.Var] += e.Coef
		}
		vars := make([]int, 0, len(acc))
		for v := range acc {
			vars = append(vars, v)
		}
		sort.Ints(vars)
		for _, v := range vars {
			if acc[v] != 0 {
				cols[v] = append(cols[v], colEntry{fmt.Sprintf("c%d", i), acc[v]})
			}
		}
	}
	fmt.Fprintln(bw, "COLUMNS")
	for v, entries := range cols {
		for _, e := range entries {
			fmt.Fprintf(bw, "    x%-8d %-10s %.17g\n", v, e.row, e.coef)
		}
	}
	fmt.Fprintln(bw, "RHS")
	for i, r := range p.rows {
		if r.rhs != 0 {
			fmt.Fprintf(bw, "    RHS       c%-8d %.17g\n", i, r.rhs)
		}
	}
	fmt.Fprintln(bw, "ENDATA")
	return bw.Flush()
}

// ReadMPS parses the free-form MPS subset emitted by WriteMPS (N/L/G/E
// rows, COLUMNS, RHS, ENDATA; default bounds). Variable and row names
// may be arbitrary identifiers; variables are numbered in order of
// first appearance in COLUMNS.
func ReadMPS(r io.Reader) (*Problem, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)

	type rowInfo struct {
		sense Sense
		objct bool
	}
	rowsByName := map[string]*rowInfo{}
	var rowOrder []string
	varIdx := map[string]int{}
	var varOrder []string
	type coefKey struct {
		row string
		v   int
	}
	coefs := map[coefKey]float64{}
	rhs := map[string]float64{}
	objName := ""

	section := ""
	for sc.Scan() {
		line := strings.TrimRight(sc.Text(), " \t\r")
		if line == "" || strings.HasPrefix(line, "*") {
			continue
		}
		if !strings.HasPrefix(line, " ") && !strings.HasPrefix(line, "\t") {
			fields := strings.Fields(line)
			section = fields[0]
			if section == "ENDATA" {
				break
			}
			continue
		}
		fields := strings.Fields(line)
		switch section {
		case "ROWS":
			if len(fields) != 2 {
				return nil, fmt.Errorf("lp: bad ROWS line %q", line)
			}
			info := &rowInfo{}
			switch fields[0] {
			case "N":
				info.objct = true
				if objName == "" {
					objName = fields[1]
				}
			case "L":
				info.sense = LE
			case "G":
				info.sense = GE
			case "E":
				info.sense = EQ
			default:
				return nil, fmt.Errorf("lp: unknown row type %q", fields[0])
			}
			rowsByName[fields[1]] = info
			if !info.objct {
				rowOrder = append(rowOrder, fields[1])
			}
		case "COLUMNS":
			if len(fields) < 3 || len(fields)%2 == 0 {
				return nil, fmt.Errorf("lp: bad COLUMNS line %q", line)
			}
			vname := fields[0]
			v, ok := varIdx[vname]
			if !ok {
				v = len(varOrder)
				varIdx[vname] = v
				varOrder = append(varOrder, vname)
			}
			for f := 1; f < len(fields); f += 2 {
				coef, err := strconv.ParseFloat(fields[f+1], 64)
				if err != nil {
					return nil, fmt.Errorf("lp: bad coefficient %q", fields[f+1])
				}
				rname := fields[f]
				if _, ok := rowsByName[rname]; !ok {
					return nil, fmt.Errorf("lp: COLUMNS references unknown row %q", rname)
				}
				coefs[coefKey{rname, v}] += coef
			}
		case "RHS":
			if len(fields) < 3 || len(fields)%2 == 0 {
				return nil, fmt.Errorf("lp: bad RHS line %q", line)
			}
			for f := 1; f < len(fields); f += 2 {
				val, err := strconv.ParseFloat(fields[f+1], 64)
				if err != nil {
					return nil, fmt.Errorf("lp: bad RHS value %q", fields[f+1])
				}
				rhs[fields[f]] = val
			}
		case "RANGES", "BOUNDS":
			return nil, fmt.Errorf("lp: MPS section %s not supported", section)
		case "NAME", "":
			// ignore
		default:
			return nil, fmt.Errorf("lp: unknown MPS section %q", section)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(varOrder) == 0 {
		return nil, fmt.Errorf("lp: MPS file defines no variables")
	}

	p := NewProblem(len(varOrder))
	if objName != "" {
		for v := range varOrder {
			if c, ok := coefs[coefKey{objName, v}]; ok {
				p.SetObjective(v, c)
			}
		}
	}
	for _, rname := range rowOrder {
		info := rowsByName[rname]
		var entries []Entry
		for v := range varOrder {
			if c, ok := coefs[coefKey{rname, v}]; ok && c != 0 {
				entries = append(entries, Entry{Var: v, Coef: c})
			}
		}
		p.AddConstraint(entries, info.sense, rhs[rname])
	}
	return p, nil
}
