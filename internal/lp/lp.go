// Package lp implements a self-contained linear programming solver:
// a two-phase primal simplex method on a dense tableau with Dantzig
// pricing and a Bland's-rule fallback for anti-cycling.
//
// It exists to solve the paper's interval-indexed relaxation (LP) and
// the time-indexed (LP-EXP); both are pure minimization problems with
// non-negative variables, ≤ load constraints and = convexity
// constraints, which is exactly the form this solver targets:
//
//	minimize    c·x
//	subject to  a_i·x  (≤ | = | ≥)  b_i   for each constraint i
//	            x ≥ 0
//
// The solver is deterministic: identical inputs produce identical
// optimal bases, so the coflow ordering derived from LP solutions is
// reproducible across runs.
package lp

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
)

// Sense is the relation of a constraint row.
type Sense int

const (
	// LE is a ≤ constraint.
	LE Sense = iota
	// EQ is an = constraint.
	EQ
	// GE is a ≥ constraint.
	GE
)

func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case EQ:
		return "="
	case GE:
		return ">="
	}
	return fmt.Sprintf("Sense(%d)", int(s))
}

// Entry is one non-zero coefficient of a constraint row.
type Entry struct {
	Var  int
	Coef float64
}

type row struct {
	entries []Entry
	sense   Sense
	rhs     float64
}

// Problem is an LP in the form documented on the package. Variables
// are indexed 0..NumVars-1 and implicitly non-negative.
type Problem struct {
	numVars int
	obj     []float64
	rows    []row
}

// NewProblem creates a problem with numVars non-negative variables and
// an all-zero objective.
func NewProblem(numVars int) *Problem {
	if numVars <= 0 {
		panic(fmt.Sprintf("lp: invalid variable count %d", numVars))
	}
	return &Problem{numVars: numVars, obj: make([]float64, numVars)}
}

// NumVars returns the number of structural variables.
func (p *Problem) NumVars() int { return p.numVars }

// NumConstraints returns the number of constraint rows added so far.
func (p *Problem) NumConstraints() int { return len(p.rows) }

// SetObjective sets the coefficient of variable v in the (minimized)
// objective.
func (p *Problem) SetObjective(v int, coef float64) {
	p.checkVar(v)
	p.obj[v] = coef
}

// AddConstraint appends the row Σ entries (sense) rhs. Entries may
// repeat a variable; coefficients accumulate.
func (p *Problem) AddConstraint(entries []Entry, sense Sense, rhs float64) {
	for _, e := range entries {
		p.checkVar(e.Var)
	}
	cp := make([]Entry, len(entries))
	copy(cp, entries)
	p.rows = append(p.rows, row{entries: cp, sense: sense, rhs: rhs})
}

func (p *Problem) checkVar(v int) {
	if v < 0 || v >= p.numVars {
		panic(fmt.Sprintf("lp: variable %d out of range [0,%d)", v, p.numVars))
	}
}

// Status reports how a solve terminated.
type Status int

const (
	// Optimal means an optimal basic feasible solution was found.
	Optimal Status = iota
	// Infeasible means no point satisfies all constraints.
	Infeasible
	// Unbounded means the objective decreases without bound.
	Unbounded
	// IterLimit means the iteration budget was exhausted.
	IterLimit
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterLimit:
		return "iteration-limit"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Solution is the result of Solve.
type Solution struct {
	Status     Status
	X          []float64 // structural variable values (len NumVars)
	Objective  float64
	Iterations int
}

const (
	epsPivot     = 1e-9  // minimum magnitude for a pivot element
	epsReduced   = 1e-9  // tolerance on reduced costs
	looseReduced = 1e-6  // residual reduced cost treated as optimal when no pivot exists
	epsFeas      = 1e-6  // feasibility tolerance on phase-1 objective
	blandAfter   = 2000  // iterations of Dantzig pricing before switching to Bland
	iterFactor   = 200   // iteration cap = iterFactor * (rows + cols)
	iterFloor    = 20000 // minimum iteration cap
)

// ErrBadProblem is returned for structurally invalid problems.
var ErrBadProblem = errors.New("lp: invalid problem")

// Solve runs the two-phase simplex method and returns the solution.
// The returned error is non-nil only for structurally invalid input;
// infeasibility and unboundedness are reported via Status.
func Solve(p *Problem) (*Solution, error) {
	if p == nil || p.numVars == 0 {
		return nil, ErrBadProblem
	}
	solveSpan := pkgObs.SolveSeconds.Start()
	defer func() {
		pkgObs.Solves.Inc()
		solveSpan.End()
	}()
	setupSpan := pkgObs.SetupSeconds.Start()
	t := newTableau(p)
	setupSpan.End()
	t.startWorkers()
	defer t.stopWorkers()
	sol := &Solution{X: make([]float64, p.numVars)}

	// Phase 1: minimize the sum of artificials.
	if t.numArt > 0 {
		p1Span := pkgObs.Phase1Seconds.Start()
		status, iters := t.run(t.phase1Cost(), blandAfter)
		p1Span.End()
		sol.Iterations += iters
		pkgObs.Pivots.Add(int64(iters))
		if status == IterLimit {
			sol.Status = IterLimit
			return sol, nil
		}
		if t.objValue() > epsFeas {
			sol.Status = Infeasible
			return sol, nil
		}
		t.banArtificials()
	}

	// Phase 2: minimize the real objective from the feasible basis.
	p2Span := pkgObs.Phase2Seconds.Start()
	status, iters := t.run(t.phase2Cost(p), blandAfter)
	p2Span.End()
	sol.Iterations += iters
	pkgObs.Pivots.Add(int64(iters))
	sol.Status = status
	if status != Optimal {
		return sol, nil
	}
	for i, bv := range t.basis {
		if bv < p.numVars {
			sol.X[bv] = t.rhs(i)
		}
	}
	var obj float64
	for v, c := range p.obj {
		obj += c * sol.X[v]
	}
	sol.Objective = obj
	return sol, nil
}

// tableau holds the dense simplex tableau: m constraint rows over
// numTotal columns plus an RHS column, an objective row, and the
// current basis.
type tableau struct {
	m        int // constraint rows
	numVar   int // structural variables
	numSlack int
	numArt   int
	numTotal int       // numVar + numSlack + numArt
	a        []float64 // m rows × (numTotal+1) columns, row-major
	objRow   []float64 // numTotal+1 entries; last is -objective value
	basis    []int
	banned   []bool // columns excluded from entering (artificials in phase 2)

	// Parallel elimination: large tableaus split row updates across a
	// persistent worker pool (each pivot is memory-bandwidth bound, so
	// this scales with cores until bandwidth saturates).
	workers   int
	workCh    chan [2]int   // row range [lo, hi)
	doneCh    chan struct{} // one token per completed range
	pivotRow  []float64     // normalized pivot row shared with workers
	pivotCol  int
	stopOnce  sync.Once
	stopCh    chan struct{}
	workersOn bool

	// Devex pricing reference weights (reset per phase). Entering
	// columns maximize rc²/devex[j], which approximates steepest-edge
	// pricing and markedly reduces iteration counts on the degenerate
	// interval LPs compared with plain Dantzig pricing.
	devex []float64
}

// parallelThreshold is the tableau cell count above which pivots use
// the worker pool; below it the serial loop is faster.
const parallelThreshold = 1 << 20

func newTableau(p *Problem) *tableau {
	m := len(p.rows)
	// First pass: count slacks and artificials after normalizing each
	// row to a non-negative RHS.
	numSlack, numArt := 0, 0
	senses := make([]Sense, m)
	for i, r := range p.rows {
		s := r.sense
		if r.rhs < 0 {
			// Multiplying by -1 flips the sense.
			switch s {
			case LE:
				s = GE
			case GE:
				s = LE
			}
		}
		senses[i] = s
		switch s {
		case LE:
			numSlack++
		case GE:
			numSlack++
			numArt++
		case EQ:
			numArt++
		}
	}
	t := &tableau{
		m:        m,
		numVar:   p.numVars,
		numSlack: numSlack,
		numArt:   numArt,
		numTotal: p.numVars + numSlack + numArt,
	}
	width := t.numTotal + 1
	t.a = make([]float64, m*width)
	t.objRow = make([]float64, width)
	t.basis = make([]int, m)
	t.banned = make([]bool, t.numTotal)

	slackIdx := p.numVars
	artIdx := p.numVars + numSlack
	for i, r := range p.rows {
		rowData := t.a[i*width : (i+1)*width]
		sign := 1.0
		rhs := r.rhs
		if rhs < 0 {
			sign, rhs = -1.0, -rhs
		}
		for _, e := range r.entries {
			rowData[e.Var] += sign * e.Coef
		}
		rowData[t.numTotal] = rhs
		switch senses[i] {
		case LE:
			rowData[slackIdx] = 1
			t.basis[i] = slackIdx
			slackIdx++
		case GE:
			rowData[slackIdx] = -1
			slackIdx++
			rowData[artIdx] = 1
			t.basis[i] = artIdx
			artIdx++
		case EQ:
			rowData[artIdx] = 1
			t.basis[i] = artIdx
			artIdx++
		}
	}
	t.equilibrate()
	return t
}

// equilibrate divides each row by the largest structural coefficient
// magnitude so pivots stay near unit scale. Only the structural
// columns and the RHS are scaled (slack and artificial columns keep
// their ±1, i.e. slacks are measured in scaled units), so the
// feasible set is preserved exactly. Conditioning on the interval LP,
// whose raw coefficients span ~6 orders of magnitude (flow sizes vs
// geometric horizons), improves markedly.
func (t *tableau) equilibrate() {
	span := pkgObs.EquilibrationSeconds.Start()
	width := t.width()
	for i := 0; i < t.m; i++ {
		rowData := t.a[i*width : (i+1)*width]
		var scale float64
		for v := 0; v < t.numVar; v++ {
			if mag := math.Abs(rowData[v]); mag > scale {
				scale = mag
			}
		}
		if scale > 0 && scale != 1 {
			inv := 1 / scale
			for v := 0; v < t.numVar; v++ {
				rowData[v] *= inv
			}
			rowData[t.numTotal] *= inv
		}
	}
	span.End()
}

func (t *tableau) width() int        { return t.numTotal + 1 }
func (t *tableau) rhs(i int) float64 { return t.a[i*t.width()+t.numTotal] }

// objValue returns the current objective value (the tableau stores its
// negation in the RHS cell of the objective row).
func (t *tableau) objValue() float64 { return -t.objRow[t.numTotal] }

func (t *tableau) phase1Cost() []float64 {
	c := make([]float64, t.numTotal)
	for v := t.numVar + t.numSlack; v < t.numTotal; v++ {
		c[v] = 1
	}
	return c
}

func (t *tableau) phase2Cost(p *Problem) []float64 {
	c := make([]float64, t.numTotal)
	copy(c, p.obj)
	return c
}

// banArtificials drives basic artificials out of the basis where
// possible and forbids all artificial columns from re-entering.
func (t *tableau) banArtificials() {
	width := t.width()
	for i := 0; i < t.m; i++ {
		bv := t.basis[i]
		if bv < t.numVar+t.numSlack {
			continue
		}
		// Basic artificial (at value ~0 after a feasible phase 1):
		// pivot on any eligible non-artificial column in this row.
		rowData := t.a[i*width : (i+1)*width]
		pivoted := false
		for j := 0; j < t.numVar+t.numSlack; j++ {
			if math.Abs(rowData[j]) > epsPivot {
				t.pivot(i, j)
				pivoted = true
				break
			}
		}
		// If the whole row is zero the constraint is redundant; the
		// artificial stays basic at zero, which is harmless once its
		// column is banned.
		_ = pivoted
	}
	for v := t.numVar + t.numSlack; v < t.numTotal; v++ {
		t.banned[v] = true
	}
}

// resetDevex restores all pricing weights to the reference frame.
func (t *tableau) resetDevex() {
	if t.devex == nil {
		t.devex = make([]float64, t.numTotal)
	}
	for j := range t.devex {
		t.devex[j] = 1
	}
}

// installCost loads cost vector c into the objective row expressed in
// the current basis (reduced costs).
func (t *tableau) installCost(c []float64) {
	width := t.width()
	for j := 0; j < t.numTotal; j++ {
		t.objRow[j] = c[j]
	}
	t.objRow[t.numTotal] = 0
	for i := 0; i < t.m; i++ {
		cb := c[t.basis[i]]
		if cb == 0 {
			continue
		}
		rowData := t.a[i*width : (i+1)*width]
		for j := 0; j <= t.numTotal; j++ {
			t.objRow[j] -= cb * rowData[j]
		}
	}
}

// run installs cost c and iterates pivots to optimality.
func (t *tableau) run(c []float64, blandAfter int) (Status, int) {
	t.installCost(c)
	t.resetDevex()
	maxIter := iterFactor * (t.m + t.numTotal)
	if maxIter < iterFloor {
		maxIter = iterFloor
	}
	iters := 0
	for ; iters < maxIter; iters++ {
		bland := iters >= blandAfter
		enter := t.chooseEntering(bland)
		if enter < 0 {
			return Optimal, iters
		}
		leave := t.ratioTest(enter)
		if leave < 0 {
			// The preferred column has no positive pivot entry. On a
			// genuinely unbounded LP no candidate has one; after many
			// pivots this is usually roundoff instead, so scan every
			// improving column before giving up.
			enter, leave = t.anyEnteringWithLeave()
			if leave < 0 {
				if t.worstReducedCost() >= -looseReduced {
					return Optimal, iters // negligible residual improvement
				}
				return Unbounded, iters
			}
		}
		t.pivot(leave, enter)
	}
	return IterLimit, iters
}

// anyEnteringWithLeave scans all improving columns for one admitting a
// ratio test, most negative reduced cost first. O(rows·cols) — only
// used on the rare fallback path.
func (t *tableau) anyEnteringWithLeave() (enter, leave int) {
	type cand struct {
		j  int
		rc float64
	}
	var cands []cand
	for j := 0; j < t.numTotal; j++ {
		if !t.banned[j] && t.objRow[j] < -epsReduced {
			cands = append(cands, cand{j, t.objRow[j]})
		}
	}
	for len(cands) > 0 {
		best := 0
		for i := range cands {
			if cands[i].rc < cands[best].rc {
				best = i
			}
		}
		j := cands[best].j
		if l := t.ratioTest(j); l >= 0 {
			return j, l
		}
		cands[best] = cands[len(cands)-1]
		cands = cands[:len(cands)-1]
	}
	return -1, -1
}

// worstReducedCost returns the most negative reduced cost among
// unbanned columns (0 if none are negative).
func (t *tableau) worstReducedCost() float64 {
	worst := 0.0
	for j := 0; j < t.numTotal; j++ {
		if !t.banned[j] && t.objRow[j] < worst {
			worst = t.objRow[j]
		}
	}
	return worst
}

// chooseEntering returns the entering column, or -1 at optimality.
// Devex pricing (max rc²/weight) by default; Bland's rule (first
// negative) when anti-cycling is needed.
func (t *tableau) chooseEntering(bland bool) int {
	best := -1
	bestScore := 0.0
	for j := 0; j < t.numTotal; j++ {
		if t.banned[j] {
			continue
		}
		rc := t.objRow[j]
		if rc < -epsReduced {
			if bland {
				return j
			}
			score := rc * rc / t.devex[j]
			if score > bestScore {
				best, bestScore = j, score
			}
		}
	}
	return best
}

// ratioTest returns the leaving row for entering column j, or -1 if
// the column is unbounded. Ties break on the smallest basis variable
// index (lexicographic anti-cycling).
func (t *tableau) ratioTest(j int) int {
	width := t.width()
	leave := -1
	var bestRatio float64
	for i := 0; i < t.m; i++ {
		aij := t.a[i*width+j]
		if aij <= epsPivot {
			continue
		}
		ratio := t.rhs(i) / aij
		if leave < 0 || ratio < bestRatio-epsPivot ||
			(math.Abs(ratio-bestRatio) <= epsPivot && t.basis[i] < t.basis[leave]) {
			leave, bestRatio = i, ratio
		}
	}
	return leave
}

// startWorkers spins up the elimination pool for large tableaus.
func (t *tableau) startWorkers() {
	workers := runtime.GOMAXPROCS(0)
	if workers > t.m {
		workers = t.m
	}
	if workers <= 1 || t.m*t.width() < parallelThreshold {
		return
	}
	t.workers = workers
	t.workCh = make(chan [2]int)
	t.doneCh = make(chan struct{})
	t.stopCh = make(chan struct{})
	t.workersOn = true
	for w := 0; w < workers; w++ {
		go func() {
			for {
				select {
				case r := <-t.workCh:
					t.eliminateRows(r[0], r[1])
					t.doneCh <- struct{}{}
				case <-t.stopCh:
					return
				}
			}
		}()
	}
}

// stopWorkers shuts the pool down; safe to call multiple times.
func (t *tableau) stopWorkers() {
	if !t.workersOn {
		return
	}
	t.stopOnce.Do(func() { close(t.stopCh) })
}

// eliminateRows clears the pivot column from rows [lo, hi), excluding
// the pivot row itself (marked by pivotRow aliasing).
func (t *tableau) eliminateRows(lo, hi int) {
	width := t.width()
	j := t.pivotCol
	piv := t.pivotRow
	for r := lo; r < hi; r++ {
		other := t.a[r*width : (r+1)*width]
		if &other[0] == &piv[0] {
			continue // the pivot row itself
		}
		f := other[j]
		if f == 0 {
			continue
		}
		for k := range other {
			other[k] -= f * piv[k]
		}
		other[j] = 0 // exact
	}
}

// pivot makes column j basic in row i.
func (t *tableau) pivot(i, j int) {
	width := t.width()
	rowData := t.a[i*width : (i+1)*width]
	pv := rowData[j]
	inv := 1.0 / pv
	for k := range rowData {
		rowData[k] *= inv
	}
	rowData[j] = 1 // exact

	if t.workersOn {
		t.pivotRow = rowData
		t.pivotCol = j
		chunk := (t.m + t.workers - 1) / t.workers
		sent := 0
		for lo := 0; lo < t.m; lo += chunk {
			hi := lo + chunk
			if hi > t.m {
				hi = t.m
			}
			t.workCh <- [2]int{lo, hi}
			sent++
		}
		for ; sent > 0; sent-- {
			<-t.doneCh
		}
	} else {
		t.pivotRow = rowData
		t.pivotCol = j
		t.eliminateRows(0, t.m)
	}

	f := t.objRow[j]
	if f != 0 {
		for k := range t.objRow {
			t.objRow[k] -= f * rowData[k]
		}
		t.objRow[j] = 0
	}

	// Devex weight update: with the pivot row normalized (α_rq = 1),
	// every column inherits max(γ_j, α_rj²·γ_q); the leaving variable
	// re-enters the frame with weight max(γ_q, 1). Weights are reset
	// when they outgrow the frame.
	if t.devex != nil {
		gq := t.devex[j]
		reset := false
		for k := 0; k < t.numTotal; k++ {
			if w := rowData[k] * rowData[k] * gq; w > t.devex[k] {
				t.devex[k] = w
				if w > 1e12 {
					reset = true
				}
			}
		}
		if lv := t.basis[i]; lv >= 0 && lv < t.numTotal {
			if gq > t.devex[lv] {
				t.devex[lv] = gq
			}
		}
		if reset {
			t.resetDevex()
		}
	}
	t.basis[i] = j
}

// CheckFeasible verifies that x satisfies every constraint of p within
// tol, returning a descriptive error for the first violation. Used by
// tests and by callers that want to assert solver output.
func CheckFeasible(p *Problem, x []float64, tol float64) error {
	if len(x) != p.numVars {
		return fmt.Errorf("lp: solution has %d vars, problem has %d", len(x), p.numVars)
	}
	for v, xv := range x {
		if xv < -tol {
			return fmt.Errorf("lp: variable %d negative: %g", v, xv)
		}
	}
	for i, r := range p.rows {
		var lhs float64
		for _, e := range r.entries {
			lhs += e.Coef * x[e.Var]
		}
		switch r.sense {
		case LE:
			if lhs > r.rhs+tol {
				return fmt.Errorf("lp: row %d: %g <= %g violated", i, lhs, r.rhs)
			}
		case GE:
			if lhs < r.rhs-tol {
				return fmt.Errorf("lp: row %d: %g >= %g violated", i, lhs, r.rhs)
			}
		case EQ:
			if math.Abs(lhs-r.rhs) > tol {
				return fmt.Errorf("lp: row %d: %g = %g violated", i, lhs, r.rhs)
			}
		}
	}
	return nil
}

// Objective evaluates p's objective at x.
func Objective(p *Problem, x []float64) float64 {
	var obj float64
	for v, c := range p.obj {
		obj += c * x[v]
	}
	return obj
}
