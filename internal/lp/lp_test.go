package lp

import (
	"math"
	"math/rand"
	"testing"
)

func solveOrFail(t *testing.T, p *Problem) *Solution {
	t.Helper()
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	return sol
}

func TestSimpleMaximization(t *testing.T) {
	// max x+y s.t. x+y <= 1  (as min -x-y): optimum -1.
	p := NewProblem(2)
	p.SetObjective(0, -1)
	p.SetObjective(1, -1)
	p.AddConstraint([]Entry{{0, 1}, {1, 1}}, LE, 1)
	sol := solveOrFail(t, p)
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if math.Abs(sol.Objective-(-1)) > 1e-9 {
		t.Fatalf("objective = %g, want -1", sol.Objective)
	}
	if err := CheckFeasible(p, sol.X, 1e-9); err != nil {
		t.Fatal(err)
	}
}

func TestTwoConstraintVertex(t *testing.T) {
	// min -3x - 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18.
	// Classic: optimum at (2, 6) with value -36.
	p := NewProblem(2)
	p.SetObjective(0, -3)
	p.SetObjective(1, -5)
	p.AddConstraint([]Entry{{0, 1}}, LE, 4)
	p.AddConstraint([]Entry{{1, 2}}, LE, 12)
	p.AddConstraint([]Entry{{0, 3}, {1, 2}}, LE, 18)
	sol := solveOrFail(t, p)
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if math.Abs(sol.Objective-(-36)) > 1e-8 {
		t.Fatalf("objective = %g, want -36", sol.Objective)
	}
	if math.Abs(sol.X[0]-2) > 1e-8 || math.Abs(sol.X[1]-6) > 1e-8 {
		t.Fatalf("x = %v, want (2,6)", sol.X)
	}
}

func TestEqualityConstraints(t *testing.T) {
	// min x + y s.t. x + y = 2, x - y = 0 → x = y = 1.
	p := NewProblem(2)
	p.SetObjective(0, 1)
	p.SetObjective(1, 1)
	p.AddConstraint([]Entry{{0, 1}, {1, 1}}, EQ, 2)
	p.AddConstraint([]Entry{{0, 1}, {1, -1}}, EQ, 0)
	sol := solveOrFail(t, p)
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if math.Abs(sol.X[0]-1) > 1e-8 || math.Abs(sol.X[1]-1) > 1e-8 {
		t.Fatalf("x = %v, want (1,1)", sol.X)
	}
}

func TestGEConstraint(t *testing.T) {
	// min 2x + 3y s.t. x + y >= 4, x >= 1 → (3,1)? No: cost favors x
	// (2 < 3), so x = 4, y = 0 → obj 8. The x >= 1 row is slack.
	p := NewProblem(2)
	p.SetObjective(0, 2)
	p.SetObjective(1, 3)
	p.AddConstraint([]Entry{{0, 1}, {1, 1}}, GE, 4)
	p.AddConstraint([]Entry{{0, 1}}, GE, 1)
	sol := solveOrFail(t, p)
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if math.Abs(sol.Objective-8) > 1e-8 {
		t.Fatalf("objective = %g, want 8", sol.Objective)
	}
}

func TestInfeasible(t *testing.T) {
	// x <= -1 with x >= 0 is infeasible.
	p := NewProblem(1)
	p.SetObjective(0, 1)
	p.AddConstraint([]Entry{{0, 1}}, LE, -1)
	sol := solveOrFail(t, p)
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestInfeasibleConflicting(t *testing.T) {
	p := NewProblem(1)
	p.AddConstraint([]Entry{{0, 1}}, GE, 5)
	p.AddConstraint([]Entry{{0, 1}}, LE, 3)
	sol := solveOrFail(t, p)
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestUnbounded(t *testing.T) {
	// min -x with x only bounded below.
	p := NewProblem(1)
	p.SetObjective(0, -1)
	p.AddConstraint([]Entry{{0, 1}}, GE, 1)
	sol := solveOrFail(t, p)
	if sol.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", sol.Status)
	}
}

func TestNegativeRHSNormalization(t *testing.T) {
	// -x <= -2 means x >= 2; min x → 2.
	p := NewProblem(1)
	p.SetObjective(0, 1)
	p.AddConstraint([]Entry{{0, -1}}, LE, -2)
	sol := solveOrFail(t, p)
	if sol.Status != Optimal || math.Abs(sol.Objective-2) > 1e-8 {
		t.Fatalf("status=%v obj=%g, want optimal 2", sol.Status, sol.Objective)
	}
}

func TestDuplicateEntriesAccumulate(t *testing.T) {
	// x + x <= 4 → x <= 2; min -x → -2.
	p := NewProblem(1)
	p.SetObjective(0, -1)
	p.AddConstraint([]Entry{{0, 1}, {0, 1}}, LE, 4)
	sol := solveOrFail(t, p)
	if math.Abs(sol.Objective-(-2)) > 1e-8 {
		t.Fatalf("objective = %g, want -2", sol.Objective)
	}
}

func TestDegenerate(t *testing.T) {
	// Beale's classic cycling example (resolved by anti-cycling).
	// min -0.75x1 + 150x2 - 0.02x3 + 6x4
	// s.t. 0.25x1 - 60x2 - 0.04x3 + 9x4 <= 0
	//      0.5x1 - 90x2 - 0.02x3 + 3x4 <= 0
	//      x3 <= 1
	// Optimal value -0.05.
	p := NewProblem(4)
	p.SetObjective(0, -0.75)
	p.SetObjective(1, 150)
	p.SetObjective(2, -0.02)
	p.SetObjective(3, 6)
	p.AddConstraint([]Entry{{0, 0.25}, {1, -60}, {2, -0.04}, {3, 9}}, LE, 0)
	p.AddConstraint([]Entry{{0, 0.5}, {1, -90}, {2, -0.02}, {3, 3}}, LE, 0)
	p.AddConstraint([]Entry{{2, 1}}, LE, 1)
	sol := solveOrFail(t, p)
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if math.Abs(sol.Objective-(-0.05)) > 1e-6 {
		t.Fatalf("objective = %g, want -0.05", sol.Objective)
	}
}

func TestConvexityRowsLikeLPModel(t *testing.T) {
	// Mimics the structure of the interval-indexed LP: convexity rows
	// Σ_l x_kl = 1 per "coflow" plus cumulative capacity rows.
	// Two coflows, two intervals with capacities 2 and 4; each coflow
	// consumes 2 units; cost = left endpoint 0 for interval 1, 1 for
	// interval 2, weight 1. Only one coflow fits interval 1.
	p := NewProblem(4) // x(k,l) = k*2+l
	p.SetObjective(1, 1)
	p.SetObjective(3, 1)
	p.AddConstraint([]Entry{{0, 1}, {1, 1}}, EQ, 1)
	p.AddConstraint([]Entry{{2, 1}, {3, 1}}, EQ, 1)
	p.AddConstraint([]Entry{{0, 2}, {2, 2}}, LE, 2)                 // interval 1 capacity
	p.AddConstraint([]Entry{{0, 2}, {1, 2}, {2, 2}, {3, 2}}, LE, 4) // cumulative
	sol := solveOrFail(t, p)
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if math.Abs(sol.Objective-1) > 1e-8 {
		t.Fatalf("objective = %g, want 1", sol.Objective)
	}
	if err := CheckFeasible(p, sol.X, 1e-8); err != nil {
		t.Fatal(err)
	}
}

func TestCheckFeasibleRejects(t *testing.T) {
	p := NewProblem(1)
	p.AddConstraint([]Entry{{0, 1}}, LE, 1)
	if err := CheckFeasible(p, []float64{2}, 1e-9); err == nil {
		t.Fatal("violation not caught")
	}
	if err := CheckFeasible(p, []float64{-1}, 1e-9); err == nil {
		t.Fatal("negative variable not caught")
	}
	if err := CheckFeasible(p, []float64{0, 0}, 1e-9); err == nil {
		t.Fatal("wrong arity not caught")
	}
}

func TestObjectiveEval(t *testing.T) {
	p := NewProblem(2)
	p.SetObjective(0, 2)
	p.SetObjective(1, -3)
	if got := Objective(p, []float64{1, 2}); math.Abs(got-(-4)) > 1e-12 {
		t.Fatalf("Objective = %g, want -4", got)
	}
}

func TestVariableRangePanics(t *testing.T) {
	p := NewProblem(1)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range variable accepted")
		}
	}()
	p.AddConstraint([]Entry{{3, 1}}, LE, 1)
}

func TestSenseString(t *testing.T) {
	if LE.String() != "<=" || EQ.String() != "=" || GE.String() != ">=" {
		t.Fatal("Sense.String broken")
	}
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" {
		t.Fatal("Status.String broken")
	}
}

// --- brute-force cross-check ---------------------------------------

// gaussSolve solves the n×n system Ax=b, returning false if singular.
func gaussSolve(a [][]float64, b []float64) ([]float64, bool) {
	n := len(b)
	m := make([][]float64, n)
	for i := range m {
		m[i] = append(append([]float64{}, a[i]...), b[i])
	}
	for col := 0; col < n; col++ {
		piv := -1
		best := 1e-9
		for r := col; r < n; r++ {
			if v := math.Abs(m[r][col]); v > best {
				piv, best = r, v
			}
		}
		if piv < 0 {
			return nil, false
		}
		m[col], m[piv] = m[piv], m[col]
		inv := 1 / m[col][col]
		for k := col; k <= n; k++ {
			m[col][k] *= inv
		}
		for r := 0; r < n; r++ {
			if r == col || m[r][col] == 0 {
				continue
			}
			f := m[r][col]
			for k := col; k <= n; k++ {
				m[r][k] -= f * m[col][k]
			}
		}
	}
	x := make([]float64, n)
	for i := range x {
		x[i] = m[i][n]
	}
	return x, true
}

// bruteForceLP enumerates all vertices of {x >= 0, rows} for an
// all-LE problem and returns the best objective, or NaN if infeasible.
func bruteForceLP(nVars int, obj []float64, rows [][]float64, rhs []float64) float64 {
	// Candidate tight sets: choose nVars hyperplanes from the rows
	// plus the nonnegativity bounds.
	total := len(rows) + nVars
	best := math.NaN()
	idx := make([]int, nVars)
	var rec func(start, k int)
	rec = func(start, k int) {
		if k == nVars {
			a := make([][]float64, nVars)
			b := make([]float64, nVars)
			for i, h := range idx {
				if h < len(rows) {
					a[i] = rows[h]
					b[i] = rhs[h]
				} else {
					coef := make([]float64, nVars)
					coef[h-len(rows)] = 1
					a[i] = coef
					b[i] = 0
				}
			}
			x, ok := gaussSolve(a, b)
			if !ok {
				return
			}
			for _, v := range x {
				if v < -1e-7 {
					return
				}
			}
			for r, row := range rows {
				var lhs float64
				for j, c := range row {
					lhs += c * x[j]
				}
				if lhs > rhs[r]+1e-7 {
					return
				}
				_ = r
			}
			var o float64
			for j, c := range obj {
				o += c * x[j]
			}
			if math.IsNaN(best) || o < best {
				best = o
			}
			return
		}
		for h := start; h < total; h++ {
			idx[k] = h
			rec(h+1, k+1)
		}
	}
	rec(0, 0)
	return best
}

func TestSimplexMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(314))
	for trial := 0; trial < 200; trial++ {
		nVars := 1 + rng.Intn(3)
		nRows := 1 + rng.Intn(4)
		obj := make([]float64, nVars)
		for j := range obj {
			obj[j] = float64(rng.Intn(11) - 5)
		}
		rows := make([][]float64, nRows)
		rhs := make([]float64, nRows)
		for r := range rows {
			rows[r] = make([]float64, nVars)
			for j := range rows[r] {
				rows[r][j] = float64(rng.Intn(7) - 2)
			}
			rhs[r] = float64(rng.Intn(10))
		}
		// Bound the region so the LP cannot be unbounded.
		bound := make([]float64, nVars)
		for j := range bound {
			bound[j] = 1
		}
		rows = append(rows, bound)
		rhs = append(rhs, float64(5+rng.Intn(10)))

		p := NewProblem(nVars)
		for j, c := range obj {
			p.SetObjective(j, c)
		}
		for r, row := range rows {
			var es []Entry
			for j, c := range row {
				if c != 0 {
					es = append(es, Entry{j, c})
				}
			}
			p.AddConstraint(es, LE, rhs[r])
		}
		sol := solveOrFail(t, p)
		want := bruteForceLP(nVars, obj, rows, rhs)
		if math.IsNaN(want) {
			if sol.Status != Infeasible {
				t.Fatalf("trial %d: brute force infeasible, simplex %v", trial, sol.Status)
			}
			continue
		}
		if sol.Status != Optimal {
			t.Fatalf("trial %d: simplex %v, brute force %g", trial, sol.Status, want)
		}
		if math.Abs(sol.Objective-want) > 1e-6*(1+math.Abs(want)) {
			t.Fatalf("trial %d: simplex %g, brute force %g", trial, sol.Objective, want)
		}
		if err := CheckFeasible(p, sol.X, 1e-6); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func BenchmarkSimplexMedium(b *testing.B) {
	// 120 vars, 90 rows of the load-constraint shape.
	rng := rand.New(rand.NewSource(8))
	build := func() *Problem {
		p := NewProblem(120)
		for j := 0; j < 120; j++ {
			p.SetObjective(j, rng.Float64()*10)
		}
		for r := 0; r < 80; r++ {
			var es []Entry
			for j := 0; j < 120; j++ {
				if rng.Intn(4) == 0 {
					es = append(es, Entry{j, float64(1 + rng.Intn(9))})
				}
			}
			p.AddConstraint(es, LE, float64(50+rng.Intn(200)))
		}
		for k := 0; k < 10; k++ {
			var es []Entry
			for l := 0; l < 12; l++ {
				es = append(es, Entry{k*12 + l, 1})
			}
			p.AddConstraint(es, EQ, 1)
		}
		return p
	}
	p := build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := Solve(p)
		if err != nil || sol.Status != Optimal {
			b.Fatalf("solve failed: %v %v", err, sol.Status)
		}
	}
}

func TestAccessors(t *testing.T) {
	p := NewProblem(3)
	p.AddConstraint([]Entry{{0, 1}}, LE, 1)
	if p.NumVars() != 3 || p.NumConstraints() != 1 {
		t.Fatalf("accessors: %d vars %d rows", p.NumVars(), p.NumConstraints())
	}
	if Sense(99).String() == "" || Status(99).String() == "" {
		t.Fatal("unknown enum Strings empty")
	}
}

func TestSolveNilProblem(t *testing.T) {
	if _, err := Solve(nil); err == nil {
		t.Fatal("nil problem accepted")
	}
}

func TestNewProblemPanicsOnZeroVars(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewProblem(0) did not panic")
		}
	}()
	NewProblem(0)
}

// A problem large enough to cross the parallel-pivot threshold: the
// worker-pool elimination path must give exactly the same answer as a
// small serial solve of the same structure.
func TestParallelPivotPath(t *testing.T) {
	build := func(rows, varsPerRow int) (*Problem, float64) {
		// min Σ -x_j s.t. per-row sums of disjoint variable blocks ≤ 10:
		// optimum is exactly -10·rows (each block saturates its row).
		p := NewProblem(rows * varsPerRow)
		for j := 0; j < rows*varsPerRow; j++ {
			p.SetObjective(j, -1)
		}
		for r := 0; r < rows; r++ {
			var es []Entry
			for v := 0; v < varsPerRow; v++ {
				es = append(es, Entry{r*varsPerRow + v, 1})
			}
			p.AddConstraint(es, LE, 10)
		}
		return p, -10 * float64(rows)
	}
	p, want := build(700, 2) // 700 rows × (1400 vars + 700 slacks) > threshold
	if p.NumConstraints()*(p.NumVars()+p.NumConstraints()+1) < parallelThreshold {
		t.Skip("problem below the parallel threshold on this configuration")
	}
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if math.Abs(sol.Objective-want) > 1e-6 {
		t.Fatalf("objective = %g, want %g", sol.Objective, want)
	}
	if err := CheckFeasible(p, sol.X, 1e-6); err != nil {
		t.Fatal(err)
	}
}
