package lp

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestMPSRoundTripSmall(t *testing.T) {
	p := NewProblem(2)
	p.SetObjective(0, -3)
	p.SetObjective(1, -5)
	p.AddConstraint([]Entry{{0, 1}}, LE, 4)
	p.AddConstraint([]Entry{{1, 2}}, LE, 12)
	p.AddConstraint([]Entry{{0, 3}, {1, 2}}, LE, 18)

	var buf bytes.Buffer
	if err := WriteMPS(&buf, p, "classic"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"NAME", "ROWS", "COLUMNS", "RHS", "ENDATA", "COST"} {
		if !strings.Contains(out, want) {
			t.Fatalf("MPS output missing %q:\n%s", want, out)
		}
	}

	q, err := ReadMPS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	solP, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	solQ, err := Solve(q)
	if err != nil {
		t.Fatal(err)
	}
	if solP.Status != Optimal || solQ.Status != Optimal {
		t.Fatalf("statuses %v/%v", solP.Status, solQ.Status)
	}
	if math.Abs(solP.Objective-solQ.Objective) > 1e-9 {
		t.Fatalf("round trip changed optimum: %g vs %g", solP.Objective, solQ.Objective)
	}
}

func TestMPSRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(606))
	for trial := 0; trial < 50; trial++ {
		nVars := 1 + rng.Intn(5)
		p := NewProblem(nVars)
		for j := 0; j < nVars; j++ {
			p.SetObjective(j, float64(rng.Intn(11)-5))
		}
		for r := 0; r < 1+rng.Intn(5); r++ {
			var es []Entry
			for j := 0; j < nVars; j++ {
				if rng.Intn(2) == 0 {
					es = append(es, Entry{j, float64(rng.Intn(9) - 4)})
				}
			}
			sense := []Sense{LE, GE, EQ}[rng.Intn(3)]
			p.AddConstraint(es, sense, float64(rng.Intn(15)))
		}
		// Bound everything so the LP is never unbounded.
		var all []Entry
		for j := 0; j < nVars; j++ {
			all = append(all, Entry{j, 1})
		}
		p.AddConstraint(all, LE, 50)

		var buf bytes.Buffer
		if err := WriteMPS(&buf, p, "rt"); err != nil {
			t.Fatal(err)
		}
		q, err := ReadMPS(&buf)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, buf.String())
		}
		if q.NumVars() > p.NumVars() {
			t.Fatalf("trial %d: round trip grew variables %d > %d", trial, q.NumVars(), p.NumVars())
		}
		solP, err := Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		solQ, err := Solve(q)
		if err != nil {
			t.Fatal(err)
		}
		if solP.Status != solQ.Status {
			t.Fatalf("trial %d: statuses differ %v vs %v", trial, solP.Status, solQ.Status)
		}
		if solP.Status == Optimal && math.Abs(solP.Objective-solQ.Objective) > 1e-6*(1+math.Abs(solP.Objective)) {
			t.Fatalf("trial %d: optima differ %g vs %g", trial, solP.Objective, solQ.Objective)
		}
	}
}

func TestReadMPSErrors(t *testing.T) {
	cases := map[string]string{
		"empty":       "",
		"no vars":     "NAME x\nROWS\n N COST\nENDATA\n",
		"bad row":     "NAME x\nROWS\n Q r1\nENDATA\n",
		"unknown row": "NAME x\nROWS\n N COST\nCOLUMNS\n    x0 nope 1\nENDATA\n",
		"bad coef":    "NAME x\nROWS\n N COST\n L r1\nCOLUMNS\n    x0 r1 zz\nENDATA\n",
		"bounds":      "NAME x\nROWS\n N COST\nBOUNDS\n UP BND x0 3\nENDATA\n",
		"bad section": "NAME x\nWEIRD\n junk\nENDATA\n",
		"ragged line": "NAME x\nROWS\n N COST\n L r1\nCOLUMNS\n    x0 r1\nENDATA\n",
	}
	for name, in := range cases {
		if _, err := ReadMPS(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestWriteMPSNil(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMPS(&buf, nil, "x"); err == nil {
		t.Fatal("nil problem accepted")
	}
}
