package lp

// Revised simplex on a sparse (CSC) standard form. Where the dense
// tableau in lp.go updates an m×(n+1) matrix on every pivot, the
// revised method keeps only the original columns, the current basic
// solution, and a factored basis (lu.go); each iteration does one
// BTRAN (duals), one sparse pricing pass over the column file, one
// FTRAN (entering column), and an O(m) basic-solution update. On the
// interval-indexed coflow LPs — almost all unit entries — this is the
// difference between O(m·n) and O(nnz) per iteration.
//
// The solver mirrors the dense tableau's external contract so the two
// stay interchangeable under the differential harness:
//
//   - identical standard-form construction (rhs sign normalization,
//     slack/artificial layout, row equilibration);
//   - the same tolerance constants (epsPivot, epsReduced, epsFeas,
//     looseReduced) and iteration caps;
//   - Dantzig pricing switching to Bland's rule after blandAfter
//     iterations (the dense solver's anti-cycling contract; it prices
//     with devex before the switch, which only changes the pivot
//     path, never the verdict);
//   - the same ratio-test tie-break (smallest basis variable index)
//     and the same scan-all-columns fallback before declaring
//     Unbounded.

import "math"

// revised is the working state of one revised-simplex solve.
type revised struct {
	p *Problem
	m int // constraint rows

	nVar   int
	nSlack int
	nArt   int
	nTotal int

	cols []spCol   // standard-form columns, CSC; slacks/artificials are unit columns
	bVec []float64 // normalized (non-negative, equilibrated) rhs

	basis    []int // basis[i]: variable basic at position i
	basisPos []int // basisPos[v]: position of v, -1 when nonbasic
	banned   []bool
	xB       []float64 // basic variable values, position coordinates

	blu *basisLU

	// Dense scratch vectors, reused across iterations.
	rowScratch []float64 // row coordinates (FTRAN input, duals output)
	posScratch []float64 // position coordinates (BTRAN input)
	y          []float64 // duals of the current basis, row coordinates
	w          []float64 // FTRAN of the entering column, position coordinates

	worstReduced float64 // most negative reduced cost seen by the last pricing pass
}

func newRevised(p *Problem) *revised {
	m := len(p.rows)
	// Pass 1: normalized senses, slack/artificial counts (mirrors
	// newTableau exactly).
	numSlack, numArt := 0, 0
	senses := make([]Sense, m)
	for i, r := range p.rows {
		s := r.sense
		if r.rhs < 0 {
			switch s {
			case LE:
				s = GE
			case GE:
				s = LE
			}
		}
		senses[i] = s
		switch s {
		case LE:
			numSlack++
		case GE:
			numSlack++
			numArt++
		case EQ:
			numArt++
		}
	}
	r := &revised{
		p:      p,
		m:      m,
		nVar:   p.numVars,
		nSlack: numSlack,
		nArt:   numArt,
		nTotal: p.numVars + numSlack + numArt,
	}
	r.cols = make([]spCol, r.nTotal)
	r.bVec = make([]float64, m)
	r.basis = make([]int, m)
	r.basisPos = make([]int, r.nTotal)
	for v := range r.basisPos {
		r.basisPos[v] = -1
	}
	r.banned = make([]bool, r.nTotal)
	r.xB = make([]float64, m)
	r.rowScratch = make([]float64, m)
	r.posScratch = make([]float64, m)
	r.y = make([]float64, m)
	r.w = make([]float64, m)

	// Pass 2: accumulate each row densely (duplicate entries add, as
	// in AddConstraint's contract), equilibrate, and emit CSC columns.
	acc := make([]float64, p.numVars)
	var touched []int
	slackIdx := p.numVars
	artIdx := p.numVars + numSlack
	for i, row := range p.rows {
		sign, rhs := 1.0, row.rhs
		if rhs < 0 {
			sign, rhs = -1.0, -rhs
		}
		touched = touched[:0]
		for _, e := range row.entries {
			if acc[e.Var] == 0 {
				touched = append(touched, e.Var)
			}
			acc[e.Var] += sign * e.Coef
		}
		// Row equilibration: structural coefficients and the rhs are
		// scaled by 1/max|structural|, identical to tableau.equilibrate
		// (slack and artificial columns keep their ±1).
		var scale float64
		for _, v := range touched {
			if mag := math.Abs(acc[v]); mag > scale {
				scale = mag
			}
		}
		inv := 1.0
		if scale > 0 && scale != 1 {
			inv = 1 / scale
		}
		for _, v := range touched {
			if c := acc[v]; c != 0 {
				r.cols[v].ind = append(r.cols[v].ind, i)
				r.cols[v].val = append(r.cols[v].val, c*inv)
			}
			acc[v] = 0
		}
		r.bVec[i] = rhs * inv
		switch senses[i] {
		case LE:
			r.cols[slackIdx] = spCol{ind: []int{i}, val: []float64{1}}
			r.setBasic(i, slackIdx)
			slackIdx++
		case GE:
			r.cols[slackIdx] = spCol{ind: []int{i}, val: []float64{-1}}
			slackIdx++
			r.cols[artIdx] = spCol{ind: []int{i}, val: []float64{1}}
			r.setBasic(i, artIdx)
			artIdx++
		case EQ:
			r.cols[artIdx] = spCol{ind: []int{i}, val: []float64{1}}
			r.setBasic(i, artIdx)
			artIdx++
		}
	}
	r.blu = newBasisLU(m)
	return r
}

func (r *revised) setBasic(pos, v int) {
	r.basis[pos] = v
	r.basisPos[v] = pos
}

// basisCol returns the standard-form column of the variable basic at
// position k, for refactorization.
func (r *revised) basisCol(k int) spCol { return r.cols[r.basis[k]] }

// refactor rebuilds the basis factorization and recomputes xB from
// scratch, clearing accumulated eta roundoff.
func (r *revised) refactor() error {
	span := pkgObs.FactorizeSeconds.Start()
	defer span.End()
	if err := r.blu.refactor(r.basisCol); err != nil {
		return err
	}
	copy(r.rowScratch, r.bVec)
	r.blu.ftran(r.rowScratch, r.xB)
	return nil
}

// ftranCol computes w = B⁻¹·A_j.
func (r *revised) ftranCol(j int, w []float64) {
	for i := range r.rowScratch {
		r.rowScratch[i] = 0
	}
	c := r.cols[j]
	for i, row := range c.ind {
		r.rowScratch[row] += c.val[i]
	}
	r.blu.ftran(r.rowScratch, w)
}

// duals computes y = B⁻ᵀ·c_B into r.y.
func (r *revised) duals(cost []float64) {
	for i := 0; i < r.m; i++ {
		r.posScratch[i] = cost[r.basis[i]]
	}
	r.blu.btran(r.posScratch, r.y)
}

// reducedCost returns d_j = c_j − y·A_j for the current duals.
func (r *revised) reducedCost(cost []float64, j int) float64 {
	d := cost[j]
	c := r.cols[j]
	for i, row := range c.ind {
		d -= c.val[i] * r.y[row]
	}
	return d
}

// price refreshes the duals and returns the entering column: the most
// negative reduced cost (Dantzig) or the first negative one (Bland),
// or -1 at optimality. worstReduced is left holding the most negative
// reduced cost seen, for the unboundedness fallback.
func (r *revised) price(cost []float64, bland bool) int {
	span := pkgObs.PriceSeconds.Start()
	defer span.End()
	r.duals(cost)
	best := -1
	bestD := -epsReduced
	r.worstReduced = 0
	for j := 0; j < r.nTotal; j++ {
		if r.banned[j] || r.basisPos[j] >= 0 {
			continue
		}
		d := r.reducedCost(cost, j)
		if d < r.worstReduced {
			r.worstReduced = d
		}
		if d < -epsReduced {
			if bland {
				return j
			}
			if d < bestD {
				best, bestD = j, d
			}
		}
	}
	return best
}

// ratioTest returns the leaving position for FTRAN column w, or -1 if
// no entry admits one. Ties break on the smallest basis variable
// index, mirroring the dense tableau's lexicographic anti-cycling.
func (r *revised) ratioTest(w []float64) int {
	leave := -1
	var bestRatio float64
	for i := 0; i < r.m; i++ {
		wi := w[i]
		if wi <= epsPivot {
			continue
		}
		ratio := r.xB[i] / wi
		if leave < 0 || ratio < bestRatio-epsPivot ||
			(math.Abs(ratio-bestRatio) <= epsPivot && r.basis[i] < r.basis[leave]) {
			leave, bestRatio = i, ratio
		}
	}
	return leave
}

// anyEnteringWithLeave scans every improving column, most negative
// reduced cost first, for one admitting a ratio test (the dense
// solver's pre-Unbounded fallback). The winning column's FTRAN is left
// in r.w. Requires r.y to be current (price ran this iteration).
func (r *revised) anyEnteringWithLeave(cost []float64) (enter, leave int) {
	type cand struct {
		j int
		d float64
	}
	var cands []cand
	for j := 0; j < r.nTotal; j++ {
		if r.banned[j] || r.basisPos[j] >= 0 {
			continue
		}
		if d := r.reducedCost(cost, j); d < -epsReduced {
			cands = append(cands, cand{j, d})
		}
	}
	for len(cands) > 0 {
		best := 0
		for i := range cands {
			if cands[i].d < cands[best].d {
				best = i
			}
		}
		j := cands[best].j
		r.ftranCol(j, r.w)
		if l := r.ratioTest(r.w); l >= 0 {
			return j, l
		}
		cands[best] = cands[len(cands)-1]
		cands = cands[:len(cands)-1]
	}
	return -1, -1
}

// pivot applies the basis change (enter at position leave, FTRAN in
// w): updates xB, records the eta, and refactors when the eta file is
// full. The returned error signals numerical breakdown.
func (r *revised) pivot(leave, enter int, w []float64) error {
	span := pkgObs.UpdateSeconds.Start()
	defer span.End()
	theta := r.xB[leave] / w[leave]
	for i := range r.xB {
		if i != leave && w[i] != 0 {
			r.xB[i] -= w[i] * theta
		}
	}
	r.xB[leave] = theta
	if err := r.blu.push(leave, w); err != nil {
		return err
	}
	r.basisPos[r.basis[leave]] = -1
	r.setBasic(leave, enter)
	if r.blu.needsRefactor() {
		return r.refactor()
	}
	return nil
}

// run iterates pivots under cost to optimality; the Status follows the
// dense solver's contract exactly. A non-nil error means numerical
// breakdown (singular refactorization) and the caller should fall back
// to the dense solver.
func (r *revised) run(cost []float64, blandAfter int) (Status, int, error) {
	maxIter := iterFactor * (r.m + r.nTotal)
	if maxIter < iterFloor {
		maxIter = iterFloor
	}
	iters := 0
	for ; iters < maxIter; iters++ {
		enter := r.price(cost, iters >= blandAfter)
		if enter < 0 {
			return Optimal, iters, nil
		}
		r.ftranCol(enter, r.w)
		leave := r.ratioTest(r.w)
		if leave < 0 {
			enter, leave = r.anyEnteringWithLeave(cost)
			if leave < 0 {
				if r.worstReduced >= -looseReduced {
					return Optimal, iters, nil
				}
				return Unbounded, iters, nil
			}
		}
		if err := r.pivot(leave, enter, r.w); err != nil {
			return IterLimit, iters, err
		}
	}
	return IterLimit, iters, nil
}

func (r *revised) phase1Cost() []float64 {
	c := make([]float64, r.nTotal)
	for v := r.nVar + r.nSlack; v < r.nTotal; v++ {
		c[v] = 1
	}
	return c
}

func (r *revised) phase2Cost() []float64 {
	c := make([]float64, r.nTotal)
	copy(c, r.p.obj)
	return c
}

// phase1Obj is the artificial-variable sum at the current basis.
func (r *revised) phase1Obj() float64 {
	sum := 0.0
	for i, bv := range r.basis {
		if bv >= r.nVar+r.nSlack {
			sum += r.xB[i]
		}
	}
	return sum
}

// banArtificials drives basic artificials out where a non-artificial
// pivot exists in their row (they sit at ~0 after a feasible phase 1,
// so the step is degenerate) and bans all artificial columns from
// re-entering — the same policy as tableau.banArtificials.
func (r *revised) banArtificials() error {
	for i := 0; i < r.m; i++ {
		if r.basis[i] < r.nVar+r.nSlack {
			continue
		}
		// ρ = B⁻ᵀ·e_i is row i of B⁻¹; α_j = ρ·A_j is the tableau entry
		// the dense solver would inspect.
		for k := range r.posScratch {
			r.posScratch[k] = 0
		}
		r.posScratch[i] = 1
		r.blu.btran(r.posScratch, r.y)
		for j := 0; j < r.nVar+r.nSlack; j++ {
			if r.basisPos[j] >= 0 {
				continue
			}
			alpha := 0.0
			c := r.cols[j]
			for t, row := range c.ind {
				alpha += c.val[t] * r.y[row]
			}
			if math.Abs(alpha) <= epsPivot {
				continue
			}
			r.ftranCol(j, r.w)
			if math.Abs(r.w[i]) <= epsPivot {
				continue // eta-file roundoff disagrees; try another column
			}
			if err := r.pivot(i, j, r.w); err != nil {
				return err
			}
			break
		}
		// A row with no eligible pivot is redundant; its artificial
		// stays basic at zero, harmless once the column is banned.
	}
	for v := r.nVar + r.nSlack; v < r.nTotal; v++ {
		r.banned[v] = true
	}
	return nil
}

// solveRevised runs two-phase revised simplex on p. A non-nil error
// reports numerical breakdown; the caller decides the fallback.
func solveRevised(p *Problem) (*Solution, error) {
	r := newRevised(p)
	if err := r.refactor(); err != nil {
		return nil, err
	}
	sol := &Solution{X: make([]float64, p.numVars)}

	if r.nArt > 0 {
		p1Span := pkgObs.Phase1Seconds.Start()
		status, iters, err := r.run(r.phase1Cost(), blandAfter)
		p1Span.End()
		sol.Iterations += iters
		pkgObs.Pivots.Add(int64(iters))
		if err != nil {
			return nil, err
		}
		if status == IterLimit {
			sol.Status = IterLimit
			return sol, nil
		}
		if r.phase1Obj() > epsFeas {
			sol.Status = Infeasible
			return sol, nil
		}
		if err := r.banArtificials(); err != nil {
			return nil, err
		}
	}

	p2Span := pkgObs.Phase2Seconds.Start()
	status, iters, err := r.run(r.phase2Cost(), blandAfter)
	p2Span.End()
	sol.Iterations += iters
	pkgObs.Pivots.Add(int64(iters))
	if err != nil {
		return nil, err
	}
	sol.Status = status
	if status != Optimal {
		return sol, nil
	}
	for i, bv := range r.basis {
		if bv < p.numVars {
			sol.X[bv] = r.xB[i]
		}
	}
	sol.Objective = Objective(p, sol.X)
	return sol, nil
}
