package scenario

import (
	"fmt"
	"math"
	"math/rand"

	"coflow/internal/coflowmodel"
)

// Arrival is a pluggable arrival process: it draws the gaps between
// consecutive coflow releases.
type Arrival struct {
	// Kind is "poisson" (memoryless gaps), "mmpp" (a two-state
	// Markov-modulated Poisson process alternating calm and burst
	// phases) or "diurnal" (a sinusoidal rate ramp over Period slots,
	// the classic day/night load curve).
	Kind string `json:"kind"`
	// Mean is the calm-phase mean interarrival gap in slots.
	Mean float64 `json:"mean"`
	// Burst is the burst-phase mean gap (mmpp only; must be < Mean).
	Burst float64 `json:"burst,omitempty"`
	// SwitchEvery is the mean phase length in slots (mmpp only).
	SwitchEvery float64 `json:"switch_every,omitempty"`
	// Period is the diurnal cycle length in slots (diurnal only).
	Period float64 `json:"period,omitempty"`
}

// Shape is a pluggable demand shaper: it draws one coflow's flows.
type Shape struct {
	// Kind is "pareto" (the trace generator's heavy-tailed shuffle),
	// "hotspot" (egress picks concentrate on a few hot ports) or
	// "convoy" (every coflow is a thin chain through one victim
	// egress port — the adversarial single-port pile-up).
	Kind string `json:"kind"`
	// MaxFlowSize caps one flow's size (default 100).
	MaxFlowSize int64 `json:"max_flow_size,omitempty"`
	// ParetoAlpha shapes the size tail (default 1.26, the trace
	// calibration; smaller = heavier).
	ParetoAlpha float64 `json:"pareto_alpha,omitempty"`
	// MinWidth/MaxWidth clamp the per-side port count (0 = free).
	MinWidth int `json:"min_width,omitempty"`
	MaxWidth int `json:"max_width,omitempty"`
	// HotPorts is how many egress ports carry the skew (hotspot only;
	// default 2).
	HotPorts int `json:"hot_ports,omitempty"`
	// HotBias is the probability an egress pick is redirected to a
	// hot port (hotspot only; default 0.8).
	HotBias float64 `json:"hot_bias,omitempty"`
	// ConvoyPort is the victim egress (convoy only).
	ConvoyPort int `json:"convoy_port,omitempty"`
}

// Churn is the cancellation model applied to generated coflows.
type Churn struct {
	// CancelProb is the chance a coflow is cancelled mid-flight.
	CancelProb float64 `json:"cancel_prob,omitempty"`
	// MeanDelay is the mean gap (slots) between a coflow's release
	// and its cancellation (default 4).
	MeanDelay float64 `json:"mean_delay,omitempty"`
	// ReRegister re-submits a cancelled coflow's demand under the
	// same key after a further MeanDelay — the retry storm case.
	ReRegister bool `json:"re_register,omitempty"`
	// ProbeEvery, when positive, injects a 1-unit probe coflow every
	// that many slots. Probes are the starvation canary: their
	// slowdown tail measures how long a minimal coflow can be starved
	// by the surrounding workload.
	ProbeEvery int64 `json:"probe_every,omitempty"`
}

// FailureWindow schedules one port outage.
type FailureWindow struct {
	Port      int   `json:"port"`
	At        int64 `json:"at"`
	RecoverAt int64 `json:"recover_at"`
}

// Config assembles a generator run: fabric, arrival process, shaper,
// churn and failure schedule. Generation is deterministic in Seed.
type Config struct {
	Name     string          `json:"name"`
	Ports    int             `json:"ports"`
	Coflows  int             `json:"coflows"`
	Seed     int64           `json:"seed"`
	Arrival  Arrival         `json:"arrival"`
	Shape    Shape           `json:"shape"`
	Churn    Churn           `json:"churn,omitempty"`
	Failures []FailureWindow `json:"failures,omitempty"`
}

// Validate checks the generator configuration.
func (c *Config) Validate() error {
	if c.Ports <= 0 {
		return fmt.Errorf("scenario: non-positive port count %d", c.Ports)
	}
	if c.Coflows <= 0 {
		return fmt.Errorf("scenario: non-positive coflow count %d", c.Coflows)
	}
	switch c.Arrival.Kind {
	case "poisson":
	case "mmpp":
		if c.Arrival.Burst <= 0 || c.Arrival.Burst >= c.Arrival.Mean {
			return fmt.Errorf("scenario: mmpp burst gap %g must be in (0, mean %g)", c.Arrival.Burst, c.Arrival.Mean)
		}
	case "diurnal":
		if c.Arrival.Period <= 0 {
			return fmt.Errorf("scenario: diurnal needs a positive period, got %g", c.Arrival.Period)
		}
	default:
		return fmt.Errorf("scenario: unknown arrival kind %q", c.Arrival.Kind)
	}
	if c.Arrival.Mean <= 0 {
		return fmt.Errorf("scenario: non-positive mean interarrival %g", c.Arrival.Mean)
	}
	switch c.Shape.Kind {
	case "pareto", "hotspot":
	case "convoy":
		if c.Shape.ConvoyPort < 0 || c.Shape.ConvoyPort >= c.Ports {
			return fmt.Errorf("scenario: convoy port %d outside %d ports", c.Shape.ConvoyPort, c.Ports)
		}
	default:
		return fmt.Errorf("scenario: unknown shape kind %q", c.Shape.Kind)
	}
	if c.Shape.MinWidth < 0 || c.Shape.MaxWidth < 0 ||
		c.Shape.MinWidth > c.Ports || c.Shape.MaxWidth > c.Ports ||
		(c.Shape.MaxWidth > 0 && c.Shape.MinWidth > c.Shape.MaxWidth) {
		return fmt.Errorf("scenario: bad width bounds %d/%d for %d ports", c.Shape.MinWidth, c.Shape.MaxWidth, c.Ports)
	}
	if c.Churn.CancelProb < 0 || c.Churn.CancelProb > 1 {
		return fmt.Errorf("scenario: cancel probability %g outside [0,1]", c.Churn.CancelProb)
	}
	for i, fw := range c.Failures {
		if fw.Port < 0 || fw.Port >= c.Ports {
			return fmt.Errorf("scenario: failure %d port %d outside %d ports", i, fw.Port, c.Ports)
		}
		if fw.At < 0 || fw.RecoverAt <= fw.At {
			return fmt.Errorf("scenario: failure %d window [%d,%d) is empty", i, fw.At, fw.RecoverAt)
		}
	}
	return nil
}

// Generate expands the configuration into a validated Script.
func Generate(cfg Config) (*Script, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	s := &Script{Name: cfg.Name, Ports: cfg.Ports}

	key := 0
	var release int64
	var lastRelease int64
	for k := 0; k < cfg.Coflows; k++ {
		if k > 0 {
			release += gap(rng, cfg.Arrival, release)
		}
		lastRelease = release
		key++
		flows := cfg.Shape.flows(rng, cfg.Ports)
		s.Events = append(s.Events, Event{Slot: release, Op: OpRegister, Key: key, Weight: 1, Flows: flows})
		if rng.Float64() < cfg.Churn.CancelProb {
			meanDelay := cfg.Churn.MeanDelay
			if meanDelay <= 0 {
				meanDelay = 4
			}
			cancelAt := release + 1 + int64(rng.ExpFloat64()*meanDelay)
			s.Events = append(s.Events, Event{Slot: cancelAt, Op: OpCancel, Key: key})
			if cfg.Churn.ReRegister {
				// Same key, strictly after the cancel: the script-level
				// lifecycle (register → cancel → register) stays valid
				// whether or not the original completed first.
				reAt := cancelAt + 1 + int64(rng.ExpFloat64()*meanDelay)
				s.Events = append(s.Events, Event{Slot: reAt, Op: OpRegister, Key: key, Weight: 1, Flows: flows})
			}
		}
	}
	if pe := cfg.Churn.ProbeEvery; pe > 0 {
		for at := pe; at <= lastRelease; at += pe {
			key++
			s.Events = append(s.Events, Event{Slot: at, Op: OpRegister, Key: key, Weight: 1,
				Flows: []coflowmodel.Flow{{Src: rng.Intn(cfg.Ports), Dst: rng.Intn(cfg.Ports), Size: 1}}})
		}
	}
	for _, fw := range cfg.Failures {
		s.Events = append(s.Events,
			Event{Slot: fw.At, Op: OpFail, Port: fw.Port},
			Event{Slot: fw.RecoverAt, Op: OpRecover, Port: fw.Port})
	}
	sortEvents(s.Events)
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("scenario: generated invalid script: %w", err)
	}
	return s, nil
}

// gap draws the next interarrival gap (≥ 0 slots) at absolute time t.
func gap(rng *rand.Rand, a Arrival, t int64) int64 {
	mean := a.Mean
	switch a.Kind {
	case "mmpp":
		// Approximate the two-state modulated process by picking the
		// phase from its stationary split (equal mean phase lengths →
		// 50/50) per arrival; SwitchEvery biases toward calm.
		p := 0.5
		if a.SwitchEvery > 0 {
			p = 1 / (1 + a.SwitchEvery/a.Mean)
		}
		if rng.Float64() > p {
			mean = a.Burst
		}
	case "diurnal":
		// Rate swings ×4 over the period: gaps shrink at the peak and
		// stretch in the trough.
		phase := 2 * math.Pi * float64(t) / a.Period
		mean = a.Mean * (1 + 0.75*math.Cos(phase))
		if mean < a.Mean/4 {
			mean = a.Mean / 4
		}
	}
	return int64(math.Round(rng.ExpFloat64() * mean))
}

// flows draws one coflow's demand under the shaper.
func (sh Shape) flows(rng *rand.Rand, ports int) []coflowmodel.Flow {
	maxSize := sh.MaxFlowSize
	if maxSize <= 0 {
		maxSize = 100
	}
	alpha := sh.ParetoAlpha
	if alpha <= 0 {
		alpha = 1.26
	}
	size := func() int64 {
		v := int64(math.Ceil(math.Pow(1-rng.Float64(), -1/alpha)))
		if v > maxSize {
			v = maxSize
		}
		if v < 1 {
			v = 1
		}
		return v
	}
	if sh.Kind == "convoy" {
		// One long flow into the victim egress: the whole scenario
		// piles its demand onto a single port's capacity.
		return []coflowmodel.Flow{{Src: rng.Intn(ports), Dst: sh.ConvoyPort, Size: size()}}
	}
	width := func() int {
		w := 1 + rng.Intn(max(1, ports/2))
		if sh.MinWidth > 0 && w < sh.MinWidth {
			w = sh.MinWidth
		}
		if sh.MaxWidth > 0 && w > sh.MaxWidth {
			w = sh.MaxWidth
		}
		if w > ports {
			w = ports
		}
		return w
	}
	srcs := rng.Perm(ports)[:width()]
	dsts := rng.Perm(ports)[:width()]
	if sh.Kind == "hotspot" {
		hot := sh.HotPorts
		if hot <= 0 {
			hot = 2
		}
		if hot > ports {
			hot = ports
		}
		bias := sh.HotBias
		if bias <= 0 {
			bias = 0.8
		}
		for i := range dsts {
			if rng.Float64() < bias {
				dsts[i] = rng.Intn(hot)
			}
		}
	}
	var flows []coflowmodel.Flow
	for _, src := range srcs {
		for _, dst := range dsts {
			flows = append(flows, coflowmodel.Flow{Src: src, Dst: dst, Size: size()})
		}
	}
	return flows
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
