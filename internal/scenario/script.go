// Package scenario is the workload stress layer: it composes arrival
// processes, demand shapers, churn models and failure injection into
// timed event scripts, and replays them against the online scheduling
// stack — in-process (online.State + online.Planner under a
// check.Monitor) or over HTTP (cmd/coflowload -scenario) against a
// live daemon or sharded cluster.
//
// The paper's experiments (§4) run one friendly batch distribution;
// the authors' follow-up experimental work evaluates the same
// algorithms under release dates and varied workload mixes. A script
// is that methodology made concrete and replayable: a deterministic,
// JSON-serializable stream of register / cancel / port-failure events
// that both replay drivers consume unchanged, so an invariant
// violation found in one plane reproduces in the other.
package scenario

import (
	"encoding/json"
	"fmt"
	"sort"

	"coflow/internal/coflowmodel"
)

// Op is the kind of one scripted event.
type Op string

const (
	// OpRegister introduces a coflow: Key, Weight and Flows are set,
	// and the event's slot is the coflow's release date.
	OpRegister Op = "register"
	// OpCancel removes a coflow mid-flight. At replay time the coflow
	// may already have completed — that race is the point; drivers
	// count such hits as expected churn, never as errors.
	OpCancel Op = "cancel"
	// OpFail takes a switch port offline: demand touching it parks
	// (is never dropped) until OpRecover.
	OpFail Op = "fail"
	// OpRecover brings a failed port back.
	OpRecover Op = "recover"
)

// Event is one timed entry of a script. Slot is when it takes effect:
// all events at slot s apply before slot s is served.
type Event struct {
	Slot int64 `json:"slot"`
	Op   Op    `json:"op"`
	// Key identifies the coflow for register/cancel. Keys may be
	// reused by a later register only after an intervening cancel
	// (the churn model's re-registration).
	Key int `json:"key,omitempty"`
	// Weight is the coflow's objective weight (register only;
	// defaults to 1 when omitted).
	Weight float64 `json:"weight,omitempty"`
	// Flows is the coflow's demand (register only).
	Flows []coflowmodel.Flow `json:"flows,omitempty"`
	// Port is the switch port for fail/recover.
	Port int `json:"port,omitempty"`
}

// Script is a replayable workload: a fabric size plus a slot-ordered
// event stream. Scripts are deterministic and JSON round-trippable —
// the same bytes drive the in-process and the HTTP replay drivers.
type Script struct {
	// Name labels reports and reproducer dumps.
	Name string `json:"name"`
	// Ports is the switch size m every event is validated against.
	Ports int `json:"ports"`
	// Events is sorted by Slot (stable within a slot).
	Events []Event `json:"events"`
}

// Validate checks the script: a positive fabric, slot-sorted events,
// in-range flows and ports, and a consistent per-key lifecycle
// (register → cancel → optional re-register). Cancelling a key that
// was never registered is an error; cancelling one that may already
// have completed at replay time is not — completion timing is the
// scheduler's business, not the script's.
func (s *Script) Validate() error {
	if s.Ports <= 0 {
		return fmt.Errorf("scenario: non-positive port count %d", s.Ports)
	}
	if len(s.Events) == 0 {
		return fmt.Errorf("scenario: script %q has no events", s.Name)
	}
	live := map[int]bool{}  // key currently registered (not yet cancelled)
	known := map[int]bool{} // key registered at least once
	var prev int64
	for i, ev := range s.Events {
		if ev.Slot < 0 {
			return fmt.Errorf("scenario: event %d has negative slot %d", i, ev.Slot)
		}
		if ev.Slot < prev {
			return fmt.Errorf("scenario: event %d (slot %d) out of order after slot %d", i, ev.Slot, prev)
		}
		prev = ev.Slot
		switch ev.Op {
		case OpRegister:
			if ev.Key <= 0 {
				return fmt.Errorf("scenario: event %d registers non-positive key %d", i, ev.Key)
			}
			if live[ev.Key] {
				return fmt.Errorf("scenario: event %d re-registers live key %d without a cancel", i, ev.Key)
			}
			if ev.Weight < 0 {
				return fmt.Errorf("scenario: event %d has negative weight %g", i, ev.Weight)
			}
			var total int64
			for _, f := range ev.Flows {
				if f.Src < 0 || f.Src >= s.Ports || f.Dst < 0 || f.Dst >= s.Ports {
					return fmt.Errorf("scenario: event %d flow (%d→%d) outside %d ports", i, f.Src, f.Dst, s.Ports)
				}
				if f.Size < 0 {
					return fmt.Errorf("scenario: event %d has negative flow size %d", i, f.Size)
				}
				total += f.Size
			}
			if total == 0 {
				return fmt.Errorf("scenario: event %d registers key %d with no demand", i, ev.Key)
			}
			live[ev.Key], known[ev.Key] = true, true
		case OpCancel:
			if !known[ev.Key] {
				return fmt.Errorf("scenario: event %d cancels unknown key %d", i, ev.Key)
			}
			if !live[ev.Key] {
				return fmt.Errorf("scenario: event %d cancels key %d twice", i, ev.Key)
			}
			live[ev.Key] = false
		case OpFail, OpRecover:
			if ev.Port < 0 || ev.Port >= s.Ports {
				return fmt.Errorf("scenario: event %d %ss port %d outside %d ports", i, ev.Op, ev.Port, s.Ports)
			}
		default:
			return fmt.Errorf("scenario: event %d has unknown op %q", i, ev.Op)
		}
	}
	return nil
}

// Registers returns the number of register events.
func (s *Script) Registers() int {
	n := 0
	for _, ev := range s.Events {
		if ev.Op == OpRegister {
			n++
		}
	}
	return n
}

// TotalDemand sums the demand of every register event.
func (s *Script) TotalDemand() int64 {
	var total int64
	for _, ev := range s.Events {
		if ev.Op != OpRegister {
			continue
		}
		for _, f := range ev.Flows {
			total += f.Size
		}
	}
	return total
}

// Horizon is a generous slot bound for replaying the script: the last
// event plus every unit of demand plus one recovery pass per port. A
// non-stalled scheduler finishes well inside it; the drivers treat
// exceeding it as a stall.
func (s *Script) Horizon() int64 {
	var last int64
	for _, ev := range s.Events {
		if ev.Slot > last {
			last = ev.Slot
		}
	}
	return last + s.TotalDemand() + int64(s.Ports) + 1
}

// sortEvents orders events by slot, keeping the generation order
// within a slot (cancels emitted before re-registers stay that way).
func sortEvents(events []Event) {
	sort.SliceStable(events, func(a, b int) bool { return events[a].Slot < events[b].Slot })
}

// Parse decodes and validates a JSON script.
func Parse(data []byte) (*Script, error) {
	var s Script
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("scenario: bad script JSON: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Encode renders the script as indented JSON. Parse(Encode(s)) is the
// identity on validated scripts.
func (s *Script) Encode() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}
