package scenario

import (
	"reflect"
	"testing"

	"coflow/internal/coflowmodel"
)

func validScript() *Script {
	return &Script{
		Name:  "t",
		Ports: 4,
		Events: []Event{
			{Slot: 0, Op: OpRegister, Key: 1, Weight: 1, Flows: []coflowmodel.Flow{{Src: 0, Dst: 1, Size: 3}}},
			{Slot: 1, Op: OpFail, Port: 2},
			{Slot: 2, Op: OpCancel, Key: 1},
			{Slot: 3, Op: OpRegister, Key: 1, Weight: 2, Flows: []coflowmodel.Flow{{Src: 1, Dst: 0, Size: 1}}},
			{Slot: 4, Op: OpRecover, Port: 2},
		},
	}
}

func TestScriptValidate(t *testing.T) {
	if err := validScript().Validate(); err != nil {
		t.Fatal(err)
	}
	mods := map[string]func(*Script){
		"ports":          func(s *Script) { s.Ports = 0 },
		"empty":          func(s *Script) { s.Events = nil },
		"order":          func(s *Script) { s.Events[1].Slot = 99 },
		"neg-slot":       func(s *Script) { s.Events[0].Slot = -1 },
		"bad-key":        func(s *Script) { s.Events[0].Key = 0 },
		"dup-live":       func(s *Script) { s.Events[2] = s.Events[0]; s.Events[2].Slot = 2 },
		"cancel-unknown": func(s *Script) { s.Events[2].Key = 9 },
		"flow-range":     func(s *Script) { s.Events[0].Flows[0].Dst = 4 },
		"neg-size":       func(s *Script) { s.Events[0].Flows[0].Size = -1 },
		"no-demand":      func(s *Script) { s.Events[0].Flows[0].Size = 0 },
		"port-range":     func(s *Script) { s.Events[1].Port = 4 },
		"bad-op":         func(s *Script) { s.Events[1].Op = "explode" },
	}
	for name, mod := range mods {
		s := validScript()
		mod(s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: invalid script accepted", name)
		}
	}
	// Double cancel without an intervening register is invalid.
	s := validScript()
	s.Events = append(s.Events[:4:4], Event{Slot: 5, Op: OpCancel, Key: 1}, Event{Slot: 6, Op: OpCancel, Key: 1})
	if err := s.Validate(); err == nil {
		t.Error("double cancel accepted")
	}
}

// TestScriptJSONRoundTrip: Parse(Encode(s)) is the identity — the
// schema the HTTP and in-process drivers share survives serialization
// byte-for-byte at the struct level.
func TestScriptJSONRoundTrip(t *testing.T) {
	for _, name := range Builtins() {
		s, err := Builtin(name)
		if err != nil {
			t.Fatal(err)
		}
		blob, err := s.Encode()
		if err != nil {
			t.Fatal(err)
		}
		back, err := Parse(blob)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(s, back) {
			t.Fatalf("%s: round trip changed the script", name)
		}
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	for _, blob := range []string{`{`, `"x"`, `{"name":"a","ports":0,"events":[]}`} {
		if _, err := Parse([]byte(blob)); err == nil {
			t.Errorf("Parse(%q) accepted", blob)
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	base := builtins["poisson-baseline"]
	mods := map[string]func(*Config){
		"ports":        func(c *Config) { c.Ports = 0 },
		"coflows":      func(c *Config) { c.Coflows = 0 },
		"arrival-kind": func(c *Config) { c.Arrival.Kind = "quantum" },
		"arrival-mean": func(c *Config) { c.Arrival.Mean = 0 },
		"mmpp-burst":   func(c *Config) { c.Arrival = Arrival{Kind: "mmpp", Mean: 4, Burst: 5} },
		"diurnal":      func(c *Config) { c.Arrival = Arrival{Kind: "diurnal", Mean: 4} },
		"shape-kind":   func(c *Config) { c.Shape.Kind = "cursed" },
		"convoy-port":  func(c *Config) { c.Shape = Shape{Kind: "convoy", ConvoyPort: 99} },
		"widths":       func(c *Config) { c.Shape.MinWidth = 9; c.Shape.MaxWidth = 2 },
		"cancel-prob":  func(c *Config) { c.Churn.CancelProb = 1.5 },
		"fail-window":  func(c *Config) { c.Failures = []FailureWindow{{Port: 0, At: 5, RecoverAt: 5}} },
		"fail-port":    func(c *Config) { c.Failures = []FailureWindow{{Port: 99, At: 5, RecoverAt: 9}} },
	}
	for name, mod := range mods {
		cfg := base
		mod(&cfg)
		if _, err := Generate(cfg); err == nil {
			t.Errorf("%s: invalid config accepted", name)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := builtins["churn-cancel"]
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different scripts")
	}
	cfg.Seed++
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical scripts")
	}
}

func TestBuiltinsCoverStressors(t *testing.T) {
	names := Builtins()
	if len(names) < 6 {
		t.Fatalf("only %d builtins: %v", len(names), names)
	}
	if _, err := Builtin("no-such-scenario"); err == nil {
		t.Fatal("unknown builtin accepted")
	}
	churn, err := Builtin("churn-cancel")
	if err != nil {
		t.Fatal(err)
	}
	cancels := 0
	for _, ev := range churn.Events {
		if ev.Op == OpCancel {
			cancels++
		}
	}
	if cancels == 0 {
		t.Fatal("churn-cancel generated no cancels")
	}
	failure, err := Builtin("port-failure")
	if err != nil {
		t.Fatal(err)
	}
	fails := 0
	for _, ev := range failure.Events {
		if ev.Op == OpFail {
			fails++
		}
	}
	if fails != 2 {
		t.Fatalf("port-failure generated %d fail events, want 2", fails)
	}
	convoy, err := Builtin("heavy-tail-convoy")
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range convoy.Events {
		for _, f := range ev.Flows {
			if f.Dst != 0 {
				t.Fatalf("convoy flow targets port %d, want the victim 0", f.Dst)
			}
		}
	}
}
