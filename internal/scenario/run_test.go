package scenario

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"coflow/internal/coflowmodel"
	"coflow/internal/online"
)

// TestBuiltinsReplayClean is the acceptance gate: every built-in
// scenario replays through the in-process driver under every policy
// with the monitor validating each slot, the planner cross-checked,
// zero violations, and zero demand lost — in == served + shed, with
// nothing left live.
func TestBuiltinsReplayClean(t *testing.T) {
	for _, name := range Builtins() {
		script, err := Builtin(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, policy := range []online.Policy{online.FIFO, online.SEBF, online.WSPT} {
			rep, err := Run(script, Options{Policy: policy, Plan: true})
			if err != nil {
				t.Fatalf("%s/%s: %v", name, policy, err)
			}
			if len(rep.Violations) != 0 {
				t.Fatalf("%s/%s: %d violations: %v", name, policy, len(rep.Violations), rep.Violations)
			}
			if rep.DemandLive != 0 {
				t.Fatalf("%s/%s: %d units still live after replay", name, policy, rep.DemandLive)
			}
			if rep.DemandIn != rep.DemandServed+rep.DemandShed {
				t.Fatalf("%s/%s: demand lost: in %d, served %d, shed %d",
					name, policy, rep.DemandIn, rep.DemandServed, rep.DemandShed)
			}
			if rep.Completed+rep.Cancelled != rep.Registered {
				t.Fatalf("%s/%s: %d registered but %d completed + %d cancelled",
					name, policy, rep.Registered, rep.Completed, rep.Cancelled)
			}
			if rep.Completed > 0 && (rep.Slowdown.Count != rep.Completed || rep.Slowdown.P50 < 1) {
				t.Fatalf("%s/%s: slowdown summary %+v for %d completions",
					name, policy, rep.Slowdown, rep.Completed)
			}
		}
	}
}

// TestChurnShadowReplay runs the churn scenario through the
// check.Shadow differential oracle: the fast sparse path and the
// dense reference must agree on every slot under cancellation churn.
func TestChurnShadowReplay(t *testing.T) {
	script, err := Builtin("churn-cancel")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(script, Options{Policy: online.SEBF, Shadow: true, ReproDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) != 0 {
		t.Fatalf("shadow replay violated: %v", rep.Violations)
	}
}

// TestShadowRejectsFailureScripts: the dense reference does not model
// port failures, so shadow mode must refuse rather than report false
// divergences.
func TestShadowRejectsFailureScripts(t *testing.T) {
	script, err := Builtin("port-failure")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(script, Options{Policy: online.SEBF, Shadow: true}); err == nil ||
		!strings.Contains(err.Error(), "port failures") {
		t.Fatalf("shadow accepted a failure script: %v", err)
	}
}

// TestPortFailureParksDemand pins the tentpole invariant directly: a
// script whose only coflow sits entirely on a failed port must end
// with that demand served after recovery — parked in between, never
// dropped — and the replay must count zero violations.
func TestPortFailureParksDemand(t *testing.T) {
	script := &Script{
		Name:  "parked",
		Ports: 3,
		Events: []Event{
			{Slot: 0, Op: OpFail, Port: 0},
			{Slot: 0, Op: OpRegister, Key: 1, Flows: []coflowmodel.Flow{{Src: 0, Dst: 1, Size: 4}}},
			{Slot: 0, Op: OpRegister, Key: 2, Flows: []coflowmodel.Flow{{Src: 2, Dst: 1, Size: 2}}},
			{Slot: 10, Op: OpRecover, Port: 0},
		},
	}
	rep, err := Run(script, Options{Policy: online.SEBF, Plan: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) != 0 {
		t.Fatalf("violations: %v", rep.Violations)
	}
	if rep.DemandServed != 6 || rep.Completed != 2 {
		t.Fatalf("served %d / completed %d, want all 6 units across 2 coflows", rep.DemandServed, rep.Completed)
	}
	// Key 1 cannot finish before the recovery at slot 10 plus its 4
	// units; key 2 is unobstructed.
	if rep.Slots < 13 {
		t.Fatalf("replay finished at slot %d, before the parked demand could drain", rep.Slots)
	}
}

// TestCancelOfCompletedIsExpectedChurn: a cancel landing after its
// coflow completed is counted, not treated as an error.
func TestCancelOfCompletedIsExpectedChurn(t *testing.T) {
	script := &Script{
		Name:  "late-cancel",
		Ports: 2,
		Events: []Event{
			{Slot: 0, Op: OpRegister, Key: 1, Flows: []coflowmodel.Flow{{Src: 0, Dst: 1, Size: 1}}},
			{Slot: 5, Op: OpCancel, Key: 1},
		},
	}
	rep, err := Run(script, Options{Policy: online.FIFO, Plan: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.CancelMisses != 1 || rep.Cancelled != 0 || rep.Completed != 1 {
		t.Fatalf("report = %+v, want one cancel miss and one completion", rep)
	}
	if len(rep.Violations) != 0 {
		t.Fatalf("violations: %v", rep.Violations)
	}
}

// TestReproducerDump: a violating replay writes a parseable JSON
// reproducer containing the script and the violation text.
func TestReproducerDump(t *testing.T) {
	dir := t.TempDir()
	script := validScript()
	path := dumpReproducer(dir, script, []string{"slot 3: something broke"})
	if path == "" {
		t.Fatal("no reproducer written")
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var repro struct {
		Script     *Script  `json:"script"`
		Violations []string `json:"violations"`
	}
	if err := json.Unmarshal(blob, &repro); err != nil {
		t.Fatal(err)
	}
	if repro.Script == nil || repro.Script.Name != script.Name || len(repro.Violations) != 1 {
		t.Fatalf("reproducer = %+v", repro)
	}
	if err := repro.Script.Validate(); err != nil {
		t.Fatalf("reproducer script does not validate: %v", err)
	}
	if filepath.Dir(path) != dir {
		t.Fatalf("reproducer %s outside %s", path, dir)
	}
}

// TestStallDetection: a script that parks all demand forever (fail
// with no recover) trips the horizon guard instead of spinning.
func TestStallDetection(t *testing.T) {
	script := &Script{
		Name:  "stall",
		Ports: 2,
		Events: []Event{
			{Slot: 0, Op: OpFail, Port: 0},
			{Slot: 0, Op: OpFail, Port: 1},
			{Slot: 0, Op: OpRegister, Key: 1, Flows: []coflowmodel.Flow{{Src: 0, Dst: 1, Size: 2}}},
		},
	}
	if _, err := Run(script, Options{Policy: online.SEBF, MaxSlots: 50}); err == nil ||
		!strings.Contains(err.Error(), "stalled") {
		t.Fatalf("stall not detected: %v", err)
	}
}
