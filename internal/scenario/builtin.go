package scenario

import (
	"fmt"
	"sort"
)

// builtins are the named stress scenarios shipped with the repo. They
// are deliberately modest (tens of coflows, ≤ 32 ports) so the whole
// catalog smoke-replays in seconds under `make scenarios`, while still
// covering each stressor class: steady arrivals, bursts, diurnal
// ramps, an adversarial single-port convoy, cancellation churn with
// re-registration, and port failures mid-flight.
var builtins = map[string]Config{
	"poisson-baseline": {
		Name: "poisson-baseline", Ports: 16, Coflows: 60, Seed: 1,
		Arrival: Arrival{Kind: "poisson", Mean: 4},
		Shape:   Shape{Kind: "pareto", MaxFlowSize: 50, MaxWidth: 6},
	},
	"bursty-mmpp": {
		Name: "bursty-mmpp", Ports: 16, Coflows: 60, Seed: 2,
		Arrival: Arrival{Kind: "mmpp", Mean: 8, Burst: 1, SwitchEvery: 20},
		Shape:   Shape{Kind: "pareto", MaxFlowSize: 50, MaxWidth: 6},
	},
	"diurnal": {
		Name: "diurnal", Ports: 16, Coflows: 60, Seed: 3,
		Arrival: Arrival{Kind: "diurnal", Mean: 5, Period: 80},
		Shape:   Shape{Kind: "hotspot", MaxFlowSize: 40, MaxWidth: 5, HotPorts: 3, HotBias: 0.7},
	},
	"heavy-tail-convoy": {
		Name: "heavy-tail-convoy", Ports: 16, Coflows: 50, Seed: 4,
		Arrival: Arrival{Kind: "poisson", Mean: 2},
		Shape:   Shape{Kind: "convoy", MaxFlowSize: 80, ParetoAlpha: 0.9, ConvoyPort: 0},
	},
	"churn-cancel": {
		Name: "churn-cancel", Ports: 16, Coflows: 60, Seed: 5,
		Arrival: Arrival{Kind: "poisson", Mean: 3},
		Shape:   Shape{Kind: "pareto", MaxFlowSize: 60, MaxWidth: 6},
		Churn:   Churn{CancelProb: 0.4, MeanDelay: 6, ReRegister: true, ProbeEvery: 10},
	},
	"port-failure": {
		Name: "port-failure", Ports: 16, Coflows: 50, Seed: 6,
		Arrival: Arrival{Kind: "poisson", Mean: 3},
		Shape:   Shape{Kind: "pareto", MaxFlowSize: 40, MaxWidth: 5},
		Churn:   Churn{CancelProb: 0.15, MeanDelay: 5},
		Failures: []FailureWindow{
			{Port: 2, At: 20, RecoverAt: 60},
			{Port: 7, At: 40, RecoverAt: 90},
		},
	},
}

// Builtins lists the built-in scenario names, sorted.
func Builtins() []string {
	names := make([]string, 0, len(builtins))
	for name := range builtins {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Builtin expands the named built-in scenario into a script.
func Builtin(name string) (*Script, error) {
	cfg, ok := builtins[name]
	if !ok {
		return nil, fmt.Errorf("scenario: unknown builtin %q (have %v)", name, Builtins())
	}
	return Generate(cfg)
}
