package scenario

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"coflow/internal/check"
	"coflow/internal/online"
	"coflow/internal/stats"
)

// Options tunes an in-process replay.
type Options struct {
	// Policy orders coflows each slot (FIFO, SEBF, WSPT).
	Policy online.Policy
	// Plan drives an online.Planner alongside the scheduler, exactly
	// as coflowd -plan does: Add on register, Observe+Plan every slot,
	// Shed+Plan on cancel. Every slot the planner's load is checked
	// against the live demand's ρ — the invariant the shed-on-cancel
	// bugfix restores.
	Plan bool
	// Shadow replays through the check.Shadow differential oracle
	// (fast State vs dense Reference) instead of the bare State. Any
	// divergence minimizes to a JSON reproducer via the Shadow's own
	// machinery. Scripts with port-failure events cannot run shadowed
	// (the dense reference does not model failures) and are rejected.
	Shadow bool
	// ReproDir, when non-empty, receives a JSON reproducer (script +
	// violations) if the replay surfaces any violation. Shadow
	// divergences additionally dump their own minimized op logs here.
	ReproDir string
	// MaxSlots overrides the stall horizon (0 = Script.Horizon()).
	MaxSlots int64
}

// Report is the outcome of one replay.
type Report struct {
	Name   string `json:"name"`
	Policy string `json:"policy"`
	// Slots is the last slot served.
	Slots int64 `json:"slots"`

	Registered int `json:"registered"`
	Completed  int `json:"completed"`
	Cancelled  int `json:"cancelled"`
	// CancelMisses counts cancel events that arrived after their
	// coflow completed — expected churn, not an error.
	CancelMisses int `json:"cancel_misses"`

	// The conservation ledger: every unit of registered demand must be
	// served, shed by a cancel, or still live when the replay ends
	// (zero at a clean end). Violations mean units were lost.
	DemandIn     int64 `json:"demand_in"`
	DemandServed int64 `json:"demand_served"`
	DemandShed   int64 `json:"demand_shed"`
	DemandLive   int64 `json:"demand_live"`

	// Violations aggregates monitor findings, conservation breaks,
	// planner-load mismatches and shadow divergences.
	Violations []string `json:"violations,omitempty"`
	// ReproPath is the reproducer written when Violations is
	// non-empty and Options.ReproDir was set.
	ReproPath string `json:"repro_path,omitempty"`

	// Slowdown summarizes C_k/(r_k+ρ_k) over completed coflows.
	Slowdown stats.Summary `json:"slowdown"`
	// WeightedCompletion is Σ w_k·C_k over completed coflows.
	WeightedCompletion float64 `json:"weighted_completion"`
}

// regRec tracks one registration generation for the slowdown report.
type regRec struct {
	key     int
	weight  float64
	release int64
	ideal   int64 // release + standalone ρ
}

// Run replays the script in-process: events apply at their slot, the
// scheduler serves every slot, a check.Monitor validates each
// StepResult, and the demand ledger is re-balanced against the live
// state at every event boundary. It returns the report even when the
// replay surfaces violations; the error is reserved for broken
// scripts and stalls.
func Run(script *Script, opts Options) (*Report, error) {
	if err := script.Validate(); err != nil {
		return nil, err
	}
	rep := &Report{Name: script.Name, Policy: opts.Policy.String()}

	var shadow *check.Shadow
	state := online.NewState(script.Ports)
	if opts.Shadow {
		for _, ev := range script.Events {
			if ev.Op == OpFail || ev.Op == OpRecover {
				return nil, fmt.Errorf("scenario: script %q has port failures; the shadow reference does not model them", script.Name)
			}
		}
		shadow = check.NewShadow(script.Ports, check.ShadowConfig{Dir: opts.ReproDir})
		state = shadow.State
	}
	mon := check.NewMonitor(script.Ports)
	var planner *online.Planner
	if opts.Plan {
		planner = online.NewPlanner(script.Ports)
	}

	violate := func(format string, args ...any) {
		if len(rep.Violations) < 32 { // keep reports bounded
			rep.Violations = append(rep.Violations, fmt.Sprintf(format, args...))
		}
	}

	// Dense live row/col sums: the O(ports) oracle for the planner's
	// load and the conservation ledger.
	rows := make([]int64, script.Ports)
	cols := make([]int64, script.Ports)
	rho := func() int64 {
		var b int64
		for p := 0; p < script.Ports; p++ {
			if rows[p] > b {
				b = rows[p]
			}
			if cols[p] > b {
				b = cols[p]
			}
		}
		return b
	}

	live := map[int]*regRec{}
	var keysBuf []int
	horizon := opts.MaxSlots
	if horizon <= 0 {
		horizon = script.Horizon()
	}

	apply := func(ev Event) error {
		switch ev.Op {
		case OpRegister:
			weight := ev.Weight
			if weight == 0 {
				weight = 1
			}
			var total int64
			var err error
			if shadow != nil {
				total, err = shadow.Add(ev.Key, weight, ev.Slot, ev.Flows)
			} else {
				total, err = state.Add(ev.Key, weight, ev.Slot, ev.Flows)
			}
			if err != nil {
				return fmt.Errorf("scenario: register key %d at slot %d: %w", ev.Key, ev.Slot, err)
			}
			mon.Add(ev.Key, ev.Slot, ev.Flows)
			if planner != nil {
				if err := planner.Add(ev.Flows); err != nil {
					return fmt.Errorf("scenario: planner.Add key %d: %w", ev.Key, err)
				}
			}
			var load int64
			rowsOf := map[int]int64{}
			colsOf := map[int]int64{}
			for _, f := range ev.Flows {
				rows[f.Src] += f.Size
				cols[f.Dst] += f.Size
				rowsOf[f.Src] += f.Size
				colsOf[f.Dst] += f.Size
			}
			for _, v := range rowsOf {
				if v > load {
					load = v
				}
			}
			for _, v := range colsOf {
				if v > load {
					load = v
				}
			}
			rep.Registered++
			rep.DemandIn += total
			rep.DemandLive += total
			live[ev.Key] = &regRec{key: ev.Key, weight: weight, release: ev.Slot, ideal: ev.Slot + load}
		case OpCancel:
			if _, ok := live[ev.Key]; !ok {
				rep.CancelMisses++ // completed before the cancel landed
				return nil
			}
			ent := state.Demand(ev.Key)
			var shedAmt int64
			for _, e := range ent {
				shedAmt += e.Val
				rows[e.Row] -= e.Val
				cols[e.Col] -= e.Val
			}
			if planner != nil {
				if err := planner.Shed(ent); err != nil {
					return fmt.Errorf("scenario: planner.Shed key %d: %w", ev.Key, err)
				}
				if _, err := planner.Plan(); err != nil {
					return fmt.Errorf("scenario: planner.Plan after shed: %w", err)
				}
			}
			if shadow != nil {
				shadow.Remove(ev.Key)
			} else {
				state.Remove(ev.Key)
			}
			mon.Remove(ev.Key)
			delete(live, ev.Key)
			rep.Cancelled++
			rep.DemandShed += shedAmt
			rep.DemandLive -= shedAmt
		case OpFail:
			if err := state.FailPort(ev.Port); err != nil {
				return fmt.Errorf("scenario: fail port %d: %w", ev.Port, err)
			}
			mon.FailPort(ev.Port)
		case OpRecover:
			if err := state.RecoverPort(ev.Port); err != nil {
				return fmt.Errorf("scenario: recover port %d: %w", ev.Port, err)
			}
			mon.RecoverPort(ev.Port)
		}
		return nil
	}

	// checkLedger re-balances the ledger against the authoritative
	// live state: registered == served + shed + live, with the live
	// term independently recounted. Demand parked on a failed port
	// must still be here — parked, never dropped.
	checkLedger := func(at int64) {
		var actual int64
		keysBuf = state.Keys(keysBuf[:0])
		for _, k := range keysBuf {
			if rem, ok := state.Remaining(k); ok {
				actual += rem
			}
		}
		if actual != rep.DemandLive {
			violate("slot %d: live demand %d, ledger says %d (units lost or duplicated)", at, actual, rep.DemandLive)
		}
		if rep.DemandIn != rep.DemandServed+rep.DemandShed+rep.DemandLive {
			violate("slot %d: ledger broke: in %d != served %d + shed %d + live %d",
				at, rep.DemandIn, rep.DemandServed, rep.DemandShed, rep.DemandLive)
		}
	}

	events := script.Events
	ei := 0
	var t int64
	var completion []float64 // slowdowns of completed coflows
	for state.Len() > 0 || ei < len(events) {
		s := t + 1
		if state.Len() == 0 && events[ei].Slot > s {
			s = events[ei].Slot // fast-forward an idle fabric
		}
		applied := false
		for ei < len(events) && events[ei].Slot <= s {
			if err := apply(events[ei]); err != nil {
				return rep, err
			}
			ei++
			applied = true
		}
		if applied {
			checkLedger(s)
		}

		var res online.StepResult
		if shadow != nil {
			var div *check.Divergence
			res, div = shadow.Step(s, opts.Policy)
			if div != nil {
				violate("slot %d: shadow diverged: %s (repro: %s)", s, div.Reason, div.ReproPath)
				if rep.ReproPath == "" {
					rep.ReproPath = div.ReproPath
				}
			}
		} else {
			res = state.Step(s, opts.Policy)
		}
		for _, v := range mon.Observe(res, true) {
			violate("monitor: %s", v.Msg)
		}
		n := int64(len(res.Served))
		rep.DemandServed += n
		rep.DemandLive -= n
		for _, a := range res.Served {
			rows[a.Src]--
			cols[a.Dst]--
		}
		for _, k := range res.Completed {
			rec, ok := live[k]
			if !ok {
				violate("slot %d: completion for untracked key %d", s, k)
				continue
			}
			rep.Completed++
			rep.WeightedCompletion += rec.weight * float64(s)
			if rec.ideal > 0 {
				completion = append(completion, float64(s)/float64(rec.ideal))
			} else {
				completion = append(completion, 1)
			}
			delete(live, k)
		}
		if planner != nil {
			if err := planner.Observe(res.Served); err != nil {
				return rep, fmt.Errorf("scenario: planner.Observe at slot %d: %w", s, err)
			}
			if _, err := planner.Plan(); err != nil {
				return rep, fmt.Errorf("scenario: planner.Plan at slot %d: %w", s, err)
			}
			if got, want := planner.Load(), rho(); got != want {
				violate("slot %d: planner load %d, live demand ρ %d (stale plan)", s, got, want)
			}
		}
		t = s
		if t > horizon {
			return rep, fmt.Errorf("scenario: %q exceeded horizon %d with %d coflows live (scheduler stalled)",
				script.Name, horizon, state.Len())
		}
	}
	rep.Slots = t
	rep.Slowdown = stats.Summarize(completion)
	if len(rep.Violations) > 0 && opts.ReproDir != "" && rep.ReproPath == "" {
		rep.ReproPath = dumpReproducer(opts.ReproDir, script, rep.Violations)
	}
	return rep, nil
}

// dumpReproducer writes the script plus the violations it provoked as
// a JSON file and returns its path ("" if the write failed — the
// violations are still in the report).
func dumpReproducer(dir string, script *Script, violations []string) string {
	path := filepath.Join(dir, "scenario-"+script.Name+"-repro.json")
	blob, err := json.MarshalIndent(map[string]any{
		"script":     script,
		"violations": violations,
	}, "", "  ")
	if err != nil {
		return ""
	}
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		return ""
	}
	return path
}
