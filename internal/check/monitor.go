package check

import (
	"fmt"

	"coflow/internal/coflowmodel"
	"coflow/internal/online"
)

// Monitor is the runtime self-check a resident scheduler runs inside
// its tick loop (coflowd -selfcheck): an independent, O(served)-per-
// slot shadow of the demand bookkeeping that validates every emitted
// StepResult against the formulation's invariants — each slot a
// partial permutation, no pre-release service, no phantom or double-
// counted units, completions exactly when demand drains.
//
// Unlike Shadow it does not re-run the scheduling decision (that is a
// test-time oracle); it verifies that whatever the scheduler decided
// is FEASIBLE and CONSERVES demand, which is what Theorem 1's
// feasibility argument needs from every emitted slot. Memory is
// O(live demand); completed coflows are forgotten.
//
// Monitor is not safe for concurrent use; the daemon's single-writer
// loop owns it.
type Monitor struct {
	ports    int
	coflows  map[int]*monCoflow
	lastSlot int64
	// per-slot occupancy, stamped with the slot number so no clearing
	// pass is needed.
	rowSlot, colSlot []int64
	// touched keys scratch for the drain check.
	touched []int
	// down marks ports the caller declared failed (FailPort): any
	// service touching one is a violation, because a failed port's
	// demand must park, not drain.
	down []bool
}

// monCoflow is the monitor's independent bookkeeping for one coflow.
type monCoflow struct {
	release int64
	pairs   map[int]int64 // src*ports+dst -> remaining units
	total   int64
}

// NewMonitor creates a monitor for an m-port switch.
func NewMonitor(ports int) *Monitor {
	if ports <= 0 {
		panic(fmt.Sprintf("check: non-positive port count %d", ports))
	}
	return &Monitor{
		ports:   ports,
		coflows: map[int]*monCoflow{},
		rowSlot: make([]int64, ports),
		colSlot: make([]int64, ports),
		down:    make([]bool, ports),
	}
}

// FailPort mirrors a State.FailPort: from now until RecoverPort, any
// service touching port p is reported as a violation. Out-of-range
// ports are ignored (the scheduler already rejected them).
func (mo *Monitor) FailPort(p int) {
	if p >= 0 && p < mo.ports {
		mo.down[p] = true
	}
}

// RecoverPort mirrors a State.RecoverPort.
func (mo *Monitor) RecoverPort(p int) {
	if p >= 0 && p < mo.ports {
		mo.down[p] = false
	}
}

// Add mirrors a successful State.Add: it registers the coflow's
// demand for conservation tracking. Zero-demand coflows are ignored
// (the scheduler does not retain them either). Out-of-range flows are
// ignored — the scheduler already rejected them if present.
func (mo *Monitor) Add(key int, release int64, flows []coflowmodel.Flow) {
	mc := &monCoflow{release: release, pairs: map[int]int64{}}
	for _, f := range flows {
		if f.Size <= 0 || f.Src < 0 || f.Src >= mo.ports || f.Dst < 0 || f.Dst >= mo.ports {
			continue
		}
		mc.pairs[f.Src*mo.ports+f.Dst] += f.Size
		mc.total += f.Size
	}
	if mc.total > 0 {
		mo.coflows[key] = mc
	}
}

// Remove mirrors a State.Remove (cancellation): the coflow's
// remaining demand is forgotten.
func (mo *Monitor) Remove(key int) {
	delete(mo.coflows, key)
}

// Live returns the number of coflows the monitor is tracking.
func (mo *Monitor) Live() int { return len(mo.coflows) }

// Observe applies one slot's StepResult to the monitor's bookkeeping
// and, when validate is set, returns every invariant the slot
// violated (nil means the slot is clean). The bookkeeping is applied
// even when validate is false — that is what makes sampled validation
// sound: skipped slots still advance the monitor's view of demand, so
// a later validated slot checks against correct remainders.
func (mo *Monitor) Observe(res online.StepResult, validate bool) []Violation {
	var c *collector
	if validate {
		c = &collector{}
	}
	report := func(v Violation) {
		if c != nil {
			c.add(v)
		}
	}

	if res.Slot <= mo.lastSlot {
		report(Violation{Kind: KindBadService, Slot: res.Slot, Coflow: -1, Port: -1,
			Msg: fmt.Sprintf("slot %d does not advance past %d", res.Slot, mo.lastSlot)})
	}
	mo.lastSlot = res.Slot

	mo.touched = mo.touched[:0]
	for _, a := range res.Served {
		if a.Src < 0 || a.Src >= mo.ports || a.Dst < 0 || a.Dst >= mo.ports {
			report(Violation{Kind: KindBadService, Slot: res.Slot, Coflow: a.Key, Port: a.Src,
				Msg: fmt.Sprintf("assignment (%d→%d) outside %d ports", a.Src, a.Dst, mo.ports)})
			continue
		}
		if mo.down[a.Src] || mo.down[a.Dst] {
			p := a.Src
			if !mo.down[p] {
				p = a.Dst
			}
			report(Violation{Kind: KindBadService, Slot: res.Slot, Coflow: a.Key, Port: p,
				Msg: fmt.Sprintf("assignment (%d→%d) uses failed port %d in slot %d", a.Src, a.Dst, p, res.Slot)})
		}
		if mo.rowSlot[a.Src] == res.Slot {
			report(Violation{Kind: KindDoubleBooked, Slot: res.Slot, Coflow: a.Key, Port: a.Src,
				Msg: fmt.Sprintf("ingress %d serves two units in slot %d", a.Src, res.Slot)})
		}
		if mo.colSlot[a.Dst] == res.Slot {
			report(Violation{Kind: KindDoubleBooked, Slot: res.Slot, Coflow: a.Key, Port: a.Dst,
				Msg: fmt.Sprintf("egress %d serves two units in slot %d", a.Dst, res.Slot)})
		}
		mo.rowSlot[a.Src] = res.Slot
		mo.colSlot[a.Dst] = res.Slot

		mc, ok := mo.coflows[a.Key]
		if !ok {
			report(Violation{Kind: KindBadService, Slot: res.Slot, Coflow: a.Key, Port: -1,
				Msg: fmt.Sprintf("served unknown coflow %d", a.Key)})
			continue
		}
		if mc.release >= res.Slot {
			report(Violation{Kind: KindPreRelease, Slot: res.Slot, Coflow: a.Key, Port: -1,
				Msg: fmt.Sprintf("coflow %d served in slot %d, release %d", a.Key, res.Slot, mc.release)})
		}
		pair := a.Src*mo.ports + a.Dst
		if mc.pairs[pair] <= 0 {
			report(Violation{Kind: KindOverServed, Slot: res.Slot, Coflow: a.Key, Port: -1,
				Msg: fmt.Sprintf("coflow %d over-served on (%d→%d) in slot %d", a.Key, a.Src, a.Dst, res.Slot)})
			continue // don't drive the count negative
		}
		mc.pairs[pair]--
		mc.total--
		mo.touched = append(mo.touched, a.Key)
	}

	// Completion consistency, both directions: every reported
	// completion must have exactly drained, and every drained coflow
	// must be reported.
	completed := make(map[int]bool, len(res.Completed))
	for _, key := range res.Completed {
		completed[key] = true
		mc, ok := mo.coflows[key]
		if !ok {
			report(Violation{Kind: KindBadCompletion, Slot: res.Slot, Coflow: key, Port: -1,
				Msg: fmt.Sprintf("unknown coflow %d reported completed", key)})
			continue
		}
		if mc.total != 0 {
			report(Violation{Kind: KindBadCompletion, Slot: res.Slot, Coflow: key, Port: -1,
				Msg: fmt.Sprintf("coflow %d reported completed with %d units remaining", key, mc.total)})
		}
		delete(mo.coflows, key)
	}
	for _, key := range mo.touched {
		if mc, ok := mo.coflows[key]; ok && mc.total == 0 && !completed[key] {
			report(Violation{Kind: KindUnderServed, Slot: res.Slot, Coflow: key, Port: -1,
				Msg: fmt.Sprintf("coflow %d drained in slot %d but was not reported completed", key, res.Slot)})
			delete(mo.coflows, key) // resync: the scheduler no longer serves it
		}
	}

	if c == nil {
		return nil
	}
	return c.vs
}
