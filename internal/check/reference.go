package check

import (
	"fmt"
	"sort"

	"coflow/internal/coflowmodel"
	"coflow/internal/matrix"
	"coflow/internal/online"
)

// Reference is a deliberately naive implementation of the online
// greedy scheduler's SPECIFICATION, kept as the ground truth the
// optimized online.State is diffed against (see Shadow):
//
//   - demand is a dense m×m matrix per coflow; row sums, totals and
//     the SEBF bottleneck ρ are recomputed by full rescans every slot
//     (no incremental sums, no dirty flags);
//   - the priority order is rebuilt from scratch every slot with a
//     fresh sort (no warm-sorted list, no sorted-check short-circuit);
//   - the greedy matching always rescans every active coflow's full
//     matrix (no saturation exit, no replay of the previous slot).
//
// Every shortcut the fast path takes must be behaviour-preserving, so
// Reference.Step and online.State.Step must agree exactly — same
// served sequence, same completions, same remaining demand. Reference
// is O(active·m²) per slot and allocates freely; it exists for
// correctness, not speed.
type Reference struct {
	ports   int
	coflows []*refCoflow
}

// refCoflow is one live coflow in the reference scheduler.
type refCoflow struct {
	key     int
	weight  float64
	release int64
	demand  []int64 // dense, row-major m×m
	prio    float64 // recomputed from scratch each slot
}

// total rescans the full matrix (deliberately, see type comment).
func (c *refCoflow) total() int64 {
	var t int64
	for _, v := range c.demand {
		t += v
	}
	return t
}

// load rescans all row and column sums.
func (c *refCoflow) load(m int) int64 {
	var best int64
	for i := 0; i < m; i++ {
		var row int64
		for j := 0; j < m; j++ {
			row += c.demand[i*m+j]
		}
		if row > best {
			best = row
		}
	}
	for j := 0; j < m; j++ {
		var col int64
		for i := 0; i < m; i++ {
			col += c.demand[i*m+j]
		}
		if col > best {
			best = col
		}
	}
	return best
}

// NewReference creates an empty reference scheduler for an m-port
// switch.
func NewReference(ports int) *Reference {
	if ports <= 0 {
		panic(fmt.Sprintf("check: non-positive port count %d", ports))
	}
	return &Reference{ports: ports}
}

// Ports returns the switch size m.
func (r *Reference) Ports() int { return r.ports }

// Len returns the number of live coflows.
func (r *Reference) Len() int { return len(r.coflows) }

// Add mirrors online.State.Add: it registers a coflow, accumulating
// flows that share a port pair, and does not retain zero-demand
// coflows. The validation rules (and their order) match the fast path
// so both implementations accept and reject identical inputs.
func (r *Reference) Add(key int, weight float64, release int64, flows []coflowmodel.Flow) (int64, error) {
	for _, c := range r.coflows {
		if c.key == key {
			return 0, fmt.Errorf("check: duplicate coflow key %d", key)
		}
	}
	if weight <= 0 {
		return 0, fmt.Errorf("check: coflow %d has non-positive weight %g", key, weight)
	}
	if release < 0 {
		return 0, fmt.Errorf("check: coflow %d has negative release %d", key, release)
	}
	m := r.ports
	demand := make([]int64, m*m)
	var total int64
	for _, f := range flows {
		if f.Src < 0 || f.Src >= m || f.Dst < 0 || f.Dst >= m {
			return 0, fmt.Errorf("check: coflow %d flow (%d→%d) outside %d ports", key, f.Src, f.Dst, m)
		}
		if f.Size < 0 {
			return 0, fmt.Errorf("check: coflow %d has negative flow size %d", key, f.Size)
		}
		demand[f.Src*m+f.Dst] += f.Size
		total += f.Size
	}
	if total == 0 {
		return 0, nil
	}
	r.coflows = append(r.coflows, &refCoflow{key: key, weight: weight, release: release, demand: demand})
	return total, nil
}

// Remove mirrors online.State.Remove.
func (r *Reference) Remove(key int) bool {
	for i, c := range r.coflows {
		if c.key == key {
			r.coflows = append(r.coflows[:i], r.coflows[i+1:]...)
			return true
		}
	}
	return false
}

// Remaining mirrors online.State.Remaining (by full rescan).
func (r *Reference) Remaining(key int) (int64, bool) {
	for _, c := range r.coflows {
		if c.key == key {
			return c.total(), true
		}
	}
	return 0, false
}

// Keys returns the live coflow keys in ascending order.
func (r *Reference) Keys() []int {
	out := make([]int, 0, len(r.coflows))
	for _, c := range r.coflows {
		out = append(out, c.key)
	}
	sort.Ints(out)
	return out
}

// Demand returns the positive remaining entries of the live coflow
// under key in (row, col) order, or nil if it is not live.
func (r *Reference) Demand(key int) []matrix.SparseEntry {
	for _, c := range r.coflows {
		if c.key == key {
			m := r.ports
			var out []matrix.SparseEntry
			for i := 0; i < m; i++ {
				for j := 0; j < m; j++ {
					if v := c.demand[i*m+j]; v > 0 {
						out = append(out, matrix.SparseEntry{Row: i, Col: j, Val: v})
					}
				}
			}
			return out
		}
	}
	return nil
}

// Step serves one slot exactly as the specification of
// online.State.Step demands: the coflows released before slot and
// still holding demand are visited in the policy's priority order
// (ties on the unique key), and a greedy maximal matching transfers
// one unit on every matched (src, dst) pair, scanning each coflow's
// demand in (row, col) order. Coflows that drain complete and are
// removed. The returned slices are freshly allocated.
func (r *Reference) Step(slot int64, policy online.Policy) online.StepResult {
	res := online.StepResult{Slot: slot}

	// Cold active scan: recompute every total, no cached sums.
	var active []*refCoflow
	for _, c := range r.coflows {
		if c.release < slot && c.total() > 0 {
			active = append(active, c)
		}
	}
	res.Active = len(active)
	if res.Active == 0 {
		return res
	}

	// Cold priorities and a fresh sort every slot.
	switch policy {
	case online.FIFO:
		sort.SliceStable(active, func(a, b int) bool {
			if active[a].release != active[b].release {
				return active[a].release < active[b].release
			}
			return active[a].key < active[b].key
		})
	case online.SEBF:
		for _, c := range active {
			c.prio = float64(c.load(r.ports)) / c.weight
		}
		sortByPrio(active)
	case online.WSPT:
		for _, c := range active {
			c.prio = float64(c.total()) / c.weight
		}
		sortByPrio(active)
	}

	// Greedy matching: full scan of every active coflow's dense
	// matrix, no early exit.
	m := r.ports
	rowBusy := make([]bool, m)
	colBusy := make([]bool, m)
	var served []online.Assignment
	var completed []int
	for _, c := range active {
		for i := 0; i < m; i++ {
			for j := 0; j < m; j++ {
				if c.demand[i*m+j] == 0 || rowBusy[i] || colBusy[j] {
					continue
				}
				rowBusy[i] = true
				colBusy[j] = true
				c.demand[i*m+j]--
				served = append(served, online.Assignment{Key: c.key, Src: i, Dst: j})
			}
		}
		if c.total() == 0 {
			completed = append(completed, c.key)
			r.Remove(c.key)
		}
	}
	res.Served = served
	res.Completed = completed
	return res
}

// sortByPrio sorts by (prio, key), the same strict total order the
// fast path uses.
func sortByPrio(list []*refCoflow) {
	sort.SliceStable(list, func(a, b int) bool {
		if list[a].prio != list[b].prio {
			return list[a].prio < list[b].prio
		}
		return list[a].key < list[b].key
	})
}
