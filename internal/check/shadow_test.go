package check

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"coflow/internal/coflowmodel"
	"coflow/internal/online"
	"coflow/internal/trace"
)

// driveShadow runs a full instance through a Shadow under one policy,
// failing on the first divergence. Returns the ops for replay tests.
func driveShadow(t *testing.T, sh *Shadow, ins *coflowmodel.Instance, policy online.Policy, removeKey int) {
	t.Helper()
	for k := range ins.Coflows {
		c := &ins.Coflows[k]
		if _, err := sh.Add(k, c.Weight, c.Release, c.Flows); err != nil {
			t.Fatal(err)
		}
	}
	var tt int64
	horizon := ins.Horizon() + 1
	removed := false
	for sh.State.Len() > 0 && tt <= horizon {
		res, div := sh.Step(tt+1, policy)
		if div != nil {
			t.Fatalf("%v: divergence: %v", policy, div)
		}
		if res.Active == 0 {
			next := sh.State.NextRelease(tt)
			if next < 0 {
				t.Fatalf("%v: stalled with %d live coflows and no pending release", policy, sh.State.Len())
			}
			tt = next
			continue
		}
		tt = res.Slot
		if !removed && removeKey >= 0 && tt > 3 {
			sh.Remove(removeKey)
			removed = true
		}
	}
	if sh.State.Len() > 0 {
		t.Fatalf("%v: did not finish within horizon", policy)
	}
}

// TestShadowAgreesOnTraces: the fast path and the dense reference
// stay in lockstep across policies on generated workloads with
// arrivals, including a mid-run cancellation.
func TestShadowAgreesOnTraces(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		ins := trace.MustGenerate(trace.Config{
			Ports: 5, NumCoflows: 12, Seed: seed,
			NarrowFraction: 0.5, WideFraction: 0.2,
			MaxFlowSize: 8, ParetoAlpha: 1.3, MeanInterarrival: 2,
		})
		for _, policy := range []online.Policy{online.FIFO, online.SEBF, online.WSPT} {
			sh := NewShadow(ins.Ports, ShadowConfig{})
			removeKey := -1
			if seed%2 == 0 {
				removeKey = len(ins.Coflows) / 2
			}
			driveShadow(t, sh, ins, policy, removeKey)
			if div := Replay(ins.Ports, sh.ops); div != nil {
				t.Fatalf("%v seed %d: clean run's op log replays divergent: %v", policy, seed, div)
			}
		}
	}
}

// TestShadowDetectsDesyncState: mutating the fast path behind the
// Shadow's back (here: an un-shadowed Step) is caught by the state
// diff, and a reproducer lands on disk.
func TestShadowDetectsDesyncState(t *testing.T) {
	dir := t.TempDir()
	sh := NewShadow(2, ShadowConfig{Dir: dir})
	if _, err := sh.Add(0, 1, 0, []coflowmodel.Flow{{Src: 0, Dst: 0, Size: 5}}); err != nil {
		t.Fatal(err)
	}
	sh.State.Step(1, online.FIFO) // rogue: reference did not see this slot
	_, div := sh.Step(2, online.FIFO)
	if div == nil {
		t.Fatal("desynced state not detected")
	}
	if sh.Diverged() != div {
		t.Fatal("Diverged() does not latch the divergence")
	}
	if div.ReproPath == "" {
		t.Fatal("no reproducer dumped")
	}
	raw, err := os.ReadFile(div.ReproPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Ports      int         `json:"ports"`
		Divergence *Divergence `json:"divergence"`
	}
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("reproducer is not valid JSON: %v", err)
	}
	if rep.Ports != 2 || rep.Divergence == nil || len(rep.Divergence.Ops) == 0 {
		t.Fatalf("reproducer incomplete: %+v", rep)
	}
	if filepath.Dir(div.ReproPath) != dir {
		t.Fatalf("reproducer written to %s, want %s", div.ReproPath, dir)
	}

	// The latch: further steps keep returning the same divergence and
	// do not touch the reference.
	refLen := sh.ref.Len()
	if _, div2 := sh.Step(3, online.FIFO); div2 != div {
		t.Fatal("latched divergence not returned on later steps")
	}
	if sh.ref.Len() != refLen {
		t.Fatal("reference advanced after divergence latch")
	}
}

// TestShadowDetectsDesyncCompletion: a rogue step that drains a
// coflow makes the next shadowed step disagree on the active count.
func TestShadowDetectsDesyncCompletion(t *testing.T) {
	sh := NewShadow(2, ShadowConfig{NoMinimize: true})
	if _, err := sh.Add(0, 1, 0, []coflowmodel.Flow{{Src: 1, Dst: 1, Size: 1}}); err != nil {
		t.Fatal(err)
	}
	sh.State.Step(1, online.SEBF) // drains and completes coflow 0 fast-side only
	_, div := sh.Step(2, online.SEBF)
	if div == nil {
		t.Fatal("completion desync not detected")
	}
}

// TestShadowAddRejectsMirror: inputs the fast path rejects never reach
// the reference and produce no divergence.
func TestShadowAddRejectsMirror(t *testing.T) {
	sh := NewShadow(2, ShadowConfig{})
	if _, err := sh.Add(0, -1, 0, nil); err == nil {
		t.Fatal("negative weight accepted")
	}
	if _, err := sh.Add(0, 1, 0, []coflowmodel.Flow{{Src: 9, Dst: 0, Size: 1}}); err == nil {
		t.Fatal("out-of-range flow accepted")
	}
	if _, err := sh.Add(0, 1, 0, []coflowmodel.Flow{{Src: 0, Dst: 0, Size: 1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := sh.Add(0, 1, 0, []coflowmodel.Flow{{Src: 0, Dst: 0, Size: 1}}); err == nil {
		t.Fatal("duplicate key accepted")
	}
	if sh.Diverged() != nil {
		t.Fatalf("rejected adds diverged: %v", sh.Diverged())
	}
	if !sh.Remove(0) || sh.Remove(7) {
		t.Fatal("Remove mirror broken")
	}
	if sh.Diverged() != nil {
		t.Fatalf("removes diverged: %v", sh.Diverged())
	}
}

// TestMinimizeCleanLog: a log that replays clean is returned as-is
// with a nil divergence.
func TestMinimizeCleanLog(t *testing.T) {
	ops := []Op{
		{Kind: "add", Key: 0, Weight: 1, Flows: []coflowmodel.Flow{{Src: 0, Dst: 0, Size: 2}}},
		{Kind: "step", Slot: 1, Policy: int(online.SEBF)},
		{Kind: "step", Slot: 2, Policy: int(online.SEBF)},
	}
	got, div := Minimize(2, ops)
	if div != nil {
		t.Fatalf("clean log diverged: %v", div)
	}
	if len(got) != len(ops) {
		t.Fatalf("clean log was modified: %v", got)
	}
}

// TestOpsInstance: an instance-shaped op log renders; one with a
// reused key does not.
func TestOpsInstance(t *testing.T) {
	ops := []Op{
		{Kind: "add", Key: 0, Weight: 1, Flows: []coflowmodel.Flow{{Src: 0, Dst: 1, Size: 2}}},
		{Kind: "step", Slot: 1},
		{Kind: "add", Key: 1, Weight: 2, Release: 3, Flows: []coflowmodel.Flow{{Src: 1, Dst: 0, Size: 1}}},
	}
	ins := opsInstance(2, ops)
	if ins == nil || len(ins.Coflows) != 2 || ins.Coflows[1].Release != 3 {
		t.Fatalf("opsInstance = %+v", ins)
	}
	dup := append(ops, Op{Kind: "add", Key: 0, Weight: 1, Flows: []coflowmodel.Flow{{Src: 0, Dst: 0, Size: 1}}})
	if opsInstance(2, dup) != nil {
		t.Fatal("reused key rendered as instance")
	}
}

// TestStateEverySampling: with StateEvery=1000 the state diff never
// runs inside a short run, so a silent state desync goes unnoticed
// until a step OUTPUT differs — documenting the sampling trade-off.
func TestStateEverySampling(t *testing.T) {
	sh := NewShadow(2, ShadowConfig{StateEvery: 1000, NoMinimize: true})
	if _, err := sh.Add(0, 1, 0, []coflowmodel.Flow{{Src: 0, Dst: 0, Size: 10}}); err != nil {
		t.Fatal(err)
	}
	sh.State.Step(1, online.FIFO) // rogue: state now differs by one unit
	if _, div := sh.Step(2, online.FIFO); div != nil {
		t.Fatalf("state diff ran despite StateEvery=1000: %v", div)
	}
}
