package check

import (
	"testing"

	"coflow/internal/coflowmodel"
	"coflow/internal/online"
	"coflow/internal/trace"
)

// TestMonitorCleanRun: every slot of a real online run validates
// clean, and the monitor drains to empty alongside the scheduler.
func TestMonitorCleanRun(t *testing.T) {
	ins := trace.MustGenerate(trace.Config{
		Ports: 4, NumCoflows: 10, Seed: 11,
		NarrowFraction: 0.5, WideFraction: 0.2,
		MaxFlowSize: 6, ParetoAlpha: 1.3, MeanInterarrival: 2,
	})
	for _, policy := range []online.Policy{online.FIFO, online.SEBF, online.WSPT} {
		state := online.NewState(ins.Ports)
		mon := NewMonitor(ins.Ports)
		for k := range ins.Coflows {
			c := &ins.Coflows[k]
			rem, err := state.Add(k, c.Weight, c.Release, c.Flows)
			if err != nil {
				t.Fatal(err)
			}
			if rem > 0 {
				mon.Add(k, c.Release, c.Flows)
			}
		}
		var tt int64
		horizon := ins.Horizon() + 1
		for state.Len() > 0 && tt <= horizon {
			res := state.Step(tt+1, policy)
			if res.Active == 0 {
				tt = state.NextRelease(tt)
				continue
			}
			if vs := mon.Observe(res, true); vs != nil {
				t.Fatalf("%v slot %d: %v", policy, res.Slot, vs)
			}
			tt = res.Slot
		}
		if state.Len() > 0 {
			t.Fatalf("%v: scheduler stalled", policy)
		}
		if mon.Live() != 0 {
			t.Fatalf("%v: monitor still tracks %d coflows after drain", policy, mon.Live())
		}
	}
}

// TestMonitorDetectsBadSlots: fabricated StepResults trip the right
// invariant.
func TestMonitorDetectsBadSlots(t *testing.T) {
	flows := []coflowmodel.Flow{{Src: 0, Dst: 0, Size: 2}, {Src: 1, Dst: 1, Size: 1}}
	newMon := func() *Monitor {
		mo := NewMonitor(2)
		mo.Add(0, 0, flows)
		mo.Add(1, 5, []coflowmodel.Flow{{Src: 0, Dst: 1, Size: 1}})
		return mo
	}
	cases := []struct {
		name string
		res  online.StepResult
		want Kind
	}{
		{"double-booked ingress", online.StepResult{Slot: 1, Active: 1, Served: []online.Assignment{
			{Key: 0, Src: 0, Dst: 0}, {Key: 0, Src: 0, Dst: 1},
		}}, KindDoubleBooked},
		{"double-booked egress", online.StepResult{Slot: 1, Active: 1, Served: []online.Assignment{
			{Key: 0, Src: 0, Dst: 0}, {Key: 0, Src: 1, Dst: 0},
		}}, KindDoubleBooked},
		{"out-of-range port", online.StepResult{Slot: 1, Active: 1, Served: []online.Assignment{
			{Key: 0, Src: 5, Dst: 0},
		}}, KindBadService},
		{"unknown coflow", online.StepResult{Slot: 1, Active: 1, Served: []online.Assignment{
			{Key: 42, Src: 0, Dst: 0},
		}}, KindBadService},
		{"pre-release service", online.StepResult{Slot: 1, Active: 1, Served: []online.Assignment{
			{Key: 1, Src: 0, Dst: 1},
		}}, KindPreRelease},
		{"over-served pair", online.StepResult{Slot: 1, Active: 1, Served: []online.Assignment{
			{Key: 0, Src: 1, Dst: 0}, // no demand on (1,0)
		}}, KindOverServed},
		{"phantom completion", online.StepResult{Slot: 1, Active: 1,
			Completed: []int{0}}, KindBadCompletion},
		{"unknown completion", online.StepResult{Slot: 1, Active: 1,
			Completed: []int{42}}, KindBadCompletion},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			vs := newMon().Observe(tc.res, true)
			if !hasKind(vs, tc.want) {
				t.Fatalf("want %v, got: %s", tc.want, kinds(vs))
			}
		})
	}
}

// TestMonitorDetectsSilentDrain: a coflow whose last unit moves
// without a completion report is an under-serve (the scheduler lost a
// completion), and the monitor resyncs by forgetting it.
func TestMonitorDetectsSilentDrain(t *testing.T) {
	mo := NewMonitor(2)
	mo.Add(0, 0, []coflowmodel.Flow{{Src: 0, Dst: 0, Size: 1}})
	vs := mo.Observe(online.StepResult{Slot: 1, Active: 1,
		Served: []online.Assignment{{Key: 0, Src: 0, Dst: 0}}}, true)
	if !hasKind(vs, KindUnderServed) {
		t.Fatalf("silent drain not reported: %s", kinds(vs))
	}
	if mo.Live() != 0 {
		t.Fatal("monitor did not resync after silent drain")
	}
}

// TestMonitorDetectsNonMonotoneSlot: slots must strictly advance.
func TestMonitorDetectsNonMonotoneSlot(t *testing.T) {
	mo := NewMonitor(2)
	mo.Add(0, 0, []coflowmodel.Flow{{Src: 0, Dst: 0, Size: 5}})
	res := online.StepResult{Slot: 3, Active: 1,
		Served: []online.Assignment{{Key: 0, Src: 0, Dst: 0}}}
	if vs := mo.Observe(res, true); vs != nil {
		t.Fatalf("clean slot flagged: %s", kinds(vs))
	}
	if vs := mo.Observe(res, true); !hasKind(vs, KindBadService) {
		t.Fatalf("repeated slot not flagged: %s", kinds(vs))
	}
}

// TestMonitorSampledValidation: slots observed with validate=false
// still advance the bookkeeping, so a later validated slot checks
// against correct remainders (sound sampling) — and a violation on an
// unvalidated slot is silently absorbed, which is the documented
// trade-off.
func TestMonitorSampledValidation(t *testing.T) {
	mo := NewMonitor(2)
	mo.Add(0, 0, []coflowmodel.Flow{{Src: 0, Dst: 0, Size: 2}})
	if vs := mo.Observe(online.StepResult{Slot: 1, Active: 1,
		Served: []online.Assignment{{Key: 0, Src: 0, Dst: 0}}}, false); vs != nil {
		t.Fatalf("validate=false returned violations: %s", kinds(vs))
	}
	// The pair now has exactly 1 unit left in the monitor's view: a
	// validated slot serving it with a completion report is clean ONLY
	// if the skipped slot was applied.
	vs := mo.Observe(online.StepResult{Slot: 2, Active: 1,
		Served:    []online.Assignment{{Key: 0, Src: 0, Dst: 0}},
		Completed: []int{0}}, true)
	if vs != nil {
		t.Fatalf("sampled bookkeeping out of sync: %s", kinds(vs))
	}
	if mo.Live() != 0 {
		t.Fatal("completion not applied")
	}
}

// TestMonitorIgnoresZeroDemand: zero-demand and out-of-range flows
// are dropped at Add, matching the scheduler's retention rule.
func TestMonitorIgnoresZeroDemand(t *testing.T) {
	mo := NewMonitor(2)
	mo.Add(0, 0, nil)
	mo.Add(1, 0, []coflowmodel.Flow{{Src: 0, Dst: 0, Size: 0}})
	mo.Add(2, 0, []coflowmodel.Flow{{Src: 7, Dst: 0, Size: 3}})
	if mo.Live() != 0 {
		t.Fatalf("monitor retains %d empty coflows", mo.Live())
	}
	mo.Add(3, 0, []coflowmodel.Flow{{Src: 0, Dst: 0, Size: 1}})
	mo.Remove(3)
	if mo.Live() != 0 {
		t.Fatal("Remove did not forget the coflow")
	}
}
