package check

import (
	"strings"
	"testing"

	"coflow/internal/bvn"
	"coflow/internal/coflowmodel"
	"coflow/internal/online"
	"coflow/internal/switchsim"
	"coflow/internal/trace"
)

// fig1Instance is the paper's Figure 1 coflow plus a small released-
// later competitor: enough structure to exercise matchings, releases
// and completions.
func fig1Instance() *coflowmodel.Instance {
	return &coflowmodel.Instance{
		Ports: 2,
		Coflows: []coflowmodel.Coflow{
			{ID: 1, Weight: 2, Release: 0, Flows: []coflowmodel.Flow{
				{Src: 0, Dst: 0, Size: 1}, {Src: 0, Dst: 1, Size: 2},
				{Src: 1, Dst: 0, Size: 2}, {Src: 1, Dst: 1, Size: 1},
			}},
			{ID: 2, Weight: 1, Release: 3, Flows: []coflowmodel.Flow{
				{Src: 0, Dst: 1, Size: 2}, {Src: 1, Dst: 0, Size: 1},
			}},
		},
	}
}

// validRecorded produces a feasible hand-checkable schedule for
// fig1Instance by executing it slot-accurately.
func validRecorded(t *testing.T, ins *coflowmodel.Instance) *Recorded {
	t.Helper()
	order := make([]int, len(ins.Coflows))
	for i := range order {
		order[i] = i
	}
	res, tr, err := switchsim.ExecuteRecorded(&switchsim.Plan{
		Ins: ins, Order: order, Stages: switchsim.SingleStage(len(order)),
	})
	if err != nil {
		t.Fatal(err)
	}
	return FromTranscript(tr, res)
}

func kinds(vs []Violation) string {
	var b strings.Builder
	for _, v := range vs {
		b.WriteString(v.Kind.String())
		b.WriteByte(' ')
	}
	return b.String()
}

func hasKind(vs []Violation, k Kind) bool {
	for _, v := range vs {
		if v.Kind == k {
			return true
		}
	}
	return false
}

func TestScheduleAcceptsValidSchedule(t *testing.T) {
	ins := fig1Instance()
	rec := validRecorded(t, ins)
	if vs := Schedule(ins, rec); vs != nil {
		t.Fatalf("valid schedule rejected: %s", kinds(vs))
	}
}

// TestScheduleAcceptsSwitchsimOptions: every scheduling-stage
// combination of the paper's design space produces a schedule the
// validator certifies, on an instance with release dates.
func TestScheduleAcceptsSwitchsimOptions(t *testing.T) {
	cfg := trace.Config{
		Ports: 4, NumCoflows: 6, Seed: 7,
		NarrowFraction: 0.5, WideFraction: 0.2,
		MaxFlowSize: 6, ParetoAlpha: 1.3, MeanInterarrival: 2,
	}
	ins := trace.MustGenerate(cfg)
	order := make([]int, len(ins.Coflows))
	for i := range order {
		order[i] = i
	}
	for _, backfill := range []bool{false, true} {
		for _, stages := range [][]switchsim.Stage{
			switchsim.SingleStage(len(order)),
			switchsim.OneStage(len(order)),
		} {
			for _, strategy := range []bvn.Strategy{bvn.StrategyFirst, bvn.StrategyThick} {
				res, tr, err := switchsim.ExecuteRecorded(&switchsim.Plan{
					Ins: ins, Order: order, Stages: stages,
					Backfill: backfill, Strategy: strategy,
				})
				if err != nil {
					t.Fatal(err)
				}
				if vs := Schedule(ins, FromTranscript(tr, res)); vs != nil {
					t.Errorf("backfill=%v stages=%d strategy=%v: %s",
						backfill, len(stages), strategy, kinds(vs))
				}
			}
		}
	}
}

// TestScheduleAcceptsOnlineRuns: the per-slot online scheduler's
// output, recorded StepResult by StepResult, passes validation under
// every policy.
func TestScheduleAcceptsOnlineRuns(t *testing.T) {
	ins := fig1Instance()
	for _, policy := range []online.Policy{online.FIFO, online.SEBF, online.WSPT} {
		rec := recordOnlineRun(t, ins, policy)
		if vs := Schedule(ins, rec); vs != nil {
			t.Errorf("%v: online run rejected: %s", policy, kinds(vs))
		}
	}
}

// recordOnlineRun drives online.State directly (mirroring
// online.Simulate's loop) while recording every slot.
func recordOnlineRun(t *testing.T, ins *coflowmodel.Instance, policy online.Policy) *Recorded {
	t.Helper()
	state := online.NewState(ins.Ports)
	recorder := NewRecorder(ins.Ports)
	completion := make([]int64, len(ins.Coflows))
	for k := range ins.Coflows {
		c := &ins.Coflows[k]
		remaining, err := state.Add(k, c.Weight, c.Release, c.Flows)
		if err != nil {
			t.Fatal(err)
		}
		if remaining == 0 {
			completion[k] = c.Release
		}
	}
	var tw float64
	var makespan, tt int64
	horizon := ins.Horizon() + 1
	for state.Len() > 0 && tt <= horizon {
		res := state.Step(tt+1, policy)
		if res.Active == 0 {
			tt = state.NextRelease(tt)
			continue
		}
		recorder.Observe(res)
		for _, k := range res.Completed {
			completion[k] = res.Slot
		}
		tt = res.Slot
	}
	if state.Len() > 0 {
		t.Fatalf("online run stalled with %d live coflows", state.Len())
	}
	for k := range ins.Coflows {
		tw += ins.Coflows[k].Weight * float64(completion[k])
		if completion[k] > makespan {
			makespan = completion[k]
		}
	}
	return recorder.Finish(completion, tw, makespan)
}

func TestScheduleRejectsInvalidSchedules(t *testing.T) {
	ins := fig1Instance()
	cases := []struct {
		name   string
		mutate func(rec *Recorded)
		want   Kind
	}{
		{"double-booked ingress", func(rec *Recorded) {
			s := rec.Services[0]
			s.Dst = 1 - s.Dst // same slot, same src, other dst
			rec.Services = append(rec.Services, s)
		}, KindDoubleBooked},
		{"double-booked egress", func(rec *Recorded) {
			s := rec.Services[0]
			s.Src = 1 - s.Src
			rec.Services = append(rec.Services, s)
		}, KindDoubleBooked},
		{"pre-release service", func(rec *Recorded) {
			// Coflow 1 releases at 3; claim a unit moved in slot 2.
			for i := range rec.Services {
				if rec.Services[i].Coflow == 1 {
					rec.Services[i].Slot = 2
					break
				}
			}
		}, KindPreRelease},
		{"over-served demand", func(rec *Recorded) {
			// Duplicate a service into a fresh slot: more units than
			// demand on that pair.
			s := rec.Services[0]
			s.Slot = 1000
			rec.Services = append(rec.Services, s)
		}, KindOverServed},
		{"under-served demand", func(rec *Recorded) {
			rec.Services = rec.Services[:len(rec.Services)-1]
		}, KindUnderServed},
		{"unknown coflow", func(rec *Recorded) {
			rec.Services[0].Coflow = 99
		}, KindBadService},
		{"out-of-range port", func(rec *Recorded) {
			rec.Services[0].Src = 7
		}, KindBadService},
		{"non-positive slot", func(rec *Recorded) {
			rec.Services[0].Slot = 0
		}, KindBadService},
		{"wrong completion claim", func(rec *Recorded) {
			rec.Completion[0]++
		}, KindBadCompletion},
		{"wrong objective claim", func(rec *Recorded) {
			rec.TotalWeighted += 1
		}, KindBadObjective},
		{"wrong makespan claim", func(rec *Recorded) {
			rec.Makespan += 3
		}, KindBadObjective},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := validRecorded(t, ins)
			// Completion/objective fields alias the executor's result;
			// copy before mutating.
			rec.Completion = append([]int64(nil), rec.Completion...)
			tc.mutate(rec)
			vs := Schedule(ins, rec)
			if !hasKind(vs, tc.want) {
				t.Fatalf("want %v, got: %s", tc.want, kinds(vs))
			}
		})
	}
}

func TestScheduleStructuralMismatches(t *testing.T) {
	ins := fig1Instance()
	rec := validRecorded(t, ins)

	wrongPorts := *rec
	wrongPorts.Ports = 3
	if vs := Schedule(ins, &wrongPorts); !hasKind(vs, KindPortMismatch) {
		t.Errorf("port mismatch not reported: %s", kinds(vs))
	}

	wrongLen := *rec
	wrongLen.Completion = rec.Completion[:1]
	if vs := Schedule(ins, &wrongLen); !hasKind(vs, KindBadCompletion) {
		t.Errorf("completion length mismatch not reported: %s", kinds(vs))
	}

	bad := &coflowmodel.Instance{Ports: 0}
	if vs := Schedule(bad, rec); !hasKind(vs, KindBadInstance) {
		t.Errorf("invalid instance not reported: %s", kinds(vs))
	}
}

// TestScheduleTruncatesViolationFlood: a schedule that is wrong
// everywhere reports at most MaxViolations plus the truncation marker.
func TestScheduleTruncatesViolationFlood(t *testing.T) {
	ins := fig1Instance()
	rec := validRecorded(t, ins)
	flood := *rec
	flood.Services = nil
	for i := 0; i < 2*MaxViolations; i++ {
		flood.Services = append(flood.Services, Service{Slot: int64(i + 1), Src: 9, Dst: 9, Coflow: 0})
	}
	vs := Schedule(ins, &flood)
	if len(vs) != MaxViolations+1 {
		t.Fatalf("got %d violations, want %d+1", len(vs), MaxViolations)
	}
	if vs[len(vs)-1].Kind != KindTruncated {
		t.Fatalf("last violation = %v, want truncation marker", vs[len(vs)-1].Kind)
	}
}

func TestKindStrings(t *testing.T) {
	for k := KindBadInstance; k <= KindTruncated; k++ {
		if s := k.String(); strings.HasPrefix(s, "Kind(") {
			t.Errorf("kind %d has no name", int(k))
		}
	}
	v := Violation{Kind: KindOverServed, Slot: 3, Coflow: 1, Port: -1, Msg: "x"}
	if got := v.String(); !strings.Contains(got, "over-served") {
		t.Errorf("Violation.String() = %q", got)
	}
}
