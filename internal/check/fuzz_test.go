package check

import (
	"testing"

	"coflow/internal/coflowmodel"
	"coflow/internal/online"
)

// FuzzStepVsReference interprets the fuzz input as an op program —
// interleaved coflow arrivals, cancellations and slot steps on a
// small switch — and runs it through the differential oracle,
// failing on the first fast-path/reference divergence. The program is
// then drained to completion so the replay fast path, the saturation
// exit and the completion paths all get exercised, not just the slots
// the program happened to request.
func FuzzStepVsReference(f *testing.F) {
	// Seeds cover each policy, arrivals after steps (release
	// crossings), cancellations, and dense multi-coflow contention.
	f.Add(uint8(1), []byte{0, 1, 2, 3, 0, 4, 3, 3})
	f.Add(uint8(0), []byte{0, 0, 0, 3, 6, 3, 3, 3})
	f.Add(uint8(2), []byte{0, 3, 3, 0, 3, 1, 3, 7, 9})
	f.Add(uint8(5), []byte{2, 2, 2, 2, 3, 3, 3, 3, 3, 3})
	f.Add(uint8(4), []byte{0, 255, 3, 128, 3, 64, 6, 3})

	f.Fuzz(func(t *testing.T, cfg uint8, prog []byte) {
		// Cap the program: the reference scheduler is deliberately
		// O(active·m²) per slot, so an unbounded generated input can
		// take tens of seconds and starve the fuzzing loop.
		if len(prog) > 256 {
			prog = prog[:256]
		}
		ports := 1 + int(cfg>>4)%6
		policy := online.Policy(int(cfg) % 3)
		sh := NewShadow(ports, ShadowConfig{NoMinimize: true})

		next := func(i *int) int {
			if *i >= len(prog) {
				return 0
			}
			b := int(prog[*i])
			*i++
			return b
		}

		var slot int64
		key := 0
		step := func() {
			slot++
			if _, div := sh.Step(slot, policy); div != nil {
				t.Fatalf("ports=%d policy=%v: %v", ports, policy, div)
			}
		}
		for i := 0; i < len(prog); {
			switch op := next(&i); op % 8 {
			case 0, 1, 2:
				nf := 1 + next(&i)%3
				flows := make([]coflowmodel.Flow, 0, nf)
				for f := 0; f < nf; f++ {
					flows = append(flows, coflowmodel.Flow{
						Src:  next(&i) % ports,
						Dst:  next(&i) % ports,
						Size: int64(next(&i)%4 + 1),
					})
				}
				weight := float64(1 + op%4)
				release := slot + int64(next(&i)%4)
				if _, err := sh.Add(key, weight, release, flows); err != nil {
					t.Fatalf("add %d rejected: %v", key, err)
				}
				key++
			case 3, 4, 5:
				step()
			case 6:
				if key > 0 {
					sh.Remove(next(&i) % key)
				}
			case 7:
				for n := next(&i)%6 + 1; n > 0; n-- {
					step()
				}
			}
			if div := sh.Diverged(); div != nil {
				t.Fatalf("ports=%d policy=%v: %v", ports, policy, div)
			}
		}

		// Drain: releases are at most slot+3 at add time and total
		// demand is bounded by the program length, so a working
		// scheduler finishes within maxSlots. A stall is a bug.
		maxSlots := slot + int64(4*len(prog)) + 8
		for sh.State.Len() > 0 && slot < maxSlots {
			if sh.State.NextRelease(slot) < 0 {
				// all released: demand must shrink every slot
			}
			step()
		}
		if sh.State.Len() > 0 {
			t.Fatalf("ports=%d policy=%v: stalled with %d live coflows after %d slots",
				ports, policy, sh.State.Len(), slot)
		}
		if div := Replay(ports, sh.ops); div != nil {
			t.Fatalf("ports=%d policy=%v: clean run replays divergent: %v", ports, policy, div)
		}
	})
}
