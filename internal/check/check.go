// Package check verifies coflow schedules and scheduler state against
// the paper's formulation (O) and the invariants the rest of the
// system relies on. The optimizations of the sparse slot pipeline —
// incremental sums, warm-started matching, the greedy-replay fast
// path — are exactly the kind of stateful shortcut where silent
// corruption produces plausible-looking but wrong schedules, so the
// package provides machinery to *detect* a violated invariant instead
// of discovering it through a bad completion-time number:
//
//   - Schedule is a post-hoc validator: given an instance and a
//     recorded schedule it verifies that every slot is a partial
//     permutation (constraints (2)–(3)), that no coflow is served
//     before its release date (constraint (4)), that per-(src,dst)
//     service exactly conserves demand (constraint (1)), that claimed
//     completion times equal last-service slots, and that reported
//     objective values match recomputation. It returns structured
//     Violations rather than a boolean, so tests and operators see
//     every broken invariant at once.
//   - Reference is a deliberately slow, dense re-implementation of the
//     online scheduler's specification: cold priorities, full rescans,
//     fresh sorts, no replay fast path. Shadow runs it in lockstep
//     with the optimized online.State and reports any divergence as a
//     Divergence with a minimized reproducer — a differential oracle
//     over the fast path.
//   - Monitor is a cheap runtime validator a resident scheduler
//     (coflowd -selfcheck) runs inside its tick loop: O(served) per
//     slot, bounded memory, violation counters for /v1/metrics.
package check

import (
	"fmt"
	"math"

	"coflow/internal/coflowmodel"
	"coflow/internal/online"
	"coflow/internal/switchsim"
)

// Kind classifies a violated invariant.
type Kind int

const (
	// KindBadInstance: the instance itself fails validation.
	KindBadInstance Kind = iota
	// KindPortMismatch: the schedule was recorded for a different
	// switch size than the instance's.
	KindPortMismatch
	// KindBadService: a service names an unknown coflow, an
	// out-of-range port, or a non-positive slot.
	KindBadService
	// KindDoubleBooked: an ingress or egress port serves two units in
	// one slot (the slot is not a partial permutation; constraints
	// (2)–(3)).
	KindDoubleBooked
	// KindPreRelease: a coflow is served in a slot not after its
	// release date (constraint (4)).
	KindPreRelease
	// KindOverServed: a (coflow, src, dst) pair is served more units
	// than it demanded (service invents data).
	KindOverServed
	// KindUnderServed: demand is left unserved at schedule end
	// (constraint (1)).
	KindUnderServed
	// KindBadCompletion: a claimed completion time disagrees with the
	// coflow's last service slot (or, for empty coflows, its release).
	KindBadCompletion
	// KindBadObjective: a reported aggregate (total weighted completion
	// time, makespan) disagrees with recomputation from completions.
	KindBadObjective
	// KindTruncated: the violation list hit its cap; further
	// violations were dropped.
	KindTruncated
)

func (k Kind) String() string {
	switch k {
	case KindBadInstance:
		return "bad-instance"
	case KindPortMismatch:
		return "port-mismatch"
	case KindBadService:
		return "bad-service"
	case KindDoubleBooked:
		return "double-booked"
	case KindPreRelease:
		return "pre-release"
	case KindOverServed:
		return "over-served"
	case KindUnderServed:
		return "under-served"
	case KindBadCompletion:
		return "bad-completion"
	case KindBadObjective:
		return "bad-objective"
	case KindTruncated:
		return "truncated"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Violation is one broken invariant, located as precisely as the kind
// allows. Fields that do not apply hold -1.
type Violation struct {
	Kind Kind
	// Slot is the slot in which the violation occurred (-1 when the
	// violation is not slot-specific).
	Slot int64
	// Coflow is the instance index (or live key, for Monitor) of the
	// offending coflow, -1 when not coflow-specific.
	Coflow int
	// Port is the double-booked or out-of-range port, -1 otherwise.
	Port int
	// Msg is a human-readable description with the concrete numbers.
	Msg string
}

func (v Violation) String() string {
	return fmt.Sprintf("%s: %s", v.Kind, v.Msg)
}

// MaxViolations caps the number of violations a single validation
// reports; a schedule that is wrong everywhere would otherwise drown
// the signal. The cap is recorded with a final KindTruncated entry.
const MaxViolations = 256

// collector accumulates violations up to the cap.
type collector struct {
	vs   []Violation
	full bool
}

func (c *collector) add(v Violation) {
	if c.full {
		return
	}
	if len(c.vs) >= MaxViolations {
		c.vs = append(c.vs, Violation{
			Kind: KindTruncated, Slot: -1, Coflow: -1, Port: -1,
			Msg: fmt.Sprintf("more than %d violations; remainder dropped", MaxViolations),
		})
		c.full = true
		return
	}
	c.vs = append(c.vs, v)
}

// Service records a single data unit's transfer: one unit of coflow
// Coflow (an instance index) moved from ingress Src to egress Dst
// during slot Slot. Slots are 1-based, matching the executors.
type Service struct {
	Slot   int64 `json:"slot"`
	Src    int   `json:"src"`
	Dst    int   `json:"dst"`
	Coflow int   `json:"coflow"`
}

// Recorded is a complete executed schedule in checkable form: the
// unit-level services plus the claims the scheduler made about it.
type Recorded struct {
	// Ports is the switch size the schedule was produced for.
	Ports int `json:"ports"`
	// Services lists every unit transfer, in any order.
	Services []Service `json:"services"`
	// Completion[k] is the claimed completion slot of coflow k.
	Completion []int64 `json:"completion"`
	// TotalWeighted is the claimed Σ w_k·C_k.
	TotalWeighted float64 `json:"total_weighted"`
	// Makespan is the claimed largest completion time.
	Makespan int64 `json:"makespan"`
}

// FromTranscript converts a switchsim execution into checkable form.
func FromTranscript(tr *switchsim.Transcript, res *switchsim.Result) *Recorded {
	rec := &Recorded{
		Ports:         tr.Ports,
		Services:      make([]Service, len(tr.Services)),
		Completion:    res.Completion,
		TotalWeighted: res.TotalWeighted,
		Makespan:      res.Makespan,
	}
	for i, s := range tr.Services {
		rec.Services[i] = Service{Slot: s.Slot, Src: s.Src, Dst: s.Dst, Coflow: s.Coflow}
	}
	return rec
}

// Recorder accumulates an online run (a sequence of StepResults whose
// keys are instance indices) into a Recorded for validation.
type Recorder struct {
	rec Recorded
}

// NewRecorder starts a recording for an m-port switch.
func NewRecorder(ports int) *Recorder {
	return &Recorder{rec: Recorded{Ports: ports}}
}

// Observe appends one slot's services. The StepResult's buffers are
// copied, so the caller may keep stepping.
func (r *Recorder) Observe(res online.StepResult) {
	for _, a := range res.Served {
		r.rec.Services = append(r.rec.Services, Service{
			Slot: res.Slot, Src: a.Src, Dst: a.Dst, Coflow: a.Key,
		})
	}
}

// Finish attaches the scheduler's claims and returns the recording.
func (r *Recorder) Finish(completion []int64, totalWeighted float64, makespan int64) *Recorded {
	r.rec.Completion = completion
	r.rec.TotalWeighted = totalWeighted
	r.rec.Makespan = makespan
	return &r.rec
}

// Schedule validates a recorded schedule against its instance and
// returns every violated invariant (nil means the schedule is a
// feasible solution of (O) and all its claims check out). At most
// MaxViolations are reported.
func Schedule(ins *coflowmodel.Instance, rec *Recorded) []Violation {
	var c collector
	if err := ins.Validate(); err != nil {
		c.add(Violation{Kind: KindBadInstance, Slot: -1, Coflow: -1, Port: -1, Msg: err.Error()})
		return c.vs
	}
	n := len(ins.Coflows)
	if rec.Ports != ins.Ports {
		c.add(Violation{Kind: KindPortMismatch, Slot: -1, Coflow: -1, Port: -1,
			Msg: fmt.Sprintf("schedule recorded for %d ports, instance has %d", rec.Ports, ins.Ports)})
		return c.vs
	}
	if len(rec.Completion) != n {
		c.add(Violation{Kind: KindBadCompletion, Slot: -1, Coflow: -1, Port: -1,
			Msg: fmt.Sprintf("%d completion times for %d coflows", len(rec.Completion), n)})
		return c.vs
	}

	// Demand bookkeeping per (coflow, src, dst).
	type pairKey struct{ coflow, src, dst int }
	remaining := make(map[pairKey]int64)
	for k := range ins.Coflows {
		for _, f := range ins.Coflows[k].Flows {
			if f.Size > 0 {
				remaining[pairKey{k, f.Src, f.Dst}] += f.Size
			}
		}
	}

	// Per-slot matching constraints. Services may arrive in any order,
	// so occupancy is keyed by (slot, port).
	type portKey struct {
		slot int64
		port int
	}
	srcBusy := make(map[portKey]bool)
	dstBusy := make(map[portKey]bool)
	lastService := make([]int64, n)
	for i := range lastService {
		lastService[i] = -1
	}

	for _, s := range rec.Services {
		if s.Coflow < 0 || s.Coflow >= n {
			c.add(Violation{Kind: KindBadService, Slot: s.Slot, Coflow: s.Coflow, Port: -1,
				Msg: fmt.Sprintf("service names unknown coflow %d", s.Coflow)})
			continue
		}
		if s.Src < 0 || s.Src >= ins.Ports || s.Dst < 0 || s.Dst >= ins.Ports {
			c.add(Violation{Kind: KindBadService, Slot: s.Slot, Coflow: s.Coflow, Port: s.Src,
				Msg: fmt.Sprintf("service (%d→%d) outside %d ports", s.Src, s.Dst, ins.Ports)})
			continue
		}
		if s.Slot < 1 {
			c.add(Violation{Kind: KindBadService, Slot: s.Slot, Coflow: s.Coflow, Port: -1,
				Msg: fmt.Sprintf("service in non-positive slot %d", s.Slot)})
			continue
		}
		if r := ins.Coflows[s.Coflow].Release; s.Slot <= r {
			c.add(Violation{Kind: KindPreRelease, Slot: s.Slot, Coflow: s.Coflow, Port: -1,
				Msg: fmt.Sprintf("coflow %d served in slot %d, at or before release %d", s.Coflow, s.Slot, r)})
		}
		if srcBusy[portKey{s.Slot, s.Src}] {
			c.add(Violation{Kind: KindDoubleBooked, Slot: s.Slot, Coflow: s.Coflow, Port: s.Src,
				Msg: fmt.Sprintf("ingress %d serves two units in slot %d", s.Src, s.Slot)})
		}
		if dstBusy[portKey{s.Slot, s.Dst}] {
			c.add(Violation{Kind: KindDoubleBooked, Slot: s.Slot, Coflow: s.Coflow, Port: s.Dst,
				Msg: fmt.Sprintf("egress %d serves two units in slot %d", s.Dst, s.Slot)})
		}
		srcBusy[portKey{s.Slot, s.Src}] = true
		dstBusy[portKey{s.Slot, s.Dst}] = true
		key := pairKey{s.Coflow, s.Src, s.Dst}
		if remaining[key] <= 0 {
			c.add(Violation{Kind: KindOverServed, Slot: s.Slot, Coflow: s.Coflow, Port: -1,
				Msg: fmt.Sprintf("coflow %d over-served on (%d→%d) in slot %d", s.Coflow, s.Src, s.Dst, s.Slot)})
		} else {
			remaining[key]--
		}
		if s.Slot > lastService[s.Coflow] {
			lastService[s.Coflow] = s.Slot
		}
	}

	// Conservation: every unit of demand served exactly once.
	unserved := make([]int64, n)
	for key, rem := range remaining {
		if rem > 0 {
			unserved[key.coflow] += rem
		}
	}
	for k, rem := range unserved {
		if rem > 0 {
			c.add(Violation{Kind: KindUnderServed, Slot: -1, Coflow: k, Port: -1,
				Msg: fmt.Sprintf("coflow %d leaves %d units unserved", k, rem)})
		}
	}

	// Claimed completions equal last-service slots.
	for k := 0; k < n; k++ {
		want := lastService[k]
		if want < 0 {
			want = ins.Coflows[k].Release
		}
		if rec.Completion[k] != want {
			c.add(Violation{Kind: KindBadCompletion, Slot: rec.Completion[k], Coflow: k, Port: -1,
				Msg: fmt.Sprintf("coflow %d claims completion %d, services say %d", k, rec.Completion[k], want)})
		}
	}

	// Claimed objectives match recomputation from the claimed
	// completions (completion consistency is checked above, so a clean
	// run ties the objectives all the way back to the services).
	var tw float64
	var makespan int64
	for k := range ins.Coflows {
		tw += ins.Coflows[k].Weight * float64(rec.Completion[k])
		if rec.Completion[k] > makespan {
			makespan = rec.Completion[k]
		}
	}
	if !floatEq(tw, rec.TotalWeighted) {
		c.add(Violation{Kind: KindBadObjective, Slot: -1, Coflow: -1, Port: -1,
			Msg: fmt.Sprintf("claimed total weighted completion %g, recomputed %g", rec.TotalWeighted, tw)})
	}
	if makespan != rec.Makespan {
		c.add(Violation{Kind: KindBadObjective, Slot: -1, Coflow: -1, Port: -1,
			Msg: fmt.Sprintf("claimed makespan %d, recomputed %d", rec.Makespan, makespan)})
	}
	return c.vs
}

// floatEq compares objective values with a tolerance for the float
// summation order (completions are integers, so agreement should in
// practice be exact; the epsilon guards against alternative
// accumulation orders in callers).
func floatEq(a, b float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-9*math.Max(scale, 1)
}
