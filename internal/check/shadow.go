package check

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"coflow/internal/coflowmodel"
	"coflow/internal/matrix"
	"coflow/internal/online"
)

// Op is one recorded input to a shadowed scheduler, in the order it
// was applied. The op log is the reproducer format: replaying it
// through a fresh fast/reference pair deterministically reproduces a
// divergence.
type Op struct {
	// Kind is "add", "remove" or "step".
	Kind string `json:"kind"`
	// Key identifies the coflow for add/remove.
	Key int `json:"key,omitempty"`
	// Weight and Release parameterize an add.
	Weight  float64            `json:"weight,omitempty"`
	Release int64              `json:"release,omitempty"`
	Flows   []coflowmodel.Flow `json:"flows,omitempty"`
	// Slot and Policy parameterize a step.
	Slot   int64 `json:"slot,omitempty"`
	Policy int   `json:"policy,omitempty"`
}

// Divergence reports the fast path and the reference disagreeing on
// identical inputs — by construction a bug in one of them.
type Divergence struct {
	// Slot is the slot at which outputs (or state) first diverged.
	Slot int64 `json:"slot"`
	// Reason describes the first observed difference.
	Reason string `json:"reason"`
	// Ops is the minimized input history reproducing the divergence.
	Ops []Op `json:"ops"`
	// Instance is the op history rendered as an instance, when the
	// history is instance-shaped (every add uses a distinct key).
	Instance *coflowmodel.Instance `json:"instance,omitempty"`
	// ReproPath is the reproducer file written to disk ("" when no
	// dump directory was configured or the write failed).
	ReproPath string `json:"-"`
}

func (d *Divergence) Error() string {
	return fmt.Sprintf("check: fast path diverged from reference at slot %d: %s", d.Slot, d.Reason)
}

// ShadowConfig tunes the oracle.
type ShadowConfig struct {
	// StateEvery runs the full remaining-demand state diff every k-th
	// step (0 or 1 = every step). Step outputs are always diffed; the
	// state diff is the expensive part on large live sets.
	StateEvery int
	// Dir, when non-empty, is where divergence reproducers are dumped
	// as JSON files.
	Dir string
	// NoMinimize skips reproducer minimization (which replays the op
	// log many times) and dumps the raw history instead.
	NoMinimize bool
}

// Shadow drives the optimized online.State and the dense Reference in
// lockstep and diffs them: a differential oracle over the sparse slot
// pipeline's fast path. All mutations must go through the Shadow.
//
// After the first divergence the oracle latches (Diverged returns it,
// further steps are applied to the fast path only): once the two
// implementations fork, further diffs are noise.
type Shadow struct {
	// State is the fast implementation under test. Callers may read
	// from it, but must mutate only through the Shadow.
	State *online.State

	ref   *Reference
	cfg   ShadowConfig
	ports int
	ops   []Op
	steps int64
	div   *Divergence
	dumps int
}

// NewShadow creates a shadowed scheduler pair for an m-port switch.
func NewShadow(ports int, cfg ShadowConfig) *Shadow {
	if cfg.StateEvery <= 0 {
		cfg.StateEvery = 1
	}
	return &Shadow{
		State: online.NewState(ports),
		ref:   NewReference(ports),
		cfg:   cfg,
		ports: ports,
	}
}

// Diverged returns the first recorded divergence, or nil.
func (sh *Shadow) Diverged() *Divergence { return sh.div }

// Add registers a coflow with both implementations. The two must
// agree on acceptance; disagreement is itself a divergence.
func (sh *Shadow) Add(key int, weight float64, release int64, flows []coflowmodel.Flow) (int64, error) {
	remaining, err := sh.State.Add(key, weight, release, flows)
	if err != nil {
		return 0, err
	}
	if sh.div == nil {
		refRemaining, refErr := sh.ref.Add(key, weight, release, flows)
		if refErr != nil || refRemaining != remaining {
			sh.fail(-1, fmt.Sprintf("Add(%d): fast accepted %d units, reference said (%d, %v)",
				key, remaining, refRemaining, refErr))
		}
	}
	sh.ops = append(sh.ops, Op{Kind: "add", Key: key, Weight: weight, Release: release,
		Flows: append([]coflowmodel.Flow(nil), flows...)})
	return remaining, nil
}

// Remove cancels a coflow in both implementations.
func (sh *Shadow) Remove(key int) bool {
	ok := sh.State.Remove(key)
	if sh.div == nil {
		if refOK := sh.ref.Remove(key); refOK != ok {
			sh.fail(-1, fmt.Sprintf("Remove(%d): fast %v, reference %v", key, ok, refOK))
		}
	}
	sh.ops = append(sh.ops, Op{Kind: "remove", Key: key})
	return ok
}

// Step advances both implementations one slot and diffs the results.
// The fast path's StepResult is returned either way, so a Shadow is a
// drop-in replacement for the State in a scheduling loop. The result
// aliases the fast State's scratch, like State.Step's.
//
//coflow:pooled
func (sh *Shadow) Step(slot int64, policy online.Policy) (online.StepResult, *Divergence) {
	res := sh.State.Step(slot, policy)
	sh.ops = append(sh.ops, Op{Kind: "step", Slot: slot, Policy: int(policy)})
	if sh.div != nil {
		return res, sh.div
	}
	refRes := sh.ref.Step(slot, policy)
	if reason := diffStep(res, refRes); reason != "" {
		sh.fail(slot, reason)
		return res, sh.div
	}
	sh.steps++
	if sh.steps%int64(sh.cfg.StateEvery) == 0 {
		if reason := diffState(sh.State, sh.ref); reason != "" {
			sh.fail(slot, reason)
		}
	}
	return res, sh.div
}

// fail latches the divergence, minimizes the reproducer and dumps it.
func (sh *Shadow) fail(slot int64, reason string) {
	ops := append([]Op(nil), sh.ops...)
	div := &Divergence{Slot: slot, Reason: reason, Ops: ops}
	if !sh.cfg.NoMinimize {
		if min, minDiv := Minimize(sh.ports, ops); minDiv != nil {
			div.Ops = min
			div.Slot = minDiv.Slot
			div.Reason = minDiv.Reason
		}
	}
	div.Instance = opsInstance(sh.ports, div.Ops)
	if sh.cfg.Dir != "" {
		path := filepath.Join(sh.cfg.Dir, fmt.Sprintf("divergence-%d.json", sh.dumps))
		sh.dumps++
		if err := dumpReproducer(path, sh.ports, div); err == nil {
			div.ReproPath = path
		}
	}
	sh.div = div
}

// diffStep compares one slot's outputs. Both implementations are
// fully deterministic, so the served and completed SEQUENCES (not
// just sets) must agree.
func diffStep(fast, ref online.StepResult) string {
	if fast.Slot != ref.Slot {
		return fmt.Sprintf("slot %d vs %d", fast.Slot, ref.Slot)
	}
	if fast.Active != ref.Active {
		return fmt.Sprintf("active count %d vs reference %d", fast.Active, ref.Active)
	}
	if len(fast.Served) != len(ref.Served) {
		return fmt.Sprintf("served %d units, reference served %d (fast %v, reference %v)",
			len(fast.Served), len(ref.Served), fast.Served, ref.Served)
	}
	for i := range fast.Served {
		if fast.Served[i] != ref.Served[i] {
			return fmt.Sprintf("served[%d] = %+v, reference %+v", i, fast.Served[i], ref.Served[i])
		}
	}
	if len(fast.Completed) != len(ref.Completed) {
		return fmt.Sprintf("completed %v, reference completed %v", fast.Completed, ref.Completed)
	}
	for i := range fast.Completed {
		if fast.Completed[i] != ref.Completed[i] {
			return fmt.Sprintf("completed[%d] = %d, reference %d", i, fast.Completed[i], ref.Completed[i])
		}
	}
	return ""
}

// diffState compares the full live state: the key sets and every
// coflow's remaining per-pair demand.
func diffState(fast *online.State, ref *Reference) string {
	fastKeys := fast.Keys(nil)
	refKeys := ref.Keys()
	if len(fastKeys) != len(refKeys) {
		return fmt.Sprintf("live keys %v, reference %v", fastKeys, refKeys)
	}
	for i := range fastKeys {
		if fastKeys[i] != refKeys[i] {
			return fmt.Sprintf("live keys %v, reference %v", fastKeys, refKeys)
		}
	}
	for _, key := range fastKeys {
		fd := fast.Demand(key)
		rd := ref.Demand(key)
		if reason := diffDemand(key, fd, rd); reason != "" {
			return reason
		}
		ft, _ := fast.Remaining(key)
		rt, _ := ref.Remaining(key)
		if ft != rt {
			return fmt.Sprintf("coflow %d remaining total %d, reference %d (incremental sum corrupt)", key, ft, rt)
		}
	}
	return ""
}

// diffDemand compares two positive-entry lists in (row, col) order.
func diffDemand(key int, fast, ref []matrix.SparseEntry) string {
	if len(fast) != len(ref) {
		return fmt.Sprintf("coflow %d has %d live pairs, reference %d", key, len(fast), len(ref))
	}
	for i := range fast {
		if fast[i] != ref[i] {
			return fmt.Sprintf("coflow %d pair %d: fast %+v, reference %+v", key, i, fast[i], ref[i])
		}
	}
	return ""
}

// Replay runs an op log from scratch through a fresh fast/reference
// pair, diffing outputs and full state after every step, and returns
// the first divergence (nil if the log replays clean). Invalid ops
// (e.g. an add both sides reject) are skipped on both sides.
func Replay(ports int, ops []Op) *Divergence {
	fast := online.NewState(ports)
	ref := NewReference(ports)
	for _, op := range ops {
		switch op.Kind {
		case "add":
			fastRem, fastErr := fast.Add(op.Key, op.Weight, op.Release, op.Flows)
			refRem, refErr := ref.Add(op.Key, op.Weight, op.Release, op.Flows)
			if (fastErr == nil) != (refErr == nil) || fastRem != refRem {
				return &Divergence{Slot: -1, Ops: ops,
					Reason: fmt.Sprintf("Add(%d): fast (%d, %v), reference (%d, %v)", op.Key, fastRem, fastErr, refRem, refErr)}
			}
		case "remove":
			if fastOK, refOK := fast.Remove(op.Key), ref.Remove(op.Key); fastOK != refOK {
				return &Divergence{Slot: -1, Ops: ops,
					Reason: fmt.Sprintf("Remove(%d): fast %v, reference %v", op.Key, fastOK, refOK)}
			}
		case "step":
			res := fast.Step(op.Slot, online.Policy(op.Policy))
			refRes := ref.Step(op.Slot, online.Policy(op.Policy))
			if reason := diffStep(res, refRes); reason != "" {
				return &Divergence{Slot: op.Slot, Reason: reason, Ops: ops}
			}
			if reason := diffState(fast, ref); reason != "" {
				return &Divergence{Slot: op.Slot, Reason: reason, Ops: ops}
			}
		}
	}
	return nil
}

// Minimize shrinks an op log while preserving some divergence under
// Replay: whole coflows are dropped greedily, then individual flows,
// then the tail after the first divergent step. It returns the
// minimized log and its divergence, or (ops, nil) if the log does not
// reproduce any divergence (a non-deterministic or external bug).
func Minimize(ports int, ops []Op) ([]Op, *Divergence) {
	div := Replay(ports, ops)
	if div == nil {
		return ops, nil
	}
	// Drop whole coflows (the add and every op naming its key).
	const maxCoflowDrops = 512
	keys := addKeys(ops)
	if len(keys) <= maxCoflowDrops {
		for _, key := range keys {
			cand := opsWithoutKey(ops, key)
			if d := Replay(ports, cand); d != nil {
				ops, div = cand, d
			}
		}
	}
	// Drop individual flows within the surviving adds.
	for i := 0; i < len(ops); i++ {
		if ops[i].Kind != "add" {
			continue
		}
		for j := 0; j < len(ops[i].Flows); {
			cand := cloneOps(ops)
			cand[i].Flows = append(append([]coflowmodel.Flow(nil), cand[i].Flows[:j]...), cand[i].Flows[j+1:]...)
			if d := Replay(ports, cand); d != nil {
				ops, div = cand, d
			} else {
				j++
			}
		}
	}
	// Trim everything after the first divergent step.
	for i := len(ops) - 1; i >= 0; i-- {
		if ops[i].Kind == "step" && ops[i].Slot == div.Slot {
			cand := ops[:i+1]
			if d := Replay(ports, cand); d != nil {
				ops, div = cand, d
			}
			break
		}
	}
	div.Ops = ops
	return ops, div
}

func addKeys(ops []Op) []int {
	var keys []int
	for _, op := range ops {
		if op.Kind == "add" {
			keys = append(keys, op.Key)
		}
	}
	return keys
}

func opsWithoutKey(ops []Op, key int) []Op {
	out := make([]Op, 0, len(ops))
	for _, op := range ops {
		if (op.Kind == "add" || op.Kind == "remove") && op.Key == key {
			continue
		}
		out = append(out, op)
	}
	return out
}

func cloneOps(ops []Op) []Op {
	out := make([]Op, len(ops))
	copy(out, ops)
	return out
}

// opsInstance renders an op log as an Instance when it is
// instance-shaped: all adds use distinct keys. Returns nil otherwise.
func opsInstance(ports int, ops []Op) *coflowmodel.Instance {
	ins := &coflowmodel.Instance{Ports: ports}
	seen := map[int]bool{}
	for _, op := range ops {
		if op.Kind != "add" {
			continue
		}
		if seen[op.Key] {
			return nil
		}
		seen[op.Key] = true
		ins.Coflows = append(ins.Coflows, coflowmodel.Coflow{
			ID: op.Key, Weight: op.Weight, Release: op.Release,
			Flows: append([]coflowmodel.Flow(nil), op.Flows...),
		})
	}
	if ins.Validate() != nil {
		return nil
	}
	return ins
}

// reproducer is the on-disk format of a dumped divergence.
type reproducer struct {
	Ports      int         `json:"ports"`
	Divergence *Divergence `json:"divergence"`
}

func dumpReproducer(path string, ports int, div *Divergence) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(reproducer{Ports: ports, Divergence: div}); err != nil {
		// Already failing: the encode error wins, the temp file is junk.
		_ = f.Close()
		_ = os.Remove(tmp) // best effort: the temp file is junk
		return err
	}
	if err := f.Close(); err != nil {
		// Already failing: best-effort removal of the unusable temp file.
		_ = os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}
