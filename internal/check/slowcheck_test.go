//go:build slowcheck

package check

import (
	"testing"

	"coflow/internal/online"
	"coflow/internal/trace"
)

// Slowcheck runs the differential oracle at a scale the tier-1 suite
// cannot afford: larger fabrics, heavier traces, every policy, full
// state diffs every slot. Run with `make slowcheck` (or
// `go test -tags=slowcheck ./internal/check/`).

func slowTraceConfigs() []trace.Config {
	var cfgs []trace.Config
	for seed := int64(100); seed < 112; seed++ {
		cfgs = append(cfgs, trace.Config{
			Ports: 3 + int(seed%3)*5, NumCoflows: 40, Seed: seed,
			NarrowFraction: 0.5, WideFraction: 0.2,
			MaxFlowSize: 12, ParetoAlpha: 1.3, MeanInterarrival: 3,
		})
	}
	return cfgs
}

// TestSlowShadowSweep drives every policy over a dozen traces with
// arrivals and mid-run cancellations, diffing the full live state
// after every single slot.
func TestSlowShadowSweep(t *testing.T) {
	for _, cfg := range slowTraceConfigs() {
		ins := trace.MustGenerate(cfg)
		for _, policy := range []online.Policy{online.FIFO, online.SEBF, online.WSPT} {
			sh := NewShadow(ins.Ports, ShadowConfig{})
			removeKey := -1
			if cfg.Seed%2 == 0 {
				removeKey = len(ins.Coflows) / 3
			}
			driveShadow(t, sh, ins, policy, removeKey)
		}
	}
}

// TestSlowValidatedOnlineRuns recomputes the full post-hoc validation
// for complete online runs on the same traces: the emitted schedule,
// completions and objectives must certify under check.Schedule.
func TestSlowValidatedOnlineRuns(t *testing.T) {
	for _, cfg := range slowTraceConfigs()[:6] {
		ins := trace.MustGenerate(cfg)
		for _, policy := range []online.Policy{online.FIFO, online.SEBF, online.WSPT} {
			rec := recordOnlineRun(t, ins, policy)
			if vs := Schedule(ins, rec); vs != nil {
				t.Errorf("seed %d %v: %s", cfg.Seed, policy, kinds(vs))
			}
		}
	}
}

// TestSlowMonitorSweep replays the traces through the runtime Monitor
// with validation on every slot.
func TestSlowMonitorSweep(t *testing.T) {
	for _, cfg := range slowTraceConfigs()[:6] {
		ins := trace.MustGenerate(cfg)
		for _, policy := range []online.Policy{online.FIFO, online.SEBF, online.WSPT} {
			state := online.NewState(ins.Ports)
			mon := NewMonitor(ins.Ports)
			for k := range ins.Coflows {
				c := &ins.Coflows[k]
				rem, err := state.Add(k, c.Weight, c.Release, c.Flows)
				if err != nil {
					t.Fatal(err)
				}
				if rem > 0 {
					mon.Add(k, c.Release, c.Flows)
				}
			}
			var tt int64
			horizon := ins.Horizon() + 1
			for state.Len() > 0 && tt <= horizon {
				res := state.Step(tt+1, policy)
				if res.Active == 0 {
					tt = state.NextRelease(tt)
					continue
				}
				if vs := mon.Observe(res, true); vs != nil {
					t.Fatalf("seed %d %v slot %d: %v", cfg.Seed, policy, res.Slot, vs)
				}
				tt = res.Slot
			}
			if mon.Live() != 0 {
				t.Fatalf("seed %d %v: monitor retains %d coflows", cfg.Seed, policy, mon.Live())
			}
		}
	}
}
