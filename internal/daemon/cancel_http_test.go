package daemon

import (
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"

	"coflow/internal/coflowmodel"
	"coflow/internal/online"
)

func cancelTestServer(t *testing.T, ports int) (*Daemon, *httptest.Server) {
	t.Helper()
	d, err := New(Config{Ports: ports, Policy: online.SEBF, MaxBody: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = d.Close() })
	srv := httptest.NewServer(d.Handler())
	t.Cleanup(srv.Close)
	return d, srv
}

func registerOne(t *testing.T, d *Daemon, src, dst int, size int64) int {
	t.Helper()
	id, _, err := d.Register(&coflowmodel.Registration{
		Flows: []coflowmodel.Flow{{Src: src, Dst: dst, Size: size}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return id
}

// TestHTTPCancelTerminalCoflow pins the satellite contract: cancelling
// a coflow that already reached a terminal state (cancelled or
// completed) answers 409 with the dedicated kind "terminal_coflow",
// not the generic "conflict" the pre-fix daemon served.
func TestHTTPCancelTerminalCoflow(t *testing.T) {
	d, srv := cancelTestServer(t, 2)
	client := srv.Client()

	cancelled := registerOne(t, d, 0, 1, 5)
	completed := registerOne(t, d, 1, 0, 1)

	idPath := func(id int) string { return srv.URL + "/v1/coflows/" + strconv.Itoa(id) }
	if code := doJSON(t, client, "DELETE", idPath(cancelled), "", nil); code != http.StatusOK {
		t.Fatalf("first DELETE = %d, want 200", code)
	}
	// Drain the one-unit coflow so it terminates by completion.
	if err := d.Tick(); err != nil {
		t.Fatal(err)
	}
	if st := d.Snapshot().Coflows.Get(completed); st == nil || st.State != "completed" {
		t.Fatalf("coflow %d not completed after tick: %+v", completed, st)
	}

	var errBody struct {
		Error string `json:"error"`
		Kind  string `json:"kind"`
	}
	for _, id := range []int{cancelled, completed} {
		errBody.Kind = ""
		if code := doJSON(t, client, "DELETE", idPath(id), "", &errBody); code != http.StatusConflict || errBody.Kind != "terminal_coflow" {
			t.Fatalf("DELETE terminal %d = %d kind=%q, want 409 terminal_coflow", id, code, errBody.Kind)
		}
	}
	// Unknown IDs stay 404 not_found — terminal_coflow must not leak there.
	if code := doJSON(t, client, "DELETE", idPath(99999), "", &errBody); code != http.StatusNotFound || errBody.Kind != "not_found" {
		t.Fatalf("DELETE unknown = %d kind=%q, want 404 not_found", code, errBody.Kind)
	}
}

// TestHTTPBulkCancel exercises DELETE /v1/coflows with a mixed array:
// live, unknown, terminal, and non-positive IDs resolve independently
// into index-addressed results matching the bulk-register format.
func TestHTTPBulkCancel(t *testing.T) {
	d, srv := cancelTestServer(t, 2)
	client := srv.Client()

	live := registerOne(t, d, 0, 1, 5)
	terminal := registerOne(t, d, 1, 0, 3)
	if err := d.Cancel(terminal); err != nil {
		t.Fatal(err)
	}

	body := "[" + strconv.Itoa(live) + ", 99999, " + strconv.Itoa(terminal) + ", -7]"
	var resp BulkResponse
	if code := doJSON(t, client, "DELETE", srv.URL+"/v1/coflows", body, &resp); code != http.StatusOK {
		t.Fatalf("bulk DELETE = %d, want 200", code)
	}
	if resp.OK != 1 || resp.Failed != 3 || len(resp.Results) != 4 {
		t.Fatalf("bulk response = %+v, want 1 ok / 3 failed / 4 results", resp)
	}
	for i, r := range resp.Results {
		if r.Index != i {
			t.Fatalf("result %d carries index %d", i, r.Index)
		}
	}
	if r := resp.Results[0]; r.ID != live || r.Kind != "" || r.Error != "" {
		t.Fatalf("live item = %+v, want clean cancel", r)
	}
	if r := resp.Results[1]; r.Kind != "not_found" || r.Error == "" {
		t.Fatalf("unknown item = %+v, want not_found", r)
	}
	if r := resp.Results[2]; r.Kind != "terminal_coflow" || r.Error == "" {
		t.Fatalf("terminal item = %+v, want terminal_coflow", r)
	}
	if r := resp.Results[3]; r.ID != -7 || r.Kind != "validation" {
		t.Fatalf("non-positive item = %+v, want validation", r)
	}
	if st := d.Snapshot().Coflows.Get(live); st == nil || st.State != "cancelled" {
		t.Fatalf("live coflow after bulk cancel: %+v", st)
	}
}

// TestHTTPBulkCancelBodyErrors: body-level breakage fails the whole
// request with the structured kinds shared with bulk registration.
func TestHTTPBulkCancelBodyErrors(t *testing.T) {
	_, srv := cancelTestServer(t, 2)
	client := srv.Client()
	var errBody struct {
		Kind string `json:"kind"`
	}
	for body, want := range map[string]string{
		`{"ids": [1]}`: "malformed_json", // object, not array
		`[1, 2`:        "malformed_json",
		`[]`:           "validation",
	} {
		errBody.Kind = ""
		if code := doJSON(t, client, "DELETE", srv.URL+"/v1/coflows", body, &errBody); code != http.StatusBadRequest || errBody.Kind != want {
			t.Fatalf("body %q = %d kind=%q, want 400 %s", body, code, errBody.Kind, want)
		}
	}
}

// TestHTTPPortFailRecover drives the failure injection routes: fail
// parks the port (visible in metrics), recover clears it, and bad
// ports get structured validation errors.
func TestHTTPPortFailRecover(t *testing.T) {
	d, srv := cancelTestServer(t, 4)
	client := srv.Client()

	var ack struct {
		Port   int  `json:"port"`
		Failed bool `json:"failed"`
	}
	if code := doJSON(t, client, "POST", srv.URL+"/v1/ports/2/fail", "", &ack); code != http.StatusOK || ack.Port != 2 || !ack.Failed {
		t.Fatalf("fail port 2 = %d %+v", code, ack)
	}
	m := d.Snapshot().Metrics
	if m.PortsFailed != 1 || len(m.FailedPorts) != 1 || m.FailedPorts[0] != 2 {
		t.Fatalf("metrics after fail = %+v", m)
	}
	if code := doJSON(t, client, "POST", srv.URL+"/v1/ports/2/recover", "", &ack); code != http.StatusOK || ack.Failed {
		t.Fatalf("recover port 2 = %d %+v", code, ack)
	}
	if m := d.Snapshot().Metrics; m.PortsFailed != 0 {
		t.Fatalf("metrics after recover = %+v", m)
	}

	var errBody struct {
		Kind string `json:"kind"`
	}
	if code := doJSON(t, client, "POST", srv.URL+"/v1/ports/99/fail", "", &errBody); code != http.StatusBadRequest || errBody.Kind != "validation" {
		t.Fatalf("fail port 99 = %d kind=%q, want 400 validation", code, errBody.Kind)
	}
	if code := doJSON(t, client, "POST", srv.URL+"/v1/ports/x/fail", "", &errBody); code != http.StatusBadRequest || errBody.Kind != "validation" {
		t.Fatalf("fail port x = %d kind=%q, want 400 validation", code, errBody.Kind)
	}
}
