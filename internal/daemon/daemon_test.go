package daemon

import (
	"strings"
	"sync"
	"testing"
	"time"

	"coflow/internal/coflowmodel"
	"coflow/internal/online"
)

func newTestDaemon(t *testing.T, cfg Config) *Daemon {
	t.Helper()
	if cfg.Ports == 0 {
		cfg.Ports = 2
	}
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return d
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{Ports: 0}); err == nil {
		t.Error("ports=0 accepted")
	}
	if _, err := New(Config{Ports: 2, Policy: online.Policy(99)}); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestRegisterTickComplete(t *testing.T) {
	d := newTestDaemon(t, Config{Ports: 2, Policy: online.SEBF})
	id, release, err := d.Register(&coflowmodel.Registration{
		Weight: 2,
		Flows: []coflowmodel.Flow{
			{Src: 0, Dst: 0, Size: 1}, {Src: 0, Dst: 1, Size: 2},
			{Src: 1, Dst: 0, Size: 2}, {Src: 1, Dst: 1, Size: 1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if id != 1 || release != 0 {
		t.Fatalf("Register = (%d, %d), want (1, 0)", id, release)
	}
	cs := d.Snapshot().Coflows.Get(1)
	if cs == nil || cs.State != "active" || cs.Remaining != 6 || cs.Load != 3 {
		t.Fatalf("registered status = %+v", cs)
	}
	// ρ = 3; greedy clears within 2ρ−1 = 5 slots.
	var completedAt int64
	for slot := 1; slot <= 5; slot++ {
		if err := d.Tick(); err != nil {
			t.Fatal(err)
		}
		if cs := d.Snapshot().Coflows.Get(1); cs.State == "completed" {
			completedAt = cs.Completed
			break
		}
	}
	if completedAt < 3 || completedAt > 5 {
		t.Fatalf("completion slot = %d, want in [3, 5]", completedAt)
	}
	m := d.Snapshot().Metrics
	if m.Completed != 1 || m.ActiveCoflows != 0 {
		t.Fatalf("metrics after completion: %+v", m)
	}
	if want := 2 * float64(completedAt); m.TotalWeighted != want {
		t.Fatalf("TotalWeighted = %g, want %g", m.TotalWeighted, want)
	}
	if m.TickLatency.Count == 0 || m.TickLatency.Max <= 0 {
		t.Fatalf("tick latency not recorded: %+v", m.TickLatency)
	}
	if cs := d.Snapshot().Coflows.Get(1); cs.Slowdown < 1 {
		t.Fatalf("slowdown = %g < 1", cs.Slowdown)
	}
}

func TestZeroDemandCompletesAtRelease(t *testing.T) {
	d := newTestDaemon(t, Config{Ports: 2})
	if err := d.Tick(); err != nil { // move the clock so release is non-zero
		t.Fatal(err)
	}
	id, release, err := d.Register(&coflowmodel.Registration{})
	if err != nil {
		t.Fatal(err)
	}
	if release != 1 {
		t.Fatalf("release = %d, want 1", release)
	}
	cs := d.Snapshot().Coflows.Get(id)
	if cs.State != "completed" || cs.Completed != 1 || cs.Slowdown != 1 {
		t.Fatalf("zero-demand status = %+v", cs)
	}
}

func TestRegisterValidation(t *testing.T) {
	d := newTestDaemon(t, Config{Ports: 2})
	_, _, err := d.Register(&coflowmodel.Registration{
		Flows: []coflowmodel.Flow{{Src: 5, Dst: 0, Size: 1}},
	})
	if err == nil {
		t.Fatal("out-of-range flow accepted")
	}
	if d.Snapshot().Metrics.Registered != 0 {
		t.Fatal("rejected registration counted")
	}
}

func TestCancel(t *testing.T) {
	d := newTestDaemon(t, Config{Ports: 1})
	hog, _, err := d.Register(&coflowmodel.Registration{
		Flows: []coflowmodel.Flow{{Src: 0, Dst: 0, Size: 1000}},
	})
	if err != nil {
		t.Fatal(err)
	}
	small, _, err := d.Register(&coflowmodel.Registration{
		Flows: []coflowmodel.Flow{{Src: 0, Dst: 0, Size: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Cancel(99); err == nil {
		t.Fatal("unknown id cancelled")
	}
	if err := d.Cancel(hog); err != nil {
		t.Fatal(err)
	}
	if err := d.Cancel(hog); err == nil {
		t.Fatal("double cancel accepted")
	}
	if cs := d.Snapshot().Coflows.Get(hog); cs.State != "cancelled" {
		t.Fatalf("hog state = %q", cs.State)
	}
	// With the hog gone, the small coflow completes in one slot.
	if err := d.Tick(); err != nil {
		t.Fatal(err)
	}
	cs := d.Snapshot().Coflows.Get(small)
	if cs.State != "completed" || cs.Completed != 1 {
		t.Fatalf("small coflow = %+v", cs)
	}
	if err := d.Cancel(small); err == nil || !strings.Contains(err.Error(), "completed") {
		t.Fatalf("cancelling completed coflow: %v", err)
	}
	if m := d.Snapshot().Metrics; m.Cancelled != 1 {
		t.Fatalf("Cancelled = %d, want 1", m.Cancelled)
	}
}

func TestScheduleSnapshotIsAMatching(t *testing.T) {
	d := newTestDaemon(t, Config{Ports: 2, Policy: online.WSPT})
	for i := 0; i < 3; i++ {
		_, _, err := d.Register(&coflowmodel.Registration{
			Flows: []coflowmodel.Flow{{Src: 0, Dst: 0, Size: 2}, {Src: 1, Dst: 1, Size: 2}},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Tick(); err != nil {
		t.Fatal(err)
	}
	sched := d.Snapshot().Schedule
	if len(sched) == 0 {
		t.Fatal("empty schedule after tick over live demand")
	}
	src, dst := map[int]bool{}, map[int]bool{}
	for _, a := range sched {
		if src[a.Src] || dst[a.Dst] {
			t.Fatalf("schedule %v is not a matching", sched)
		}
		src[a.Src] = true
		dst[a.Dst] = true
	}
}

func TestDeadlineDegradesToFIFO(t *testing.T) {
	// A 1ns budget is always exceeded: the first tick must degrade the
	// daemon, and with degradeHold consecutive sub-nanosecond ticks
	// being impossible it stays degraded.
	d := newTestDaemon(t, Config{Ports: 2, Policy: online.SEBF, Deadline: time.Nanosecond})
	if _, _, err := d.Register(&coflowmodel.Registration{
		Flows: []coflowmodel.Flow{{Src: 0, Dst: 1, Size: 100}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := d.Tick(); err != nil {
		t.Fatal(err)
	}
	m := d.Snapshot().Metrics
	if !m.Degraded || m.ActivePolicy != "FIFO" || m.Policy != "SEBF" {
		t.Fatalf("after over-budget tick: %+v", m)
	}
	for i := 0; i < 3; i++ {
		if err := d.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	if m := d.Snapshot().Metrics; !m.Degraded {
		t.Fatal("degrade did not stick under a 1ns budget")
	}
}

func TestNoDeadlineNeverDegrades(t *testing.T) {
	d := newTestDaemon(t, Config{Ports: 2, Policy: online.SEBF})
	for i := 0; i < 5; i++ {
		if err := d.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	if m := d.Snapshot().Metrics; m.Degraded || m.ActivePolicy != "SEBF" {
		t.Fatalf("degraded without a deadline: %+v", m)
	}
}

func TestClosedDaemonRefusesCommands(t *testing.T) {
	d := newTestDaemon(t, Config{Ports: 2})
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.Register(&coflowmodel.Registration{}); err != ErrClosed {
		t.Fatalf("Register after Close: %v", err)
	}
	if err := d.Tick(); err != ErrClosed {
		t.Fatalf("Tick after Close: %v", err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if d.Snapshot() == nil {
		t.Fatal("snapshot unavailable after Close")
	}
}

// The acceptance criterion's race check: concurrent registrations,
// cancellations, reads and ticks on one daemon. Run with -race.
func TestConcurrentRegistrationsAndReads(t *testing.T) {
	d := newTestDaemon(t, Config{Ports: 4, Policy: online.SEBF, Window: 64})
	const (
		writers       = 4
		readers       = 4
		perWriter     = 25
		ticks     int = 200
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})

	wg.Add(1)
	go func() { // dedicated ticker driver
		defer wg.Done()
		for i := 0; i < ticks; i++ {
			if err := d.Tick(); err != nil {
				t.Errorf("tick: %v", err)
				return
			}
		}
	}()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				id, _, err := d.Register(&coflowmodel.Registration{
					Weight: 1 + float64(i%3),
					Flows:  []coflowmodel.Flow{{Src: i % 4, Dst: (i + 1) % 4, Size: 3}},
				})
				if err != nil {
					t.Errorf("register: %v", err)
					return
				}
				if i%5 == 0 {
					// Cancel a recent registration; completed/already-
					// cancelled conflicts are expected and fine.
					_ = d.Cancel(id)
				}
			}
		}()
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := d.Snapshot()
				if snap.Metrics.Registered < snap.Metrics.Completed {
					t.Error("completed exceeds registered")
					return
				}
				snap.Coflows.Range(func(_ int, cs *CoflowStatus) bool {
					if cs.State == "completed" && cs.Remaining != 0 {
						t.Errorf("completed coflow with remaining %d", cs.Remaining)
						return false
					}
					return true
				})
			}
		}()
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	// Stop readers once writers and ticker are done.
	go func() {
		defer close(stop)
		deadline := time.After(30 * time.Second)
		for {
			snap := d.Snapshot()
			if snap.Metrics.Registered == int64(writers*perWriter) && snap.Metrics.Ticks == int64(ticks) {
				return
			}
			select {
			case <-deadline:
				return
			case <-time.After(time.Millisecond):
			}
		}
	}()
	<-done

	// Drain everything that is still live and check conservation.
	for d.Snapshot().Metrics.ActiveCoflows > 0 {
		if err := d.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	m := d.Snapshot().Metrics
	if m.Registered != int64(writers*perWriter) {
		t.Fatalf("registered = %d, want %d", m.Registered, writers*perWriter)
	}
	if m.Completed+m.Cancelled != m.Registered {
		t.Fatalf("completed %d + cancelled %d != registered %d",
			m.Completed, m.Cancelled, m.Registered)
	}
}

func TestPlanTracksBacklog(t *testing.T) {
	d := newTestDaemon(t, Config{Ports: 2, Policy: online.SEBF, Plan: true})
	if _, _, err := d.Register(&coflowmodel.Registration{
		Flows: []coflowmodel.Flow{
			{Src: 0, Dst: 0, Size: 1}, {Src: 0, Dst: 1, Size: 2},
			{Src: 1, Dst: 0, Size: 2}, {Src: 1, Dst: 1, Size: 1},
		},
	}); err != nil {
		t.Fatal(err)
	}
	// The first tick runs the cold plan of the fresh backlog: ρ(D) = 3.
	if err := d.Tick(); err != nil {
		t.Fatal(err)
	}
	m := d.Snapshot().Metrics
	if !m.Plan || m.PlanError != "" {
		t.Fatalf("plan metrics after first tick: %+v", m)
	}
	if m.PlanLoad <= 0 || m.PlanTerms <= 0 {
		t.Fatalf("first plan: load %d, terms %d, want both positive", m.PlanLoad, m.PlanTerms)
	}
	// The greedy clears within 2ρ−1 slots; the plan must drain with it.
	for slot := 0; slot < 5; slot++ {
		if err := d.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	m = d.Snapshot().Metrics
	if m.Completed != 1 {
		t.Fatalf("coflow not completed: %+v", m)
	}
	if m.PlanLoad != 0 || m.PlanTerms != 0 {
		t.Fatalf("drained backlog still planned: load %d, terms %d", m.PlanLoad, m.PlanTerms)
	}
	if m.PlanUpdates == 0 {
		t.Fatal("shrink-only ticks ran no incremental updates")
	}
	if m.PlanError != "" {
		t.Fatalf("planner disabled: %s", m.PlanError)
	}
}

func TestPlanShedsCancelledDemand(t *testing.T) {
	d := newTestDaemon(t, Config{Ports: 2, Policy: online.SEBF, Plan: true})
	id, _, err := d.Register(&coflowmodel.Registration{
		Flows: []coflowmodel.Flow{{Src: 0, Dst: 1, Size: 5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Tick(); err != nil { // one unit served, plan primed
		t.Fatal(err)
	}
	if m := d.Snapshot().Metrics; m.PlanLoad != 4 {
		t.Fatalf("plan load after one served slot = %d, want 4", m.PlanLoad)
	}
	if err := d.Cancel(id); err != nil {
		t.Fatal(err)
	}
	if err := d.Tick(); err != nil {
		t.Fatal(err)
	}
	m := d.Snapshot().Metrics
	if m.PlanError != "" {
		t.Fatalf("planner disabled by cancel: %s", m.PlanError)
	}
	if m.PlanLoad != 0 {
		t.Fatalf("cancelled demand still planned: load %d", m.PlanLoad)
	}
}
