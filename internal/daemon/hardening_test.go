package daemon

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"coflow/internal/coflowmodel"
	"coflow/internal/online"
)

// apiError is the structured error body every non-2xx response carries.
type apiError struct {
	Error string `json:"error"`
	Kind  string `json:"kind"`
}

// TestHTTPStatusCodes pins one handler test per hardened status code:
// structured 400 for malformed JSON vs validation failures, 405 (not
// 404) with an Allow header for wrong methods, 413 for oversized
// bodies — all with machine-readable kinds.
func TestHTTPStatusCodes(t *testing.T) {
	d := newTestDaemon(t, Config{Ports: 2, Policy: online.SEBF, MaxBody: 256})
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()
	client := srv.Client()

	t.Run("400 malformed JSON", func(t *testing.T) {
		var e apiError
		code := doJSON(t, client, "POST", srv.URL+"/v1/coflows", `{"flows": [`, &e)
		if code != http.StatusBadRequest {
			t.Fatalf("status %d, want 400", code)
		}
		if e.Kind != "malformed_json" || e.Error == "" {
			t.Fatalf("body %+v, want kind malformed_json", e)
		}
	})

	t.Run("400 validation", func(t *testing.T) {
		var e apiError
		code := doJSON(t, client, "POST", srv.URL+"/v1/coflows",
			`{"flows": [{"src": 9, "dst": 0, "size": 1}]}`, &e)
		if code != http.StatusBadRequest {
			t.Fatalf("status %d, want 400", code)
		}
		if e.Kind != "validation" {
			t.Fatalf("body %+v, want kind validation", e)
		}
	})

	t.Run("413 oversized body", func(t *testing.T) {
		big := `{"flows": [` + strings.Repeat(`{"src":0,"dst":0,"size":1},`, 100) +
			`{"src":0,"dst":0,"size":1}]}`
		var e apiError
		code := doJSON(t, client, "POST", srv.URL+"/v1/coflows", big, &e)
		if code != http.StatusRequestEntityTooLarge {
			t.Fatalf("status %d, want 413", code)
		}
		if e.Kind != "too_large" {
			t.Fatalf("body %+v, want kind too_large", e)
		}
	})

	t.Run("405 wrong method", func(t *testing.T) {
		for path, method := range map[string]string{
			"/v1/coflows":   "PUT",
			"/v1/coflows/1": "POST",
			"/v1/schedule":  "DELETE",
			"/v1/metrics":   "POST",
			"/healthz":      "DELETE",
		} {
			var e apiError
			req, err := http.NewRequest(method, srv.URL+path, nil)
			if err != nil {
				t.Fatal(err)
			}
			resp, err := client.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			allow := resp.Header.Get("Allow")
			decErr := json.NewDecoder(resp.Body).Decode(&e)
			resp.Body.Close()
			if resp.StatusCode != http.StatusMethodNotAllowed {
				t.Errorf("%s %s: status %d, want 405", method, path, resp.StatusCode)
				continue
			}
			if decErr != nil || e.Kind != "method_not_allowed" {
				t.Errorf("%s %s: body %+v (%v), want structured method_not_allowed", method, path, e, decErr)
			}
			if allow == "" || !strings.Contains(allow, "GET") {
				t.Errorf("%s %s: Allow header %q", method, path, allow)
			}
		}
	})

	t.Run("404 unknown path still 404", func(t *testing.T) {
		resp, err := client.Get(srv.URL + "/v1/nope")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("status %d, want 404", resp.StatusCode)
		}
	})
}

// TestSelfCheckCleanRun: a full register→tick→complete lifecycle under
// -selfcheck with every tick validated reports zero violations, and
// the metrics advertise the monitor.
func TestSelfCheckCleanRun(t *testing.T) {
	d := newTestDaemon(t, Config{Ports: 2, Policy: online.SEBF, SelfCheck: true, SelfCheckEvery: 1})
	reg := &coflowmodel.Registration{Weight: 2, Flows: []coflowmodel.Flow{
		{Src: 0, Dst: 0, Size: 3}, {Src: 0, Dst: 1, Size: 2}, {Src: 1, Dst: 1, Size: 1},
	}}
	if _, _, err := d.Register(reg); err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.Register(&coflowmodel.Registration{Flows: []coflowmodel.Flow{
		{Src: 1, Dst: 0, Size: 4},
	}}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		if err := d.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	m := d.Snapshot().Metrics
	if !m.SelfCheck {
		t.Error("metrics do not advertise self-check")
	}
	if m.SelfCheckViolations != 0 {
		t.Errorf("clean run reported %d violations (last: %s)", m.SelfCheckViolations, m.LastViolation)
	}
	if m.ActiveCoflows != 0 {
		t.Errorf("%d coflows still active after 12 slots", m.ActiveCoflows)
	}
}

// TestSelfCheckCancelledCoflow: cancelling mid-run must not confuse
// the monitor (its bookkeeping forgets the coflow like the scheduler
// does).
func TestSelfCheckCancelledCoflow(t *testing.T) {
	d := newTestDaemon(t, Config{Ports: 1, Policy: online.FIFO, SelfCheck: true, SelfCheckEvery: 1})
	id, _, err := d.Register(&coflowmodel.Registration{Flows: []coflowmodel.Flow{
		{Src: 0, Dst: 0, Size: 10},
	}})
	if err != nil {
		t.Fatal(err)
	}
	id2, _, err := d.Register(&coflowmodel.Registration{Flows: []coflowmodel.Flow{
		{Src: 0, Dst: 0, Size: 2},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Tick(); err != nil {
		t.Fatal(err)
	}
	if err := d.Cancel(id); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := d.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	m := d.Snapshot().Metrics
	if m.SelfCheckViolations != 0 {
		t.Errorf("cancellation produced %d violations (last: %s)", m.SelfCheckViolations, m.LastViolation)
	}
	if cs := d.Snapshot().Coflows.Get(id2); cs.State != "completed" {
		t.Errorf("survivor coflow state %q, want completed", cs.State)
	}
}

// TestSelfCheckSampling: with SelfCheckEvery=3 only every third tick
// validates, but bookkeeping still tracks every slot, so the run
// stays clean end to end.
func TestSelfCheckSampling(t *testing.T) {
	d := newTestDaemon(t, Config{Ports: 2, Policy: online.WSPT, SelfCheck: true, SelfCheckEvery: 3})
	if _, _, err := d.Register(&coflowmodel.Registration{Flows: []coflowmodel.Flow{
		{Src: 0, Dst: 1, Size: 7}, {Src: 1, Dst: 0, Size: 5},
	}}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := d.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	if m := d.Snapshot().Metrics; m.SelfCheckViolations != 0 {
		t.Errorf("sampled run reported %d violations (last: %s)", m.SelfCheckViolations, m.LastViolation)
	}
}

// TestSnapshotWriteIsAtomic: the final snapshot replaces any previous
// file contents completely (temp file + rename), and a failed write
// leaves no .tmp litter.
func TestSnapshotWriteIsAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.json")
	// Pre-existing garbage longer than the snapshot: a non-atomic
	// truncating write that died mid-encode would leave a hybrid.
	if err := os.WriteFile(path, []byte(strings.Repeat("x", 1<<16)), 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := New(Config{Ports: 2, Policy: online.SEBF, SnapshotPath: path})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.Register(&coflowmodel.Registration{Flows: []coflowmodel.Flow{
		{Src: 0, Dst: 0, Size: 1},
	}}); err != nil {
		t.Fatal(err)
	}
	if err := d.Tick(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("snapshot is not clean JSON after overwrite: %v", err)
	}
	if snap.Slot != 1 || snap.Coflows.Len() != 1 {
		t.Fatalf("snapshot content wrong: slot=%d coflows=%d", snap.Slot, snap.Coflows.Len())
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file left behind: %v", err)
	}
}

// TestSnapshotWriteFailureSurfaces: an unwritable snapshot path makes
// Close return the error instead of swallowing it.
func TestSnapshotWriteFailureSurfaces(t *testing.T) {
	d, err := New(Config{Ports: 2, Policy: online.SEBF,
		SnapshotPath: filepath.Join(t.TempDir(), "no", "such", "dir", "state.json")})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err == nil {
		t.Fatal("Close succeeded despite unwritable snapshot path")
	}
}
