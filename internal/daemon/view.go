package daemon

import "encoding/json"

// CoflowView is the snapshot's coflow table: an immutable layered
// view over a flattened base map plus a bounded, append-only delta of
// statuses that changed since the last flatten. It exists so the loop
// can publish a register or cancel without rebuilding a status for
// every coflow the fabric has ever seen — the O(all coflows) flatten
// is paid only on ticks (whose statuses all change anyway) and on
// delta overflow, so ingest-heavy bursts publish in O(1).
//
// Lookups see base ∪ delta with later delta entries winning. A view
// is immutable: the base map is never written after it is published,
// and the delta backing array is append-only past every published
// view's bound, so concurrent readers need no locks.
type CoflowView struct {
	base  map[int]*CoflowStatus
	delta []viewDelta // shared backing array; this view reads [:n]
	n     int
}

type viewDelta struct {
	id int
	cs *CoflowStatus
}

// Get returns the status of one coflow, or nil if the view has never
// seen the ID. Newer delta entries shadow base entries.
func (v *CoflowView) Get(id int) *CoflowStatus {
	if v == nil {
		return nil
	}
	for i := v.n - 1; i >= 0; i-- {
		if v.delta[i].id == id {
			return v.delta[i].cs
		}
	}
	return v.base[id]
}

// Len returns the number of distinct coflows in the view.
func (v *CoflowView) Len() int {
	if v == nil {
		return 0
	}
	fresh := 0
	seen := make(map[int]bool, v.n)
	for i := 0; i < v.n; i++ {
		d := v.delta[i]
		if seen[d.id] {
			continue
		}
		seen[d.id] = true
		if _, ok := v.base[d.id]; !ok {
			fresh++
		}
	}
	return len(v.base) + fresh
}

// Range calls f for every coflow in the view (iteration order is
// unspecified, like a map). Returning false stops the walk.
func (v *CoflowView) Range(f func(id int, cs *CoflowStatus) bool) {
	if v == nil {
		return
	}
	var seen map[int]bool
	if v.n > 0 {
		seen = make(map[int]bool, v.n)
	}
	for i := v.n - 1; i >= 0; i-- {
		d := v.delta[i]
		if seen[d.id] {
			continue
		}
		seen[d.id] = true
		if !f(d.id, d.cs) {
			return
		}
	}
	for id, cs := range v.base {
		if seen[id] {
			continue
		}
		if !f(id, cs) {
			return
		}
	}
}

// Map materializes the view as a plain map. The result is a fresh
// copy the caller owns.
func (v *CoflowView) Map() map[int]*CoflowStatus {
	if v == nil {
		return nil
	}
	out := make(map[int]*CoflowStatus, len(v.base)+v.n)
	v.Range(func(id int, cs *CoflowStatus) bool {
		out[id] = cs
		return true
	})
	return out
}

// MarshalJSON renders the view exactly like the map it replaced: a
// JSON object keyed by coflow ID. The snapshot file format and the
// /v1/coflows wire format are unchanged.
func (v *CoflowView) MarshalJSON() ([]byte, error) {
	return json.Marshal(v.Map())
}

// UnmarshalJSON accepts the same object form (snapshot files written
// by Close round-trip).
func (v *CoflowView) UnmarshalJSON(b []byte) error {
	var m map[int]*CoflowStatus
	if err := json.Unmarshal(b, &m); err != nil {
		return err
	}
	*v = CoflowView{base: m}
	return nil
}
