package daemon

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"coflow/internal/coflowmodel"
	"coflow/internal/obs"
	"coflow/internal/online"
)

// scrape GETs path and returns the response and body.
func scrape(t *testing.T, srv *httptest.Server, path string) (*http.Response, string) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(body)
}

// promValue extracts the value of an unlabelled sample line
// ("name 42") from a Prometheus text body.
func promValue(t *testing.T, body, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		rest, ok := strings.CutPrefix(line, name+" ")
		if !ok {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
		if err != nil {
			t.Fatalf("sample %q has unparsable value %q: %v", name, rest, err)
		}
		return v
	}
	t.Fatalf("sample %q not found in scrape", name)
	return 0
}

// runSomeTraffic registers two coflows and runs the daemon until both
// complete, returning the number of ticks driven.
func runSomeTraffic(t *testing.T, d *Daemon) int {
	t.Helper()
	for _, flows := range [][]coflowmodel.Flow{
		{{Src: 0, Dst: 0, Size: 2}, {Src: 0, Dst: 1, Size: 1}, {Src: 1, Dst: 1, Size: 2}},
		{{Src: 1, Dst: 0, Size: 3}},
	} {
		if _, _, err := d.Register(&coflowmodel.Registration{Weight: 1, Flows: flows}); err != nil {
			t.Fatal(err)
		}
	}
	const ticks = 12
	for i := 0; i < ticks; i++ {
		if err := d.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	return ticks
}

// TestPrometheusScrape: GET /metrics serves the registry in the text
// exposition format — correct content-type, HELP/TYPE metadata, stage
// histograms fed by real ticks, and the warm-start counters the
// replay fast path maintains.
func TestPrometheusScrape(t *testing.T) {
	d := newTestDaemon(t, Config{Ports: 2, Policy: online.SEBF, SelfCheck: true, SelfCheckEvery: 1})
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()
	ticks := runSomeTraffic(t, d)

	resp, body := scrape(t, srv, "/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.PrometheusContentType {
		t.Errorf("content-type %q, want %q", ct, obs.PrometheusContentType)
	}

	// Metadata lines for a representative stage histogram.
	for _, want := range []string{
		"# HELP coflow_step_seconds ",
		"# TYPE coflow_step_seconds histogram",
		"# TYPE coflowd_ticks_total counter",
		"# TYPE coflowd_active_coflows gauge",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("scrape missing %q", want)
		}
	}

	// Stage histograms observed one sample per tick.
	if got := promValue(t, body, "coflow_step_seconds_count"); got != float64(ticks) {
		t.Errorf("coflow_step_seconds_count = %v, want %d", got, ticks)
	}
	if got := promValue(t, body, `coflow_step_seconds_bucket{le="+Inf"}`); got != float64(ticks) {
		t.Errorf("+Inf bucket = %v, want %d", got, ticks)
	}
	if got := promValue(t, body, "coflowd_ticks_total"); got != float64(ticks) {
		t.Errorf("coflowd_ticks_total = %v, want %d", got, ticks)
	}

	// The warm-start counters partition serving steps: hits (replays)
	// plus misses (full scans) is the number of non-idle steps.
	hits := promValue(t, body, "coflow_step_matcher_warm_start_hits_total")
	misses := promValue(t, body, "coflow_step_matcher_warm_start_misses_total")
	idle := promValue(t, body, "coflow_step_idle_total")
	if hits+misses+idle != float64(ticks) {
		t.Errorf("hits(%v) + misses(%v) + idle(%v) != ticks(%d)", hits, misses, idle, ticks)
	}
	if misses == 0 {
		t.Error("expected at least one full scan (every first serving slot is one)")
	}

	// Completions flow through to both counter and wait/service
	// histograms.
	if got := promValue(t, body, "coflowd_coflows_completed_total"); got != 2 {
		t.Errorf("coflowd_coflows_completed_total = %v, want 2", got)
	}
	if got := promValue(t, body, "coflowd_coflow_wait_slots_count"); got != 2 {
		t.Errorf("coflowd_coflow_wait_slots_count = %v, want 2", got)
	}
	if got := promValue(t, body, "coflowd_active_coflows"); got != 0 {
		t.Errorf("coflowd_active_coflows = %v, want 0 after drain", got)
	}
}

// TestPrometheusSelfCheckCounter: the -selfcheck monitor's violation
// count surfaces as coflowd_self_check_violations_total. A clean run
// scrapes as 0; flagged violations appear in the next scrape. (The
// counter is bumped directly here because a genuine violation
// requires a scheduler bug; the monitor→counter plumbing is one line
// in the tick handler, exercised by the clean-run assertions.)
func TestPrometheusSelfCheckCounter(t *testing.T) {
	d := newTestDaemon(t, Config{Ports: 2, Policy: online.WSPT, SelfCheck: true, SelfCheckEvery: 1})
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()
	runSomeTraffic(t, d)

	_, body := scrape(t, srv, "/metrics")
	if got := promValue(t, body, "coflowd_self_check_violations_total"); got != 0 {
		t.Fatalf("clean run scraped %v violations, want 0", got)
	}

	d.obs.selfCheckViolations.Add(3)
	_, body = scrape(t, srv, "/metrics")
	if got := promValue(t, body, "coflowd_self_check_violations_total"); got != 3 {
		t.Errorf("after flagging, scraped %v violations, want 3", got)
	}
}

// TestPrometheusMethodNotAllowed: wrong methods on /metrics get the
// structured 405 with an Allow header, like every other route.
func TestPrometheusMethodNotAllowed(t *testing.T) {
	d := newTestDaemon(t, Config{Ports: 2, Policy: online.SEBF})
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	resp, err := srv.Client().Post(srv.URL+"/metrics", "text/plain", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /metrics = %d, want 405", resp.StatusCode)
	}
	if allow := resp.Header.Get("Allow"); allow != "GET" {
		t.Errorf("Allow = %q, want GET", allow)
	}
	var e struct{ Kind string }
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Kind != "method_not_allowed" {
		t.Errorf("error body kind = %q (err %v), want method_not_allowed", e.Kind, err)
	}
}

// TestEnrichedMetricsJSON: /v1/metrics carries the per-coflow
// wait/service breakdowns, the per-stage latency snapshots, and the
// matcher warm-start hit rate.
func TestEnrichedMetricsJSON(t *testing.T) {
	d := newTestDaemon(t, Config{Ports: 2, Policy: online.SEBF})
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()
	ticks := runSomeTraffic(t, d)

	resp, body := scrape(t, srv, "/v1/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/metrics = %d, want 200", resp.StatusCode)
	}
	var m Metrics
	if err := json.Unmarshal([]byte(body), &m); err != nil {
		t.Fatalf("unmarshal /v1/metrics: %v", err)
	}
	if m.Completed != 2 {
		t.Fatalf("completed = %d, want 2", m.Completed)
	}
	if m.Wait.Count != 2 || m.Service.Count != 2 {
		t.Errorf("wait/service counts = %d/%d, want 2/2", m.Wait.Count, m.Service.Count)
	}
	if m.Wait.Min < 0 {
		t.Errorf("negative wait %v", m.Wait.Min)
	}
	// Both coflows have load ρ = 3 (coflow 1: src 0 and dst 1 each sum
	// to 3; coflow 2: one flow of size 3).
	if m.Service.Mean != 3 {
		t.Errorf("service mean = %v, want 3", m.Service.Mean)
	}
	if got := m.StageLatency.Step.Count; got != uint64(ticks) {
		t.Errorf("stage step count = %d, want %d", got, ticks)
	}
	if m.StageLatency.Step.P99 < m.StageLatency.Step.P50 {
		t.Errorf("step p99 %v < p50 %v", m.StageLatency.Step.P99, m.StageLatency.Step.P50)
	}
	if m.MatcherWarmStartHitRate < 0 || m.MatcherWarmStartHitRate > 1 {
		t.Errorf("warm-start hit rate %v outside [0,1]", m.MatcherWarmStartHitRate)
	}
	// JSON must expose the documented field names.
	for _, key := range []string{`"wait"`, `"service"`, `"stage_latency"`, `"matcher_warm_start_hit_rate"`} {
		if !strings.Contains(body, key) {
			t.Errorf("payload missing %s", key)
		}
	}
}
