package daemon

import (
	"coflow/internal/bvn"
	"coflow/internal/obs"
	"coflow/internal/online"
)

// daemonObs bundles the daemon's metrics registry: the slot
// pipeline's stage instrumentation (coflow_step_*, from online.NewObs)
// plus daemon-level counters and gauges (coflowd_*). The registry
// backs both GET /metrics (Prometheus text) and the stage-latency /
// warm-start fields of the enriched GET /v1/metrics.
//
// Only the event-loop goroutine updates these (the metrics themselves
// are atomic, so scrapes never block the loop and vice versa).
type daemonObs struct {
	reg  *obs.Registry
	step online.Obs
	// plan instruments the optional BvN planner (coflow_bvn_*): cold
	// decompositions, incremental updates and their fallbacks, and the
	// term-buffer pool hit rate. All zeros while Config.Plan is off.
	plan bvn.Obs

	ticks        *obs.Counter
	tickSeconds  *obs.Histogram
	slot         *obs.Gauge
	active       *obs.Gauge
	queueDepth   *obs.Gauge
	degraded     *obs.Gauge
	ticksSkipped *obs.Gauge
	portsFailed  *obs.Gauge

	registered    *obs.Counter
	completed     *obs.Counter
	cancelled     *obs.Counter
	totalWeighted *obs.Gauge

	selfCheckViolations *obs.Counter

	waitSlots    *obs.Histogram
	serviceSlots *obs.Histogram
}

// slotBuckets is the bucket ladder for per-coflow wait/service times
// measured in slots: powers of two up to 64Ki slots.
var slotBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384, 65536}

func newDaemonObs() *daemonObs {
	r := obs.NewRegistry()
	return &daemonObs{
		reg:  r,
		step: online.NewObs(r),
		plan: bvn.NewObs(r),

		ticks:        r.Counter("coflowd_ticks_total", "scheduler ticks processed"),
		tickSeconds:  r.Histogram("coflowd_tick_seconds", "latency of one scheduling tick", obs.LatencyBuckets),
		slot:         r.Gauge("coflowd_slot", "current virtual slot"),
		active:       r.Gauge("coflowd_active_coflows", "live registered-but-unfinished coflows"),
		queueDepth:   r.Gauge("coflowd_command_queue_depth", "pending commands in the event-loop queue"),
		degraded:     r.Gauge("coflowd_degraded", "1 while the deadline guard has degraded the policy to FIFO"),
		ticksSkipped: r.Gauge("coflowd_ticks_skipped_total", "ticker ticks dropped because the loop was busy"),
		portsFailed:  r.Gauge("coflowd_ports_failed", "switch ports currently offline (their demand is parked)"),

		registered:    r.Counter("coflowd_coflows_registered_total", "coflows registered"),
		completed:     r.Counter("coflowd_coflows_completed_total", "coflows completed"),
		cancelled:     r.Counter("coflowd_coflows_cancelled_total", "coflows cancelled"),
		totalWeighted: r.Gauge("coflowd_total_weighted_completion", "running objective: sum of weight times completion slot"),

		selfCheckViolations: r.Counter("coflowd_self_check_violations_total", "invariant violations flagged by the -selfcheck monitor"),

		waitSlots:    r.Histogram("coflowd_coflow_wait_slots", "completed-coflow queueing delay in slots (completion - release - load)", slotBuckets),
		serviceSlots: r.Histogram("coflowd_coflow_service_slots", "completed-coflow ideal service time in slots (the load rho)", slotBuckets),
	}
}

// StageLatency is the per-stage latency summary of the enriched
// /v1/metrics payload, in seconds.
type StageLatency struct {
	Step   obs.HistogramSnapshot `json:"step"`
	Sort   obs.HistogramSnapshot `json:"sort"`
	Match  obs.HistogramSnapshot `json:"match"`
	Replay obs.HistogramSnapshot `json:"replay"`
}

func (o *daemonObs) stageLatency() StageLatency {
	return StageLatency{
		Step:   o.step.StepSeconds.Snapshot(),
		Sort:   o.step.SortSeconds.Snapshot(),
		Match:  o.step.MatchSeconds.Snapshot(),
		Replay: o.step.ReplaySeconds.Snapshot(),
	}
}
